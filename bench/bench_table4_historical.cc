// Table 4: historical imbalance failures (the 53-bug study corpus) reproduced
// by each tool. Five of the 53 are environment-gated (Windows / specific
// hardware) and are out of reach for every tool, bounding Themis at 48/53.

#include "bench/bench_common.h"
#include "src/faults/historical_corpus.h"

namespace themis {
namespace {

void BM_HistoricalCampaignShort(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    CampaignResult result = RunCampaign(StrategyKind::kThemis, Flavor::kHdfs, seed++,
                                        Hours(1), FaultSet::kHistorical).take();
    benchmark::DoNotOptimize(result.testcases);
  }
}
BENCHMARK(BM_HistoricalCampaignShort)->Unit(benchmark::kMillisecond);

void RunExperiment() {
  ExperimentBudget budget = BenchBudget();
  std::vector<StrategyKind> strategies(kComparedStrategies.begin(),
                                       kComparedStrategies.end());
  HistoricalFindings findings = RunHistoricalExperiment(strategies, budget);

  std::map<Flavor, int> corpus_sizes;
  for (Flavor flavor : kAllFlavors) {
    corpus_sizes[flavor] = static_cast<int>(HistoricalFaultsFor(flavor).size());
  }

  PrintHeader("Table 4: historical imbalance failures reproduced");
  TextTable table({"Tools", "HDFS", "CephFS", "GlusterFS", "LeoFS", "Total"});
  for (StrategyKind kind : strategies) {
    int total = 0;
    std::vector<std::string> row{StrategyKindName(kind)};
    for (Flavor flavor : kAllFlavors) {
      int found = static_cast<int>(findings.found[kind][flavor].size());
      total += found;
      row.push_back(Sprintf("%d/%d", found, corpus_sizes[flavor]));
    }
    row.push_back(Sprintf("%d/53", total));
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n(5 failures are Windows-only or hardware-gated and unreachable in "
              "this environment: CEPH-41935, HDFS-4261, CEPH-55568, GLUSTER-1699, "
              "HDFS-11741)\n");
}

}  // namespace
}  // namespace themis

THEMIS_BENCH_MAIN(themis::RunExperiment)
