// Figure 12: branch-coverage growth over the 24-hour campaign, sampled once
// per virtual minute, for all five strategies on every flavor. Printed as a
// decimated CSV-style series per (flavor, strategy).

#include "bench/bench_common.h"

namespace themis {
namespace {

void BM_TimelineSampling(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    CampaignResult result = RunCampaign(StrategyKind::kConcurrent, Flavor::kLeo, seed++,
                                        Hours(1), FaultSet::kNewBugs).take();
    state.counters["samples"] = static_cast<double>(result.coverage_timeline.size());
  }
}
BENCHMARK(BM_TimelineSampling)->Unit(benchmark::kMillisecond);

void RunExperiment() {
  ExperimentBudget budget = BenchBudget();
  budget.seeds = 1;  // the figure shows one representative campaign per tool
  std::vector<StrategyKind> strategies = {StrategyKind::kFixReq, StrategyKind::kFixConf,
                                          StrategyKind::kAlternate,
                                          StrategyKind::kConcurrent,
                                          StrategyKind::kThemis};
  CoverageResults results = RunCoverageExperiment(strategies, budget);

  PrintHeader("Figure 12: coverage trends (branches vs virtual hours)");
  for (Flavor flavor : kAllFlavors) {
    std::printf("\n--- %s ---\n", std::string(FlavorName(flavor)).c_str());
    std::printf("%-12s", "hour");
    std::vector<int> hours = {1, 2, 4, 8, 12, 16, 20, 24};
    for (int h : hours) {
      std::printf("%8d", h);
    }
    std::printf("\n");
    for (StrategyKind kind : strategies) {
      const auto& timeline = results.timelines[kind][flavor];
      std::printf("%-12s", StrategyKindName(kind));
      for (int h : hours) {
        SimTime at = Hours(h);
        size_t value = 0;
        for (const auto& [t, branches] : timeline) {
          if (t <= at) {
            value = branches;
          } else {
            break;
          }
        }
        std::printf("%8zu", value);
      }
      std::printf("\n");
    }
  }
  std::printf("\n(Themis should grow fastest early and keep the lead throughout; "
              "baselines plateau after their initial burst.)\n");
}

}  // namespace
}  // namespace themis

THEMIS_BENCH_MAIN(themis::RunExperiment)
