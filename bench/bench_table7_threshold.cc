// Table 7: false positives and true positives of Themis across variance
// threshold t values from 5% to 35% (the detector accuracy study, §6.4).

#include "bench/bench_common.h"

namespace themis {
namespace {

void BM_ThresholdCampaignShort(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    CampaignConfig config;
    config.flavor = Flavor::kGluster;
    config.seed = seed++;
    config.budget = Hours(1);
    config.threshold_t = static_cast<double>(state.range(0)) / 100.0;
    CampaignResult result = Campaign(config).Run(StrategyKind::kThemis).take();
    state.counters["fp"] = result.false_positives;
  }
}
BENCHMARK(BM_ThresholdCampaignShort)->Arg(5)->Arg(25)->Unit(benchmark::kMillisecond);

void RunExperiment() {
  ExperimentBudget budget = BenchBudget();
  std::vector<double> thresholds = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35};
  std::vector<ThresholdSweepRow> rows = RunThresholdSweep(thresholds, budget);

  PrintHeader("Table 7: Themis accuracy vs variance threshold t");
  TextTable table({"Threshold t", "False Positives", "True Positives"});
  for (const ThresholdSweepRow& row : rows) {
    table.AddRow({Sprintf("%.0f%%", row.threshold * 100.0),
                  std::to_string(row.false_positives),
                  std::to_string(row.true_positives)});
  }
  table.Print();
  std::printf("\n(Expected shape: FPs decay to 0 as t grows; TPs start dropping once "
              "t exceeds ~25%%, the optimum.)\n");
}

}  // namespace
}  // namespace themis

THEMIS_BENCH_MAIN(themis::RunExperiment)
