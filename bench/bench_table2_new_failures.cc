// Table 2: the 10 previously unknown imbalance failures Themis detects in
// 24-hour campaigns across the four DFS flavors.

#include "bench/bench_common.h"
#include "src/faults/fault_registry.h"

namespace themis {
namespace {

void BM_ThemisCampaignShort(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    CampaignResult result = RunCampaign(StrategyKind::kThemis, Flavor::kGluster, seed++,
                                        Hours(state.range(0)), FaultSet::kNewBugs).take();
    benchmark::DoNotOptimize(result.testcases);
    state.counters["failures"] = result.DistinctTruePositives();
    state.counters["ops"] = static_cast<double>(result.total_ops);
  }
}
BENCHMARK(BM_ThemisCampaignShort)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void RunExperiment() {
  ExperimentBudget budget = BenchBudget();
  NewBugFindings findings = RunNewBugExperiment({StrategyKind::kThemis}, budget);
  const auto& found = findings.found[StrategyKind::kThemis];

  PrintHeader("Table 2: new imbalance failures detected by Themis (24h campaigns)");
  TextTable table({"#", "Platform", "Failure Type", "Identifier", "Found",
                   "First confirmed (min)"});
  int index = 1;
  int total_found = 0;
  for (const FaultSpec& spec : NewBugRegistry()) {
    auto it = found.find(spec.id);
    bool hit = it != found.end();
    total_found += hit ? 1 : 0;
    table.AddRow({std::to_string(index++), std::string(FlavorName(spec.platform)),
                  FailureTypeName(spec.type), spec.id, hit ? "yes" : "no",
                  hit ? Sprintf("%.1f", ToMinutes(it->second)) : "-"});
  }
  table.Print();
  std::printf("\nThemis found %d/10 new imbalance failures "
              "(%d repeated campaigns per flavor, %lld virtual hours each); "
              "false positives across all campaigns: %d\n",
              total_found, budget.seeds,
              static_cast<long long>(budget.campaign / Hours(1)),
              findings.false_positives[StrategyKind::kThemis]);

  PrintHeader("Root cause notes (from the registry)");
  for (const FaultSpec& spec : NewBugRegistry()) {
    std::printf("%-13s %s\n", spec.id.c_str(), spec.description.c_str());
  }
}

}  // namespace
}  // namespace themis

THEMIS_BENCH_MAIN(themis::RunExperiment)
