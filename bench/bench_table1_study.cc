// Table 1 + Findings 1-4 (paper §3): the motivation-study corpus and every
// percentage the study reports, recomputed from the 53-record dataset.

#include "bench/bench_common.h"
#include "src/study/study_corpus.h"

namespace themis {
namespace {

void BM_SummarizeCorpus(benchmark::State& state) {
  const std::vector<StudyRecord>& corpus = StudyCorpus();
  for (auto _ : state) {
    StudySummary summary = Summarize(corpus);
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_SummarizeCorpus);

void RunExperiment() {
  const std::vector<StudyRecord>& corpus = StudyCorpus();
  StudySummary s = Summarize(corpus);

  PrintHeader("Table 1: Number of imbalance failures we analyzed");
  TextTable table1({"HDFS", "CephFS", "GlusterFS", "LeoFS", "Total"});
  table1.AddRow({std::to_string(s.per_platform[static_cast<int>(Flavor::kHdfs)]),
                 std::to_string(s.per_platform[static_cast<int>(Flavor::kCeph)]),
                 std::to_string(s.per_platform[static_cast<int>(Flavor::kGluster)]),
                 std::to_string(s.per_platform[static_cast<int>(Flavor::kLeo)]),
                 std::to_string(s.total)});
  table1.Print();

  PrintHeader("Finding 1: imbalance severity");
  std::printf("failures affecting all or a majority of nodes: %d/%d (%s)\n",
              s.majority_impact, s.total, Percent(s.majority_impact, s.total).c_str());
  TextTable symptoms({"Symptom", "Count", "Share"});
  for (int i = 0; i < 5; ++i) {
    symptoms.AddRow({SymptomName(static_cast<Symptom>(i)),
                     std::to_string(s.per_symptom[i]),
                     Percent(s.per_symptom[i], s.total)});
  }
  symptoms.Print();

  PrintHeader("Finding 2: imbalance root cause");
  TextTable causes({"Root cause", "Count", "Share"});
  for (int i = 0; i < 3; ++i) {
    causes.AddRow({StudyRootCauseName(static_cast<StudyRootCause>(i)),
                   std::to_string(s.per_cause[i]), Percent(s.per_cause[i], s.total)});
  }
  causes.Print();

  PrintHeader("Finding 3: internal symptoms");
  TextTable internals({"Dominant internal symptom", "Count", "Share"});
  const char* names[3] = {"disk usage disparity", "CPU usage disparity",
                          "network traffic disparity"};
  for (int i = 0; i < 3; ++i) {
    internals.AddRow({names[i], std::to_string(s.per_internal[i]),
                      Percent(s.per_internal[i], s.total)});
  }
  internals.Print();

  PrintHeader("Finding 4: triggering workload");
  TextTable inputs({"Trigger inputs", "Count", "Share"});
  for (int i = 0; i < 3; ++i) {
    inputs.AddRow({TriggerInputsName(static_cast<TriggerInputs>(i)),
                   std::to_string(s.per_inputs[i]), Percent(s.per_inputs[i], s.total)});
  }
  inputs.Print();

  PrintHeader("Finding 5: triggering steps");
  std::printf("<= 5 steps: %d/%d (%s);  6-8 steps: %d/%d (%s)\n", s.steps_at_most_5,
              s.total, Percent(s.steps_at_most_5, s.total).c_str(), s.steps_6_to_8,
              s.total, Percent(s.steps_6_to_8, s.total).c_str());
  std::printf("environment-gated failures (out of Themis's scope): %d\n", s.gated);
}

}  // namespace
}  // namespace themis

THEMIS_BENCH_MAIN(themis::RunExperiment)
