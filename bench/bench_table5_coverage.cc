// Table 5: branch coverage reached on the four flavors in 24 hours, per
// strategy. Coverage is the simulator's branch substrate (static
// instrumentation sites + virtual state-feature branches; see
// src/coverage/coverage.h and DESIGN.md for the substitution record).

#include "bench/bench_common.h"

namespace themis {
namespace {

void BM_CoverageCampaignShort(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    CampaignResult result = RunCampaign(StrategyKind::kThemis, Flavor::kCeph, seed++,
                                        Hours(state.range(0)), FaultSet::kNewBugs).take();
    state.counters["branches"] = static_cast<double>(result.final_coverage);
  }
}
BENCHMARK(BM_CoverageCampaignShort)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void RunExperiment() {
  ExperimentBudget budget = BenchBudget();
  std::vector<StrategyKind> strategies = {StrategyKind::kFixReq, StrategyKind::kFixConf,
                                          StrategyKind::kAlternate,
                                          StrategyKind::kConcurrent,
                                          StrategyKind::kThemis};
  CoverageResults results = RunCoverageExperiment(strategies, budget);

  PrintHeader("Table 5: branch coverage on four target DFSes in 24 hours");
  TextTable table({"Method", "Fix_req", "Fix_conf", "Alternate", "Concurrent",
                   "Themis"});
  for (Flavor flavor : {Flavor::kHdfs, Flavor::kGluster, Flavor::kLeo, Flavor::kCeph}) {
    std::vector<std::string> row{std::string(FlavorName(flavor))};
    for (StrategyKind kind : strategies) {
      row.push_back(std::to_string(results.final_coverage[kind][flavor]));
    }
    table.AddRow(row);
  }
  table.Print();

  // The second feedback signal (DESIGN.md §16): balancer state-machine
  // transition pairs covered under the same campaigns. The per-flavor
  // gauges (model_coverage.<flavor>.transitions) land in the summary JSON.
  PrintHeader("Balancer transition-pair coverage (same campaigns)");
  TextTable transitions({"Method", "Fix_req", "Fix_conf", "Alternate",
                         "Concurrent", "Themis"});
  for (Flavor flavor : {Flavor::kHdfs, Flavor::kGluster, Flavor::kLeo, Flavor::kCeph}) {
    std::vector<std::string> row{std::string(FlavorName(flavor))};
    for (StrategyKind kind : strategies) {
      row.push_back(std::to_string(results.transition_coverage[kind][flavor]));
    }
    transitions.AddRow(row);
  }
  transitions.Print();

  // Themis's average improvement over each baseline (the paper reports
  // 18% / 21% / 13% / 10%).
  std::printf("\nThemis's mean coverage improvement: ");
  for (StrategyKind kind :
       {StrategyKind::kFixReq, StrategyKind::kFixConf, StrategyKind::kAlternate,
        StrategyKind::kConcurrent}) {
    double ratio_sum = 0;
    for (Flavor flavor : kAllFlavors) {
      double themis_cov =
          static_cast<double>(results.final_coverage[StrategyKind::kThemis][flavor]);
      double base_cov = static_cast<double>(results.final_coverage[kind][flavor]);
      ratio_sum += base_cov > 0 ? (themis_cov / base_cov - 1.0) : 0.0;
    }
    std::printf("vs %s: %+.0f%%  ", StrategyKindName(kind), 100.0 * ratio_sum / 4);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace themis

THEMIS_BENCH_MAIN(themis::RunExperiment)
