// Table 8: average time for Themis to trigger the storage-type imbalance
// failures under different storage-variance weighting factors (§7).

#include "bench/bench_common.h"

namespace themis {
namespace {

void BM_WeightedCampaignShort(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    CampaignConfig config;
    config.flavor = Flavor::kLeo;
    config.seed = seed++;
    config.budget = Hours(1);
    config.weights.storage = static_cast<double>(state.range(0)) / 6.0;
    config.weights.computation = (1.0 - config.weights.storage) / 2.0;
    config.weights.network = (1.0 - config.weights.storage) / 2.0;
    CampaignResult result = Campaign(config).Run(StrategyKind::kThemis).take();
    benchmark::DoNotOptimize(result.testcases);
  }
}
BENCHMARK(BM_WeightedCampaignShort)->Arg(1)->Arg(2)->Arg(6)->Unit(benchmark::kMillisecond);

void RunExperiment() {
  ExperimentBudget budget = BenchBudget();
  std::vector<double> weights = {1.0 / 6.0, 1.0 / 3.0, 1.0 / 2.0, 2.0 / 3.0, 1.0};
  std::vector<WeightSweepRow> rows = RunWeightSweep(weights, budget);

  PrintHeader("Table 8: time to trigger storage imbalances vs storage weight");
  TextTable table({"Weighting factor of storage load", "Avg time to trigger (min)",
                   "Storage bugs found"});
  const char* labels[] = {"1/6", "1/3", "1/2", "2/3", "1/1"};
  for (size_t i = 0; i < rows.size(); ++i) {
    table.AddRow({labels[i],
                  rows[i].mean_trigger_minutes < 0
                      ? "-"
                      : Sprintf("%.0f", rows[i].mean_trigger_minutes),
                  std::to_string(rows[i].storage_bugs_found)});
  }
  table.Print();
  std::printf("\n(Expected shape: heavier storage weighting accelerates triggering of "
              "storage-type failures.)\n");
}

}  // namespace
}  // namespace themis

THEMIS_BENCH_MAIN(themis::RunExperiment)
