// Table 3: new imbalance failures found by Themis vs the four baseline
// generation strategies (Fix_req, Fix_conf, Alternate, Concurrent), all
// sharing the same executor and imbalance detector.

#include "bench/bench_common.h"
#include "src/faults/fault_registry.h"

namespace themis {
namespace {

void BM_BaselineCampaignShort(benchmark::State& state) {
  StrategyKind kind = static_cast<StrategyKind>(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    CampaignResult result = RunCampaign(kind, Flavor::kGluster, seed++, Hours(1),
                                        FaultSet::kNewBugs).take();
    benchmark::DoNotOptimize(result.testcases);
  }
}
BENCHMARK(BM_BaselineCampaignShort)
    ->Arg(static_cast<int>(StrategyKind::kFixReq))
    ->Arg(static_cast<int>(StrategyKind::kFixConf))
    ->Arg(static_cast<int>(StrategyKind::kAlternate))
    ->Arg(static_cast<int>(StrategyKind::kConcurrent))
    ->Unit(benchmark::kMillisecond);

void RunExperiment() {
  ExperimentBudget budget = BenchBudget();
  std::vector<StrategyKind> strategies(kComparedStrategies.begin(),
                                       kComparedStrategies.end());
  NewBugFindings findings = RunNewBugExperiment(strategies, budget);

  PrintHeader("Table 3: new imbalance failures found per method");
  TextTable table({"Method", "Number", "Bug IDs"});
  for (StrategyKind kind : strategies) {
    const auto& found = findings.found[kind];
    std::string ids;
    int index = 1;
    for (const FaultSpec& spec : NewBugRegistry()) {
      if (found.count(spec.id) != 0) {
        if (!ids.empty()) {
          ids += ", ";
        }
        ids += "#" + std::to_string(index);
      }
      ++index;
    }
    table.AddRow({StrategyKindName(kind), std::to_string(found.size()),
                  ids.empty() ? "-" : ids});
  }
  table.Print();
  std::printf("\n(bug numbering follows Table 2; %d repeated %lld-hour campaigns per "
              "flavor and tool)\n",
              budget.seeds, static_cast<long long>(budget.campaign / Hours(1)));
}

}  // namespace
}  // namespace themis

THEMIS_BENCH_MAIN(themis::RunExperiment)
