// Raw execution throughput of the simulated cluster — the quantity every
// campaign result scales with (more executed opSeqs per wall-second = more
// imbalance failures found per 24-hour budget).
//
// Two layers are measured, per flavor, on the paper's default 10-node
// topology (8 storage + 2 meta):
//   * ops/sec      — DfsCluster::Execute driven by the real op source
//                    (InputModel + OpSeqGenerator) with coverage recording
//                    attached, i.e. the fuzzing loop's hot path.
//   * testcases/sec — full Campaign::Run (generation, mutation, detection,
//                    fault injection) over a 1-virtual-hour budget.
//
// `--summary-json` writes BENCH_throughput.json with one gauge per series
// (throughput.<flavor>.ops_per_sec, .testcases_per_sec, .campaign_ops_per_sec)
// so CI can track the perf trajectory across PRs.
//
// A third axis measures monitor cadence (DESIGN.md §13): the hot loop with a
// StatesMonitor checking every 1 / 10 / 100 ops through the O(1) streaming
// path, plus the full-scan oracle at per-op cadence for contrast. Gauges land
// under monitor_cadence.<flavor>.n<N>.* — informational, outside the CI perf
// gate, with the topology size baked into the key.
//
// A fourth axis sweeps GeoFS across node counts (10/100/1k/10k) to show the
// sparse hierarchical aggregates keep the per-op cost flat at production
// scale; see RunScaleSweepExperiment below and DESIGN.md §15.

#include "bench/bench_common.h"

#include <chrono>
#include <memory>
#include <vector>

#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/coverage/coverage.h"
#include "src/dfs/flavors/factory.h"
#include "src/harness/campaign.h"
#include "src/monitor/states_monitor.h"

namespace themis {
namespace {

constexpr Flavor kFlavors[] = {Flavor::kGluster, Flavor::kHdfs, Flavor::kCeph,
                               Flavor::kLeo, Flavor::kGeo};

// One op off the same generation path the fuzzer uses; the model re-syncs
// its admin views periodically, like the campaign's executor does.
struct OpSource {
  explicit OpSource(DfsCluster& dfs, uint64_t seed)
      : cluster(dfs), generator(model), rng(seed) {
    model.SyncFromDfs(dfs);
  }

  Operation Next() {
    if (++since_sync >= 64) {
      since_sync = 0;
      model.SyncFromDfs(cluster);
    }
    return generator.GenerateOp(rng);
  }

  DfsCluster& cluster;
  InputModel model;
  OpSeqGenerator generator;
  Rng rng;
  int since_sync = 0;
};

void BM_ClusterExecute(benchmark::State& state) {
  Flavor flavor = kFlavors[state.range(0)];
  std::unique_ptr<DfsCluster> dfs = MakeCluster(flavor, /*seed=*/42);
  CoverageRecorder coverage(FlavorBranchSpace(flavor), /*seed=*/42);
  dfs->set_coverage(&coverage);
  OpSource source(*dfs, /*seed=*/42);
  for (auto _ : state) {
    Operation op = source.Next();
    OpResult result = dfs->Execute(op);
    benchmark::DoNotOptimize(result.status);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(FlavorName(flavor)));
}
BENCHMARK(BM_ClusterExecute)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_SampleLoad(benchmark::State& state) {
  Flavor flavor = kFlavors[state.range(0)];
  std::unique_ptr<DfsCluster> dfs = MakeCluster(flavor, /*seed=*/42);
  OpSource source(*dfs, /*seed=*/42);
  for (int i = 0; i < 512; ++i) {
    (void)dfs->Execute(source.Next());
  }
  for (auto _ : state) {
    std::vector<LoadSample> samples = dfs->SampleLoad();
    benchmark::DoNotOptimize(samples.data());
  }
  state.SetLabel(std::string(FlavorName(flavor)));
}
BENCHMARK(BM_SampleLoad)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_MonitorSampleStream(benchmark::State& state) {
  Flavor flavor = kFlavors[state.range(0)];
  std::unique_ptr<DfsCluster> dfs = MakeCluster(flavor, /*seed=*/42);
  OpSource source(*dfs, /*seed=*/42);
  StatesMonitor monitor{LoadVarianceWeights{}};
  for (int i = 0; i < 512; ++i) {
    (void)dfs->Execute(source.Next());
  }
  for (auto _ : state) {
    LoadVarianceSnapshot snapshot = monitor.Sample(*dfs);
    benchmark::DoNotOptimize(snapshot.storage_ratio);
  }
  state.SetLabel(std::string(FlavorName(flavor)));
}
BENCHMARK(BM_MonitorSampleStream)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_MonitorSampleScan(benchmark::State& state) {
  Flavor flavor = kFlavors[state.range(0)];
  std::unique_ptr<DfsCluster> dfs = MakeCluster(flavor, /*seed=*/42);
  OpSource source(*dfs, /*seed=*/42);
  StatesMonitor monitor{LoadVarianceWeights{}};
  monitor.set_force_scan(true);
  for (int i = 0; i < 512; ++i) {
    (void)dfs->Execute(source.Next());
  }
  for (auto _ : state) {
    LoadVarianceSnapshot snapshot = monitor.Sample(*dfs);
    benchmark::DoNotOptimize(snapshot.storage_ratio);
  }
  state.SetLabel(std::string(FlavorName(flavor)));
}
BENCHMARK(BM_MonitorSampleScan)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void RecordSeries(const char* flavor_name, const char* series, double value) {
  MetricsRegistry::Global()
      .GetGauge(Sprintf("throughput.%s.%s", flavor_name, series))
      .Add(static_cast<int64_t>(value));
}

// Monitor-cadence axis: the hot loop again, now with a StatesMonitor checking
// the load state every `cadence` ops. The streaming path makes per-op cadence
// viable (each check is an O(1) aggregate read + window close); the full-scan
// oracle at the same cadence shows what that feedback used to cost.
void RunMonitorCadenceExperiment() {
  PrintHeader("Monitor cadence (ops/sec with a load check every N ops)");
  std::printf("%-12s %14s %14s %14s %16s\n", "flavor", "every 1", "every 10",
              "every 100", "every 1 (scan)");

  const int kCadenceOps = 30000;
  for (Flavor flavor : kFlavors) {
    std::string flavor_name(FlavorName(flavor));
    double per_series[4] = {0.0, 0.0, 0.0, 0.0};
    const struct {
      int cadence;
      bool force_scan;
      const char* series;
    } kSeries[] = {{1, false, "every1"},
                   {10, false, "every10"},
                   {100, false, "every100"},
                   {1, true, "every1_scan"}};
    size_t node_count = 0;
    for (int s = 0; s < 4; ++s) {
      std::unique_ptr<DfsCluster> dfs = MakeCluster(flavor, /*seed=*/7);
      node_count = dfs->ListStorageNodes().size() + dfs->ListMetaNodes().size();
      CoverageRecorder coverage(FlavorBranchSpace(flavor), /*seed=*/7);
      dfs->set_coverage(&coverage);
      OpSource source(*dfs, /*seed=*/7);
      StatesMonitor monitor{LoadVarianceWeights{}};
      monitor.set_force_scan(kSeries[s].force_scan);
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kCadenceOps; ++i) {
        (void)dfs->Execute(source.Next());
        if (i % kSeries[s].cadence == 0) {
          LoadVarianceSnapshot snapshot = monitor.Sample(*dfs);
          benchmark::DoNotOptimize(snapshot.storage_ratio);
        }
      }
      double seconds = SecondsSince(start);
      per_series[s] = static_cast<double>(kCadenceOps) / seconds;
      // Distinct prefix from throughput.*: informational, not CI-gated. The
      // n<N> component records the topology size the series was measured on,
      // so a default-size change reads as a new series, not a regression.
      MetricsRegistry::Global()
          .GetGauge(Sprintf("monitor_cadence.%s.n%zu.%s", flavor_name.c_str(),
                            node_count, kSeries[s].series))
          .Add(static_cast<int64_t>(per_series[s]));
    }
    std::printf("%-12s %14.0f %14.0f %14.0f %16.0f\n", flavor_name.c_str(),
                per_series[0], per_series[1], per_series[2], per_series[3]);
  }
}

// Production-scale sweep (DESIGN.md §15): GeoFS at 10 / 100 / 1k / 10k
// storage nodes. The sparse per-group aggregates make the per-op cost O(1)
// in total node count, so ops/sec should hold roughly flat across three
// orders of magnitude; campaigns run at every size except 10k, which stays
// hot-loop-only (a 10k-node campaign belongs in an overnight run, not a CI
// bench). Gauges land under scale.GeoFS.n<N>.* — skipped by the perf gate's
// series filter, tracked for trend.
void RunScaleSweepExperiment() {
  PrintHeader("GeoFS node-count sweep (sparse hierarchical aggregates)");
  std::printf("%-10s %14s %18s\n", "nodes", "ops/sec", "campaign ops/sec");

  const int kSweepNodes[] = {10, 100, 1000, 10000};
  for (int nodes : kSweepNodes) {
    // Hot loop: same op source as the 10-node series, topology scaled up.
    const int hot_ops = nodes >= 10000 ? 10000 : 30000;
    std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGeo, /*seed=*/7, nodes);
    CoverageRecorder coverage(FlavorBranchSpace(Flavor::kGeo), /*seed=*/7);
    dfs->set_coverage(&coverage);
    OpSource source(*dfs, /*seed=*/7);
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < hot_ops; ++i) {
      (void)dfs->Execute(source.Next());
    }
    double ops_per_sec = static_cast<double>(hot_ops) / SecondsSince(start);
    MetricsRegistry::Global()
        .GetGauge(Sprintf("scale.GeoFS.n%d.ops_per_sec", nodes))
        .Add(static_cast<int64_t>(ops_per_sec));

    double campaign_ops_per_sec = 0.0;
    if (nodes < 10000) {
      CampaignConfig config;
      config.flavor = Flavor::kGeo;
      config.seed = 7;
      // Default 24 virtual hours (THEMIS_BENCH_HOURS overrides): a campaign
      // this short would mostly measure cluster construction, not the
      // steady-state per-op cost the sweep is after.
      config.budget = BenchBudget().campaign;
      config.storage_nodes = nodes;
      start = std::chrono::steady_clock::now();
      Result<CampaignResult> result = Campaign(config).Run("Themis");
      double seconds = SecondsSince(start);
      if (result.ok()) {
        campaign_ops_per_sec = static_cast<double>(result->total_ops) / seconds;
        MetricsRegistry::Global()
            .GetGauge(Sprintf("scale.GeoFS.n%d.campaign_ops_per_sec", nodes))
            .Add(static_cast<int64_t>(campaign_ops_per_sec));
      } else {
        std::printf("scale campaign failed at %d nodes: %s\n", nodes,
                    result.status().ToString().c_str());
      }
    } else {
      // Explicit skip marker: the perf-gate script treats a scale row with
      // ops_per_sec but neither campaign_ops_per_sec nor this marker as a
      // malformed bench document, so a silently dropped campaign leg can't
      // masquerade as an intentional skip.
      MetricsRegistry::Global()
          .GetGauge(Sprintf("scale.GeoFS.n%d.campaign_skipped", nodes))
          .Add(1);
    }
    if (nodes < 10000) {
      std::printf("%-10d %14.0f %18.0f\n", nodes, ops_per_sec, campaign_ops_per_sec);
    } else {
      std::printf("%-10d %14.0f %18s\n", nodes, ops_per_sec, "(bench-only)");
    }
  }
}

void RunThroughputExperiment() {
  PrintHeader("Execution throughput (default 10-node topology)");
  std::printf("%-12s %14s %16s %18s\n", "flavor", "ops/sec", "testcases/sec",
              "campaign ops/sec");

  const int kHotLoopOps = 30000;
  for (Flavor flavor : kFlavors) {
    std::string flavor_name(FlavorName(flavor));

    // Layer 1: the raw cluster hot path, coverage attached.
    std::unique_ptr<DfsCluster> dfs = MakeCluster(flavor, /*seed=*/7);
    CoverageRecorder coverage(FlavorBranchSpace(flavor), /*seed=*/7);
    dfs->set_coverage(&coverage);
    OpSource source(*dfs, /*seed=*/7);
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kHotLoopOps; ++i) {
      (void)dfs->Execute(source.Next());
    }
    double hot_seconds = SecondsSince(start);
    double ops_per_sec = static_cast<double>(kHotLoopOps) / hot_seconds;

    // Layer 2: the full campaign loop at a 1-virtual-hour budget.
    CampaignConfig config;
    config.flavor = flavor;
    config.seed = 7;
    config.budget = Hours(1);
    Campaign campaign(config);
    start = std::chrono::steady_clock::now();
    Result<CampaignResult> result = campaign.Run("Themis");
    double campaign_seconds = SecondsSince(start);
    double testcases_per_sec = 0.0;
    double campaign_ops_per_sec = 0.0;
    if (result.ok()) {
      testcases_per_sec = static_cast<double>(result->testcases) / campaign_seconds;
      campaign_ops_per_sec =
          static_cast<double>(result->total_ops) / campaign_seconds;
    } else {
      std::printf("campaign failed for %s: %s\n", flavor_name.c_str(),
                  result.status().ToString().c_str());
    }

    RecordSeries(flavor_name.c_str(), "ops_per_sec", ops_per_sec);
    RecordSeries(flavor_name.c_str(), "testcases_per_sec", testcases_per_sec);
    RecordSeries(flavor_name.c_str(), "campaign_ops_per_sec", campaign_ops_per_sec);
    std::printf("%-12s %14.0f %16.1f %18.0f\n", flavor_name.c_str(), ops_per_sec,
                testcases_per_sec, campaign_ops_per_sec);
  }

  RunMonitorCadenceExperiment();
  RunScaleSweepExperiment();
}

}  // namespace
}  // namespace themis

THEMIS_BENCH_MAIN(themis::RunThroughputExperiment)
