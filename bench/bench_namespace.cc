// Microbenchmarks for the interned-path namespace core (DESIGN.md §12) —
// the layer the per-op hot path leans on for every file operation.
//
// Measured surfaces:
//   * string-keyed resolve   — Intern + hash probe per lookup (the cold/API
//                              path, and what every op paid pre-interning)
//   * id-keyed resolve       — the hot path after an op's operands are
//                              memoized: one dense-array load
//   * create/delete churn    — entry lifecycle on re-used names
//   * deep-subtree rename    — edge reparenting vs the pre-refactor
//                              O(subtree) key rewrite
//   * mixed fuzzing workload — create/append-size/rename/delete in the ratio
//                              the generator produces, reported as ops/sec
//                              gauges in BENCH_namespace.json for trend
//                              tracking alongside BENCH_throughput.json.

#include "bench/bench_common.h"

#include <chrono>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/dfs/namespace_tree.h"

namespace themis {
namespace {

// A three-level working set: /d<i>/d<j>/f<k>.
std::vector<std::string> BuildPaths(NamespaceTree& tree, int width) {
  std::vector<std::string> files;
  for (int i = 0; i < width; ++i) {
    std::string top = "/d" + std::to_string(i);
    (void)tree.MakeDir(top);
    for (int j = 0; j < width; ++j) {
      std::string mid = top + "/d" + std::to_string(j);
      (void)tree.MakeDir(mid);
      for (int k = 0; k < width; ++k) {
        std::string file = mid + "/f" + std::to_string(k);
        (void)tree.CreateFile(file, 4096);
        files.push_back(std::move(file));
      }
    }
  }
  return files;
}

void BM_ResolveString(benchmark::State& state) {
  NamespaceTree tree;
  std::vector<std::string> files = BuildPaths(tree, 8);
  size_t i = 0;
  for (auto _ : state) {
    const NamespaceEntry* e = tree.Find(files[i]);
    benchmark::DoNotOptimize(e);
    i = (i + 1) % files.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResolveString);

void BM_ResolveId(benchmark::State& state) {
  NamespaceTree tree;
  std::vector<std::string> files = BuildPaths(tree, 8);
  std::vector<PathId> ids;
  ids.reserve(files.size());
  for (const std::string& f : files) {
    ids.push_back(tree.Intern(f));
  }
  size_t i = 0;
  for (auto _ : state) {
    const NamespaceEntry* e = tree.Find(ids[i]);
    benchmark::DoNotOptimize(e);
    i = (i + 1) % ids.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResolveId);

void BM_CreateDeleteChurn(benchmark::State& state) {
  NamespaceTree tree;
  (void)tree.MakeDir("/d");
  std::vector<PathId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(tree.Intern("/d/f" + std::to_string(i)));
  }
  size_t i = 0;
  for (auto _ : state) {
    PathId id = ids[i];
    benchmark::DoNotOptimize(tree.CreateFile(id, 4096));
    benchmark::DoNotOptimize(tree.RemoveFile(id));
    i = (i + 1) % ids.size();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CreateDeleteChurn);

void BM_DeepSubtreeRename(benchmark::State& state) {
  NamespaceTree tree;
  // /a/d0/.../d11 with a file per level; rename ping-pongs the whole tree.
  (void)tree.MakeDir("/a");
  (void)tree.MakeDir("/b");
  std::string dir = "/a/r";
  (void)tree.MakeDir(dir);
  for (int i = 0; i < 12; ++i) {
    dir += "/d" + std::to_string(i);
    (void)tree.MakeDir(dir);
    (void)tree.CreateFile(dir + "/f", 4096);
  }
  bool at_a = true;
  for (auto _ : state) {
    Status s = at_a ? tree.Rename("/a/r", "/b/r") : tree.Rename("/b/r", "/a/r");
    benchmark::DoNotOptimize(s);
    at_a = !at_a;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeepSubtreeRename);

void BM_ListFiles(benchmark::State& state) {
  NamespaceTree tree;
  std::vector<std::string> files = BuildPaths(tree, 8);
  for (auto _ : state) {
    std::vector<std::string> listing = tree.ListFiles();
    benchmark::DoNotOptimize(listing.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ListFiles);

// The full-experiment layer: a mixed workload in roughly the generator's
// file-op mix, run twice — once through the string API (every op re-resolves
// its path, the pre-interning cost model) and once through memoized ids (the
// executor's hot path). Gauges land in BENCH_namespace.json.
void RunNamespaceExperiment() {
  PrintHeader("Namespace core (interned paths, DESIGN.md §12)");
  std::printf("%-24s %14s\n", "series", "ops/sec");

  constexpr int kOps = 400000;
  auto run_mixed = [&](bool use_ids) {
    NamespaceTree tree;
    std::vector<std::string> files = BuildPaths(tree, 8);
    std::vector<PathId> ids;
    ids.reserve(files.size());
    for (const std::string& f : files) {
      ids.push_back(tree.Intern(f));
    }
    Rng rng(7);
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i) {
      size_t pick = rng.PickIndex(files.size());
      uint64_t roll = rng.NextBelow(100);
      if (use_ids) {
        PathId id = ids[pick];
        if (roll < 45) {
          benchmark::DoNotOptimize(tree.Find(id));
        } else if (roll < 70) {
          (void)tree.SetFileSize(id, roll * 1024);
        } else if (roll < 85) {
          (void)tree.RemoveFile(id);
        } else {
          benchmark::DoNotOptimize(tree.CreateFile(id, 4096));
        }
      } else {
        const std::string& path = files[pick];
        if (roll < 45) {
          benchmark::DoNotOptimize(tree.Find(path));
        } else if (roll < 70) {
          (void)tree.SetFileSize(path, roll * 1024);
        } else if (roll < 85) {
          (void)tree.RemoveFile(path);
        } else {
          benchmark::DoNotOptimize(tree.CreateFile(path, 4096));
        }
      }
    }
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return static_cast<double>(kOps) / seconds;
  };

  struct Series {
    const char* name;
    bool use_ids;
  };
  constexpr Series kSeries[] = {{"string_resolve", false}, {"id_resolve", true}};
  for (const Series& series : kSeries) {
    double ops_per_sec = run_mixed(series.use_ids);
    MetricsRegistry::Global()
        .GetGauge(Sprintf("namespace.%s.ops_per_sec", series.name))
        .Add(static_cast<int64_t>(ops_per_sec));
    std::printf("%-24s %14.0f\n", series.name, ops_per_sec);
  }
}

}  // namespace
}  // namespace themis

THEMIS_BENCH_MAIN(themis::RunNamespaceExperiment)
