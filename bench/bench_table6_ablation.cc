// Table 6: Themis vs Themis⁻ (load variance model disabled, random sequence
// generation) — failures found and branch coverage per flavor.

#include "bench/bench_common.h"

namespace themis {
namespace {

void BM_ThemisMinusCampaignShort(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    CampaignResult result = RunCampaign(StrategyKind::kThemisMinus, Flavor::kGluster,
                                        seed++, Hours(1), FaultSet::kNewBugs).take();
    benchmark::DoNotOptimize(result.testcases);
  }
}
BENCHMARK(BM_ThemisMinusCampaignShort)->Unit(benchmark::kMillisecond);

void RunExperiment() {
  ExperimentBudget budget = BenchBudget();
  AblationResults results = RunAblationExperiment(budget);

  PrintHeader("Table 6: Themis- vs Themis (load variance model ablation)");
  TextTable table({"Flavor", "Failures Themis-", "Failures Themis", "Coverage Themis-",
                   "Coverage Themis"});
  int minus_total = 0;
  int full_total = 0;
  size_t cov_minus_total = 0;
  size_t cov_full_total = 0;
  for (Flavor flavor : {Flavor::kHdfs, Flavor::kGluster, Flavor::kLeo, Flavor::kCeph}) {
    minus_total += results.failures_minus[flavor];
    full_total += results.failures_full[flavor];
    cov_minus_total += results.coverage_minus[flavor];
    cov_full_total += results.coverage_full[flavor];
    table.AddRow({std::string(FlavorName(flavor)),
                  std::to_string(results.failures_minus[flavor]),
                  std::to_string(results.failures_full[flavor]),
                  std::to_string(results.coverage_minus[flavor]),
                  std::to_string(results.coverage_full[flavor])});
  }
  table.AddRow({"Total", std::to_string(minus_total), std::to_string(full_total),
                std::to_string(cov_minus_total), std::to_string(cov_full_total)});
  table.Print();
  if (minus_total > 0 && cov_minus_total > 0) {
    std::printf("\nWith the load variance model: %+.0f%% failures, %+.0f%% coverage\n",
                100.0 * (static_cast<double>(full_total) / minus_total - 1.0),
                100.0 * (static_cast<double>(cov_full_total) / cov_minus_total - 1.0));
  }
}

}  // namespace
}  // namespace themis

THEMIS_BENCH_MAIN(themis::RunExperiment)
