// Figure 2: per-node storage utilization while reproducing a
// GlusterFS-3356-style imbalance failure — the gradual accumulation of load
// variance until one node becomes a hotspot and the failure is confirmed.

#include <algorithm>

#include "bench/bench_common.h"

namespace themis {
namespace {

void BM_AccumulationTraceShort(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    AccumulationTrace trace = RunAccumulationTrace(seed++, Hours(1));
    benchmark::DoNotOptimize(trace.max_variance_series.size());
  }
}
BENCHMARK(BM_AccumulationTraceShort)->Unit(benchmark::kMillisecond);

void RunExperiment() {
  ExperimentBudget budget = BenchBudget();
  AccumulationTrace trace;
  uint64_t seed = budget.base_seed;
  for (int attempt = 0; attempt < 8 && !trace.failure_confirmed; ++attempt) {
    trace = RunAccumulationTrace(seed + static_cast<uint64_t>(attempt),
                                 budget.campaign);
  }

  PrintHeader("Figure 2: storage status of each node during bug reproduction");
  if (!trace.failure_confirmed) {
    std::printf("no storage failure was confirmed within the budget; raise "
                "THEMIS_BENCH_HOURS\n");
    return;
  }
  std::printf("storage imbalance failure confirmed at t=%.1f virtual minutes\n\n",
              ToMinutes(trace.confirmed_at));

  // Print a decimated matrix: rows = sample minutes, columns = nodes present
  // at the end of the trace, final column = max variance line.
  std::vector<NodeId> nodes;
  for (const auto& [node, series] : trace.node_series) {
    if (!series.empty() &&
        series.back().first + 2.0 >= ToMinutes(trace.confirmed_at) - 1e9) {
      nodes.push_back(node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  std::printf("%-8s", "minute");
  for (NodeId node : nodes) {
    std::printf(" node%-4u", node);
  }
  std::printf(" max-spread\n");
  size_t points = trace.max_variance_series.size();
  size_t step = std::max<size_t>(1, points / 24);
  for (size_t i = 0; i < points; i += step) {
    double minute = trace.max_variance_series[i].first;
    std::printf("%-8.0f", minute);
    for (NodeId node : nodes) {
      const auto& series = trace.node_series[node];
      double value = 0.0;
      for (const auto& [m, frac] : series) {
        if (m <= minute + 1e-9) {
          value = frac;
        } else {
          break;
        }
      }
      std::printf(" %7.1f%%", 100.0 * value);
    }
    std::printf(" %9.1f%%\n", 100.0 * trace.max_variance_series[i].second);
  }
  std::printf("\n(The spread between the hottest node and the fleet grows through many "
              "small increments until the hotspot forms — Finding 6.)\n");
}

}  // namespace
}  // namespace themis

THEMIS_BENCH_MAIN(themis::RunExperiment)
