// Fleet-mode scaling curve (DESIGN.md §17): the same 8-job campaign matrix
// run through the multi-process fleet supervisor at 1 / 2 / 4 / 8 workers,
// measuring end-to-end campaign throughput (executed ops per wall-second,
// staging through merged summary). This is the PR's headline number: the
// fleet exists to buy wall-clock, so the sweep is what a perf regression in
// the corpus exchange, the work queue, or the supervisor poll loop shows up
// in.
//
// Gauges land under fleet.w<N>.* plus fleet.cores (the machine's hardware
// concurrency). The perf gate treats fleet.* as informational trend series,
// EXCEPT the 4-worker speedup check in scripts/check_perf_regression.py,
// which requires fleet.w4 >= 3x fleet.w1 — gated on fleet.cores >= 4, since
// a single-core container cannot scale no matter what the code does (the
// sweep still runs and records honest numbers there).
//
// The worker binary is resolved from THEMIS_FLEET_BIN, falling back to
// <bench dir>/../examples/themis_cli (the in-tree build layout).

#include "bench/bench_common.h"

#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/fleet/supervisor.h"

namespace themis {
namespace {

namespace fs = std::filesystem;

std::string& WorkerBinary() {
  static std::string path;
  return path;
}

std::string ResolveWorkerBinary(const char* argv0) {
  if (const char* env = std::getenv("THEMIS_FLEET_BIN")) {
    return env;
  }
  fs::path self(argv0);
  fs::path candidate = self.parent_path() / ".." / "examples" / "themis_cli";
  std::error_code ec;
  fs::path canonical = fs::canonical(candidate, ec);
  if (!ec) {
    return canonical.string();
  }
  return candidate.string();
}

struct SweepPoint {
  int workers = 0;
  uint64_t total_ops = 0;
  int jobs_done = 0;
  size_t corpus_seeds = 0;
  double wall_seconds = 0.0;
  double ops_per_sec = 0.0;
};

void RunFleetScalingExperiment() {
  const std::string worker_bin = WorkerBinary();
  if (::access(worker_bin.c_str(), X_OK) != 0) {
    std::printf("fleet sweep skipped: worker binary not executable: %s\n"
                "(set THEMIS_FLEET_BIN)\n",
                worker_bin.c_str());
    return;
  }
  PrintHeader("Fleet scaling (8-job gluster matrix, multi-process workers)");
  unsigned cores = std::thread::hardware_concurrency();
  MetricsRegistry::Global().GetGauge("fleet.cores").Add(
      static_cast<int64_t>(cores));
  std::printf("worker binary: %s  (%u hardware threads)\n", worker_bin.c_str(),
              cores);
  std::printf("%-8s %10s %12s %14s %10s %9s\n", "workers", "jobs", "ops",
              "ops/sec", "wall (s)", "speedup");

  const int kWorkerCounts[] = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  const fs::path tmp_root =
      fs::temp_directory_path() /
      Sprintf("themis_bench_fleet_%ld", static_cast<long>(::getpid()));
  for (int workers : kWorkerCounts) {
    FleetConfig config;
    config.dir = (tmp_root / Sprintf("w%d", workers)).string();
    config.workers = workers;
    config.matrix.flavors = {Flavor::kGluster};
    config.matrix.seeds = 8;
    config.matrix.matrix_seed = 7;
    config.matrix.base.budget = BenchBudget().campaign;
    config.checkpoint_every_ops = 5000;
    config.worker_command = {worker_bin, "fleet", "worker"};
    Result<FleetOutcome> outcome = RunFleetSupervisor(config);
    if (!outcome.ok()) {
      std::printf("fleet sweep failed at %d workers: %s\n", workers,
                  outcome.status().ToString().c_str());
      continue;
    }
    SweepPoint point;
    point.workers = workers;
    point.total_ops = outcome->total_ops;
    point.jobs_done = outcome->jobs_done;
    point.corpus_seeds = outcome->corpus_seeds;
    point.wall_seconds = outcome->wall_seconds;
    point.ops_per_sec = point.wall_seconds > 0.0
                            ? static_cast<double>(point.total_ops) /
                                  point.wall_seconds
                            : 0.0;
    double speedup = !points.empty() && points.front().ops_per_sec > 0.0
                         ? point.ops_per_sec / points.front().ops_per_sec
                         : 1.0;
    MetricsRegistry::Global()
        .GetGauge(Sprintf("fleet.w%d.ops_per_sec", workers))
        .Add(static_cast<int64_t>(point.ops_per_sec));
    MetricsRegistry::Global()
        .GetGauge(Sprintf("fleet.w%d.jobs_done", workers))
        .Add(point.jobs_done);
    MetricsRegistry::Global()
        .GetGauge(Sprintf("fleet.w%d.corpus_seeds", workers))
        .Add(static_cast<int64_t>(point.corpus_seeds));
    MetricsRegistry::Global()
        .GetGauge(Sprintf("fleet.w%d.speedup_x100", workers))
        .Add(static_cast<int64_t>(speedup * 100.0));
    std::printf("%-8d %10d %12llu %14.0f %10.2f %8.2fx\n", workers,
                point.jobs_done,
                static_cast<unsigned long long>(point.total_ops),
                point.ops_per_sec, point.wall_seconds, speedup);
    points.push_back(point);
    std::error_code ec;
    fs::remove_all(config.dir, ec);
  }
  std::error_code ec;
  fs::remove_all(tmp_root, ec);
}

}  // namespace
}  // namespace themis

int main(int argc, char** argv) {
  themis::WorkerBinary() =
      themis::ResolveWorkerBinary(argc > 0 ? argv[0] : "bench_fleet");
  themis::InitBenchJobs(argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  themis::RunTimedExperiment([] { themis::RunFleetScalingExperiment(); });
  return 0;
}
