// Shared scaffolding for the experiment benches. Each bench binary:
//   1. registers google-benchmark microbenchmarks that exercise the
//      experiment machinery at a reduced virtual budget (so `--benchmark_*`
//      flags work as usual), and
//   2. after RunSpecifiedBenchmarks(), executes the full experiment through
//      the parallel CampaignRunner and prints the paper-style table / series
//      plus the experiment's wall-clock (and, on request, the speedup over a
//      serial run — per-campaign results are bit-identical either way).
//
// Flags / environment knobs (full experiment only):
//   --jobs N              CampaignRunner worker threads (flag wins over env)
//   THEMIS_BENCH_JOBS     same as --jobs (default 1)
//   THEMIS_BENCH_HOURS    virtual hours per campaign (default 24)
//   THEMIS_BENCH_SEEDS    repeated campaigns per (tool, flavor) (default 3)
//   THEMIS_BENCH_COMPARE_SERIAL=1  rerun with 1 job and report the speedup

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/strings.h"
#include "src/harness/experiments.h"
#include "src/harness/report.h"

namespace themis {

// Worker-thread count for the full experiment (set by --jobs / env).
inline int& BenchJobs() {
  static int jobs = 1;
  return jobs;
}

inline ExperimentBudget BenchBudget() {
  ExperimentBudget budget;
  if (const char* hours = std::getenv("THEMIS_BENCH_HOURS")) {
    budget.campaign = Hours(std::max(1, std::atoi(hours)));
  }
  if (const char* seeds = std::getenv("THEMIS_BENCH_SEEDS")) {
    budget.seeds = std::max(1, std::atoi(seeds));
  }
  budget.jobs = BenchJobs();
  return budget;
}

// Consumes `--jobs N` / `--jobs=N` from argv (google-benchmark rejects flags
// it does not know) and folds THEMIS_BENCH_JOBS in as the default.
inline void InitBenchJobs(int& argc, char** argv) {
  if (const char* jobs = std::getenv("THEMIS_BENCH_JOBS")) {
    BenchJobs() = std::max(1, std::atoi(jobs));
  }
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      BenchJobs() = std::max(1, std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      BenchJobs() = std::max(1, std::atoi(argv[i] + 7));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

// Runs the experiment with the configured job count, reports wall-clock, and
// optionally (THEMIS_BENCH_COMPARE_SERIAL=1) reruns serially to print the
// measured speedup.
template <typename RunExperimentFn>
void RunTimedExperiment(RunExperimentFn&& run) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();
  run();
  double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  std::printf("\n[experiment wall-clock: %.2fs with --jobs %d]\n", seconds,
              BenchJobs());

  const char* compare = std::getenv("THEMIS_BENCH_COMPARE_SERIAL");
  if (compare != nullptr && std::atoi(compare) != 0 && BenchJobs() > 1) {
    int parallel_jobs = BenchJobs();
    BenchJobs() = 1;
    Clock::time_point serial_start = Clock::now();
    run();
    double serial_seconds =
        std::chrono::duration<double>(Clock::now() - serial_start).count();
    BenchJobs() = parallel_jobs;
    std::printf("\n[serial wall-clock: %.2fs; speedup with --jobs %d: %.2fx]\n",
                serial_seconds, parallel_jobs,
                seconds > 0.0 ? serial_seconds / seconds : 0.0);
  }
}

}  // namespace themis

// Standard main: benchmarks first, then the timed full experiment table.
#define THEMIS_BENCH_MAIN(RunExperimentFn)                       \
  int main(int argc, char** argv) {                              \
    ::themis::InitBenchJobs(argc, argv);                         \
    ::benchmark::Initialize(&argc, argv);                        \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {  \
      return 1;                                                  \
    }                                                            \
    ::benchmark::RunSpecifiedBenchmarks();                       \
    ::benchmark::Shutdown();                                     \
    ::themis::RunTimedExperiment([] { RunExperimentFn(); });     \
    return 0;                                                    \
  }

#endif  // BENCH_BENCH_COMMON_H_
