// Shared scaffolding for the experiment benches. Each bench binary:
//   1. registers google-benchmark microbenchmarks that exercise the
//      experiment machinery at a reduced virtual budget (so `--benchmark_*`
//      flags work as usual), and
//   2. after RunSpecifiedBenchmarks(), executes the full experiment and
//      prints the paper-style table / series.
//
// Environment knobs (full experiment only):
//   THEMIS_BENCH_HOURS  virtual hours per campaign (default 24)
//   THEMIS_BENCH_SEEDS  repeated campaigns per (tool, flavor) (default 3)

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/strings.h"
#include "src/harness/experiments.h"
#include "src/harness/report.h"

namespace themis {

inline ExperimentBudget BenchBudget() {
  ExperimentBudget budget;
  if (const char* hours = std::getenv("THEMIS_BENCH_HOURS")) {
    budget.campaign = Hours(std::max(1, std::atoi(hours)));
  }
  if (const char* seeds = std::getenv("THEMIS_BENCH_SEEDS")) {
    budget.seeds = std::max(1, std::atoi(seeds));
  }
  return budget;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace themis

// Standard main: benchmarks first, then the full experiment table.
#define THEMIS_BENCH_MAIN(RunExperimentFn)                       \
  int main(int argc, char** argv) {                              \
    ::benchmark::Initialize(&argc, argv);                        \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {  \
      return 1;                                                  \
    }                                                            \
    ::benchmark::RunSpecifiedBenchmarks();                       \
    ::benchmark::Shutdown();                                     \
    RunExperimentFn();                                           \
    return 0;                                                    \
  }

#endif  // BENCH_BENCH_COMMON_H_
