// Shared scaffolding for the experiment benches. Each bench binary:
//   1. registers google-benchmark microbenchmarks that exercise the
//      experiment machinery at a reduced virtual budget (so `--benchmark_*`
//      flags work as usual), and
//   2. after RunSpecifiedBenchmarks(), executes the full experiment through
//      the parallel CampaignRunner and prints the paper-style table / series
//      plus the experiment's wall-clock (and, on request, the speedup over a
//      serial run — per-campaign results are bit-identical either way).
//
// Flags / environment knobs (full experiment only):
//   --jobs N              CampaignRunner worker threads (flag wins over env)
//   THEMIS_BENCH_JOBS     same as --jobs (default 1)
//   THEMIS_BENCH_HOURS    virtual hours per campaign (default 24)
//   THEMIS_BENCH_SEEDS    repeated campaigns per (tool, flavor) (default 3)
//   THEMIS_BENCH_COMPARE_SERIAL=1  rerun with 1 job and report the speedup
//   --telemetry-out=PATH / THEMIS_BENCH_TELEMETRY_OUT
//                         write the campaign event stream (JSONL) to PATH
//   --metrics-summary / THEMIS_BENCH_METRICS_SUMMARY=1
//                         print the merged metrics registry after the run
//   --summary-json[=PATH] / THEMIS_BENCH_SUMMARY_JSON
//                         write the machine-readable metrics summary; the
//                         default path is BENCH_<bench name>.json

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/strings.h"
#include "src/harness/experiments.h"
#include "src/harness/report.h"
#include "src/harness/telemetry_export.h"
#include "src/telemetry/metrics.h"

namespace themis {

// Worker-thread count for the full experiment (set by --jobs / env).
inline int& BenchJobs() {
  static int jobs = 1;
  return jobs;
}

// Bench name derived from argv[0] ("bench_table3_methods" -> "table3_methods").
inline std::string& BenchName() {
  static std::string name = "bench";
  return name;
}

// Telemetry knobs (set by flags / env in InitBenchJobs).
inline std::string& BenchTelemetryOut() {
  static std::string path;
  return path;
}
inline bool& BenchMetricsSummary() {
  static bool enabled = false;
  return enabled;
}
inline std::string& BenchSummaryJsonPath() {
  static std::string path;
  return path;
}

inline ExperimentBudget BenchBudget() {
  ExperimentBudget budget;
  if (const char* hours = std::getenv("THEMIS_BENCH_HOURS")) {
    budget.campaign = Hours(std::max(1, std::atoi(hours)));
  }
  if (const char* seeds = std::getenv("THEMIS_BENCH_SEEDS")) {
    budget.seeds = std::max(1, std::atoi(seeds));
  }
  budget.jobs = BenchJobs();
  budget.telemetry_out = BenchTelemetryOut();
  return budget;
}

// Consumes the flags google-benchmark does not know (--jobs, --telemetry-out,
// --metrics-summary, --summary-json) from argv, with the THEMIS_BENCH_* env
// vars as defaults.
inline void InitBenchJobs(int& argc, char** argv) {
  if (argc > 0) {
    std::string name = argv[0];
    size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) {
      name = name.substr(slash + 1);
    }
    if (name.rfind("bench_", 0) == 0) {
      name = name.substr(6);
    }
    if (!name.empty()) {
      BenchName() = name;
    }
  }
  if (const char* jobs = std::getenv("THEMIS_BENCH_JOBS")) {
    BenchJobs() = std::max(1, std::atoi(jobs));
  }
  if (const char* out = std::getenv("THEMIS_BENCH_TELEMETRY_OUT")) {
    BenchTelemetryOut() = out;
  }
  if (const char* summary = std::getenv("THEMIS_BENCH_METRICS_SUMMARY")) {
    BenchMetricsSummary() = std::atoi(summary) != 0;
  }
  if (const char* json = std::getenv("THEMIS_BENCH_SUMMARY_JSON")) {
    BenchSummaryJsonPath() = json;
  }
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      BenchJobs() = std::max(1, std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      BenchJobs() = std::max(1, std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--telemetry-out=", 16) == 0) {
      BenchTelemetryOut() = argv[i] + 16;
    } else if (std::strcmp(argv[i], "--telemetry-out") == 0 && i + 1 < argc) {
      BenchTelemetryOut() = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-summary") == 0) {
      BenchMetricsSummary() = true;
    } else if (std::strncmp(argv[i], "--summary-json=", 15) == 0) {
      BenchSummaryJsonPath() = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--summary-json") == 0) {
      BenchSummaryJsonPath() = "BENCH_" + BenchName() + ".json";
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

// Runs the experiment with the configured job count, reports wall-clock, and
// optionally (THEMIS_BENCH_COMPARE_SERIAL=1) reruns serially to print the
// measured speedup.
template <typename RunExperimentFn>
void RunTimedExperiment(RunExperimentFn&& run) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();
  run();
  double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  std::printf("\n[experiment wall-clock: %.2fs with --jobs %d]\n", seconds,
              BenchJobs());

  if (BenchMetricsSummary()) {
    std::printf("\n%s", MetricsRegistry::Global().RenderSummary().c_str());
  }
  if (!BenchSummaryJsonPath().empty()) {
    Status write =
        WriteMetricsSummaryJson(BenchName(), seconds, BenchSummaryJsonPath());
    std::printf("[metrics summary: %s]\n",
                write.ok() ? BenchSummaryJsonPath().c_str()
                           : write.ToString().c_str());
  }

  const char* compare = std::getenv("THEMIS_BENCH_COMPARE_SERIAL");
  if (compare != nullptr && std::atoi(compare) != 0 && BenchJobs() > 1) {
    int parallel_jobs = BenchJobs();
    BenchJobs() = 1;
    Clock::time_point serial_start = Clock::now();
    run();
    double serial_seconds =
        std::chrono::duration<double>(Clock::now() - serial_start).count();
    BenchJobs() = parallel_jobs;
    std::printf("\n[serial wall-clock: %.2fs; speedup with --jobs %d: %.2fx]\n",
                serial_seconds, parallel_jobs,
                seconds > 0.0 ? serial_seconds / seconds : 0.0);
  }
}

}  // namespace themis

// Standard main: benchmarks first, then the timed full experiment table.
#define THEMIS_BENCH_MAIN(RunExperimentFn)                       \
  int main(int argc, char** argv) {                              \
    ::themis::InitBenchJobs(argc, argv);                         \
    ::benchmark::Initialize(&argc, argv);                        \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {  \
      return 1;                                                  \
    }                                                            \
    ::benchmark::RunSpecifiedBenchmarks();                       \
    ::benchmark::Shutdown();                                     \
    ::themis::RunTimedExperiment([] { RunExperimentFn(); });     \
    return 0;                                                    \
  }

#endif  // BENCH_BENCH_COMMON_H_
