// Prints the campaign digest per flavor for a fixed seed/budget — used to
// compare simulation behavior across builds (the digest hashes every op,
// status, imbalance sample and detector verdict, so any divergence shows).
#include <cstdio>

#include "src/harness/campaign.h"

int main() {
  using namespace themis;
  for (Flavor flavor : {Flavor::kGluster, Flavor::kHdfs, Flavor::kCeph, Flavor::kLeo}) {
    CampaignConfig config;
    config.flavor = flavor;
    config.seed = 1234;
    config.budget = Hours(2);
    Campaign campaign(config);
    Result<CampaignResult> result = campaign.Run("Themis");
    if (!result.ok()) {
      std::printf("%s: FAILED %s\n", std::string(FlavorName(flavor)).c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%s: digest=%llx testcases=%llu ops=%llu\n",
                std::string(FlavorName(flavor)).c_str(),
                static_cast<unsigned long long>(result->Digest()),
                static_cast<unsigned long long>(result->testcases),
                static_cast<unsigned long long>(result->total_ops));
  }
  return 0;
}
