file(REMOVE_RECURSE
  "libthemis.a"
)
