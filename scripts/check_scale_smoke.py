#!/usr/bin/env python3
"""CI gate for the GeoFS node-count sweep (the scale-smoke job).

Reads a bench_throughput summary JSON and checks that campaign throughput
still scales: the 1000-node campaign must retain at least MIN_RATIO of the
100-node campaign's ops/sec. Absolute ops/sec floors are deliberately not
enforced — CI runners vary too much across machine generations — but the
ratio is hardware-independent: if it collapses, a fleet-sized scan crept
back into a per-op path (the exact regression the sparse hierarchical
aggregates exist to prevent).

Usage: check_scale_smoke.py <bench_summary.json>
"""

import json
import sys

# Comfortably between the healthy ratio (~0.70 on a quiet machine) and the
# ~0.28 this repo measured when recovery scheduling still sorted the whole
# brick fleet per pass.
MIN_RATIO = 0.40

PREFIX = "scale.GeoFS."


def main(argv):
    if len(argv) != 2:
        print(f"usage: {argv[0]} <bench_summary.json>", file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        gauges = json.load(f)["gauges"]

    rows = {}  # node count -> {"ops": float, "campaign": float}
    for key, value in gauges.items():
        if not key.startswith(PREFIX):
            continue
        node_part, _, series = key[len(PREFIX):].partition(".")
        if not node_part.startswith("n"):
            continue
        row = rows.setdefault(int(node_part[1:]), {})
        if series == "ops_per_sec":
            row["ops"] = value
        elif series == "campaign_ops_per_sec":
            row["campaign"] = value

    if not rows:
        print(f"no {PREFIX}* gauges in {argv[1]} — sweep did not run")
        return 1

    print(f"{'nodes':>8}  {'ops/sec':>12}  {'campaign ops/sec':>18}")
    for nodes in sorted(rows):
        row = rows[nodes]
        campaign = row.get("campaign")
        campaign_cell = ("(bench-only)".rjust(18) if campaign is None
                         else format(campaign, "18.0f"))
        print(f"{nodes:>8}  {row.get('ops', 0):>12.0f}  {campaign_cell}")

    for nodes in (100, 1000):
        if rows.get(nodes, {}).get("campaign") is None:
            print(f"missing {PREFIX}n{nodes}.campaign_ops_per_sec")
            return 1

    ratio = rows[1000]["campaign"] / rows[100]["campaign"]
    print(f"\n1000:100 campaign throughput ratio: {ratio:.2f} "
          f"(minimum {MIN_RATIO:.2f})")
    if ratio < MIN_RATIO:
        print("FAIL: per-op cost is growing with fleet size")
        return 1
    print("scale smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
