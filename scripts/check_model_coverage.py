#!/usr/bin/env python3
"""CI gate for balancer state-machine coverage (the model-coverage smoke job).

Reads one or more themis_cli --summary-json files and checks that every
campaign job reported nonzero transition-pair coverage for its flavor
(DESIGN.md §16). Zero coverage means the flavor's rebalance path stopped
emitting transition events — the second feedback signal is silently dead,
even though variance-guided fuzzing still looks healthy.

Absolute transition counts are deliberately not enforced: short smoke
campaigns cover only a handful of the pair table, and the count depends on
budget and seed. Nonzero-per-flavor is the invariant that survives any
budget: a balancer that ran at all covers at least idle -> first phase.

Usage: check_model_coverage.py <summary.json> [<summary.json> ...]
"""

import json
import sys


def check_file(path):
    with open(path) as f:
        summary = json.load(f)

    jobs = summary.get("jobs", [])
    if not jobs:
        print(f"{path}: no campaign jobs in summary")
        return False

    ok = True
    print(f"{path}:")
    print(f"  {'flavor':>10}  {'strategy':>10}  {'seed':>6}  {'transitions':>12}")
    for job in jobs:
        flavor = job.get("flavor", "?")
        strategy = job.get("strategy", "?")
        seed = job.get("seed", "?")
        if job.get("status") != "ok":
            print(f"  {flavor:>10}  {strategy:>10}  {seed:>6}  "
                  f"job failed: {job.get('status')}")
            ok = False
            continue
        transitions = job.get("transition_coverage")
        if transitions is None:
            print(f"  {flavor:>10}  {strategy:>10}  {seed:>6}  "
                  f"missing transition_coverage field")
            ok = False
            continue
        print(f"  {flavor:>10}  {strategy:>10}  {seed:>6}  {transitions:>12}")
        if transitions <= 0:
            print(f"  ^^^ {flavor}: zero transition coverage — the balancer "
                  f"state machine emitted no events")
            ok = False
    return ok


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} <summary.json> [<summary.json> ...]",
              file=sys.stderr)
        return 2
    ok = all([check_file(path) for path in argv[1:]])
    if ok:
        print("model coverage OK: every flavor reported nonzero "
              "transition-pair coverage")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
