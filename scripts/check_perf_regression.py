#!/usr/bin/env python3
"""Gate CI on throughput regressions.

Compares the `throughput.<flavor>.ops_per_sec` gauges of a freshly measured
bench summary against the checked-in baseline (BENCH_throughput.json) and
exits nonzero if any series dropped more than the allowed fraction.

Only the raw-execution ops_per_sec series are gated: they time a 30k-op
deterministic loop and are stable on shared runners. The campaign_* series
measure a full campaign whose wall time is milliseconds, so they are
reported for trend-watching but far too noisy to gate on.

Usage: check_perf_regression.py BASELINE.json CURRENT.json [--max-drop 0.20]
"""

import argparse
import json
import sys


def load_gauges(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("gauges", {})


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-drop", type=float, default=0.20,
                        help="maximum allowed fractional drop (default 0.20)")
    args = parser.parse_args()

    baseline = load_gauges(args.baseline)
    current = load_gauges(args.current)

    gated = sorted(k for k in baseline
                   if k.startswith("throughput.") and k.endswith(".ops_per_sec")
                   and not k.endswith(".campaign_ops_per_sec"))
    if not gated:
        print(f"error: no throughput.*.ops_per_sec gauges in {args.baseline}")
        return 2

    failures = []
    print(f"{'series':<40} {'baseline':>12} {'current':>12} {'delta':>8}")
    for key in gated:
        base = float(baseline[key])
        if key not in current:
            failures.append(f"{key}: missing from {args.current}")
            print(f"{key:<40} {base:>12.0f} {'MISSING':>12}")
            continue
        cur = float(current[key])
        delta = (cur - base) / base if base > 0 else 0.0
        flag = ""
        if delta < -args.max_drop:
            failures.append(
                f"{key}: {base:.0f} -> {cur:.0f} ({delta:+.1%}, "
                f"limit -{args.max_drop:.0%})")
            flag = "  <-- REGRESSION"
        print(f"{key:<40} {base:>12.0f} {cur:>12.0f} {delta:>+7.1%}{flag}")

    if failures:
        print("\nperf regression gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nperf regression gate passed ({len(gated)} series, "
          f"max allowed drop {args.max_drop:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
