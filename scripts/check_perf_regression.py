#!/usr/bin/env python3
"""Gate CI on throughput regressions.

Compares the `throughput.<flavor>.ops_per_sec` gauges of a freshly measured
bench summary against the checked-in baseline (BENCH_throughput.json) and
exits nonzero if any series dropped more than the allowed fraction.

Only the raw-execution ops_per_sec series are gated: they time a 30k-op
deterministic loop and are stable on shared runners. The campaign_* series
measure a full campaign whose wall time is milliseconds, so they are
reported for trend-watching but far too noisy to gate on. The same applies
to the `fleet.*`, `monitor_cadence.*`, and `scale.*` prefixes: matched by
name across the two documents and printed for trend, never delta-gated.

Two structural checks ARE hard failures, because they catch a broken bench
document rather than slow code:

  * a malformed or truncated BENCH_*.json (invalid JSON, missing or
    non-dict "gauges", non-numeric gauge values) exits 2 instead of
    silently gating on nothing;
  * a scale.<series>.n<N> row carrying ops_per_sec but neither
    campaign_ops_per_sec nor an explicit campaign_skipped marker exits 2 —
    a silently dropped campaign leg must not read as an intentional skip.

One conditional perf gate rides on the fleet sweep: when the CURRENT
document carries fleet.w1/fleet.w4 and was measured on >= 4 cores
(fleet.cores), the 4-worker fleet must reach --min-fleet-speedup x the
single-worker throughput (default 3.0). On smaller machines the check
prints a skip note — a 1-core container cannot scale no matter what the
code does.

Usage: check_perf_regression.py BASELINE.json CURRENT.json
           [--max-drop 0.20] [--min-fleet-speedup 3.0]
"""

import argparse
import json
import sys

INFORMATIONAL_PREFIXES = ("fleet.", "monitor_cadence.", "scale.")


def load_gauges(path):
    """Returns the gauges dict; exits 2 on a malformed bench document."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as exc:
        print(f"error: cannot read bench document {path}: {exc}")
        sys.exit(2)
    except json.JSONDecodeError as exc:
        print(f"error: bench document {path} is not valid JSON "
              f"(truncated write?): {exc}")
        sys.exit(2)
    if not isinstance(doc, dict) or "gauges" not in doc:
        print(f'error: bench document {path} has no "gauges" section')
        sys.exit(2)
    gauges = doc["gauges"]
    if not isinstance(gauges, dict):
        print(f'error: bench document {path} "gauges" is not an object')
        sys.exit(2)
    bad = sorted(k for k, v in gauges.items()
                 if isinstance(v, bool) or not isinstance(v, (int, float)))
    if bad:
        print(f"error: bench document {path} has non-numeric gauges: "
              f"{bad[:5]}")
        sys.exit(2)
    return gauges


def check_scale_rows(path, gauges):
    """Every scale row must resolve its campaign leg: measured or marked."""
    problems = []
    for key in sorted(gauges):
        if not key.startswith("scale.") or not key.endswith(".ops_per_sec"):
            continue
        if key.endswith(".campaign_ops_per_sec"):
            continue
        row = key[: -len(".ops_per_sec")]
        if (f"{row}.campaign_ops_per_sec" not in gauges
                and f"{row}.campaign_skipped" not in gauges):
            problems.append(row)
    if problems:
        print(f"error: {path} has scale rows with neither "
              f"campaign_ops_per_sec nor a campaign_skipped marker: "
              f"{problems}")
        sys.exit(2)


def check_fleet_scaling(gauges, min_speedup):
    """Returns an error string, or None if the check passed or was skipped."""
    w1 = gauges.get("fleet.w1.ops_per_sec")
    w4 = gauges.get("fleet.w4.ops_per_sec")
    cores = gauges.get("fleet.cores")
    if w1 is None or w4 is None:
        print("fleet scaling check: skipped (no fleet.w1/w4 sweep in the "
              "current document)")
        return None
    if cores is None or cores < 4:
        print(f"fleet scaling check: skipped (fleet.cores={cores}; need >= 4 "
              f"cores to expect multi-worker scaling)")
        return None
    if w1 <= 0:
        return f"fleet.w1.ops_per_sec is {w1}; cannot compute fleet speedup"
    speedup = float(w4) / float(w1)
    print(f"fleet scaling check: w4/w1 = {speedup:.2f}x on {cores:.0f} cores "
          f"(required >= {min_speedup:.1f}x)")
    if speedup < min_speedup:
        return (f"4-worker fleet reached only {speedup:.2f}x single-worker "
                f"throughput (required {min_speedup:.1f}x on "
                f"{cores:.0f} cores)")
    return None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-drop", type=float, default=0.20,
                        help="maximum allowed fractional drop (default 0.20)")
    parser.add_argument("--min-fleet-speedup", type=float, default=3.0,
                        help="required fleet.w4/w1 speedup when the current "
                             "document has the sweep and >= 4 cores "
                             "(default 3.0)")
    args = parser.parse_args()

    baseline = load_gauges(args.baseline)
    current = load_gauges(args.current)
    check_scale_rows(args.baseline, baseline)
    check_scale_rows(args.current, current)

    def gateable(key):
        return (key.startswith("throughput.") and key.endswith(".ops_per_sec")
                and not key.endswith(".campaign_ops_per_sec"))

    gated = sorted(k for k in baseline if gateable(k) and k in current)
    # Series on only one side are skipped, never failed: a freshly added
    # flavor or a scale.* sweep key lands in one file before the other, and
    # the gate must not block that first landing.
    only_baseline = sorted(k for k in baseline if gateable(k) and k not in current)
    only_current = sorted(k for k in current if gateable(k) and k not in baseline)
    if not gated:
        print(f"error: no common throughput.*.ops_per_sec gauges between "
              f"{args.baseline} and {args.current}")
        return 2

    failures = []
    print(f"{'series':<40} {'baseline':>12} {'current':>12} {'delta':>8}")
    for key in gated:
        base = float(baseline[key])
        cur = float(current[key])
        delta = (cur - base) / base if base > 0 else 0.0
        flag = ""
        if delta < -args.max_drop:
            failures.append(
                f"{key}: {base:.0f} -> {cur:.0f} ({delta:+.1%}, "
                f"limit -{args.max_drop:.0%})")
            flag = "  <-- REGRESSION"
        print(f"{key:<40} {base:>12.0f} {cur:>12.0f} {delta:>+7.1%}{flag}")
    for key in only_baseline:
        print(f"{key:<40} {float(baseline[key]):>12.0f} {'(absent)':>12} "
              f"{'skip':>8}")
    for key in only_current:
        print(f"{key:<40} {'(new)':>12} {float(current[key]):>12.0f} "
              f"{'skip':>8}")

    # Informational prefixes: matched by name across the two documents,
    # printed for trend-watching, never part of the delta gate.
    info_keys = sorted(k for k in set(baseline) | set(current)
                       if k.startswith(INFORMATIONAL_PREFIXES))
    if info_keys:
        print(f"\n{'informational series (not gated)':<40} {'baseline':>12} "
              f"{'current':>12}")
        for key in info_keys:
            base = (f"{float(baseline[key]):.0f}" if key in baseline
                    else "(absent)")
            cur = (f"{float(current[key]):.0f}" if key in current
                   else "(absent)")
            print(f"{key:<40} {base:>12} {cur:>12}")

    print()
    fleet_error = check_fleet_scaling(current, args.min_fleet_speedup)
    if fleet_error:
        failures.append(fleet_error)

    if failures:
        print("\nperf regression gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    skipped = len(only_baseline) + len(only_current)
    print(f"\nperf regression gate passed ({len(gated)} series gated, "
          f"{skipped} skipped, max allowed drop {args.max_drop:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
