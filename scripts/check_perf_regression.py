#!/usr/bin/env python3
"""Gate CI on throughput regressions.

Compares the `throughput.<flavor>.ops_per_sec` gauges of a freshly measured
bench summary against the checked-in baseline (BENCH_throughput.json) and
exits nonzero if any series dropped more than the allowed fraction.

Only the raw-execution ops_per_sec series are gated: they time a 30k-op
deterministic loop and are stable on shared runners. The campaign_* series
measure a full campaign whose wall time is milliseconds, so they are
reported for trend-watching but far too noisy to gate on.

Usage: check_perf_regression.py BASELINE.json CURRENT.json [--max-drop 0.20]
"""

import argparse
import json
import sys


def load_gauges(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("gauges", {})


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-drop", type=float, default=0.20,
                        help="maximum allowed fractional drop (default 0.20)")
    args = parser.parse_args()

    baseline = load_gauges(args.baseline)
    current = load_gauges(args.current)

    def gateable(key):
        return (key.startswith("throughput.") and key.endswith(".ops_per_sec")
                and not key.endswith(".campaign_ops_per_sec"))

    gated = sorted(k for k in baseline if gateable(k) and k in current)
    # Series on only one side are skipped, never failed: a freshly added
    # flavor or a scale.* sweep key lands in one file before the other, and
    # the gate must not block that first landing.
    only_baseline = sorted(k for k in baseline if gateable(k) and k not in current)
    only_current = sorted(k for k in current if gateable(k) and k not in baseline)
    if not gated:
        print(f"error: no common throughput.*.ops_per_sec gauges between "
              f"{args.baseline} and {args.current}")
        return 2

    failures = []
    print(f"{'series':<40} {'baseline':>12} {'current':>12} {'delta':>8}")
    for key in gated:
        base = float(baseline[key])
        cur = float(current[key])
        delta = (cur - base) / base if base > 0 else 0.0
        flag = ""
        if delta < -args.max_drop:
            failures.append(
                f"{key}: {base:.0f} -> {cur:.0f} ({delta:+.1%}, "
                f"limit -{args.max_drop:.0%})")
            flag = "  <-- REGRESSION"
        print(f"{key:<40} {base:>12.0f} {cur:>12.0f} {delta:>+7.1%}{flag}")
    for key in only_baseline:
        print(f"{key:<40} {float(baseline[key]):>12.0f} {'(absent)':>12} "
              f"{'skip':>8}")
    for key in only_current:
        print(f"{key:<40} {'(new)':>12} {float(current[key]):>12.0f} "
              f"{'skip':>8}")

    if failures:
        print("\nperf regression gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    skipped = len(only_baseline) + len(only_current)
    print(f"\nperf regression gate passed ({len(gated)} series gated, "
          f"{skipped} skipped, max allowed drop {args.max_drop:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
