#!/usr/bin/env python3
"""Replay a finished fleet directory and assert its correctness invariants.

Fleet mode trades digest determinism for throughput (worker interleaving is
timing-dependent), so CI validates it by invariants instead of byte-equality:

  completeness   queue/ and claimed/ are empty; done/ holds exactly one
                 well-framed record per job index, contiguous from 0
  no lost seeds  every fingerprint a worker logged to its publog exists in
                 the corpus directory as a well-framed seed file whose name,
                 payload fingerprint, and checksum all agree
  monotonicity   per worker heartbeat file, seq is strictly increasing
                 within each pid incarnation, and ops/testcases/coverage/
                 transitions never decrease within a (pid, job) run
  restart proof  with --expect-restarts N, at least one worker's heartbeat
                 stream shows > N distinct pids (the supervisor respawned it)

This is an independent re-implementation of the frame format (fleet_io.h:
8-byte magic, u32 LE version, u64 LE payload size, u64 LE FNV-1a64 payload
checksum, then the payload) so a framing bug in the C++ reader/writer pair
cannot self-certify.

Usage: check_fleet_invariants.py FLEET_DIR [--corpus-dir DIR]
           [--expect-jobs N] [--expect-restarts N]
"""

import argparse
import json
import os
import re
import struct
import sys

SEED_MAGIC = b"THMSEED1"
RESULT_MAGIC = b"THMSRES1"
FRAME_HEADER = 28
SEED_VERSION = 1
RESULT_VERSION = 1

_errors = []


def fail(message):
    _errors.append(message)
    print(f"FAIL: {message}")


def fnv1a64(data):
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def read_framed(path, magic, version):
    """Returns the validated payload bytes, or None after recording a FAIL."""
    with open(path, "rb") as f:
        blob = f.read()
    if len(blob) < FRAME_HEADER:
        fail(f"{path}: truncated header ({len(blob)} bytes)")
        return None
    got_magic = blob[:8]
    got_version, size, checksum = struct.unpack_from("<IQQ", blob, 8)
    if got_magic != magic:
        fail(f"{path}: magic {got_magic!r}, want {magic!r}")
        return None
    if got_version != version:
        fail(f"{path}: format version {got_version}, want {version}")
        return None
    payload = blob[FRAME_HEADER:]
    if len(payload) != size:
        fail(f"{path}: payload is {len(payload)} bytes, header claims {size}")
        return None
    if fnv1a64(payload) != checksum:
        fail(f"{path}: payload checksum mismatch")
        return None
    return payload


def check_queue_drained(fleet_dir, expect_jobs):
    queued = sorted(os.listdir(os.path.join(fleet_dir, "queue")))
    claimed = sorted(os.listdir(os.path.join(fleet_dir, "claimed")))
    if queued:
        fail(f"queue/ still holds {len(queued)} job(s): {queued[:5]}")
    if claimed:
        fail(f"claimed/ still holds {len(claimed)} orphan claim(s): "
             f"{claimed[:5]}")

    done_dir = os.path.join(fleet_dir, "done")
    indices = []
    for name in sorted(os.listdir(done_dir)):
        match = re.fullmatch(r"job-(\d{6})\.res", name)
        if not match:
            fail(f"done/{name}: foreign file in the done directory")
            continue
        if read_framed(os.path.join(done_dir, name), RESULT_MAGIC,
                       RESULT_VERSION) is not None:
            indices.append(int(match.group(1)))
    dupes = sorted({i for i in indices if indices.count(i) > 1})
    if dupes:
        fail(f"done records duplicated for job indices {dupes}")
    if sorted(indices) != list(range(len(indices))):
        fail(f"done record indices not contiguous from 0: {sorted(indices)}")
    if expect_jobs is not None and len(indices) != expect_jobs:
        fail(f"{len(indices)} done records, expected {expect_jobs}")
    print(f"  done records: {len(indices)} (exactly-once, contiguous)")
    return len(indices)


def check_corpus(corpus_dir):
    """Returns the set of fingerprints backed by a valid seed file."""
    valid = set()
    files = 0
    for name in sorted(os.listdir(corpus_dir)):
        match = re.fullmatch(r"seed-([0-9a-f]{16})\.seed", name)
        if not match:
            if name.endswith(".tmp"):
                continue  # an in-flight publication that never renamed
            fail(f"corpus/{name}: foreign file in the corpus directory")
            continue
        files += 1
        name_fingerprint = int(match.group(1), 16)
        payload = read_framed(os.path.join(corpus_dir, name), SEED_MAGIC,
                              SEED_VERSION)
        if payload is None:
            continue
        if len(payload) < 8:
            fail(f"corpus/{name}: payload too short for a fingerprint")
            continue
        payload_fingerprint = struct.unpack_from("<Q", payload, 0)[0]
        if payload_fingerprint != name_fingerprint:
            fail(f"corpus/{name}: payload fingerprint "
                 f"{payload_fingerprint:016x} disagrees with the file name")
            continue
        valid.add(name_fingerprint)
    print(f"  corpus: {len(valid)}/{files} seed files valid")
    return valid


def check_no_lost_seeds(fleet_dir, corpus_fingerprints):
    hb_dir = os.path.join(fleet_dir, "hb")
    logged = set()
    lines = 0
    for name in sorted(os.listdir(hb_dir)):
        if not name.endswith(".publog"):
            continue
        with open(os.path.join(hb_dir, name)) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                lines += 1
                if not re.fullmatch(r"[0-9a-f]{16}", line):
                    fail(f"hb/{name}: malformed publog line {line!r}")
                    continue
                logged.add(int(line, 16))
    lost = logged - corpus_fingerprints
    if lost:
        fail(f"{len(lost)} published seed(s) missing from the corpus: "
             f"{[f'{x:016x}' for x in sorted(lost)[:5]]}")
    # Line count can exceed the distinct-fingerprint count: two workers
    # racing the same fingerprint both log their publication but share one
    # corpus file — the invariant is set inclusion, not count equality.
    print(f"  publog: {lines} publication(s), {len(logged)} distinct, "
          f"all present in corpus" if not lost else
          f"  publog: {lines} publication(s), {len(logged)} distinct")


def check_heartbeats(fleet_dir):
    """Returns {worker_id: [distinct pids in first-seen order]}."""
    hb_dir = os.path.join(fleet_dir, "hb")
    pids_by_worker = {}
    for name in sorted(os.listdir(hb_dir)):
        match = re.fullmatch(r"worker-(\d+)\.hb\.jsonl", name)
        if not match:
            continue
        worker_id = int(match.group(1))
        pids = []
        last_seq = {}       # pid -> last seq
        last_progress = {}  # (pid, job) -> (ops, testcases, coverage, transitions)
        path = os.path.join(hb_dir, name)
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    hb = json.loads(line)
                except json.JSONDecodeError:
                    fail(f"hb/{name}:{lineno}: unparsable heartbeat line")
                    continue
                if hb.get("worker") != worker_id:
                    fail(f"hb/{name}:{lineno}: worker id {hb.get('worker')} "
                         f"in worker {worker_id}'s file")
                pid = hb["pid"]
                if pid not in last_seq:
                    pids.append(pid)
                elif hb["seq"] <= last_seq[pid]:
                    fail(f"hb/{name}:{lineno}: seq {hb['seq']} not above "
                         f"{last_seq[pid]} for pid {pid}")
                last_seq[pid] = hb["seq"]
                # Only "run" heartbeats carry cumulative per-job progress;
                # job_done/idle/exit lines report a fresh (zeroed) state.
                if hb.get("phase") != "run":
                    continue
                key = (pid, hb["job"])
                progress = (hb["ops"], hb["testcases"], hb["coverage"],
                            hb["transitions"])
                if key in last_progress:
                    prev = last_progress[key]
                    for field, before, now in zip(
                            ("ops", "testcases", "coverage", "transitions"),
                            prev, progress):
                        if now < before:
                            fail(f"hb/{name}:{lineno}: {field} regressed "
                                 f"{before} -> {now} within pid {pid} "
                                 f"job {hb['job']}")
                last_progress[key] = progress
        pids_by_worker[worker_id] = pids
        print(f"  heartbeats: worker {worker_id}: {len(last_seq)} "
              f"incarnation(s) (pids {pids}), monotone")
    if not pids_by_worker:
        fail("no worker heartbeat files found under hb/")
    return pids_by_worker


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("fleet_dir")
    parser.add_argument("--corpus-dir", default=None,
                        help="shared corpus directory (default: "
                             "FLEET_DIR/corpus)")
    parser.add_argument("--expect-jobs", type=int, default=None,
                        help="require exactly N done records")
    parser.add_argument("--expect-restarts", type=int, default=0,
                        help="require some worker to show more than N+0 "
                             "incarnations (default 0 = any)")
    args = parser.parse_args()

    fleet_dir = args.fleet_dir
    for sub in ("queue", "claimed", "done", "hb"):
        if not os.path.isdir(os.path.join(fleet_dir, sub)):
            print(f"error: {fleet_dir} has no {sub}/ — not a fleet directory")
            return 2
    corpus_dir = args.corpus_dir or os.path.join(fleet_dir, "corpus")
    if not os.path.isdir(corpus_dir):
        print(f"error: corpus directory {corpus_dir} does not exist")
        return 2

    print(f"checking fleet directory {fleet_dir}")
    check_queue_drained(fleet_dir, args.expect_jobs)
    corpus_fingerprints = check_corpus(corpus_dir)
    check_no_lost_seeds(fleet_dir, corpus_fingerprints)
    pids_by_worker = check_heartbeats(fleet_dir)

    if args.expect_restarts > 0:
        restarts = sum(max(0, len(p) - 1) for p in pids_by_worker.values())
        if restarts < args.expect_restarts:
            fail(f"observed {restarts} worker restart(s) across heartbeat "
                 f"streams, expected >= {args.expect_restarts}")
        else:
            print(f"  restarts: {restarts} observed (>= "
                  f"{args.expect_restarts} required)")

    if _errors:
        print(f"\nfleet invariants FAILED ({len(_errors)} violation(s))")
        return 1
    print("\nfleet invariants OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
