#!/usr/bin/env bash
# CI fleet-smoke: run a 2-worker fleet with the worker-0 crash hook armed,
# require the supervisor to restart the crashed worker and finish every job,
# then replay the fleet directory with check_fleet_invariants.py (exactly-once
# done records, no lost corpus seeds, monotone heartbeats, >= 1 restart).
#
# Usage: scripts/fleet_smoke.sh [path/to/themis_cli]
set -euo pipefail

CLI="${1:-./build/examples/themis_cli}"
if [[ ! -x "$CLI" ]]; then
  echo "fleet-smoke: $CLI not found or not executable" >&2
  exit 1
fi
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
FLEET="$WORK/fleet"

# 2 workers x 4 jobs, 2 virtual hours each: seconds of wall time, several
# checkpoints per job so the crash hook halts mid-job, not at a boundary.
echo "fleet-smoke: 2-worker fleet, worker 0 crashes after its first checkpoint"
OUT="$("$CLI" fleet run gluster --dir="$FLEET" --workers 2 \
    --hours 2 --seed 20260808 --seeds 4 \
    --checkpoint-every-ops 500 --import-every 16 --heartbeat-every 1 \
    --crash-worker0-after-checkpoints 1 | tee /dev/stderr)"

RESTARTS="$(sed -n 's/.* \([0-9][0-9]*\) worker restarts.*/\1/p' <<<"$OUT")"
if [[ -z "$RESTARTS" || "$RESTARTS" -lt 1 ]]; then
  echo "fleet-smoke: FAIL — expected >= 1 worker restart, got '${RESTARTS:-none}'" >&2
  exit 1
fi
echo "fleet-smoke: supervisor restarted a worker $RESTARTS time(s)"

echo "fleet-smoke: fleet status after completion"
"$CLI" fleet status --dir="$FLEET"

echo "fleet-smoke: replaying invariants"
python3 "$SCRIPT_DIR/check_fleet_invariants.py" "$FLEET" \
    --expect-jobs 4 --expect-restarts 1

# The merged artifacts the supervisor promises CI.
for artifact in fleet_summary.json fleet_metrics.json fleet_telemetry.jsonl; do
  if [[ ! -s "$FLEET/$artifact" ]]; then
    echo "fleet-smoke: FAIL — missing merged artifact $artifact" >&2
    exit 1
  fi
done
python3 -c "import json,sys; json.load(open(sys.argv[1])); json.load(open(sys.argv[2]))" \
    "$FLEET/fleet_summary.json" "$FLEET/fleet_metrics.json"

echo "fleet-smoke: PASS — crash survived, invariants hold, artifacts merged"
