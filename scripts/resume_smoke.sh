#!/usr/bin/env bash
# CI resume-smoke: run a checkpointing campaign matrix, SIGKILL it the moment
# the first snapshot file lands on disk, resume from the surviving snapshots,
# and require the resumed --summary-json (per-job digests and result
# counters) to be byte-identical to an uninterrupted run's.
#
# Usage: scripts/resume_smoke.sh [path/to/themis_cli]
set -euo pipefail

CLI="${1:-./build/examples/themis_cli}"
if [[ ! -x "$CLI" ]]; then
  echo "resume-smoke: $CLI not found or not executable" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Two 24-virtual-hour campaigns on two worker threads: enough ops for
# several checkpoints per job, well under the CI time budget.
COMMON=(fuzz gluster --hours 24 --seed 20260806 --seeds 2 --jobs 2)

echo "resume-smoke: uninterrupted reference run"
"$CLI" "${COMMON[@]}" --summary-json="$WORK/reference.json" >/dev/null

CKPT="$WORK/ckpt"
mkdir -p "$CKPT"
echo "resume-smoke: checkpointing run (SIGKILL at first snapshot)"
"$CLI" "${COMMON[@]}" --checkpoint-dir="$CKPT" --checkpoint-every-ops 2000 \
    >/dev/null 2>&1 &
PID=$!
for _ in $(seq 1 6000); do
  if ls "$CKPT"/job-*.ckpt >/dev/null 2>&1; then break; fi
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.01
done
if kill -0 "$PID" 2>/dev/null; then
  kill -KILL "$PID"
  echo "resume-smoke: SIGKILLed pid $PID after the first checkpoint landed"
else
  # Also a valid path: resume then loads the final snapshots.
  echo "resume-smoke: campaign finished before the kill landed"
fi
wait "$PID" 2>/dev/null || true

echo "resume-smoke: surviving snapshots:"
ls -l "$CKPT"

echo "resume-smoke: resuming"
"$CLI" "${COMMON[@]}" --checkpoint-dir="$CKPT" --checkpoint-every-ops 2000 \
    --resume --summary-json="$WORK/resumed.json" >/dev/null

diff "$WORK/reference.json" "$WORK/resumed.json"
echo "resume-smoke: PASS — summaries byte-identical after SIGKILL + resume"

# Fleet phase: a single-worker single-job fleet must stay on the
# deterministic path — its merged fleet_summary.json byte-identical to the
# plain runner's --summary-json on the same matrix, even when the worker
# crashes after its first checkpoint and the supervisor restarts it mid-job.
# One job, because with more a later job would import the earlier jobs'
# corpus seeds and legitimately diverge (that cross-pollination is fleet
# mode's point; fleet_smoke.sh validates it by invariants). The reference
# run needs --telemetry-out because fleet workers always collect telemetry
# and telemetry events are part of the per-job digest.
FLEET_COMMON=(gluster --hours 2 --seed 20260806 --seeds 1)

echo "resume-smoke: fleet reference run (telemetry on)"
"$CLI" fuzz "${FLEET_COMMON[@]}" --telemetry-out="$WORK/ref_events.jsonl" \
    --summary-json="$WORK/fleet_reference.json" >/dev/null

echo "resume-smoke: 1-worker fleet with crash-after-first-checkpoint hook"
"$CLI" fleet run "${FLEET_COMMON[@]}" --dir="$WORK/fleet" --workers 1 \
    --checkpoint-every-ops 500 --crash-worker0-after-checkpoints 1 \
    >/dev/null

diff "$WORK/fleet_reference.json" "$WORK/fleet/fleet_summary.json"
echo "resume-smoke: PASS — single-worker fleet summary byte-identical to the plain runner after crash + restart"
