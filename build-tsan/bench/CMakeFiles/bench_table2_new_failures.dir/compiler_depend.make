# Empty compiler generated dependencies file for bench_table2_new_failures.
# This may be replaced when dependencies are built.
