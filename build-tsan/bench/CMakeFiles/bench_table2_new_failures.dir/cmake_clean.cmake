file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_new_failures.dir/bench_table2_new_failures.cc.o"
  "CMakeFiles/bench_table2_new_failures.dir/bench_table2_new_failures.cc.o.d"
  "bench_table2_new_failures"
  "bench_table2_new_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_new_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
