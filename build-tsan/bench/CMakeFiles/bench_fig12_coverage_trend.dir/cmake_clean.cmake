file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_coverage_trend.dir/bench_fig12_coverage_trend.cc.o"
  "CMakeFiles/bench_fig12_coverage_trend.dir/bench_fig12_coverage_trend.cc.o.d"
  "bench_fig12_coverage_trend"
  "bench_fig12_coverage_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_coverage_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
