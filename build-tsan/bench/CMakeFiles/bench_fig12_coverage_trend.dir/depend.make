# Empty dependencies file for bench_fig12_coverage_trend.
# This may be replaced when dependencies are built.
