file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_weights.dir/bench_table8_weights.cc.o"
  "CMakeFiles/bench_table8_weights.dir/bench_table8_weights.cc.o.d"
  "bench_table8_weights"
  "bench_table8_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
