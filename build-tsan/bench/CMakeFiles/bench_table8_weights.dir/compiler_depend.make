# Empty compiler generated dependencies file for bench_table8_weights.
# This may be replaced when dependencies are built.
