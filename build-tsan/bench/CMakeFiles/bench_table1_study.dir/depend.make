# Empty dependencies file for bench_table1_study.
# This may be replaced when dependencies are built.
