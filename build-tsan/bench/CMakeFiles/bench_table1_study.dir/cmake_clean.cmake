file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_study.dir/bench_table1_study.cc.o"
  "CMakeFiles/bench_table1_study.dir/bench_table1_study.cc.o.d"
  "bench_table1_study"
  "bench_table1_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
