file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_accumulation.dir/bench_fig2_accumulation.cc.o"
  "CMakeFiles/bench_fig2_accumulation.dir/bench_fig2_accumulation.cc.o.d"
  "bench_fig2_accumulation"
  "bench_fig2_accumulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_accumulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
