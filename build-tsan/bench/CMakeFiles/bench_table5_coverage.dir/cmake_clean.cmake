file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_coverage.dir/bench_table5_coverage.cc.o"
  "CMakeFiles/bench_table5_coverage.dir/bench_table5_coverage.cc.o.d"
  "bench_table5_coverage"
  "bench_table5_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
