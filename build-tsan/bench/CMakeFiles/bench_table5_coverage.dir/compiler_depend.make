# Empty compiler generated dependencies file for bench_table5_coverage.
# This may be replaced when dependencies are built.
