file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_methods.dir/bench_table3_methods.cc.o"
  "CMakeFiles/bench_table3_methods.dir/bench_table3_methods.cc.o.d"
  "bench_table3_methods"
  "bench_table3_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
