# Empty compiler generated dependencies file for bench_table3_methods.
# This may be replaced when dependencies are built.
