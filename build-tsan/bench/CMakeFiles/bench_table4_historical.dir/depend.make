# Empty dependencies file for bench_table4_historical.
# This may be replaced when dependencies are built.
