file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_historical.dir/bench_table4_historical.cc.o"
  "CMakeFiles/bench_table4_historical.dir/bench_table4_historical.cc.o.d"
  "bench_table4_historical"
  "bench_table4_historical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_historical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
