# Empty dependencies file for bench_table6_ablation.
# This may be replaced when dependencies are built.
