file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_ablation.dir/bench_table6_ablation.cc.o"
  "CMakeFiles/bench_table6_ablation.dir/bench_table6_ablation.cc.o.d"
  "bench_table6_ablation"
  "bench_table6_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
