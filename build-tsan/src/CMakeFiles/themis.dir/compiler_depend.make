# Empty compiler generated dependencies file for themis.
# This may be replaced when dependencies are built.
