
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/alternate.cc" "src/CMakeFiles/themis.dir/baselines/alternate.cc.o" "gcc" "src/CMakeFiles/themis.dir/baselines/alternate.cc.o.d"
  "/root/repo/src/baselines/concurrent.cc" "src/CMakeFiles/themis.dir/baselines/concurrent.cc.o" "gcc" "src/CMakeFiles/themis.dir/baselines/concurrent.cc.o.d"
  "/root/repo/src/baselines/fix_conf.cc" "src/CMakeFiles/themis.dir/baselines/fix_conf.cc.o" "gcc" "src/CMakeFiles/themis.dir/baselines/fix_conf.cc.o.d"
  "/root/repo/src/baselines/fix_req.cc" "src/CMakeFiles/themis.dir/baselines/fix_req.cc.o" "gcc" "src/CMakeFiles/themis.dir/baselines/fix_req.cc.o.d"
  "/root/repo/src/baselines/themis_minus.cc" "src/CMakeFiles/themis.dir/baselines/themis_minus.cc.o" "gcc" "src/CMakeFiles/themis.dir/baselines/themis_minus.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/themis.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/themis.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/themis.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/themis.dir/common/clock.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/themis.dir/common/log.cc.o" "gcc" "src/CMakeFiles/themis.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/themis.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/themis.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/themis.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/themis.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/themis.dir/common/status.cc.o" "gcc" "src/CMakeFiles/themis.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/themis.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/themis.dir/common/strings.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/CMakeFiles/themis.dir/core/executor.cc.o" "gcc" "src/CMakeFiles/themis.dir/core/executor.cc.o.d"
  "/root/repo/src/core/fuzzer.cc" "src/CMakeFiles/themis.dir/core/fuzzer.cc.o" "gcc" "src/CMakeFiles/themis.dir/core/fuzzer.cc.o.d"
  "/root/repo/src/core/generator.cc" "src/CMakeFiles/themis.dir/core/generator.cc.o" "gcc" "src/CMakeFiles/themis.dir/core/generator.cc.o.d"
  "/root/repo/src/core/input_model.cc" "src/CMakeFiles/themis.dir/core/input_model.cc.o" "gcc" "src/CMakeFiles/themis.dir/core/input_model.cc.o.d"
  "/root/repo/src/core/mutator.cc" "src/CMakeFiles/themis.dir/core/mutator.cc.o" "gcc" "src/CMakeFiles/themis.dir/core/mutator.cc.o.d"
  "/root/repo/src/core/opseq.cc" "src/CMakeFiles/themis.dir/core/opseq.cc.o" "gcc" "src/CMakeFiles/themis.dir/core/opseq.cc.o.d"
  "/root/repo/src/core/replay.cc" "src/CMakeFiles/themis.dir/core/replay.cc.o" "gcc" "src/CMakeFiles/themis.dir/core/replay.cc.o.d"
  "/root/repo/src/core/seed_pool.cc" "src/CMakeFiles/themis.dir/core/seed_pool.cc.o" "gcc" "src/CMakeFiles/themis.dir/core/seed_pool.cc.o.d"
  "/root/repo/src/core/strategy_registry.cc" "src/CMakeFiles/themis.dir/core/strategy_registry.cc.o" "gcc" "src/CMakeFiles/themis.dir/core/strategy_registry.cc.o.d"
  "/root/repo/src/coverage/coverage.cc" "src/CMakeFiles/themis.dir/coverage/coverage.cc.o" "gcc" "src/CMakeFiles/themis.dir/coverage/coverage.cc.o.d"
  "/root/repo/src/dfs/brick.cc" "src/CMakeFiles/themis.dir/dfs/brick.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/brick.cc.o.d"
  "/root/repo/src/dfs/cluster.cc" "src/CMakeFiles/themis.dir/dfs/cluster.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/cluster.cc.o.d"
  "/root/repo/src/dfs/flavors/ceph_like.cc" "src/CMakeFiles/themis.dir/dfs/flavors/ceph_like.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/flavors/ceph_like.cc.o.d"
  "/root/repo/src/dfs/flavors/factory.cc" "src/CMakeFiles/themis.dir/dfs/flavors/factory.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/flavors/factory.cc.o.d"
  "/root/repo/src/dfs/flavors/gluster_like.cc" "src/CMakeFiles/themis.dir/dfs/flavors/gluster_like.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/flavors/gluster_like.cc.o.d"
  "/root/repo/src/dfs/flavors/hdfs_like.cc" "src/CMakeFiles/themis.dir/dfs/flavors/hdfs_like.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/flavors/hdfs_like.cc.o.d"
  "/root/repo/src/dfs/flavors/leo_like.cc" "src/CMakeFiles/themis.dir/dfs/flavors/leo_like.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/flavors/leo_like.cc.o.d"
  "/root/repo/src/dfs/migration.cc" "src/CMakeFiles/themis.dir/dfs/migration.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/migration.cc.o.d"
  "/root/repo/src/dfs/namespace_tree.cc" "src/CMakeFiles/themis.dir/dfs/namespace_tree.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/namespace_tree.cc.o.d"
  "/root/repo/src/dfs/node.cc" "src/CMakeFiles/themis.dir/dfs/node.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/node.cc.o.d"
  "/root/repo/src/dfs/operation.cc" "src/CMakeFiles/themis.dir/dfs/operation.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/operation.cc.o.d"
  "/root/repo/src/dfs/placement/crush_map.cc" "src/CMakeFiles/themis.dir/dfs/placement/crush_map.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/placement/crush_map.cc.o.d"
  "/root/repo/src/dfs/placement/dht_layout.cc" "src/CMakeFiles/themis.dir/dfs/placement/dht_layout.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/placement/dht_layout.cc.o.d"
  "/root/repo/src/dfs/placement/hash_ring.cc" "src/CMakeFiles/themis.dir/dfs/placement/hash_ring.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/placement/hash_ring.cc.o.d"
  "/root/repo/src/dfs/placement/weighted_tree.cc" "src/CMakeFiles/themis.dir/dfs/placement/weighted_tree.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/placement/weighted_tree.cc.o.d"
  "/root/repo/src/dfs/types.cc" "src/CMakeFiles/themis.dir/dfs/types.cc.o" "gcc" "src/CMakeFiles/themis.dir/dfs/types.cc.o.d"
  "/root/repo/src/faults/fault_registry.cc" "src/CMakeFiles/themis.dir/faults/fault_registry.cc.o" "gcc" "src/CMakeFiles/themis.dir/faults/fault_registry.cc.o.d"
  "/root/repo/src/faults/fault_spec.cc" "src/CMakeFiles/themis.dir/faults/fault_spec.cc.o" "gcc" "src/CMakeFiles/themis.dir/faults/fault_spec.cc.o.d"
  "/root/repo/src/faults/historical_corpus.cc" "src/CMakeFiles/themis.dir/faults/historical_corpus.cc.o" "gcc" "src/CMakeFiles/themis.dir/faults/historical_corpus.cc.o.d"
  "/root/repo/src/faults/injector.cc" "src/CMakeFiles/themis.dir/faults/injector.cc.o" "gcc" "src/CMakeFiles/themis.dir/faults/injector.cc.o.d"
  "/root/repo/src/harness/campaign.cc" "src/CMakeFiles/themis.dir/harness/campaign.cc.o" "gcc" "src/CMakeFiles/themis.dir/harness/campaign.cc.o.d"
  "/root/repo/src/harness/experiments.cc" "src/CMakeFiles/themis.dir/harness/experiments.cc.o" "gcc" "src/CMakeFiles/themis.dir/harness/experiments.cc.o.d"
  "/root/repo/src/harness/ground_truth.cc" "src/CMakeFiles/themis.dir/harness/ground_truth.cc.o" "gcc" "src/CMakeFiles/themis.dir/harness/ground_truth.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/CMakeFiles/themis.dir/harness/report.cc.o" "gcc" "src/CMakeFiles/themis.dir/harness/report.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/CMakeFiles/themis.dir/harness/runner.cc.o" "gcc" "src/CMakeFiles/themis.dir/harness/runner.cc.o.d"
  "/root/repo/src/harness/thread_pool.cc" "src/CMakeFiles/themis.dir/harness/thread_pool.cc.o" "gcc" "src/CMakeFiles/themis.dir/harness/thread_pool.cc.o.d"
  "/root/repo/src/monitor/detector.cc" "src/CMakeFiles/themis.dir/monitor/detector.cc.o" "gcc" "src/CMakeFiles/themis.dir/monitor/detector.cc.o.d"
  "/root/repo/src/monitor/dynamic_threshold.cc" "src/CMakeFiles/themis.dir/monitor/dynamic_threshold.cc.o" "gcc" "src/CMakeFiles/themis.dir/monitor/dynamic_threshold.cc.o.d"
  "/root/repo/src/monitor/load_model.cc" "src/CMakeFiles/themis.dir/monitor/load_model.cc.o" "gcc" "src/CMakeFiles/themis.dir/monitor/load_model.cc.o.d"
  "/root/repo/src/monitor/metadata_checker.cc" "src/CMakeFiles/themis.dir/monitor/metadata_checker.cc.o" "gcc" "src/CMakeFiles/themis.dir/monitor/metadata_checker.cc.o.d"
  "/root/repo/src/monitor/states_monitor.cc" "src/CMakeFiles/themis.dir/monitor/states_monitor.cc.o" "gcc" "src/CMakeFiles/themis.dir/monitor/states_monitor.cc.o.d"
  "/root/repo/src/study/study_corpus.cc" "src/CMakeFiles/themis.dir/study/study_corpus.cc.o" "gcc" "src/CMakeFiles/themis.dir/study/study_corpus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
