file(REMOVE_RECURSE
  "CMakeFiles/hunt_gluster_linkfile.dir/hunt_gluster_linkfile.cpp.o"
  "CMakeFiles/hunt_gluster_linkfile.dir/hunt_gluster_linkfile.cpp.o.d"
  "hunt_gluster_linkfile"
  "hunt_gluster_linkfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hunt_gluster_linkfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
