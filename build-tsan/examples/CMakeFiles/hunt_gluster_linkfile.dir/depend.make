# Empty dependencies file for hunt_gluster_linkfile.
# This may be replaced when dependencies are built.
