file(REMOVE_RECURSE
  "CMakeFiles/threshold_tuning.dir/threshold_tuning.cpp.o"
  "CMakeFiles/threshold_tuning.dir/threshold_tuning.cpp.o.d"
  "threshold_tuning"
  "threshold_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
