# Empty compiler generated dependencies file for threshold_tuning.
# This may be replaced when dependencies are built.
