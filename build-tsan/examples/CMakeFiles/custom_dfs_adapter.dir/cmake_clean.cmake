file(REMOVE_RECURSE
  "CMakeFiles/custom_dfs_adapter.dir/custom_dfs_adapter.cpp.o"
  "CMakeFiles/custom_dfs_adapter.dir/custom_dfs_adapter.cpp.o.d"
  "custom_dfs_adapter"
  "custom_dfs_adapter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_dfs_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
