# Empty compiler generated dependencies file for custom_dfs_adapter.
# This may be replaced when dependencies are built.
