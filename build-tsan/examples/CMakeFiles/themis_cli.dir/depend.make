# Empty dependencies file for themis_cli.
# This may be replaced when dependencies are built.
