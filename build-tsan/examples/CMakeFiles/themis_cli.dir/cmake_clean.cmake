file(REMOVE_RECURSE
  "CMakeFiles/themis_cli.dir/themis_cli.cpp.o"
  "CMakeFiles/themis_cli.dir/themis_cli.cpp.o.d"
  "themis_cli"
  "themis_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/themis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
