file(REMOVE_RECURSE
  "CMakeFiles/metadata_test.dir/metadata_test.cc.o"
  "CMakeFiles/metadata_test.dir/metadata_test.cc.o.d"
  "metadata_test"
  "metadata_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
