# Empty dependencies file for metadata_test.
# This may be replaced when dependencies are built.
