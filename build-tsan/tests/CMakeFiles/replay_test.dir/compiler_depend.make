# Empty compiler generated dependencies file for replay_test.
# This may be replaced when dependencies are built.
