file(REMOVE_RECURSE
  "CMakeFiles/replay_test.dir/replay_test.cc.o"
  "CMakeFiles/replay_test.dir/replay_test.cc.o.d"
  "replay_test"
  "replay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
