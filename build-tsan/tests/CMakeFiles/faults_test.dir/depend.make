# Empty dependencies file for faults_test.
# This may be replaced when dependencies are built.
