file(REMOVE_RECURSE
  "CMakeFiles/faults_test.dir/faults_test.cc.o"
  "CMakeFiles/faults_test.dir/faults_test.cc.o.d"
  "faults_test"
  "faults_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faults_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
