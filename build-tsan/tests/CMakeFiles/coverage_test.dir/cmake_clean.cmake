file(REMOVE_RECURSE
  "CMakeFiles/coverage_test.dir/coverage_test.cc.o"
  "CMakeFiles/coverage_test.dir/coverage_test.cc.o.d"
  "coverage_test"
  "coverage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
