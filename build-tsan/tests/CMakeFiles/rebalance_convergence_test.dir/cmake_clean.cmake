file(REMOVE_RECURSE
  "CMakeFiles/rebalance_convergence_test.dir/rebalance_convergence_test.cc.o"
  "CMakeFiles/rebalance_convergence_test.dir/rebalance_convergence_test.cc.o.d"
  "rebalance_convergence_test"
  "rebalance_convergence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebalance_convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
