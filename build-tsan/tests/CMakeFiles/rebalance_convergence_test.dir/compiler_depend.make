# Empty compiler generated dependencies file for rebalance_convergence_test.
# This may be replaced when dependencies are built.
