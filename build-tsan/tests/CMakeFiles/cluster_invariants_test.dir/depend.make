# Empty dependencies file for cluster_invariants_test.
# This may be replaced when dependencies are built.
