file(REMOVE_RECURSE
  "CMakeFiles/cluster_invariants_test.dir/cluster_invariants_test.cc.o"
  "CMakeFiles/cluster_invariants_test.dir/cluster_invariants_test.cc.o.d"
  "cluster_invariants_test"
  "cluster_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
