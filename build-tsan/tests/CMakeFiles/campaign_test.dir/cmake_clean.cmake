file(REMOVE_RECURSE
  "CMakeFiles/campaign_test.dir/campaign_test.cc.o"
  "CMakeFiles/campaign_test.dir/campaign_test.cc.o.d"
  "campaign_test"
  "campaign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
