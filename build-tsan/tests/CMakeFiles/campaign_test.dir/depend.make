# Empty dependencies file for campaign_test.
# This may be replaced when dependencies are built.
