file(REMOVE_RECURSE
  "CMakeFiles/flavor_balancer_test.dir/flavor_balancer_test.cc.o"
  "CMakeFiles/flavor_balancer_test.dir/flavor_balancer_test.cc.o.d"
  "flavor_balancer_test"
  "flavor_balancer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flavor_balancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
