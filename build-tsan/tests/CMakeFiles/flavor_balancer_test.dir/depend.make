# Empty dependencies file for flavor_balancer_test.
# This may be replaced when dependencies are built.
