file(REMOVE_RECURSE
  "CMakeFiles/study_corpus_test.dir/study_corpus_test.cc.o"
  "CMakeFiles/study_corpus_test.dir/study_corpus_test.cc.o.d"
  "study_corpus_test"
  "study_corpus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
