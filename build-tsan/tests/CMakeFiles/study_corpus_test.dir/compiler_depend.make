# Empty compiler generated dependencies file for study_corpus_test.
# This may be replaced when dependencies are built.
