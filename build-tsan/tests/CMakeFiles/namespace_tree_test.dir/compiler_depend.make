# Empty compiler generated dependencies file for namespace_tree_test.
# This may be replaced when dependencies are built.
