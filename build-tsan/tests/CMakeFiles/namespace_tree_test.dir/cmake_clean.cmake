file(REMOVE_RECURSE
  "CMakeFiles/namespace_tree_test.dir/namespace_tree_test.cc.o"
  "CMakeFiles/namespace_tree_test.dir/namespace_tree_test.cc.o.d"
  "namespace_tree_test"
  "namespace_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namespace_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
