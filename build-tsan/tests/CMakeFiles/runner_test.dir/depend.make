# Empty dependencies file for runner_test.
# This may be replaced when dependencies are built.
