file(REMOVE_RECURSE
  "CMakeFiles/runner_test.dir/runner_test.cc.o"
  "CMakeFiles/runner_test.dir/runner_test.cc.o.d"
  "runner_test"
  "runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
