file(REMOVE_RECURSE
  "CMakeFiles/placement_test.dir/placement_test.cc.o"
  "CMakeFiles/placement_test.dir/placement_test.cc.o.d"
  "placement_test"
  "placement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
