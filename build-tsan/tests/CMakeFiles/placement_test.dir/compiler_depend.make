# Empty compiler generated dependencies file for placement_test.
# This may be replaced when dependencies are built.
