# Empty dependencies file for cluster_ops_test.
# This may be replaced when dependencies are built.
