file(REMOVE_RECURSE
  "CMakeFiles/cluster_ops_test.dir/cluster_ops_test.cc.o"
  "CMakeFiles/cluster_ops_test.dir/cluster_ops_test.cc.o.d"
  "cluster_ops_test"
  "cluster_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
