// Per-campaign event telemetry: a structured record of what the fuzzing loop
// actually did — seeds kept or dropped, mutation kinds, the variance
// trajectory, detector verdicts, double-check outcomes, rebalance
// convergence — exported as JSONL for offline analysis.
//
// Determinism contract: every event is stamped with *virtual* time from the
// campaign's own clock and carries only deterministic payloads, so the event
// stream of a job is a pure function of its config and seed. The runner
// writes job streams in canonical job order, which makes the JSONL file
// byte-identical for any --jobs value (only the per-job `job_summary`
// records carry wall/cpu time and are excluded from determinism
// comparisons). Recording never draws from any Rng.
//
// An EventLog belongs to exactly one campaign (one runner job) and is only
// touched from that job's thread, so recording is a plain vector push —
// cross-thread aggregation happens at the metrics layer, not here.
//
// Under THEMIS_TELEMETRY_DISABLED every method is an empty inline and the
// event vector stays empty.

#ifndef SRC_TELEMETRY_EVENT_LOG_H_
#define SRC_TELEMETRY_EVENT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/snapshot_io.h"

namespace themis {

enum class CampaignEventKind : uint8_t {
  kSeedAccepted = 0,   // label=reason(s), value=score, value2=variance gain
  kSeedRejected,       // value2=variance gain (non-positive)
  kMutation,           // label=replace|delete|insert, count=times applied
  kVariance,           // value=score before, value2=score after a test case
  kDetectorVerdict,    // label=dimension|none, value=worst ratio, count=streak
  kDoubleCheck,        // label=confirmed|refuted|rebalance_hung, value=ratio
  kRebalanceRound,     // label=planned|drained|empty, count=moves in the round
  kRebalanceWait,      // label=done|timeout, count=poll iterations
  kClusterReset,       // after a confirmed failure
};

const char* CampaignEventKindName(CampaignEventKind kind);

struct CampaignEvent {
  CampaignEventKind kind = CampaignEventKind::kVariance;
  SimTime at = 0;        // virtual time
  std::string label;     // kind-specific discriminator (see enum comments)
  double value = 0.0;
  double value2 = 0.0;
  uint64_t count = 0;

  // One canonical JSON object (no trailing newline); `job` tags the owning
  // campaign job in matrix output, -1 for standalone campaigns.
  std::string ToJson(int64_t job = -1) const;

  bool operator==(const CampaignEvent& other) const = default;
};

class EventLog {
 public:
  // Binds the virtual clock used to stamp events; unstamped logs record at 0.
  void BindClock(const VirtualClock* clock) {
#if !defined(THEMIS_TELEMETRY_DISABLED)
    clock_ = clock;
#else
    (void)clock;
#endif
  }

  void Record(CampaignEventKind kind, std::string label = {}, double value = 0.0,
              double value2 = 0.0, uint64_t count = 0);

  const std::vector<CampaignEvent>& events() const {
#if !defined(THEMIS_TELEMETRY_DISABLED)
    return events_;
#else
    static const std::vector<CampaignEvent> kEmpty;
    return kEmpty;
#endif
  }

  std::vector<CampaignEvent> TakeEvents() {
#if !defined(THEMIS_TELEMETRY_DISABLED)
    std::vector<CampaignEvent> out = std::move(events_);
    events_.clear();
    return out;
#else
    return {};
#endif
  }

  // Checkpointing (DESIGN.md §11): the recorded events. The clock binding is
  // re-established by the campaign on restore. In telemetry-disabled builds
  // the log is always empty, so Save writes a zero count and Restore accepts
  // only that — a snapshot is never shared across telemetry build modes.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
#if !defined(THEMIS_TELEMETRY_DISABLED)
  const VirtualClock* clock_ = nullptr;
  std::vector<CampaignEvent> events_;
#endif
};

// Checkpoint serializers for the event value type (always available, even in
// telemetry-disabled builds — CampaignResult::telemetry uses them too).
void SaveCampaignEvent(SnapshotWriter& writer, const CampaignEvent& event);
void RestoreCampaignEvent(SnapshotReader& reader, CampaignEvent* event);

// Minimal JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& text);

}  // namespace themis

#endif  // SRC_TELEMETRY_EVENT_LOG_H_
