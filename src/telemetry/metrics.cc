#include "src/telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <thread>

#include "src/common/strings.h"

namespace themis {

size_t MetricShardIndex() {
  // Hash the thread id once per thread; the pool's workers land on distinct
  // shards with high probability and never migrate.
  static thread_local const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kMetricShards;
  return index;
}

uint64_t Counter::Value() const {
#if !defined(THEMIS_TELEMETRY_DISABLED)
  uint64_t total = 0;
  for (const internal::PaddedAtomicU64& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
#else
  return 0;
#endif
}

int64_t Gauge::Value() const {
#if !defined(THEMIS_TELEMETRY_DISABLED)
  int64_t total = 0;
  for (const internal::PaddedAtomicI64& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
#else
  return 0;
#endif
}

double HistogramSnapshot::BucketBound(size_t i) {
  if (i + 1 >= kHistogramBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  // 1, 4, 16, ..., 4^14.
  return std::pow(4.0, static_cast<double>(i));
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    uint64_t in_bucket = buckets[i];
    if (static_cast<double>(seen + in_bucket) >= target && in_bucket > 0) {
      double lo = i == 0 ? 0.0 : BucketBound(i - 1);
      double hi = BucketBound(i);
      if (std::isinf(hi)) {
        return lo;  // overflow bucket has no upper edge to interpolate to
      }
      double fraction = (target - static_cast<double>(seen)) /
                        static_cast<double>(in_bucket);
      return lo + fraction * (hi - lo);
    }
    seen += in_bucket;
  }
  return BucketBound(kHistogramBuckets - 2);
}

#if !defined(THEMIS_TELEMETRY_DISABLED)
namespace {

size_t BucketFor(double value) {
  for (size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    if (value <= HistogramSnapshot::BucketBound(i)) {
      return i;
    }
  }
  return kHistogramBuckets - 1;
}

}  // namespace
#endif

void Histogram::Record(double value) {
#if !defined(THEMIS_TELEMETRY_DISABLED)
  Shard& shard = shards_[MetricShardIndex()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  // The sum is a double accumulated by CAS; contention is already absorbed by
  // the shard striping, so the loop almost never retries.
  uint64_t observed = shard.sum_bits.load(std::memory_order_relaxed);
  uint64_t desired;
  do {
    desired = std::bit_cast<uint64_t>(std::bit_cast<double>(observed) + value);
  } while (!shard.sum_bits.compare_exchange_weak(observed, desired,
                                                 std::memory_order_relaxed));
#else
  (void)value;
#endif
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
#if !defined(THEMIS_TELEMETRY_DISABLED)
  for (const Shard& shard : shards_) {
    out.count += shard.count.load(std::memory_order_relaxed);
    out.sum += std::bit_cast<double>(shard.sum_bits.load(std::memory_order_relaxed));
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      out.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
#endif
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter.Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge.Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    out.histograms[name] = histogram.Snapshot();
  }
  return out;
}

std::string MetricsRegistry::RenderSummary() const {
  MetricsSnapshot snapshot = Snapshot();
  std::string out;
  out += Sprintf("%-40s %16s\n", "metric", "value");
  out += std::string(57, '-') + "\n";
  for (const auto& [name, value] : snapshot.counters) {
    out += Sprintf("%-40s %16llu\n", name.c_str(),
                   static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += Sprintf("%-40s %16lld\n", name.c_str(), static_cast<long long>(value));
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out += Sprintf("%-40s count=%llu mean=%.1f p50=%.1f p99=%.1f\n", name.c_str(),
                   static_cast<unsigned long long>(h.count), h.mean(),
                   h.Quantile(0.5), h.Quantile(0.99));
  }
  return out;
}

}  // namespace themis
