#include "src/telemetry/trace.h"

namespace themis {

SpanMetrics MakeSpanMetrics(const std::string& name) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  return SpanMetrics{&registry.GetHistogram("span." + name + ".us"),
                     &registry.GetCounter("span." + name + ".calls")};
}

}  // namespace themis
