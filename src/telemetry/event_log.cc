#include "src/telemetry/event_log.h"

#include "src/common/strings.h"

namespace themis {

const char* CampaignEventKindName(CampaignEventKind kind) {
  switch (kind) {
    case CampaignEventKind::kSeedAccepted:
      return "seed_accepted";
    case CampaignEventKind::kSeedRejected:
      return "seed_rejected";
    case CampaignEventKind::kMutation:
      return "mutation";
    case CampaignEventKind::kVariance:
      return "variance";
    case CampaignEventKind::kDetectorVerdict:
      return "detector_verdict";
    case CampaignEventKind::kDoubleCheck:
      return "double_check";
    case CampaignEventKind::kRebalanceRound:
      return "rebalance_round";
    case CampaignEventKind::kRebalanceWait:
      return "rebalance_wait";
    case CampaignEventKind::kClusterReset:
      return "cluster_reset";
  }
  return "?";
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += Sprintf("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string CampaignEvent::ToJson(int64_t job) const {
  // %.17g round-trips doubles, so the textual form is as deterministic as
  // the value itself.
  std::string out = "{";
  if (job >= 0) {
    out += Sprintf("\"job\":%lld,", static_cast<long long>(job));
  }
  out += Sprintf("\"at_us\":%lld,\"event\":\"%s\"", static_cast<long long>(at),
                 CampaignEventKindName(kind));
  if (!label.empty()) {
    out += Sprintf(",\"label\":\"%s\"", JsonEscape(label).c_str());
  }
  if (value != 0.0) {
    out += Sprintf(",\"value\":%.17g", value);
  }
  if (value2 != 0.0) {
    out += Sprintf(",\"value2\":%.17g", value2);
  }
  if (count != 0) {
    out += Sprintf(",\"count\":%llu", static_cast<unsigned long long>(count));
  }
  out += "}";
  return out;
}

void EventLog::Record(CampaignEventKind kind, std::string label, double value,
                      double value2, uint64_t count) {
#if !defined(THEMIS_TELEMETRY_DISABLED)
  CampaignEvent event;
  event.kind = kind;
  event.at = clock_ != nullptr ? clock_->now() : 0;
  event.label = std::move(label);
  event.value = value;
  event.value2 = value2;
  event.count = count;
  events_.push_back(std::move(event));
#else
  (void)kind;
  (void)label;
  (void)value;
  (void)value2;
  (void)count;
#endif
}

}  // namespace themis
