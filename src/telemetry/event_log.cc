#include "src/telemetry/event_log.h"

#include "src/common/strings.h"

namespace themis {

const char* CampaignEventKindName(CampaignEventKind kind) {
  switch (kind) {
    case CampaignEventKind::kSeedAccepted:
      return "seed_accepted";
    case CampaignEventKind::kSeedRejected:
      return "seed_rejected";
    case CampaignEventKind::kMutation:
      return "mutation";
    case CampaignEventKind::kVariance:
      return "variance";
    case CampaignEventKind::kDetectorVerdict:
      return "detector_verdict";
    case CampaignEventKind::kDoubleCheck:
      return "double_check";
    case CampaignEventKind::kRebalanceRound:
      return "rebalance_round";
    case CampaignEventKind::kRebalanceWait:
      return "rebalance_wait";
    case CampaignEventKind::kClusterReset:
      return "cluster_reset";
  }
  return "?";
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += Sprintf("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string CampaignEvent::ToJson(int64_t job) const {
  // %.17g round-trips doubles, so the textual form is as deterministic as
  // the value itself.
  std::string out = "{";
  if (job >= 0) {
    out += Sprintf("\"job\":%lld,", static_cast<long long>(job));
  }
  out += Sprintf("\"at_us\":%lld,\"event\":\"%s\"", static_cast<long long>(at),
                 CampaignEventKindName(kind));
  if (!label.empty()) {
    out += Sprintf(",\"label\":\"%s\"", JsonEscape(label).c_str());
  }
  if (value != 0.0) {
    out += Sprintf(",\"value\":%.17g", value);
  }
  if (value2 != 0.0) {
    out += Sprintf(",\"value2\":%.17g", value2);
  }
  if (count != 0) {
    out += Sprintf(",\"count\":%llu", static_cast<unsigned long long>(count));
  }
  out += "}";
  return out;
}

void EventLog::Record(CampaignEventKind kind, std::string label, double value,
                      double value2, uint64_t count) {
#if !defined(THEMIS_TELEMETRY_DISABLED)
  CampaignEvent event;
  event.kind = kind;
  event.at = clock_ != nullptr ? clock_->now() : 0;
  event.label = std::move(label);
  event.value = value;
  event.value2 = value2;
  event.count = count;
  events_.push_back(std::move(event));
#else
  (void)kind;
  (void)label;
  (void)value;
  (void)value2;
  (void)count;
#endif
}

void SaveCampaignEvent(SnapshotWriter& writer, const CampaignEvent& event) {
  writer.U8(static_cast<uint8_t>(event.kind));
  writer.I64(event.at);
  writer.Str(event.label);
  writer.F64(event.value);
  writer.F64(event.value2);
  writer.U64(event.count);
}

void RestoreCampaignEvent(SnapshotReader& reader, CampaignEvent* event) {
  uint8_t kind = reader.U8();
  if (reader.ok() && kind > static_cast<uint8_t>(CampaignEventKind::kClusterReset)) {
    reader.Fail(Sprintf("campaign event kind %u out of range", kind));
    return;
  }
  event->kind = static_cast<CampaignEventKind>(kind);
  event->at = reader.I64();
  event->label = reader.Str();
  event->value = reader.F64();
  event->value2 = reader.F64();
  event->count = reader.U64();
}

void EventLog::SaveState(SnapshotWriter& writer) const {
  const std::vector<CampaignEvent>& current = events();
  writer.U64(current.size());
  for (const CampaignEvent& event : current) {
    SaveCampaignEvent(writer, event);
  }
}

Status EventLog::RestoreState(SnapshotReader& reader) {
#if !defined(THEMIS_TELEMETRY_DISABLED)
  uint64_t count = reader.Count(1 + 8 + 8 + 8 + 8 + 8);
  events_.clear();
  events_.resize(static_cast<size_t>(count));
  for (CampaignEvent& event : events_) {
    RestoreCampaignEvent(reader, &event);
    if (!reader.ok()) break;
  }
#else
  uint64_t count = reader.U64();
  if (reader.ok() && count != 0) {
    reader.Fail("snapshot carries telemetry events but this binary was built "
                "with THEMIS_TELEMETRY=OFF");
  }
#endif
  return reader.status();
}

}  // namespace themis
