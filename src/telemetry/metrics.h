// Lock-cheap process-wide metrics (counters, gauges, fixed-bucket
// histograms) for the campaign engine's operational telemetry.
//
// Design: every metric is striped across kMetricShards cache-line-padded
// atomic slots; a writer touches only the slot its thread hashes to, with one
// relaxed atomic RMW per event — no lock, no contention between the campaign
// runner's workers. Readers merge the shards on demand (Snapshot), which is
// the rare path. Metric handles are created once through the registry (the
// only mutex, cold path) and stay valid for the process lifetime, so hot
// loops cache a reference.
//
// The whole subsystem compiles to no-ops when THEMIS_TELEMETRY_DISABLED is
// defined (CMake: -DTHEMIS_TELEMETRY=OFF): recording functions become empty
// inlines and the instrumentation macros expand to nothing, so a disabled
// build pays zero cycles and perturbs nothing. Telemetry never draws from
// any Rng, preserving the campaign engine's bit-identical --jobs guarantee.

#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace themis {

#if defined(THEMIS_TELEMETRY_DISABLED)
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

// Shard count for write striping. A power of two; 16 covers far more
// hardware threads than the runner's pool ever uses while keeping the merge
// on read trivial.
inline constexpr size_t kMetricShards = 16;

// Index of the calling thread's shard (stable per thread).
size_t MetricShardIndex();

namespace internal {
struct alignas(64) PaddedAtomicU64 {
  std::atomic<uint64_t> value{0};
};
struct alignas(64) PaddedAtomicI64 {
  std::atomic<int64_t> value{0};
};
}  // namespace internal

// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
#if !defined(THEMIS_TELEMETRY_DISABLED)
    shards_[MetricShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  // Merged value across shards.
  uint64_t Value() const;

 private:
#if !defined(THEMIS_TELEMETRY_DISABLED)
  internal::PaddedAtomicU64 shards_[kMetricShards];
#endif
};

// Up/down instantaneous quantity (pool sizes, in-flight jobs).
class Gauge {
 public:
  void Add(int64_t delta) {
#if !defined(THEMIS_TELEMETRY_DISABLED)
    shards_[MetricShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  void Inc() { Add(1); }
  void Dec() { Add(-1); }

  int64_t Value() const;

 private:
#if !defined(THEMIS_TELEMETRY_DISABLED)
  internal::PaddedAtomicI64 shards_[kMetricShards];
#endif
};

// Fixed-bucket histogram. Bucket i counts samples in (bounds[i-1], bounds[i]];
// the last bucket is the +inf overflow. The default layout is exponential in
// powers of 4 starting at 1 (values are typically microseconds or counts):
//   1, 4, 16, ..., 4^14, +inf  — kHistogramBuckets buckets total.
inline constexpr size_t kHistogramBuckets = 16;

struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  uint64_t buckets[kHistogramBuckets] = {};

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  // Upper bound of bucket i (+inf for the last); shared fixed layout.
  static double BucketBound(size_t i);
  // Linear-interpolated quantile estimate from the bucket counts, q in [0,1].
  double Quantile(double q) const;
};

class Histogram {
 public:
  void Record(double value);

  HistogramSnapshot Snapshot() const;

 private:
#if !defined(THEMIS_TELEMETRY_DISABLED)
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};  // double bits, CAS-accumulated
    std::atomic<uint64_t> buckets[kHistogramBuckets]{};
  };
  Shard shards_[kMetricShards];
#endif
};

// One merged view of every registered metric, for the --metrics-summary
// table and the machine-readable bench summary.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Handles are created on first use and live for the process lifetime;
  // callers cache the reference (the THEMIS_* macros do).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  // Plain-text summary table ("--metrics-summary"): one row per metric,
  // histograms rendered as count/mean/p50/p99.
  std::string RenderSummary() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  // std::map: node-based, so handle references stay stable across inserts.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Instrumentation macros: cache the handle in a function-local static so the
// registry lookup happens once per site; expand to nothing when disabled.
#if !defined(THEMIS_TELEMETRY_DISABLED)
#define THEMIS_COUNTER_INC(name, n)                                    \
  do {                                                                 \
    static ::themis::Counter& themis_counter_handle =                  \
        ::themis::MetricsRegistry::Global().GetCounter(name);          \
    themis_counter_handle.Inc(n);                                      \
  } while (0)
#define THEMIS_HISTOGRAM_RECORD(name, value)                           \
  do {                                                                 \
    static ::themis::Histogram& themis_histogram_handle =              \
        ::themis::MetricsRegistry::Global().GetHistogram(name);        \
    themis_histogram_handle.Record(value);                             \
  } while (0)
#else
#define THEMIS_COUNTER_INC(name, n) \
  do {                              \
  } while (0)
#define THEMIS_HISTOGRAM_RECORD(name, value) \
  do {                                       \
  } while (0)
#endif

}  // namespace themis

#endif  // SRC_TELEMETRY_METRICS_H_
