// Lightweight trace spans: RAII timers over the monotonic clock that record
// elapsed wall microseconds into a named histogram ("span.<name>.us") and
// count entries ("span.<name>.calls"). Spans measure real time, never
// virtual time, so they describe the engine's own performance — the virtual
// clock already times the simulated system.
//
// Compiles away entirely under THEMIS_TELEMETRY_DISABLED (the THEMIS_SPAN
// macro expands to nothing, so not even the clock read survives).

#ifndef SRC_TELEMETRY_TRACE_H_
#define SRC_TELEMETRY_TRACE_H_

#include <chrono>
#include <string>

#include "src/telemetry/metrics.h"

namespace themis {

class TraceSpan {
 public:
  // `histogram` and `calls` are registry handles for "span.<name>.us" and
  // "span.<name>.calls"; use MakeSpanMetrics to create them once per site.
  TraceSpan(Histogram& histogram, Counter& calls)
      : histogram_(histogram), calls_(calls),
        start_(std::chrono::steady_clock::now()) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    double us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    histogram_.Record(us);
    calls_.Inc();
  }

 private:
  Histogram& histogram_;
  Counter& calls_;
  std::chrono::steady_clock::time_point start_;
};

struct SpanMetrics {
  Histogram* histogram;
  Counter* calls;
};

// Resolves the two registry handles backing a span site.
SpanMetrics MakeSpanMetrics(const std::string& name);

// Scoped span with a once-per-site registry lookup; no-op when disabled.
#if !defined(THEMIS_TELEMETRY_DISABLED)
#define THEMIS_SPAN(var, name)                                        \
  static const ::themis::SpanMetrics var##_metrics =                  \
      ::themis::MakeSpanMetrics(name);                                \
  ::themis::TraceSpan var(*var##_metrics.histogram, *var##_metrics.calls)
#else
#define THEMIS_SPAN(var, name) \
  do {                         \
  } while (0)
#endif

}  // namespace themis

#endif  // SRC_TELEMETRY_TRACE_H_
