#include "src/fleet/fleet_cli.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/fleet/supervisor.h"
#include "src/fleet/worker.h"
#include "src/harness/runner.h"

namespace themis {

namespace {

int FleetUsage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ... fleet run <hdfs|ceph|gluster|leo|geo> --dir=DIR [--workers N]\n"
      "        [--hours H] [--seed S] [--seeds N] [--strategy NAME]\n"
      "        [--threshold T] [--transition-weight W]\n"
      "        [--corpus-dir=DIR] [--checkpoint-every-ops N]\n"
      "        [--import-every N] [--heartbeat-every N]\n"
      "        [--heartbeat-timeout SECS] [--max-restarts N]\n"
      "        [--crash-worker0-after-checkpoints N]\n"
      "  ... fleet worker --dir=DIR --worker=K [--corpus-dir=DIR]\n"
      "        [--import-every=N] [--heartbeat-every=N]\n"
      "        [--halt-after-checkpoints=N]\n"
      "  ... fleet status --dir=DIR\n");
  return 2;
}

bool ParseFleetFlavor(const char* text, Flavor* out) {
  if (std::strcmp(text, "hdfs") == 0) {
    *out = Flavor::kHdfs;
  } else if (std::strcmp(text, "ceph") == 0) {
    *out = Flavor::kCeph;
  } else if (std::strcmp(text, "gluster") == 0) {
    *out = Flavor::kGluster;
  } else if (std::strcmp(text, "leo") == 0) {
    *out = Flavor::kLeo;
  } else if (std::strcmp(text, "geo") == 0) {
    *out = Flavor::kGeo;
  } else {
    return false;
  }
  return true;
}

// "--name=value" / "--name value" in one helper; advances *i for the
// space-separated form.
bool FlagValue(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(argv[*i], name, len) != 0) {
    return false;
  }
  if (argv[*i][len] == '=') {
    *out = argv[*i] + len + 1;
    return true;
  }
  if (argv[*i][len] == '\0' && *i + 1 < argc) {
    *out = argv[++*i];
    return true;
  }
  return false;
}

std::string SelfExecutablePath() {
  char buffer[4096];
  ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n > 0) {
    buffer[n] = '\0';
    return buffer;
  }
  return "";
}

int RunFleetRun(int argc, char** argv) {
  if (argc < 1) {
    return FleetUsage();
  }
  Flavor flavor;
  if (!ParseFleetFlavor(argv[0], &flavor)) {
    return FleetUsage();
  }
  FleetConfig config;
  config.matrix.flavors = {flavor};
  std::string value;
  for (int i = 1; i < argc; ++i) {
    if (FlagValue(argc, argv, &i, "--dir", &value)) {
      config.dir = value;
    } else if (FlagValue(argc, argv, &i, "--corpus-dir", &value)) {
      config.corpus_dir = value;
    } else if (FlagValue(argc, argv, &i, "--workers", &value)) {
      config.workers = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--hours", &value)) {
      config.matrix.base.budget = Hours(std::atoi(value.c_str()));
    } else if (FlagValue(argc, argv, &i, "--seed", &value)) {
      config.matrix.matrix_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (FlagValue(argc, argv, &i, "--seeds", &value)) {
      config.matrix.seeds = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--strategy", &value)) {
      config.matrix.strategies = {value};
    } else if (FlagValue(argc, argv, &i, "--threshold", &value)) {
      config.matrix.base.threshold_t = std::atof(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--transition-weight", &value)) {
      config.matrix.base.transition_weight = std::atof(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--checkpoint-every-ops", &value)) {
      config.checkpoint_every_ops = std::strtoull(value.c_str(), nullptr, 10);
    } else if (FlagValue(argc, argv, &i, "--import-every", &value)) {
      config.import_every = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--heartbeat-every", &value)) {
      config.heartbeat_every = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--heartbeat-timeout", &value)) {
      config.heartbeat_timeout_s = std::atof(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--max-restarts", &value)) {
      config.max_restarts_per_worker = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--crash-worker0-after-checkpoints",
                         &value)) {
      config.crash_worker0_after_checkpoints = std::atoi(value.c_str());
    } else {
      return FleetUsage();
    }
  }
  if (config.dir.empty()) {
    std::fprintf(stderr, "fleet run requires --dir\n");
    return 2;
  }
  if (config.matrix.seeds < 1) {
    std::fprintf(stderr, "--seeds must be >= 1\n");
    return 2;
  }
  std::string self = SelfExecutablePath();
  if (self.empty()) {
    std::fprintf(stderr, "cannot resolve /proc/self/exe for worker spawn\n");
    return 1;
  }
  config.worker_command = {self, "fleet", "worker"};

  SetLogLevel(LogLevel::kInfo);
  Result<FleetOutcome> outcome = RunFleetSupervisor(config);
  if (!outcome.ok()) {
    std::fprintf(stderr, "fleet run failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  const FleetOutcome& o = outcome.value();
  std::printf(
      "fleet: %d/%d jobs done (%d failed), %d worker restarts, "
      "%llu ops, %lld test cases, %d distinct failures, %zu corpus seeds, "
      "%zu fleet transitions, %.2fs wall\n",
      o.jobs_done, o.jobs_total, o.jobs_failed, o.worker_restarts,
      static_cast<unsigned long long>(o.total_ops),
      static_cast<long long>(o.testcases), o.distinct_failures,
      o.corpus_seeds, o.fleet_transitions, o.wall_seconds);
  // Incomplete fleets (a worker out of restarts with jobs still claimed)
  // must not look like success to CI.
  return (o.jobs_done + o.jobs_failed == o.jobs_total && o.workers_failed == 0)
             ? 0
             : 1;
}

int RunFleetWorkerCmd(int argc, char** argv) {
  FleetWorkerOptions options;
  std::string value;
  for (int i = 0; i < argc; ++i) {
    if (FlagValue(argc, argv, &i, "--dir", &value)) {
      options.dir = value;
    } else if (FlagValue(argc, argv, &i, "--corpus-dir", &value)) {
      options.corpus_dir = value;
    } else if (FlagValue(argc, argv, &i, "--worker", &value)) {
      options.worker_id = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--import-every", &value)) {
      options.import_every = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--heartbeat-every", &value)) {
      options.heartbeat_every = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--halt-after-checkpoints", &value)) {
      options.halt_after_checkpoints = std::atoi(value.c_str());
    } else {
      return FleetUsage();
    }
  }
  if (options.dir.empty()) {
    std::fprintf(stderr, "fleet worker requires --dir\n");
    return 2;
  }
  Result<FleetWorkerOutcome> outcome = RunFleetWorker(options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "fleet worker %d failed: %s\n", options.worker_id,
                 outcome.status().ToString().c_str());
    return 1;
  }
  // The crash-test hook exits nonzero so the supervisor's waitpid sees a
  // death and exercises the restart path, exactly like a real crash.
  return outcome.value().crashed ? 42 : 0;
}

int RunFleetStatus(int argc, char** argv) {
  std::string dir;
  std::string value;
  for (int i = 0; i < argc; ++i) {
    if (FlagValue(argc, argv, &i, "--dir", &value)) {
      dir = value;
    } else {
      return FleetUsage();
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "fleet status requires --dir\n");
    return 2;
  }
  Result<FleetStatusSnapshot> snapshot = CollectFleetStatus(dir);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "fleet status failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", RenderFleetStatus(snapshot.value()).c_str());
  return 0;
}

}  // namespace

int FleetMain(int argc, char** argv) {
  // Workers are respawned as `<self_exe> fleet worker ...` no matter which
  // front end the supervisor lives in; themis_fleet's main hands us argv
  // starting at that `fleet` token, so tolerate (and skip) it.
  if (argc >= 1 && std::strcmp(argv[0], "fleet") == 0) {
    --argc;
    ++argv;
  }
  if (argc < 1) {
    return FleetUsage();
  }
  if (std::strcmp(argv[0], "run") == 0) {
    return RunFleetRun(argc - 1, argv + 1);
  }
  if (std::strcmp(argv[0], "worker") == 0) {
    return RunFleetWorkerCmd(argc - 1, argv + 1);
  }
  if (std::strcmp(argv[0], "status") == 0) {
    return RunFleetStatus(argc - 1, argv + 1);
  }
  return FleetUsage();
}

}  // namespace themis
