#include "src/fleet/work_queue.h"

#include <algorithm>
#include <filesystem>

#include "src/common/strings.h"
#include "src/fleet/fleet_io.h"
#include "src/harness/snapshot.h"

namespace themis {

namespace fs = std::filesystem;

FleetPaths FleetPaths::At(const std::string& root) {
  FleetPaths paths;
  paths.root = root;
  paths.queue = (fs::path(root) / "queue").string();
  paths.claimed = (fs::path(root) / "claimed").string();
  paths.done = (fs::path(root) / "done").string();
  paths.corpus = (fs::path(root) / "corpus").string();
  paths.ckpt = (fs::path(root) / "ckpt").string();
  paths.hb = (fs::path(root) / "hb").string();
  paths.telemetry = (fs::path(root) / "telemetry").string();
  return paths;
}

Status FleetPaths::EnsureDirs() const {
  for (const std::string* dir :
       {&queue, &claimed, &done, &corpus, &ckpt, &hb, &telemetry}) {
    std::error_code ec;
    fs::create_directories(*dir, ec);
    if (ec) {
      return Status::Internal(Sprintf("cannot create %s: %s", dir->c_str(),
                                      ec.message().c_str()));
    }
  }
  return Status::Ok();
}

std::string QueueJobFileName(size_t job_index) {
  return Sprintf("job-%06zu.job", job_index);
}

std::string ClaimedJobFileName(size_t job_index, int worker_id) {
  return Sprintf("job-%06zu.w%d.job", job_index, worker_id);
}

std::string DoneRecordFileName(size_t job_index) {
  return Sprintf("job-%06zu.res", job_index);
}

namespace {

// Parses "job-<digits>" prefixes out of queue/claimed/done file names.
bool ParseJobIndex(std::string_view name, size_t* index) {
  constexpr std::string_view prefix = "job-";
  if (name.substr(0, prefix.size()) != prefix) return false;
  size_t value = 0;
  size_t digits = 0;
  for (size_t i = prefix.size(); i < name.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<size_t>(c - '0');
    ++digits;
  }
  if (digits == 0) return false;
  *index = value;
  return true;
}

// Claim file owned by `worker_id`? Matches "job-<index>.w<k>.job".
bool ParseClaimName(std::string_view name, size_t* index, int* worker_id) {
  if (!ParseJobIndex(name, index)) return false;
  size_t w = name.find(".w");
  size_t suffix = name.rfind(".job");
  if (w == std::string_view::npos || suffix == std::string_view::npos ||
      suffix != name.size() - 4 || w + 2 >= suffix) {
    return false;
  }
  int value = 0;
  for (size_t i = w + 2; i < suffix; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *worker_id = value;
  return true;
}

}  // namespace

void SaveCampaignConfig(SnapshotWriter& writer, const CampaignConfig& config) {
  writer.U8(static_cast<uint8_t>(config.flavor));
  writer.U64(config.seed);
  writer.I64(config.budget);
  writer.F64(config.threshold_t);
  writer.F64(config.weights.computation);
  writer.F64(config.weights.network);
  writer.F64(config.weights.storage);
  writer.U8(static_cast<uint8_t>(config.fault_set));
  writer.I64(config.initial_files);
  writer.I64(config.coverage_sample_period);
  writer.I64(config.storage_nodes);
  writer.I64(config.meta_nodes);
  writer.Bool(config.env_faults);
  writer.Bool(config.collect_telemetry);
  writer.F64(config.transition_weight);
  writer.Str(config.checkpoint_dir);
  writer.U64(config.checkpoint_every_ops);
  writer.Bool(config.resume);
  writer.I64(config.checkpoint_keep);
  writer.U64(config.job_index);
  writer.I64(config.halt_after_checkpoints);
}

Status RestoreCampaignConfig(SnapshotReader& reader, CampaignConfig* config) {
  uint8_t flavor = reader.U8();
  config->seed = reader.U64();
  config->budget = reader.I64();
  config->threshold_t = reader.F64();
  config->weights.computation = reader.F64();
  config->weights.network = reader.F64();
  config->weights.storage = reader.F64();
  uint8_t fault_set = reader.U8();
  config->initial_files = static_cast<int>(reader.I64());
  config->coverage_sample_period = reader.I64();
  config->storage_nodes = static_cast<int>(reader.I64());
  config->meta_nodes = static_cast<int>(reader.I64());
  config->env_faults = reader.Bool();
  config->collect_telemetry = reader.Bool();
  config->transition_weight = reader.F64();
  config->checkpoint_dir = reader.Str();
  config->checkpoint_every_ops = reader.U64();
  config->resume = reader.Bool();
  config->checkpoint_keep = static_cast<int>(reader.I64());
  config->job_index = reader.U64();
  config->halt_after_checkpoints = static_cast<int>(reader.I64());
  if (!reader.ok()) {
    return reader.status();
  }
  if (flavor > static_cast<uint8_t>(Flavor::kGeo)) {
    reader.Fail(Sprintf("job spec has unknown flavor %u", flavor));
    return reader.status();
  }
  config->flavor = static_cast<Flavor>(flavor);
  if (fault_set > static_cast<uint8_t>(FaultSet::kNone)) {
    reader.Fail(Sprintf("job spec has unknown fault set %u", fault_set));
    return reader.status();
  }
  config->fault_set = static_cast<FaultSet>(fault_set);
  return config->Validate();
}

Status WriteJobSpecFile(const std::string& path, const CampaignJob& job) {
  SnapshotWriter payload;
  payload.U64(job.index);
  payload.Str(job.strategy);
  payload.I64(job.repetition);
  SaveCampaignConfig(payload, job.config);
  return WriteFramedFile(path, kJobSpecMagic, kFleetFileFormatVersion,
                         payload.buffer());
}

Result<CampaignJob> ReadJobSpecFile(const std::string& path) {
  Result<std::string> payload =
      ReadFramedFile(path, kJobSpecMagic, kFleetFileFormatVersion);
  if (!payload.ok()) {
    return payload.status();
  }
  SnapshotReader reader(payload.value());
  CampaignJob job;
  job.index = reader.U64();
  job.strategy = reader.Str();
  job.repetition = static_cast<int>(reader.I64());
  if (Status s = RestoreCampaignConfig(reader, &job.config); !s.ok()) {
    return Status::DataLoss(
        Sprintf("%s: %s", path.c_str(), s.ToString().c_str()));
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss(
        Sprintf("%s: trailing bytes after job spec", path.c_str()));
  }
  return job;
}

Status WriteDoneRecordFile(const std::string& path,
                           const FleetDoneRecord& record) {
  SnapshotWriter payload;
  payload.U64(record.job.index);
  payload.Str(record.job.strategy);
  payload.I64(record.job.repetition);
  SaveCampaignConfig(payload, record.job.config);
  payload.I64(record.worker_id);
  payload.F64(record.wall_seconds);
  payload.F64(record.cpu_seconds);
  payload.Bool(record.job_status.ok());
  if (record.job_status.ok()) {
    SaveCampaignResult(payload, record.result);
  } else {
    payload.Str(record.job_status.ToString());
  }
  return WriteFramedFile(path, kDoneRecordMagic, kFleetFileFormatVersion,
                         payload.buffer());
}

Result<FleetDoneRecord> ReadDoneRecordFile(const std::string& path) {
  Result<std::string> payload =
      ReadFramedFile(path, kDoneRecordMagic, kFleetFileFormatVersion);
  if (!payload.ok()) {
    return payload.status();
  }
  SnapshotReader reader(payload.value());
  FleetDoneRecord record;
  record.job.index = reader.U64();
  record.job.strategy = reader.Str();
  record.job.repetition = static_cast<int>(reader.I64());
  if (Status s = RestoreCampaignConfig(reader, &record.job.config); !s.ok()) {
    return Status::DataLoss(
        Sprintf("%s: %s", path.c_str(), s.ToString().c_str()));
  }
  record.worker_id = static_cast<int>(reader.I64());
  record.wall_seconds = reader.F64();
  record.cpu_seconds = reader.F64();
  bool ok = reader.Bool();
  if (ok) {
    if (Status s = RestoreCampaignResult(reader, &record.result); !s.ok()) {
      return Status::DataLoss(
          Sprintf("%s: %s", path.c_str(), s.ToString().c_str()));
    }
  } else {
    record.job_status = Status::Internal(reader.Str());
  }
  if (!reader.ok() || !reader.AtEnd()) {
    return Status::DataLoss(
        Sprintf("%s: malformed done record", path.c_str()));
  }
  return record;
}

Result<std::optional<ClaimedJob>> NextJob(const FleetPaths& paths,
                                          int worker_id) {
  // 1. Orphaned claims from a previous incarnation of this worker id.
  std::vector<std::pair<size_t, std::string>> mine;
  std::error_code ec;
  for (fs::directory_iterator it(paths.claimed, ec);
       !ec && it != fs::directory_iterator(); ++it) {
    size_t index = 0;
    int owner = -1;
    std::string name = it->path().filename().string();
    if (ParseClaimName(name, &index, &owner) && owner == worker_id) {
      mine.emplace_back(index, it->path().string());
    }
  }
  std::sort(mine.begin(), mine.end());
  for (const auto& [index, claim_path] : mine) {
    const std::string done_path =
        (fs::path(paths.done) / DoneRecordFileName(index)).string();
    if (fs::exists(done_path, ec)) {
      // The dead incarnation finished the job but crashed before clearing
      // the claim. Clear it now; re-running would double-count.
      fs::remove(claim_path, ec);
      continue;
    }
    Result<CampaignJob> job = ReadJobSpecFile(claim_path);
    if (!job.ok()) {
      return Status::DataLoss(Sprintf("orphaned claim %s unreadable: %s",
                                      claim_path.c_str(),
                                      job.status().ToString().c_str()));
    }
    ClaimedJob claimed;
    claimed.job = job.take();
    claimed.claim_path = claim_path;
    return std::optional<ClaimedJob>(std::move(claimed));
  }

  // 2. Claim the lowest-index queue entry. rename(2) is atomic within the
  // fleet filesystem, so exactly one contender wins each file; losers just
  // move on to the next candidate.
  while (true) {
    std::vector<std::pair<size_t, std::string>> queued;
    for (fs::directory_iterator it(paths.queue, ec);
         !ec && it != fs::directory_iterator(); ++it) {
      size_t index = 0;
      std::string name = it->path().filename().string();
      if (ParseJobIndex(name, &index) &&
          name.size() > 4 && name.substr(name.size() - 4) == ".job") {
        queued.emplace_back(index, it->path().string());
      }
    }
    if (queued.empty()) {
      return std::optional<ClaimedJob>(std::nullopt);
    }
    std::sort(queued.begin(), queued.end());
    bool any_claimed = false;
    for (const auto& [index, queue_path] : queued) {
      const std::string claim_path =
          (fs::path(paths.claimed) / ClaimedJobFileName(index, worker_id))
              .string();
      std::error_code rename_ec;
      fs::rename(queue_path, claim_path, rename_ec);
      if (rename_ec) {
        continue;  // lost the race for this job; try the next
      }
      any_claimed = true;
      Result<CampaignJob> job = ReadJobSpecFile(claim_path);
      if (!job.ok()) {
        return Status::DataLoss(Sprintf("claimed spec %s unreadable: %s",
                                        claim_path.c_str(),
                                        job.status().ToString().c_str()));
      }
      ClaimedJob claimed;
      claimed.job = job.take();
      claimed.claim_path = claim_path;
      return std::optional<ClaimedJob>(std::move(claimed));
    }
    if (!any_claimed) {
      // Every listed entry vanished under us (all claimed elsewhere);
      // re-list — the loop terminates because the queue only shrinks.
      continue;
    }
  }
}

Status MarkJobDone(const FleetPaths& paths, const ClaimedJob& claimed,
                   const FleetDoneRecord& record) {
  const std::string done_path =
      (fs::path(paths.done) / DoneRecordFileName(record.job.index)).string();
  if (Status s = WriteDoneRecordFile(done_path, record); !s.ok()) {
    return s;
  }
  std::error_code ec;
  fs::remove(claimed.claim_path, ec);
  // A leftover claim after a successful done write is harmless: the worker
  // id owning it re-reads the spec, sees the done record, and skips.
  return Status::Ok();
}

Result<std::vector<FleetDoneRecord>> ReadAllDoneRecords(
    const FleetPaths& paths) {
  std::vector<std::pair<size_t, std::string>> files;
  std::error_code ec;
  for (fs::directory_iterator it(paths.done, ec);
       !ec && it != fs::directory_iterator(); ++it) {
    size_t index = 0;
    std::string name = it->path().filename().string();
    if (ParseJobIndex(name, &index) &&
        name.size() > 4 && name.substr(name.size() - 4) == ".res") {
      files.emplace_back(index, it->path().string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<FleetDoneRecord> records;
  records.reserve(files.size());
  for (const auto& [index, path] : files) {
    Result<FleetDoneRecord> record = ReadDoneRecordFile(path);
    if (!record.ok()) {
      return record.status();
    }
    records.push_back(record.take());
  }
  return records;
}

QueueCounts CountQueueEntries(const FleetPaths& paths) {
  QueueCounts counts;
  auto count_dir = [](const std::string& dir, std::string_view suffix) {
    size_t n = 0;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec);
         !ec && it != fs::directory_iterator(); ++it) {
      std::string name = it->path().filename().string();
      if (name.size() > suffix.size() &&
          name.substr(name.size() - suffix.size()) == suffix) {
        ++n;
      }
    }
    return n;
  };
  counts.queued = count_dir(paths.queue, ".job");
  counts.claimed = count_dir(paths.claimed, ".job");
  counts.done = count_dir(paths.done, ".res");
  return counts;
}

}  // namespace themis
