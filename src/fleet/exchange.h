// The corpus-exchange loop observer: the per-worker half of fleet seed
// sharing (DESIGN.md §17).
//
// Attached to a campaign via Campaign::set_loop_observer, it runs at every
// test-case boundary and
//   1. publishes seeds the strategy's pool accepted since the last boundary
//     (skipping seeds that arrived by import — re-publishing them would
//     only churn the directory), appending each published fingerprint to a
//     per-worker publish log so the no-lost-seeds invariant is auditable;
//   2. every `import_every` test cases, diffs the corpus directory against
//     its fingerprint index and offers each new seed to the strategy via
//     Strategy::ImportSeed — the pool dedups and energy-merges;
//   3. every `heartbeat_every` test cases, appends a progress heartbeat.
//
// The observer draws no randomness and never touches the cluster, so a
// single-worker single-JOB fleet campaign — where every corpus seed is one
// the job itself published, deduped to a no-op on import — stays
// bit-identical to the same campaign without an observer
// (fleet_service_test proves it by digest). Multi-job fleets diverge on
// purpose: later jobs import earlier jobs' seeds into their pools, which is
// the whole point of the shared corpus; those runs are validated by the
// invariant checker, not byte-equality.

#ifndef SRC_FLEET_EXCHANGE_H_
#define SRC_FLEET_EXCHANGE_H_

#include <cstdint>
#include <set>
#include <string>

#include "src/fleet/corpus.h"
#include "src/fleet/fingerprint_index.h"
#include "src/harness/campaign.h"

namespace themis {

struct CorpusExchangeOptions {
  std::string corpus_dir;
  Flavor flavor = Flavor::kGluster;
  uint64_t job_index = 0;
  int worker_id = 0;
  long pid = 0;
  int import_every = 64;     // test cases between corpus scans (>=1)
  int heartbeat_every = 32;  // test cases between heartbeats; 0 disables
  std::string heartbeat_path;  // empty disables heartbeats
  std::string publish_log;     // empty disables the audit log
  // First heartbeat gets heartbeat_seq_start + 1: the worker threads one
  // running counter through its jobs so seq is strictly increasing per
  // process incarnation — the property the invariant checker replays.
  uint64_t heartbeat_seq_start = 0;
};

class CorpusExchange : public CampaignLoopObserver {
 public:
  explicit CorpusExchange(CorpusExchangeOptions options);

  void OnTestcase(Strategy& strategy, const ExecOutcome& outcome,
                  const CampaignTick& tick) override;

  // Job-end heartbeat with the closing totals. Publication needs no final
  // flush: OnTestcase runs after the last outcome, so every accepted seed
  // is already on disk when Campaign::Run returns.
  void EmitJobDone(const CampaignTick& final_tick);

  uint64_t published() const { return published_; }
  uint64_t imported() const { return imported_; }
  uint64_t rejected() const { return rejected_; }
  uint64_t import_dups() const { return dups_; }
  uint64_t heartbeat_seq() const { return heartbeat_seq_; }

 private:
  void PublishNewSeeds(Strategy& strategy, const CampaignTick& tick);
  void ImportNewSeeds(Strategy& strategy);
  void EmitHeartbeat(const CampaignTick& tick, const char* phase);

  CorpusExchangeOptions options_;
  FingerprintIndex index_;  // fingerprints already published/imported/rejected
  std::set<std::string> rejected_files_;  // never re-read a bad file
  uint64_t max_published_seed_id_ = 0;
  uint64_t heartbeat_seq_ = 0;
  int since_import_ = 0;
  int since_heartbeat_ = 0;
  uint64_t published_ = 0;
  uint64_t imported_ = 0;
  uint64_t rejected_ = 0;
  uint64_t dups_ = 0;
};

}  // namespace themis

#endif  // SRC_FLEET_EXCHANGE_H_
