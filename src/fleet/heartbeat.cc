#include "src/fleet/heartbeat.h"

#include <cstdlib>
#include <fstream>

#include "src/common/strings.h"
#include "src/fleet/fleet_io.h"

namespace themis {

namespace {

// Extracts `"key":<number>` from a single-level JSON object line. The
// heartbeat schema is flat and written by RenderHeartbeatJson below, so a
// scanner beats dragging in a JSON library.
bool FindNumber(std::string_view line, std::string_view key, long long* out) {
  std::string needle = Sprintf("\"%.*s\":", static_cast<int>(key.size()),
                               key.data());
  size_t at = line.find(needle);
  if (at == std::string_view::npos) return false;
  at += needle.size();
  if (at >= line.size()) return false;
  char* end = nullptr;
  std::string tail(line.substr(at, 24));
  long long value = std::strtoll(tail.c_str(), &end, 10);
  if (end == tail.c_str()) return false;
  *out = value;
  return true;
}

bool FindString(std::string_view line, std::string_view key,
                std::string* out) {
  std::string needle = Sprintf("\"%.*s\":\"", static_cast<int>(key.size()),
                               key.data());
  size_t at = line.find(needle);
  if (at == std::string_view::npos) return false;
  at += needle.size();
  size_t end = line.find('"', at);
  if (end == std::string_view::npos) return false;
  *out = std::string(line.substr(at, end - at));
  return true;
}

}  // namespace

std::string HeartbeatFileName(int worker_id) {
  return Sprintf("worker-%d.hb.jsonl", worker_id);
}

std::string RenderHeartbeatJson(const Heartbeat& hb) {
  return Sprintf(
      "{\"worker\":%d,\"pid\":%ld,\"seq\":%llu,\"job\":%llu,"
      "\"ops\":%llu,\"testcases\":%lld,\"coverage\":%llu,"
      "\"transitions\":%llu,\"published\":%llu,\"imported\":%llu,"
      "\"phase\":\"%s\"}",
      hb.worker_id, hb.pid, static_cast<unsigned long long>(hb.seq),
      static_cast<unsigned long long>(hb.job_index),
      static_cast<unsigned long long>(hb.total_ops),
      static_cast<long long>(hb.testcases),
      static_cast<unsigned long long>(hb.coverage),
      static_cast<unsigned long long>(hb.transitions),
      static_cast<unsigned long long>(hb.published),
      static_cast<unsigned long long>(hb.imported), hb.phase.c_str());
}

Status AppendHeartbeat(const std::string& path, const Heartbeat& hb) {
  return AppendLine(path, RenderHeartbeatJson(hb));
}

bool ParseHeartbeatJson(std::string_view line, Heartbeat* hb) {
  long long value = 0;
  if (!FindNumber(line, "worker", &value)) return false;
  hb->worker_id = static_cast<int>(value);
  if (!FindNumber(line, "pid", &value)) return false;
  hb->pid = static_cast<long>(value);
  if (!FindNumber(line, "seq", &value)) return false;
  hb->seq = static_cast<uint64_t>(value);
  if (!FindNumber(line, "job", &value)) return false;
  hb->job_index = static_cast<uint64_t>(value);
  if (!FindNumber(line, "ops", &value)) return false;
  hb->total_ops = static_cast<uint64_t>(value);
  if (!FindNumber(line, "testcases", &value)) return false;
  hb->testcases = value;
  if (!FindNumber(line, "coverage", &value)) return false;
  hb->coverage = static_cast<uint64_t>(value);
  if (!FindNumber(line, "transitions", &value)) return false;
  hb->transitions = static_cast<uint64_t>(value);
  if (!FindNumber(line, "published", &value)) return false;
  hb->published = static_cast<uint64_t>(value);
  if (!FindNumber(line, "imported", &value)) return false;
  hb->imported = static_cast<uint64_t>(value);
  if (!FindString(line, "phase", &hb->phase)) return false;
  return true;
}

Result<Heartbeat> ReadLastHeartbeat(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(Sprintf("no heartbeat file %s", path.c_str()));
  }
  Heartbeat last;
  bool found = false;
  std::string line;
  while (std::getline(in, line)) {
    Heartbeat hb;
    if (ParseHeartbeatJson(line, &hb)) {
      last = hb;
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound(
        Sprintf("no parsable heartbeat in %s", path.c_str()));
  }
  return last;
}

}  // namespace themis
