// The `fleet` subcommand family (DESIGN.md §17), shared by themis_cli and
// the themis_fleet convenience binary:
//
//   fleet run <hdfs|ceph|gluster|leo|geo> --dir=DIR [options]
//       stage the matrix into DIR and supervise N worker processes
//   fleet worker --dir=DIR --worker=K [options]
//       one worker process (normally spawned by `fleet run`, not by hand)
//   fleet status --dir=DIR
//       point-in-time snapshot: queue counts, corpus size, worker heartbeats
//
// FleetMain receives argv positioned AFTER the `fleet` token. The supervisor
// respawns workers as `<self_exe> fleet worker ...`, resolving self_exe from
// /proc/self/exe so it works regardless of how the parent was invoked.

#ifndef SRC_FLEET_FLEET_CLI_H_
#define SRC_FLEET_FLEET_CLI_H_

namespace themis {

int FleetMain(int argc, char** argv);

}  // namespace themis

#endif  // SRC_FLEET_FLEET_CLI_H_
