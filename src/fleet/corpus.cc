#include "src/fleet/corpus.h"

#include <algorithm>
#include <filesystem>

#include "src/common/strings.h"
#include "src/fleet/fleet_io.h"

namespace themis {

std::string SeedFileName(uint64_t fingerprint) {
  return Sprintf("seed-%016llx.seed",
                 static_cast<unsigned long long>(fingerprint));
}

bool ParseSeedFileName(std::string_view name, uint64_t* fingerprint) {
  constexpr std::string_view prefix = "seed-";
  constexpr std::string_view suffix = ".seed";
  if (name.size() != prefix.size() + 16 + suffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name.substr(name.size() - suffix.size()) != suffix) return false;
  uint64_t value = 0;
  for (char c : name.substr(prefix.size(), 16)) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *fingerprint = value;
  return true;
}

Status PublishSeed(const std::string& dir, const CorpusSeed& seed) {
  if (seed.seq.empty()) {
    return Status::InvalidArgument("refusing to publish an empty sequence");
  }
  if (seed.fingerprint != OpSeqFingerprint(seed.seq)) {
    return Status::InvalidArgument(
        "seed fingerprint does not match its sequence");
  }
  const std::string path =
      (std::filesystem::path(dir) / SeedFileName(seed.fingerprint)).string();
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    return Status::Ok();  // another worker already published this sequence
  }
  SnapshotWriter payload;
  payload.U64(seed.fingerprint);
  payload.U8(static_cast<uint8_t>(seed.flavor));
  payload.F64(seed.score);
  payload.U64(seed.transitions);
  payload.U64(seed.origin_job);
  SaveOpSeq(payload, seed.seq);
  return WriteFramedFile(path, kCorpusSeedMagic, kCorpusSeedFormatVersion,
                         payload.buffer());
}

Result<CorpusSeed> ReadSeedFile(const std::string& path) {
  Result<std::string> payload =
      ReadFramedFile(path, kCorpusSeedMagic, kCorpusSeedFormatVersion);
  if (!payload.ok()) {
    return payload.status();
  }
  SnapshotReader reader(payload.value());
  CorpusSeed seed;
  seed.fingerprint = reader.U64();
  uint8_t flavor = reader.U8();
  seed.score = reader.F64();
  seed.transitions = reader.U64();
  seed.origin_job = reader.U64();
  RestoreOpSeq(reader, &seed.seq);
  if (reader.ok() && !reader.AtEnd()) {
    reader.Fail("trailing bytes after seed record");
  }
  if (!reader.ok()) {
    return Status::DataLoss(
        Sprintf("%s: %s", path.c_str(), reader.status().ToString().c_str()));
  }
  if (flavor > static_cast<uint8_t>(Flavor::kGeo)) {
    return Status::DataLoss(
        Sprintf("%s: unknown flavor %u", path.c_str(), flavor));
  }
  seed.flavor = static_cast<Flavor>(flavor);
  if (seed.seq.empty()) {
    return Status::DataLoss(Sprintf("%s: empty sequence", path.c_str()));
  }
  if (seed.fingerprint != OpSeqFingerprint(seed.seq)) {
    return Status::DataLoss(Sprintf(
        "%s: embedded fingerprint does not match the sequence", path.c_str()));
  }
  uint64_t name_fingerprint = 0;
  std::string name = std::filesystem::path(path).filename().string();
  if (ParseSeedFileName(name, &name_fingerprint) &&
      name_fingerprint != seed.fingerprint) {
    return Status::DataLoss(Sprintf(
        "%s: file name disagrees with embedded fingerprint", path.c_str()));
  }
  return seed;
}

std::vector<std::string> ListSeedFileNames(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return names;
  }
  for (const auto& entry : it) {
    uint64_t fingerprint = 0;
    std::string name = entry.path().filename().string();
    if (ParseSeedFileName(name, &fingerprint)) {
      names.push_back(std::move(name));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace themis
