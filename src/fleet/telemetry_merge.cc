#include "src/fleet/telemetry_merge.h"

#include <cstdlib>
#include <fstream>
#include <iterator>

#include "src/common/strings.h"

namespace themis {

namespace {

// Scans `"name": <integer>` pairs inside the object that starts right after
// `section_key` (e.g. `"counters": {`). Stops at the section's closing
// brace. Assumes the repo's own renderer: names contain no escaped quotes
// worth handling beyond JsonEscape's, values are bare integers.
template <typename Map>
bool ScanSection(const std::string& text, std::string_view section_key,
                 Map* out) {
  std::string needle = Sprintf("\"%.*s\": {",
                               static_cast<int>(section_key.size()),
                               section_key.data());
  size_t at = text.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  size_t pos = at + needle.size();
  size_t end = text.find('}', pos);
  if (end == std::string::npos) {
    return false;
  }
  while (pos < end) {
    size_t name_open = text.find('"', pos);
    if (name_open == std::string::npos || name_open >= end) break;
    size_t name_close = text.find('"', name_open + 1);
    if (name_close == std::string::npos || name_close >= end) return false;
    std::string name = text.substr(name_open + 1, name_close - name_open - 1);
    size_t colon = text.find(':', name_close);
    if (colon == std::string::npos || colon >= end) return false;
    char* value_end = nullptr;
    long long value = std::strtoll(text.c_str() + colon + 1, &value_end, 10);
    if (value_end == text.c_str() + colon + 1) return false;
    (*out)[std::move(name)] =
        static_cast<typename Map::mapped_type>(value);
    pos = static_cast<size_t>(value_end - text.c_str());
  }
  return true;
}

}  // namespace

Result<FlatMetrics> ReadFlatMetricsJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(Sprintf("%s cannot be opened", path.c_str()));
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  FlatMetrics metrics;
  if (!ScanSection(text, "counters", &metrics.counters) ||
      !ScanSection(text, "gauges", &metrics.gauges)) {
    return Status::DataLoss(
        Sprintf("%s: missing or malformed counters/gauges sections",
                path.c_str()));
  }
  return metrics;
}

void MergeFlatMetrics(FlatMetrics* into, const FlatMetrics& from) {
  for (const auto& [name, value] : from.counters) {
    into->counters[name] += value;
  }
  for (const auto& [name, value] : from.gauges) {
    into->gauges[name] += value;
  }
}

std::string RenderMergedMetricsJson(const std::string& bench_name,
                                    double wall_seconds, int workers,
                                    const FlatMetrics& metrics) {
  std::string out =
      Sprintf("{\n  \"bench\": \"%s\",\n  \"wall_seconds\": %.6f,\n"
              "  \"workers\": %d,\n",
              bench_name.c_str(), wall_seconds, workers);
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : metrics.counters) {
    out += Sprintf("%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                   static_cast<unsigned long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : metrics.gauges) {
    out += Sprintf("%s\n    \"%s\": %lld", first ? "" : ",", name.c_str(),
                   static_cast<long long>(value));
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::vector<std::string> JsonlTail::Drain() {
  std::vector<std::string> lines;
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    return lines;
  }
  in.seekg(static_cast<std::streamoff>(offset_));
  if (!in) {
    return lines;
  }
  std::string chunk((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  offset_ += chunk.size();
  partial_ += chunk;
  size_t start = 0;
  while (true) {
    size_t newline = partial_.find('\n', start);
    if (newline == std::string::npos) break;
    lines.push_back(partial_.substr(start, newline - start));
    start = newline + 1;
  }
  partial_.erase(0, start);
  return lines;
}

}  // namespace themis
