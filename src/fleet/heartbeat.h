// Worker liveness + progress heartbeats (DESIGN.md §17).
//
// Each worker appends one JSON line to its own `hb/worker-<k>.jsonl` at a
// test-case cadence and at phase changes. The supervisor uses the file's
// mtime for liveness (a stale file means a hung worker, distinct from a
// crashed one, which waitpid catches) and the last line for --fleet-status.
// The full history stays in the file: check_fleet_invariants.py replays it
// to assert that coverage and op counts are monotone per (job, pid) run —
// the fleet-mode stand-in for digest determinism.

#ifndef SRC_FLEET_HEARTBEAT_H_
#define SRC_FLEET_HEARTBEAT_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace themis {

struct Heartbeat {
  int worker_id = 0;
  long pid = 0;
  uint64_t seq = 0;        // per-incarnation heartbeat counter, strictly up
  uint64_t job_index = 0;  // matrix job currently running
  uint64_t total_ops = 0;
  int64_t testcases = 0;
  uint64_t coverage = 0;
  uint64_t transitions = 0;
  uint64_t published = 0;  // seeds this worker published to the corpus
  uint64_t imported = 0;   // seeds it imported from peers
  // "run", "job_done", "idle" (queue empty), or "exit".
  std::string phase = "run";
};

std::string HeartbeatFileName(int worker_id);

std::string RenderHeartbeatJson(const Heartbeat& hb);

Status AppendHeartbeat(const std::string& path, const Heartbeat& hb);

// Parses the last well-formed heartbeat line of `path`. kNotFound when the
// file is missing or holds no parsable line.
Result<Heartbeat> ReadLastHeartbeat(const std::string& path);

// Line-level parser, exposed for the invariant checker tests.
bool ParseHeartbeatJson(std::string_view line, Heartbeat* hb);

}  // namespace themis

#endif  // SRC_FLEET_HEARTBEAT_H_
