#include "src/fleet/worker.h"

#include <unistd.h>

#include <chrono>
#include <filesystem>

#include "src/common/log.h"
#include "src/common/strings.h"
#include "src/fleet/exchange.h"
#include "src/fleet/fleet_io.h"
#include "src/fleet/heartbeat.h"
#include "src/fleet/work_queue.h"
#include "src/harness/telemetry_export.h"

namespace themis {

namespace fs = std::filesystem;

Result<FleetWorkerOutcome> RunFleetWorker(const FleetWorkerOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("fleet worker needs a --dir");
  }
  FleetPaths paths = FleetPaths::At(options.dir);
  if (Status s = paths.EnsureDirs(); !s.ok()) {
    return s;
  }
  const std::string corpus_dir =
      options.corpus_dir.empty() ? paths.corpus : options.corpus_dir;
  const std::string heartbeat_path =
      (fs::path(paths.hb) / HeartbeatFileName(options.worker_id)).string();
  const std::string publish_log =
      (fs::path(paths.hb) / Sprintf("worker-%d.publog", options.worker_id))
          .string();

  auto start = std::chrono::steady_clock::now();
  FleetWorkerOutcome outcome;
  bool first_job = true;
  uint64_t heartbeat_tail_seq = 0;

  while (true) {
    Result<std::optional<ClaimedJob>> next = NextJob(paths, options.worker_id);
    if (!next.ok()) {
      return next.status();
    }
    if (!next.value().has_value()) {
      break;  // queue drained
    }
    ClaimedJob claimed = std::move(*next.value());
    CampaignJob job = claimed.job;
    // The spec is the source of truth for campaign behavior; the worker
    // only pins the plumbing that must match ITS view of the fleet root.
    job.config.checkpoint_dir = paths.ckpt;
    job.config.resume = true;
    job.config.collect_telemetry = true;
    if (first_job && options.halt_after_checkpoints > 0) {
      job.config.halt_after_checkpoints = options.halt_after_checkpoints;
      if (job.config.checkpoint_every_ops == 0) {
        job.config.checkpoint_every_ops = 2000;
      }
    }
    first_job = false;

    CorpusExchangeOptions exchange_options;
    exchange_options.corpus_dir = corpus_dir;
    exchange_options.flavor = job.config.flavor;
    exchange_options.job_index = job.index;
    exchange_options.worker_id = options.worker_id;
    exchange_options.pid = static_cast<long>(::getpid());
    exchange_options.import_every = options.import_every;
    exchange_options.heartbeat_every = options.heartbeat_every;
    exchange_options.heartbeat_path = heartbeat_path;
    exchange_options.publish_log = publish_log;
    exchange_options.heartbeat_seq_start = heartbeat_tail_seq;
    CorpusExchange exchange(exchange_options);

    RunnerOptions runner_options;
    runner_options.jobs = 1;
    runner_options.loop_observer = &exchange;
    CampaignRunner runner(runner_options);
    MatrixResult matrix_result = runner.RunJobs({job});
    JobResult& job_result = matrix_result.jobs[0];

    outcome.seeds_published += exchange.published();
    outcome.seeds_imported += exchange.imported();
    outcome.corpus_rejects += exchange.rejected();
    heartbeat_tail_seq = exchange.heartbeat_seq();

    if (!job_result.status.ok()) {
      if (job_result.status.code() == StatusCode::kFailedPrecondition &&
          job_result.status.message().find("halted after") !=
              std::string::npos) {
        // The crash-test hook fired. Leave the claim in place — the next
        // incarnation of this worker id re-adopts it and resumes from the
        // checkpoint the halt guaranteed exists.
        outcome.crashed = true;
        return outcome;
      }
      // A genuinely failed job (bad spec, unknown strategy): record the
      // failure as its done record so the queue still drains and the
      // supervisor reports it, instead of crash-looping on the same spec.
      THEMIS_LOG(kWarn, "fleet job %zu failed: %s", job.index,
                 job_result.status.ToString().c_str());
    }

    FleetDoneRecord record;
    record.job = claimed.job;
    record.job_status = job_result.status;
    record.result = job_result.result;
    record.worker_id = options.worker_id;
    record.wall_seconds = job_result.wall_seconds;
    record.cpu_seconds = job_result.cpu_seconds;
    if (Status s = MarkJobDone(paths, claimed, record); !s.ok()) {
      return s;
    }
    ++outcome.jobs_completed;

    // Append this job's event stream (plus its job_summary line) to the
    // worker's live JSONL; the supervisor tails it into the merged stream.
    const std::string stream_path =
        (fs::path(paths.telemetry) /
         Sprintf("worker-%d.jsonl", options.worker_id))
            .string();
    std::string jsonl = RenderTelemetryJsonl(matrix_result);
    if (!jsonl.empty() && jsonl.back() == '\n') {
      jsonl.pop_back();
    }
    if (!jsonl.empty()) {
      AppendLine(stream_path, jsonl);
    }

    Heartbeat done_hb;
    done_hb.worker_id = options.worker_id;
    done_hb.pid = static_cast<long>(::getpid());
    done_hb.seq = ++heartbeat_tail_seq;
    done_hb.job_index = job.index;
    done_hb.total_ops = job_result.result.total_ops;
    done_hb.testcases = job_result.result.testcases;
    done_hb.coverage = job_result.result.final_coverage;
    done_hb.transitions = job_result.result.transition_coverage;
    done_hb.published = outcome.seeds_published;
    done_hb.imported = outcome.seeds_imported;
    done_hb.phase = "job_done";
    AppendHeartbeat(heartbeat_path, done_hb);
  }

  Heartbeat exit_hb;
  exit_hb.worker_id = options.worker_id;
  exit_hb.pid = static_cast<long>(::getpid());
  exit_hb.seq = ++heartbeat_tail_seq;
  exit_hb.published = outcome.seeds_published;
  exit_hb.imported = outcome.seeds_imported;
  exit_hb.phase = "exit";
  AppendHeartbeat(heartbeat_path, exit_hb);

  // The worker's whole-process metrics registry, for the supervisor's
  // sum-merge into the fleet BENCH document.
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const std::string metrics_path =
      (fs::path(paths.telemetry) /
       Sprintf("metrics-worker-%d.json", options.worker_id))
          .string();
  WriteMetricsSummaryJson(Sprintf("fleet-worker-%d", options.worker_id),
                          wall_seconds, metrics_path);
  return outcome;
}

}  // namespace themis
