// The fleet worker loop (DESIGN.md §17): claim a job, run the campaign with
// the corpus exchange attached, write the done record, repeat until the
// queue drains.
//
// Crash recovery is built from PR 4 checkpoints: every job runs with
// resume=true against the shared ckpt/ directory, so a restarted worker
// that re-adopts an orphaned claim continues the interrupted campaign from
// its newest valid snapshot instead of starting over — and because a job
// only counts when its done record lands, test cases are never counted
// twice across incarnations.
//
// RunFleetWorker is in-process callable (the fleet service tests drive
// sequential workers through it directly); the CLI wraps it in a process
// whose exit code the supervisor watches.

#ifndef SRC_FLEET_WORKER_H_
#define SRC_FLEET_WORKER_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace themis {

struct FleetWorkerOptions {
  std::string dir;         // fleet root (FleetPaths layout)
  std::string corpus_dir;  // defaults to <dir>/corpus; may point at /dev/shm
  int worker_id = 0;
  int import_every = 64;
  int heartbeat_every = 32;
  // Crash-test hook, applied to the first claimed job only: abort the
  // process-to-be after this many checkpoints. The supervisor passes it to
  // a worker's first incarnation in fleet-smoke CI runs.
  int halt_after_checkpoints = 0;
};

struct FleetWorkerOutcome {
  int jobs_completed = 0;
  uint64_t seeds_published = 0;
  uint64_t seeds_imported = 0;
  uint64_t corpus_rejects = 0;
  // The halt_after_checkpoints hook fired: the claim was left in claimed/
  // and the caller must exit nonzero so the supervisor restarts the worker.
  bool crashed = false;
};

Result<FleetWorkerOutcome> RunFleetWorker(const FleetWorkerOptions& options);

}  // namespace themis

#endif  // SRC_FLEET_WORKER_H_
