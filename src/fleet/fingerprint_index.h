// In-memory index of corpus fingerprints a worker already knows about —
// published itself, imported, or rejected as corrupt. Because the
// fingerprint is embedded in the seed file name, the exchange can diff the
// directory listing against this index and touch only genuinely new files:
// an import scan is O(directory entries) stats plus O(new seeds) reads,
// never a re-read of the whole corpus.

#ifndef SRC_FLEET_FINGERPRINT_INDEX_H_
#define SRC_FLEET_FINGERPRINT_INDEX_H_

#include <cstdint>
#include <unordered_set>

namespace themis {

class FingerprintIndex {
 public:
  bool Contains(uint64_t fingerprint) const {
    return set_.count(fingerprint) != 0;
  }
  // Returns true when the fingerprint was new.
  bool Insert(uint64_t fingerprint) { return set_.insert(fingerprint).second; }
  size_t size() const { return set_.size(); }

 private:
  std::unordered_set<uint64_t> set_;
};

}  // namespace themis

#endif  // SRC_FLEET_FINGERPRINT_INDEX_H_
