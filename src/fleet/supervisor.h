// The fleet supervisor (DESIGN.md §17): stages the campaign matrix into the
// shared work queue, fork/execs N worker processes, and babysits them —
// liveness via waitpid plus heartbeat-file staleness, crash restarts capped
// per worker (each restart resumes orphaned claims from their newest valid
// checkpoint), live telemetry funneled from per-worker JSONL streams into
// one merged stream, and a final merge of done records + per-worker metrics
// into fleet_summary.json and a fleet BENCH document.
//
// Fleet mode trades bit-identity for throughput: instead of digests it is
// validated by invariants — no lost seeds (publish logs ⊆ corpus), monotone
// per-incarnation coverage (heartbeat history), and exactly-once job
// accounting (done records) — which scripts/check_fleet_invariants.py
// replays from the fleet directory after a run.

#ifndef SRC_FLEET_SUPERVISOR_H_
#define SRC_FLEET_SUPERVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/fleet/work_queue.h"
#include "src/harness/runner.h"

namespace themis {

struct FleetConfig {
  std::string dir;         // fleet root; created if missing
  std::string corpus_dir;  // defaults to <dir>/corpus (set under /dev/shm
                           // for an shm-backed corpus)
  int workers = 2;
  CampaignMatrix matrix;
  uint64_t checkpoint_every_ops = 2000;  // worker migration granularity
  int import_every = 64;
  int heartbeat_every = 32;
  // A worker whose heartbeat file goes this stale while its process lives
  // is presumed hung: SIGKILLed and restarted. <= 0 disables the check
  // (campaigns that legitimately pause longer than any sane timeout).
  double heartbeat_timeout_s = 0.0;
  int max_restarts_per_worker = 8;
  double poll_interval_s = 0.05;
  // argv prefix for spawning one worker, e.g. {"/proc/self/exe", "fleet",
  // "worker"}; the supervisor appends --dir/--worker/--corpus-dir/cadence
  // flags per worker.
  std::vector<std::string> worker_command;
  // Crash-test hook (fleet-smoke CI): worker 0's FIRST incarnation gets
  // --halt-after-checkpoints=<n>, so it deterministically dies mid-job and
  // exercises the restart-from-checkpoint path.
  int crash_worker0_after_checkpoints = 0;
  // Output paths; empty fields default under <dir>.
  std::string merged_summary_path;  // fleet_summary.json
  std::string merged_bench_path;    // fleet_metrics.json
  std::string stream_path;          // fleet_telemetry.jsonl (merged live)
};

struct FleetOutcome {
  int jobs_total = 0;
  int jobs_done = 0;
  int jobs_failed = 0;   // done records carrying a job failure
  int worker_restarts = 0;
  int workers_failed = 0;  // gave up after max_restarts_per_worker
  uint64_t total_ops = 0;
  int64_t testcases = 0;
  int distinct_failures = 0;
  size_t corpus_seeds = 0;
  size_t fleet_transitions = 0;  // union of per-job transition pairs
  double wall_seconds = 0.0;
};

// Writes job specs for every expanded matrix job that has no done record
// yet (so re-running a supervisor over an existing fleet dir resumes it).
// Exposed for the in-process fleet tests.
Status StageFleetJobs(const FleetPaths& paths, const CampaignMatrix& matrix,
                      uint64_t checkpoint_every_ops);

Result<FleetOutcome> RunFleetSupervisor(const FleetConfig& config);

// --fleet-status: a point-in-time snapshot assembled from the queue counts,
// corpus size, and each worker's newest heartbeat.
struct FleetWorkerStatus {
  int worker_id = 0;
  long pid = 0;
  std::string phase;
  uint64_t job_index = 0;
  uint64_t total_ops = 0;
  uint64_t transitions = 0;
  uint64_t published = 0;
  uint64_t imported = 0;
  double heartbeat_age_s = -1.0;  // since last heartbeat write; -1 unknown
};

struct FleetStatusSnapshot {
  QueueCounts queue;
  size_t corpus_seeds = 0;
  std::vector<FleetWorkerStatus> workers;
};

Result<FleetStatusSnapshot> CollectFleetStatus(const std::string& dir);
std::string RenderFleetStatus(const FleetStatusSnapshot& snapshot);

}  // namespace themis

#endif  // SRC_FLEET_SUPERVISOR_H_
