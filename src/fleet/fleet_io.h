// Framed, checksummed file exchange for the fleet service (DESIGN.md §17).
//
// Every file fleet processes hand each other — corpus seeds, work-queue job
// specs, done records — uses the same frame as campaign snapshots:
//
//   offset  size  field
//   0       8     magic (per file kind, e.g. "THMSEED1")
//   8       4     format version (u32 LE)
//   12      8     payload size in bytes (u64 LE)
//   20      8     FNV-1a 64 checksum of the payload (u64 LE)
//   28      ...   payload (SnapshotWriter encoding)
//
// Writes are atomic (tmp + rename), so a reader never observes a torn file;
// readers validate magic, version, size and checksum before parsing a byte,
// and every corruption mode maps to a descriptive kDataLoss status — the
// corpus-hygiene tests exercise each one, mirroring snapshot_corruption_test.

#ifndef SRC_FLEET_FLEET_IO_H_
#define SRC_FLEET_FLEET_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace themis {

// `magic` must be exactly 8 bytes.
Status WriteFramedFile(const std::string& path, std::string_view magic,
                       uint32_t version, const std::string& payload);

// Returns the validated payload, or kNotFound / kDataLoss.
Result<std::string> ReadFramedFile(const std::string& path,
                                   std::string_view magic, uint32_t version);

// Appends one line (with trailing newline added) to `path`, creating it if
// needed. Lines are written with a single O_APPEND write, so concurrent
// appenders from different processes never interleave mid-line.
Status AppendLine(const std::string& path, std::string_view line);

}  // namespace themis

#endif  // SRC_FLEET_FLEET_IO_H_
