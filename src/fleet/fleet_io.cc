#include "src/fleet/fleet_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>

#include "src/common/snapshot_io.h"
#include "src/common/strings.h"

namespace themis {

namespace {
constexpr size_t kFrameHeaderBytes = 8 + 4 + 8 + 8;
}  // namespace

Status WriteFramedFile(const std::string& path, std::string_view magic,
                       uint32_t version, const std::string& payload) {
  if (magic.size() != 8) {
    return Status::InvalidArgument("framed-file magic must be 8 bytes");
  }
  SnapshotWriter header;
  for (char c : magic) header.U8(static_cast<uint8_t>(c));
  header.U32(version);
  header.U64(payload.size());
  header.U64(Fnv1a64(payload));

  std::error_code ec;
  std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  // Suffix the temp name with the pid: several fleet processes may publish
  // the same seed fingerprint concurrently, and their temp files must not
  // clobber each other before the winning rename.
  const std::string tmp_path =
      Sprintf("%s.%ld.tmp", path.c_str(), static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal(
          Sprintf("cannot open temp file %s", tmp_path.c_str()));
    }
    out.write(header.buffer().data(),
              static_cast<std::streamsize>(header.buffer().size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      return Status::Internal(
          Sprintf("short write to temp file %s", tmp_path.c_str()));
    }
  }
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    return Status::Internal(Sprintf("cannot rename %s to %s: %s",
                                    tmp_path.c_str(), path.c_str(),
                                    ec.message().c_str()));
  }
  return Status::Ok();
}

Result<std::string> ReadFramedFile(const std::string& path,
                                   std::string_view magic, uint32_t version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(Sprintf("%s cannot be opened", path.c_str()));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < kFrameHeaderBytes) {
    return Status::DataLoss(Sprintf("%s truncated: %zu bytes, header needs %zu",
                                    path.c_str(), bytes.size(),
                                    kFrameHeaderBytes));
  }
  SnapshotReader header(std::string_view(bytes).substr(0, kFrameHeaderBytes));
  char file_magic[8];
  for (char& c : file_magic) c = static_cast<char>(header.U8());
  if (std::string_view(file_magic, 8) != magic) {
    return Status::DataLoss(
        Sprintf("%s has bad magic (foreign file in fleet directory)",
                path.c_str()));
  }
  uint32_t file_version = header.U32();
  if (file_version != version) {
    return Status::DataLoss(
        Sprintf("%s has unsupported format version %u (this build reads %u)",
                path.c_str(), file_version, version));
  }
  uint64_t payload_size = header.U64();
  uint64_t checksum = header.U64();
  if (bytes.size() - kFrameHeaderBytes != payload_size) {
    return Status::DataLoss(
        Sprintf("%s payload size mismatch: header says %llu bytes, file has %zu",
                path.c_str(), static_cast<unsigned long long>(payload_size),
                bytes.size() - kFrameHeaderBytes));
  }
  std::string payload = bytes.substr(kFrameHeaderBytes);
  if (Fnv1a64(payload) != checksum) {
    return Status::DataLoss(
        Sprintf("%s payload checksum mismatch (corrupt file)", path.c_str()));
  }
  return payload;
}

Status AppendLine(const std::string& path, std::string_view line) {
  std::string record(line);
  record.push_back('\n');
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal(Sprintf("cannot open %s for append", path.c_str()));
  }
  ssize_t written = ::write(fd, record.data(), record.size());
  ::close(fd);
  if (written != static_cast<ssize_t>(record.size())) {
    return Status::Internal(Sprintf("short append to %s", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace themis
