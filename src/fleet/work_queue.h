// The fleet's shared work queue: matrix jobs as files, claims as renames
// (DESIGN.md §17).
//
// Directory layout under the fleet root:
//
//   queue/job-<index>.job          unclaimed job specs (framed "THMSJOB1")
//   claimed/job-<index>.w<k>.job   specs claimed by worker k
//   done/job-<index>.res           done records (framed "THMSRES1")
//   corpus/                        shared seed corpus (corpus.h)
//   ckpt/                          campaign snapshots, job-<index>-*.ckpt
//   hb/                            per-worker heartbeat JSONL
//   telemetry/                     per-worker event streams + metrics
//
// Claiming is a rename(2) from queue/ into claimed/: atomic on one
// filesystem, so exactly one worker wins each job with no lock file or
// server. A crashed worker leaves its spec in claimed/; its restarted
// incarnation (same worker id) re-adopts those orphans first and resumes
// each from the newest valid checkpoint in ckpt/. A job is counted exactly
// once — when its done record lands in done/ — so supervisor totals never
// double-count test cases across crash/restart cycles.

#ifndef SRC_FLEET_WORK_QUEUE_H_
#define SRC_FLEET_WORK_QUEUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/harness/runner.h"

namespace themis {

inline constexpr std::string_view kJobSpecMagic = "THMSJOB1";
inline constexpr std::string_view kDoneRecordMagic = "THMSRES1";
inline constexpr uint32_t kFleetFileFormatVersion = 1;

struct FleetPaths {
  std::string root;
  std::string queue;
  std::string claimed;
  std::string done;
  std::string corpus;
  std::string ckpt;
  std::string hb;
  std::string telemetry;

  static FleetPaths At(const std::string& root);
  Status EnsureDirs() const;
};

std::string QueueJobFileName(size_t job_index);
std::string ClaimedJobFileName(size_t job_index, int worker_id);
std::string DoneRecordFileName(size_t job_index);

// Full CampaignConfig round-trip (every field, including checkpoint
// plumbing — the spec is the worker's complete marching orders). Restore
// validates enum ranges and runs CampaignConfig::Validate().
void SaveCampaignConfig(SnapshotWriter& writer, const CampaignConfig& config);
Status RestoreCampaignConfig(SnapshotReader& reader, CampaignConfig* config);

Status WriteJobSpecFile(const std::string& path, const CampaignJob& job);
Result<CampaignJob> ReadJobSpecFile(const std::string& path);

// A worker's completed job: its identity plus the campaign result (or the
// per-job failure status for jobs that validated but could not run).
struct FleetDoneRecord {
  CampaignJob job;
  Status job_status = Status::Ok();
  CampaignResult result;  // meaningful only when job_status.ok()
  int worker_id = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

Status WriteDoneRecordFile(const std::string& path,
                           const FleetDoneRecord& record);
Result<FleetDoneRecord> ReadDoneRecordFile(const std::string& path);

struct ClaimedJob {
  CampaignJob job;
  std::string claim_path;
};

// The next job for `worker_id`: first any orphaned claim already owned by
// this worker id (ascending job index — a restart resumes where the dead
// incarnation stopped), then the lowest-index unclaimed queue entry it can
// win. std::nullopt when the queue is drained.
Result<std::optional<ClaimedJob>> NextJob(const FleetPaths& paths,
                                          int worker_id);

// Moves a claim to its done record: writes done/job-<index>.res (atomic),
// then removes the claim file.
Status MarkJobDone(const FleetPaths& paths, const ClaimedJob& claimed,
                   const FleetDoneRecord& record);

// All done records in `paths.done`, ascending job index.
Result<std::vector<FleetDoneRecord>> ReadAllDoneRecords(
    const FleetPaths& paths);

// Counts of queue/claimed/done entries, for --fleet-status.
struct QueueCounts {
  size_t queued = 0;
  size_t claimed = 0;
  size_t done = 0;
};
QueueCounts CountQueueEntries(const FleetPaths& paths);

}  // namespace themis

#endif  // SRC_FLEET_WORK_QUEUE_H_
