#include "src/fleet/exchange.h"

#include <filesystem>

#include "src/common/log.h"
#include "src/common/strings.h"
#include "src/core/seed_pool.h"
#include "src/fleet/fleet_io.h"
#include "src/fleet/heartbeat.h"
#include "src/telemetry/metrics.h"

namespace themis {

CorpusExchange::CorpusExchange(CorpusExchangeOptions options)
    : options_(std::move(options)) {
  if (options_.import_every < 1) options_.import_every = 1;
  heartbeat_seq_ = options_.heartbeat_seq_start;
}

void CorpusExchange::PublishNewSeeds(Strategy& strategy,
                                     const CampaignTick& tick) {
  const SeedPool* pool = strategy.seed_pool();
  if (pool == nullptr) {
    return;
  }
  // Seed ids are allocated monotonically, so everything newer than the
  // high-water mark is a seed this campaign accepted since the last
  // boundary. Imported seeds are someone else's publication.
  uint64_t new_max = max_published_seed_id_;
  for (const Seed& seed : pool->seeds()) {
    if (seed.id <= max_published_seed_id_ || seed.imported) {
      if (seed.id > new_max) new_max = seed.id;
      continue;
    }
    if (seed.id > new_max) new_max = seed.id;
    if (index_.Contains(seed.fingerprint)) {
      continue;  // a mutation landed on a sequence we already shipped
    }
    CorpusSeed out;
    out.seq = seed.seq;
    out.fingerprint = seed.fingerprint;
    out.flavor = options_.flavor;
    out.score = seed.score;
    out.transitions = tick.transition_coverage;
    out.origin_job = options_.job_index;
    if (Status s = PublishSeed(options_.corpus_dir, out); !s.ok()) {
      THEMIS_LOG(kWarn, "seed publish failed: %s", s.ToString().c_str());
      continue;
    }
    index_.Insert(seed.fingerprint);
    ++published_;
    THEMIS_COUNTER_INC("fleet.seeds_published", 1);
    if (!options_.publish_log.empty()) {
      AppendLine(options_.publish_log,
                 Sprintf("%016llx",
                         static_cast<unsigned long long>(seed.fingerprint)));
    }
  }
  max_published_seed_id_ = new_max;
}

void CorpusExchange::ImportNewSeeds(Strategy& strategy) {
  for (const std::string& name : ListSeedFileNames(options_.corpus_dir)) {
    uint64_t fingerprint = 0;
    if (!ParseSeedFileName(name, &fingerprint)) {
      continue;
    }
    if (index_.Contains(fingerprint) || rejected_files_.count(name) != 0) {
      continue;
    }
    const std::string path =
        (std::filesystem::path(options_.corpus_dir) / name).string();
    Result<CorpusSeed> seed = ReadSeedFile(path);
    if (!seed.ok()) {
      rejected_files_.insert(name);
      ++rejected_;
      THEMIS_COUNTER_INC("fleet.corpus.rejects", 1);
      THEMIS_LOG(kWarn, "rejecting corpus file: %s",
                 seed.status().ToString().c_str());
      continue;
    }
    if (seed.value().flavor != options_.flavor) {
      // Well-formed but from a different flavor's campaign — a foreign
      // corpus mounted at the wrong path. Refuse it like corruption.
      rejected_files_.insert(name);
      ++rejected_;
      THEMIS_COUNTER_INC("fleet.corpus.rejects", 1);
      continue;
    }
    index_.Insert(fingerprint);
    if (strategy.ImportSeed(seed.value().seq, seed.value().score,
                            fingerprint)) {
      ++imported_;
      THEMIS_COUNTER_INC("fleet.seeds_imported", 1);
    } else {
      ++dups_;
      THEMIS_COUNTER_INC("fleet.exchange.import_noops", 1);
    }
  }
}

void CorpusExchange::EmitHeartbeat(const CampaignTick& tick,
                                   const char* phase) {
  if (options_.heartbeat_path.empty()) {
    return;
  }
  Heartbeat hb;
  hb.worker_id = options_.worker_id;
  hb.pid = options_.pid;
  hb.seq = ++heartbeat_seq_;
  hb.job_index = options_.job_index;
  hb.total_ops = tick.total_ops;
  hb.testcases = tick.testcases;
  hb.coverage = tick.coverage;
  hb.transitions = tick.transition_coverage;
  hb.published = published_;
  hb.imported = imported_;
  hb.phase = phase;
  AppendHeartbeat(options_.heartbeat_path, hb);
  THEMIS_COUNTER_INC("fleet.heartbeats", 1);
}

void CorpusExchange::OnTestcase(Strategy& strategy, const ExecOutcome& outcome,
                                const CampaignTick& tick) {
  (void)outcome;
  PublishNewSeeds(strategy, tick);
  if (++since_import_ >= options_.import_every) {
    since_import_ = 0;
    ImportNewSeeds(strategy);
  }
  if (options_.heartbeat_every > 0 &&
      ++since_heartbeat_ >= options_.heartbeat_every) {
    since_heartbeat_ = 0;
    EmitHeartbeat(tick, "run");
  }
}

void CorpusExchange::EmitJobDone(const CampaignTick& final_tick) {
  EmitHeartbeat(final_tick, "job_done");
}

}  // namespace themis
