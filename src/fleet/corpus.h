// The shared seed corpus: how fleet workers exchange interesting test cases
// (DESIGN.md §17).
//
// The corpus is a flat directory (file-backed, or shm-backed when placed
// under /dev/shm) of framed seed files, one per distinct sequence
// fingerprint, named `seed-<16-hex-fingerprint>.seed`. Publication is
// atomic (tmp + rename) and idempotent: the fingerprint in the name IS the
// dedup key, so two workers accepting the same sequence race benignly to
// the same file name, and an importer can skip every fingerprint it has
// already seen from the directory listing alone — no file is ever read
// twice.
//
// The seed payload carries the energy/coverage metadata the receiving
// strategy needs — the pool score the publisher assigned and the publisher's
// transition-pair coverage at publication time — so the bandit's reward
// accounting and the transition-coverage fitness blend keep working across
// the fleet.
//
// Hygiene: ReadSeedFile refuses anything that is not a well-formed seed of
// this build — foreign magic, stale version, truncation, payload corruption
// (checksum), a name that disagrees with the embedded fingerprint, a
// fingerprint that disagrees with the recomputed sequence digest, an
// out-of-range flavor, or an empty sequence. The importer counts each
// rejection under `fleet.corpus.rejects` and never retries the file.

#ifndef SRC_FLEET_CORPUS_H_
#define SRC_FLEET_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/opseq.h"
#include "src/dfs/types.h"

namespace themis {

inline constexpr std::string_view kCorpusSeedMagic = "THMSEED1";
inline constexpr uint32_t kCorpusSeedFormatVersion = 1;

struct CorpusSeed {
  uint64_t fingerprint = 0;  // OpSeqFingerprint(seq)
  Flavor flavor = Flavor::kGluster;
  double score = 0.0;         // publisher's pool energy for the seed
  uint64_t transitions = 0;   // publisher's transition coverage at publish
  uint64_t origin_job = 0;    // matrix job index that accepted the seed
  OpSeq seq;
};

std::string SeedFileName(uint64_t fingerprint);

// Parses `seed-<16hex>.seed`; false for any other name (tmp files, foreign
// droppings), which the importer simply ignores.
bool ParseSeedFileName(std::string_view name, uint64_t* fingerprint);

// Publishes `seed` into `dir` atomically. Skips the write when the file
// already exists (another worker won the race — same fingerprint, same
// bytes that matter). `seed.fingerprint` must match the sequence.
Status PublishSeed(const std::string& dir, const CorpusSeed& seed);

// Reads and fully validates one seed file (see hygiene notes above).
Result<CorpusSeed> ReadSeedFile(const std::string& path);

// Sorted seed file names currently in `dir` (an absent directory is an
// empty corpus, not an error).
std::vector<std::string> ListSeedFileNames(const std::string& dir);

}  // namespace themis

#endif  // SRC_FLEET_CORPUS_H_
