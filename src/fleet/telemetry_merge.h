// Fleet telemetry aggregation (DESIGN.md §17).
//
// Each worker process owns its own global MetricsRegistry and writes it out
// as a flat metrics summary (the BENCH_*.json "counters"/"gauges" shape)
// when it exits; the supervisor parses those files with the scanner below,
// sum-merges them, and renders one merged fleet summary. The scanner only
// understands the repo's own renderer output (WriteMetricsSummaryJson) —
// quoted name, colon, integer — which is exactly enough and keeps a JSON
// dependency out of the tree.
//
// JsonlTail is the live-stream half: an offset-tracking reader that drains
// newly appended complete lines from a growing JSONL file, so the
// supervisor can funnel per-worker event streams into one merged stream
// while the workers are still running.

#ifndef SRC_FLEET_TELEMETRY_MERGE_H_
#define SRC_FLEET_TELEMETRY_MERGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace themis {

struct FlatMetrics {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
};

// Parses the "counters" and "gauges" sections of a metrics summary written
// by WriteMetricsSummaryJson. Histograms are skipped: per-worker latency
// buckets do not sum meaningfully without their raw samples.
Result<FlatMetrics> ReadFlatMetricsJson(const std::string& path);

// value-sum merge; gauge collisions also sum (fleet gauges are totals).
void MergeFlatMetrics(FlatMetrics* into, const FlatMetrics& from);

// One merged BENCH-style document: {"bench":..., "wall_seconds":...,
// "workers":..., "counters":{...}, "gauges":{...}}.
std::string RenderMergedMetricsJson(const std::string& bench_name,
                                    double wall_seconds, int workers,
                                    const FlatMetrics& metrics);

// Offset-tracking tail over one growing JSONL file. Drain() returns every
// complete line appended since the previous call (no trailing newline);
// a final partial line stays buffered until its newline arrives.
class JsonlTail {
 public:
  explicit JsonlTail(std::string path) : path_(std::move(path)) {}

  std::vector<std::string> Drain();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  uint64_t offset_ = 0;
  std::string partial_;
};

}  // namespace themis

#endif  // SRC_FLEET_TELEMETRY_MERGE_H_
