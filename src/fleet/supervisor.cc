#include "src/fleet/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <thread>

#include "src/common/log.h"
#include "src/common/strings.h"
#include "src/dfs/types.h"
#include "src/fleet/corpus.h"
#include "src/fleet/fleet_io.h"
#include "src/fleet/heartbeat.h"
#include "src/fleet/telemetry_merge.h"
#include "src/harness/telemetry_export.h"
#include "src/telemetry/metrics.h"

namespace themis {

namespace fs = std::filesystem;

Status StageFleetJobs(const FleetPaths& paths, const CampaignMatrix& matrix,
                      uint64_t checkpoint_every_ops) {
  if (Status s = paths.EnsureDirs(); !s.ok()) {
    return s;
  }
  std::vector<CampaignJob> jobs = CampaignRunner::Expand(matrix);
  for (CampaignJob& job : jobs) {
    const std::string done_path =
        (fs::path(paths.done) / DoneRecordFileName(job.index)).string();
    std::error_code ec;
    if (fs::exists(done_path, ec)) {
      continue;  // already finished in a previous supervisor run
    }
    job.config.job_index = job.index;
    job.config.checkpoint_dir = paths.ckpt;
    job.config.checkpoint_every_ops = checkpoint_every_ops;
    job.config.resume = true;
    job.config.collect_telemetry = true;
    const std::string queue_path =
        (fs::path(paths.queue) / QueueJobFileName(job.index)).string();
    // Claimed-but-unfinished jobs keep their claim file; re-staging them in
    // queue/ would let a second worker run the same campaign.
    bool claimed_somewhere = false;
    for (fs::directory_iterator it(paths.claimed, ec);
         !ec && it != fs::directory_iterator(); ++it) {
      std::string name = it->path().filename().string();
      if (name.rfind(Sprintf("job-%06zu.w", job.index), 0) == 0) {
        claimed_somewhere = true;
        break;
      }
    }
    if (claimed_somewhere) {
      continue;
    }
    if (Status s = WriteJobSpecFile(queue_path, job); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

namespace {

struct WorkerProc {
  int worker_id = 0;
  pid_t pid = -1;
  int restarts = 0;
  int incarnation = 0;
  bool done = false;    // exited 0
  bool failed = false;  // exhausted restarts
};

// fork/execv one worker. The child never returns.
Result<pid_t> SpawnWorker(const FleetConfig& config,
                          const std::string& corpus_dir, int worker_id,
                          bool with_crash_hook) {
  std::vector<std::string> argv_storage = config.worker_command;
  argv_storage.push_back("--dir=" + config.dir);
  argv_storage.push_back(Sprintf("--worker=%d", worker_id));
  argv_storage.push_back("--corpus-dir=" + corpus_dir);
  argv_storage.push_back(Sprintf("--import-every=%d", config.import_every));
  argv_storage.push_back(
      Sprintf("--heartbeat-every=%d", config.heartbeat_every));
  if (with_crash_hook) {
    argv_storage.push_back(Sprintf("--halt-after-checkpoints=%d",
                                   config.crash_worker0_after_checkpoints));
  }
  std::vector<char*> argv;
  argv.reserve(argv_storage.size() + 1);
  for (std::string& arg : argv_storage) {
    argv.push_back(arg.data());
  }
  argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    return Status::Internal("fork failed");
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    // execv only returns on failure; die loudly so waitpid sees it.
    _exit(127);
  }
  return pid;
}

double FileAgeSeconds(const std::string& path) {
  std::error_code ec;
  auto mtime = fs::last_write_time(path, ec);
  if (ec) {
    return -1.0;
  }
  auto age = fs::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double>(age).count();
}

}  // namespace

Result<FleetOutcome> RunFleetSupervisor(const FleetConfig& config) {
  if (config.dir.empty()) {
    return Status::InvalidArgument("fleet supervisor needs a directory");
  }
  if (config.workers < 1) {
    return Status::InvalidArgument("fleet needs at least one worker");
  }
  if (config.worker_command.empty()) {
    return Status::InvalidArgument("fleet needs a worker command");
  }
  FleetPaths paths = FleetPaths::At(config.dir);
  const std::string corpus_dir =
      config.corpus_dir.empty() ? paths.corpus : config.corpus_dir;
  if (Status s = StageFleetJobs(paths, config.matrix,
                                config.checkpoint_every_ops);
      !s.ok()) {
    return s;
  }
  {
    std::error_code ec;
    fs::create_directories(corpus_dir, ec);
  }
  const std::string stream_path =
      config.stream_path.empty()
          ? (fs::path(config.dir) / "fleet_telemetry.jsonl").string()
          : config.stream_path;
  const std::string summary_path =
      config.merged_summary_path.empty()
          ? (fs::path(config.dir) / "fleet_summary.json").string()
          : config.merged_summary_path;
  const std::string bench_path =
      config.merged_bench_path.empty()
          ? (fs::path(config.dir) / "fleet_metrics.json").string()
          : config.merged_bench_path;

  auto start = std::chrono::steady_clock::now();
  std::vector<WorkerProc> procs(static_cast<size_t>(config.workers));
  std::vector<JsonlTail> tails;
  tails.reserve(procs.size());
  for (int k = 0; k < config.workers; ++k) {
    procs[k].worker_id = k;
    bool crash_hook = k == 0 && config.crash_worker0_after_checkpoints > 0;
    Result<pid_t> pid = SpawnWorker(config, corpus_dir, k, crash_hook);
    if (!pid.ok()) {
      return pid.status();
    }
    procs[k].pid = pid.value();
    procs[k].incarnation = 1;
    tails.emplace_back(
        (fs::path(paths.telemetry) / Sprintf("worker-%d.jsonl", k)).string());
    THEMIS_COUNTER_INC("fleet.workers_spawned", 1);
  }

  FleetOutcome outcome;
  auto drain_streams = [&] {
    for (JsonlTail& tail : tails) {
      for (const std::string& line : tail.Drain()) {
        AppendLine(stream_path, line);
      }
    }
  };

  while (true) {
    bool all_settled = true;
    for (WorkerProc& proc : procs) {
      if (proc.done || proc.failed) {
        continue;
      }
      all_settled = false;
      int wait_status = 0;
      pid_t waited = ::waitpid(proc.pid, &wait_status, WNOHANG);
      bool needs_restart = false;
      if (waited == proc.pid) {
        if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0) {
          proc.done = true;
          continue;
        }
        THEMIS_LOG(kWarn, "fleet worker %d (pid %ld) died (status %d)",
                   proc.worker_id, static_cast<long>(proc.pid), wait_status);
        needs_restart = true;
      } else if (config.heartbeat_timeout_s > 0) {
        const std::string hb_path =
            (fs::path(paths.hb) / HeartbeatFileName(proc.worker_id)).string();
        double age = FileAgeSeconds(hb_path);
        if (age > config.heartbeat_timeout_s) {
          THEMIS_LOG(kWarn, "fleet worker %d heartbeat stale (%.1fs); killing",
                     proc.worker_id, age);
          ::kill(proc.pid, SIGKILL);
          ::waitpid(proc.pid, &wait_status, 0);
          needs_restart = true;
        }
      }
      if (!needs_restart) {
        continue;
      }
      if (proc.restarts >= config.max_restarts_per_worker) {
        proc.failed = true;
        ++outcome.workers_failed;
        THEMIS_LOG(kWarn, "fleet worker %d exhausted %d restarts; giving up",
                   proc.worker_id, proc.restarts);
        continue;
      }
      ++proc.restarts;
      ++proc.incarnation;
      ++outcome.worker_restarts;
      THEMIS_COUNTER_INC("fleet.worker_restarts", 1);
      // Restarts never re-apply the crash hook: the point is to resume the
      // orphaned claim from its checkpoint and finish it.
      Result<pid_t> pid =
          SpawnWorker(config, corpus_dir, proc.worker_id, false);
      if (!pid.ok()) {
        return pid.status();
      }
      proc.pid = pid.value();
    }
    drain_streams();
    if (all_settled) {
      break;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config.poll_interval_s));
  }
  drain_streams();
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // ---- Merge done records into the deterministic campaign summary. ----
  Result<std::vector<FleetDoneRecord>> records = ReadAllDoneRecords(paths);
  if (!records.ok()) {
    return records.status();
  }
  outcome.jobs_total =
      static_cast<int>(CampaignRunner::Expand(config.matrix).size());
  MatrixResult matrix_result;
  matrix_result.threads = config.workers;
  matrix_result.wall_seconds = outcome.wall_seconds;
  std::map<std::string, int> distinct;
  for (FleetDoneRecord& record : records.value()) {
    JobResult job_result;
    job_result.job = record.job;
    job_result.status = record.job_status;
    job_result.result = std::move(record.result);
    job_result.wall_seconds = record.wall_seconds;
    job_result.cpu_seconds = record.cpu_seconds;
    if (job_result.status.ok()) {
      ++outcome.jobs_done;
      outcome.total_ops += job_result.result.total_ops;
      outcome.testcases += job_result.result.testcases;
      for (const auto& [id, at] : job_result.result.distinct_failures) {
        ++distinct[id];
      }
    } else {
      ++outcome.jobs_failed;
    }
    matrix_result.jobs.push_back(std::move(job_result));
  }
  outcome.distinct_failures = static_cast<int>(distinct.size());
  // Fleet-wide transition coverage: distinct (from, to) pairs per flavor,
  // unioned over the jobs' covered-pair lists.
  {
    std::map<Flavor, std::set<std::pair<uint8_t, uint8_t>>> pairs_by_flavor;
    for (const JobResult& job_result : matrix_result.jobs) {
      if (!job_result.status.ok()) continue;
      auto& pairs = pairs_by_flavor[job_result.job.config.flavor];
      for (const auto& pair : job_result.result.transition_pairs) {
        pairs.insert(pair);
      }
    }
    for (const auto& [flavor, pairs] : pairs_by_flavor) {
      outcome.fleet_transitions += pairs.size();
      MetricsRegistry::Global()
          .GetGauge(Sprintf("fleet.transitions.%s",
                            std::string(FlavorName(flavor)).c_str()))
          .Add(static_cast<int64_t>(pairs.size()));
    }
  }
  if (Status s = WriteCampaignSummaryJson(matrix_result, summary_path);
      !s.ok()) {
    return s;
  }

  // ---- Merge per-worker metrics registries + fleet gauges. ----
  FlatMetrics merged;
  for (int k = 0; k < config.workers; ++k) {
    const std::string metrics_path =
        (fs::path(paths.telemetry) / Sprintf("metrics-worker-%d.json", k))
            .string();
    Result<FlatMetrics> worker_metrics = ReadFlatMetricsJson(metrics_path);
    if (worker_metrics.ok()) {
      MergeFlatMetrics(&merged, worker_metrics.value());
    }
    // A worker that never exited cleanly (crashed out of restarts) simply
    // contributes no registry; its done records still count above.
  }
  outcome.corpus_seeds = ListSeedFileNames(corpus_dir).size();
  merged.gauges["fleet.workers"] += config.workers;
  merged.gauges["fleet.worker_restarts"] += outcome.worker_restarts;
  merged.gauges["fleet.jobs_done"] += outcome.jobs_done;
  merged.gauges["fleet.jobs_failed"] += outcome.jobs_failed;
  merged.gauges["fleet.corpus_seeds"] +=
      static_cast<int64_t>(outcome.corpus_seeds);
  merged.gauges["fleet.transitions"] +=
      static_cast<int64_t>(outcome.fleet_transitions);
  merged.gauges["fleet.total_ops"] += static_cast<int64_t>(outcome.total_ops);
  merged.gauges["fleet.distinct_failures"] += outcome.distinct_failures;
  if (outcome.wall_seconds > 0) {
    merged.gauges["fleet.ops_per_sec"] += static_cast<int64_t>(
        static_cast<double>(outcome.total_ops) / outcome.wall_seconds);
  }
  std::string bench_doc = RenderMergedMetricsJson(
      "fleet", outcome.wall_seconds, config.workers, merged);
  {
    std::error_code ec;
    fs::path target(bench_path);
    if (target.has_parent_path()) fs::create_directories(target.parent_path(), ec);
    std::string tmp = bench_path + ".tmp";
    FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) {
      return Status::Internal(Sprintf("cannot open %s", tmp.c_str()));
    }
    size_t written = std::fwrite(bench_doc.data(), 1, bench_doc.size(), file);
    std::fclose(file);
    if (written != bench_doc.size()) {
      return Status::Internal(Sprintf("short write to %s", tmp.c_str()));
    }
    fs::rename(tmp, bench_path, ec);
    if (ec) {
      return Status::Internal(Sprintf("cannot rename %s: %s", tmp.c_str(),
                                      ec.message().c_str()));
    }
  }

  THEMIS_LOG(kInfo,
             "fleet done: %d/%d jobs, %d restarts, %llu ops, %zu corpus "
             "seeds, %.1fs",
             outcome.jobs_done, outcome.jobs_total, outcome.worker_restarts,
             static_cast<unsigned long long>(outcome.total_ops),
             outcome.corpus_seeds, outcome.wall_seconds);
  return outcome;
}

Result<FleetStatusSnapshot> CollectFleetStatus(const std::string& dir) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) {
    return Status::NotFound(Sprintf("no fleet directory %s", dir.c_str()));
  }
  FleetPaths paths = FleetPaths::At(dir);
  FleetStatusSnapshot snapshot;
  snapshot.queue = CountQueueEntries(paths);
  snapshot.corpus_seeds = ListSeedFileNames(paths.corpus).size();
  for (fs::directory_iterator it(paths.hb, ec);
       !ec && it != fs::directory_iterator(); ++it) {
    std::string name = it->path().filename().string();
    int worker_id = -1;
    if (std::sscanf(name.c_str(), "worker-%d.hb.jsonl", &worker_id) != 1) {
      continue;
    }
    Result<Heartbeat> hb = ReadLastHeartbeat(it->path().string());
    if (!hb.ok()) {
      continue;
    }
    FleetWorkerStatus status;
    status.worker_id = worker_id;
    status.pid = hb.value().pid;
    status.phase = hb.value().phase;
    status.job_index = hb.value().job_index;
    status.total_ops = hb.value().total_ops;
    status.transitions = hb.value().transitions;
    status.published = hb.value().published;
    status.imported = hb.value().imported;
    status.heartbeat_age_s = FileAgeSeconds(it->path().string());
    snapshot.workers.push_back(std::move(status));
  }
  std::sort(snapshot.workers.begin(), snapshot.workers.end(),
            [](const FleetWorkerStatus& a, const FleetWorkerStatus& b) {
              return a.worker_id < b.worker_id;
            });
  return snapshot;
}

std::string RenderFleetStatus(const FleetStatusSnapshot& snapshot) {
  std::string out = Sprintf(
      "fleet status: %zu queued, %zu claimed, %zu done, %zu corpus seeds\n",
      snapshot.queue.queued, snapshot.queue.claimed, snapshot.queue.done,
      snapshot.corpus_seeds);
  out += Sprintf("%8s %8s %10s %6s %12s %12s %10s %10s %8s\n", "worker",
                 "pid", "phase", "job", "ops", "transitions", "published",
                 "imported", "hb_age");
  for (const FleetWorkerStatus& w : snapshot.workers) {
    out += Sprintf("%8d %8ld %10s %6llu %12llu %12llu %10llu %10llu %7.1fs\n",
                   w.worker_id, w.pid, w.phase.c_str(),
                   static_cast<unsigned long long>(w.job_index),
                   static_cast<unsigned long long>(w.total_ops),
                   static_cast<unsigned long long>(w.transitions),
                   static_cast<unsigned long long>(w.published),
                   static_cast<unsigned long long>(w.imported),
                   w.heartbeat_age_s);
  }
  return out;
}

}  // namespace themis
