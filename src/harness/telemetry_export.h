// Serialization of campaign telemetry to files.
//
// Two formats:
//   * JSONL event streams (WriteTelemetryJsonl): every campaign event of
//     every job, one JSON object per line, in canonical job order — followed
//     by one `job_summary` line per job carrying the wall/cpu timings. The
//     event lines are a pure function of the matrix config and seed, so the
//     file is byte-identical for any --jobs value once the job_summary lines
//     (the only wall-clock-dependent records) are filtered out.
//   * BENCH_*.json metrics summaries (WriteMetricsSummaryJson): a snapshot
//     of the global metrics registry plus matrix totals, machine-readable so
//     perf trajectories can be tracked across runs.

#ifndef SRC_HARNESS_TELEMETRY_EXPORT_H_
#define SRC_HARNESS_TELEMETRY_EXPORT_H_

#include <string>

#include "src/common/status.h"
#include "src/harness/runner.h"

namespace themis {

// Renders the full event stream (see file comment) without touching disk.
std::string RenderTelemetryJsonl(const MatrixResult& result);

// Writes RenderTelemetryJsonl(result) to `path`. Jobs must have been run
// with CampaignConfig::collect_telemetry=true for event lines to appear;
// job_summary lines are always written.
Status WriteTelemetryJsonl(const MatrixResult& result, const std::string& path);

// Writes a single JSON object summarizing the global metrics registry and
// the matrix roll-up. `bench_name` tags the producing binary/experiment
// (e.g. "table3_methods" for BENCH_table3_methods.json).
Status WriteMetricsSummaryJson(const std::string& bench_name,
                               const MatrixResult& result,
                               const std::string& path);

// Registry-only variant for contexts without a MatrixResult at hand (the
// bench binaries, which run experiments through the driver layer): matrix
// totals are still visible through the runner.* counters.
Status WriteMetricsSummaryJson(const std::string& bench_name, double wall_seconds,
                               const std::string& path);

// Deterministic campaign summary: one JSON document with a per-job record
// (strategy, flavor, seed, result counters and the CampaignResult digest)
// in ascending job-index order, plus matrix totals. Unlike the metrics
// summary above it contains NO wall-clock fields and reads NO global
// registry state, so the rendered bytes are identical for any --jobs count
// and across kill/resume cycles — the resume-determinism tests diff it
// byte-for-byte.
std::string RenderCampaignSummaryJson(const MatrixResult& result);
Status WriteCampaignSummaryJson(const MatrixResult& result, const std::string& path);

}  // namespace themis

#endif  // SRC_HARNESS_TELEMETRY_EXPORT_H_
