#include "src/harness/campaign.h"

#include <bit>
#include <filesystem>

#include "src/common/log.h"
#include "src/common/strings.h"
#include "src/core/fuzzer.h"
#include "src/core/generator.h"
#include "src/faults/env_fault.h"
#include "src/harness/snapshot.h"
#include "src/monitor/states_monitor.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace themis {

namespace {

uint64_t HashString(uint64_t h, const std::string& text) {
  h = HashCombine(h, text.size());
  for (char c : text) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

uint64_t HashDouble(uint64_t h, double value) {
  return HashCombine(h, std::bit_cast<uint64_t>(value));
}

// Share of generated ops drawn from the env-fault operator class when
// CampaignConfig::env_faults is on (DESIGN.md §14). High enough that every
// campaign exercises the fault schedule, low enough that request/config ops
// still dominate and the variance guidance has load to steer.
constexpr double kEnvFaultShare = 0.2;

}  // namespace

uint64_t CampaignResult::Digest() const {
  uint64_t h = Mix64(0x7e315d16e57ULL);
  h = HashString(h, strategy_name);
  h = HashCombine(h, static_cast<uint64_t>(flavor));
  h = HashCombine(h, static_cast<uint64_t>(testcases));
  h = HashCombine(h, total_ops);
  h = HashCombine(h, static_cast<uint64_t>(candidates));
  h = HashCombine(h, final_coverage);
  h = HashCombine(h, static_cast<uint64_t>(false_positives));
  for (const auto& [id, at] : distinct_failures) {
    h = HashString(h, id);
    h = HashCombine(h, static_cast<uint64_t>(at));
  }
  for (const auto& [at, hits] : coverage_timeline) {
    h = HashCombine(h, static_cast<uint64_t>(at));
    h = HashCombine(h, hits);
  }
  for (const auto& [id, stats] : trigger_stats) {
    h = HashString(h, id);
    h = HashCombine(h, stats.first);
    h = HashCombine(h, static_cast<uint64_t>(stats.second));
  }
  for (const FailureReport& report : reports) {
    h = HashCombine(h, static_cast<uint64_t>(report.dimension));
    h = HashDouble(h, report.ratio);
    h = HashCombine(h, static_cast<uint64_t>(report.confirmed_at));
    h = HashCombine(h, report.rebalance_hung ? 1u : 0u);
    h = HashString(h, report.testcase.ToString());
    for (const std::string& fault : report.active_faults) {
      h = HashString(h, fault);
    }
  }
  for (const CampaignEvent& event : telemetry) {
    h = HashCombine(h, static_cast<uint64_t>(event.kind));
    h = HashCombine(h, static_cast<uint64_t>(event.at));
    h = HashString(h, event.label);
    h = HashDouble(h, event.value);
    h = HashDouble(h, event.value2);
    h = HashCombine(h, event.count);
  }
  return h;
}

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kThemis:
      return "Themis";
    case StrategyKind::kThemisMinus:
      return "Themis-";
    case StrategyKind::kFixReq:
      return "Fix_req";
    case StrategyKind::kFixConf:
      return "Fix_conf";
    case StrategyKind::kAlternate:
      return "Alternate";
    case StrategyKind::kConcurrent:
      return "Concurrent";
  }
  return "?";
}

Status CampaignConfig::Validate() const {
  if (budget <= 0) {
    return Status::InvalidArgument("campaign budget must be positive");
  }
  if (storage_nodes <= 0) {
    return Status::InvalidArgument("campaign needs at least one storage node");
  }
  if (meta_nodes < 0) {
    return Status::InvalidArgument("meta node count cannot be negative");
  }
  if (threshold_t <= 0.0) {
    return Status::InvalidArgument("detector threshold t must be > 0");
  }
  if (coverage_sample_period <= 0) {
    return Status::InvalidArgument("coverage sample period must be positive");
  }
  if (initial_files < 0) {
    return Status::InvalidArgument("initial file population cannot be negative");
  }
  if (weights.computation < 0.0 || weights.network < 0.0 || weights.storage < 0.0 ||
      weights.computation + weights.network + weights.storage <= 0.0) {
    return Status::InvalidArgument(
        "variance weights must be non-negative and sum to a positive value");
  }
  if (checkpoint_dir.empty() &&
      (checkpoint_every_ops > 0 || resume || halt_after_checkpoints > 0)) {
    return Status::InvalidArgument(
        "checkpoint_every_ops/resume/halt_after_checkpoints require a "
        "checkpoint_dir");
  }
  if (checkpoint_keep < 1) {
    return Status::InvalidArgument("checkpoint_keep must be at least 1");
  }
  if (!(transition_weight >= 0.0) || transition_weight > 1e6) {
    return Status::InvalidArgument(
        "transition_weight must be finite and non-negative");
  }
  return Status::Ok();
}

Campaign::Campaign(CampaignConfig config) : config_(config) {}

std::vector<FaultSpec> Campaign::FaultsForConfig() const {
  std::vector<FaultSpec> faults;
  switch (config_.fault_set) {
    case FaultSet::kNewBugs:
      faults = NewBugsFor(config_.flavor);
      break;
    case FaultSet::kHistorical:
      faults = HistoricalFaultsFor(config_.flavor);
      break;
    case FaultSet::kNone:
      // Healthy system (false-positive studies): no bugs, env-gated or not.
      return {};
  }
  if (config_.env_faults) {
    // Env-gated bugs ride along only when the grammar can actually produce
    // their trigger operators; in a fault-free campaign they would be dead
    // weight in the trigger-evaluation loop.
    std::vector<FaultSpec> env_bugs = EnvFaultBugsFor(config_.flavor);
    faults.insert(faults.end(), env_bugs.begin(), env_bugs.end());
  }
  return faults;
}

Result<CampaignResult> Campaign::Run(std::string_view strategy_name) {
  THEMIS_SPAN(campaign_span, "campaign.run");
  if (Status status = config_.Validate(); !status.ok()) {
    return status;
  }

  CampaignResult result;
  result.strategy_name = std::string(strategy_name);
  result.flavor = config_.flavor;

  std::unique_ptr<DfsCluster> cluster = MakeCluster(
      config_.flavor, config_.seed, config_.storage_nodes, config_.meta_nodes);
  CoverageRecorder coverage(FlavorBranchSpace(config_.flavor), config_.seed);
  cluster->set_coverage(&coverage);
  // Balancer state-machine transition recorder (DESIGN.md §16). Always
  // attached: emission draws no RNG and the counters stay outside Digest(),
  // so recording is free of behavioral side effects; only a nonzero
  // transition_weight lets the counters feed back into seed energy.
  ModelCoverage model_coverage(config_.flavor);
  cluster->set_model_coverage(&model_coverage);

  // One event log per campaign, stamped with the campaign's virtual clock so
  // every event is deterministic; metrics are global and thread-striped.
  EventLog event_log;
  EventLog* telemetry = config_.collect_telemetry ? &event_log : nullptr;
  if (telemetry != nullptr) {
    telemetry->BindClock(&cluster->clock());
    cluster->set_telemetry(telemetry);
  }

  FaultInjector injector(FaultsForConfig(), config_.seed ^ 0xfa0175ULL);
  cluster->set_fault_hooks(&injector);

  // Constructed unconditionally so the mid-campaign snapshot layout does not
  // depend on the flag, but attached to the cluster only when env faults are
  // enabled: a detached injector draws no RNG and touches no cluster state,
  // keeping fault-free digests bit-identical to pre-fault-dimension builds.
  EnvFaultInjector env_injector(config_.seed ^ 0xe4fa17ULL);
  if (config_.env_faults) {
    cluster->set_env_faults(&env_injector);
  }

  Rng rng(config_.seed ^ 0x7e5715ULL);
  InputModel model;
  StatesMonitor monitor(config_.weights);
  DetectorConfig detector_config;
  detector_config.threshold = config_.threshold_t;
  ImbalanceDetector detector(detector_config);
  detector.set_telemetry(telemetry);
  TestCaseExecutor executor(*cluster, model, monitor, detector, &injector, &coverage,
                            rng, telemetry);
  executor.set_model_coverage(&model_coverage);
  StrategyOptions strategy_options;
  strategy_options.telemetry = telemetry;
  strategy_options.env_fault_share = config_.env_faults ? kEnvFaultShare : 0.0;
  strategy_options.transition_weight = config_.transition_weight;
  Result<std::unique_ptr<Strategy>> strategy =
      StrategyRegistry::Instance().Make(strategy_name, model, rng, strategy_options);
  if (!strategy.ok()) {
    return strategy.status();
  }

  GroundTruthTally tally;
  SimTime next_coverage_sample = 0;
  // Mid-campaign snapshot ordinal: continued across resumes so checkpoint
  // file names never collide with snapshots from an earlier incarnation.
  uint64_t checkpoints_written = 0;
  // halt_after_checkpoints counts only checkpoints written by THIS process.
  int checkpoints_this_process = 0;
  const bool checkpointing = !config_.checkpoint_dir.empty();

  // The complete mid-campaign state, in one fixed order. Everything else
  // that exists during a run is either derived (rebuilt inside the
  // components' RestoreState) or deliberately not snapshotted (DESIGN.md
  // §11): global metrics, trace spans, and the log stream carry wall-clock
  // values and never feed back into the campaign.
  auto save_mid_payload = [&]() {
    SnapshotWriter writer;
    WriteSnapshotIdentity(writer, result.strategy_name, config_);
    writer.U64(checkpoints_written);
    writer.I64(result.testcases);
    writer.I64(next_coverage_sample);
    writer.U64(result.reports.size());
    for (const FailureReport& report : result.reports) {
      SaveFailureReport(writer, report);
    }
    writer.U64(result.coverage_timeline.size());
    for (const auto& [at, hits] : result.coverage_timeline) {
      writer.I64(at);
      writer.U64(hits);
    }
    SaveGroundTruthTally(writer, tally);
    rng.SaveState(writer);
    cluster->SaveState(writer);
    coverage.SaveState(writer);
    model_coverage.SaveState(writer);
    model.SaveState(writer);
    monitor.SaveState(writer);
    detector.SaveState(writer);
    injector.SaveState(writer);
    env_injector.SaveState(writer);
    event_log.SaveState(writer);
    executor.SaveState(writer);
    (*strategy)->SaveState(writer);
    return writer.Take();
  };

  // Mirror of save_mid_payload (identity already consumed by the caller).
  // Every component's RestoreState clears before it populates, so a failed
  // attempt leaves the components ready for the next (older) candidate.
  auto restore_mid_payload = [&](SnapshotReader& reader) -> Status {
    checkpoints_written = reader.U64();
    result.testcases = static_cast<int>(reader.I64());
    next_coverage_sample = reader.I64();
    uint64_t report_count = reader.Count(32);
    result.reports.clear();
    result.reports.resize(report_count);
    for (uint64_t i = 0; i < report_count && reader.ok(); ++i) {
      RestoreFailureReport(reader, &result.reports[i]);
    }
    uint64_t timeline_count = reader.Count(16);
    result.coverage_timeline.clear();
    result.coverage_timeline.reserve(timeline_count);
    for (uint64_t i = 0; i < timeline_count && reader.ok(); ++i) {
      SimTime at = reader.I64();
      size_t hits = reader.U64();
      result.coverage_timeline.emplace_back(at, hits);
    }
    RestoreGroundTruthTally(reader, &tally);
    if (Status s = reader.status(); !s.ok()) return s;
    if (Status s = rng.RestoreState(reader); !s.ok()) return s;
    if (Status s = cluster->RestoreState(reader); !s.ok()) return s;
    if (Status s = coverage.RestoreState(reader); !s.ok()) return s;
    if (Status s = model_coverage.RestoreState(reader); !s.ok()) return s;
    if (Status s = model.RestoreState(reader); !s.ok()) return s;
    if (Status s = monitor.RestoreState(reader); !s.ok()) return s;
    if (Status s = detector.RestoreState(reader); !s.ok()) return s;
    if (Status s = injector.RestoreState(reader); !s.ok()) return s;
    if (Status s = env_injector.RestoreState(reader); !s.ok()) return s;
    if (Status s = event_log.RestoreState(reader); !s.ok()) return s;
    if (Status s = executor.RestoreState(reader); !s.ok()) return s;
    if (Status s = (*strategy)->RestoreState(reader); !s.ok()) return s;
    if (!reader.AtEnd()) {
      return Status::DataLoss(
          Sprintf("snapshot has %zu trailing bytes", reader.remaining()));
    }
    return Status::Ok();
  };

  bool resumed = false;
  if (config_.resume) {
    // Newest-first scan: the final snapshot, then mid-campaign snapshots by
    // descending ordinal. A corrupt or mismatched candidate is skipped with
    // a warning and the next older one is tried — losing the newest
    // checkpoint costs progress, never correctness.
    for (const std::string& path :
         ListJobSnapshotPaths(config_.checkpoint_dir, config_.job_index)) {
      Result<LoadedSnapshot> loaded = ReadSnapshotFile(path);
      if (!loaded.ok()) {
        THEMIS_LOG(kWarn, "resume: skipping %s: %s", path.c_str(),
                   loaded.status().message().c_str());
        continue;
      }
      SnapshotReader reader(loaded->payload);
      if (Status s = CheckSnapshotIdentity(reader, result.strategy_name, config_);
          !s.ok()) {
        THEMIS_LOG(kWarn, "resume: skipping %s: %s", path.c_str(),
                   s.message().c_str());
        continue;
      }
      if (loaded->kind == SnapshotKind::kFinal) {
        CampaignResult final_result;
        if (Status s = RestoreCampaignResult(reader, &final_result); !s.ok()) {
          THEMIS_LOG(kWarn, "resume: skipping %s: %s", path.c_str(),
                     s.message().c_str());
          continue;
        }
        THEMIS_LOG(kInfo, "resume: campaign already complete (%s)", path.c_str());
        return final_result;
      }
      if (Status s = restore_mid_payload(reader); !s.ok()) {
        THEMIS_LOG(kWarn, "resume: skipping %s: %s", path.c_str(),
                   s.message().c_str());
        continue;
      }
      THEMIS_LOG(kInfo, "resume: restored %s (%d testcases, %llu ops)",
                 path.c_str(), result.testcases,
                 static_cast<unsigned long long>(executor.total_ops()));
      resumed = true;
      break;
    }
  }

  if (!resumed) {
    // Initial data population (fresh campaigns only: a restored cluster
    // already contains the population the interrupted run seeded).
    OpSeqGenerator init_generator(model);
    executor.SeedInitialData(init_generator, config_.initial_files);
  }

  const std::filesystem::path checkpoint_dir(config_.checkpoint_dir);
  uint64_t next_checkpoint_ops =
      config_.checkpoint_every_ops > 0
          ? (executor.total_ops() / config_.checkpoint_every_ops + 1) *
                config_.checkpoint_every_ops
          : 0;

  while (cluster->Now() < config_.budget) {
    OpSeq testcase = (*strategy)->Next();
    ExecOutcome outcome = executor.Run(testcase);
    (*strategy)->OnOutcome(testcase, outcome);
    ++result.testcases;
    for (const FailureReport& report : outcome.failures) {
      if (!report.IsTruePositive() && GetLogLevel() >= LogLevel::kDebug) {
        for (const auto& [id, brick] : cluster->bricks()) {
          THEMIS_LOG(kDebug, "FP state: brick%u node%u online=%d used=%lluG cap=%lluG",
                     id, brick.node, brick.online ? 1 : 0,
                     static_cast<unsigned long long>(brick.used_bytes >> 30),
                     static_cast<unsigned long long>(brick.capacity_bytes >> 30));
        }
      }
      result.reports.push_back(report);
    }
    TallyReports(outcome.failures, tally);
    while (cluster->Now() >= next_coverage_sample) {
      result.coverage_timeline.emplace_back(next_coverage_sample, coverage.TotalHits());
      next_coverage_sample += config_.coverage_sample_period;
    }
    if (loop_observer_ != nullptr) {
      // Before the checkpoint block on purpose: anything the observer does
      // to the strategy (seed imports) lands in this boundary's snapshot,
      // so a resume never replays it.
      CampaignTick tick;
      tick.total_ops = executor.total_ops();
      tick.testcases = result.testcases;
      tick.coverage = coverage.TotalHits();
      tick.transition_coverage = model_coverage.TransitionsCovered();
      tick.now = cluster->Now();
      loop_observer_->OnTestcase(**strategy, outcome, tick);
    }
    if (checkpointing && config_.checkpoint_every_ops > 0 &&
        executor.total_ops() >= next_checkpoint_ops) {
      ++checkpoints_written;
      const std::string path =
          (checkpoint_dir /
           MidSnapshotFileName(config_.job_index, checkpoints_written))
              .string();
      if (Status s = WriteSnapshotFile(path, SnapshotKind::kMidCampaign,
                                       save_mid_payload());
          !s.ok()) {
        return s;
      }
      PruneMidSnapshots(config_.checkpoint_dir, config_.job_index,
                        config_.checkpoint_keep);
      THEMIS_COUNTER_INC("campaign.checkpoints", 1);
      next_checkpoint_ops =
          (executor.total_ops() / config_.checkpoint_every_ops + 1) *
          config_.checkpoint_every_ops;
      ++checkpoints_this_process;
      if (config_.halt_after_checkpoints > 0 &&
          checkpoints_this_process >= config_.halt_after_checkpoints) {
        return Status::FailedPrecondition(
            Sprintf("halted after %d checkpoints (crash-test hook); resume from %s",
                    checkpoints_this_process, path.c_str()));
      }
    }
  }

  for (const FaultRuntime& fault : injector.faults()) {
    result.trigger_stats[fault.spec.id] = {fault.satisfied_evals, fault.trigger_count};
  }
  result.distinct_failures = tally.distinct_failures;
  result.false_positives = tally.false_positive_reports;
  result.final_coverage = coverage.TotalHits();
  result.transition_coverage = model_coverage.TransitionsCovered();
  result.transition_pairs.clear();
  for (const auto& [from, to] : model_coverage.CoveredPairs()) {
    result.transition_pairs.emplace_back(static_cast<uint8_t>(from),
                                         static_cast<uint8_t>(to));
  }
  // Per-flavor transition gauge: lands in BENCH_*.json / --summary-json via
  // the registry dump. Summed across a matrix's jobs like every counter.
  MetricsRegistry::Global()
      .GetGauge(Sprintf("model_coverage.%s.transitions",
                        std::string(FlavorName(config_.flavor)).c_str()))
      .Add(static_cast<int64_t>(model_coverage.TransitionsCovered()));
  if (model_coverage.illegal_transitions() > 0) {
    THEMIS_LOG(kWarn, "campaign saw %llu illegal balancer transitions",
               static_cast<unsigned long long>(
                   model_coverage.illegal_transitions()));
  }
  result.total_ops = executor.total_ops();
  result.candidates = executor.candidates_raised();
  result.telemetry = event_log.TakeEvents();
  THEMIS_COUNTER_INC("campaign.runs", 1);
  THEMIS_COUNTER_INC("campaign.testcases", static_cast<uint64_t>(result.testcases));
  THEMIS_COUNTER_INC("campaign.ops", result.total_ops);
  THEMIS_COUNTER_INC("campaign.confirmed_failures",
                     static_cast<uint64_t>(result.reports.size()));
  THEMIS_LOG(kInfo,
             "campaign %s/%s: %d testcases, %llu ops, %d distinct failures, %d FPs, "
             "%zu branches",
             result.strategy_name.c_str(), std::string(FlavorName(config_.flavor)).c_str(),
             result.testcases, static_cast<unsigned long long>(result.total_ops),
             result.DistinctTruePositives(), result.false_positives,
             result.final_coverage);
  if (checkpointing) {
    // Final snapshot: the complete result, so a resume after completion
    // returns it instead of re-running 24 virtual hours.
    SnapshotWriter writer;
    WriteSnapshotIdentity(writer, result.strategy_name, config_);
    SaveCampaignResult(writer, result);
    const std::string path =
        (checkpoint_dir / FinalSnapshotFileName(config_.job_index)).string();
    if (Status s = WriteSnapshotFile(path, SnapshotKind::kFinal, writer.Take());
        !s.ok()) {
      return s;
    }
  }
  return result;
}

Result<CampaignResult> RunCampaign(std::string_view strategy_name, Flavor flavor,
                                   uint64_t seed, SimDuration budget,
                                   FaultSet fault_set) {
  CampaignConfig config;
  config.flavor = flavor;
  config.seed = seed;
  config.budget = budget;
  config.fault_set = fault_set;
  return Campaign(config).Run(strategy_name);
}

Result<CampaignResult> RunCampaign(StrategyKind kind, Flavor flavor, uint64_t seed,
                                   SimDuration budget, FaultSet fault_set) {
  return RunCampaign(StrategyKindName(kind), flavor, seed, budget, fault_set);
}

}  // namespace themis
