#include "src/harness/campaign.h"

#include <bit>

#include "src/common/log.h"
#include "src/core/fuzzer.h"
#include "src/core/generator.h"
#include "src/monitor/states_monitor.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace themis {

namespace {

uint64_t HashString(uint64_t h, const std::string& text) {
  h = HashCombine(h, text.size());
  for (char c : text) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

uint64_t HashDouble(uint64_t h, double value) {
  return HashCombine(h, std::bit_cast<uint64_t>(value));
}

}  // namespace

uint64_t CampaignResult::Digest() const {
  uint64_t h = Mix64(0x7e315d16e57ULL);
  h = HashString(h, strategy_name);
  h = HashCombine(h, static_cast<uint64_t>(flavor));
  h = HashCombine(h, static_cast<uint64_t>(testcases));
  h = HashCombine(h, total_ops);
  h = HashCombine(h, static_cast<uint64_t>(candidates));
  h = HashCombine(h, final_coverage);
  h = HashCombine(h, static_cast<uint64_t>(false_positives));
  for (const auto& [id, at] : distinct_failures) {
    h = HashString(h, id);
    h = HashCombine(h, static_cast<uint64_t>(at));
  }
  for (const auto& [at, hits] : coverage_timeline) {
    h = HashCombine(h, static_cast<uint64_t>(at));
    h = HashCombine(h, hits);
  }
  for (const auto& [id, stats] : trigger_stats) {
    h = HashString(h, id);
    h = HashCombine(h, stats.first);
    h = HashCombine(h, static_cast<uint64_t>(stats.second));
  }
  for (const FailureReport& report : reports) {
    h = HashCombine(h, static_cast<uint64_t>(report.dimension));
    h = HashDouble(h, report.ratio);
    h = HashCombine(h, static_cast<uint64_t>(report.confirmed_at));
    h = HashCombine(h, report.rebalance_hung ? 1u : 0u);
    h = HashString(h, report.testcase.ToString());
    for (const std::string& fault : report.active_faults) {
      h = HashString(h, fault);
    }
  }
  for (const CampaignEvent& event : telemetry) {
    h = HashCombine(h, static_cast<uint64_t>(event.kind));
    h = HashCombine(h, static_cast<uint64_t>(event.at));
    h = HashString(h, event.label);
    h = HashDouble(h, event.value);
    h = HashDouble(h, event.value2);
    h = HashCombine(h, event.count);
  }
  return h;
}

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kThemis:
      return "Themis";
    case StrategyKind::kThemisMinus:
      return "Themis-";
    case StrategyKind::kFixReq:
      return "Fix_req";
    case StrategyKind::kFixConf:
      return "Fix_conf";
    case StrategyKind::kAlternate:
      return "Alternate";
    case StrategyKind::kConcurrent:
      return "Concurrent";
  }
  return "?";
}

Status CampaignConfig::Validate() const {
  if (budget <= 0) {
    return Status::InvalidArgument("campaign budget must be positive");
  }
  if (storage_nodes <= 0) {
    return Status::InvalidArgument("campaign needs at least one storage node");
  }
  if (meta_nodes < 0) {
    return Status::InvalidArgument("meta node count cannot be negative");
  }
  if (threshold_t <= 0.0) {
    return Status::InvalidArgument("detector threshold t must be > 0");
  }
  if (coverage_sample_period <= 0) {
    return Status::InvalidArgument("coverage sample period must be positive");
  }
  if (initial_files < 0) {
    return Status::InvalidArgument("initial file population cannot be negative");
  }
  if (weights.computation < 0.0 || weights.network < 0.0 || weights.storage < 0.0 ||
      weights.computation + weights.network + weights.storage <= 0.0) {
    return Status::InvalidArgument(
        "variance weights must be non-negative and sum to a positive value");
  }
  return Status::Ok();
}

Campaign::Campaign(CampaignConfig config) : config_(config) {}

std::vector<FaultSpec> Campaign::FaultsForConfig() const {
  switch (config_.fault_set) {
    case FaultSet::kNewBugs:
      return NewBugsFor(config_.flavor);
    case FaultSet::kHistorical:
      return HistoricalFaultsFor(config_.flavor);
    case FaultSet::kNone:
      return {};
  }
  return {};
}

Result<CampaignResult> Campaign::Run(std::string_view strategy_name) {
  THEMIS_SPAN(campaign_span, "campaign.run");
  if (Status status = config_.Validate(); !status.ok()) {
    return status;
  }

  CampaignResult result;
  result.strategy_name = std::string(strategy_name);
  result.flavor = config_.flavor;

  std::unique_ptr<DfsCluster> cluster = MakeCluster(
      config_.flavor, config_.seed, config_.storage_nodes, config_.meta_nodes);
  CoverageRecorder coverage(FlavorBranchSpace(config_.flavor), config_.seed);
  cluster->set_coverage(&coverage);

  // One event log per campaign, stamped with the campaign's virtual clock so
  // every event is deterministic; metrics are global and thread-striped.
  EventLog event_log;
  EventLog* telemetry = config_.collect_telemetry ? &event_log : nullptr;
  if (telemetry != nullptr) {
    telemetry->BindClock(&cluster->clock());
    cluster->set_telemetry(telemetry);
  }

  FaultInjector injector(FaultsForConfig(), config_.seed ^ 0xfa0175ULL);
  cluster->set_fault_hooks(&injector);

  Rng rng(config_.seed ^ 0x7e5715ULL);
  InputModel model;
  StatesMonitor monitor(config_.weights);
  DetectorConfig detector_config;
  detector_config.threshold = config_.threshold_t;
  ImbalanceDetector detector(detector_config);
  detector.set_telemetry(telemetry);
  TestCaseExecutor executor(*cluster, model, monitor, detector, &injector, &coverage,
                            rng, telemetry);
  StrategyOptions strategy_options;
  strategy_options.telemetry = telemetry;
  Result<std::unique_ptr<Strategy>> strategy =
      StrategyRegistry::Instance().Make(strategy_name, model, rng, strategy_options);
  if (!strategy.ok()) {
    return strategy.status();
  }

  // Initial data population.
  OpSeqGenerator init_generator(model);
  executor.SeedInitialData(init_generator, config_.initial_files);

  GroundTruthTally tally;
  SimTime next_coverage_sample = 0;
  while (cluster->Now() < config_.budget) {
    OpSeq testcase = (*strategy)->Next();
    ExecOutcome outcome = executor.Run(testcase);
    (*strategy)->OnOutcome(testcase, outcome);
    ++result.testcases;
    for (const FailureReport& report : outcome.failures) {
      if (!report.IsTruePositive() && GetLogLevel() >= LogLevel::kDebug) {
        for (const auto& [id, brick] : cluster->bricks()) {
          THEMIS_LOG(kDebug, "FP state: brick%u node%u online=%d used=%lluG cap=%lluG",
                     id, brick.node, brick.online ? 1 : 0,
                     static_cast<unsigned long long>(brick.used_bytes >> 30),
                     static_cast<unsigned long long>(brick.capacity_bytes >> 30));
        }
      }
      result.reports.push_back(report);
    }
    TallyReports(outcome.failures, tally);
    while (cluster->Now() >= next_coverage_sample) {
      result.coverage_timeline.emplace_back(next_coverage_sample, coverage.TotalHits());
      next_coverage_sample += config_.coverage_sample_period;
    }
  }

  for (const FaultRuntime& fault : injector.faults()) {
    result.trigger_stats[fault.spec.id] = {fault.satisfied_evals, fault.trigger_count};
  }
  result.distinct_failures = tally.distinct_failures;
  result.false_positives = tally.false_positive_reports;
  result.final_coverage = coverage.TotalHits();
  result.total_ops = executor.total_ops();
  result.candidates = executor.candidates_raised();
  result.telemetry = event_log.TakeEvents();
  THEMIS_COUNTER_INC("campaign.runs", 1);
  THEMIS_COUNTER_INC("campaign.testcases", static_cast<uint64_t>(result.testcases));
  THEMIS_COUNTER_INC("campaign.ops", result.total_ops);
  THEMIS_COUNTER_INC("campaign.confirmed_failures",
                     static_cast<uint64_t>(result.reports.size()));
  THEMIS_LOG(kInfo,
             "campaign %s/%s: %d testcases, %llu ops, %d distinct failures, %d FPs, "
             "%zu branches",
             result.strategy_name.c_str(), std::string(FlavorName(config_.flavor)).c_str(),
             result.testcases, static_cast<unsigned long long>(result.total_ops),
             result.DistinctTruePositives(), result.false_positives,
             result.final_coverage);
  return result;
}

Result<CampaignResult> RunCampaign(std::string_view strategy_name, Flavor flavor,
                                   uint64_t seed, SimDuration budget,
                                   FaultSet fault_set) {
  CampaignConfig config;
  config.flavor = flavor;
  config.seed = seed;
  config.budget = budget;
  config.fault_set = fault_set;
  return Campaign(config).Run(strategy_name);
}

Result<CampaignResult> RunCampaign(StrategyKind kind, Flavor flavor, uint64_t seed,
                                   SimDuration budget, FaultSet fault_set) {
  return RunCampaign(StrategyKindName(kind), flavor, seed, budget, fault_set);
}

}  // namespace themis
