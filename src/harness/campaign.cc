#include "src/harness/campaign.h"

#include "src/baselines/alternate.h"
#include "src/baselines/concurrent.h"
#include "src/baselines/fix_conf.h"
#include "src/baselines/fix_req.h"
#include "src/baselines/themis_minus.h"
#include "src/common/log.h"

namespace themis {

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kThemis:
      return "Themis";
    case StrategyKind::kThemisMinus:
      return "Themis-";
    case StrategyKind::kFixReq:
      return "Fix_req";
    case StrategyKind::kFixConf:
      return "Fix_conf";
    case StrategyKind::kAlternate:
      return "Alternate";
    case StrategyKind::kConcurrent:
      return "Concurrent";
  }
  return "?";
}

Campaign::Campaign(CampaignConfig config) : config_(config) {}

std::vector<FaultSpec> Campaign::FaultsForConfig() const {
  switch (config_.fault_set) {
    case FaultSet::kNewBugs:
      return NewBugsFor(config_.flavor);
    case FaultSet::kHistorical:
      return HistoricalFaultsFor(config_.flavor);
    case FaultSet::kNone:
      return {};
  }
  return {};
}

std::unique_ptr<Strategy> Campaign::MakeStrategy(StrategyKind kind, InputModel& model,
                                                 Rng& rng, bool variance_guidance) {
  switch (kind) {
    case StrategyKind::kThemis: {
      FuzzerConfig fuzzer_config;
      fuzzer_config.variance_guidance = variance_guidance;
      return std::make_unique<ThemisFuzzer>(model, rng, fuzzer_config);
    }
    case StrategyKind::kThemisMinus:
      return std::make_unique<ThemisMinusStrategy>(model, rng);
    case StrategyKind::kFixReq:
      return std::make_unique<FixReqStrategy>(model, rng);
    case StrategyKind::kFixConf:
      return std::make_unique<FixConfStrategy>(model, rng);
    case StrategyKind::kAlternate:
      return std::make_unique<AlternateStrategy>(model, rng);
    case StrategyKind::kConcurrent:
      return std::make_unique<ConcurrentStrategy>(model, rng);
  }
  return nullptr;
}

CampaignResult Campaign::Run(StrategyKind kind) {
  CampaignResult result;
  result.strategy_name = StrategyKindName(kind);
  result.flavor = config_.flavor;

  std::unique_ptr<DfsCluster> cluster = MakeCluster(
      config_.flavor, config_.seed, config_.storage_nodes, config_.meta_nodes);
  CoverageRecorder coverage(FlavorBranchSpace(config_.flavor), config_.seed);
  cluster->set_coverage(&coverage);

  FaultInjector injector(FaultsForConfig(), config_.seed ^ 0xfa0175ULL);
  cluster->set_fault_hooks(&injector);

  Rng rng(config_.seed ^ 0x7e5715ULL);
  InputModel model;
  StatesMonitor monitor(config_.weights);
  DetectorConfig detector_config;
  detector_config.threshold = config_.threshold_t;
  ImbalanceDetector detector(detector_config);
  TestCaseExecutor executor(*cluster, model, monitor, detector, &injector, &coverage,
                            rng);
  std::unique_ptr<Strategy> strategy =
      MakeStrategy(kind, model, rng, /*variance_guidance=*/true);

  // Initial data population.
  OpSeqGenerator init_generator(model);
  executor.SeedInitialData(init_generator, config_.initial_files);

  GroundTruthTally tally;
  SimTime next_coverage_sample = 0;
  while (cluster->Now() < config_.budget) {
    OpSeq testcase = strategy->Next();
    ExecOutcome outcome = executor.Run(testcase);
    strategy->OnOutcome(testcase, outcome);
    ++result.testcases;
    for (const FailureReport& report : outcome.failures) {
      if (!report.IsTruePositive() && GetLogLevel() >= LogLevel::kDebug) {
        for (const auto& [id, brick] : cluster->bricks()) {
          THEMIS_LOG(kDebug, "FP state: brick%u node%u online=%d used=%lluG cap=%lluG",
                     id, brick.node, brick.online ? 1 : 0,
                     static_cast<unsigned long long>(brick.used_bytes >> 30),
                     static_cast<unsigned long long>(brick.capacity_bytes >> 30));
        }
      }
      result.reports.push_back(report);
    }
    TallyReports(outcome.failures, tally);
    while (cluster->Now() >= next_coverage_sample) {
      result.coverage_timeline.emplace_back(next_coverage_sample, coverage.TotalHits());
      next_coverage_sample += config_.coverage_sample_period;
    }
  }

  for (const FaultRuntime& fault : injector.faults()) {
    result.trigger_stats[fault.spec.id] = {fault.satisfied_evals, fault.trigger_count};
  }
  result.distinct_failures = tally.distinct_failures;
  result.false_positives = tally.false_positive_reports;
  result.final_coverage = coverage.TotalHits();
  result.total_ops = executor.total_ops();
  result.candidates = executor.candidates_raised();
  THEMIS_LOG(kInfo,
             "campaign %s/%s: %d testcases, %llu ops, %d distinct failures, %d FPs, "
             "%zu branches",
             result.strategy_name.c_str(), std::string(FlavorName(config_.flavor)).c_str(),
             result.testcases, static_cast<unsigned long long>(result.total_ops),
             result.DistinctTruePositives(), result.false_positives,
             result.final_coverage);
  return result;
}

CampaignResult RunCampaign(StrategyKind kind, Flavor flavor, uint64_t seed,
                           SimDuration budget, FaultSet fault_set) {
  CampaignConfig config;
  config.flavor = flavor;
  config.seed = seed;
  config.budget = budget;
  config.fault_set = fault_set;
  Campaign campaign(config);
  return campaign.Run(kind);
}

}  // namespace themis
