// Experiment drivers: one function per table / figure in the paper's
// evaluation (see DESIGN.md's per-experiment index). The bench binaries in
// bench/ call these and render the results; integration tests run them at
// reduced budgets.
//
// Aggregation: the paper states "all the experiments were conducted multiple
// times with the same environment setups". Each driver therefore runs
// `seeds` repeated campaigns per (tool, flavor) and a failure counts as
// found if any repetition confirmed it — applied uniformly to every tool.
//
// Every driver expands its grid into a CampaignMatrix and executes it on the
// parallel CampaignRunner (`budget.jobs` worker threads). Job seeds derive
// from per-driver RNG streams of `base_seed`, so results are identical
// across thread counts and job orderings.

#ifndef SRC_HARNESS_EXPERIMENTS_H_
#define SRC_HARNESS_EXPERIMENTS_H_

#include <array>
#include <map>
#include <string>
#include <vector>

#include "src/harness/campaign.h"
#include "src/harness/runner.h"

namespace themis {

inline constexpr std::array<Flavor, 4> kAllFlavors = {
    Flavor::kHdfs, Flavor::kCeph, Flavor::kGluster, Flavor::kLeo};

inline constexpr std::array<StrategyKind, 5> kComparedStrategies = {
    StrategyKind::kThemis, StrategyKind::kFixReq, StrategyKind::kFixConf,
    StrategyKind::kAlternate, StrategyKind::kConcurrent};

struct ExperimentBudget {
  SimDuration campaign = Hours(24);
  int seeds = 3;          // repeated campaigns per (tool, flavor)
  uint64_t base_seed = 1234;
  int jobs = 1;           // CampaignRunner worker threads
  // When non-empty, the driver's matrix writes its campaign event stream
  // here as JSONL (see RunnerOptions::telemetry_out).
  std::string telemetry_out;
};

// The registry names of the shim enum's strategies, for building matrices.
std::vector<std::string> StrategyNames(const std::vector<StrategyKind>& kinds);

// ---- Table 2 / Table 3: new imbalance failures ----
struct NewBugFindings {
  // strategy -> set of new-bug ids found (union over repetitions).
  std::map<StrategyKind, std::map<std::string, SimTime>> found;
  // strategy -> total false positives across all campaigns.
  std::map<StrategyKind, int> false_positives;
};

NewBugFindings RunNewBugExperiment(const std::vector<StrategyKind>& strategies,
                                   const ExperimentBudget& budget);

// ---- Table 4: historical failures reproduced ----
struct HistoricalFindings {
  // strategy -> flavor -> ids found.
  std::map<StrategyKind, std::map<Flavor, std::vector<std::string>>> found;
};

HistoricalFindings RunHistoricalExperiment(const std::vector<StrategyKind>& strategies,
                                           const ExperimentBudget& budget);

// ---- Table 5 / Figure 12: branch coverage ----
struct CoverageResults {
  // strategy -> flavor -> final branch count (averaged over seeds).
  std::map<StrategyKind, std::map<Flavor, size_t>> final_coverage;
  // strategy -> flavor -> balancer transition pairs covered (DESIGN.md §16,
  // averaged over seeds).
  std::map<StrategyKind, std::map<Flavor, size_t>> transition_coverage;
  // strategy -> flavor -> (minute, branches) timeline from the first seed.
  std::map<StrategyKind, std::map<Flavor, std::vector<std::pair<SimTime, size_t>>>>
      timelines;
};

CoverageResults RunCoverageExperiment(const std::vector<StrategyKind>& strategies,
                                      const ExperimentBudget& budget);

// ---- Table 6: Themis vs Themis⁻ ablation ----
struct AblationResults {
  std::map<Flavor, int> failures_minus;
  std::map<Flavor, int> failures_full;
  std::map<Flavor, size_t> coverage_minus;
  std::map<Flavor, size_t> coverage_full;
};

AblationResults RunAblationExperiment(const ExperimentBudget& budget);

// ---- Table 7: threshold t sweep ----
struct ThresholdSweepRow {
  double threshold = 0.25;
  int false_positives = 0;
  int true_positives = 0;  // distinct new bugs found across the 4 flavors
};

std::vector<ThresholdSweepRow> RunThresholdSweep(const std::vector<double>& thresholds,
                                                 const ExperimentBudget& budget);

// ---- Table 8: storage-variance weight sweep ----
struct WeightSweepRow {
  double storage_weight = 1.0 / 3.0;
  // Mean first-trigger time (virtual minutes) over storage-type new bugs
  // that were found; -1 when none were found.
  double mean_trigger_minutes = -1.0;
  int storage_bugs_found = 0;
};

std::vector<WeightSweepRow> RunWeightSweep(const std::vector<double>& storage_weights,
                                           const ExperimentBudget& budget);

// ---- Figure 2: per-node storage trace while reproducing failure #1 ----
struct AccumulationTrace {
  // One series per storage node: (virtual minute, used fraction).
  std::map<NodeId, std::vector<std::pair<double, double>>> node_series;
  // (virtual minute, max spread) line, mirroring the figure's line chart.
  std::vector<std::pair<double, double>> max_variance_series;
  bool failure_confirmed = false;
  SimTime confirmed_at = 0;
};

AccumulationTrace RunAccumulationTrace(uint64_t seed, SimDuration budget);

}  // namespace themis

#endif  // SRC_HARNESS_EXPERIMENTS_H_
