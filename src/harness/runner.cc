#include "src/harness/runner.h"

#include <chrono>
#include <ctime>

#include "src/common/log.h"
#include "src/harness/telemetry_export.h"
#include "src/harness/thread_pool.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace themis {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// CPU time consumed by the calling thread; 0 where the clock is unsupported.
double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

void FoldInto(MatrixRollup& rollup, const JobResult& job_result, size_t job_index,
              size_t& timeline_index) {
  ++rollup.jobs;
  rollup.job_seconds.Add(job_result.wall_seconds);
  if (!job_result.status.ok()) {
    ++rollup.failed_jobs;
    return;
  }
  const CampaignResult& r = job_result.result;
  for (const auto& [id, at] : r.distinct_failures) {
    auto [it, inserted] = rollup.distinct_failures.emplace(id, at);
    if (!inserted && at < it->second) {
      it->second = at;
    }
  }
  rollup.false_positives += r.false_positives;
  rollup.total_ops += r.total_ops;
  rollup.final_coverage.Add(static_cast<double>(r.final_coverage));
  if (rollup.coverage_timeline.empty() || job_index < timeline_index) {
    rollup.coverage_timeline = r.coverage_timeline;
    timeline_index = job_index;
  }
}

}  // namespace

double MatrixRollup::MeanTriggerMinutes() const {
  if (distinct_failures.empty()) {
    return -1.0;
  }
  double total = 0.0;
  for (const auto& [id, at] : distinct_failures) {
    (void)id;
    total += ToMinutes(at);
  }
  return total / static_cast<double>(distinct_failures.size());
}

CampaignRunner::CampaignRunner(RunnerOptions options) : options_(options) {}

std::vector<CampaignJob> CampaignRunner::Expand(const CampaignMatrix& matrix) {
  std::vector<double> thresholds = matrix.thresholds;
  if (thresholds.empty()) {
    thresholds.push_back(matrix.base.threshold_t);
  }
  std::vector<LoadVarianceWeights> weight_sets = matrix.weight_sets;
  if (weight_sets.empty()) {
    weight_sets.push_back(matrix.base.weights);
  }

  std::vector<CampaignJob> jobs;
  jobs.reserve(matrix.strategies.size() * matrix.flavors.size() * thresholds.size() *
               weight_sets.size() * static_cast<size_t>(std::max(matrix.seeds, 0)));
  size_t index = 0;
  for (const std::string& strategy : matrix.strategies) {
    for (Flavor flavor : matrix.flavors) {
      for (double threshold : thresholds) {
        for (const LoadVarianceWeights& weights : weight_sets) {
          for (int rep = 0; rep < matrix.seeds; ++rep) {
            CampaignJob job;
            job.index = index;
            job.strategy = strategy;
            job.repetition = rep;
            job.config = matrix.base;
            job.config.flavor = flavor;
            job.config.threshold_t = threshold;
            job.config.weights = weights;
            job.config.seed = Rng::SplitSeed(matrix.matrix_seed, job.index);
            jobs.push_back(std::move(job));
            ++index;
          }
        }
      }
    }
  }
  return jobs;
}

MatrixResult CampaignRunner::Run(const CampaignMatrix& matrix) {
  return RunJobs(Expand(matrix));
}

MatrixResult CampaignRunner::RunJobs(const std::vector<CampaignJob>& jobs) {
  THEMIS_SPAN(matrix_span, "runner.matrix");
  auto matrix_start = std::chrono::steady_clock::now();

  MatrixResult matrix_result;
  matrix_result.jobs.resize(jobs.size());

  const bool want_telemetry = !options_.telemetry_out.empty();
  ConcurrentRunningStat job_seconds;
  {
    ThreadPool pool(options_.jobs);
    matrix_result.threads = pool.thread_count();
    for (size_t i = 0; i < jobs.size(); ++i) {
      // Each worker writes only its own pre-sized slot, so the results
      // vector needs no lock; the pool join is the synchronization point.
      JobResult* slot = &matrix_result.jobs[i];
      const CampaignJob* job = &jobs[i];
      pool.Submit([this, slot, job, want_telemetry, &job_seconds] {
        auto job_start = std::chrono::steady_clock::now();
        double cpu_start = ThreadCpuSeconds();
        slot->job = *job;
        if (want_telemetry) {
          // Event recording never draws from the RNG, so flipping this on
          // cannot change the campaign result.
          slot->job.config.collect_telemetry = true;
        }
        slot->job.config.job_index = job->index;
        if (!options_.checkpoint_dir.empty() &&
            slot->job.config.checkpoint_dir.empty()) {
          // Snapshot writing never draws from the RNG either; per-job names
          // keep concurrent jobs from clobbering each other's files.
          slot->job.config.checkpoint_dir = options_.checkpoint_dir;
          slot->job.config.checkpoint_every_ops = options_.checkpoint_every_ops;
          slot->job.config.resume = options_.resume;
        }
        Campaign campaign(slot->job.config);
        campaign.set_loop_observer(options_.loop_observer);
        Result<CampaignResult> run = campaign.Run(slot->job.strategy);
        if (run.ok()) {
          slot->result = run.take();
        } else {
          slot->status = run.status();
          THEMIS_LOG(kWarn, "matrix job %zu (%s) failed: %s", job->index,
                     job->strategy.c_str(), slot->status.ToString().c_str());
        }
        slot->cpu_seconds = ThreadCpuSeconds() - cpu_start;
        slot->wall_seconds = SecondsSince(job_start);
        THEMIS_COUNTER_INC("runner.jobs", 1);
        THEMIS_HISTOGRAM_RECORD("runner.job_wall_us", slot->wall_seconds * 1e6);
        THEMIS_HISTOGRAM_RECORD("runner.job_cpu_us", slot->cpu_seconds * 1e6);
        job_seconds.Add(slot->wall_seconds);
      });
    }
    pool.Shutdown();  // drains every queued job
    matrix_result.stolen_jobs = pool.tasks_stolen();
  }

  // Single-threaded aggregation pass in canonical job order.
  size_t overall_timeline_index = jobs.size();
  std::map<std::string, size_t> strategy_timeline_index;
  for (const JobResult& job_result : matrix_result.jobs) {
    MatrixRollup& per_strategy = matrix_result.by_strategy[job_result.job.strategy];
    auto [it, inserted] =
        strategy_timeline_index.emplace(job_result.job.strategy, jobs.size());
    (void)inserted;
    FoldInto(per_strategy, job_result, job_result.job.index, it->second);
    FoldInto(matrix_result.overall, job_result, job_result.job.index,
             overall_timeline_index);
  }
  matrix_result.overall.job_seconds = job_seconds.Snapshot();
  matrix_result.wall_seconds = SecondsSince(matrix_start);
  if (want_telemetry) {
    Status write = WriteTelemetryJsonl(matrix_result, options_.telemetry_out);
    if (!write.ok()) {
      THEMIS_LOG(kWarn, "telemetry export failed: %s", write.ToString().c_str());
    } else {
      THEMIS_LOG(kInfo, "telemetry: wrote %s", options_.telemetry_out.c_str());
    }
  }
  if (!options_.summary_json.empty()) {
    Status write = WriteCampaignSummaryJson(matrix_result, options_.summary_json);
    if (!write.ok()) {
      THEMIS_LOG(kWarn, "summary export failed: %s", write.ToString().c_str());
    } else {
      THEMIS_LOG(kInfo, "summary: wrote %s", options_.summary_json.c_str());
    }
  }
  THEMIS_LOG(kInfo,
             "matrix: %zu jobs on %d threads in %.2fs (%llu stolen, %d failed)",
             jobs.size(), matrix_result.threads, matrix_result.wall_seconds,
             static_cast<unsigned long long>(matrix_result.stolen_jobs),
             matrix_result.FailedJobs());
  return matrix_result;
}

}  // namespace themis
