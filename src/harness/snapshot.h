// Campaign snapshot format & file management (DESIGN.md §11).
//
// A snapshot file is:
//
//   offset  size  field
//   0       8     magic "THMSNP01"
//   8       4     format version (u32 LE, currently 7 — see DESIGN.md §12;
//                 v3 added the cluster's rate-window bases and the model's
//                 dense previous-window counters (DESIGN.md §13); v4 added
//                 the environment-fault dimension: the env_faults identity
//                 flag, the cluster's balancer crash/resume flags and the
//                 EnvFaultInjector record, DESIGN.md §14; v5 added the
//                 GeoFS flavor state; v6 added the balancer state-machine
//                 coverage record, the transition_weight identity field,
//                 the result's transition_coverage and bandit arm tables
//                 inside the strategy record, DESIGN.md §16; v7 added the
//                 fleet corpus-exchange state: seed fingerprints + the
//                 seen-fingerprint dedup set in the pool record and the
//                 result's covered transition-pair list, DESIGN.md §17)
//   12      1     kind (0 = mid-campaign, 1 = final)
//   13      8     payload size in bytes (u64 LE)
//   21      8     FNV-1a 64 checksum of the payload (u64 LE)
//   29      ...   payload (SnapshotWriter encoding)
//
// Files are written atomically (temp file + rename), so a crash mid-write
// can only leave a stray ".tmp" file, never a half-written ".ckpt". Readers
// validate magic, version, size and checksum before any field is parsed;
// every corruption mode maps to a descriptive kDataLoss Status.
//
// Mid-campaign payloads begin with an identity fingerprint (strategy +
// the behavior-affecting campaign config fields) so resuming under a
// different configuration is rejected with a field-level error instead of
// silently producing a diverging run.

#ifndef SRC_HARNESS_SNAPSHOT_H_
#define SRC_HARNESS_SNAPSHOT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/snapshot_io.h"
#include "src/common/status.h"
#include "src/harness/campaign.h"
#include "src/harness/ground_truth.h"

namespace themis {

inline constexpr uint32_t kSnapshotFormatVersion = 7;

enum class SnapshotKind : uint8_t {
  kMidCampaign = 0,  // loop state; resuming continues the campaign
  kFinal = 1,        // a complete CampaignResult; resuming returns it as-is
};

struct LoadedSnapshot {
  SnapshotKind kind = SnapshotKind::kMidCampaign;
  std::string payload;
};

// Encodes header + payload and writes it atomically (tmp + rename).
Status WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                         const std::string& payload);

// Reads and validates one snapshot file (magic/version/size/checksum).
Result<LoadedSnapshot> ReadSnapshotFile(const std::string& path);

// Snapshot file names for one campaign job. Mid-campaign snapshots carry a
// monotonically increasing ordinal (continued across resumes); the final
// snapshot has a fixed name.
std::string MidSnapshotFileName(size_t job_index, uint64_t ordinal);
std::string FinalSnapshotFileName(size_t job_index);

// All snapshot paths for `job_index` in `dir`, most-preferred first: the
// final snapshot (if present), then mid-campaign snapshots by descending
// ordinal. Missing or unreadable directories yield an empty list.
std::vector<std::string> ListJobSnapshotPaths(const std::string& dir,
                                              size_t job_index);

// Removes mid-campaign snapshots of `job_index` beyond the newest `keep`.
void PruneMidSnapshots(const std::string& dir, size_t job_index, int keep);

// Identity fingerprint at the head of every payload: the strategy name and
// each behavior-affecting CampaignConfig field. Check fails with a
// field-level message when the resuming campaign's configuration differs.
void WriteSnapshotIdentity(SnapshotWriter& writer, std::string_view strategy,
                           const CampaignConfig& config);
Status CheckSnapshotIdentity(SnapshotReader& reader, std::string_view strategy,
                             const CampaignConfig& config);

// Value-type serializers used by both snapshot kinds and by tests.
void SaveFailureReport(SnapshotWriter& writer, const FailureReport& report);
void RestoreFailureReport(SnapshotReader& reader, FailureReport* report);
void SaveGroundTruthTally(SnapshotWriter& writer, const GroundTruthTally& tally);
void RestoreGroundTruthTally(SnapshotReader& reader, GroundTruthTally* tally);
void SaveCampaignResult(SnapshotWriter& writer, const CampaignResult& result);
Status RestoreCampaignResult(SnapshotReader& reader, CampaignResult* result);

}  // namespace themis

#endif  // SRC_HARNESS_SNAPSHOT_H_
