#include "src/harness/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "src/common/strings.h"
#include "src/core/opseq.h"
#include "src/dfs/types.h"
#include "src/telemetry/event_log.h"

namespace themis {

namespace {

constexpr char kSnapshotMagic[8] = {'T', 'H', 'M', 'S', 'N', 'P', '0', '1'};
constexpr size_t kHeaderBytes = 8 + 4 + 1 + 8 + 8;

std::string JobPrefix(size_t job_index) {
  return Sprintf("job-%zu-", job_index);
}

// Parses the ordinal out of "job-<i>-<ordinal>.ckpt"; false for the final
// snapshot and anything else.
bool ParseMidOrdinal(const std::string& filename, size_t job_index,
                     uint64_t* ordinal) {
  const std::string prefix = JobPrefix(job_index);
  const std::string suffix = ".ckpt";
  if (filename.size() <= prefix.size() + suffix.size()) return false;
  if (filename.compare(0, prefix.size(), prefix) != 0) return false;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  std::string middle =
      filename.substr(prefix.size(), filename.size() - prefix.size() - suffix.size());
  if (middle.empty() || middle == "final") return false;
  uint64_t value = 0;
  for (char c : middle) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *ordinal = value;
  return true;
}

}  // namespace

std::string MidSnapshotFileName(size_t job_index, uint64_t ordinal) {
  return Sprintf("job-%zu-%llu.ckpt", job_index,
                 static_cast<unsigned long long>(ordinal));
}

std::string FinalSnapshotFileName(size_t job_index) {
  return Sprintf("job-%zu-final.ckpt", job_index);
}

Status WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                         const std::string& payload) {
  SnapshotWriter header;
  for (char c : kSnapshotMagic) header.U8(static_cast<uint8_t>(c));
  header.U32(kSnapshotFormatVersion);
  header.U8(static_cast<uint8_t>(kind));
  header.U64(payload.size());
  header.U64(Fnv1a64(payload));

  std::error_code ec;
  std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
    // An existing directory is fine; only a genuine failure matters, and
    // that surfaces below when the temp file cannot be opened.
  }
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal(
          Sprintf("cannot open snapshot temp file %s", tmp_path.c_str()));
    }
    out.write(header.buffer().data(),
              static_cast<std::streamsize>(header.buffer().size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      return Status::Internal(
          Sprintf("short write to snapshot temp file %s", tmp_path.c_str()));
    }
  }
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    return Status::Internal(Sprintf("cannot rename %s to %s: %s", tmp_path.c_str(),
                                    path.c_str(), ec.message().c_str()));
  }
  return Status::Ok();
}

Result<LoadedSnapshot> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(Sprintf("snapshot %s cannot be opened", path.c_str()));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < kHeaderBytes) {
    return Status::DataLoss(
        Sprintf("snapshot %s truncated: %zu bytes, header needs %zu", path.c_str(),
                bytes.size(), kHeaderBytes));
  }
  SnapshotReader header(std::string_view(bytes).substr(0, kHeaderBytes));
  char magic[8];
  for (char& c : magic) c = static_cast<char>(header.U8());
  if (!std::equal(std::begin(magic), std::end(magic), std::begin(kSnapshotMagic))) {
    return Status::DataLoss(
        Sprintf("snapshot %s has bad magic (not a Themis snapshot)", path.c_str()));
  }
  uint32_t version = header.U32();
  if (version != kSnapshotFormatVersion) {
    return Status::DataLoss(
        Sprintf("snapshot %s has unsupported format version %u (this build reads %u)",
                path.c_str(), version, kSnapshotFormatVersion));
  }
  uint8_t kind_raw = header.U8();
  if (kind_raw > static_cast<uint8_t>(SnapshotKind::kFinal)) {
    return Status::DataLoss(
        Sprintf("snapshot %s has unknown kind %u", path.c_str(), kind_raw));
  }
  uint64_t payload_size = header.U64();
  uint64_t checksum = header.U64();
  if (bytes.size() - kHeaderBytes != payload_size) {
    return Status::DataLoss(Sprintf(
        "snapshot %s payload size mismatch: header says %llu bytes, file has %zu",
        path.c_str(), static_cast<unsigned long long>(payload_size),
        bytes.size() - kHeaderBytes));
  }
  std::string_view payload = std::string_view(bytes).substr(kHeaderBytes);
  uint64_t actual = Fnv1a64(payload);
  if (actual != checksum) {
    return Status::DataLoss(Sprintf(
        "snapshot %s checksum mismatch: header %016llx, payload %016llx (corrupt)",
        path.c_str(), static_cast<unsigned long long>(checksum),
        static_cast<unsigned long long>(actual)));
  }
  LoadedSnapshot loaded;
  loaded.kind = static_cast<SnapshotKind>(kind_raw);
  loaded.payload = std::string(payload);
  return loaded;
}

std::vector<std::string> ListJobSnapshotPaths(const std::string& dir,
                                              size_t job_index) {
  std::vector<std::string> paths;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return paths;

  std::string final_path;
  std::vector<std::pair<uint64_t, std::string>> mids;
  const std::string final_name = FinalSnapshotFileName(job_index);
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name == final_name) {
      final_path = entry.path().string();
      continue;
    }
    uint64_t ordinal = 0;
    if (ParseMidOrdinal(name, job_index, &ordinal)) {
      mids.emplace_back(ordinal, entry.path().string());
    }
  }
  std::sort(mids.begin(), mids.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (!final_path.empty()) paths.push_back(final_path);
  for (auto& [ordinal, path] : mids) paths.push_back(std::move(path));
  return paths;
}

void PruneMidSnapshots(const std::string& dir, size_t job_index, int keep) {
  if (keep < 0) keep = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return;
  std::vector<std::pair<uint64_t, std::string>> mids;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    uint64_t ordinal = 0;
    if (ParseMidOrdinal(entry.path().filename().string(), job_index, &ordinal)) {
      mids.emplace_back(ordinal, entry.path().string());
    }
  }
  std::sort(mids.begin(), mids.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t i = static_cast<size_t>(keep); i < mids.size(); ++i) {
    std::filesystem::remove(mids[i].second, ec);
  }
}

void WriteSnapshotIdentity(SnapshotWriter& writer, std::string_view strategy,
                           const CampaignConfig& config) {
  writer.Str(strategy);
  writer.U8(static_cast<uint8_t>(config.flavor));
  writer.U64(config.seed);
  writer.I64(config.budget);
  writer.F64(config.threshold_t);
  writer.F64(config.weights.computation);
  writer.F64(config.weights.network);
  writer.F64(config.weights.storage);
  writer.U8(static_cast<uint8_t>(config.fault_set));
  writer.I64(config.initial_files);
  writer.I64(config.coverage_sample_period);
  writer.I64(config.storage_nodes);
  writer.I64(config.meta_nodes);
  writer.Bool(config.env_faults);
  writer.Bool(config.collect_telemetry);
  writer.F64(config.transition_weight);
}

namespace {

// Per-field identity checks with messages naming the field and both values.
Status IdentityMismatch(const char* field, const std::string& saved,
                        const std::string& current) {
  return Status::FailedPrecondition(
      Sprintf("snapshot was taken by a different campaign: %s was %s, resuming "
              "campaign has %s",
              field, saved.c_str(), current.c_str()));
}

}  // namespace

Status CheckSnapshotIdentity(SnapshotReader& reader, std::string_view strategy,
                             const CampaignConfig& config) {
  std::string saved_strategy = reader.Str();
  uint8_t saved_flavor = reader.U8();
  uint64_t saved_seed = reader.U64();
  int64_t saved_budget = reader.I64();
  double saved_threshold = reader.F64();
  double saved_w_comp = reader.F64();
  double saved_w_net = reader.F64();
  double saved_w_sto = reader.F64();
  uint8_t saved_fault_set = reader.U8();
  int64_t saved_initial_files = reader.I64();
  int64_t saved_sample_period = reader.I64();
  int64_t saved_storage_nodes = reader.I64();
  int64_t saved_meta_nodes = reader.I64();
  bool saved_env_faults = reader.Bool();
  bool saved_telemetry = reader.Bool();
  double saved_transition_weight = reader.F64();
  if (Status status = reader.status(); !status.ok()) return status;

  if (saved_strategy != strategy) {
    return IdentityMismatch("strategy", saved_strategy, std::string(strategy));
  }
  if (saved_flavor != static_cast<uint8_t>(config.flavor)) {
    return IdentityMismatch(
        "flavor", Sprintf("%u", saved_flavor),
        std::string(FlavorName(config.flavor)));
  }
  if (saved_seed != config.seed) {
    return IdentityMismatch("seed",
                            Sprintf("%llu", static_cast<unsigned long long>(saved_seed)),
                            Sprintf("%llu", static_cast<unsigned long long>(config.seed)));
  }
  if (saved_budget != config.budget) {
    return IdentityMismatch(
        "budget", Sprintf("%lld", static_cast<long long>(saved_budget)),
        Sprintf("%lld", static_cast<long long>(config.budget)));
  }
  if (saved_threshold != config.threshold_t) {
    return IdentityMismatch("threshold_t", Sprintf("%g", saved_threshold),
                            Sprintf("%g", config.threshold_t));
  }
  if (saved_w_comp != config.weights.computation ||
      saved_w_net != config.weights.network ||
      saved_w_sto != config.weights.storage) {
    return IdentityMismatch(
        "variance weights",
        Sprintf("(%g, %g, %g)", saved_w_comp, saved_w_net, saved_w_sto),
        Sprintf("(%g, %g, %g)", config.weights.computation, config.weights.network,
                config.weights.storage));
  }
  if (saved_fault_set != static_cast<uint8_t>(config.fault_set)) {
    return IdentityMismatch("fault_set", Sprintf("%u", saved_fault_set),
                            Sprintf("%u", static_cast<unsigned>(config.fault_set)));
  }
  if (saved_initial_files != config.initial_files) {
    return IdentityMismatch(
        "initial_files", Sprintf("%lld", static_cast<long long>(saved_initial_files)),
        Sprintf("%d", config.initial_files));
  }
  if (saved_sample_period != config.coverage_sample_period) {
    return IdentityMismatch(
        "coverage_sample_period",
        Sprintf("%lld", static_cast<long long>(saved_sample_period)),
        Sprintf("%lld", static_cast<long long>(config.coverage_sample_period)));
  }
  if (saved_storage_nodes != config.storage_nodes) {
    return IdentityMismatch(
        "storage_nodes", Sprintf("%lld", static_cast<long long>(saved_storage_nodes)),
        Sprintf("%d", config.storage_nodes));
  }
  if (saved_meta_nodes != config.meta_nodes) {
    return IdentityMismatch(
        "meta_nodes", Sprintf("%lld", static_cast<long long>(saved_meta_nodes)),
        Sprintf("%d", config.meta_nodes));
  }
  if (saved_env_faults != config.env_faults) {
    return IdentityMismatch("env_faults", saved_env_faults ? "true" : "false",
                            config.env_faults ? "true" : "false");
  }
  if (saved_telemetry != config.collect_telemetry) {
    return IdentityMismatch("collect_telemetry", saved_telemetry ? "true" : "false",
                            config.collect_telemetry ? "true" : "false");
  }
  if (saved_transition_weight != config.transition_weight) {
    return IdentityMismatch("transition_weight",
                            Sprintf("%g", saved_transition_weight),
                            Sprintf("%g", config.transition_weight));
  }
  return Status::Ok();
}

void SaveFailureReport(SnapshotWriter& writer, const FailureReport& report) {
  writer.U8(static_cast<uint8_t>(report.dimension));
  writer.F64(report.ratio);
  writer.I64(report.confirmed_at);
  SaveOpSeq(writer, report.testcase);
  writer.U64(report.active_faults.size());
  for (const std::string& fault : report.active_faults) writer.Str(fault);
  writer.Bool(report.rebalance_hung);
  writer.Str(report.detail);
}

void RestoreFailureReport(SnapshotReader& reader, FailureReport* report) {
  uint8_t dimension = reader.U8();
  if (dimension > static_cast<uint8_t>(ImbalanceDimension::kCrashRecovery)) {
    reader.Fail(Sprintf("failure report has unknown imbalance dimension %u",
                        dimension));
    return;
  }
  report->dimension = static_cast<ImbalanceDimension>(dimension);
  report->ratio = reader.F64();
  report->confirmed_at = reader.I64();
  RestoreOpSeq(reader, &report->testcase);
  uint64_t fault_count = reader.Count(8);
  report->active_faults.clear();
  report->active_faults.reserve(fault_count);
  for (uint64_t i = 0; i < fault_count && reader.ok(); ++i) {
    report->active_faults.push_back(reader.Str());
  }
  report->rebalance_hung = reader.Bool();
  report->detail = reader.Str();
}

void SaveGroundTruthTally(SnapshotWriter& writer, const GroundTruthTally& tally) {
  writer.U64(tally.distinct_failures.size());
  for (const auto& [id, at] : tally.distinct_failures) {
    writer.Str(id);
    writer.I64(at);
  }
  writer.I64(tally.true_positive_reports);
  writer.I64(tally.false_positive_reports);
}

void RestoreGroundTruthTally(SnapshotReader& reader, GroundTruthTally* tally) {
  uint64_t count = reader.Count(16);
  tally->distinct_failures.clear();
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    std::string id = reader.Str();
    SimTime at = reader.I64();
    tally->distinct_failures[std::move(id)] = at;
  }
  tally->true_positive_reports = static_cast<int>(reader.I64());
  tally->false_positive_reports = static_cast<int>(reader.I64());
}

void SaveCampaignResult(SnapshotWriter& writer, const CampaignResult& result) {
  writer.Str(result.strategy_name);
  writer.U8(static_cast<uint8_t>(result.flavor));
  writer.U64(result.reports.size());
  for (const FailureReport& report : result.reports) {
    SaveFailureReport(writer, report);
  }
  writer.U64(result.distinct_failures.size());
  for (const auto& [id, at] : result.distinct_failures) {
    writer.Str(id);
    writer.I64(at);
  }
  writer.I64(result.false_positives);
  writer.U64(result.final_coverage);
  writer.U64(result.transition_coverage);
  writer.U64(result.transition_pairs.size());
  for (const auto& [from, to] : result.transition_pairs) {
    writer.U8(from);
    writer.U8(to);
  }
  writer.U64(result.coverage_timeline.size());
  for (const auto& [at, hits] : result.coverage_timeline) {
    writer.I64(at);
    writer.U64(hits);
  }
  writer.U64(result.total_ops);
  writer.I64(result.testcases);
  writer.I64(result.candidates);
  writer.U64(result.trigger_stats.size());
  for (const auto& [id, stats] : result.trigger_stats) {
    writer.Str(id);
    writer.U64(stats.first);
    writer.I64(stats.second);
  }
  writer.U64(result.telemetry.size());
  for (const CampaignEvent& event : result.telemetry) {
    SaveCampaignEvent(writer, event);
  }
}

Status RestoreCampaignResult(SnapshotReader& reader, CampaignResult* result) {
  result->strategy_name = reader.Str();
  uint8_t flavor = reader.U8();
  if (flavor > static_cast<uint8_t>(Flavor::kGeo)) {
    reader.Fail(Sprintf("campaign result has unknown flavor %u", flavor));
    return reader.status();
  }
  result->flavor = static_cast<Flavor>(flavor);
  uint64_t report_count = reader.Count(32);
  result->reports.clear();
  result->reports.resize(report_count);
  for (uint64_t i = 0; i < report_count && reader.ok(); ++i) {
    RestoreFailureReport(reader, &result->reports[i]);
  }
  uint64_t distinct_count = reader.Count(16);
  result->distinct_failures.clear();
  for (uint64_t i = 0; i < distinct_count && reader.ok(); ++i) {
    std::string id = reader.Str();
    SimTime at = reader.I64();
    result->distinct_failures[std::move(id)] = at;
  }
  result->false_positives = static_cast<int>(reader.I64());
  result->final_coverage = reader.U64();
  result->transition_coverage = reader.U64();
  uint64_t pair_count = reader.Count(2);
  if (reader.ok() && pair_count != result->transition_coverage) {
    reader.Fail("campaign result transition pair list disagrees with count");
    return reader.status();
  }
  result->transition_pairs.clear();
  result->transition_pairs.reserve(pair_count);
  for (uint64_t i = 0; i < pair_count && reader.ok(); ++i) {
    uint8_t from = reader.U8();
    uint8_t to = reader.U8();
    result->transition_pairs.emplace_back(from, to);
  }
  uint64_t timeline_count = reader.Count(16);
  result->coverage_timeline.clear();
  result->coverage_timeline.reserve(timeline_count);
  for (uint64_t i = 0; i < timeline_count && reader.ok(); ++i) {
    SimTime at = reader.I64();
    size_t hits = reader.U64();
    result->coverage_timeline.emplace_back(at, hits);
  }
  result->total_ops = reader.U64();
  result->testcases = static_cast<int>(reader.I64());
  result->candidates = static_cast<int>(reader.I64());
  uint64_t trigger_count = reader.Count(24);
  result->trigger_stats.clear();
  for (uint64_t i = 0; i < trigger_count && reader.ok(); ++i) {
    std::string id = reader.Str();
    uint64_t satisfied = reader.U64();
    int triggers = static_cast<int>(reader.I64());
    result->trigger_stats[std::move(id)] = {satisfied, triggers};
  }
  uint64_t event_count = reader.Count(32);
  result->telemetry.clear();
  result->telemetry.resize(event_count);
  for (uint64_t i = 0; i < event_count && reader.ok(); ++i) {
    RestoreCampaignEvent(reader, &result->telemetry[i]);
  }
  return reader.status();
}

}  // namespace themis
