// The parallel campaign engine.
//
// A CampaignMatrix declares the evaluation grid — flavors x strategies x
// repeated seeds x optional threshold / variance-weight sweep axes — exactly
// the shape of the paper's Tables 3-8. CampaignRunner::Expand turns the
// matrix into independent CampaignJobs; Run executes them on a work-stealing
// thread pool.
//
// Determinism guarantee: job `i` of the canonical expansion order draws its
// campaign seed from Rng::SplitSeed(matrix_seed, i), and every job builds its
// own cluster, strategy, detector stack and RNG stream. Results are therefore
// bit-identical regardless of --jobs count, scheduling order, or the order
// the job vector is handed to RunJobs in (the stream index travels with the
// job, not with its position).

#ifndef SRC_HARNESS_RUNNER_H_
#define SRC_HARNESS_RUNNER_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/campaign.h"

namespace themis {

// Declarative description of a campaign grid. Axes left empty fall back to
// the corresponding `base` field, so a plain single-campaign matrix is just
// {flavors={f}, strategies={"Themis"}}.
struct CampaignMatrix {
  std::vector<Flavor> flavors = {Flavor::kGluster};
  std::vector<std::string> strategies = {"Themis"};
  int seeds = 1;                 // repetitions per grid point
  uint64_t matrix_seed = 1234;   // root of every job's RNG stream

  // Per-campaign defaults (budget, fault set, node counts, ...). The seed
  // field of `base` is ignored: job seeds always derive from matrix_seed.
  CampaignConfig base;

  // Sweep axes; empty means "base value only".
  std::vector<double> thresholds;                // Table 7
  std::vector<LoadVarianceWeights> weight_sets;  // Table 8
};

// One fully-resolved cell of the expanded matrix.
struct CampaignJob {
  size_t index = 0;        // canonical expansion index; names the RNG stream
  std::string strategy;    // registry name
  int repetition = 0;      // seed repetition within the grid point
  CampaignConfig config;   // resolved config, seed already derived
};

// Outcome of one job. `result` is meaningful only when `status.ok()`:
// validation failures and unknown strategies are reported here per job
// without aborting the rest of the matrix.
struct JobResult {
  CampaignJob job;
  Status status;
  CampaignResult result;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;  // thread CPU time of the executing worker
};

// Per-strategy (and overall) roll-up across jobs, enough to print the
// evaluation tables in one pass over a MatrixResult.
struct MatrixRollup {
  int jobs = 0;
  int failed_jobs = 0;
  // Root-cause id -> earliest confirmation across the rolled-up jobs.
  std::map<std::string, SimTime> distinct_failures;
  int false_positives = 0;
  uint64_t total_ops = 0;
  // Coverage timeline of the lowest-index rolled-up job (the "first seed").
  std::vector<std::pair<SimTime, size_t>> coverage_timeline;
  RunningStat final_coverage;  // across successful jobs
  RunningStat job_seconds;     // wall-clock per job

  int DistinctTruePositives() const {
    return static_cast<int>(distinct_failures.size());
  }
  // Mean first-confirmation time over the distinct failures, in virtual
  // minutes; -1 when none were found.
  double MeanTriggerMinutes() const;
};

struct MatrixResult {
  // One entry per job, in the order the jobs were passed to RunJobs (for
  // Run(matrix): canonical expansion order).
  std::vector<JobResult> jobs;
  std::map<std::string, MatrixRollup> by_strategy;
  MatrixRollup overall;
  double wall_seconds = 0.0;
  int threads = 1;
  uint64_t stolen_jobs = 0;  // pool-level work-stealing count

  int FailedJobs() const { return overall.failed_jobs; }
};

struct RunnerOptions {
  int jobs = 1;  // worker threads; campaigns run jobs-wide in parallel
  // When non-empty, every job runs with collect_telemetry enabled and the
  // full event stream plus per-job job_summary records are written here as
  // JSONL after the matrix completes (see telemetry_export.h). The event
  // lines are byte-identical for any `jobs` value.
  std::string telemetry_out;
  // Checkpointing (DESIGN.md §11): when non-empty, every job snapshots into
  // this directory under its own job-<index>-*.ckpt names, writing a
  // mid-campaign snapshot every checkpoint_every_ops executed operations
  // (0 = final snapshot only) and resuming from the newest valid snapshot
  // when `resume` is set. Applied on top of each job's own config; a job
  // whose config already carries checkpoint settings keeps them.
  std::string checkpoint_dir;
  uint64_t checkpoint_every_ops = 0;
  bool resume = false;
  // When non-empty, the deterministic campaign summary (per-job digests and
  // result counters, no wall-clock fields — see RenderCampaignSummaryJson)
  // is written here after the matrix completes.
  std::string summary_json;
  // Fleet hook (DESIGN.md §17): attached to every campaign via
  // Campaign::set_loop_observer. Not owned; must outlive the runner call.
  // With jobs > 1 the same observer is invoked from several pool threads
  // concurrently, so it must be thread-safe in that configuration (the
  // fleet worker always runs jobs = 1).
  CampaignLoopObserver* loop_observer = nullptr;
};

class CampaignRunner {
 public:
  using Options = RunnerOptions;

  explicit CampaignRunner(RunnerOptions options = RunnerOptions());

  // Expands the matrix into jobs in canonical order: strategy-major, then
  // flavor, threshold, weight set, repetition. Each job's campaign seed is
  // Rng::SplitSeed(matrix.matrix_seed, job.index).
  static std::vector<CampaignJob> Expand(const CampaignMatrix& matrix);

  MatrixResult Run(const CampaignMatrix& matrix);

  // Runs an explicit job list (already expanded, possibly filtered or
  // permuted). Per-job results land at the same position as the job.
  MatrixResult RunJobs(const std::vector<CampaignJob>& jobs);

 private:
  RunnerOptions options_;
};

}  // namespace themis

#endif  // SRC_HARNESS_RUNNER_H_
