#include "src/harness/telemetry_export.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/common/strings.h"
#include "src/dfs/types.h"
#include "src/telemetry/event_log.h"
#include "src/telemetry/metrics.h"

namespace themis {

namespace {

std::string JobSummaryJson(const JobResult& job_result) {
  const CampaignJob& job = job_result.job;
  std::string status =
      job_result.status.ok() ? "ok" : JsonEscape(job_result.status.ToString());
  std::string out = Sprintf(
      "{\"job\":%llu,\"event\":\"job_summary\",\"strategy\":\"%s\","
      "\"flavor\":\"%s\",\"repetition\":%d,\"status\":\"%s\"",
      static_cast<unsigned long long>(job.index), JsonEscape(job.strategy).c_str(),
      std::string(FlavorName(job.config.flavor)).c_str(), job.repetition,
      status.c_str());
  if (job_result.status.ok()) {
    const CampaignResult& r = job_result.result;
    out += Sprintf(
        ",\"testcases\":%d,\"total_ops\":%llu,\"candidates\":%d,"
        "\"distinct_failures\":%d,\"false_positives\":%d,"
        "\"final_coverage\":%zu,\"events\":%zu",
        r.testcases, static_cast<unsigned long long>(r.total_ops), r.candidates,
        r.DistinctTruePositives(), r.false_positives, r.final_coverage,
        r.telemetry.size());
  }
  out += Sprintf(",\"wall_seconds\":%.6f,\"cpu_seconds\":%.6f}",
                 job_result.wall_seconds, job_result.cpu_seconds);
  return out;
}

// Canonical order: ascending job index, independent of the order the job
// vector was handed to RunJobs in.
std::vector<const JobResult*> SortedJobs(const MatrixResult& result) {
  std::vector<const JobResult*> jobs;
  jobs.reserve(result.jobs.size());
  for (const JobResult& job_result : result.jobs) {
    jobs.push_back(&job_result);
  }
  std::sort(jobs.begin(), jobs.end(), [](const JobResult* a, const JobResult* b) {
    return a->job.index < b->job.index;
  });
  return jobs;
}

Status WriteWholeFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Unavailable(Sprintf("cannot open %s for writing", path.c_str()));
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), file);
  int close_rc = std::fclose(file);
  if (written != content.size() || close_rc != 0) {
    return Status::Unavailable(Sprintf("short write to %s", path.c_str()));
  }
  return Status::Ok();
}

std::string HistogramJson(const HistogramSnapshot& snapshot) {
  std::string out = Sprintf(
      "{\"count\":%llu,\"sum\":%.17g,\"mean\":%.6g,\"p50\":%.6g,\"p90\":%.6g,"
      "\"p99\":%.6g,\"buckets\":[",
      static_cast<unsigned long long>(snapshot.count), snapshot.sum,
      snapshot.mean(), snapshot.Quantile(0.5), snapshot.Quantile(0.9),
      snapshot.Quantile(0.99));
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    out += Sprintf("%s%llu", i == 0 ? "" : ",",
                   static_cast<unsigned long long>(snapshot.buckets[i]));
  }
  out += "]}";
  return out;
}

}  // namespace

std::string RenderTelemetryJsonl(const MatrixResult& result) {
  std::vector<const JobResult*> jobs = SortedJobs(result);
  std::string out;
  // Deterministic event lines first, then the wall-clock job_summary block,
  // so a determinism comparison can just drop the file's tail.
  for (const JobResult* job_result : jobs) {
    for (const CampaignEvent& event : job_result->result.telemetry) {
      out += event.ToJson(static_cast<int64_t>(job_result->job.index));
      out += '\n';
    }
  }
  for (const JobResult* job_result : jobs) {
    out += JobSummaryJson(*job_result);
    out += '\n';
  }
  return out;
}

Status WriteTelemetryJsonl(const MatrixResult& result, const std::string& path) {
  return WriteWholeFile(path, RenderTelemetryJsonl(result));
}

namespace {

// The counters/gauges/histograms tail shared by both summary variants;
// `head` must already open the object and end with ",\n".
Status WriteSummaryWithHead(std::string out, const std::string& path) {
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += Sprintf("%s\n    \"%s\": %llu", first ? "" : ",",
                   JsonEscape(name).c_str(), static_cast<unsigned long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += Sprintf("%s\n    \"%s\": %lld", first ? "" : ",",
                   JsonEscape(name).c_str(), static_cast<long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : snapshot.histograms) {
    out += Sprintf("%s\n    \"%s\": %s", first ? "" : ",",
                   JsonEscape(name).c_str(), HistogramJson(histogram).c_str());
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return WriteWholeFile(path, out);
}

}  // namespace

Status WriteMetricsSummaryJson(const std::string& bench_name,
                               const MatrixResult& result,
                               const std::string& path) {
  std::string head = Sprintf(
      "{\n  \"bench\": \"%s\",\n  \"jobs\": %zu,\n  \"failed_jobs\": %d,\n"
      "  \"threads\": %d,\n  \"wall_seconds\": %.6f,\n  \"total_ops\": %llu,\n"
      "  \"distinct_failures\": %d,\n  \"false_positives\": %d,\n",
      JsonEscape(bench_name).c_str(), result.jobs.size(), result.FailedJobs(),
      result.threads, result.wall_seconds,
      static_cast<unsigned long long>(result.overall.total_ops),
      result.overall.DistinctTruePositives(), result.overall.false_positives);
  return WriteSummaryWithHead(std::move(head), path);
}

Status WriteMetricsSummaryJson(const std::string& bench_name, double wall_seconds,
                               const std::string& path) {
  std::string head = Sprintf("{\n  \"bench\": \"%s\",\n  \"wall_seconds\": %.6f,\n",
                             JsonEscape(bench_name).c_str(), wall_seconds);
  return WriteSummaryWithHead(std::move(head), path);
}

std::string RenderCampaignSummaryJson(const MatrixResult& result) {
  std::vector<const JobResult*> jobs = SortedJobs(result);
  std::string out = "{\n  \"jobs\": [";
  bool first_job = true;
  for (const JobResult* job_result : jobs) {
    const CampaignJob& job = job_result->job;
    out += Sprintf("%s\n    {\"job\":%llu,\"strategy\":\"%s\",\"flavor\":\"%s\","
                   "\"repetition\":%d,\"seed\":%llu",
                   first_job ? "" : ",", static_cast<unsigned long long>(job.index),
                   JsonEscape(job.strategy).c_str(),
                   std::string(FlavorName(job.config.flavor)).c_str(),
                   job.repetition, static_cast<unsigned long long>(job.config.seed));
    first_job = false;
    if (!job_result->status.ok()) {
      out += Sprintf(",\"status\":\"%s\"}",
                     JsonEscape(job_result->status.ToString()).c_str());
      continue;
    }
    const CampaignResult& r = job_result->result;
    out += Sprintf(
        ",\"status\":\"ok\",\"digest\":\"%016llx\",\"testcases\":%d,"
        "\"total_ops\":%llu,\"candidates\":%d,\"false_positives\":%d,"
        "\"final_coverage\":%zu,\"transition_coverage\":%zu,"
        "\"telemetry_events\":%zu,\"distinct_failures\":{",
        static_cast<unsigned long long>(r.Digest()), r.testcases,
        static_cast<unsigned long long>(r.total_ops), r.candidates,
        r.false_positives, r.final_coverage, r.transition_coverage,
        r.telemetry.size());
    bool first_failure = true;
    for (const auto& [id, at] : r.distinct_failures) {
      out += Sprintf("%s\"%s\":%lld", first_failure ? "" : ",",
                     JsonEscape(id).c_str(), static_cast<long long>(at));
      first_failure = false;
    }
    out += "}}";
  }
  int failed = 0;
  uint64_t total_ops = 0;
  for (const JobResult* job_result : jobs) {
    if (!job_result->status.ok()) {
      ++failed;
    } else {
      total_ops += job_result->result.total_ops;
    }
  }
  out += Sprintf("\n  ],\n  \"job_count\": %zu,\n  \"failed_jobs\": %d,\n"
                 "  \"total_ops\": %llu\n}\n",
                 jobs.size(), failed, static_cast<unsigned long long>(total_ops));
  return out;
}

Status WriteCampaignSummaryJson(const MatrixResult& result, const std::string& path) {
  return WriteWholeFile(path, RenderCampaignSummaryJson(result));
}

}  // namespace themis
