#include "src/harness/ground_truth.h"

namespace themis {

void TallyReports(const std::vector<FailureReport>& reports, GroundTruthTally& tally) {
  for (const FailureReport& report : reports) {
    if (!report.IsTruePositive()) {
      ++tally.false_positive_reports;
      continue;
    }
    ++tally.true_positive_reports;
    // De-duplicate by root cause; keep the earliest confirmation.
    for (const std::string& fault_id : report.active_faults) {
      auto [it, inserted] = tally.distinct_failures.emplace(fault_id, report.confirmed_at);
      if (!inserted && report.confirmed_at < it->second) {
        it->second = report.confirmed_at;
      }
    }
  }
}

}  // namespace themis
