#include "src/harness/report.h"

#include <cstdio>

#include "src/common/strings.h"

namespace themis {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(widths[c], ' ');
      line += " " + cell + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void TextTable::Print() const { std::fputs(Render().c_str(), stdout); }

std::string Percent(int part, int whole) {
  if (whole == 0) {
    return "0%";
  }
  return Sprintf("%.0f%%", 100.0 * static_cast<double>(part) / static_cast<double>(whole));
}

}  // namespace themis
