#include "src/harness/experiments.h"

#include <algorithm>

#include "src/core/executor.h"
#include "src/core/fuzzer.h"
#include "src/core/generator.h"
#include "src/faults/fault_registry.h"
#include "src/monitor/states_monitor.h"

namespace themis {

namespace {

// Per-driver salts: each experiment family owns its own stream of the base
// seed, so drivers never share campaign RNG streams no matter how the grids
// overlap (the order-dependence bug the old ad-hoc SeedFor scheme had).
enum class DriverSalt : uint64_t {
  kNewBugs = 1,
  kHistorical = 2,
  kCoverage = 3,
  kAblation = 4,
  kThreshold = 5,
  kWeights = 6,
};

uint64_t DriverSeed(const ExperimentBudget& budget, DriverSalt salt) {
  return Rng::SplitSeed(budget.base_seed, static_cast<uint64_t>(salt));
}

CampaignMatrix BaseMatrix(const ExperimentBudget& budget, DriverSalt salt,
                          const std::vector<StrategyKind>& strategies) {
  CampaignMatrix matrix;
  matrix.flavors.assign(kAllFlavors.begin(), kAllFlavors.end());
  matrix.strategies = StrategyNames(strategies);
  matrix.seeds = budget.seeds;
  matrix.matrix_seed = DriverSeed(budget, salt);
  matrix.base.budget = budget.campaign;
  matrix.base.fault_set = FaultSet::kNewBugs;
  return matrix;
}

StrategyKind KindFromName(const std::string& name) {
  for (StrategyKind kind :
       {StrategyKind::kThemis, StrategyKind::kThemisMinus, StrategyKind::kFixReq,
        StrategyKind::kFixConf, StrategyKind::kAlternate, StrategyKind::kConcurrent}) {
    if (name == StrategyKindName(kind)) {
      return kind;
    }
  }
  return StrategyKind::kThemis;
}

MatrixResult RunMatrix(const CampaignMatrix& matrix, const ExperimentBudget& budget) {
  RunnerOptions options;
  options.jobs = budget.jobs;
  options.telemetry_out = budget.telemetry_out;
  return CampaignRunner(options).Run(matrix);
}

}  // namespace

std::vector<std::string> StrategyNames(const std::vector<StrategyKind>& kinds) {
  std::vector<std::string> names;
  names.reserve(kinds.size());
  for (StrategyKind kind : kinds) {
    names.emplace_back(StrategyKindName(kind));
  }
  return names;
}

NewBugFindings RunNewBugExperiment(const std::vector<StrategyKind>& strategies,
                                   const ExperimentBudget& budget) {
  CampaignMatrix matrix = BaseMatrix(budget, DriverSalt::kNewBugs, strategies);
  MatrixResult result = RunMatrix(matrix, budget);

  NewBugFindings findings;
  for (StrategyKind kind : strategies) {
    const MatrixRollup& rollup = result.by_strategy[StrategyKindName(kind)];
    findings.found[kind] = rollup.distinct_failures;
    findings.false_positives[kind] = rollup.false_positives;
  }
  return findings;
}

HistoricalFindings RunHistoricalExperiment(const std::vector<StrategyKind>& strategies,
                                           const ExperimentBudget& budget) {
  CampaignMatrix matrix = BaseMatrix(budget, DriverSalt::kHistorical, strategies);
  matrix.base.fault_set = FaultSet::kHistorical;
  MatrixResult result = RunMatrix(matrix, budget);

  HistoricalFindings findings;
  // Union per (strategy, flavor); the ids come out sorted because they are
  // accumulated through an ordered map.
  std::map<StrategyKind, std::map<Flavor, std::map<std::string, bool>>> found;
  for (const JobResult& job : result.jobs) {
    if (!job.status.ok()) {
      continue;
    }
    StrategyKind kind = KindFromName(job.job.strategy);
    for (const auto& [id, at] : job.result.distinct_failures) {
      (void)at;
      found[kind][job.job.config.flavor][id] = true;
    }
  }
  for (StrategyKind kind : strategies) {
    for (Flavor flavor : kAllFlavors) {
      std::vector<std::string>& ids = findings.found[kind][flavor];
      for (const auto& [id, seen] : found[kind][flavor]) {
        (void)seen;
        ids.push_back(id);
      }
    }
  }
  return findings;
}

CoverageResults RunCoverageExperiment(const std::vector<StrategyKind>& strategies,
                                      const ExperimentBudget& budget) {
  CampaignMatrix matrix = BaseMatrix(budget, DriverSalt::kCoverage, strategies);
  MatrixResult result = RunMatrix(matrix, budget);

  CoverageResults results;
  std::map<StrategyKind, std::map<Flavor, size_t>> totals;
  std::map<StrategyKind, std::map<Flavor, size_t>> transition_totals;
  for (const JobResult& job : result.jobs) {
    if (!job.status.ok()) {
      continue;
    }
    StrategyKind kind = KindFromName(job.job.strategy);
    Flavor flavor = job.job.config.flavor;
    totals[kind][flavor] += job.result.final_coverage;
    transition_totals[kind][flavor] += job.result.transition_coverage;
    if (job.job.repetition == 0) {
      results.timelines[kind][flavor] = job.result.coverage_timeline;
    }
  }
  for (StrategyKind kind : strategies) {
    for (Flavor flavor : kAllFlavors) {
      size_t seeds = static_cast<size_t>(std::max(budget.seeds, 1));
      results.final_coverage[kind][flavor] = totals[kind][flavor] / seeds;
      results.transition_coverage[kind][flavor] =
          transition_totals[kind][flavor] / seeds;
    }
  }
  return results;
}

AblationResults RunAblationExperiment(const ExperimentBudget& budget) {
  CampaignMatrix matrix =
      BaseMatrix(budget, DriverSalt::kAblation,
                 {StrategyKind::kThemisMinus, StrategyKind::kThemis});
  MatrixResult result = RunMatrix(matrix, budget);

  AblationResults results;
  std::map<StrategyKind, std::map<Flavor, std::map<std::string, bool>>> found;
  std::map<StrategyKind, std::map<Flavor, size_t>> coverage_totals;
  for (const JobResult& job : result.jobs) {
    if (!job.status.ok()) {
      continue;
    }
    StrategyKind kind = KindFromName(job.job.strategy);
    Flavor flavor = job.job.config.flavor;
    coverage_totals[kind][flavor] += job.result.final_coverage;
    for (const auto& [id, at] : job.result.distinct_failures) {
      (void)at;
      found[kind][flavor][id] = true;
    }
  }
  for (Flavor flavor : kAllFlavors) {
    size_t denom = static_cast<size_t>(std::max(budget.seeds, 1));
    results.failures_minus[flavor] =
        static_cast<int>(found[StrategyKind::kThemisMinus][flavor].size());
    results.failures_full[flavor] =
        static_cast<int>(found[StrategyKind::kThemis][flavor].size());
    results.coverage_minus[flavor] =
        coverage_totals[StrategyKind::kThemisMinus][flavor] / denom;
    results.coverage_full[flavor] =
        coverage_totals[StrategyKind::kThemis][flavor] / denom;
  }
  return results;
}

std::vector<ThresholdSweepRow> RunThresholdSweep(const std::vector<double>& thresholds,
                                                 const ExperimentBudget& budget) {
  CampaignMatrix matrix =
      BaseMatrix(budget, DriverSalt::kThreshold, {StrategyKind::kThemis});
  matrix.thresholds = thresholds;
  MatrixResult result = RunMatrix(matrix, budget);

  std::vector<ThresholdSweepRow> rows;
  for (double t : thresholds) {
    ThresholdSweepRow row;
    row.threshold = t;
    std::map<std::string, bool> found;
    for (const JobResult& job : result.jobs) {
      if (!job.status.ok() || job.job.config.threshold_t != t) {
        continue;
      }
      row.false_positives += job.result.false_positives;
      for (const auto& [id, at] : job.result.distinct_failures) {
        (void)at;
        found[id] = true;
      }
    }
    row.true_positives = static_cast<int>(found.size());
    rows.push_back(row);
  }
  return rows;
}

std::vector<WeightSweepRow> RunWeightSweep(const std::vector<double>& storage_weights,
                                           const ExperimentBudget& budget) {
  // The storage-type new bugs of Table 2 (#1, #2, #5, #6, #8, #9).
  std::vector<std::string> storage_bug_ids;
  for (const FaultSpec& spec : NewBugRegistry()) {
    if (spec.type == FailureType::kImbalancedStorage) {
      storage_bug_ids.push_back(spec.id);
    }
  }

  CampaignMatrix matrix =
      BaseMatrix(budget, DriverSalt::kWeights, {StrategyKind::kThemis});
  for (double w : storage_weights) {
    // Remaining weight splits evenly between computation and network.
    LoadVarianceWeights weights;
    weights.storage = w;
    weights.computation = (1.0 - w) / 2.0;
    weights.network = (1.0 - w) / 2.0;
    matrix.weight_sets.push_back(weights);
  }
  MatrixResult result = RunMatrix(matrix, budget);

  std::vector<WeightSweepRow> rows;
  for (double w : storage_weights) {
    WeightSweepRow row;
    row.storage_weight = w;
    double total_minutes = 0.0;
    int found = 0;
    for (const JobResult& job : result.jobs) {
      if (!job.status.ok() || job.job.config.weights.storage != w) {
        continue;
      }
      for (const std::string& id : storage_bug_ids) {
        auto it = job.result.distinct_failures.find(id);
        if (it != job.result.distinct_failures.end()) {
          total_minutes += ToMinutes(it->second);
          ++found;
        }
      }
    }
    row.storage_bugs_found = found;
    row.mean_trigger_minutes = found > 0 ? total_minutes / found : -1.0;
    rows.push_back(row);
  }
  return rows;
}

AccumulationTrace RunAccumulationTrace(uint64_t seed, SimDuration budget) {
  // Reproduces GlusterFS-3356-style accumulation: a gluster-like cluster with
  // the historical corpus active, driven by Themis, sampling every node's
  // utilization once per virtual minute until the first storage failure is
  // confirmed (Fig. 2's bug is part of the historical study corpus).
  AccumulationTrace trace;
  CampaignConfig config;
  config.flavor = Flavor::kGluster;
  config.seed = seed;
  config.budget = budget;
  config.fault_set = FaultSet::kHistorical;

  std::unique_ptr<DfsCluster> cluster =
      MakeCluster(config.flavor, config.seed, config.storage_nodes, config.meta_nodes);
  CoverageRecorder coverage(FlavorBranchSpace(config.flavor), config.seed);
  cluster->set_coverage(&coverage);
  FaultInjector injector(HistoricalFaultsFor(config.flavor), config.seed ^ 0xfa0175ULL);
  cluster->set_fault_hooks(&injector);

  Rng rng(config.seed ^ 0x7e5715ULL);
  InputModel model;
  StatesMonitor monitor(config.weights);
  DetectorConfig detector_config;
  detector_config.threshold = config.threshold_t;
  ImbalanceDetector detector(detector_config);
  TestCaseExecutor executor(*cluster, model, monitor, detector, &injector, &coverage,
                            rng);
  FuzzerConfig fuzzer_config;
  ThemisFuzzer fuzzer(model, rng, fuzzer_config);
  OpSeqGenerator init_generator(model);
  executor.SeedInitialData(init_generator, 60);

  SimTime next_sample = 0;
  auto sample = [&]() {
    double minute = ToMinutes(cluster->Now());
    double max_spread = cluster->StorageImbalance();
    trace.max_variance_series.emplace_back(minute, max_spread);
    for (const LoadSample& s : cluster->SampleLoad()) {
      if (s.is_storage && s.online && !s.crashed && s.capacity_bytes > 0) {
        trace.node_series[s.node].emplace_back(
            minute, static_cast<double>(s.used_bytes) /
                        static_cast<double>(s.capacity_bytes));
      }
    }
  };

  while (cluster->Now() < config.budget) {
    OpSeq testcase = fuzzer.Next();
    ExecOutcome outcome = executor.Run(testcase);
    fuzzer.OnOutcome(testcase, outcome);
    while (cluster->Now() >= next_sample) {
      sample();
      next_sample += Minutes(1);
    }
    for (const FailureReport& report : outcome.failures) {
      if (report.IsTruePositive() &&
          report.dimension == ImbalanceDimension::kStorage) {
        trace.failure_confirmed = true;
        trace.confirmed_at = report.confirmed_at;
        return trace;
      }
      // Any other confirmed failure reset the cluster: restart the trace so
      // the figure shows one contiguous reproduction.
      trace.node_series.clear();
      trace.max_variance_series.clear();
    }
  }
  return trace;
}

}  // namespace themis
