#include "src/harness/experiments.h"

#include <algorithm>

#include "src/core/executor.h"
#include "src/core/generator.h"
#include "src/faults/fault_registry.h"
#include "src/monitor/states_monitor.h"

namespace themis {

namespace {

uint64_t SeedFor(const ExperimentBudget& budget, StrategyKind kind, Flavor flavor,
                 int repetition) {
  uint64_t h = budget.base_seed;
  h = HashCombine(h, static_cast<uint64_t>(kind));
  h = HashCombine(h, static_cast<uint64_t>(flavor));
  h = HashCombine(h, static_cast<uint64_t>(repetition) * 1337);
  return h | 1;
}

}  // namespace

NewBugFindings RunNewBugExperiment(const std::vector<StrategyKind>& strategies,
                                   const ExperimentBudget& budget) {
  NewBugFindings findings;
  for (StrategyKind kind : strategies) {
    findings.false_positives[kind] = 0;
    for (Flavor flavor : kAllFlavors) {
      for (int rep = 0; rep < budget.seeds; ++rep) {
        CampaignConfig config;
        config.flavor = flavor;
        config.seed = SeedFor(budget, kind, flavor, rep);
        config.budget = budget.campaign;
        config.fault_set = FaultSet::kNewBugs;
        CampaignResult result = Campaign(config).Run(kind);
        findings.false_positives[kind] += result.false_positives;
        for (const auto& [id, at] : result.distinct_failures) {
          auto [it, inserted] = findings.found[kind].emplace(id, at);
          if (!inserted && at < it->second) {
            it->second = at;
          }
        }
      }
    }
    if (findings.found.count(kind) == 0) {
      findings.found[kind] = {};
    }
  }
  return findings;
}

HistoricalFindings RunHistoricalExperiment(const std::vector<StrategyKind>& strategies,
                                           const ExperimentBudget& budget) {
  HistoricalFindings findings;
  for (StrategyKind kind : strategies) {
    for (Flavor flavor : kAllFlavors) {
      std::map<std::string, bool> found;
      for (int rep = 0; rep < budget.seeds; ++rep) {
        CampaignConfig config;
        config.flavor = flavor;
        config.seed = SeedFor(budget, kind, flavor, rep + 91);
        config.budget = budget.campaign;
        config.fault_set = FaultSet::kHistorical;
        CampaignResult result = Campaign(config).Run(kind);
        for (const auto& [id, at] : result.distinct_failures) {
          (void)at;
          found[id] = true;
        }
      }
      std::vector<std::string>& ids = findings.found[kind][flavor];
      for (const auto& [id, seen] : found) {
        (void)seen;
        ids.push_back(id);
      }
    }
  }
  return findings;
}

CoverageResults RunCoverageExperiment(const std::vector<StrategyKind>& strategies,
                                      const ExperimentBudget& budget) {
  CoverageResults results;
  for (StrategyKind kind : strategies) {
    for (Flavor flavor : kAllFlavors) {
      size_t total = 0;
      for (int rep = 0; rep < budget.seeds; ++rep) {
        CampaignConfig config;
        config.flavor = flavor;
        config.seed = SeedFor(budget, kind, flavor, rep + 7);
        config.budget = budget.campaign;
        config.fault_set = FaultSet::kNewBugs;
        CampaignResult result = Campaign(config).Run(kind);
        total += result.final_coverage;
        if (rep == 0) {
          results.timelines[kind][flavor] = result.coverage_timeline;
        }
      }
      results.final_coverage[kind][flavor] =
          total / static_cast<size_t>(std::max(budget.seeds, 1));
    }
  }
  return results;
}

AblationResults RunAblationExperiment(const ExperimentBudget& budget) {
  AblationResults results;
  for (Flavor flavor : kAllFlavors) {
    for (bool full : {false, true}) {
      StrategyKind kind = full ? StrategyKind::kThemis : StrategyKind::kThemisMinus;
      std::map<std::string, bool> found;
      size_t coverage_total = 0;
      for (int rep = 0; rep < budget.seeds; ++rep) {
        CampaignConfig config;
        config.flavor = flavor;
        config.seed = SeedFor(budget, kind, flavor, rep + 17);
        config.budget = budget.campaign;
        config.fault_set = FaultSet::kNewBugs;
        CampaignResult result = Campaign(config).Run(kind);
        coverage_total += result.final_coverage;
        for (const auto& [id, at] : result.distinct_failures) {
          (void)at;
          found[id] = true;
        }
      }
      size_t coverage = coverage_total / static_cast<size_t>(std::max(budget.seeds, 1));
      if (full) {
        results.failures_full[flavor] = static_cast<int>(found.size());
        results.coverage_full[flavor] = coverage;
      } else {
        results.failures_minus[flavor] = static_cast<int>(found.size());
        results.coverage_minus[flavor] = coverage;
      }
    }
  }
  return results;
}

std::vector<ThresholdSweepRow> RunThresholdSweep(const std::vector<double>& thresholds,
                                                 const ExperimentBudget& budget) {
  std::vector<ThresholdSweepRow> rows;
  for (double t : thresholds) {
    ThresholdSweepRow row;
    row.threshold = t;
    std::map<std::string, bool> found;
    for (Flavor flavor : kAllFlavors) {
      for (int rep = 0; rep < budget.seeds; ++rep) {
        CampaignConfig config;
        config.flavor = flavor;
        config.seed = SeedFor(budget, StrategyKind::kThemis, flavor, rep + 29);
        config.budget = budget.campaign;
        config.fault_set = FaultSet::kNewBugs;
        config.threshold_t = t;
        CampaignResult result = Campaign(config).Run(StrategyKind::kThemis);
        row.false_positives += result.false_positives;
        for (const auto& [id, at] : result.distinct_failures) {
          (void)at;
          found[id] = true;
        }
      }
    }
    row.true_positives = static_cast<int>(found.size());
    rows.push_back(row);
  }
  return rows;
}

std::vector<WeightSweepRow> RunWeightSweep(const std::vector<double>& storage_weights,
                                           const ExperimentBudget& budget) {
  // The storage-type new bugs of Table 2 (#1, #2, #5, #6, #8, #9).
  std::vector<std::string> storage_bug_ids;
  for (const FaultSpec& spec : NewBugRegistry()) {
    if (spec.type == FailureType::kImbalancedStorage) {
      storage_bug_ids.push_back(spec.id);
    }
  }
  std::vector<WeightSweepRow> rows;
  for (double w : storage_weights) {
    WeightSweepRow row;
    row.storage_weight = w;
    double total_minutes = 0.0;
    int found = 0;
    for (Flavor flavor : kAllFlavors) {
      for (int rep = 0; rep < budget.seeds; ++rep) {
        CampaignConfig config;
        config.flavor = flavor;
        config.seed = SeedFor(budget, StrategyKind::kThemis, flavor, rep + 47);
        config.budget = budget.campaign;
        config.fault_set = FaultSet::kNewBugs;
        // Remaining weight splits evenly between computation and network.
        config.weights.storage = w;
        config.weights.computation = (1.0 - w) / 2.0;
        config.weights.network = (1.0 - w) / 2.0;
        CampaignResult result = Campaign(config).Run(StrategyKind::kThemis);
        for (const std::string& id : storage_bug_ids) {
          auto it = result.distinct_failures.find(id);
          if (it != result.distinct_failures.end()) {
            total_minutes += ToMinutes(it->second);
            ++found;
          }
        }
      }
    }
    row.storage_bugs_found = found;
    row.mean_trigger_minutes = found > 0 ? total_minutes / found : -1.0;
    rows.push_back(row);
  }
  return rows;
}

AccumulationTrace RunAccumulationTrace(uint64_t seed, SimDuration budget) {
  // Reproduces GlusterFS-3356-style accumulation: a gluster-like cluster with
  // the historical corpus active, driven by Themis, sampling every node's
  // utilization once per virtual minute until the first storage failure is
  // confirmed (Fig. 2's bug is part of the historical study corpus).
  AccumulationTrace trace;
  CampaignConfig config;
  config.flavor = Flavor::kGluster;
  config.seed = seed;
  config.budget = budget;
  config.fault_set = FaultSet::kHistorical;

  std::unique_ptr<DfsCluster> cluster =
      MakeCluster(config.flavor, config.seed, config.storage_nodes, config.meta_nodes);
  CoverageRecorder coverage(FlavorBranchSpace(config.flavor), config.seed);
  cluster->set_coverage(&coverage);
  FaultInjector injector(HistoricalFaultsFor(config.flavor), config.seed ^ 0xfa0175ULL);
  cluster->set_fault_hooks(&injector);

  Rng rng(config.seed ^ 0x7e5715ULL);
  InputModel model;
  StatesMonitor monitor(config.weights);
  DetectorConfig detector_config;
  detector_config.threshold = config.threshold_t;
  ImbalanceDetector detector(detector_config);
  TestCaseExecutor executor(*cluster, model, monitor, detector, &injector, &coverage,
                            rng);
  FuzzerConfig fuzzer_config;
  ThemisFuzzer fuzzer(model, rng, fuzzer_config);
  OpSeqGenerator init_generator(model);
  executor.SeedInitialData(init_generator, 60);

  SimTime next_sample = 0;
  auto sample = [&]() {
    double minute = ToMinutes(cluster->Now());
    double max_spread = cluster->StorageImbalance();
    trace.max_variance_series.emplace_back(minute, max_spread);
    for (const LoadSample& s : cluster->SampleLoad()) {
      if (s.is_storage && s.online && !s.crashed && s.capacity_bytes > 0) {
        trace.node_series[s.node].emplace_back(
            minute, static_cast<double>(s.used_bytes) /
                        static_cast<double>(s.capacity_bytes));
      }
    }
  };

  while (cluster->Now() < config.budget) {
    OpSeq testcase = fuzzer.Next();
    ExecOutcome outcome = executor.Run(testcase);
    fuzzer.OnOutcome(testcase, outcome);
    while (cluster->Now() >= next_sample) {
      sample();
      next_sample += Minutes(1);
    }
    for (const FailureReport& report : outcome.failures) {
      if (report.IsTruePositive() &&
          report.dimension == ImbalanceDimension::kStorage) {
        trace.failure_confirmed = true;
        trace.confirmed_at = report.confirmed_at;
        return trace;
      }
      // Any other confirmed failure reset the cluster: restart the trace so
      // the figure shows one contiguous reproduction.
      trace.node_series.clear();
      trace.max_variance_series.clear();
    }
  }
  return trace;
}

}  // namespace themis
