// Plain-text table rendering for the experiment drivers in bench/.

#ifndef SRC_HARNESS_REPORT_H_
#define SRC_HARNESS_REPORT_H_

#include <string>
#include <vector>

namespace themis {

// A simple fixed-width table: header row + data rows, columns padded to the
// widest cell. Rendered with a separator under the header.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  std::string Render() const;
  void Print() const;  // to stdout

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// "12.3%" helpers for the study findings.
std::string Percent(int part, int whole);

}  // namespace themis

#endif  // SRC_HARNESS_REPORT_H_
