#include "src/harness/thread_pool.h"

#include <algorithm>

namespace themis {

ThreadPool::ThreadPool(int threads) {
  size_t n = static_cast<size_t>(std::max(threads, 1));
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) {
      return false;
    }
    ++pending_;
  }
  size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    draining_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

bool ThreadPool::RunOne(size_t self) {
  std::function<void()> task;
  bool stolen = false;
  {
    std::lock_guard<std::mutex> lock(queues_[self]->mu);
    if (!queues_[self]->tasks.empty()) {
      task = std::move(queues_[self]->tasks.front());
      queues_[self]->tasks.pop_front();
    }
  }
  if (!task) {
    // Steal from the back of sibling deques, starting after ourselves so
    // workers don't all gang up on queue 0.
    for (size_t step = 1; step < queues_.size() && !task; ++step) {
      size_t victim = (self + step) % queues_.size();
      std::lock_guard<std::mutex> lock(queues_[victim]->mu);
      if (!queues_[victim]->tasks.empty()) {
        task = std::move(queues_[victim]->tasks.back());
        queues_[victim]->tasks.pop_back();
        stolen = true;
      }
    }
  }
  if (!task) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
  }
  task();
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (stolen) {
    stolen_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    if (RunOne(self)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_ > 0 || draining_; });
    if (pending_ == 0 && draining_) {
      return;
    }
  }
}

}  // namespace themis
