// Campaign harness: wires a flavor cluster, a fault registry, the coverage
// recorder, the monitor/detector stack, the executor and one generation
// strategy, then runs the testing loop for a virtual time budget (the
// paper's 24-hour experiments). Produces everything the evaluation tables
// need: confirmed failures (labeled TP/FP against ground truth), distinct
// root causes, trigger times and the coverage timeline.
//
// Strategies are resolved by name through the StrategyRegistry; the
// StrategyKind enum survives only as a compatibility shim over the names.
// Construction is validated: Run() returns a Result and never crashes on a
// bad config, so the parallel runner can report per-job errors.

#ifndef SRC_HARNESS_CAMPAIGN_H_
#define SRC_HARNESS_CAMPAIGN_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/executor.h"
#include "src/core/strategy.h"
#include "src/core/strategy_registry.h"
#include "src/dfs/flavors/factory.h"
#include "src/faults/fault_registry.h"
#include "src/faults/historical_corpus.h"
#include "src/harness/ground_truth.h"
#include "src/monitor/detector.h"
#include "src/telemetry/event_log.h"

namespace themis {

// Compatibility shim over the registry's strategy names. New strategies
// should be addressed by name; nothing below the harness dispatches on the
// enum any more.
enum class StrategyKind : uint8_t {
  kThemis = 0,
  kThemisMinus,
  kFixReq,
  kFixConf,
  kAlternate,
  kConcurrent,
};

// The registry name the kind maps to ("Themis", "Fix_req", ...).
const char* StrategyKindName(StrategyKind kind);

enum class FaultSet : uint8_t {
  kNewBugs = 0,   // the 10 Table 2 failures for the flavor
  kHistorical,    // the 53-failure corpus subset for the flavor
  kNone,          // healthy system (false-positive studies)
};

struct CampaignConfig {
  Flavor flavor = Flavor::kGluster;
  uint64_t seed = 1;
  SimDuration budget = Hours(24);
  double threshold_t = 0.25;           // detector threshold (Table 7 sweeps)
  LoadVarianceWeights weights;         // variance weights (Table 8 sweeps)
  FaultSet fault_set = FaultSet::kNewBugs;
  int initial_files = 60;
  SimDuration coverage_sample_period = Minutes(1);
  int storage_nodes = 8;               // 10 nodes total, like the paper
  int meta_nodes = 2;
  // Environment-fault dimension (DESIGN.md §14). When true, the generator
  // draws env_fault operators (kEnvFaultShare of ops), an EnvFaultInjector
  // is attached to the cluster, and the env-gated bug registry joins the
  // fault set. False keeps the fault-free grammar, RNG draw sequence and
  // digests bit-identical to campaigns that predate the fault dimension.
  bool env_faults = false;
  // Collect per-campaign telemetry events into CampaignResult::telemetry.
  // Off by default: long matrices would otherwise hold every job's event
  // stream in memory at once. Recording never draws from the RNG, so this
  // flag cannot change any campaign result.
  bool collect_telemetry = false;
  // Seed energy per newly covered balancer state-machine transition pair
  // (DESIGN.md §16). 0.0 (the default) makes the second feedback signal
  // purely observational: transitions are still recorded (and reported),
  // but energy assignment — and therefore every campaign digest — stays
  // bit-identical to the pure load-variance signal.
  double transition_weight = 0.0;

  // Checkpointing (DESIGN.md §11). Empty checkpoint_dir disables snapshots
  // entirely. With a directory set, a final snapshot is written when the
  // campaign completes; checkpoint_every_ops > 0 additionally writes a
  // mid-campaign snapshot at the first test-case boundary after each
  // multiple of that op count. Snapshot writing never draws from the RNG
  // and mutates no campaign state, so checkpointing cannot change results.
  std::string checkpoint_dir;
  uint64_t checkpoint_every_ops = 0;
  // Before running, load the newest valid snapshot for this job from
  // checkpoint_dir (corrupt or mismatched snapshots are skipped with a
  // warning). A final snapshot short-circuits to its stored result; a
  // mid-campaign snapshot continues the interrupted run bit-identically.
  bool resume = false;
  // Mid-campaign snapshots retained per job (older ones are pruned).
  int checkpoint_keep = 3;
  // Which runner job this campaign is, for snapshot file naming.
  size_t job_index = 0;
  // Crash-test hook: abort with FailedPrecondition right after this many
  // mid-campaign snapshots have been written by THIS process (counts reset
  // on resume) — the in-process stand-in for SIGKILL-at-a-checkpoint.
  int halt_after_checkpoints = 0;

  // Rejects configurations no campaign can meaningfully run: non-positive
  // budget or sample period, zero nodes, threshold <= 0, negative initial
  // population, degenerate variance weights, or checkpoint options without
  // a checkpoint directory. FaultSet::kNone is valid — it is the designated
  // false-positive study mode.
  Status Validate() const;
};

// Per-test-case progress snapshot handed to a CampaignLoopObserver.
struct CampaignTick {
  uint64_t total_ops = 0;
  int testcases = 0;
  size_t coverage = 0;             // branch-coverage hits so far
  size_t transition_coverage = 0;  // distinct balancer transition pairs
  SimTime now{};                   // virtual clock
};

// Fleet hook (DESIGN.md §17): called once per completed test case, after the
// strategy saw its outcome and before any checkpoint for that boundary is
// written — so a checkpoint always captures whatever the observer did (e.g.
// imported seeds) and a resumed run does not replay it. Observers must not
// touch the campaign RNG or cluster; the corpus exchange only reads the
// strategy's pool and calls Strategy::ImportSeed. A null observer (the
// default) leaves the loop byte-for-byte on its pre-fleet path.
class CampaignLoopObserver {
 public:
  virtual ~CampaignLoopObserver() = default;
  virtual void OnTestcase(Strategy& strategy, const ExecOutcome& outcome,
                          const CampaignTick& tick) = 0;
};

struct CampaignResult {
  std::string strategy_name;
  Flavor flavor = Flavor::kGluster;
  // All confirmed reports in order (true and false positives).
  std::vector<FailureReport> reports;
  // Distinct true failures by root-cause id, with first confirmation time.
  std::map<std::string, SimTime> distinct_failures;
  int false_positives = 0;
  size_t final_coverage = 0;
  // Distinct balancer state-machine transition pairs covered (DESIGN.md
  // §16). Reported in summaries/benches; deliberately OUTSIDE Digest() so
  // attaching the recorder cannot perturb pinned digests.
  size_t transition_coverage = 0;
  // The covered pairs themselves, ascending (from, to) — the mergeable form
  // the fleet supervisor unions across workers for fleet-wide coverage.
  // Like transition_coverage, outside Digest().
  std::vector<std::pair<uint8_t, uint8_t>> transition_pairs;
  // (virtual time, branches hit) sampled once per coverage_sample_period.
  std::vector<std::pair<SimTime, size_t>> coverage_timeline;
  uint64_t total_ops = 0;
  int testcases = 0;
  int candidates = 0;
  // fault id -> (ops at which the trigger predicate held, trigger count).
  std::map<std::string, std::pair<uint64_t, int>> trigger_stats;
  // Campaign event stream (empty unless CampaignConfig::collect_telemetry).
  std::vector<CampaignEvent> telemetry;

  int DistinctTruePositives() const { return static_cast<int>(distinct_failures.size()); }
  bool Found(const std::string& fault_id) const {
    return distinct_failures.count(fault_id) != 0;
  }

  // Order-stable 64-bit digest over every deterministic field (results,
  // timelines, reports, telemetry events) — two runs of the same job must
  // produce the same digest regardless of --jobs count or scheduling. Wall
  // and CPU time live outside CampaignResult and never enter the digest.
  uint64_t Digest() const;
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig config);

  // Runs one campaign with the named strategy from the StrategyRegistry.
  // Fails (without crashing) on an invalid config or unknown strategy.
  Result<CampaignResult> Run(std::string_view strategy_name);

  // Compatibility shim for enum-based callers.
  Result<CampaignResult> Run(StrategyKind kind) { return Run(StrategyKindName(kind)); }

  // Attach a per-test-case observer (fleet corpus exchange / heartbeats).
  // Not owned; must outlive Run(). Null restores the default no-op.
  void set_loop_observer(CampaignLoopObserver* observer) {
    loop_observer_ = observer;
  }

 private:
  std::vector<FaultSpec> FaultsForConfig() const;

  CampaignConfig config_;
  CampaignLoopObserver* loop_observer_ = nullptr;
};

// Convenience: run one (strategy, flavor) campaign with defaults.
Result<CampaignResult> RunCampaign(std::string_view strategy_name, Flavor flavor,
                                   uint64_t seed, SimDuration budget = Hours(24),
                                   FaultSet fault_set = FaultSet::kNewBugs);
Result<CampaignResult> RunCampaign(StrategyKind kind, Flavor flavor, uint64_t seed,
                                   SimDuration budget = Hours(24),
                                   FaultSet fault_set = FaultSet::kNewBugs);

}  // namespace themis

#endif  // SRC_HARNESS_CAMPAIGN_H_
