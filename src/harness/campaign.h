// Campaign harness: wires a flavor cluster, a fault registry, the coverage
// recorder, the monitor/detector stack, the executor and one generation
// strategy, then runs the testing loop for a virtual time budget (the
// paper's 24-hour experiments). Produces everything the evaluation tables
// need: confirmed failures (labeled TP/FP against ground truth), distinct
// root causes, trigger times and the coverage timeline.

#ifndef SRC_HARNESS_CAMPAIGN_H_
#define SRC_HARNESS_CAMPAIGN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/executor.h"
#include "src/core/fuzzer.h"
#include "src/core/strategy.h"
#include "src/dfs/flavors/factory.h"
#include "src/faults/fault_registry.h"
#include "src/faults/historical_corpus.h"
#include "src/harness/ground_truth.h"
#include "src/monitor/detector.h"

namespace themis {

enum class StrategyKind : uint8_t {
  kThemis = 0,
  kThemisMinus,
  kFixReq,
  kFixConf,
  kAlternate,
  kConcurrent,
};

const char* StrategyKindName(StrategyKind kind);

enum class FaultSet : uint8_t {
  kNewBugs = 0,   // the 10 Table 2 failures for the flavor
  kHistorical,    // the 53-failure corpus subset for the flavor
  kNone,          // healthy system (false-positive studies)
};

struct CampaignConfig {
  Flavor flavor = Flavor::kGluster;
  uint64_t seed = 1;
  SimDuration budget = Hours(24);
  double threshold_t = 0.25;           // detector threshold (Table 7 sweeps)
  LoadVarianceWeights weights;         // variance weights (Table 8 sweeps)
  FaultSet fault_set = FaultSet::kNewBugs;
  int initial_files = 60;
  SimDuration coverage_sample_period = Minutes(1);
  int storage_nodes = 8;               // 10 nodes total, like the paper
  int meta_nodes = 2;
};

struct CampaignResult {
  std::string strategy_name;
  Flavor flavor = Flavor::kGluster;
  // All confirmed reports in order (true and false positives).
  std::vector<FailureReport> reports;
  // Distinct true failures by root-cause id, with first confirmation time.
  std::map<std::string, SimTime> distinct_failures;
  int false_positives = 0;
  size_t final_coverage = 0;
  // (virtual time, branches hit) sampled once per coverage_sample_period.
  std::vector<std::pair<SimTime, size_t>> coverage_timeline;
  uint64_t total_ops = 0;
  int testcases = 0;
  int candidates = 0;
  // fault id -> (ops at which the trigger predicate held, trigger count).
  std::map<std::string, std::pair<uint64_t, int>> trigger_stats;

  int DistinctTruePositives() const { return static_cast<int>(distinct_failures.size()); }
  bool Found(const std::string& fault_id) const {
    return distinct_failures.count(fault_id) != 0;
  }
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig config);

  CampaignResult Run(StrategyKind kind);

 private:
  std::unique_ptr<Strategy> MakeStrategy(StrategyKind kind, InputModel& model, Rng& rng,
                                         bool variance_guidance);
  std::vector<FaultSpec> FaultsForConfig() const;

  CampaignConfig config_;
};

// Convenience: run one (strategy, flavor) campaign with defaults.
CampaignResult RunCampaign(StrategyKind kind, Flavor flavor, uint64_t seed,
                           SimDuration budget = Hours(24),
                           FaultSet fault_set = FaultSet::kNewBugs);

}  // namespace themis

#endif  // SRC_HARNESS_CAMPAIGN_H_
