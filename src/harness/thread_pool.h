// Work-stealing thread pool for the parallel campaign engine.
//
// Each worker owns a deque: it pops its own work LIFO-free from the front and
// steals from the back of a sibling's deque when it runs dry, which keeps all
// cores busy even when job costs are wildly uneven (a 24h Themis campaign vs
// a 1h Fix_conf one). Campaign jobs are fully self-contained — cluster,
// strategy, RNG stream — so the pool never needs to know what a job computes,
// and scheduling order cannot affect results.
//
// Shutdown() drains every queued task before joining: a submitted job is
// guaranteed to run exactly once unless the pool rejected the Submit.

#ifndef SRC_HARNESS_THREAD_POOL_H_
#define SRC_HARNESS_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace themis {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  // Drains and joins (equivalent to Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Returns false (and drops the task) after Shutdown().
  bool Submit(std::function<void()> task);

  // Stops accepting new work, runs everything still queued, then joins the
  // workers. Safe to call more than once.
  void Shutdown();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Observability: total tasks run, and how many were stolen from another
  // worker's deque rather than popped locally.
  uint64_t tasks_executed() const { return executed_.load(std::memory_order_relaxed); }
  uint64_t tasks_stolen() const { return stolen_.load(std::memory_order_relaxed); }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  // Pops a task: own queue front first, then steals from siblings' backs.
  bool RunOne(size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;      // queued-but-not-yet-popped tasks (guarded by mu_)
  bool accepting_ = true;   // guarded by mu_
  bool draining_ = false;   // guarded by mu_

  std::atomic<size_t> next_queue_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> stolen_{0};
};

}  // namespace themis

#endif  // SRC_HARNESS_THREAD_POOL_H_
