// Ground-truth labeling: maps confirmed failure reports to injected faults,
// deduplicates by root cause, and counts false positives. This is the
// harness's analogue of the paper's manual reproduce-diagnose-deduplicate
// step (§5) — it runs *after* detection and never influences it.

#ifndef SRC_HARNESS_GROUND_TRUTH_H_
#define SRC_HARNESS_GROUND_TRUTH_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/executor.h"

namespace themis {

struct GroundTruthTally {
  // Root-cause id -> first confirmation time.
  std::map<std::string, SimTime> distinct_failures;
  int true_positive_reports = 0;
  int false_positive_reports = 0;
};

// Folds a batch of confirmed reports into the tally.
void TallyReports(const std::vector<FailureReport>& reports, GroundTruthTally& tally);

}  // namespace themis

#endif  // SRC_HARNESS_GROUND_TRUTH_H_
