// Alternate (§3.4 Method 2 / §6.1): the Janus/Hydra-style baseline. It fixes
// a random configuration, explores the request input space coverage-guided
// until coverage converges (no new coverage for a while), then generates a
// new random configuration and repeats. The two input spaces are explored
// separately — the execution dependencies between them inside short windows
// are exactly what it misses.

#ifndef SRC_BASELINES_ALTERNATE_H_
#define SRC_BASELINES_ALTERNATE_H_

#include "src/core/generator.h"
#include "src/core/seed_pool.h"
#include "src/core/strategy.h"

namespace themis {

class AlternateStrategy : public Strategy {
 public:
  // `convergence_patience`: iterations without new coverage before switching
  // to a new configuration.
  AlternateStrategy(InputModel& model, Rng& rng, int max_len = 8,
                    int convergence_patience = 25);

  std::string_view name() const override { return "Alternate"; }
  OpSeq Next() override;
  void OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) override;
  void SaveState(SnapshotWriter& writer) const override;
  Status RestoreState(SnapshotReader& reader) override;

  int config_epochs() const { return config_epochs_; }

 private:
  OpSeq NewConfigSeq();
  OpSeq RequestSeq();

  InputModel& model_;
  Rng& rng_;
  OpSeqGenerator generator_;
  SeedPool request_pool_;
  int convergence_patience_;
  int stale_iterations_ = 0;
  bool emit_config_next_ = true;
  int config_epochs_ = 0;
};

}  // namespace themis

#endif  // SRC_BASELINES_ALTERNATE_H_
