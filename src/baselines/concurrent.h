// Concurrent (§3.4 Method 3 / §6.1): request and configuration inputs are
// generated simultaneously and independently — every test case interleaves a
// random request burst with random configuration changes. No runtime
// feedback is usable, because neither space's generator knows which change
// caused the observed state: it is a random search over the joint space.

#ifndef SRC_BASELINES_CONCURRENT_H_
#define SRC_BASELINES_CONCURRENT_H_

#include "src/core/generator.h"
#include "src/core/strategy.h"

namespace themis {

class ConcurrentStrategy : public Strategy {
 public:
  ConcurrentStrategy(InputModel& model, Rng& rng, int max_len = 8);

  std::string_view name() const override { return "Concurrent"; }
  OpSeq Next() override;
  void OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) override;

 private:
  InputModel& model_;
  Rng& rng_;
  OpSeqGenerator generator_;
};

}  // namespace themis

#endif  // SRC_BASELINES_CONCURRENT_H_
