// Fix_conf (§6.1): the SmallFile/Filebench-style baseline. The cluster
// configuration is set up once (a fixed prelude of configuration operations
// right after start/reset) and then only the client-request input space is
// explored, coverage-guided.

#ifndef SRC_BASELINES_FIX_CONF_H_
#define SRC_BASELINES_FIX_CONF_H_

#include "src/core/generator.h"
#include "src/core/seed_pool.h"
#include "src/core/strategy.h"

namespace themis {

class FixConfStrategy : public Strategy {
 public:
  FixConfStrategy(InputModel& model, Rng& rng, int max_len = 8);

  std::string_view name() const override { return "Fix_conf"; }
  OpSeq Next() override;
  void OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) override;
  void SaveState(SnapshotWriter& writer) const override;
  Status RestoreState(SnapshotReader& reader) override;

 private:
  OpSeq RequestSeq();

  InputModel& model_;
  Rng& rng_;
  OpSeqGenerator generator_;
  SeedPool request_pool_;
  bool prelude_pending_ = true;
};

}  // namespace themis

#endif  // SRC_BASELINES_FIX_CONF_H_
