#include "src/baselines/fix_req.h"

#include "src/core/strategy_registry.h"

#include "src/common/bytes.h"

namespace themis {

FixReqStrategy::FixReqStrategy(InputModel& model, Rng& rng, int max_len)
    : model_(model), rng_(rng), generator_(model, max_len), config_pool_(64) {}

OpSeq FixReqStrategy::FixedRequests(Rng& rng) {
  // The canned workload: what distributed benchmarks replay. Operand values
  // refresh (files must exist) but the operator mix never changes — that is
  // the point of this baseline.
  OpSeq seq;
  Operation create = generator_.GenerateOpOfKind(OpKind::kCreate, rng);
  seq.ops.push_back(create);
  Operation append = generator_.GenerateOpOfKind(OpKind::kAppend, rng);
  append.path = create.path;
  seq.ops.push_back(append);
  Operation open = generator_.GenerateOpOfKind(OpKind::kOpen, rng);
  seq.ops.push_back(open);
  seq.ops.push_back(generator_.GenerateOpOfKind(OpKind::kDelete, rng));
  return seq;
}

OpSeq FixReqStrategy::GenerateConfigSeq(int len) {
  OpSeq seq;
  for (int i = 0; i < len; ++i) {
    OpClass cls = rng_.Chance(0.5) ? OpClass::kNode : OpClass::kVolume;
    seq.ops.push_back(generator_.GenerateOpOfClass(cls, rng_));
  }
  return seq;
}

OpSeq FixReqStrategy::Next() {
  OpSeq config_seq;
  if (config_pool_.empty() || rng_.Chance(0.3)) {
    config_seq = GenerateConfigSeq(static_cast<int>(rng_.NextRange(1, 4)));
  } else {
    // Mutate a pooled configuration sequence (coverage-guided).
    config_seq = config_pool_.Select(rng_);
    size_t pos = config_seq.ops.empty() ? 0 : rng_.PickIndex(config_seq.ops.size());
    OpClass cls = rng_.Chance(0.5) ? OpClass::kNode : OpClass::kVolume;
    Operation fresh = generator_.GenerateOpOfClass(cls, rng_);
    if (config_seq.ops.empty()) {
      config_seq.ops.push_back(fresh);
    } else {
      config_seq.ops[pos] = fresh;
    }
  }
  last_config_seq_ = config_seq;

  // Interleave fixed requests with the explored configuration operations.
  OpSeq requests = FixedRequests(rng_);
  OpSeq combined;
  size_t r = 0;
  size_t c = 0;
  while (r < requests.ops.size() || c < config_seq.ops.size()) {
    if (r < requests.ops.size()) {
      combined.ops.push_back(requests.ops[r++]);
    }
    if (c < config_seq.ops.size()) {
      combined.ops.push_back(config_seq.ops[c++]);
    }
  }
  return combined;
}

void FixReqStrategy::OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) {
  (void)seq;
  // Coverage-guided retention of the *configuration* part only.
  if (outcome.new_coverage > 0 || !outcome.failures.empty()) {
    config_pool_.Add(last_config_seq_,
                     0.1 * static_cast<double>(outcome.new_coverage) +
                         (outcome.failures.empty() ? 0.0 : 1.0));
  }
}


void FixReqStrategy::SaveState(SnapshotWriter& writer) const {
  config_pool_.SaveState(writer);
  SaveOpSeq(writer, last_config_seq_);
}

Status FixReqStrategy::RestoreState(SnapshotReader& reader) {
  Status status = config_pool_.RestoreState(reader);
  if (!status.ok()) return status;
  RestoreOpSeq(reader, &last_config_seq_);
  return reader.status();
}

THEMIS_REGISTER_STRATEGY("Fix_req", [](InputModel& model, Rng& rng,
                                       const StrategyOptions& options)
                                        -> std::unique_ptr<Strategy> {
  return std::make_unique<FixReqStrategy>(model, rng, options.max_len);
});

}  // namespace themis
