#include "src/baselines/concurrent.h"

#include "src/core/strategy_registry.h"

namespace themis {

ConcurrentStrategy::ConcurrentStrategy(InputModel& model, Rng& rng, int max_len)
    : model_(model), rng_(rng), generator_(model, max_len) {}

OpSeq ConcurrentStrategy::Next() {
  // Stress requests and configuration churn generated in parallel, then
  // interleaved as they would arrive at the cluster.
  int request_len = static_cast<int>(rng_.NextRange(2, 6));
  int config_len = static_cast<int>(rng_.NextRange(1, 3));
  OpSeq requests;
  for (int i = 0; i < request_len; ++i) {
    requests.ops.push_back(generator_.GenerateOpOfClass(OpClass::kFile, rng_));
  }
  OpSeq configs;
  for (int i = 0; i < config_len; ++i) {
    OpClass cls = rng_.Chance(0.5) ? OpClass::kNode : OpClass::kVolume;
    configs.ops.push_back(generator_.GenerateOpOfClass(cls, rng_));
  }
  OpSeq combined;
  size_t r = 0;
  size_t c = 0;
  while (r < requests.ops.size() || c < configs.ops.size()) {
    if (r < requests.ops.size()) {
      combined.ops.push_back(requests.ops[r++]);
    }
    if (c < configs.ops.size()) {
      combined.ops.push_back(configs.ops[c++]);
    }
  }
  return combined;
}

void ConcurrentStrategy::OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) {
  (void)seq;
  (void)outcome;  // feedback unusable by construction
}


THEMIS_REGISTER_STRATEGY("Concurrent", [](InputModel& model, Rng& rng,
                                          const StrategyOptions& options)
                                           -> std::unique_ptr<Strategy> {
  return std::make_unique<ConcurrentStrategy>(model, rng, options.max_len);
});

}  // namespace themis
