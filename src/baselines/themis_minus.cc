#include "src/baselines/themis_minus.h"

namespace themis {

ThemisMinusStrategy::ThemisMinusStrategy(InputModel& model, Rng& rng, int max_len)
    : rng_(rng), generator_(model, max_len) {}

OpSeq ThemisMinusStrategy::Next() { return generator_.Generate(rng_); }

void ThemisMinusStrategy::OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) {
  (void)seq;
  (void)outcome;  // no feedback: that is the ablation
}

}  // namespace themis
