#include "src/baselines/themis_minus.h"

#include "src/core/strategy_registry.h"

namespace themis {

ThemisMinusStrategy::ThemisMinusStrategy(InputModel& model, Rng& rng, int max_len)
    : rng_(rng), generator_(model, max_len) {}

OpSeq ThemisMinusStrategy::Next() { return generator_.Generate(rng_); }

void ThemisMinusStrategy::OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) {
  (void)seq;
  (void)outcome;  // no feedback: that is the ablation
}


THEMIS_REGISTER_STRATEGY("Themis-", [](InputModel& model, Rng& rng,
                                       const StrategyOptions& options)
                                        -> std::unique_ptr<Strategy> {
  return std::make_unique<ThemisMinusStrategy>(model, rng, options.max_len);
});

}  // namespace themis
