#include "src/baselines/alternate.h"

#include "src/core/strategy_registry.h"

namespace themis {

AlternateStrategy::AlternateStrategy(InputModel& model, Rng& rng, int max_len,
                                     int convergence_patience)
    : model_(model), rng_(rng), generator_(model, max_len),
      request_pool_(128), convergence_patience_(convergence_patience) {}

OpSeq AlternateStrategy::NewConfigSeq() {
  ++config_epochs_;
  int len = static_cast<int>(rng_.NextRange(1, 4));
  OpSeq seq;
  for (int i = 0; i < len; ++i) {
    OpClass cls = rng_.Chance(0.5) ? OpClass::kNode : OpClass::kVolume;
    seq.ops.push_back(generator_.GenerateOpOfClass(cls, rng_));
  }
  return seq;
}

OpSeq AlternateStrategy::RequestSeq() {
  if (!request_pool_.empty() && rng_.Chance(0.6)) {
    OpSeq seq = request_pool_.Select(rng_);
    if (!seq.ops.empty()) {
      seq.ops[rng_.PickIndex(seq.ops.size())] =
          generator_.GenerateOpOfClass(OpClass::kFile, rng_);
      return seq;
    }
  }
  int len = static_cast<int>(rng_.NextRange(2, generator_.max_len()));
  OpSeq seq;
  for (int i = 0; i < len; ++i) {
    seq.ops.push_back(generator_.GenerateOpOfClass(OpClass::kFile, rng_));
  }
  return seq;
}

OpSeq AlternateStrategy::Next() {
  if (emit_config_next_) {
    emit_config_next_ = false;
    stale_iterations_ = 0;
    return NewConfigSeq();
  }
  return RequestSeq();
}

void AlternateStrategy::OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) {
  if (seq.HasConfigOps()) {
    return;  // configuration epochs are not pooled
  }
  if (outcome.new_coverage > 0) {
    stale_iterations_ = 0;
    request_pool_.Add(seq, 0.1 * static_cast<double>(outcome.new_coverage));
  } else {
    ++stale_iterations_;
    if (stale_iterations_ >= convergence_patience_) {
      // Request-space exploration converged: move to the next configuration.
      emit_config_next_ = true;
    }
  }
  if (!outcome.failures.empty()) {
    request_pool_.Add(seq, 1.0);
  }
}


void AlternateStrategy::SaveState(SnapshotWriter& writer) const {
  request_pool_.SaveState(writer);
  writer.I64(stale_iterations_);
  writer.Bool(emit_config_next_);
  writer.I64(config_epochs_);
}

Status AlternateStrategy::RestoreState(SnapshotReader& reader) {
  Status status = request_pool_.RestoreState(reader);
  if (!status.ok()) return status;
  stale_iterations_ = static_cast<int>(reader.I64());
  emit_config_next_ = reader.Bool();
  config_epochs_ = static_cast<int>(reader.I64());
  return reader.status();
}

THEMIS_REGISTER_STRATEGY("Alternate", [](InputModel& model, Rng& rng,
                                         const StrategyOptions& options)
                                          -> std::unique_ptr<Strategy> {
  return std::make_unique<AlternateStrategy>(model, rng, options.max_len);
});

}  // namespace themis
