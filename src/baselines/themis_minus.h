// Themis⁻ (§6.3): Themis with the load variance model disabled — operation
// sequences are generated randomly with no feedback-driven seed retention.

#ifndef SRC_BASELINES_THEMIS_MINUS_H_
#define SRC_BASELINES_THEMIS_MINUS_H_

#include "src/core/generator.h"
#include "src/core/strategy.h"

namespace themis {

class ThemisMinusStrategy : public Strategy {
 public:
  ThemisMinusStrategy(InputModel& model, Rng& rng, int max_len = 8);

  std::string_view name() const override { return "Themis-"; }
  OpSeq Next() override;
  void OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) override;

 private:
  Rng& rng_;
  OpSeqGenerator generator_;
};

}  // namespace themis

#endif  // SRC_BASELINES_THEMIS_MINUS_H_
