#include "src/baselines/fix_conf.h"

#include "src/core/strategy_registry.h"

namespace themis {

FixConfStrategy::FixConfStrategy(InputModel& model, Rng& rng, int max_len)
    : model_(model), rng_(rng), generator_(model, max_len), request_pool_(128) {}

OpSeq FixConfStrategy::RequestSeq() {
  int len = static_cast<int>(rng_.NextRange(2, generator_.max_len()));
  OpSeq seq;
  for (int i = 0; i < len; ++i) {
    seq.ops.push_back(generator_.GenerateOpOfClass(OpClass::kFile, rng_));
  }
  return seq;
}

OpSeq FixConfStrategy::Next() {
  if (prelude_pending_) {
    // The fixed deployment configuration, applied once: scale out by one
    // storage node and one volume (a typical benchmark cluster setup).
    prelude_pending_ = false;
    OpSeq prelude;
    prelude.ops.push_back(generator_.GenerateOpOfKind(OpKind::kAddStorageNode, rng_));
    prelude.ops.push_back(generator_.GenerateOpOfKind(OpKind::kAddVolume, rng_));
    return prelude;
  }
  if (request_pool_.empty() || rng_.Chance(0.4)) {
    return RequestSeq();
  }
  // Mutate a pooled request sequence.
  OpSeq seq = request_pool_.Select(rng_);
  if (seq.ops.empty()) {
    return RequestSeq();
  }
  seq.ops[rng_.PickIndex(seq.ops.size())] =
      generator_.GenerateOpOfClass(OpClass::kFile, rng_);
  return seq;
}

void FixConfStrategy::OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) {
  if (!outcome.failures.empty()) {
    // The cluster was reset: replay the configuration prelude first.
    prelude_pending_ = true;
  }
  if (seq.HasConfigOps()) {
    return;  // never pool the prelude
  }
  if (outcome.new_coverage > 0 || !outcome.failures.empty()) {
    request_pool_.Add(seq, 0.1 * static_cast<double>(outcome.new_coverage) +
                               (outcome.failures.empty() ? 0.0 : 1.0));
  }
}


void FixConfStrategy::SaveState(SnapshotWriter& writer) const {
  request_pool_.SaveState(writer);
  writer.Bool(prelude_pending_);
}

Status FixConfStrategy::RestoreState(SnapshotReader& reader) {
  Status status = request_pool_.RestoreState(reader);
  if (!status.ok()) return status;
  prelude_pending_ = reader.Bool();
  return reader.status();
}

THEMIS_REGISTER_STRATEGY("Fix_conf", [](InputModel& model, Rng& rng,
                                        const StrategyOptions& options)
                                         -> std::unique_ptr<Strategy> {
  return std::make_unique<FixConfStrategy>(model, rng, options.max_len);
});

}  // namespace themis
