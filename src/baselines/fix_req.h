// Fix_req (§6.1): the CrashFuzz-style baseline. A fixed client-request
// workload (a benchmark-like mix of create/append/open/delete) is replayed
// while a coverage-guided fuzzer explores only the system-configuration
// input space (node and volume operations). Each test case interleaves the
// fixed requests with the explored configuration sequence, mirroring fault
// injection during a running workload.

#ifndef SRC_BASELINES_FIX_REQ_H_
#define SRC_BASELINES_FIX_REQ_H_

#include "src/core/generator.h"
#include "src/core/mutator.h"
#include "src/core/seed_pool.h"
#include "src/core/strategy.h"

namespace themis {

class FixReqStrategy : public Strategy {
 public:
  FixReqStrategy(InputModel& model, Rng& rng, int max_len = 8);

  std::string_view name() const override { return "Fix_req"; }
  OpSeq Next() override;
  void OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) override;
  void SaveState(SnapshotWriter& writer) const override;
  Status RestoreState(SnapshotReader& reader) override;

 private:
  OpSeq FixedRequests(Rng& rng);
  OpSeq GenerateConfigSeq(int len);

  InputModel& model_;
  Rng& rng_;
  OpSeqGenerator generator_;
  SeedPool config_pool_;
  OpSeq last_config_seq_;
};

}  // namespace themis

#endif  // SRC_BASELINES_FIX_REQ_H_
