#include "src/core/seed_pool.h"

#include <algorithm>

#include "src/telemetry/metrics.h"

namespace themis {

SeedPool::SeedPool(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

bool SeedPool::Insert(OpSeq seq, double score, uint64_t fingerprint,
                      bool imported) {
  if (seeds_.size() >= capacity_) {
    // Evict the lowest-priority seed.
    auto worst = std::min_element(seeds_.begin(), seeds_.end(),
                                  [](const Seed& a, const Seed& b) {
                                    return a.score < b.score;
                                  });
    if (worst != seeds_.end() && worst->score >= score) {
      THEMIS_COUNTER_INC("seed_pool.add_dropped", 1);
      return false;  // the pool is full of better seeds
    }
    if (worst != seeds_.end()) {
      seeds_.erase(worst);
      THEMIS_COUNTER_INC("seed_pool.evictions", 1);
    }
  }
  Seed seed;
  seed.seq = std::move(seq);
  seed.score = score;
  seed.id = next_id_++;
  seed.fingerprint = fingerprint;
  seed.imported = imported;
  seeds_.push_back(std::move(seed));
  return true;
}

void SeedPool::Add(OpSeq seq, double score) {
  uint64_t fingerprint = OpSeqFingerprint(seq);
  seen_.insert(fingerprint);
  // A dropped insert still counts the attempt, matching the pre-fleet
  // accounting: adds = attempts that passed the eviction gate.
  if (Insert(std::move(seq), score, fingerprint, /*imported=*/false)) {
    THEMIS_COUNTER_INC("seed_pool.adds", 1);
  }
}

bool SeedPool::ImportSeed(OpSeq seq, double score, uint64_t fingerprint) {
  if (seq.empty()) {
    THEMIS_COUNTER_INC("seed_pool.import_rejected", 1);
    return false;
  }
  if (!seen_.insert(fingerprint).second) {
    // Already added, imported, or evicted here. Merge energy into the
    // resident copy if one is still pooled: max() is commutative and
    // idempotent, so A,B and B,A import orders converge.
    for (Seed& seed : seeds_) {
      if (seed.fingerprint == fingerprint) {
        seed.score = std::max(seed.score, score);
        break;
      }
    }
    THEMIS_COUNTER_INC("seed_pool.import_dups", 1);
    return false;
  }
  if (!Insert(std::move(seq), score, fingerprint, /*imported=*/true)) {
    return false;
  }
  THEMIS_COUNTER_INC("seed_pool.imports", 1);
  return true;
}

const OpSeq& SeedPool::Select(Rng& rng) {
  static const OpSeq kEmpty;
  if (seeds_.empty()) {
    return kEmpty;
  }
  std::vector<double> weights;
  weights.reserve(seeds_.size());
  for (const Seed& seed : seeds_) {
    double freshness = 1.0 / (1.0 + seed.selections);
    weights.push_back(0.05 + seed.score + 0.2 * freshness);
  }
  size_t index = rng.PickWeighted(weights);
  ++seeds_[index].selections;
  THEMIS_COUNTER_INC("seed_pool.selects", 1);
  return seeds_[index].seq;
}

void SeedPool::SaveState(SnapshotWriter& writer) const {
  writer.U64(seeds_.size());
  for (const Seed& seed : seeds_) {
    SaveOpSeq(writer, seed.seq);
    writer.F64(seed.score);
    writer.U64(seed.id);
    writer.I64(seed.selections);
    writer.U64(seed.fingerprint);
    writer.Bool(seed.imported);
  }
  writer.U64(next_id_);
  // Canonical encoding for the unordered set: sorted ascending.
  std::vector<uint64_t> seen(seen_.begin(), seen_.end());
  std::sort(seen.begin(), seen.end());
  writer.U64(seen.size());
  for (uint64_t fingerprint : seen) writer.U64(fingerprint);
}

Status SeedPool::RestoreState(SnapshotReader& reader) {
  uint64_t count = reader.Count(8 + 8 + 8 + 8 + 8 + 1);
  seeds_.clear();
  seeds_.resize(static_cast<size_t>(count));
  for (Seed& seed : seeds_) {
    RestoreOpSeq(reader, &seed.seq);
    seed.score = reader.F64();
    seed.id = reader.U64();
    seed.selections = static_cast<int>(reader.I64());
    seed.fingerprint = reader.U64();
    seed.imported = reader.Bool();
    if (!reader.ok()) break;
  }
  next_id_ = reader.U64();
  uint64_t seen_count = reader.Count(8);
  seen_.clear();
  uint64_t prev = 0;
  for (uint64_t i = 0; i < seen_count && reader.ok(); ++i) {
    uint64_t fingerprint = reader.U64();
    if (i > 0 && fingerprint <= prev) {
      reader.Fail("seed pool seen-fingerprint set not sorted/unique");
      break;
    }
    prev = fingerprint;
    seen_.insert(fingerprint);
  }
  if (reader.ok()) {
    for (const Seed& seed : seeds_) {
      if (seen_.count(seed.fingerprint) == 0) {
        reader.Fail("pooled seed fingerprint missing from seen set");
        break;
      }
    }
  }
  return reader.status();
}

double SeedPool::best_score() const {
  double best = 0.0;
  for (const Seed& seed : seeds_) {
    best = std::max(best, seed.score);
  }
  return best;
}

}  // namespace themis
