#include "src/core/seed_pool.h"

#include <algorithm>

#include "src/telemetry/metrics.h"

namespace themis {

SeedPool::SeedPool(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

void SeedPool::Add(OpSeq seq, double score) {
  if (seeds_.size() >= capacity_) {
    // Evict the lowest-priority seed.
    auto worst = std::min_element(seeds_.begin(), seeds_.end(),
                                  [](const Seed& a, const Seed& b) {
                                    return a.score < b.score;
                                  });
    if (worst != seeds_.end() && worst->score >= score) {
      THEMIS_COUNTER_INC("seed_pool.add_dropped", 1);
      return;  // the pool is full of better seeds
    }
    if (worst != seeds_.end()) {
      seeds_.erase(worst);
      THEMIS_COUNTER_INC("seed_pool.evictions", 1);
    }
  }
  THEMIS_COUNTER_INC("seed_pool.adds", 1);
  Seed seed;
  seed.seq = std::move(seq);
  seed.score = score;
  seed.id = next_id_++;
  seeds_.push_back(std::move(seed));
}

const OpSeq& SeedPool::Select(Rng& rng) {
  static const OpSeq kEmpty;
  if (seeds_.empty()) {
    return kEmpty;
  }
  std::vector<double> weights;
  weights.reserve(seeds_.size());
  for (const Seed& seed : seeds_) {
    double freshness = 1.0 / (1.0 + seed.selections);
    weights.push_back(0.05 + seed.score + 0.2 * freshness);
  }
  size_t index = rng.PickWeighted(weights);
  ++seeds_[index].selections;
  THEMIS_COUNTER_INC("seed_pool.selects", 1);
  return seeds_[index].seq;
}

void SeedPool::SaveState(SnapshotWriter& writer) const {
  writer.U64(seeds_.size());
  for (const Seed& seed : seeds_) {
    SaveOpSeq(writer, seed.seq);
    writer.F64(seed.score);
    writer.U64(seed.id);
    writer.I64(seed.selections);
  }
  writer.U64(next_id_);
}

Status SeedPool::RestoreState(SnapshotReader& reader) {
  uint64_t count = reader.Count(8 + 8 + 8 + 8);
  seeds_.clear();
  seeds_.resize(static_cast<size_t>(count));
  for (Seed& seed : seeds_) {
    RestoreOpSeq(reader, &seed.seq);
    seed.score = reader.F64();
    seed.id = reader.U64();
    seed.selections = static_cast<int>(reader.I64());
    if (!reader.ok()) break;
  }
  next_id_ = reader.U64();
  return reader.status();
}

double SeedPool::best_score() const {
  double best = 0.0;
  for (const Seed& seed : seeds_) {
    best = std::max(best, seed.score);
  }
  return best;
}

}  // namespace themis
