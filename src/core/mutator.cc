#include "src/core/mutator.h"

#include <algorithm>

#include "src/telemetry/metrics.h"

namespace themis {

namespace {

const char* MutationKindLabel(int kind) {
  switch (kind) {
    case 0:
      return "replace";
    case 1:
      return "delete";
    case 2:
      return "insert";
  }
  return "?";
}

}  // namespace

OpSeqMutator::OpSeqMutator(InputModel& model, OpSeqGenerator& generator, int max_len)
    : model_(model), generator_(generator), max_len_(max_len > 0 ? max_len : 1) {}

OpSeq OpSeqMutator::Mutate(const OpSeq& seed, Rng& rng) {
  // Pick k <= length(opSeq) mutation positions.
  int k = seed.ops.empty()
              ? 1
              : static_cast<int>(rng.NextRange(1, static_cast<int64_t>(seed.ops.size())));
  return MutateK(seed, k, rng);
}

OpSeq OpSeqMutator::MutateLight(const OpSeq& seed, Rng& rng) {
  return MutateK(seed, 1, rng);
}

OpSeq OpSeqMutator::MutateK(const OpSeq& seed, int k, Rng& rng) {
  OpSeq out = seed;
  if (out.ops.empty()) {
    out = generator_.Generate(rng);
    return out;
  }
  uint64_t applied[3] = {0, 0, 0};  // per-kind application counts
  for (int i = 0; i < k && !out.ops.empty(); ++i) {
    size_t pos = rng.PickIndex(out.ops.size());
    MutationKind kind = static_cast<MutationKind>(rng.NextBelow(3));
    ++applied[static_cast<int>(kind)];
    switch (kind) {
      case MutationKind::kReplace:
        out.ops[pos] = generator_.GenerateOp(rng);
        break;
      case MutationKind::kDelete:
        if (out.ops.size() > 1) {
          out.ops.erase(out.ops.begin() + static_cast<ptrdiff_t>(pos));
        } else {
          out.ops[pos] = generator_.GenerateOp(rng);
        }
        break;
      case MutationKind::kInsert:
        if (static_cast<int>(out.ops.size()) < max_len_) {
          out.ops.insert(out.ops.begin() + static_cast<ptrdiff_t>(pos),
                         generator_.GenerateOp(rng));
        } else {
          out.ops[pos] = generator_.GenerateOp(rng);
        }
        break;
    }
  }
  Repair(out, rng);
  THEMIS_COUNTER_INC("mutator.mutations", static_cast<uint64_t>(k));
  if (telemetry_ != nullptr) {
    for (int kind = 0; kind < 3; ++kind) {
      if (applied[kind] > 0) {
        telemetry_->Record(CampaignEventKind::kMutation, MutationKindLabel(kind),
                           0.0, 0.0, applied[kind]);
      }
    }
  }
  return out;
}

void OpSeqMutator::Repair(OpSeq& seq, Rng& rng) {
  // "Scan all its opts and check whether an opt references a file or node
  // that no longer exists; if such a reference is found, replace with a
  // random one." Live references are kept — a retained seed must keep its
  // targeted operands, or the feedback loop has nothing to exploit.
  for (Operation& op : seq.ops) {
    switch (op.kind) {
      case OpKind::kDelete:
      case OpKind::kOpen:
      case OpKind::kAppend:
      case OpKind::kOverwrite:
      case OpKind::kTruncateOverwrite:
      case OpKind::kRename:
        if (!model_.HasFile(op.path) && rng.Chance(0.9)) {
          op.path = model_.ExistingFile(rng);
          // The memoized PathId still names the old operand — drop it.
          op.path_cache = {};
        }
        break;
      case OpKind::kRemoveMetaNode:
        if (!model_.HasMetaNode(op.node)) {
          op.node = model_.RandomMetaNode(rng);
        }
        break;
      case OpKind::kRemoveStorageNode:
        if (!model_.HasStorageNode(op.node)) {
          op.node = model_.RandomStorageNode(rng);
        }
        break;
      case OpKind::kRemoveVolume:
      case OpKind::kExpandVolume:
      case OpKind::kReduceVolume:
        if (!model_.HasBrick(op.brick)) {
          op.brick = model_.RandomBrick(rng);
        }
        break;
      // Env-fault operands: clamp rates/factors/delays back into the grammar
      // bounds (a stale bound never survives a mutation round) and rebind
      // vanished nodes like the node/volume operators above.
      case OpKind::kEnvMsgLoss:
      case OpKind::kEnvMsgReorder:
      case OpKind::kEnvMsgDuplicate:
      case OpKind::kEnvMsgCorrupt:
        op.size = std::clamp(op.size, kEnvMinRatePermille, kEnvMaxRatePermille);
        break;
      case OpKind::kEnvSlowDisk:
        if (!model_.HasStorageNode(op.node)) {
          op.node = model_.RandomStorageNode(rng);
        }
        op.size = std::clamp(op.size, kEnvMinSlowFactorPercent,
                             kEnvMaxSlowFactorPercent);
        break;
      case OpKind::kEnvCrashNode:
        if (!model_.HasMetaNode(op.node) && !model_.HasStorageNode(op.node)) {
          op.node = model_.RandomStorageNode(rng);
        }
        op.size = std::clamp(op.size, kEnvMinCrashDelaySeconds,
                             kEnvMaxCrashDelaySeconds);
        break;
      default:
        break;
    }
  }
}

}  // namespace themis
