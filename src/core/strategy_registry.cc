#include "src/core/strategy_registry.h"

#include "src/common/log.h"
#include "src/common/strings.h"

namespace themis {

StrategyRegistry& StrategyRegistry::Instance() {
  static StrategyRegistry* registry = new StrategyRegistry();
  return *registry;
}

void StrategyRegistry::Register(std::string name, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = factories_.emplace(std::move(name), std::move(factory));
  if (!inserted) {
    THEMIS_LOG(kWarn, "duplicate strategy registration ignored: %s",
               it->first.c_str());
  }
}

Result<std::unique_ptr<Strategy>> StrategyRegistry::Make(
    std::string_view name, InputModel& model, Rng& rng,
    const StrategyOptions& options) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return Status::NotFound("unknown strategy '" + std::string(name) +
                              "'; registered: " + Join(NamesLocked(), ", "));
    }
    factory = it->second;
  }
  return factory(model, rng, options);
}

bool StrategyRegistry::Contains(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> StrategyRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return NamesLocked();
}

std::vector<std::string> StrategyRegistry::NamesLocked() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    (void)factory;
    names.push_back(name);
  }
  return names;
}

}  // namespace themis
