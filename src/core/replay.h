// Reproduction logs (§5 "Imbalance Reproduce, Diagnose and De-duplicate").
//
// When Themis confirms an imbalance, it records the triggering operation
// sequence as a textual reproduction log; developers replay it in
// chronological order to reproduce the failure. This module implements the
// log format (one operation per line, `operator operand...`), the parser,
// and a replayer that drives a fresh cluster through the log and reports
// whether the imbalance reappears — reproduction is reliable because the
// whole testbed is deterministic.

#ifndef SRC_CORE_REPLAY_H_
#define SRC_CORE_REPLAY_H_

#include <string>

#include "src/common/status.h"
#include "src/core/opseq.h"
#include "src/dfs/cluster.h"

namespace themis {

// Serializes one operation as a reproduction-log line, e.g.
//   create /a/f3 size=1073741824
//   rename /a/f3 /b/f9
//   remove_storage node=7
// The format is unambiguous and round-trips through ParseOperation.
std::string FormatOperation(const Operation& op);

// Full log: one line per operation.
std::string FormatReproductionLog(const OpSeq& seq);

// Parses one log line. Unknown operators or malformed operands fail.
Result<Operation> ParseOperation(const std::string& line);

// Parses a full log (blank lines and '#' comments are skipped).
Result<OpSeq> ParseReproductionLog(const std::string& text);

struct ReplayOutcome {
  int ops_executed = 0;
  int ops_ok = 0;
  // Storage spread after the replay and one full rebalance round — a
  // persistent value above the detector threshold reproduces the failure.
  double residual_imbalance = 0.0;
  bool any_node_crashed = false;
};

// Replays `seq` against `dfs` (repeating it `repetitions` times, as the
// triggering workloads of Finding 5 are), then rebalances and measures.
ReplayOutcome ReplayLog(DfsInterface& dfs, const OpSeq& seq, int repetitions = 1);

}  // namespace themis

#endif  // SRC_CORE_REPLAY_H_
