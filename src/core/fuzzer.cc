#include "src/core/fuzzer.h"

#include "src/core/strategy_registry.h"

#include <algorithm>

#include "src/telemetry/metrics.h"

namespace themis {

ThemisFuzzer::ThemisFuzzer(InputModel& model, Rng& rng, FuzzerConfig config)
    : config_(config), rng_(rng), generator_(model, config.max_len),
      mutator_(model, generator_, config.max_len), pool_(config.pool_capacity),
      initial_remaining_(config.initial_seeds) {
  mutator_.set_telemetry(config_.telemetry);
  generator_.set_env_fault_share(config_.env_fault_share);
}

OpSeq ThemisFuzzer::Next() {
  if (initial_remaining_ > 0 || (pool_.empty() && !climbing_)) {
    if (initial_remaining_ > 0) {
      --initial_remaining_;
    }
    return generator_.Generate(rng_);
  }
  if (config_.variance_guidance && climbing_) {
    // Exploit: keep re-running the productive sequence with gradual
    // variation while the load variance keeps growing (Finding 5's
    // "repeatedly executing short sequences ... with gradual variation").
    // Episodes are bounded so exploitation never starves exploration of the
    // broader sequence space.
    if (++climb_length_ <= 16) {
      return mutator_.MutateLight(climb_seq_, rng_);
    }
    climbing_ = false;
    climb_length_ = 0;
  }
  // Occasionally inject a fresh random sequence to keep exploring.
  if (rng_.Chance(0.1) || pool_.empty()) {
    return generator_.Generate(rng_);
  }
  return mutator_.Mutate(pool_.Select(rng_), rng_);
}

void ThemisFuzzer::OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) {
  if (!config_.variance_guidance) {
    return;
  }
  bool interesting = false;
  double score = 0.0;
  std::string reasons;
  auto add_reason = [&reasons](const char* reason) {
    if (!reasons.empty()) {
      reasons += '+';
    }
    reasons += reason;
  };
  // "If the variance becomes larger or any new imbalance failures are
  // found, the new test case is regarded as an interesting seed."
  if (outcome.variance_gain > 1e-6) {
    interesting = true;
    score += outcome.variance_score + outcome.variance_gain;
    add_reason("variance");
  }
  if (!outcome.failures.empty()) {
    interesting = true;
    score += 1.0;
    add_reason("failure");
  }
  if (outcome.new_coverage > 0) {
    interesting = true;
    score += 0.05 * static_cast<double>(std::min<size_t>(outcome.new_coverage, 20));
    add_reason("coverage");
  }
  // Second feedback signal (DESIGN.md §16): seeds that walk the balancer
  // through new state-machine transitions get energy even when the variance
  // plateaus. Strictly additive and gated on the knob, so weight 0.0 leaves
  // scores, reasons and pool contents bit-identical.
  if (config_.transition_weight > 0.0 && outcome.new_transitions > 0) {
    interesting = true;
    score += config_.transition_weight *
             static_cast<double>(std::min<size_t>(outcome.new_transitions, 16));
    add_reason("transition");
  }
  if (interesting) {
    pool_.Add(seq, score);
    THEMIS_COUNTER_INC("fuzzer.seeds_accepted", 1);
    if (config_.telemetry != nullptr) {
      config_.telemetry->Record(CampaignEventKind::kSeedAccepted, reasons, score,
                                outcome.variance_gain);
    }
  } else {
    THEMIS_COUNTER_INC("fuzzer.seeds_rejected", 1);
    if (config_.telemetry != nullptr) {
      config_.telemetry->Record(CampaignEventKind::kSeedRejected, {}, 0.0,
                                outcome.variance_gain);
    }
  }
  // Hill-climbing control: a variance gain (re)arms exploitation around this
  // sequence; a few unproductive attempts in a row fall back to the pool.
  // A confirmed failure resets the cluster, so the climb restarts too.
  if (!outcome.failures.empty()) {
    climbing_ = false;
    climb_failures_ = 0;
    climb_length_ = 0;
    return;
  }
  if (outcome.variance_gain > 1e-6) {
    if (!climbing_) {
      climb_length_ = 0;
    }
    climbing_ = true;
    climb_seq_ = seq;
    climb_failures_ = 0;
  } else if (climbing_) {
    ++climb_failures_;
    // Persist longer while the absolute variance stays high: the plateau at
    // the top of a climb is where the accumulated imbalance does its work.
    int patience = outcome.variance_score >= 0.15 ? 8 : 4;
    if (climb_failures_ >= patience) {
      climbing_ = false;
      climb_failures_ = 0;
      climb_length_ = 0;
    }
  }
}


void ThemisFuzzer::SaveState(SnapshotWriter& writer) const {
  pool_.SaveState(writer);
  writer.I64(initial_remaining_);
  SaveOpSeq(writer, climb_seq_);
  writer.Bool(climbing_);
  writer.I64(climb_failures_);
  writer.I64(climb_length_);
}

Status ThemisFuzzer::RestoreState(SnapshotReader& reader) {
  Status status = pool_.RestoreState(reader);
  if (!status.ok()) return status;
  initial_remaining_ = static_cast<int>(reader.I64());
  RestoreOpSeq(reader, &climb_seq_);
  climbing_ = reader.Bool();
  climb_failures_ = static_cast<int>(reader.I64());
  climb_length_ = static_cast<int>(reader.I64());
  return reader.status();
}

// "Themis" is the full variance-guided fuzzer; the options control the
// ablation knobs so registry clients can build Themis variants too.
THEMIS_REGISTER_STRATEGY("Themis", [](InputModel& model, Rng& rng,
                                      const StrategyOptions& options)
                                       -> std::unique_ptr<Strategy> {
  FuzzerConfig config;
  config.max_len = options.max_len;
  config.variance_guidance = options.variance_guidance;
  config.env_fault_share = options.env_fault_share;
  config.transition_weight = options.transition_weight;
  config.telemetry = options.telemetry;
  return std::make_unique<ThemisFuzzer>(model, rng, config);
});

}  // namespace themis
