// Themis's black-box model of the system under test (§4.2 "Initial OpSeq
// Generation"): the file tree Tree_files, the node lists list_MN / list_S,
// the brick list, and the free-space estimate used for boundary-scenario
// size generation. The model is maintained from operation results and
// periodic admin-view syncs, like a real tester driving FUSE + admin CLIs;
// it can drift from the cluster's authoritative state, which is fine — stale
// references simply produce error-path test inputs.

#ifndef SRC_CORE_INPUT_MODEL_H_
#define SRC_CORE_INPUT_MODEL_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/dfs/cluster.h"
#include "src/dfs/operation.h"

namespace themis {

class InputModel {
 public:
  InputModel() = default;

  // Pulls the admin views (node/brick lists, free space). Free space is
  // refreshed on every call; the list pulls are skipped while the cluster's
  // membership epoch is unchanged since the last sync (the lists are pure
  // functions of membership, so a stable epoch means stable lists).
  void SyncFromDfs(const DfsInterface& dfs);

  // Updates Tree_files / lists from an executed operation.
  void Observe(const Operation& op, const OpResult& result);

  // Drops all learned state (after a cluster reset).
  void Reset();

  // ---- operand instantiation (category FileName) ----
  // Picks an existing file uniformly, or mints a new name when none exist.
  std::string ExistingFile(Rng& rng) const;
  // A fresh file name under an existing directory.
  std::string NewFileName(Rng& rng);
  // Picks an existing directory (possibly the root).
  std::string ExistingDir(Rng& rng) const;
  std::string NewDirName(Rng& rng);

  // ---- operand instantiation (category NodeId) ----
  NodeId RandomMetaNode(Rng& rng) const;
  NodeId RandomStorageNode(Rng& rng) const;
  BrickId RandomBrick(Rng& rng) const;

  // ---- operand instantiation (category Size) ----
  // Boundary-scenario size generation: mostly log-uniform, with occasional
  // 0 / 1 / free-space edge cases (§4.2).
  uint64_t GenerateSize(Rng& rng) const;
  // Capacity deltas for volume expand/reduce.
  uint64_t GenerateCapacityDelta(Rng& rng) const;

  // Liveness checks used by the mutator's repair scan.
  bool HasFile(const std::string& path) const { return file_set_.count(path) != 0; }
  bool HasDir(const std::string& path) const;
  bool HasMetaNode(NodeId node) const;
  bool HasStorageNode(NodeId node) const;
  bool HasBrick(BrickId brick) const;

  size_t file_count() const { return files_.size(); }
  size_t dir_count() const { return dirs_.size(); }
  uint64_t free_space() const { return free_space_; }

  // Checkpointing (DESIGN.md §11): every learned list plus the name counter;
  // file_set_ is rebuilt from files_ on restore.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  std::vector<std::string> files_;
  std::unordered_set<std::string> file_set_;  // membership only; files_ keeps order
  std::vector<std::string> dirs_{"/"};
  std::vector<NodeId> list_mn_;
  std::vector<NodeId> list_s_;
  std::vector<BrickId> bricks_;
  uint64_t free_space_ = 0;
  uint64_t name_counter_ = 0;
  // Epoch the lists were last pulled under. Deliberately NOT serialized: a
  // restored campaign faces a fresh cluster whose epoch counter restarts, so
  // a stale value could collide and wrongly skip the first pull.
  uint64_t synced_membership_epoch_ = DfsInterface::kMembershipEpochUnknown;
};

}  // namespace themis

#endif  // SRC_CORE_INPUT_MODEL_H_
