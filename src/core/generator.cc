#include "src/core/generator.h"

namespace themis {

namespace {

const OpKind kFileKinds[] = {
    OpKind::kCreate,  OpKind::kDelete, OpKind::kAppend,
    OpKind::kOverwrite, OpKind::kOpen, OpKind::kTruncateOverwrite,
    OpKind::kMkdir,   OpKind::kRmdir,  OpKind::kRename,
};
const OpKind kNodeKinds[] = {
    OpKind::kAddMetaNode,
    OpKind::kRemoveMetaNode,
    OpKind::kAddStorageNode,
    OpKind::kRemoveStorageNode,
};
const OpKind kVolumeKinds[] = {
    OpKind::kAddVolume,
    OpKind::kRemoveVolume,
    OpKind::kExpandVolume,
    OpKind::kReduceVolume,
};
const OpKind kEnvKinds[] = {
    OpKind::kEnvMsgLoss,   OpKind::kEnvMsgReorder, OpKind::kEnvMsgDuplicate,
    OpKind::kEnvMsgCorrupt, OpKind::kEnvSlowDisk,  OpKind::kEnvCrashNode,
    OpKind::kEnvClearFaults,
};

// Environment-fault operand bounds; mirrored by EnvFaultInjector's clamps
// and by OpSeqMutator's repair pass (src/faults/env_fault.h).
constexpr int64_t kMinRatePermille = 1;
constexpr int64_t kMaxRatePermille = 500;
constexpr int64_t kMinSlowFactorPercent = 110;
constexpr int64_t kMaxSlowFactorPercent = 1000;
// Generated crash delays start at 30s so the crashed window is long enough
// for the balancer to be exercised while the node is away; the grammar bound
// the injector accepts is [1, 3600].
constexpr int64_t kMinCrashDelaySeconds = 30;
constexpr int64_t kMaxCrashDelaySeconds = 3600;

}  // namespace

OpSeqGenerator::OpSeqGenerator(InputModel& model, int max_len)
    : model_(model), max_len_(max_len > 0 ? max_len : 1) {}

OpSeq OpSeqGenerator::Generate(Rng& rng, int len) {
  if (len <= 0) {
    len = static_cast<int>(rng.NextRange(1, max_len_));
  }
  OpSeq seq;
  seq.ops.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    seq.ops.push_back(GenerateOp(rng));
  }
  return seq;
}

Operation OpSeqGenerator::GenerateOp(Rng& rng) {
  // The share guard must short-circuit before Chance(): Chance(0.0) still
  // consumes a draw, which would shift every fault-free RNG stream.
  if (env_fault_share_ > 0.0 && rng.Chance(env_fault_share_)) {
    return GenerateOpOfClass(OpClass::kEnvFault, rng);
  }
  // Uniform probability 1/t over all t = 17 operators.
  return GenerateOpOfKind(OpKindFromIndex(static_cast<int>(rng.NextBelow(kOpKindCount))),
                          rng);
}

Operation OpSeqGenerator::GenerateOpOfClass(OpClass op_class, Rng& rng) {
  switch (op_class) {
    case OpClass::kFile:
      return GenerateOpOfKind(kFileKinds[rng.PickIndex(9)], rng);
    case OpClass::kNode:
      return GenerateOpOfKind(kNodeKinds[rng.PickIndex(4)], rng);
    case OpClass::kVolume:
      return GenerateOpOfKind(kVolumeKinds[rng.PickIndex(4)], rng);
    case OpClass::kEnvFault:
      return GenerateOpOfKind(kEnvKinds[rng.PickIndex(kEnvFaultKindCount)], rng);
  }
  return GenerateOp(rng);
}

Operation OpSeqGenerator::GenerateOpOfKind(OpKind kind, Rng& rng) {
  Operation op;
  op.kind = kind;
  switch (kind) {
    case OpKind::kCreate:
      // "Either selects an existing FileName ... or creates a new FileName":
      // creating over an existing path exercises the ALREADY_EXISTS path.
      op.path = rng.Chance(0.85) ? model_.NewFileName(rng) : model_.ExistingFile(rng);
      op.size = model_.GenerateSize(rng);
      break;
    case OpKind::kDelete:
    case OpKind::kOpen:
      op.path = model_.ExistingFile(rng);
      break;
    case OpKind::kAppend:
    case OpKind::kOverwrite:
    case OpKind::kTruncateOverwrite:
      op.path = model_.ExistingFile(rng);
      op.size = model_.GenerateSize(rng);
      break;
    case OpKind::kMkdir:
      op.path = model_.NewDirName(rng);
      break;
    case OpKind::kRmdir:
      op.path = model_.ExistingDir(rng);
      break;
    case OpKind::kRename:
      op.path = model_.ExistingFile(rng);
      op.path2 = model_.NewFileName(rng);
      break;
    case OpKind::kAddMetaNode:
      break;  // no operands: the system assigns the id
    case OpKind::kRemoveMetaNode:
      op.node = model_.RandomMetaNode(rng);
      break;
    case OpKind::kAddStorageNode:
      break;
    case OpKind::kRemoveStorageNode:
      op.node = model_.RandomStorageNode(rng);
      break;
    case OpKind::kAddVolume:
      op.node = rng.Chance(0.5) ? model_.RandomStorageNode(rng) : kInvalidNode;
      op.size = model_.GenerateCapacityDelta(rng);
      break;
    case OpKind::kRemoveVolume:
      op.brick = model_.RandomBrick(rng);
      break;
    case OpKind::kExpandVolume:
    case OpKind::kReduceVolume:
      op.brick = model_.RandomBrick(rng);
      op.size = model_.GenerateCapacityDelta(rng);
      break;
    case OpKind::kEnvMsgLoss:
    case OpKind::kEnvMsgReorder:
    case OpKind::kEnvMsgDuplicate:
    case OpKind::kEnvMsgCorrupt:
      op.size = static_cast<uint64_t>(
          rng.NextRange(kMinRatePermille, kMaxRatePermille));
      break;
    case OpKind::kEnvSlowDisk:
      op.node = model_.RandomStorageNode(rng);
      op.size = static_cast<uint64_t>(
          rng.NextRange(kMinSlowFactorPercent, kMaxSlowFactorPercent));
      break;
    case OpKind::kEnvCrashNode:
      // Crashing a metadata node halts the balancer mid-round (the
      // interesting schedule); weight the victim draw toward storage nodes
      // so plain data-unavailability windows stay represented too.
      op.node = rng.Chance(0.3) ? model_.RandomMetaNode(rng)
                                : model_.RandomStorageNode(rng);
      op.size = static_cast<uint64_t>(
          rng.NextRange(kMinCrashDelaySeconds, kMaxCrashDelaySeconds));
      break;
    case OpKind::kEnvClearFaults:
      break;  // no operands
  }
  return op;
}

}  // namespace themis
