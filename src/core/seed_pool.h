// The seeds pool (§4.1 step 3 / step 9): test cases that enlarged the load
// variance, hit new coverage, or exposed failures are retained and
// prioritized for mutation.

#ifndef SRC_CORE_SEED_POOL_H_
#define SRC_CORE_SEED_POOL_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/core/opseq.h"

namespace themis {

struct Seed {
  OpSeq seq;
  double score = 0.0;  // priority (variance gain + bonuses)
  uint64_t id = 0;
  int selections = 0;
  uint64_t fingerprint = 0;  // OpSeqFingerprint(seq), the corpus dedup key
  bool imported = false;     // arrived via fleet corpus exchange, not Add()
};

class SeedPool {
 public:
  explicit SeedPool(size_t capacity = 256);

  void Add(OpSeq seq, double score);

  // Fleet corpus-exchange entry point (DESIGN.md §17). Inserts a seed that
  // another worker published, deduplicated by fingerprint against every
  // sequence this pool has ever held (including evicted ones — a seed the
  // pool already judged is not news). A duplicate import is a no-op except
  // for an energy merge: the resident seed's score becomes
  // max(resident, imported), which is commutative and idempotent, so the
  // pool converges to the same energies regardless of import order.
  // Returns true when a new seed entered the pool. Empty sequences are
  // rejected. The import path never allocates seed ids ahead of Add(), so
  // a run that imports only its own published seeds (the single-worker
  // fleet) stays bit-identical to a run with no corpus at all.
  bool ImportSeed(OpSeq seq, double score, uint64_t fingerprint);

  // Score-weighted selection with a mild freshness bonus (rarely selected
  // seeds get a boost), AFL-style.
  const OpSeq& Select(Rng& rng);

  bool empty() const { return seeds_.empty(); }
  size_t size() const { return seeds_.size(); }
  double best_score() const;

  // Whether a fingerprint was ever added, imported, or evicted here.
  bool SeenFingerprint(uint64_t fingerprint) const {
    return seen_.count(fingerprint) != 0;
  }

  // Read-only view of the pool, for checkpoint round-trip verification.
  const std::vector<Seed>& seeds() const { return seeds_; }

  // Checkpointing (DESIGN.md §11): the seeds (sequences, scores, selection
  // counters, fingerprints), the id allocator, and the seen-fingerprint set
  // (sorted, so the encoding is canonical). Capacity comes from the
  // constructor.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  // Shared insert tail for Add/ImportSeed: evict-worst when full, then
  // append. Returns false when the pool was full of better seeds.
  bool Insert(OpSeq seq, double score, uint64_t fingerprint, bool imported);

  std::vector<Seed> seeds_;
  size_t capacity_;
  uint64_t next_id_ = 1;
  // Dedup history. Only ever membership-tested (never iterated except in
  // sorted order for SaveState), so the unordered layout cannot leak into
  // campaign behavior.
  std::unordered_set<uint64_t> seen_;
};

}  // namespace themis

#endif  // SRC_CORE_SEED_POOL_H_
