// The seeds pool (§4.1 step 3 / step 9): test cases that enlarged the load
// variance, hit new coverage, or exposed failures are retained and
// prioritized for mutation.

#ifndef SRC_CORE_SEED_POOL_H_
#define SRC_CORE_SEED_POOL_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/core/opseq.h"

namespace themis {

struct Seed {
  OpSeq seq;
  double score = 0.0;  // priority (variance gain + bonuses)
  uint64_t id = 0;
  int selections = 0;
};

class SeedPool {
 public:
  explicit SeedPool(size_t capacity = 256);

  void Add(OpSeq seq, double score);

  // Score-weighted selection with a mild freshness bonus (rarely selected
  // seeds get a boost), AFL-style.
  const OpSeq& Select(Rng& rng);

  bool empty() const { return seeds_.empty(); }
  size_t size() const { return seeds_.size(); }
  double best_score() const;

  // Read-only view of the pool, for checkpoint round-trip verification.
  const std::vector<Seed>& seeds() const { return seeds_; }

  // Checkpointing (DESIGN.md §11): the seeds (sequences, scores, selection
  // counters) and the id allocator. Capacity comes from the constructor.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  std::vector<Seed> seeds_;
  size_t capacity_;
  uint64_t next_id_ = 1;
};

}  // namespace themis

#endif  // SRC_CORE_SEED_POOL_H_
