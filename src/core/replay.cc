#include "src/core/replay.h"

#include <algorithm>
#include <charconv>

#include "src/common/strings.h"

namespace themis {

namespace {

// Machine-readable operator tokens (OpKindName uses 'truncate-overwrite'
// etc., which are already token-safe).
Result<OpKind> KindFromToken(std::string_view token) {
  for (int i = 0; i < kTotalOpKindCount; ++i) {
    OpKind kind = OpKindFromTotalIndex(i);
    if (OpKindName(kind) == token) {
      return kind;
    }
  }
  return Status::InvalidArgument("unknown operator '" + std::string(token) + "'");
}

Result<uint64_t> ParseU64(std::string_view text) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("bad number '" + std::string(text) + "'");
  }
  return value;
}

// key=value operand, e.g. "size=123", "node=7", "brick=9".
Result<uint64_t> ParseKeyedU64(std::string_view token, std::string_view key) {
  std::string prefix = std::string(key) + "=";
  if (!StartsWith(token, prefix)) {
    return Status::InvalidArgument("expected '" + prefix + "...', got '" +
                                   std::string(token) + "'");
  }
  return ParseU64(token.substr(prefix.size()));
}

}  // namespace

std::string FormatOperation(const Operation& op) {
  std::string out(OpKindName(op.kind));
  switch (op.kind) {
    case OpKind::kCreate:
    case OpKind::kAppend:
    case OpKind::kOverwrite:
    case OpKind::kTruncateOverwrite:
      out += " " + op.path + Sprintf(" size=%llu",
                                     static_cast<unsigned long long>(op.size));
      break;
    case OpKind::kDelete:
    case OpKind::kOpen:
    case OpKind::kMkdir:
    case OpKind::kRmdir:
      out += " " + op.path;
      break;
    case OpKind::kRename:
      out += " " + op.path + " " + op.path2;
      break;
    case OpKind::kAddMetaNode:
    case OpKind::kAddStorageNode:
      break;  // no operands
    case OpKind::kRemoveMetaNode:
    case OpKind::kRemoveStorageNode:
      out += Sprintf(" node=%u", op.node);
      break;
    case OpKind::kAddVolume:
      out += Sprintf(" node=%u size=%llu", op.node,
                     static_cast<unsigned long long>(op.size));
      break;
    case OpKind::kRemoveVolume:
      out += Sprintf(" brick=%u", op.brick);
      break;
    case OpKind::kExpandVolume:
    case OpKind::kReduceVolume:
      out += Sprintf(" brick=%u size=%llu", op.brick,
                     static_cast<unsigned long long>(op.size));
      break;
    case OpKind::kEnvMsgLoss:
    case OpKind::kEnvMsgReorder:
    case OpKind::kEnvMsgDuplicate:
    case OpKind::kEnvMsgCorrupt:
      out += Sprintf(" rate=%llu", static_cast<unsigned long long>(op.size));
      break;
    case OpKind::kEnvSlowDisk:
      out += Sprintf(" node=%u factor=%llu", op.node,
                     static_cast<unsigned long long>(op.size));
      break;
    case OpKind::kEnvCrashNode:
      out += Sprintf(" node=%u delay=%llu", op.node,
                     static_cast<unsigned long long>(op.size));
      break;
    case OpKind::kEnvClearFaults:
      break;  // no operands
  }
  return out;
}

std::string FormatReproductionLog(const OpSeq& seq) {
  std::string out;
  for (const Operation& op : seq.ops) {
    out += FormatOperation(op);
    out += '\n';
  }
  return out;
}

Result<Operation> ParseOperation(const std::string& line) {
  std::vector<std::string_view> raw = Split(line, ' ');
  std::vector<std::string_view> tokens;
  for (std::string_view token : raw) {
    if (!token.empty()) {
      tokens.push_back(token);
    }
  }
  if (tokens.empty()) {
    return Status::InvalidArgument("empty line");
  }
  Result<OpKind> kind = KindFromToken(tokens[0]);
  if (!kind.ok()) {
    return kind.status();
  }
  Operation op;
  op.kind = *kind;
  auto need = [&](size_t count) {
    return tokens.size() == count + 1
               ? Status::Ok()
               : Status::InvalidArgument(Sprintf("'%s' takes %zu operand(s)",
                                                 std::string(tokens[0]).c_str(), count));
  };
  switch (op.kind) {
    case OpKind::kCreate:
    case OpKind::kAppend:
    case OpKind::kOverwrite:
    case OpKind::kTruncateOverwrite: {
      if (Status status = need(2); !status.ok()) {
        return status;
      }
      op.path = std::string(tokens[1]);
      Result<uint64_t> size = ParseKeyedU64(tokens[2], "size");
      if (!size.ok()) {
        return size.status();
      }
      op.size = *size;
      break;
    }
    case OpKind::kDelete:
    case OpKind::kOpen:
    case OpKind::kMkdir:
    case OpKind::kRmdir: {
      if (Status status = need(1); !status.ok()) {
        return status;
      }
      op.path = std::string(tokens[1]);
      break;
    }
    case OpKind::kRename: {
      if (Status status = need(2); !status.ok()) {
        return status;
      }
      op.path = std::string(tokens[1]);
      op.path2 = std::string(tokens[2]);
      break;
    }
    case OpKind::kAddMetaNode:
    case OpKind::kAddStorageNode: {
      if (Status status = need(0); !status.ok()) {
        return status;
      }
      break;
    }
    case OpKind::kRemoveMetaNode:
    case OpKind::kRemoveStorageNode: {
      if (Status status = need(1); !status.ok()) {
        return status;
      }
      Result<uint64_t> node = ParseKeyedU64(tokens[1], "node");
      if (!node.ok()) {
        return node.status();
      }
      op.node = static_cast<NodeId>(*node);
      break;
    }
    case OpKind::kAddVolume: {
      if (Status status = need(2); !status.ok()) {
        return status;
      }
      Result<uint64_t> node = ParseKeyedU64(tokens[1], "node");
      Result<uint64_t> size = ParseKeyedU64(tokens[2], "size");
      if (!node.ok()) {
        return node.status();
      }
      if (!size.ok()) {
        return size.status();
      }
      op.node = static_cast<NodeId>(*node);
      op.size = *size;
      break;
    }
    case OpKind::kRemoveVolume: {
      if (Status status = need(1); !status.ok()) {
        return status;
      }
      Result<uint64_t> brick = ParseKeyedU64(tokens[1], "brick");
      if (!brick.ok()) {
        return brick.status();
      }
      op.brick = static_cast<BrickId>(*brick);
      break;
    }
    case OpKind::kExpandVolume:
    case OpKind::kReduceVolume: {
      if (Status status = need(2); !status.ok()) {
        return status;
      }
      Result<uint64_t> brick = ParseKeyedU64(tokens[1], "brick");
      Result<uint64_t> size = ParseKeyedU64(tokens[2], "size");
      if (!brick.ok()) {
        return brick.status();
      }
      if (!size.ok()) {
        return size.status();
      }
      op.brick = static_cast<BrickId>(*brick);
      op.size = *size;
      break;
    }
    case OpKind::kEnvMsgLoss:
    case OpKind::kEnvMsgReorder:
    case OpKind::kEnvMsgDuplicate:
    case OpKind::kEnvMsgCorrupt: {
      if (Status status = need(1); !status.ok()) {
        return status;
      }
      Result<uint64_t> rate = ParseKeyedU64(tokens[1], "rate");
      if (!rate.ok()) {
        return rate.status();
      }
      op.size = *rate;
      break;
    }
    case OpKind::kEnvSlowDisk: {
      if (Status status = need(2); !status.ok()) {
        return status;
      }
      Result<uint64_t> node = ParseKeyedU64(tokens[1], "node");
      Result<uint64_t> factor = ParseKeyedU64(tokens[2], "factor");
      if (!node.ok()) {
        return node.status();
      }
      if (!factor.ok()) {
        return factor.status();
      }
      op.node = static_cast<NodeId>(*node);
      op.size = *factor;
      break;
    }
    case OpKind::kEnvCrashNode: {
      if (Status status = need(2); !status.ok()) {
        return status;
      }
      Result<uint64_t> node = ParseKeyedU64(tokens[1], "node");
      Result<uint64_t> delay = ParseKeyedU64(tokens[2], "delay");
      if (!node.ok()) {
        return node.status();
      }
      if (!delay.ok()) {
        return delay.status();
      }
      op.node = static_cast<NodeId>(*node);
      op.size = *delay;
      break;
    }
    case OpKind::kEnvClearFaults: {
      if (Status status = need(0); !status.ok()) {
        return status;
      }
      break;
    }
  }
  return op;
}

Result<OpSeq> ParseReproductionLog(const std::string& text) {
  OpSeq seq;
  int line_number = 0;
  for (std::string_view line : Split(text, '\n')) {
    ++line_number;
    if (line.empty() || line.front() == '#') {
      continue;
    }
    Result<Operation> op = ParseOperation(std::string(line));
    if (!op.ok()) {
      return Status::InvalidArgument(Sprintf("line %d: %s", line_number,
                                             op.status().message().c_str()));
    }
    seq.ops.push_back(op.take());
  }
  if (seq.ops.empty()) {
    return Status::InvalidArgument("log contains no operations");
  }
  return seq;
}

ReplayOutcome ReplayLog(DfsInterface& dfs, const OpSeq& seq, int repetitions) {
  ReplayOutcome outcome;
  for (int rep = 0; rep < repetitions; ++rep) {
    for (const Operation& op : seq.ops) {
      OpResult result = dfs.Execute(op);
      ++outcome.ops_executed;
      if (result.status.ok()) {
        ++outcome.ops_ok;
      }
    }
  }
  // Let the balancer do its best, then measure what persists.
  (void)dfs.TriggerRebalance();
  for (int i = 0; i < 5000 && !dfs.RebalanceDone(); ++i) {
    dfs.AdvanceTime(Seconds(10));
  }
  for (const LoadSample& sample : dfs.SampleLoad()) {
    outcome.any_node_crashed |= sample.crashed;
  }
  // Storage spread from the samples (hottest node vs weighted fleet).
  uint64_t used = 0;
  uint64_t capacity = 0;
  double max_fraction = 0.0;
  for (const LoadSample& sample : dfs.SampleLoad()) {
    if (sample.is_storage && sample.online && !sample.crashed &&
        sample.capacity_bytes > 0) {
      used += sample.used_bytes;
      capacity += sample.capacity_bytes;
      max_fraction = std::max(max_fraction, static_cast<double>(sample.used_bytes) /
                                                static_cast<double>(sample.capacity_bytes));
    }
  }
  if (capacity > 0) {
    double fleet = static_cast<double>(used) / static_cast<double>(capacity);
    outcome.residual_imbalance = std::max(0.0, max_fraction - fleet);
  }
  return outcome;
}

}  // namespace themis
