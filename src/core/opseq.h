// Operation sequences — the single test-case representation into which
// Themis folds both client requests and system configuration changes
// (paper Fig. 7 / §4.2).

#ifndef SRC_CORE_OPSEQ_H_
#define SRC_CORE_OPSEQ_H_

#include <string>
#include <vector>

#include "src/common/snapshot_io.h"
#include "src/dfs/operation.h"

namespace themis {

struct OpSeq {
  std::vector<Operation> ops;

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }

  bool HasRequestOps() const;
  bool HasConfigOps() const;
  bool HasEnvFaultOps() const;

  // One operation per line, timestamp-free (the reproduction-log format).
  std::string ToString() const;
};

// Checkpoint serializers (DESIGN.md §11). RestoreOperation/RestoreOpSeq
// validate the operator tag; other operands are data, not invariants.
void SaveOperation(SnapshotWriter& writer, const Operation& op);
void RestoreOperation(SnapshotReader& reader, Operation* op);
void SaveOpSeq(SnapshotWriter& writer, const OpSeq& seq);
void RestoreOpSeq(SnapshotReader& reader, OpSeq* seq);

// Order-stable content fingerprint: FNV-1a 64 over the checkpoint encoding
// of the sequence. Two sequences collide exactly when their serialized ops
// are byte-identical, which makes the fingerprint the cross-worker dedup
// key for corpus exchange (DESIGN.md §17). Drawing no randomness, it is
// safe to compute on the hot seed-accept path without disturbing digests.
uint64_t OpSeqFingerprint(const OpSeq& seq);

}  // namespace themis

#endif  // SRC_CORE_OPSEQ_H_
