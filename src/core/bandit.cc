#include "src/core/bandit.h"

#include <cmath>

#include "src/core/strategy_registry.h"
#include "src/telemetry/metrics.h"

namespace themis {

BanditStrategy::BanditStrategy(std::vector<Arm> arms, Rng& rng,
                               BanditConfig config)
    : arms_(std::move(arms)), rng_(rng), config_(config) {}

double BanditStrategy::Reward(const ExecOutcome& outcome) {
  double reward = 0.0;
  if (outcome.new_transitions > 0) {
    reward += 1.0;
  }
  if (outcome.candidates > 0) {
    reward += 1.0;
  }
  return reward;
}

size_t BanditStrategy::ChooseArm() {
  // Pull every arm once before trusting the statistics (UCB1 init).
  for (size_t i = 0; i < arms_.size(); ++i) {
    if (arms_[i].pulls == 0) {
      return i;
    }
  }
  if (rng_.NextDouble() < config_.epsilon) {
    return rng_.PickIndex(arms_.size());
  }
  uint64_t total = 0;
  for (const Arm& arm : arms_) {
    total += arm.pulls;
  }
  double log_total = std::log(static_cast<double>(total));
  size_t best = 0;
  double best_value = -1.0;
  for (size_t i = 0; i < arms_.size(); ++i) {
    const Arm& arm = arms_[i];
    double mean = arm.reward_sum / static_cast<double>(arm.pulls);
    double bonus =
        config_.ucb_c * std::sqrt(log_total / static_cast<double>(arm.pulls));
    double value = mean + bonus;
    if (value > best_value) {  // strict: ties keep the lowest index
      best_value = value;
      best = i;
    }
  }
  return best;
}

OpSeq BanditStrategy::Next() {
  if (round_position_ == 0) {
    active_ = ChooseArm();
    THEMIS_COUNTER_INC("bandit.rounds", 1);
  }
  return arms_[active_].strategy->Next();
}

void BanditStrategy::OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) {
  Arm& arm = arms_[active_];
  arm.strategy->OnOutcome(seq, outcome);
  ++arm.pulls;
  arm.reward_sum += Reward(outcome);
  ++round_position_;
  if (round_position_ >= config_.round_length) {
    round_position_ = 0;
  }
}

bool BanditStrategy::ImportSeed(const OpSeq& seq, double score,
                                uint64_t fingerprint) {
  bool accepted = false;
  for (Arm& arm : arms_) {
    accepted |= arm.strategy->ImportSeed(seq, score, fingerprint);
  }
  return accepted;
}

const SeedPool* BanditStrategy::seed_pool() const {
  for (const Arm& arm : arms_) {
    if (const SeedPool* pool = arm.strategy->seed_pool()) {
      return pool;
    }
  }
  return nullptr;
}

void BanditStrategy::SaveState(SnapshotWriter& writer) const {
  writer.I64(static_cast<int64_t>(active_));
  writer.I64(round_position_);
  writer.U64(arms_.size());
  for (const Arm& arm : arms_) {
    writer.Str(arm.name);
    writer.U64(arm.pulls);
    writer.F64(arm.reward_sum);
    arm.strategy->SaveState(writer);
  }
}

Status BanditStrategy::RestoreState(SnapshotReader& reader) {
  int64_t active = reader.I64();
  int64_t round_position = reader.I64();
  uint64_t count = reader.U64();
  if (!reader.ok()) {
    return reader.status();
  }
  if (count != arms_.size()) {
    reader.Fail("bandit arm table truncated");
    return reader.status();
  }
  if (active < 0 || static_cast<size_t>(active) >= arms_.size() ||
      round_position < 0 || round_position >= config_.round_length) {
    reader.Fail("bandit schedule state out of range");
    return reader.status();
  }
  for (Arm& arm : arms_) {
    std::string name = reader.Str();
    uint64_t pulls = reader.U64();
    double reward_sum = reader.F64();
    if (!reader.ok()) {
      return reader.status();
    }
    if (name != arm.name) {
      reader.Fail("bandit arm table truncated");
      return reader.status();
    }
    Status arm_status = arm.strategy->RestoreState(reader);
    if (!arm_status.ok()) {
      return arm_status;
    }
    arm.pulls = pulls;
    arm.reward_sum = reward_sum;
  }
  active_ = static_cast<size_t>(active);
  round_position_ = static_cast<int>(round_position);
  return reader.status();
}

// Default arm set: the full Themis fuzzer plus the §6 baselines. The bandit
// itself is excluded (no recursion); unknown names are skipped so a build
// that drops a baseline still schedules over the rest.
namespace {

std::unique_ptr<Strategy> MakeBandit(InputModel& model, Rng& rng,
                                     const StrategyOptions& options) {
  std::vector<std::string> names = options.bandit_arms;
  if (names.empty()) {
    names = {"Themis", "Fix_req", "Fix_conf", "Alternate", "Concurrent"};
  }
  std::vector<BanditStrategy::Arm> arms;
  for (const std::string& name : names) {
    if (name == "Bandit") {
      continue;
    }
    auto made = StrategyRegistry::Instance().Make(name, model, rng, options);
    if (!made.ok()) {
      continue;
    }
    BanditStrategy::Arm arm;
    arm.name = name;
    arm.strategy = made.take();
    arms.push_back(std::move(arm));
  }
  if (arms.empty()) {
    // Degenerate configuration: fall back to a single Themis arm.
    auto themis =
        StrategyRegistry::Instance().Make("Themis", model, rng, options);
    BanditStrategy::Arm arm;
    arm.name = "Themis";
    arm.strategy = themis.take();
    arms.push_back(std::move(arm));
  }
  return std::make_unique<BanditStrategy>(std::move(arms), rng);
}

}  // namespace

THEMIS_REGISTER_STRATEGY("Bandit", MakeBandit);

}  // namespace themis
