#include "src/core/opseq.h"

namespace themis {

bool OpSeq::HasRequestOps() const {
  for (const Operation& op : ops) {
    if (ClassOf(op.kind) == OpClass::kFile) {
      return true;
    }
  }
  return false;
}

bool OpSeq::HasConfigOps() const {
  for (const Operation& op : ops) {
    if (IsConfigOp(op.kind)) {
      return true;
    }
  }
  return false;
}

std::string OpSeq::ToString() const {
  std::string out;
  for (const Operation& op : ops) {
    out += op.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace themis
