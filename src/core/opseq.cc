#include "src/core/opseq.h"

#include "src/common/strings.h"

namespace themis {

bool OpSeq::HasRequestOps() const {
  for (const Operation& op : ops) {
    if (ClassOf(op.kind) == OpClass::kFile) {
      return true;
    }
  }
  return false;
}

bool OpSeq::HasConfigOps() const {
  for (const Operation& op : ops) {
    if (IsConfigOp(op.kind)) {
      return true;
    }
  }
  return false;
}

bool OpSeq::HasEnvFaultOps() const {
  for (const Operation& op : ops) {
    if (IsEnvFaultOp(op.kind)) {
      return true;
    }
  }
  return false;
}

void SaveOperation(SnapshotWriter& writer, const Operation& op) {
  writer.U8(static_cast<uint8_t>(op.kind));
  writer.Str(op.path);
  writer.Str(op.path2);
  writer.U32(op.node);
  writer.U32(op.brick);
  writer.U64(op.size);
}

void RestoreOperation(SnapshotReader& reader, Operation* op) {
  uint8_t kind = reader.U8();
  if (reader.ok() && kind >= kTotalOpKindCount) {
    reader.Fail(Sprintf("operation kind %u out of range", kind));
    return;
  }
  op->kind = static_cast<OpKind>(kind);
  op->path = reader.Str();
  op->path2 = reader.Str();
  op->node = reader.U32();
  op->brick = reader.U32();
  op->size = reader.U64();
}

void SaveOpSeq(SnapshotWriter& writer, const OpSeq& seq) {
  writer.U64(seq.ops.size());
  for (const Operation& op : seq.ops) SaveOperation(writer, op);
}

void RestoreOpSeq(SnapshotReader& reader, OpSeq* seq) {
  // Smallest operation encoding: kind + two empty strings + ids + size.
  uint64_t count = reader.Count(1 + 8 + 8 + 4 + 4 + 8);
  seq->ops.clear();
  seq->ops.resize(static_cast<size_t>(count));
  for (Operation& op : seq->ops) {
    RestoreOperation(reader, &op);
    if (!reader.ok()) return;
  }
}

uint64_t OpSeqFingerprint(const OpSeq& seq) {
  SnapshotWriter writer;
  SaveOpSeq(writer, seq);
  return Fnv1a64(writer.buffer());
}

std::string OpSeq::ToString() const {
  std::string out;
  for (const Operation& op : ops) {
    out += op.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace themis
