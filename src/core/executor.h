// Test-case execution + the double-check protocol (§4.3).
//
// The executor drives one operation sequence through the DFS, samples the
// load state, and — when the anomaly detectors raise a candidate — performs
// the false-positive filter: call the rebalance API, wait for 'rebalance
// done' (or time out), re-execute the test case, and re-check the load
// state. Confirmed failures reset the DFS to its initial state, exactly as
// the paper's workflow (Fig. 6, step 9) prescribes.

#ifndef SRC_CORE_EXECUTOR_H_
#define SRC_CORE_EXECUTOR_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/core/opseq.h"
#include "src/coverage/coverage.h"
#include "src/coverage/model_coverage.h"
#include "src/dfs/cluster.h"
#include "src/faults/injector.h"
#include "src/monitor/detector.h"
#include "src/monitor/states_monitor.h"
#include "src/telemetry/event_log.h"

namespace themis {

// A confirmed imbalance failure report (reproduction log + labels).
struct FailureReport {
  ImbalanceDimension dimension = ImbalanceDimension::kStorage;
  double ratio = 1.0;
  SimTime confirmed_at = 0;
  OpSeq testcase;  // reproduction log: the sequence that exposed it
  // Ground-truth labels filled from the injector (the harness's analogue of
  // the paper's manual root-cause confirmation with maintainers).
  std::vector<std::string> active_faults;
  bool rebalance_hung = false;
  // Human-readable load state at confirmation (diagnosis aid).
  std::string detail;

  bool IsTruePositive() const { return !active_faults.empty(); }
  // Dedup key: failures sharing a root cause are duplicates (§5).
  std::string DedupKey() const;
};

struct ExecOutcome {
  double variance_score = 0.0;  // LVM score after execution
  double variance_gain = 0.0;   // vs. the previous test case
  size_t new_coverage = 0;      // branches newly hit by this test case
  size_t new_transitions = 0;   // balancer transition pairs newly covered
  int candidates = 0;           // detector candidates raised by this case
  int ops_executed = 0;
  int ops_ok = 0;
  std::vector<FailureReport> failures;  // confirmed (post double-check)
};

class TestCaseExecutor {
 public:
  TestCaseExecutor(DfsInterface& dfs, InputModel& model, StatesMonitor& monitor,
                   ImbalanceDetector& detector, FaultInjector* ground_truth,
                   CoverageRecorder* coverage, Rng& rng,
                   EventLog* telemetry = nullptr);

  // Balancer state-machine coverage (DESIGN.md §16); null disables the
  // transition delta in ExecOutcome. The recorder is read-only here — the
  // cluster emits the transitions.
  void set_model_coverage(ModelCoverage* model_coverage) {
    model_coverage_ = model_coverage;
  }

  // Executes `seq`, checks for imbalance, double-checks candidates, and
  // resets the DFS after a confirmed failure.
  ExecOutcome Run(const OpSeq& seq);

  // Seeds the cluster with an initial population of files ("during the
  // initialization process, Themis randomly generates a large number of
  // files", §7).
  void SeedInitialData(OpSeqGenerator& generator, int files);

  uint64_t total_ops() const { return total_ops_; }
  int confirmed_failures() const { return confirmed_failures_; }
  int candidates_raised() const { return candidates_raised_; }

  // Checkpointing (DESIGN.md §11): the running counters and the previous
  // variance score (the baseline the next outcome's gain is computed from).
  // All referenced components are restored separately.
  void SaveState(SnapshotWriter& writer) const {
    writer.F64(last_score_);
    writer.U64(total_ops_);
    writer.I64(confirmed_failures_);
    writer.I64(candidates_raised_);
  }
  Status RestoreState(SnapshotReader& reader) {
    last_score_ = reader.F64();
    total_ops_ = reader.U64();
    confirmed_failures_ = static_cast<int>(reader.I64());
    candidates_raised_ = static_cast<int>(reader.I64());
    return reader.status();
  }

 private:
  // Metadata-only probe burst used by the post-rebalance re-check.
  static constexpr int kProbeOps = 64;

  // Runs the rebalance-and-recheck protocol. Returns the confirmed report if
  // the candidate survives.
  bool DoubleCheck(const OpSeq& seq, const ImbalanceCandidate& candidate,
                   FailureReport& report);
  // Polls until 'rebalance done' or timeout; records the convergence
  // iteration count as a telemetry event.
  bool WaitForRebalanceDone();
  // Crash-recovery double-check (DESIGN.md §14): waits out any pending
  // environment crash+restart (scheduled restarts are bounded well inside
  // the rebalance timeout). Returns true iff there was a recovery to wait
  // for — the signal that a surviving candidate is a kCrashRecovery failure.
  bool WaitForEnvRecovery();
  // Drains in-flight migration, issues a fresh rebalance, waits again.
  bool RebalanceAndWait();
  void RunProbeWorkload();
  // Removes the probe burst's directories once the settled window has been
  // sampled, so repeated re-checks don't grow the namespace without bound.
  void CleanupProbeDirs();
  void ExecuteOps(const OpSeq& seq, ExecOutcome* outcome);
  void HandleConfirmed(FailureReport& report, ExecOutcome& outcome);

  DfsInterface& dfs_;
  InputModel& model_;
  StatesMonitor& monitor_;
  ImbalanceDetector& detector_;
  FaultInjector* ground_truth_;  // may be null (healthy system)
  CoverageRecorder* coverage_;   // may be null
  ModelCoverage* model_coverage_ = nullptr;  // may be null
  Rng& rng_;
  EventLog* telemetry_;          // may be null (no event collection)

  double last_score_ = 0.0;
  // Probe dirs successfully created since the last cleanup, in creation
  // order (later entries may nest under earlier ones). Always drained before
  // the next test case executes, so never serialized.
  std::vector<std::string> probe_dirs_;
  uint64_t total_ops_ = 0;
  int confirmed_failures_ = 0;
  int candidates_raised_ = 0;
};

}  // namespace themis

#endif  // SRC_CORE_EXECUTOR_H_
