// OpSeq mutation (§4.2): AFL-style replace / delete / insert at a random set
// of positions, followed by operand re-instantiation and a repair scan that
// re-binds references to files and nodes that no longer exist.

#ifndef SRC_CORE_MUTATOR_H_
#define SRC_CORE_MUTATOR_H_

#include "src/common/rng.h"
#include "src/core/generator.h"
#include "src/core/input_model.h"
#include "src/core/opseq.h"
#include "src/telemetry/event_log.h"

namespace themis {

class OpSeqMutator {
 public:
  OpSeqMutator(InputModel& model, OpSeqGenerator& generator, int max_len = 8);

  // Campaign event sink: each Mutate/MutateLight call records which mutation
  // kinds it applied. Null disables recording.
  void set_telemetry(EventLog* telemetry) { telemetry_ = telemetry; }

  // Produces a mutated copy of `seed` (always at least one mutation; length
  // stays within [1, max_len]). The result is already repaired.
  OpSeq Mutate(const OpSeq& seed, Rng& rng);

  // Light variant: exactly one mutation position — the "gradual variation"
  // used while hill-climbing a productive sequence (Finding 5).
  OpSeq MutateLight(const OpSeq& seed, Rng& rng);

  // Re-binds stale FileName / NodeId / brick operands to live ones from the
  // input model.
  void Repair(OpSeq& seq, Rng& rng);

 private:
  enum class MutationKind { kReplace, kDelete, kInsert };

  OpSeq MutateK(const OpSeq& seed, int k, Rng& rng);

  InputModel& model_;
  OpSeqGenerator& generator_;
  int max_len_;
  EventLog* telemetry_ = nullptr;
};

}  // namespace themis

#endif  // SRC_CORE_MUTATOR_H_
