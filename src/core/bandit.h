// Bandit strategy scheduling (Mallory-style greybox budget reallocation).
//
// A deterministic epsilon-greedy/UCB1 multi-armed bandit layered over
// StrategyRegistry: each arm is a registered generation strategy, pulls are
// fixed-size rounds of test cases, and the reward is novelty — a test case
// that covers new balancer state-machine transitions or raises a detector
// candidate pays its arm. Budget therefore drifts toward whichever strategy
// is currently producing new behavior, instead of splitting the campaign
// evenly. All randomness comes from the campaign Rng, so bandit campaigns
// are bit-identical across --jobs counts and kill/resume cycles
// (tests/bandit_determinism_test.cc); the arm statistics serialize into the
// v6 snapshot strategy record.

#ifndef SRC_CORE_BANDIT_H_
#define SRC_CORE_BANDIT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/strategy.h"

namespace themis {

struct BanditConfig {
  // Test cases per pull: the arm chosen at a round boundary keeps the
  // budget for this many Next() calls before the bandit re-decides.
  int round_length = 8;
  // Probability of exploring a uniformly random arm instead of the UCB
  // choice. The UCB bonus already forces under-pulled arms up, so epsilon
  // stays small.
  double epsilon = 0.1;
  // UCB1 exploration coefficient (bonus = c * sqrt(ln(total) / pulls)).
  double ucb_c = 1.0;
};

class BanditStrategy : public Strategy {
 public:
  struct Arm {
    std::string name;
    std::unique_ptr<Strategy> strategy;
    uint64_t pulls = 0;        // completed test cases charged to this arm
    double reward_sum = 0.0;
  };

  // `arms` must be non-empty; names must be unique (they key the snapshot
  // record). `rng` is the campaign RNG shared with the arms.
  BanditStrategy(std::vector<Arm> arms, Rng& rng, BanditConfig config = {});

  std::string_view name() const override { return "Bandit"; }
  OpSeq Next() override;
  void OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) override;
  void SaveState(SnapshotWriter& writer) const override;
  Status RestoreState(SnapshotReader& reader) override;
  // Fleet corpus exchange: offer the seed to every arm so whichever
  // strategies retain pools all learn it; dedup inside each pool keeps the
  // repeat offers cheap. True if any arm accepted.
  bool ImportSeed(const OpSeq& seq, double score,
                  uint64_t fingerprint) override;
  // Publishing walks the first pool-backed arm (the Themis arm in the stock
  // lineup); arms constructed pool-less report through it as nullptr.
  const SeedPool* seed_pool() const override;

  const std::vector<Arm>& arms() const { return arms_; }
  size_t active_arm() const { return active_; }

  // Reward for one outcome: 1 per test case that covered a new transition
  // pair, 1 per test case that raised a candidate (confirmed failures imply
  // a candidate, so they pay through the same term).
  static double Reward(const ExecOutcome& outcome);

 private:
  size_t ChooseArm();

  std::vector<Arm> arms_;
  Rng& rng_;
  BanditConfig config_;
  size_t active_ = 0;
  int round_position_ = 0;  // test cases already granted in this round
};

}  // namespace themis

#endif  // SRC_CORE_BANDIT_H_
