// Initial OpSeq generation (§4.2): operators drawn uniformly from the 17
// load-related operations, operands instantiated by category through the
// input model.

#ifndef SRC_CORE_GENERATOR_H_
#define SRC_CORE_GENERATOR_H_

#include "src/common/rng.h"
#include "src/core/input_model.h"
#include "src/core/opseq.h"

namespace themis {

class OpSeqGenerator {
 public:
  // `max_len` = max_n of the paper, set to 8 by Finding 5.
  explicit OpSeqGenerator(InputModel& model, int max_len = 8);

  int max_len() const { return max_len_; }

  // Probability that a generated operation is an environment-fault operator
  // (DESIGN.md §14) instead of one of the 17 load-related operators. Exactly
  // 0.0 — the default — skips the extra RNG draw entirely, so fault-free
  // campaigns keep the PR-6 draw sequence bit-for-bit.
  void set_env_fault_share(double share) { env_fault_share_ = share; }
  double env_fault_share() const { return env_fault_share_; }

  // A sequence of `len` operations (len <= 0: random in [1, max_len]).
  OpSeq Generate(Rng& rng, int len = 0);

  // One operation with a uniformly random operator.
  Operation GenerateOp(Rng& rng);

  // One operation whose operator comes from the given class.
  Operation GenerateOpOfClass(OpClass op_class, Rng& rng);

  // One operation with a fixed operator and fresh operands.
  Operation GenerateOpOfKind(OpKind kind, Rng& rng);

 private:
  InputModel& model_;
  int max_len_;
  double env_fault_share_ = 0.0;
};

}  // namespace themis

#endif  // SRC_CORE_GENERATOR_H_
