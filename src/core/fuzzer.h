// Load variance-guided fuzzing (§4.2): the Themis strategy.
//
// Each iteration dequeues a seed, mutates it, and executes it; test cases
// that enlarge the load variance across nodes, reach new coverage, or expose
// failures are fed back into the seeds pool. The guidance exploits Finding 6
// — the ultimate imbalanced state accumulates through many small variances —
// by always steering generation toward sequences that make nodes "loaded as
// differently as possible".

#ifndef SRC_CORE_FUZZER_H_
#define SRC_CORE_FUZZER_H_

#include "src/common/rng.h"
#include "src/core/generator.h"
#include "src/core/mutator.h"
#include "src/core/seed_pool.h"
#include "src/core/strategy.h"

namespace themis {

struct FuzzerConfig {
  int max_len = 8;           // max_n, from Finding 5
  int initial_seeds = 16;    // initial opSeq population
  size_t pool_capacity = 256;
  // Whether variance feedback guides seed retention. Disabled for the
  // Themis⁻ ablation (§6.3).
  bool variance_guidance = true;
  // Per-op probability of drawing an environment-fault operator; 0.0 (the
  // default) leaves the fault-free grammar untouched.
  double env_fault_share = 0.0;
  // Seed-pool energy per newly covered balancer transition pair (DESIGN.md
  // §16). 0.0 (the default) keeps energy assignment bit-identical to the
  // pure load-variance signal — golden digests stand without re-pin.
  double transition_weight = 0.0;
  // Campaign event sink (seed accepted/rejected, mutation kinds); may be null.
  EventLog* telemetry = nullptr;
};

class ThemisFuzzer : public Strategy {
 public:
  ThemisFuzzer(InputModel& model, Rng& rng, FuzzerConfig config = {});

  std::string_view name() const override { return "Themis"; }
  OpSeq Next() override;
  void OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) override;
  void SaveState(SnapshotWriter& writer) const override;
  Status RestoreState(SnapshotReader& reader) override;
  bool ImportSeed(const OpSeq& seq, double score,
                  uint64_t fingerprint) override {
    return pool_.ImportSeed(seq, score, fingerprint);
  }
  const SeedPool* seed_pool() const override { return &pool_; }

  const SeedPool& pool() const { return pool_; }
  OpSeqGenerator& generator() { return generator_; }

 private:
  FuzzerConfig config_;
  Rng& rng_;
  OpSeqGenerator generator_;
  OpSeqMutator mutator_;
  SeedPool pool_;
  int initial_remaining_;
  // Hill-climbing state: while variance keeps growing, keep applying light
  // mutations to the productive sequence ("repeatedly executing short
  // sequences of operations, with gradual variation" — Finding 5).
  OpSeq climb_seq_;
  bool climbing_ = false;
  int climb_failures_ = 0;
  int climb_length_ = 0;  // iterations in the current climb episode
};

}  // namespace themis

#endif  // SRC_CORE_FUZZER_H_
