// Self-registering strategy factory.
//
// Generation strategies register themselves by name at static-initialization
// time (THEMIS_REGISTER_STRATEGY in their .cc file); the campaign harness
// constructs them through StrategyRegistry::Make. Adding a new strategy
// therefore needs no harness edits — define the class, register it, and every
// front end (campaign, runner, CLI, benches) can name it.
//
// Each campaign job builds its own strategy instance against its own
// InputModel and Rng, so strategies never share mutable state across the
// runner's worker threads.

#ifndef SRC_CORE_STRATEGY_REGISTRY_H_
#define SRC_CORE_STRATEGY_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/input_model.h"
#include "src/core/strategy.h"
#include "src/telemetry/event_log.h"

namespace themis {

// Knobs every strategy understands; factories may ignore what they don't use.
struct StrategyOptions {
  int max_len = 8;               // max_n of Finding 5
  bool variance_guidance = true; // load-variance feedback (Themis only)
  // Probability of drawing an environment-fault operator per generated op
  // (DESIGN.md §14). 0.0 keeps the fault-free grammar and its RNG draw
  // sequence untouched; campaigns with env faults enabled pass a nonzero
  // share through to the generator.
  double env_fault_share = 0.0;
  // Seed energy per newly covered balancer state-machine transition pair
  // (DESIGN.md §16). 0.0 keeps energy assignment bit-identical to the pure
  // load-variance signal.
  double transition_weight = 0.0;
  // Arm names for the bandit scheduler ("Bandit"); empty selects the
  // default arm set (src/core/bandit.cc). Other strategies ignore this.
  std::vector<std::string> bandit_arms;
  // Campaign event sink (owned by the campaign); strategies that record
  // telemetry write here. Null = no event collection.
  EventLog* telemetry = nullptr;
};

class StrategyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Strategy>(
      InputModel& model, Rng& rng, const StrategyOptions& options)>;

  static StrategyRegistry& Instance();

  // Registers `factory` under `name`. Duplicate names keep the first
  // registration (and log a warning) so a bad link line cannot silently
  // change which implementation a table measures.
  void Register(std::string name, Factory factory);

  // Builds a fresh strategy instance, or NotFound listing the known names.
  Result<std::unique_ptr<Strategy>> Make(std::string_view name, InputModel& model,
                                         Rng& rng,
                                         const StrategyOptions& options = {}) const;

  bool Contains(std::string_view name) const;

  // Registered names in sorted order.
  std::vector<std::string> Names() const;

 private:
  std::vector<std::string> NamesLocked() const;  // requires mu_ held

  mutable std::mutex mu_;
  std::map<std::string, Factory, std::less<>> factories_;
};

class StrategyRegistrar {
 public:
  StrategyRegistrar(const char* name, StrategyRegistry::Factory factory) {
    StrategyRegistry::Instance().Register(name, std::move(factory));
  }
};

#define THEMIS_STRATEGY_CONCAT_INNER(a, b) a##b
#define THEMIS_STRATEGY_CONCAT(a, b) THEMIS_STRATEGY_CONCAT_INNER(a, b)

// File-scope registration hook: expands to a static registrar whose
// constructor runs before main(). Use once per strategy, in its .cc file.
#define THEMIS_REGISTER_STRATEGY(name, factory)             \
  static const ::themis::StrategyRegistrar THEMIS_STRATEGY_CONCAT( \
      themis_strategy_registrar_, __COUNTER__)((name), (factory))

}  // namespace themis

#endif  // SRC_CORE_STRATEGY_REGISTRY_H_
