#include "src/core/executor.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace themis {

std::string FailureReport::DedupKey() const {
  if (active_faults.empty()) {
    return "";
  }
  // Failures sharing the same root cause are duplicates; key on the root
  // cause (the first active fault).
  return active_faults.front();
}

TestCaseExecutor::TestCaseExecutor(DfsInterface& dfs, InputModel& model,
                                   StatesMonitor& monitor, ImbalanceDetector& detector,
                                   FaultInjector* ground_truth,
                                   CoverageRecorder* coverage, Rng& rng,
                                   EventLog* telemetry)
    : dfs_(dfs), model_(model), monitor_(monitor), detector_(detector),
      ground_truth_(ground_truth), coverage_(coverage), rng_(rng),
      telemetry_(telemetry) {
  model_.SyncFromDfs(dfs_);
}

void TestCaseExecutor::SeedInitialData(OpSeqGenerator& generator, int files) {
  for (int i = 0; i < files; ++i) {
    Operation op = generator.GenerateOpOfKind(OpKind::kCreate, rng_);
    OpResult result = dfs_.Execute(op);
    model_.Observe(op, result);
    ++total_ops_;
  }
  model_.SyncFromDfs(dfs_);
  // Settle: close the seeding window so the first test case sees its own
  // deltas, not lifetime counters. Kept deliberately: besides re-basing, the
  // discarded sample folds one reading into the model's EMA (part of the
  // pinned campaign trajectory), and since the push API it costs O(1).
  (void)monitor_.Sample(dfs_);
  detector_.ResetStreak();
}

void TestCaseExecutor::ExecuteOps(const OpSeq& seq, ExecOutcome* outcome) {
  for (const Operation& op : seq.ops) {
    OpResult result = dfs_.Execute(op);
    model_.Observe(op, result);
    ++total_ops_;
    if (outcome != nullptr) {
      ++outcome->ops_executed;
      if (result.status.ok()) {
        ++outcome->ops_ok;
      }
    }
  }
  model_.SyncFromDfs(dfs_);
}

ExecOutcome TestCaseExecutor::Run(const OpSeq& seq) {
  THEMIS_SPAN(testcase_span, "executor.testcase");
  ExecOutcome outcome;
  size_t coverage_before = coverage_ != nullptr ? coverage_->TotalHits() : 0;
  size_t transitions_before =
      model_coverage_ != nullptr ? model_coverage_->TransitionsCovered() : 0;
  int candidates_before = candidates_raised_;

  double score_before = last_score_;
  ExecuteOps(seq, &outcome);

  LoadVarianceSnapshot snapshot = monitor_.Sample(dfs_);
  outcome.variance_score = snapshot.Score(monitor_.weights());
  outcome.variance_gain = outcome.variance_score - last_score_;
  last_score_ = outcome.variance_score;
  if (coverage_ != nullptr) {
    outcome.new_coverage = coverage_->TotalHits() - coverage_before;
  }
  THEMIS_COUNTER_INC("executor.testcases", 1);
  THEMIS_COUNTER_INC("executor.ops", static_cast<uint64_t>(outcome.ops_executed));
  if (telemetry_ != nullptr) {
    telemetry_->Record(CampaignEventKind::kVariance, {}, score_before,
                       outcome.variance_score,
                       static_cast<uint64_t>(outcome.ops_executed));
  }

  std::optional<ImbalanceCandidate> candidate = detector_.Check(snapshot);
  if (candidate.has_value() && !dfs_.RebalanceDone()) {
    // The balancer is mid-flight: the system is *converging*, not failed.
    // Give it its chance, then re-check on a settled window; a timeout keeps
    // the candidate (that is what a hang looks like). The discarded O(1)
    // sample closes the window over the migration traffic so the probe is
    // measured alone (and advances the EMA, as the pinned digests expect).
    if (WaitForRebalanceDone()) {
      (void)monitor_.Sample(dfs_);
      RunProbeWorkload();
      LoadVarianceSnapshot settled = monitor_.Sample(dfs_);
      candidate = detector_.CheckOnce(settled);
      CleanupProbeDirs();
    }
  }
  if (candidate.has_value()) {
    ++candidates_raised_;
    THEMIS_COUNTER_INC("detector.candidates", 1);
    FailureReport report;
    report.dimension = candidate->dimension;
    report.ratio = candidate->ratio;
    bool confirmed = DoubleCheck(seq, *candidate, report);
    if (telemetry_ != nullptr) {
      telemetry_->Record(CampaignEventKind::kDoubleCheck,
                         confirmed ? (report.rebalance_hung ? "rebalance_hung"
                                                            : "confirmed")
                                   : "refuted",
                         report.ratio);
    }
    if (confirmed) {
      THEMIS_COUNTER_INC("double_check.confirmed", 1);
    } else {
      THEMIS_COUNTER_INC("double_check.refuted", 1);
    }
    if (confirmed) {
      // The refuted path never reads the opseq, so the copy (reports outlive
      // the campaign loop) is paid only for real failures.
      report.testcase = seq;
      HandleConfirmed(report, outcome);
    }
  }
  if (model_coverage_ != nullptr) {
    outcome.new_transitions =
        model_coverage_->TransitionsCovered() - transitions_before;
  }
  outcome.candidates = candidates_raised_ - candidates_before;
  return outcome;
}

bool TestCaseExecutor::WaitForRebalanceDone() {
  const DetectorConfig& config = detector_.config();
  SimTime deadline = dfs_.Now() + config.rebalance_timeout;
  uint64_t polls = 0;
  while (!dfs_.RebalanceDone() && dfs_.Now() < deadline) {
    dfs_.AdvanceTime(config.poll_interval);
    ++polls;
  }
  bool done = dfs_.RebalanceDone();
  // Convergence telemetry: how many poll iterations the balancer needed to
  // drain (or that the candidate burned before timing out).
  if (telemetry_ != nullptr && polls > 0) {
    telemetry_->Record(CampaignEventKind::kRebalanceWait, done ? "done" : "timeout",
                       0.0, 0.0, polls);
  }
  return done;
}

void TestCaseExecutor::RunProbeWorkload() {
  // A metadata-only probe burst: negligible storage/CPU cost on a healthy
  // system, so the sampled window isolates *persistent* skew (a CPU or
  // network fault keeps loading its victim on every request) from the
  // transient skew the candidate's own heavy writes produced.
  // Probe operands are deliberately NOT observed into the input model: the
  // dirs are scaffolding that CleanupProbeDirs removes, so letting the
  // generator learn (and nest later files under) them would both leak names
  // into test cases and make the re-check protocol perturb the campaign's
  // operand distribution.
  for (int i = 0; i < kProbeOps; ++i) {
    Operation op;
    op.kind = OpKind::kMkdir;
    op.path = model_.NewDirName(rng_);
    OpResult result = dfs_.Execute(op);
    ++total_ops_;
    if (result.status.ok()) {
      probe_dirs_.push_back(op.path);
    }
  }
}

void TestCaseExecutor::CleanupProbeDirs() {
  // Reverse creation order: a probe dir may have been created inside an
  // earlier one, and rmdir requires empty directories. The bursts create
  // only directories and the generator never learns their names, so reverse
  // order always leaves each dir empty by the time its rmdir runs.
  for (auto it = probe_dirs_.rbegin(); it != probe_dirs_.rend(); ++it) {
    Operation op;
    op.kind = OpKind::kRmdir;
    op.path = *it;
    (void)dfs_.Execute(op);
    ++total_ops_;
  }
  probe_dirs_.clear();
}

bool TestCaseExecutor::WaitForEnvRecovery() {
  if (!dfs_.EnvRecoveryPending()) {
    return false;
  }
  const DetectorConfig& config = detector_.config();
  SimTime deadline = dfs_.Now() + config.rebalance_timeout;
  uint64_t polls = 0;
  while (dfs_.EnvRecoveryPending() && dfs_.Now() < deadline) {
    dfs_.AdvanceTime(config.poll_interval);
    ++polls;
  }
  if (telemetry_ != nullptr && polls > 0) {
    telemetry_->Record(CampaignEventKind::kRebalanceWait,
                       dfs_.EnvRecoveryPending() ? "recovery_timeout"
                                                 : "recovered",
                       0.0, 0.0, polls);
  }
  return true;
}

bool TestCaseExecutor::RebalanceAndWait() {
  // A rebalance triggered while one is already running is a no-op, so drain
  // any in-flight round first and only then issue the explicit command —
  // otherwise the fresh plan would be built from a stale mid-round state.
  if (!WaitForRebalanceDone()) {
    return false;
  }
  (void)dfs_.TriggerRebalance();
  return WaitForRebalanceDone();
}

bool TestCaseExecutor::DoubleCheck(const OpSeq& seq, const ImbalanceCandidate& candidate,
                                   FailureReport& report) {
  // Step 0 (env faults only): if a crash+restart is still in flight, the
  // candidate was raised against a degraded cluster. Wait the recovery out
  // (restart delays are bounded at one virtual hour, well inside the
  // rebalance timeout) and run the standard protocol against the recovered
  // system. A candidate that survives is the crash-recovery failure kind:
  // the system came back up, re-ran its interrupted round, and still could
  // not settle into LBS.
  bool recovered_from_crash = WaitForEnvRecovery();

  // Step 1: explicitly call the rebalance API, then poll the 'rebalance
  // state' API until 'rebalance done'.
  if (!RebalanceAndWait()) {
    // The rebalance mechanism itself is stuck: that is a failure in its own
    // right (hang-type imbalance failures).
    report.rebalance_hung = true;
    report.ratio = candidate.ratio;
    report.confirmed_at = dfs_.Now();
    return true;
  }

  // Step 2: re-execute the test case, then let the balancer respond to it
  // once more — a healthy system must be able to return to LBS (§2.2).
  ExecuteOps(seq, nullptr);
  if (!RebalanceAndWait()) {
    report.rebalance_hung = true;
    report.ratio = candidate.ratio;
    report.confirmed_at = dfs_.Now();
    return true;
  }

  // Step 3: re-baseline the sampling window (absorbs the re-execution's own
  // transient load), probe, and re-check the load state. If background
  // migration restarted underneath the probe, its transfer load would be
  // mistaken for request skew — wait it out and probe again. Both discarded
  // samples are kept: each is an O(1) window close whose EMA fold is part of
  // the pinned campaign trajectory.
  (void)monitor_.Sample(dfs_);
  RunProbeWorkload();
  if (!dfs_.RebalanceDone()) {
    if (!WaitForRebalanceDone()) {
      report.rebalance_hung = true;
      report.ratio = candidate.ratio;
      report.confirmed_at = dfs_.Now();
      return true;
    }
    (void)monitor_.Sample(dfs_);
    RunProbeWorkload();
  }
  LoadVarianceSnapshot snapshot = monitor_.Sample(dfs_);
  std::optional<ImbalanceCandidate> recheck = detector_.CheckOnce(snapshot);
  CleanupProbeDirs();
  if (!recheck.has_value()) {
    return false;  // the balancer recovered the system: transient imbalance
  }
  if (recheck->dimension == ImbalanceDimension::kStorage) {
    // A storage skew the balancer had no room to act on is capacity
    // exhaustion, not an imbalance failure: with every target brick full,
    // even a perfect balancer cannot return the system to LBS. Refute unless
    // the cluster still had space to move data into (capacity 0 = adapter
    // does not report space; never refute on unknown).
    uint64_t capacity = dfs_.TotalCapacityBytes();
    if (capacity > 0 && dfs_.FreeSpaceBytes() < capacity / 100) {
      return false;
    }
  }
  report.dimension = recovered_from_crash ? ImbalanceDimension::kCrashRecovery
                                          : recheck->dimension;
  report.ratio = recheck->ratio;
  report.confirmed_at = dfs_.Now();
  for (const LoadSample& sample : dfs_.SampleLoad()) {
    if (sample.is_storage && sample.online && sample.capacity_bytes > 0) {
      report.detail += Sprintf("n%u:%.0f%% ", sample.node,
                               100.0 * static_cast<double>(sample.used_bytes) /
                                   static_cast<double>(sample.capacity_bytes));
    }
  }
  report.detail += "| " + dfs_.DescribeState();
  return true;
}

void TestCaseExecutor::HandleConfirmed(FailureReport& report, ExecOutcome& outcome) {
  ++confirmed_failures_;
  if (ground_truth_ != nullptr) {
    report.active_faults = ground_truth_->ActiveFaultIds();
  }
  THEMIS_LOG(kInfo, "confirmed %s imbalance (ratio %.2f) at t=%.1fmin [%s] %s",
             ImbalanceDimensionName(report.dimension), report.ratio,
             ToMinutes(report.confirmed_at),
             report.active_faults.empty() ? "no fault active"
                                          : report.active_faults.front().c_str(),
             report.detail.c_str());
  outcome.failures.push_back(report);
  // Any probe dirs from a hung-rebalance confirmation are wiped with the
  // rest of the namespace by the reset below — drop them without executing.
  probe_dirs_.clear();
  // Reset the DFS to its initial state and restart testing (Fig. 6).
  dfs_.ResetToInitial();
  model_.Reset();
  model_.SyncFromDfs(dfs_);
  monitor_.ResetWindow();
  detector_.ResetStreak();
  last_score_ = 0.0;
  if (telemetry_ != nullptr) {
    telemetry_->Record(CampaignEventKind::kClusterReset,
                       ImbalanceDimensionName(report.dimension));
  }
}

}  // namespace themis
