#include "src/core/input_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/bytes.h"
#include "src/common/strings.h"

namespace themis {

void InputModel::SyncFromDfs(const DfsInterface& dfs) {
  // Free space moves with every write, and GenerateSize consumes it — always
  // refresh it so the generated operand stream is independent of how often
  // membership changes.
  free_space_ = dfs.FreeSpaceBytes();
  uint64_t epoch = dfs.MembershipEpoch();
  if (epoch != DfsInterface::kMembershipEpochUnknown &&
      epoch == synced_membership_epoch_) {
    return;  // membership unchanged since the last pull
  }
  list_mn_ = dfs.ListMetaNodes();
  list_s_ = dfs.ListStorageNodes();
  bricks_ = dfs.ListBricks();
  synced_membership_epoch_ = epoch;
}

void InputModel::Reset() {
  files_.clear();
  file_set_.clear();
  dirs_ = {"/"};
  list_mn_.clear();
  list_s_.clear();
  bricks_.clear();
  free_space_ = 0;
  synced_membership_epoch_ = DfsInterface::kMembershipEpochUnknown;
  // name_counter_ keeps growing so names stay unique across resets.
}

void InputModel::Observe(const Operation& op, const OpResult& result) {
  switch (op.kind) {
    case OpKind::kCreate:
      if (result.status.ok()) {
        if (file_set_.insert(op.path).second) {
          files_.push_back(op.path);
        }
      }
      break;
    case OpKind::kDelete:
      if (result.status.ok() || result.status.code() == StatusCode::kNotFound) {
        if (file_set_.erase(op.path) > 0) {
          files_.erase(std::remove(files_.begin(), files_.end(), op.path), files_.end());
        }
      }
      break;
    case OpKind::kRename:
      if (result.status.ok() && file_set_.erase(op.path) > 0) {
        files_.erase(std::remove(files_.begin(), files_.end(), op.path), files_.end());
        if (file_set_.insert(op.path2).second) {
          files_.push_back(op.path2);
        }
      }
      break;
    case OpKind::kMkdir:
      if (result.status.ok()) {
        dirs_.push_back(op.path);
      }
      break;
    case OpKind::kRmdir:
      if (result.status.ok()) {
        dirs_.erase(std::remove(dirs_.begin(), dirs_.end(), op.path), dirs_.end());
        if (dirs_.empty()) {
          dirs_.push_back("/");
        }
      }
      break;
    case OpKind::kAppend:
    case OpKind::kOverwrite:
    case OpKind::kTruncateOverwrite:
      if (result.status.code() == StatusCode::kNotFound && file_set_.erase(op.path) > 0) {
        files_.erase(std::remove(files_.begin(), files_.end(), op.path), files_.end());
      }
      break;
    default:
      break;
  }
}

bool InputModel::HasDir(const std::string& path) const {
  return std::find(dirs_.begin(), dirs_.end(), path) != dirs_.end();
}

bool InputModel::HasMetaNode(NodeId node) const {
  return std::find(list_mn_.begin(), list_mn_.end(), node) != list_mn_.end();
}

bool InputModel::HasStorageNode(NodeId node) const {
  return std::find(list_s_.begin(), list_s_.end(), node) != list_s_.end();
}

bool InputModel::HasBrick(BrickId brick) const {
  return std::find(bricks_.begin(), bricks_.end(), brick) != bricks_.end();
}

std::string InputModel::ExistingFile(Rng& rng) const {
  if (files_.empty()) {
    return Sprintf("/f_missing_%llu", static_cast<unsigned long long>(rng.NextBelow(1000)));
  }
  return files_[rng.PickIndex(files_.size())];
}

std::string InputModel::NewFileName(Rng& rng) {
  const std::string& dir = dirs_[rng.PickIndex(dirs_.size())];
  std::string name = Sprintf("f%llu", static_cast<unsigned long long>(name_counter_++));
  if (dir == "/") {
    return "/" + name;
  }
  return dir + "/" + name;
}

std::string InputModel::ExistingDir(Rng& rng) const {
  return dirs_[rng.PickIndex(dirs_.size())];
}

std::string InputModel::NewDirName(Rng& rng) {
  const std::string& dir = dirs_[rng.PickIndex(dirs_.size())];
  std::string name = Sprintf("d%llu", static_cast<unsigned long long>(name_counter_++));
  if (dir == "/") {
    return "/" + name;
  }
  return dir + "/" + name;
}

NodeId InputModel::RandomMetaNode(Rng& rng) const {
  if (list_mn_.empty()) {
    return kInvalidNode;
  }
  return list_mn_[rng.PickIndex(list_mn_.size())];
}

NodeId InputModel::RandomStorageNode(Rng& rng) const {
  if (list_s_.empty()) {
    return kInvalidNode;
  }
  return list_s_[rng.PickIndex(list_s_.size())];
}

BrickId InputModel::RandomBrick(Rng& rng) const {
  if (bricks_.empty()) {
    return kInvalidBrick;
  }
  return bricks_[rng.PickIndex(bricks_.size())];
}

uint64_t InputModel::GenerateSize(Rng& rng) const {
  // 8% boundary scenarios, per "Themis creates boundary scenarios of the
  // data size": empty files, single bytes, and free-space-sized writes that
  // exercise out-of-space handling.
  if (rng.Chance(0.08)) {
    switch (rng.NextBelow(4)) {
      case 0:
        return 0;
      case 1:
        return 1;
      case 2:
        return free_space_ / 2;
      default:
        return free_space_;
    }
  }
  // Log-uniform between 1 MiB and 16 GiB: the mix of many small files with
  // occasional multi-GiB ones that makes storage load lumpy.
  double lo = std::log(static_cast<double>(kMiB));
  double hi = std::log(static_cast<double>(16 * kGiB));
  return static_cast<uint64_t>(std::exp(lo + rng.NextDouble() * (hi - lo)));
}

namespace {

void SaveStringVec(SnapshotWriter& writer, const std::vector<std::string>& v) {
  writer.U64(v.size());
  for (const std::string& s : v) writer.Str(s);
}

void RestoreStringVec(SnapshotReader& reader, std::vector<std::string>* v) {
  uint64_t count = reader.Count(8);
  v->clear();
  v->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    v->push_back(reader.Str());
  }
}

void SaveIdVec(SnapshotWriter& writer, const std::vector<uint32_t>& v) {
  writer.U64(v.size());
  for (uint32_t id : v) writer.U32(id);
}

void RestoreIdVec(SnapshotReader& reader, std::vector<uint32_t>* v) {
  uint64_t count = reader.Count(4);
  v->clear();
  v->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    v->push_back(reader.U32());
  }
}

}  // namespace

void InputModel::SaveState(SnapshotWriter& writer) const {
  SaveStringVec(writer, files_);
  SaveStringVec(writer, dirs_);
  SaveIdVec(writer, list_mn_);
  SaveIdVec(writer, list_s_);
  SaveIdVec(writer, bricks_);
  writer.U64(free_space_);
  writer.U64(name_counter_);
}

Status InputModel::RestoreState(SnapshotReader& reader) {
  RestoreStringVec(reader, &files_);
  RestoreStringVec(reader, &dirs_);
  RestoreIdVec(reader, &list_mn_);
  RestoreIdVec(reader, &list_s_);
  RestoreIdVec(reader, &bricks_);
  free_space_ = reader.U64();
  name_counter_ = reader.U64();
  file_set_.clear();
  file_set_.insert(files_.begin(), files_.end());
  synced_membership_epoch_ = DfsInterface::kMembershipEpochUnknown;
  return reader.status();
}

uint64_t InputModel::GenerateCapacityDelta(Rng& rng) const {
  // Volume expansion/reduction sizes: 10 GiB .. 240 GiB, log-uniform.
  double lo = std::log(static_cast<double>(10 * kGiB));
  double hi = std::log(static_cast<double>(240 * kGiB));
  return static_cast<uint64_t>(std::exp(lo + rng.NextDouble() * (hi - lo)));
}

}  // namespace themis
