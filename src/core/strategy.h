// The test-case generation strategy interface. Themis and the four baselines
// of §6 (Fix_req, Fix_conf, Alternate, Concurrent) plus the Themis⁻ ablation
// all implement it; the campaign harness drives them through the identical
// executor + detector so comparisons isolate the generation strategy,
// exactly as the paper's evaluation does ("we enhanced them with our
// imbalance detectors").

#ifndef SRC_CORE_STRATEGY_H_
#define SRC_CORE_STRATEGY_H_

#include <string_view>

#include "src/common/snapshot_io.h"
#include "src/core/executor.h"
#include "src/core/opseq.h"

namespace themis {

class SeedPool;

class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string_view name() const = 0;

  // The next test case to execute.
  virtual OpSeq Next() = 0;

  // Feedback from executing the test case returned by Next().
  virtual void OnOutcome(const OpSeq& seq, const ExecOutcome& outcome) = 0;

  // Checkpointing (DESIGN.md §11): strategies with schedule state (seed
  // pools, climb episodes, alternation counters) override these; stateless
  // strategies inherit the empty defaults. Save and Restore must agree on
  // the byte layout within one strategy.
  virtual void SaveState(SnapshotWriter& writer) const { (void)writer; }
  virtual Status RestoreState(SnapshotReader& reader) {
    (void)reader;
    return Status::Ok();
  }

  // Fleet corpus exchange (DESIGN.md §17): offer a seed published by another
  // worker, with the energy it carried. Pool-backed strategies forward to
  // SeedPool::ImportSeed (dedup + commutative energy merge); strategies
  // without retained state — the stateless baselines, Themis⁻ — inherit the
  // refusing default and the exchange simply finds no taker. Returns true
  // when the seed entered a pool.
  virtual bool ImportSeed(const OpSeq& seq, double score,
                          uint64_t fingerprint) {
    (void)seq;
    (void)score;
    (void)fingerprint;
    return false;
  }

  // The pool backing this strategy, or nullptr for pool-less strategies.
  // The corpus exchange walks it to publish newly accepted seeds.
  virtual const SeedPool* seed_pool() const { return nullptr; }
};

}  // namespace themis

#endif  // SRC_CORE_STRATEGY_H_
