// Metadata-inconsistency detection — the "more bug types" extension the
// paper sketches in §7: "we can adapt Themis by checking whether the
// metadata information of distributed nodes is constantly consistent".
//
// The cluster simulator gives every management node a metadata epoch (how
// far its view of the namespace has caught up; see DfsCluster's anti-entropy
// in src/dfs/cluster.h). A healthy system keeps all serving MNs within a
// small sync lag of the authoritative epoch; a metadata-desync fault freezes
// a victim's replication and the divergence grows without bound. The checker
// flags a node whose lag exceeds `max_lag` for `consecutive_needed` checks.

#ifndef SRC_MONITOR_METADATA_CHECKER_H_
#define SRC_MONITOR_METADATA_CHECKER_H_

#include <optional>

#include "src/dfs/cluster.h"

namespace themis {

struct MetadataCheckerConfig {
  // Namespace mutations a healthy replica may trail behind (anti-entropy
  // runs continuously; transient lag is normal).
  uint64_t max_lag = 64;
  int consecutive_needed = 3;
};

struct MetadataInconsistency {
  NodeId node = kInvalidNode;
  uint64_t lag = 0;  // epochs behind the authoritative namespace
  SimTime at = 0;
};

class MetadataChecker {
 public:
  explicit MetadataChecker(MetadataCheckerConfig config = {});

  // Evaluates the cluster's metadata replicas; reports the worst laggard once
  // its divergence has persisted.
  std::optional<MetadataInconsistency> Check(const DfsCluster& dfs);

  void ResetStreak() { streak_ = 0; }

 private:
  MetadataCheckerConfig config_;
  int streak_ = 0;
};

}  // namespace themis

#endif  // SRC_MONITOR_METADATA_CHECKER_H_
