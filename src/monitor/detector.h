// The Imbalance Detector (paper Fig. 9).
//
// Three anomaly detectors assess the computation, network and storage
// variance ratios against the threshold t: a Load Imbalanced State is
// declared when max(load)/mean(load) exceeds 1 + t for any component (§2.2),
// persistently across consecutive checks. A crashed node is an immediate
// candidate. Candidates are *not* failures: the executor runs the
// double-check protocol (rebalance API -> wait for 'rebalance done' ->
// re-execute the test case -> re-check) to weed out false positives.

#ifndef SRC_MONITOR_DETECTOR_H_
#define SRC_MONITOR_DETECTOR_H_

#include <optional>
#include <string>

#include "src/common/clock.h"
#include "src/monitor/load_model.h"
#include "src/telemetry/event_log.h"

namespace themis {

enum class ImbalanceDimension : uint8_t {
  kStorage = 0,
  kComputation,
  kNetwork,
  kNodeHealth,  // crash signal
  // Crash-recovery double-check (DESIGN.md §14): the cluster recovered from
  // an environment crash+restart — every node back up, interrupted round
  // re-run — and still settled outside LBS. The detector never emits this;
  // the executor rewrites a confirmed candidate's dimension after waiting
  // out the recovery window, marking "recovers to non-LBS" as its own
  // failure kind.
  kCrashRecovery,
};

const char* ImbalanceDimensionName(ImbalanceDimension dimension);

struct DetectorConfig {
  // The variance threshold t. 25% is the optimum found in §6.4 (Table 7).
  double threshold = 0.25;
  // Consecutive imbalanced checks before raising a candidate; rides out
  // transient variance the balancer has not had a chance to absorb yet.
  int consecutive_needed = 3;
  // How long the double-check waits for 'rebalance done'. Generous: a
  // healthy cluster can owe terabytes of queued recovery traffic, and a slow
  // drain is not a hang.
  SimDuration rebalance_timeout = Hours(2);
  // Polling step while waiting.
  SimDuration poll_interval = Seconds(10);
};

struct ImbalanceCandidate {
  ImbalanceDimension dimension = ImbalanceDimension::kStorage;
  double ratio = 1.0;
  SimTime at = 0;
};

class ImbalanceDetector {
 public:
  explicit ImbalanceDetector(DetectorConfig config);

  const DetectorConfig& config() const { return config_; }

  // Evaluates one snapshot; returns a candidate once the imbalance has
  // persisted for `consecutive_needed` checks (crashes immediately).
  std::optional<ImbalanceCandidate> Check(const LoadVarianceSnapshot& snapshot);

  // Single-shot evaluation (used for the post-rebalance re-check).
  std::optional<ImbalanceCandidate> CheckOnce(const LoadVarianceSnapshot& snapshot) const;

  void ResetStreak() { streak_ = 0; }

  // Checkpointing (DESIGN.md §11): only the consecutive-imbalance streak is
  // state; the config is rebuilt from the campaign configuration.
  void SaveState(SnapshotWriter& writer) const { writer.I64(streak_); }
  Status RestoreState(SnapshotReader& reader) {
    streak_ = static_cast<int>(reader.I64());
    return reader.status();
  }

  // Campaign event sink for verdict telemetry; null disables recording.
  void set_telemetry(EventLog* telemetry) { telemetry_ = telemetry; }

 private:
  std::optional<ImbalanceCandidate> Evaluate(const LoadVarianceSnapshot& snapshot,
                                             bool use_instant) const;

  DetectorConfig config_;
  int streak_ = 0;
  EventLog* telemetry_ = nullptr;
};

}  // namespace themis

#endif  // SRC_MONITOR_DETECTOR_H_
