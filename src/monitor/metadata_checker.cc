#include "src/monitor/metadata_checker.h"

namespace themis {

MetadataChecker::MetadataChecker(MetadataCheckerConfig config) : config_(config) {}

std::optional<MetadataInconsistency> MetadataChecker::Check(const DfsCluster& dfs) {
  uint64_t epoch = dfs.namespace_epoch();
  NodeId worst = kInvalidNode;
  uint64_t worst_lag = 0;
  for (const auto& [id, node] : dfs.meta_nodes()) {
    if (!node.Serving()) {
      continue;
    }
    uint64_t lag = epoch >= node.synced_epoch ? epoch - node.synced_epoch : 0;
    if (lag > worst_lag) {
      worst_lag = lag;
      worst = id;
    }
  }
  if (worst == kInvalidNode || worst_lag <= config_.max_lag) {
    streak_ = 0;
    return std::nullopt;
  }
  ++streak_;
  if (streak_ < config_.consecutive_needed) {
    return std::nullopt;
  }
  streak_ = 0;
  return MetadataInconsistency{worst, worst_lag, dfs.Now()};
}

}  // namespace themis
