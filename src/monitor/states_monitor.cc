#include "src/monitor/states_monitor.h"

#include "src/telemetry/metrics.h"

namespace themis {

StatesMonitor::StatesMonitor(LoadVarianceWeights weights, size_t history_limit)
    : weights_(weights), history_limit_(history_limit) {}

LoadVarianceSnapshot StatesMonitor::Sample(DfsInterface& dfs) {
  if (!force_scan_ && dfs.SnapshotLoadStats(latest_stats_)) {
    last_sample_streamed_ = true;
    THEMIS_COUNTER_INC("monitor.stream_samples", 1);
    latest_ = model_.UpdateFromStats(latest_stats_);
    dfs.AdvanceLoadWindow();
  } else {
    last_sample_streamed_ = false;
    THEMIS_COUNTER_INC("monitor.scan_samples", 1);
    dfs.SampleLoadInto(sample_scratch_);
    latest_stats_ = model_.OracleStats(sample_scratch_);
    latest_ = model_.UpdateFromStats(latest_stats_);
  }
  PushHistory(latest_);
  return latest_;
}

LoadVarianceSnapshot StatesMonitor::Peek(const DfsInterface& dfs) const {
  LoadStatsSnapshot stats;
  if (!force_scan_ && dfs.SnapshotLoadStats(stats)) {
    return model_.PreviewFromStats(stats);
  }
  // Non-streaming adapter: a scan here would consume the model's window
  // (OracleStats rebases previous_), so the best side-effect-free answer is
  // the last committed snapshot.
  return latest_;
}

void StatesMonitor::PushHistory(const LoadVarianceSnapshot& snapshot) {
  if (history_.size() >= history_limit_) {
    // Decimate: drop every other entry to keep long campaigns bounded.
    std::vector<LoadVarianceSnapshot> kept;
    kept.reserve(history_.size() / 2 + 1);
    for (size_t i = 0; i < history_.size(); i += 2) {
      kept.push_back(history_[i]);
    }
    history_ = std::move(kept);
  }
  history_.push_back(snapshot);
}

void StatesMonitor::ResetWindow() { model_.Reset(); }

void StatesMonitor::SaveState(SnapshotWriter& writer) const {
  model_.SaveState(writer);
  SaveLoadVarianceSnapshot(writer, latest_);
}

Status StatesMonitor::RestoreState(SnapshotReader& reader) {
  Status status = model_.RestoreState(reader);
  if (!status.ok()) return status;
  RestoreLoadVarianceSnapshot(reader, &latest_);
  return reader.status();
}

}  // namespace themis
