#include "src/monitor/states_monitor.h"

namespace themis {

StatesMonitor::StatesMonitor(LoadVarianceWeights weights, size_t history_limit)
    : weights_(weights), history_limit_(history_limit) {}

LoadVarianceSnapshot StatesMonitor::Sample(const DfsInterface& dfs) {
  dfs.SampleLoadInto(sample_scratch_);
  latest_ = model_.Update(sample_scratch_);
  if (history_.size() >= history_limit_) {
    // Decimate: drop every other entry to keep long campaigns bounded.
    std::vector<LoadVarianceSnapshot> kept;
    kept.reserve(history_.size() / 2 + 1);
    for (size_t i = 0; i < history_.size(); i += 2) {
      kept.push_back(history_[i]);
    }
    history_ = std::move(kept);
  }
  history_.push_back(latest_);
  return latest_;
}

void StatesMonitor::ResetWindow() { model_.Reset(); }

void StatesMonitor::SaveState(SnapshotWriter& writer) const {
  model_.SaveState(writer);
  SaveLoadVarianceSnapshot(writer, latest_);
}

Status StatesMonitor::RestoreState(SnapshotReader& reader) {
  Status status = model_.RestoreState(reader);
  if (!status.ok()) return status;
  RestoreLoadVarianceSnapshot(reader, &latest_);
  return reader.status();
}

}  // namespace themis
