#include "src/monitor/dynamic_threshold.h"

#include <algorithm>

namespace themis {

DynamicThresholdAdjuster::DynamicThresholdAdjuster(DynamicThresholdConfig config)
    : config_(config), current_(config.initial) {}

void DynamicThresholdAdjuster::ReportFalsePositive() {
  double next = std::min(current_ + config_.step, config_.maximum);
  if (next != current_) {
    current_ = next;
    ++adjustments_;
  }
}

void DynamicThresholdAdjuster::ReportTruePositive() {
  // True positives confirm the current setting; no adjustment. (A decay
  // toward `initial` would be possible but risks FP oscillation.)
}

DetectorConfig DynamicThresholdAdjuster::MakeDetectorConfig() const {
  DetectorConfig config;
  config.threshold = current_;
  return config;
}

}  // namespace themis
