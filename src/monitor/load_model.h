// The Load Variance Model (paper Fig. 8).
//
// Node load data has three components: computation (CPU), network (requests
// + read/write IOs) and storage. Cumulative counters are differenced against
// the previous sampling window to obtain rates; each component's imbalance
// is summarized as max/mean across the relevant node group (the LBS quantity
// of §2.2), and the weighted combination is the variance score that guides
// the fuzzer.
//
// Since the push-based streaming API (DESIGN.md §13) the model consumes a
// LoadStatsSnapshot — an O(1) aggregate reading the cluster maintains
// incrementally. The full-scan path (OracleStats over LoadSample vectors)
// survives as the differential oracle: it must produce bit-identical
// aggregates, which is why both paths share FinalizeLoadStats and all sums
// are fixed-point integers.

#ifndef SRC_MONITOR_LOAD_MODEL_H_
#define SRC_MONITOR_LOAD_MODEL_H_

#include <vector>

#include "src/common/clock.h"
#include "src/common/snapshot_io.h"
#include "src/common/stats.h"
#include "src/dfs/load_sample.h"

namespace themis {

// Weighting factors of the three variance components (§7, Table 8 sweeps the
// storage weight). Defaults to the paper's 1/3 each.
struct LoadVarianceWeights {
  double computation = 1.0 / 3.0;
  double network = 1.0 / 3.0;
  double storage = 1.0 / 3.0;
};

struct LoadVarianceSnapshot {
  SimTime taken_at = 0;
  // Per-component imbalance, each expressed so the detector's test
  // "ratio > 1 + t" is meaningful (1.0 = perfectly even).
  //  - storage: 1 + utilization spread (max - mean, fraction points) —
  //    the percentage-point semantics of real balancer thresholds;
  //  - computation / network: max/mean of windowed rates, compared within
  //    node groups (management vs storage) and reporting the worse group.
  double storage_ratio = 1.0;
  // Smoothed (EMA) ratios: stable under bursty per-window rates; persistent
  // skew (a faulty node absorbing every request) keeps them elevated, while
  // one heavy write burst decays away. These drive fuzzing guidance and the
  // detector's streak check.
  double computation_ratio = 1.0;
  double network_ratio = 1.0;
  // Raw single-window ratios: what a clean probe window shows. The
  // double-check's post-rebalance re-check uses these.
  double instant_computation_ratio = 1.0;
  double instant_network_ratio = 1.0;
  bool any_crashed = false;
  int serving_storage_nodes = 0;

  // Weighted variance score used as fuzzing feedback: sum of w_i * (ratio-1).
  double Score(const LoadVarianceWeights& weights) const;
  // The largest component ratio (what the anomaly detectors test against t).
  double MaxRatio() const;
};

// Derives the per-component instant ratios from one aggregate reading. The
// single place ratio math lives: the streaming path and the scan oracle both
// feed it, so their LoadVarianceSnapshots can only differ if the aggregates
// differ. EMA fields are left at their defaults — the model folds those in.
LoadVarianceSnapshot FinalizeLoadStats(const LoadStatsSnapshot& stats);

class LoadVarianceModel {
 public:
  LoadVarianceModel() = default;

  // Streaming path: folds one O(1) aggregate reading into the EMA state and
  // produces the current snapshot.
  LoadVarianceSnapshot UpdateFromStats(const LoadStatsSnapshot& stats);

  // Read-only variant for mid-window peeks (per-op feedback): returns what
  // UpdateFromStats would, without committing the EMA fold or the window.
  LoadVarianceSnapshot PreviewFromStats(const LoadStatsSnapshot& stats) const;

  // Debug/oracle scan path: rebuilds the aggregate reading from cumulative
  // samples, differencing against the previous call (and rebasing the
  // remembered window, mirroring DfsCluster::AdvanceLoadWindow).
  LoadStatsSnapshot OracleStats(const std::vector<LoadSample>& samples);

  // Scan-path convenience: OracleStats + UpdateFromStats. Adapters that do
  // not stream (SnapshotLoadStats returns false) land here.
  LoadVarianceSnapshot Update(const std::vector<LoadSample>& samples);

  // Forgets the previous window (after a cluster reset).
  void Reset();

  // Checkpointing (DESIGN.md §11): the previous sampling window and the EMA
  // accumulators — everything the next Update() differences against.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  // Previous-window cumulative counters, dense by NodeId (ids are small and
  // monotonic — the same flat-index idiom as the cluster's node indexes).
  struct PrevCounters {
    double cpu_seconds = 0.0;
    uint64_t net = 0;  // requests + read_ios + write_ios
    bool valid = false;
  };
  std::vector<PrevCounters> previous_;
  double ema_computation_ = 1.0;
  double ema_network_ = 1.0;
};

// max/mean helper treating tiny means as "no signal" (ratio 1).
double RatioWithFloor(const std::vector<double>& values, double min_mean);

// Checkpoint serializers for the snapshot value type.
void SaveLoadVarianceSnapshot(SnapshotWriter& writer,
                              const LoadVarianceSnapshot& snapshot);
void RestoreLoadVarianceSnapshot(SnapshotReader& reader,
                                 LoadVarianceSnapshot* snapshot);

}  // namespace themis

#endif  // SRC_MONITOR_LOAD_MODEL_H_
