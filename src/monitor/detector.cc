#include "src/monitor/detector.h"

#include "src/telemetry/metrics.h"

namespace themis {

const char* ImbalanceDimensionName(ImbalanceDimension dimension) {
  switch (dimension) {
    case ImbalanceDimension::kStorage:
      return "storage";
    case ImbalanceDimension::kComputation:
      return "computation";
    case ImbalanceDimension::kNetwork:
      return "network";
    case ImbalanceDimension::kNodeHealth:
      return "node-health";
    case ImbalanceDimension::kCrashRecovery:
      return "crash-recovery";
  }
  return "?";
}

ImbalanceDetector::ImbalanceDetector(DetectorConfig config) : config_(config) {}

std::optional<ImbalanceCandidate> ImbalanceDetector::Evaluate(
    const LoadVarianceSnapshot& snapshot, bool use_instant) const {
  if (snapshot.any_crashed) {
    return ImbalanceCandidate{ImbalanceDimension::kNodeHealth, snapshot.MaxRatio(),
                              snapshot.taken_at};
  }
  double limit = 1.0 + config_.threshold;
  double computation =
      use_instant ? snapshot.instant_computation_ratio : snapshot.computation_ratio;
  double network = use_instant ? snapshot.instant_network_ratio : snapshot.network_ratio;
  ImbalanceDimension dimension = ImbalanceDimension::kStorage;
  double worst = snapshot.storage_ratio;
  if (computation > worst) {
    worst = computation;
    dimension = ImbalanceDimension::kComputation;
  }
  if (network > worst) {
    worst = network;
    dimension = ImbalanceDimension::kNetwork;
  }
  if (worst > limit) {
    return ImbalanceCandidate{dimension, worst, snapshot.taken_at};
  }
  return std::nullopt;
}

std::optional<ImbalanceCandidate> ImbalanceDetector::CheckOnce(
    const LoadVarianceSnapshot& snapshot) const {
  // Clean single-window evaluation (post-rebalance probe windows).
  std::optional<ImbalanceCandidate> verdict = Evaluate(snapshot, /*use_instant=*/true);
  if (telemetry_ != nullptr) {
    telemetry_->Record(CampaignEventKind::kDetectorVerdict,
                       verdict.has_value() ? ImbalanceDimensionName(verdict->dimension)
                                           : "none",
                       verdict.has_value() ? verdict->ratio : snapshot.MaxRatio());
  }
  return verdict;
}

std::optional<ImbalanceCandidate> ImbalanceDetector::Check(
    const LoadVarianceSnapshot& snapshot) {
  if (snapshot.any_crashed) {
    streak_ = 0;
    THEMIS_COUNTER_INC("detector.crash_candidates", 1);
    if (telemetry_ != nullptr) {
      telemetry_->Record(CampaignEventKind::kDetectorVerdict,
                         ImbalanceDimensionName(ImbalanceDimension::kNodeHealth),
                         snapshot.MaxRatio());
    }
    return ImbalanceCandidate{ImbalanceDimension::kNodeHealth, snapshot.MaxRatio(),
                              snapshot.taken_at};
  }
  std::optional<ImbalanceCandidate> candidate = Evaluate(snapshot, /*use_instant=*/false);
  if (!candidate.has_value()) {
    streak_ = 0;
    return std::nullopt;
  }
  ++streak_;
  if (streak_ < config_.consecutive_needed) {
    return std::nullopt;
  }
  // The imbalance persisted long enough: a candidate goes to double-check.
  if (telemetry_ != nullptr) {
    telemetry_->Record(CampaignEventKind::kDetectorVerdict,
                       ImbalanceDimensionName(candidate->dimension), candidate->ratio,
                       0.0, static_cast<uint64_t>(streak_));
  }
  streak_ = 0;
  return candidate;
}

}  // namespace themis
