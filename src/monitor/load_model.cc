#include "src/monitor/load_model.h"

#include <algorithm>

#include "src/common/strings.h"

namespace themis {

namespace {
// Below these per-window totals the component carries no signal; comparing
// noise-level rates would flood the detector with spurious ratios. The
// floors are in natural units; the aggregates are fixed-point ticks, so the
// comparisons scale by the matching quantum.
constexpr double kMinCpuMean = 0.5;   // virtual seconds per window
constexpr double kMinNetMean = 16.0;  // requests+ios per window
}  // namespace

double LoadVarianceSnapshot::Score(const LoadVarianceWeights& weights) const {
  double score = 0.0;
  score += weights.computation * std::max(0.0, computation_ratio - 1.0);
  score += weights.network * std::max(0.0, network_ratio - 1.0);
  score += weights.storage * std::max(0.0, storage_ratio - 1.0);
  return score;
}

double LoadVarianceSnapshot::MaxRatio() const {
  return std::max({storage_ratio, computation_ratio, network_ratio});
}

double RatioWithFloor(const std::vector<double>& values, double min_mean) {
  if (values.size() < 2) {
    return 1.0;
  }
  double mean = Mean(values);
  if (mean < min_mean) {
    return 1.0;
  }
  double ratio = MaxOverMean(values);
  return ratio < 1.0 ? 1.0 : ratio;
}

LoadVarianceSnapshot FinalizeLoadStats(const LoadStatsSnapshot& stats) {
  LoadVarianceSnapshot snapshot;
  snapshot.taken_at = stats.taken_at;
  snapshot.any_crashed = stats.any_crashed;
  snapshot.serving_storage_nodes = static_cast<int>(stats.serving_storage_nodes);

  // Storage: utilization spread in fraction points between the hottest node
  // and the capacity-weighted fleet utilization, expressed as 1 + spread so
  // the detector's "ratio > 1 + t" test reads t as percentage points — the
  // semantics of real balancer thresholds (and the only spread a balancer
  // can drive to zero on heterogeneous-capacity clusters).
  if (stats.fraction_nodes >= 2 && stats.storage_cap > 0) {
    double fleet = static_cast<double>(stats.storage_used) /
                   static_cast<double>(stats.storage_cap);
    snapshot.storage_ratio = 1.0 + std::max(0.0, stats.max_fraction - fleet);
  } else {
    snapshot.storage_ratio = 1.0;
  }
  snapshot.instant_computation_ratio = std::max(
      stats.cpu_meta.MaxOverMeanWithFloor(kMinCpuMean * kCpuLoadQuantum),
      stats.cpu_storage.MaxOverMeanWithFloor(kMinCpuMean * kCpuLoadQuantum));
  snapshot.instant_network_ratio =
      std::max(stats.net_meta.MaxOverMeanWithFloor(kMinNetMean),
               stats.net_storage.MaxOverMeanWithFloor(kMinNetMean));
  return snapshot;
}

LoadVarianceSnapshot LoadVarianceModel::UpdateFromStats(const LoadStatsSnapshot& stats) {
  LoadVarianceSnapshot snapshot = FinalizeLoadStats(stats);
  constexpr double kAlpha = 0.3;
  ema_computation_ = (1.0 - kAlpha) * ema_computation_ +
                     kAlpha * snapshot.instant_computation_ratio;
  ema_network_ = (1.0 - kAlpha) * ema_network_ + kAlpha * snapshot.instant_network_ratio;
  snapshot.computation_ratio = ema_computation_;
  snapshot.network_ratio = ema_network_;
  return snapshot;
}

LoadVarianceSnapshot LoadVarianceModel::PreviewFromStats(
    const LoadStatsSnapshot& stats) const {
  LoadVarianceSnapshot snapshot = FinalizeLoadStats(stats);
  constexpr double kAlpha = 0.3;
  snapshot.computation_ratio = (1.0 - kAlpha) * ema_computation_ +
                               kAlpha * snapshot.instant_computation_ratio;
  snapshot.network_ratio =
      (1.0 - kAlpha) * ema_network_ + kAlpha * snapshot.instant_network_ratio;
  return snapshot;
}

LoadStatsSnapshot LoadVarianceModel::OracleStats(const std::vector<LoadSample>& samples) {
  LoadStatsSnapshot stats;
  for (const LoadSample& sample : samples) {
    stats.taken_at = sample.taken_at;
    if (sample.crashed) {
      stats.any_crashed = true;
    }
    if (!sample.online || sample.crashed) {
      continue;
    }
    if (sample.is_storage) {
      ++stats.serving_storage_nodes;
      if (sample.capacity_bytes > 0) {
        double fraction = static_cast<double>(sample.used_bytes) /
                          static_cast<double>(sample.capacity_bytes);
        ++stats.fraction_nodes;
        if (stats.fraction_nodes == 1 || fraction > stats.max_fraction) {
          stats.max_fraction = fraction;
        }
        stats.storage_used += sample.used_bytes;
        stats.storage_cap += sample.capacity_bytes;
        uint64_t ticks = QuantizeLoadDelta(fraction, kUtilizationQuantum);
        stats.frac_sum += ticks;
        stats.frac_sum_sq += static_cast<Uint128>(ticks) * ticks;
      }
    }
    uint64_t net_total = sample.requests + sample.read_ios + sample.write_ios;
    double cpu_delta = sample.cpu_seconds;
    uint64_t net_delta = net_total;
    if (sample.node < previous_.size() && previous_[sample.node].valid) {
      const PrevCounters& prev = previous_[sample.node];
      cpu_delta = sample.cpu_seconds - prev.cpu_seconds;
      net_delta = net_total >= prev.net ? net_total - prev.net : 0;
    }
    uint64_t cpu_ticks = QuantizeLoadDelta(cpu_delta, kCpuLoadQuantum);
    LoadDimAggregate& cpu_agg = sample.is_storage ? stats.cpu_storage : stats.cpu_meta;
    LoadDimAggregate& net_agg = sample.is_storage ? stats.net_storage : stats.net_meta;
    cpu_agg.sum += cpu_ticks;
    cpu_agg.sum_sq += static_cast<Uint128>(cpu_ticks) * cpu_ticks;
    cpu_agg.max_delta = std::max(cpu_agg.max_delta, cpu_ticks);
    ++cpu_agg.count;
    net_agg.sum += net_delta;
    net_agg.sum_sq += static_cast<Uint128>(net_delta) * net_delta;
    net_agg.max_delta = std::max(net_agg.max_delta, net_delta);
    ++net_agg.count;
  }

  // Rebase the remembered window for every sampled node (crashed and offline
  // ones included): this mirrors the streaming side's AdvanceLoadWindow.
  // Node ids are monotonic and never reused, so entries for nodes absent
  // from `samples` can only belong to erased tombstones — harmless.
  for (const LoadSample& sample : samples) {
    if (previous_.size() <= sample.node) {
      previous_.resize(sample.node + 1);
    }
    PrevCounters& prev = previous_[sample.node];
    prev.cpu_seconds = sample.cpu_seconds;
    prev.net = sample.requests + sample.read_ios + sample.write_ios;
    prev.valid = true;
  }
  return stats;
}

LoadVarianceSnapshot LoadVarianceModel::Update(const std::vector<LoadSample>& samples) {
  return UpdateFromStats(OracleStats(samples));
}

void LoadVarianceModel::Reset() {
  previous_.clear();
  ema_computation_ = 1.0;
  ema_network_ = 1.0;
}

void SaveLoadVarianceSnapshot(SnapshotWriter& writer,
                              const LoadVarianceSnapshot& snapshot) {
  writer.I64(snapshot.taken_at);
  writer.F64(snapshot.storage_ratio);
  writer.F64(snapshot.computation_ratio);
  writer.F64(snapshot.network_ratio);
  writer.F64(snapshot.instant_computation_ratio);
  writer.F64(snapshot.instant_network_ratio);
  writer.Bool(snapshot.any_crashed);
  writer.I64(snapshot.serving_storage_nodes);
}

void RestoreLoadVarianceSnapshot(SnapshotReader& reader,
                                 LoadVarianceSnapshot* snapshot) {
  snapshot->taken_at = reader.I64();
  snapshot->storage_ratio = reader.F64();
  snapshot->computation_ratio = reader.F64();
  snapshot->network_ratio = reader.F64();
  snapshot->instant_computation_ratio = reader.F64();
  snapshot->instant_network_ratio = reader.F64();
  snapshot->any_crashed = reader.Bool();
  snapshot->serving_storage_nodes = static_cast<int>(reader.I64());
}

void LoadVarianceModel::SaveState(SnapshotWriter& writer) const {
  uint64_t count = 0;
  for (const PrevCounters& prev : previous_) {
    if (prev.valid) {
      ++count;
    }
  }
  writer.U64(count);
  for (NodeId id = 0; id < previous_.size(); ++id) {
    const PrevCounters& prev = previous_[id];
    if (!prev.valid) {
      continue;
    }
    writer.U32(id);
    writer.F64(prev.cpu_seconds);
    writer.U64(prev.net);
  }
  writer.F64(ema_computation_);
  writer.F64(ema_network_);
}

Status LoadVarianceModel::RestoreState(SnapshotReader& reader) {
  uint64_t count = reader.Count(4 + 8 + 8);
  previous_.clear();
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    NodeId node = reader.U32();
    PrevCounters prev;
    prev.cpu_seconds = reader.F64();
    prev.net = reader.U64();
    prev.valid = true;
    if (!reader.ok()) {
      break;
    }
    if (node > (1u << 24)) {  // dense index: a corrupt id must not OOM us
      reader.Fail(Sprintf("previous-window node id %u out of range", node));
      break;
    }
    if (previous_.size() <= node) {
      previous_.resize(node + 1);
    }
    previous_[node] = prev;
  }
  ema_computation_ = reader.F64();
  ema_network_ = reader.F64();
  return reader.status();
}

}  // namespace themis
