#include "src/monitor/load_model.h"

#include <algorithm>

#include "src/common/stats.h"

namespace themis {

namespace {
// Below these per-window totals the component carries no signal; comparing
// noise-level rates would flood the detector with spurious ratios.
constexpr double kMinCpuMean = 0.5;  // virtual seconds per window
constexpr double kMinNetMean = 16.0;  // requests+ios per window
}  // namespace

double LoadVarianceSnapshot::Score(const LoadVarianceWeights& weights) const {
  double score = 0.0;
  score += weights.computation * std::max(0.0, computation_ratio - 1.0);
  score += weights.network * std::max(0.0, network_ratio - 1.0);
  score += weights.storage * std::max(0.0, storage_ratio - 1.0);
  return score;
}

double LoadVarianceSnapshot::MaxRatio() const {
  return std::max({storage_ratio, computation_ratio, network_ratio});
}

double RatioWithFloor(const std::vector<double>& values, double min_mean) {
  if (values.size() < 2) {
    return 1.0;
  }
  double mean = Mean(values);
  if (mean < min_mean) {
    return 1.0;
  }
  double ratio = MaxOverMean(values);
  return ratio < 1.0 ? 1.0 : ratio;
}

LoadVarianceSnapshot LoadVarianceModel::Update(const std::vector<LoadSample>& samples) {
  LoadVarianceSnapshot snapshot;
  std::vector<double> storage_fractions;
  std::vector<double> cpu_meta;
  std::vector<double> cpu_storage;
  std::vector<double> net_meta;
  std::vector<double> net_storage;
  uint64_t total_used = 0;
  uint64_t total_capacity = 0;

  for (const LoadSample& sample : samples) {
    snapshot.taken_at = sample.taken_at;
    if (sample.crashed) {
      snapshot.any_crashed = true;
    }
    if (!sample.online || sample.crashed) {
      continue;
    }
    if (sample.is_storage) {
      ++snapshot.serving_storage_nodes;
      if (sample.capacity_bytes > 0) {
        storage_fractions.push_back(static_cast<double>(sample.used_bytes) /
                                    static_cast<double>(sample.capacity_bytes));
        total_used += sample.used_bytes;
        total_capacity += sample.capacity_bytes;
      }
    }
    auto prev_it = previous_.find(sample.node);
    double cpu_delta = sample.cpu_seconds;
    double net_delta = static_cast<double>(sample.requests + sample.read_ios +
                                           sample.write_ios);
    if (prev_it != previous_.end()) {
      const LoadSample& prev = prev_it->second;
      cpu_delta = std::max(0.0, sample.cpu_seconds - prev.cpu_seconds);
      net_delta = std::max(0.0, net_delta - static_cast<double>(prev.requests +
                                                                prev.read_ios +
                                                                prev.write_ios));
    }
    if (sample.is_storage) {
      cpu_storage.push_back(cpu_delta);
      net_storage.push_back(net_delta);
    } else {
      cpu_meta.push_back(cpu_delta);
      net_meta.push_back(net_delta);
    }
  }

  // Storage: utilization spread in fraction points between the hottest node
  // and the capacity-weighted fleet utilization, expressed as 1 + spread so
  // the detector's "ratio > 1 + t" test reads t as percentage points — the
  // semantics of real balancer thresholds (and the only spread a balancer
  // can drive to zero on heterogeneous-capacity clusters).
  if (storage_fractions.size() >= 2 && total_capacity > 0) {
    double fleet = static_cast<double>(total_used) / static_cast<double>(total_capacity);
    double max = *std::max_element(storage_fractions.begin(), storage_fractions.end());
    snapshot.storage_ratio = 1.0 + std::max(0.0, max - fleet);
  } else {
    snapshot.storage_ratio = 1.0;
  }
  snapshot.instant_computation_ratio = std::max(RatioWithFloor(cpu_meta, kMinCpuMean),
                                                RatioWithFloor(cpu_storage, kMinCpuMean));
  snapshot.instant_network_ratio = std::max(RatioWithFloor(net_meta, kMinNetMean),
                                            RatioWithFloor(net_storage, kMinNetMean));
  constexpr double kAlpha = 0.3;
  ema_computation_ = (1.0 - kAlpha) * ema_computation_ +
                     kAlpha * snapshot.instant_computation_ratio;
  ema_network_ = (1.0 - kAlpha) * ema_network_ + kAlpha * snapshot.instant_network_ratio;
  snapshot.computation_ratio = ema_computation_;
  snapshot.network_ratio = ema_network_;

  previous_.clear();
  for (const LoadSample& sample : samples) {
    previous_[sample.node] = sample;
  }
  return snapshot;
}

void LoadVarianceModel::Reset() {
  previous_.clear();
  ema_computation_ = 1.0;
  ema_network_ = 1.0;
}

namespace {

void SaveLoadSample(SnapshotWriter& writer, const LoadSample& sample) {
  writer.U32(sample.node);
  writer.Bool(sample.is_storage);
  writer.Bool(sample.online);
  writer.Bool(sample.crashed);
  writer.U64(sample.used_bytes);
  writer.U64(sample.capacity_bytes);
  writer.U64(sample.requests);
  writer.U64(sample.read_ios);
  writer.U64(sample.write_ios);
  writer.F64(sample.cpu_seconds);
  writer.I64(sample.taken_at);
}

void RestoreLoadSample(SnapshotReader& reader, LoadSample* sample) {
  sample->node = reader.U32();
  sample->is_storage = reader.Bool();
  sample->online = reader.Bool();
  sample->crashed = reader.Bool();
  sample->used_bytes = reader.U64();
  sample->capacity_bytes = reader.U64();
  sample->requests = reader.U64();
  sample->read_ios = reader.U64();
  sample->write_ios = reader.U64();
  sample->cpu_seconds = reader.F64();
  sample->taken_at = reader.I64();
}

}  // namespace

void SaveLoadVarianceSnapshot(SnapshotWriter& writer,
                              const LoadVarianceSnapshot& snapshot) {
  writer.I64(snapshot.taken_at);
  writer.F64(snapshot.storage_ratio);
  writer.F64(snapshot.computation_ratio);
  writer.F64(snapshot.network_ratio);
  writer.F64(snapshot.instant_computation_ratio);
  writer.F64(snapshot.instant_network_ratio);
  writer.Bool(snapshot.any_crashed);
  writer.I64(snapshot.serving_storage_nodes);
}

void RestoreLoadVarianceSnapshot(SnapshotReader& reader,
                                 LoadVarianceSnapshot* snapshot) {
  snapshot->taken_at = reader.I64();
  snapshot->storage_ratio = reader.F64();
  snapshot->computation_ratio = reader.F64();
  snapshot->network_ratio = reader.F64();
  snapshot->instant_computation_ratio = reader.F64();
  snapshot->instant_network_ratio = reader.F64();
  snapshot->any_crashed = reader.Bool();
  snapshot->serving_storage_nodes = static_cast<int>(reader.I64());
}

void LoadVarianceModel::SaveState(SnapshotWriter& writer) const {
  writer.U64(previous_.size());
  for (const auto& [node, sample] : previous_) {
    SaveLoadSample(writer, sample);
  }
  writer.F64(ema_computation_);
  writer.F64(ema_network_);
}

Status LoadVarianceModel::RestoreState(SnapshotReader& reader) {
  uint64_t count = reader.Count(4 + 3 + 5 * 8 + 8 + 8);
  previous_.clear();
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    LoadSample sample;
    RestoreLoadSample(reader, &sample);
    previous_[sample.node] = sample;
  }
  ema_computation_ = reader.F64();
  ema_network_ = reader.F64();
  return reader.status();
}

}  // namespace themis
