// Dynamic threshold adjustment — the first future-work alternative of §7
// ("initiate the imbalance detector with a lower t value and incrementally
// increase it upon encountering false positives").
//
// The adjuster wraps the fixed-threshold ImbalanceDetector: it starts
// permissive (high recall), and every failure report that later proves to be
// a false positive raises the threshold one step, converging toward the
// smallest t that stops producing false alarms on this deployment.

#ifndef SRC_MONITOR_DYNAMIC_THRESHOLD_H_
#define SRC_MONITOR_DYNAMIC_THRESHOLD_H_

#include "src/monitor/detector.h"

namespace themis {

struct DynamicThresholdConfig {
  double initial = 0.20;  // start below the static optimum (recall first)
  double step = 0.025;    // raise per confirmed false positive
  double maximum = 0.40;  // never exceed (precision would cost recall)
};

class DynamicThresholdAdjuster {
 public:
  explicit DynamicThresholdAdjuster(DynamicThresholdConfig config = {});

  double current() const { return current_; }
  int adjustments() const { return adjustments_; }

  // Feedback from the campaign's ground-truth labeling (in deployment, from
  // the developer triaging the report).
  void ReportFalsePositive();
  void ReportTruePositive();

  // A detector configured at the current threshold.
  DetectorConfig MakeDetectorConfig() const;

 private:
  DynamicThresholdConfig config_;
  double current_;
  int adjustments_ = 0;
};

}  // namespace themis

#endif  // SRC_MONITOR_DYNAMIC_THRESHOLD_H_
