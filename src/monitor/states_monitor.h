// The States Monitor (paper Fig. 9): scrapes the DFS's load data, feeds the
// Load Variance Model, and keeps a bounded history of snapshots for
// trend analysis and reporting.

#ifndef SRC_MONITOR_STATES_MONITOR_H_
#define SRC_MONITOR_STATES_MONITOR_H_

#include <vector>

#include "src/dfs/cluster.h"
#include "src/monitor/load_model.h"

namespace themis {

class StatesMonitor {
 public:
  explicit StatesMonitor(LoadVarianceWeights weights, size_t history_limit = 4096);

  // Samples the DFS and returns the current snapshot.
  LoadVarianceSnapshot Sample(const DfsInterface& dfs);

  const LoadVarianceWeights& weights() const { return weights_; }
  const std::vector<LoadVarianceSnapshot>& history() const { return history_; }
  const LoadVarianceSnapshot& latest() const { return latest_; }

  // Forgets windowed state after a cluster reset.
  void ResetWindow();

  // Checkpointing (DESIGN.md §11): the variance model window and the latest
  // snapshot. history_ is a write-only diagnostic buffer (nothing reads it
  // back on the campaign path) and is deliberately NOT snapshotted.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  LoadVarianceWeights weights_;
  LoadVarianceModel model_;
  std::vector<LoadVarianceSnapshot> history_;
  size_t history_limit_;
  LoadVarianceSnapshot latest_;
  std::vector<LoadSample> sample_scratch_;  // reused across Sample() calls
};

}  // namespace themis

#endif  // SRC_MONITOR_STATES_MONITOR_H_
