// The States Monitor (paper Fig. 9): observes the DFS's load data, feeds the
// Load Variance Model, and keeps a bounded history of snapshots for
// trend analysis and reporting.
//
// Observation is push-based (DESIGN.md §13): the cluster streams windowed
// load aggregates and Sample() reads them in O(1) via SnapshotLoadStats,
// then closes the rate window. Adapters that do not stream (or the
// force-scan debug mode) fall back to the SampleLoadInto full scan; both
// paths feed the model through the same aggregate type, so they produce
// bit-identical snapshots.

#ifndef SRC_MONITOR_STATES_MONITOR_H_
#define SRC_MONITOR_STATES_MONITOR_H_

#include <vector>

#include "src/dfs/cluster.h"
#include "src/monitor/load_model.h"

namespace themis {

class StatesMonitor {
 public:
  explicit StatesMonitor(LoadVarianceWeights weights, size_t history_limit = 4096);

  // Observes the DFS, folds the reading into the variance model and closes
  // the rate window. Non-const: closing the window mutates the DFS's
  // streaming state (the scan fallback leaves the DFS untouched).
  LoadVarianceSnapshot Sample(DfsInterface& dfs);

  // O(1) mid-window reading for per-op feedback: what Sample() would return
  // right now, without closing the window or committing the EMA fold.
  // Falls back to the last committed snapshot for non-streaming adapters.
  LoadVarianceSnapshot Peek(const DfsInterface& dfs) const;

  const LoadVarianceWeights& weights() const { return weights_; }
  const std::vector<LoadVarianceSnapshot>& history() const { return history_; }
  const LoadVarianceSnapshot& latest() const { return latest_; }
  // Raw aggregates behind latest() — variance numerators for feedback.
  const LoadStatsSnapshot& latest_stats() const { return latest_stats_; }
  // True when the last Sample() used the streaming path.
  bool last_sample_streamed() const { return last_sample_streamed_; }

  // Debug mode: force the full-scan oracle path even on streaming adapters
  // (differential testing). Set before the first Sample() and leave it: the
  // scan path does not close the DFS's rate windows, so alternating modes on
  // one monitor would compare mismatched windows.
  void set_force_scan(bool force) { force_scan_ = force; }

  // Forgets windowed state after a cluster reset.
  void ResetWindow();

  // Checkpointing (DESIGN.md §11): the variance model window and the latest
  // snapshot. history_ is a write-only diagnostic buffer (nothing reads it
  // back on the campaign path) and is deliberately NOT snapshotted; ditto
  // latest_stats_, which only feeds live per-op peeks.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  void PushHistory(const LoadVarianceSnapshot& snapshot);

  LoadVarianceWeights weights_;
  LoadVarianceModel model_;
  std::vector<LoadVarianceSnapshot> history_;
  size_t history_limit_;
  LoadVarianceSnapshot latest_;
  LoadStatsSnapshot latest_stats_;
  bool force_scan_ = false;
  bool last_sample_streamed_ = false;
  std::vector<LoadSample> sample_scratch_;  // reused across scan fallbacks
};

}  // namespace themis

#endif  // SRC_MONITOR_STATES_MONITOR_H_
