#include "src/study/study_corpus.h"

namespace themis {

namespace {

// Shorthand for readability of the 53-row table below.
constexpr Flavor H = Flavor::kHdfs;
constexpr Flavor C = Flavor::kCeph;
constexpr Flavor G = Flavor::kGluster;
constexpr Flavor L = Flavor::kLeo;

constexpr Symptom PERF = Symptom::kPerfDegradation;
constexpr Symptom PART = Symptom::kPartialOutage;
constexpr Symptom LOSS = Symptom::kDataLoss;
constexpr Symptom CLUS = Symptom::kClusterFailure;
constexpr Symptom LIMI = Symptom::kLimitedImpact;

constexpr StudyRootCause MIG = StudyRootCause::kMigration;
constexpr StudyRootCause CALC = StudyRootCause::kLoadCalculation;
constexpr StudyRootCause COLL = StudyRootCause::kStateCollection;

constexpr TriggerInputs REQ = TriggerInputs::kRequestsOnly;
constexpr TriggerInputs CONF = TriggerInputs::kConfigsOnly;
constexpr TriggerInputs BOTH = TriggerInputs::kBoth;

constexpr InternalSymptom DISK = InternalSymptom::kDisk;
constexpr InternalSymptom CPU = InternalSymptom::kCpu;
constexpr InternalSymptom NET = InternalSymptom::kNetwork;

constexpr EnvGate WIN = EnvGate::kWindowsOnly;
constexpr EnvGate HW = EnvGate::kHardware;
constexpr EnvGate NOGATE = EnvGate::kNone;

}  // namespace

const std::vector<StudyRecord>& StudyCorpus() {
  // Marginals reproduce every §3 statistic: 18/16/12/7 per platform;
  // symptoms 20/9/7/7/10; causes 38/8/7; inputs 7/2/44; steps <=5: 35,
  // 6-8: 18; internal 34/11/8; 5 environment-gated failures.
  static const std::vector<StudyRecord> kCorpus = {
      // ---- HDFS (18) ----
      {"HDFS-13279", H, PART, CALC, BOTH, 7, DISK, NOGATE},  // motivating example
      {"HDFS-4261", H, PERF, MIG, BOTH, 4, DISK, WIN},       // Windows-only timeouts
      {"HDFS-11741", H, PERF, MIG, BOTH, 5, DISK, HW},       // DataEncryptionKey hardware
      {"HDFS-9034", H, PERF, MIG, REQ, 3, DISK, NOGATE},
      {"HDFS-14186", H, PERF, MIG, BOTH, 5, DISK, NOGATE},
      {"HDFS-15240", H, PERF, CALC, BOTH, 6, CPU, NOGATE},
      {"HDFS-16013", H, PERF, MIG, BOTH, 4, DISK, NOGATE},
      {"HDFS-10285", H, PERF, MIG, BOTH, 8, DISK, NOGATE},
      {"HDFS-11384", H, PART, COLL, BOTH, 6, NET, NOGATE},
      {"HDFS-13183", H, PART, MIG, BOTH, 3, DISK, NOGATE},
      {"HDFS-14476", H, LOSS, MIG, BOTH, 7, DISK, NOGATE},
      {"HDFS-8824", H, LOSS, MIG, REQ, 4, DISK, NOGATE},
      {"HDFS-12914", H, CLUS, MIG, BOTH, 6, CPU, NOGATE},
      {"HDFS-10453", H, CLUS, COLL, BOTH, 5, NET, NOGATE},
      {"HDFS-13547", H, LIMI, MIG, BOTH, 2, CPU, NOGATE},
      {"HDFS-11160", H, LIMI, MIG, CONF, 3, DISK, NOGATE},
      {"HDFS-9924", H, LIMI, CALC, BOTH, 4, CPU, NOGATE},
      {"HDFS-12790", H, LIMI, MIG, BOTH, 5, DISK, NOGATE},
      // ---- CephFS (16) ----
      {"CEPH-64333", C, CLUS, CALC, BOTH, 6, CPU, NOGATE},  // autoscaler crash
      {"CEPH-41935", C, CLUS, MIG, BOTH, 5, DISK, WIN},     // MDS crash, Windows-only
      {"CEPH-55568", C, PERF, COLL, BOTH, 4, DISK, HW},     // PGImbalance alert, hw
      {"CEPH-63014", C, PERF, MIG, BOTH, 3, NET, NOGATE},   // mclock latency
      {"CEPH-64611", C, PART, COLL, BOTH, 5, NET, NOGATE},  // inconsistent rc
      {"CEPH-65806", C, LIMI, MIG, BOTH, 5, NET, NOGATE},   // IO hang while peering
      {"CEPH-57105", C, PERF, MIG, REQ, 4, DISK, NOGATE},
      {"CEPH-52220", C, PERF, MIG, BOTH, 7, DISK, NOGATE},
      {"CEPH-58530", C, PERF, MIG, BOTH, 6, DISK, NOGATE},
      {"CEPH-62714", C, PERF, CALC, BOTH, 8, CPU, NOGATE},
      {"CEPH-49231", C, PART, MIG, BOTH, 3, DISK, NOGATE},
      {"CEPH-54296", C, PART, MIG, CONF, 2, DISK, NOGATE},
      {"CEPH-60140", C, LOSS, MIG, BOTH, 6, DISK, NOGATE},
      {"CEPH-47380", C, LOSS, MIG, REQ, 5, DISK, NOGATE},
      {"CEPH-61007", C, CLUS, MIG, BOTH, 7, CPU, NOGATE},
      {"CEPH-56873", C, LIMI, CALC, BOTH, 4, CPU, NOGATE},
      // ---- GlusterFS (12) ----
      {"GLUSTER-3356", G, PERF, MIG, BOTH, 5, DISK, NOGATE},      // Fig. 2 bug
      {"GLUSTER-3513", G, LOSS, MIG, BOTH, 6, DISK, NOGATE},      // force-migration
      {"GLUSTER-1245142", G, LIMI, COLL, BOTH, 8, DISK, NOGATE},  // 8-step sequence
      {"GLUSTER-1699", G, PART, MIG, BOTH, 4, DISK, HW},          // brick signal:11
      {"GLUSTER-2286", G, PERF, MIG, REQ, 3, DISK, NOGATE},
      {"GLUSTER-875", G, PERF, MIG, BOTH, 5, CPU, NOGATE},
      {"GLUSTER-3152", G, PERF, CALC, BOTH, 4, CPU, NOGATE},
      {"GLUSTER-2918", G, PART, MIG, BOTH, 6, NET, NOGATE},
      {"GLUSTER-1332", G, LOSS, MIG, BOTH, 5, DISK, NOGATE},
      {"GLUSTER-3044", G, CLUS, MIG, BOTH, 7, NET, NOGATE},
      {"GLUSTER-2407", G, LIMI, MIG, REQ, 2, DISK, NOGATE},
      {"GLUSTER-3489", G, LIMI, COLL, BOTH, 3, DISK, NOGATE},
      // ---- LeoFS (7) ----
      {"LEOFS-1115", L, LOSS, MIG, BOTH, 4, DISK, NOGATE},  // node delete data loss
      {"LEOFS-731", L, PERF, MIG, BOTH, 5, DISK, NOGATE},
      {"LEOFS-942", L, PERF, CALC, BOTH, 6, CPU, NOGATE},
      {"LEOFS-1003", L, PERF, MIG, REQ, 3, DISK, NOGATE},
      {"LEOFS-866", L, PART, COLL, BOTH, 7, NET, NOGATE},
      {"LEOFS-1088", L, CLUS, MIG, BOTH, 5, DISK, NOGATE},
      {"LEOFS-590", L, LIMI, MIG, BOTH, 2, DISK, NOGATE},
  };
  return kCorpus;
}

StudySummary Summarize(const std::vector<StudyRecord>& corpus) {
  StudySummary summary;
  summary.total = static_cast<int>(corpus.size());
  for (const StudyRecord& record : corpus) {
    ++summary.per_platform[static_cast<int>(record.platform)];
    ++summary.per_symptom[static_cast<int>(record.symptom)];
    ++summary.per_cause[static_cast<int>(record.cause)];
    ++summary.per_inputs[static_cast<int>(record.inputs)];
    ++summary.per_internal[static_cast<int>(record.internal)];
    if (record.steps <= 5) {
      ++summary.steps_at_most_5;
    } else {
      ++summary.steps_6_to_8;
    }
    if (record.gate != EnvGate::kNone) {
      ++summary.gated;
    }
    if (record.symptom != Symptom::kLimitedImpact) {
      ++summary.majority_impact;
    }
  }
  return summary;
}

const char* SymptomName(Symptom symptom) {
  switch (symptom) {
    case Symptom::kPerfDegradation:
      return "performance degradation";
    case Symptom::kPartialOutage:
      return "partial outage";
    case Symptom::kDataLoss:
      return "data loss";
    case Symptom::kClusterFailure:
      return "cluster failure";
    case Symptom::kLimitedImpact:
      return "limited impact";
  }
  return "?";
}

const char* StudyRootCauseName(StudyRootCause cause) {
  switch (cause) {
    case StudyRootCause::kMigration:
      return "data migration";
    case StudyRootCause::kLoadCalculation:
      return "load calculation";
    case StudyRootCause::kStateCollection:
      return "state collection";
  }
  return "?";
}

const char* TriggerInputsName(TriggerInputs inputs) {
  switch (inputs) {
    case TriggerInputs::kRequestsOnly:
      return "requests only";
    case TriggerInputs::kConfigsOnly:
      return "configs only";
    case TriggerInputs::kBoth:
      return "requests + configs";
  }
  return "?";
}

const char* InternalSymptomName(InternalSymptom internal) {
  switch (internal) {
    case InternalSymptom::kCpu:
      return "cpu";
    case InternalSymptom::kDisk:
      return "disk";
    case InternalSymptom::kNetwork:
      return "network";
  }
  return "?";
}

}  // namespace themis
