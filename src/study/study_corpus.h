// The motivation-study corpus (paper §3): 53 real-world imbalance failures
// across HDFS, CephFS, GlusterFS and LeoFS, annotated with symptom class,
// root cause, trigger inputs, trigger step count, dominant internal symptom
// and environment gates. Table 1 and Findings 1-6 are aggregations over this
// data; the historical fault registry (src/faults/historical_corpus.cc)
// derives an injectable FaultSpec from every record.

#ifndef SRC_STUDY_STUDY_CORPUS_H_
#define SRC_STUDY_STUDY_CORPUS_H_

#include <string>
#include <vector>

#include "src/dfs/types.h"

namespace themis {

// Consequence classes of §3.1 (Finding 1).
enum class Symptom : uint8_t {
  kPerfDegradation = 0,  // whole system slows down (38%)
  kPartialOutage,        // some services unavailable (17%)
  kDataLoss,             // (13%)
  kClusterFailure,       // complete cluster failure (13%)
  kLimitedImpact,        // few nodes / users affected (18%)
};

// Root causes of §3.1 (Finding 2).
enum class StudyRootCause : uint8_t {
  kMigration = 0,       // data migration logic (72%)
  kLoadCalculation,     // load calculation processing (15%)
  kStateCollection,     // load state collection (13%)
};

// Trigger input classes of §3.2 (Finding 4).
enum class TriggerInputs : uint8_t {
  kRequestsOnly = 0,  // 13%
  kConfigsOnly,       // 4%
  kBoth,              // 83%
};

// Dominant internal symptom of §3.1 (Finding 3).
enum class InternalSymptom : uint8_t {
  kDisk = 0,  // 64%
  kCpu,       // 21%
  kNetwork,   // 15%
};

// Environment gates: five historical failures are out of scope for Themis
// (two Windows-only, three tied to specific hardware) — §6.1.2.
enum class EnvGate : uint8_t {
  kNone = 0,
  kWindowsOnly,
  kHardware,
};

struct StudyRecord {
  std::string id;
  Flavor platform = Flavor::kHdfs;
  Symptom symptom = Symptom::kPerfDegradation;
  StudyRootCause cause = StudyRootCause::kMigration;
  TriggerInputs inputs = TriggerInputs::kBoth;
  int steps = 3;  // triggering sequence length (<= 8, Finding 5)
  InternalSymptom internal = InternalSymptom::kDisk;
  EnvGate gate = EnvGate::kNone;
};

// All 53 records. Marginal counts reproduce every percentage in §3.
const std::vector<StudyRecord>& StudyCorpus();

struct StudySummary {
  int total = 0;
  int per_platform[5] = {0, 0, 0, 0, 0};        // indexed by Flavor
  int per_symptom[5] = {0, 0, 0, 0, 0};         // indexed by Symptom
  int per_cause[3] = {0, 0, 0};                 // indexed by StudyRootCause
  int per_inputs[3] = {0, 0, 0};                // indexed by TriggerInputs
  int per_internal[3] = {0, 0, 0};              // indexed by InternalSymptom
  int steps_at_most_5 = 0;
  int steps_6_to_8 = 0;
  int gated = 0;

  // Finding 1: failures affecting all or a majority of nodes (everything but
  // kLimitedImpact).
  int majority_impact = 0;
};

StudySummary Summarize(const std::vector<StudyRecord>& corpus);

const char* SymptomName(Symptom symptom);
const char* StudyRootCauseName(StudyRootCause cause);
const char* TriggerInputsName(TriggerInputs inputs);
const char* InternalSymptomName(InternalSymptom internal);

}  // namespace themis

#endif  // SRC_STUDY_STUDY_CORPUS_H_
