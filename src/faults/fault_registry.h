// Registries of injectable fault specifications.

#ifndef SRC_FAULTS_FAULT_REGISTRY_H_
#define SRC_FAULTS_FAULT_REGISTRY_H_

#include <string>
#include <vector>

#include "src/faults/fault_spec.h"

namespace themis {

// The 10 previously unknown imbalance failures of Table 2, implemented as
// injectable faults in the matching flavor.
std::vector<FaultSpec> NewBugRegistry();

// Subset of NewBugRegistry for one platform.
std::vector<FaultSpec> NewBugsFor(Flavor flavor);

// Looks up one new-bug spec by id (empty id -> nullptr semantics via found).
const FaultSpec* FindNewBug(const std::string& id);

// Environment-gated bugs (DESIGN.md §14): imbalance failures whose trigger
// requires env_fault operators in the recent window. Loaded only when a
// campaign enables environment faults — since the fault-free grammar cannot
// produce env_fault operators, these bugs provably cannot trigger in a
// fault-free campaign.
std::vector<FaultSpec> EnvFaultBugRegistry();

// Subset of EnvFaultBugRegistry for one platform.
std::vector<FaultSpec> EnvFaultBugsFor(Flavor flavor);

}  // namespace themis

#endif  // SRC_FAULTS_FAULT_REGISTRY_H_
