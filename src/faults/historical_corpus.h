// Derives injectable FaultSpecs from the 53-failure study corpus (§6.1.2's
// historical-imbalance evaluation). Each study record becomes a fault whose
// trigger structure follows its annotations: trigger input classes, step
// count (deep 6-8-step failures demand rebalance rounds and accumulated
// variance), dominant internal symptom (which load dimension the effect
// skews) and environment gates (the five failures Themis cannot reach).

#ifndef SRC_FAULTS_HISTORICAL_CORPUS_H_
#define SRC_FAULTS_HISTORICAL_CORPUS_H_

#include <vector>

#include "src/faults/fault_spec.h"
#include "src/study/study_corpus.h"

namespace themis {

// All 53 historical faults.
std::vector<FaultSpec> HistoricalFaultCorpus();

// Historical faults for one platform.
std::vector<FaultSpec> HistoricalFaultsFor(Flavor flavor);

// The conversion used above, exposed for tests.
FaultSpec FaultFromStudyRecord(const StudyRecord& record);

}  // namespace themis

#endif  // SRC_FAULTS_HISTORICAL_CORPUS_H_
