#include "src/faults/fault_registry.h"

namespace themis {

namespace {

// Builds Table 2. Trigger structures follow the paper's root-cause analyses;
// see each entry's comment. Reachability per strategy (Table 3) is emergent:
// shallow single-space bugs fall to the baselines, deep mixed-space bugs
// (both input classes + repeated rebalances + accumulated variance inside a
// short window) fall only to load-variance-guided exploration.
std::vector<FaultSpec> BuildNewBugs() {
  std::vector<FaultSpec> bugs;

  {
    // #1 GlusterFS Bug#S24387 — dht.rebalancer deletes linkfiles whose hashed
    // id is still cached, destroying migrated data (the Fig. 11 case study).
    // Deep: create+rename churn, layout changes, two rebalance rounds in
    // close succession with accumulated variance.
    FaultSpec spec;
    spec.id = "Bug#S24387";
    spec.platform = Flavor::kGluster;
    spec.type = FailureType::kImbalancedStorage;
    spec.cause = StudyRootCause::kMigration;
    spec.description =
        "load imbalance due to mistakenly removing plenty of file data in "
        "dht.rebalancer, causing serious data loss";
    spec.trigger.window = 12;
    spec.trigger.min_window_ops = 6;
    spec.trigger.needs_requests = true;
    spec.trigger.needs_volume_ops = true;
    spec.trigger.required_kinds = {OpKind::kCreate, OpKind::kRename};
    spec.trigger.min_rebalance_rounds = 2;
    spec.trigger.min_variance = 0.21;
    spec.trigger.min_variance_streak = 4;
    spec.trigger.min_steadiness = 0.65;
    spec.trigger.needs_accumulation = true;
    spec.trigger.probability = 0.55;
    spec.effect = EffectKind::kLinkfileUnlink;
    spec.severity = 0.50;
    bugs.push_back(spec);
  }
  {
    // #2 GlusterFS Bug#S24389 — gf.handler mishandles batches of file
    // operations with large size differences. Pure request-space bug.
    FaultSpec spec;
    spec.id = "Bug#S24389";
    spec.platform = Flavor::kGluster;
    spec.type = FailureType::kImbalancedStorage;
    spec.cause = StudyRootCause::kMigration;
    spec.description =
        "imbalanced storage distribution after mistakenly handling plenty of "
        "file operations with large size differences in gf.handler";
    spec.trigger.window = 8;
    spec.trigger.min_window_ops = 5;
    spec.trigger.needs_requests = true;
    spec.trigger.required_kinds = {OpKind::kCreate, OpKind::kOverwrite,
                                   OpKind::kTruncateOverwrite};
    spec.trigger.min_distinct_kinds = 3;
    spec.trigger.probability = 0.12;
    spec.effect = EffectKind::kHotspotAccumulation;
    spec.severity = 0.55;
    bugs.push_back(spec);
  }
  {
    // #3 GlusterFS Bug#S25081 — null-pointer hashID crashes storage nodes
    // under frequent rebalance commands.
    FaultSpec spec;
    spec.id = "Bug#S25081";
    spec.platform = Flavor::kGluster;
    spec.type = FailureType::kCrash;
    spec.cause = StudyRootCause::kLoadCalculation;
    spec.description =
        "some nodes crash down after frequently executing load rebalance "
        "commands due to a null-pointer hashID";
    spec.trigger.window = 10;
    spec.trigger.min_window_ops = 6;
    spec.trigger.needs_requests = true;
    spec.trigger.needs_volume_ops = true;
    spec.trigger.required_kinds = {OpKind::kTruncateOverwrite, OpKind::kReduceVolume};
    spec.trigger.min_rebalance_rounds = 3;
    spec.trigger.min_rebalances_in_window = 2;
    spec.trigger.probability = 0.35;
    spec.effect = EffectKind::kCrashNode;
    spec.severity = 0.0;  // detected through the node health signal
    bugs.push_back(spec);
  }
  {
    // #4 GlusterFS Bug#S25088 — wrong assignment in gf_self_healing after
    // node changes plus a surge in client requests.
    FaultSpec spec;
    spec.id = "Bug#S25088";
    spec.platform = Flavor::kGluster;
    spec.type = FailureType::kImbalancedCpu;
    spec.cause = StudyRootCause::kMigration;
    spec.description =
        "imbalanced computation load caused by wrong assignment in "
        "gf_self_healing after nodes change and surge in client requests";
    spec.trigger.window = 12;
    spec.trigger.min_window_ops = 6;
    spec.trigger.needs_requests = true;
    spec.trigger.needs_node_ops = true;
    spec.trigger.required_kinds = {OpKind::kRemoveStorageNode, OpKind::kCreate,
                                   OpKind::kRename};
    spec.trigger.min_rebalance_rounds = 1;
    spec.trigger.min_variance = 0.21;
    spec.trigger.min_variance_streak = 4;
    spec.trigger.min_steadiness = 0.65;
    spec.trigger.needs_accumulation = true;
    spec.trigger.probability = 0.55;
    spec.effect = EffectKind::kCpuSkew;
    spec.severity = 0.60;
    bugs.push_back(spec);
  }
  {
    // #5 LeoFS Bug#S231116 — wrong rebalance_list read in leofs.cluster after
    // constant file resizing and volume changing.
    FaultSpec spec;
    spec.id = "Bug#S231116";
    spec.platform = Flavor::kLeo;
    spec.type = FailureType::kImbalancedStorage;
    spec.cause = StudyRootCause::kMigration;
    spec.description =
        "storage distributes unevenly due to wrong rebalance_list read in "
        "leofs.cluster after constant file resizing and volume changing";
    spec.trigger.window = 8;
    spec.trigger.min_window_ops = 4;
    spec.trigger.needs_requests = true;
    spec.trigger.needs_volume_ops = true;
    spec.trigger.required_kinds = {OpKind::kAppend, OpKind::kReduceVolume,
                                   OpKind::kExpandVolume};
    spec.trigger.min_rebalance_rounds = 1;
    spec.trigger.probability = 0.25;
    spec.effect = EffectKind::kWrongTargetMigration;
    spec.severity = 0.50;
    bugs.push_back(spec);
  }
  {
    // #6 LeoFS Bug#S231117 — incorrect data sync in leofs.migration after
    // nodes enter and exit frequently.
    FaultSpec spec;
    spec.id = "Bug#S231117";
    spec.platform = Flavor::kLeo;
    spec.type = FailureType::kImbalancedStorage;
    spec.cause = StudyRootCause::kMigration;
    spec.description =
        "some nodes become hotspots caused by incorrect data sync in "
        "leofs.migration after nodes enter and exit frequently";
    spec.trigger.window = 12;
    spec.trigger.min_window_ops = 6;
    spec.trigger.needs_requests = true;
    spec.trigger.needs_node_ops = true;
    spec.trigger.required_kinds = {OpKind::kAddStorageNode, OpKind::kRemoveStorageNode,
                                   OpKind::kTruncateOverwrite};
    spec.trigger.min_rebalance_rounds = 2;
    spec.trigger.min_variance = 0.17;
    spec.trigger.min_variance_streak = 4;
    spec.trigger.min_steadiness = 0.65;
    spec.trigger.needs_accumulation = true;
    spec.trigger.probability = 0.55;
    spec.effect = EffectKind::kPlanSkipsVictim;
    spec.severity = 0.45;
    bugs.push_back(spec);
  }
  {
    // #7 LeoFS Bug#S231137 — wrong rebalance measuring between two
    // LeoGateways when two nodes happen to exit.
    FaultSpec spec;
    spec.id = "Bug#S231137";
    spec.platform = Flavor::kLeo;
    spec.type = FailureType::kImbalancedNetwork;
    spec.cause = StudyRootCause::kStateCollection;
    spec.description =
        "requests distributed imbalance due to wrong rebalance measuring "
        "between two LeoGateways when two nodes happen to exit";
    spec.trigger.window = 16;
    spec.trigger.min_window_ops = 5;
    spec.trigger.needs_requests = true;
    spec.trigger.needs_node_ops = true;
    spec.trigger.required_kinds = {OpKind::kRemoveMetaNode, OpKind::kRemoveStorageNode,
                                   OpKind::kOverwrite};
    spec.trigger.min_rebalance_rounds = 1;
    spec.trigger.min_variance = 0.14;
    spec.trigger.min_variance_streak = 3;
    spec.trigger.min_steadiness = 0.65;
    spec.trigger.needs_accumulation = true;
    spec.trigger.probability = 0.55;
    spec.effect = EffectKind::kNetworkSkew;
    spec.severity = 0.70;
    bugs.push_back(spec);
  }
  {
    // #8 CephFS Bug#63890 — balancing IO hangs in replicas: some devices
    // full while others sit at 65%.
    FaultSpec spec;
    spec.id = "Bug#63890";
    spec.platform = Flavor::kCeph;
    spec.type = FailureType::kImbalancedStorage;
    spec.cause = StudyRootCause::kMigration;
    spec.description =
        "imbalanced storage where some storage devices are full while others "
        "only occupy 65% caused by balancing IO hangs in replicas";
    spec.trigger.window = 16;
    spec.trigger.min_window_ops = 6;
    spec.trigger.needs_requests = true;
    spec.trigger.needs_volume_ops = true;
    spec.trigger.required_kinds = {OpKind::kCreate, OpKind::kAddVolume,
                                   OpKind::kOverwrite};
    spec.trigger.min_rebalance_rounds = 2;
    spec.trigger.min_variance = 0.11;
    spec.trigger.min_variance_streak = 3;
    spec.trigger.min_steadiness = 0.65;
    spec.trigger.needs_accumulation = true;
    spec.trigger.probability = 0.55;
    spec.effect = EffectKind::kRebalanceHang;
    spec.severity = 0.54;  // full vs 65% ~ max/mean-1 around 0.5
    bugs.push_back(spec);
  }
  {
    // #9 HDFS Bug#20240111 — inode conflicts in balancing while many file
    // operations run during node scaling.
    FaultSpec spec;
    spec.id = "Bug#20240111";
    spec.platform = Flavor::kHdfs;
    spec.type = FailureType::kImbalancedStorage;
    spec.cause = StudyRootCause::kLoadCalculation;
    spec.description =
        "some disks become hotspots due to inode conflicts in balancing when "
        "executing many file operations within nodes scaling";
    spec.trigger.window = 8;
    spec.trigger.min_window_ops = 5;
    spec.trigger.needs_requests = true;
    spec.trigger.required_kinds = {OpKind::kRename, OpKind::kCreate, OpKind::kDelete};
    spec.trigger.min_rebalances_in_window = 1;
    spec.trigger.probability = 0.18;
    spec.effect = EffectKind::kPlanSkipsVictim;
    spec.severity = 0.42;
    bugs.push_back(spec);
  }
  {
    // #10 HDFS Bug#20240126 — NameNode traffic jams from checkpointSize
    // handling of blocks in newly generated files when replicas go offline.
    FaultSpec spec;
    spec.id = "Bug#20240126";
    spec.platform = Flavor::kHdfs;
    spec.type = FailureType::kImbalancedNetwork;
    spec.cause = StudyRootCause::kStateCollection;
    spec.description =
        "NameNodes traffic jams due to blocks in newly generated files in "
        "checkpointSize when some storage replicas went offline";
    spec.trigger.window = 12;
    spec.trigger.min_window_ops = 6;
    spec.trigger.needs_requests = true;
    spec.trigger.needs_node_ops = true;
    spec.trigger.required_kinds = {OpKind::kCreate, OpKind::kRemoveStorageNode,
                                   OpKind::kOverwrite};
    spec.trigger.min_rebalance_rounds = 1;
    spec.trigger.min_variance = 0.12;
    spec.trigger.min_variance_streak = 4;
    spec.trigger.min_steadiness = 0.65;
    spec.trigger.needs_accumulation = true;
    spec.trigger.probability = 0.55;
    spec.effect = EffectKind::kNetworkSkew;
    spec.severity = 0.80;
    bugs.push_back(spec);
  }
  {
    // #11 GeoFS Bug#GEO-1 — site drain passes the group-mean balance check:
    // every scheduling group spans sites, so draining one site's nodes keeps
    // each group's mean utilization flat while rack-level skew inside the
    // drained site grows unchecked. The balancer's per-group view declares
    // LBS; the per-node spread says otherwise. (DESIGN.md §15.)
    FaultSpec spec;
    spec.id = "Bug#GEO-1";
    spec.platform = Flavor::kGeo;
    spec.type = FailureType::kImbalancedStorage;
    spec.cause = StudyRootCause::kLoadCalculation;
    spec.description =
        "site drain leaves rack-level skew the group-mean balance check "
        "cannot see: groups span sites, so per-group means stay flat while "
        "one site's racks run hot";
    spec.trigger.window = 12;
    spec.trigger.min_window_ops = 5;
    spec.trigger.needs_requests = true;
    spec.trigger.needs_node_ops = true;
    spec.trigger.required_kinds = {OpKind::kRemoveStorageNode, OpKind::kAppend};
    spec.trigger.min_rebalance_rounds = 1;
    spec.trigger.min_variance = 0.10;
    spec.trigger.min_variance_streak = 3;
    spec.trigger.min_steadiness = 0.55;
    spec.trigger.needs_accumulation = true;
    spec.trigger.probability = 0.50;
    spec.effect = EffectKind::kPlanSkipsVictim;
    spec.severity = 0.55;
    bugs.push_back(spec);
  }
  {
    // #12 GeoFS Bug#GEO-2 — geo failover after capacity churn concentrates
    // placement: when the preferred scheduling group reports itself full,
    // the failover walk always lands on the numerically nearest group, and
    // repeated volume shrinks keep the same neighbor absorbing the spill.
    FaultSpec spec;
    spec.id = "Bug#GEO-2";
    spec.platform = Flavor::kGeo;
    spec.type = FailureType::kImbalancedStorage;
    spec.cause = StudyRootCause::kMigration;
    spec.description =
        "geo-failover spill after volume shrinks lands on the nearest "
        "scheduling group every time, piling displaced chunks onto one "
        "neighbor group's nodes";
    spec.trigger.window = 12;
    spec.trigger.min_window_ops = 6;
    spec.trigger.needs_requests = true;
    spec.trigger.needs_volume_ops = true;
    spec.trigger.required_kinds = {OpKind::kReduceVolume, OpKind::kCreate};
    spec.trigger.min_rebalance_rounds = 1;
    spec.trigger.min_variance = 0.12;
    spec.trigger.min_variance_streak = 4;
    spec.trigger.min_steadiness = 0.60;
    spec.trigger.needs_accumulation = true;
    spec.trigger.min_hotspot_touches = 2;
    spec.trigger.probability = 0.50;
    spec.effect = EffectKind::kHotspotAccumulation;
    spec.severity = 0.50;
    bugs.push_back(spec);
  }

  return bugs;
}

// Environment-gated bugs: each trigger sets needs_env_faults, so the spec is
// unsatisfiable without kEnv* operators in the window — the reachability
// argument tests/env_fault_test.cc checks. Windows are kept wide and the
// remaining conditions loose: the experiment these support is "fault
// schedule reaches code no workload can", not trigger-depth calibration.
std::vector<FaultSpec> BuildEnvFaultBugs() {
  std::vector<FaultSpec> bugs;

  {
    // GlusterFS: the rebalance crash-recovery path replays its journal of
    // completed moves; entries recorded after the last sync are re-applied
    // onto the original donor, re-concentrating data it had already shed.
    FaultSpec spec;
    spec.id = "Bug#ENV-G1";
    spec.platform = Flavor::kGluster;
    spec.type = FailureType::kImbalancedStorage;
    spec.cause = StudyRootCause::kMigration;
    spec.description =
        "rebalance journal replay after a mid-round crash re-applies "
        "unsynced moves onto the donor, re-growing the hotspot";
    spec.trigger.window = 16;
    spec.trigger.min_window_ops = 3;
    spec.trigger.needs_env_faults = true;
    spec.trigger.required_kinds = {OpKind::kEnvCrashNode};
    spec.trigger.min_rebalance_rounds = 1;
    spec.trigger.probability = 0.45;
    spec.effect = EffectKind::kHotspotAccumulation;
    spec.severity = 0.50;
    bugs.push_back(spec);
  }
  {
    // HDFS: the balancer's datanode report RPCs ride a lossy link; a lost
    // report makes getLiveDatanodeStorageReport omit the hotspot, so every
    // plan built during the loss window skips its intended victim.
    FaultSpec spec;
    spec.id = "Bug#ENV-H1";
    spec.platform = Flavor::kHdfs;
    spec.type = FailureType::kImbalancedStorage;
    spec.cause = StudyRootCause::kStateCollection;
    spec.description =
        "lost datanode storage reports drop the hotspot from the balancer's "
        "view; plans built during the loss window never drain it";
    spec.trigger.window = 16;
    spec.trigger.min_window_ops = 3;
    spec.trigger.needs_env_faults = true;
    spec.trigger.required_kinds = {OpKind::kEnvMsgLoss};
    spec.trigger.probability = 0.40;
    spec.effect = EffectKind::kPlanSkipsVictim;
    spec.severity = 0.45;
    bugs.push_back(spec);
  }
  {
    // CephFS: dev_perf-based target scoring inverts under a degraded disk —
    // the throttled OSD reports a shorter commit queue, scores as idle, and
    // the balancer steers data onto the slowest device.
    FaultSpec spec;
    spec.id = "Bug#ENV-C1";
    spec.platform = Flavor::kCeph;
    spec.type = FailureType::kImbalancedStorage;
    spec.cause = StudyRootCause::kLoadCalculation;
    spec.description =
        "degraded-disk throttling shrinks the OSD's reported queue depth; "
        "perf-weighted target selection migrates data onto the slow device";
    spec.trigger.window = 16;
    spec.trigger.min_window_ops = 3;
    spec.trigger.needs_env_faults = true;
    spec.trigger.required_kinds = {OpKind::kEnvSlowDisk};
    spec.trigger.min_rebalance_rounds = 1;
    spec.trigger.probability = 0.40;
    spec.effect = EffectKind::kWrongTargetMigration;
    spec.severity = 0.50;
    bugs.push_back(spec);
  }
  {
    // LeoFS: duplicated queue messages double-count a gateway's request
    // tally in the ring-weight exchange, so the consistent-hash weights skew
    // the request stream toward one gateway.
    FaultSpec spec;
    spec.id = "Bug#ENV-L1";
    spec.platform = Flavor::kLeo;
    spec.type = FailureType::kImbalancedNetwork;
    spec.cause = StudyRootCause::kStateCollection;
    spec.description =
        "duplicated ring-weight messages double-count request tallies, "
        "skewing the gateway hash weights toward one node";
    spec.trigger.window = 16;
    spec.trigger.min_window_ops = 3;
    spec.trigger.needs_env_faults = true;
    spec.trigger.required_kinds = {OpKind::kEnvMsgDuplicate};
    spec.trigger.probability = 0.40;
    spec.effect = EffectKind::kNetworkSkew;
    spec.severity = 0.60;
    bugs.push_back(spec);
  }
  {
    // GeoFS: a crashed node's scheduling-group slot is refilled by the next
    // admission; when the crashed node restarts, the group is over-capacity
    // and the placement weights double-count it — new data keeps landing on
    // the refilled slot's node while the restarted one never refills.
    FaultSpec spec;
    spec.id = "Bug#ENV-GEO1";
    spec.platform = Flavor::kGeo;
    spec.type = FailureType::kImbalancedStorage;
    spec.cause = StudyRootCause::kStateCollection;
    spec.description =
        "crash-restart races the scheduling-group refill: the group comes "
        "back over-capacity and placement keeps loading the refilled slot";
    spec.trigger.window = 16;
    spec.trigger.min_window_ops = 3;
    spec.trigger.needs_env_faults = true;
    spec.trigger.required_kinds = {OpKind::kEnvCrashNode};
    spec.trigger.probability = 0.45;
    spec.effect = EffectKind::kHotspotAccumulation;
    spec.severity = 0.50;
    bugs.push_back(spec);
  }

  return bugs;
}

}  // namespace

std::vector<FaultSpec> NewBugRegistry() {
  static const std::vector<FaultSpec> kBugs = BuildNewBugs();
  return kBugs;
}

std::vector<FaultSpec> NewBugsFor(Flavor flavor) {
  std::vector<FaultSpec> out;
  for (const FaultSpec& spec : NewBugRegistry()) {
    if (spec.platform == flavor) {
      out.push_back(spec);
    }
  }
  return out;
}

std::vector<FaultSpec> EnvFaultBugRegistry() {
  static const std::vector<FaultSpec> kBugs = BuildEnvFaultBugs();
  return kBugs;
}

std::vector<FaultSpec> EnvFaultBugsFor(Flavor flavor) {
  std::vector<FaultSpec> out;
  for (const FaultSpec& spec : EnvFaultBugRegistry()) {
    if (spec.platform == flavor) {
      out.push_back(spec);
    }
  }
  return out;
}

const FaultSpec* FindNewBug(const std::string& id) {
  static const std::vector<FaultSpec> kBugs = NewBugRegistry();
  for (const FaultSpec& spec : kBugs) {
    if (spec.id == id) {
      return &spec;
    }
  }
  return nullptr;
}

}  // namespace themis
