// Deterministic environment-fault injection (DESIGN.md §14).
//
// The third Themis input dimension after file/config operations: the
// *environment* turning hostile. Where FaultHooks plant bugs inside the
// balancer's own code, EnvFaultInjector perturbs the world the balancer runs
// in — the migration transport loses, reorders, duplicates and corrupts
// messages; disks degrade; nodes crash mid-rebalance and restart later. Every
// effect is driven by one owned Rng and by virtual time only, so a fault
// schedule replays bit-identically for a fixed seed and serializes into the
// campaign snapshot like every other component.
//
// The schedule itself is part of the fuzzed input: kEnv* operators in an
// opSeq call ExecuteEnvOp, which arms rates and events on this injector. A
// campaign without env faults never attaches the injector to the cluster, so
// the fault-free execution path — including its RNG draw sequence — is
// untouched (tests/golden_digest_test.cc pins this).

#ifndef SRC_FAULTS_ENV_FAULT_H_
#define SRC_FAULTS_ENV_FAULT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/snapshot_io.h"
#include "src/dfs/cluster.h"

namespace themis {

// Operand bounds of the env-fault grammar live with the grammar itself
// (src/dfs/operation.h): the generator draws inside them, the mutator's
// repair pass clamps to them, and the injector clamps replayed logs.
// How long one kEnvSlowDisk operator degrades its node.
inline constexpr SimDuration kEnvSlowDiskWindow = Hours(1);

// Counters of fault effects, incremented at verdict time (when the injector
// rules on a concrete message/heartbeat/window), not at arming time. A
// message may draw a reorder verdict more than once — each rotation through
// the transport queue is its own adverse event.
struct EnvFaultStats {
  uint64_t messages_dropped = 0;
  uint64_t messages_reordered = 0;
  uint64_t messages_duplicated = 0;
  uint64_t messages_corrupted = 0;
  uint64_t heartbeats_dropped = 0;
  uint64_t slow_disk_windows = 0;
  uint64_t node_crashes = 0;
  uint64_t node_restarts = 0;

  bool operator==(const EnvFaultStats&) const = default;
};

class EnvFaultInjector : public EnvFaultRuntime {
 public:
  explicit EnvFaultInjector(uint64_t seed) : rng_(seed) {}

  // ---- EnvFaultRuntime ----
  OpResult ExecuteEnvOp(DfsCluster& dfs, const Operation& op) override;
  MessageVerdict OnMigrationMessage(DfsCluster& dfs,
                                    const ChunkMove& move) override;
  bool DropHeartbeat(DfsCluster& dfs, NodeId node) override;
  double DiskSlowdown(const DfsCluster& dfs, NodeId node) const override;
  void OnClockAdvanced(DfsCluster& dfs, SimTime now) override;
  bool RecoveryPending(const DfsCluster& dfs) const override;
  void OnClusterReset(DfsCluster& dfs) override;

  // ---- introspection (tests, campaign reporting) ----
  const EnvFaultStats& stats() const { return stats_; }
  uint64_t msg_loss_permille() const { return msg_loss_permille_; }
  uint64_t msg_reorder_permille() const { return msg_reorder_permille_; }
  uint64_t msg_duplicate_permille() const { return msg_duplicate_permille_; }
  uint64_t msg_corrupt_permille() const { return msg_corrupt_permille_; }
  size_t active_slow_disks() const { return slow_disks_.size(); }
  size_t pending_restarts() const { return restarts_.size(); }

  // Checkpointing (DESIGN.md §11/§14, snapshot format v4). Restore validates
  // every record against the grammar bounds above: a malformed fault record
  // (rate beyond 500/1000, factor outside [110%,1000%], negative times, unsorted
  // restart schedule) fails the snapshot instead of arming an
  // out-of-grammar schedule.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  // One degraded-disk window: `percent`/100 is the bandwidth-cost factor
  // until virtual instant `until`.
  struct SlowDisk {
    uint64_t percent = 0;
    SimTime until = 0;
  };
  // One scheduled crash-recovery: node `node` restarts at instant `at`.
  // `seq` breaks ties so simultaneous restarts fire in scheduling order.
  struct ScheduledRestart {
    SimTime at = 0;
    NodeId node = kInvalidNode;
    uint64_t seq = 0;
  };

  bool AnyMessageFaultArmed() const {
    return msg_loss_permille_ != 0 || msg_reorder_permille_ != 0 ||
           msg_duplicate_permille_ != 0 || msg_corrupt_permille_ != 0;
  }

  // Message-fault rates in thousandths, each at most kEnvMaxRatePermille.
  uint64_t msg_loss_permille_ = 0;
  uint64_t msg_reorder_permille_ = 0;
  uint64_t msg_duplicate_permille_ = 0;
  uint64_t msg_corrupt_permille_ = 0;
  std::map<NodeId, SlowDisk> slow_disks_;
  // Sorted by (at, seq); OnClockAdvanced pops the due prefix.
  std::vector<ScheduledRestart> restarts_;
  uint64_t next_restart_seq_ = 0;
  EnvFaultStats stats_;
  Rng rng_;
};

}  // namespace themis

#endif  // SRC_FAULTS_ENV_FAULT_H_
