#include "src/faults/injector.h"

#include <algorithm>
#include <bit>

#include "src/common/bytes.h"
#include "src/common/log.h"
#include "src/common/strings.h"

namespace themis {

namespace {

constexpr size_t kHistoryLimit = 16;
constexpr size_t kSteadinessWindow = 8;
// Per-operation CPU skew injected by an active kCpuSkew fault (virtual secs).
constexpr double kCpuSkewPerOp = 0.45;
// Per-operation request skew injected by an active kNetworkSkew fault.
constexpr uint64_t kNetSkewRequestsPerOp = 4;
constexpr uint64_t kNetSkewIosPerOp = 6;
// Fraction of rebalance moves an active kMigrationDataLoss fault destroys.
constexpr double kDataLossRate = 0.5;

}  // namespace

FaultInjector::FaultInjector(std::vector<FaultSpec> specs, uint64_t seed)
    : rng_(seed ^ 0x5eedfa17ULL) {
  faults_.reserve(specs.size());
  for (FaultSpec& spec : specs) {
    FaultRuntime runtime;
    runtime.spec = std::move(spec);
    faults_.push_back(std::move(runtime));
  }
}

bool FaultInjector::EffectTargetsStorage(EffectKind effect) const {
  switch (effect) {
    case EffectKind::kHotspotAccumulation:
    case EffectKind::kMigrationDataLoss:
    case EffectKind::kLinkfileUnlink:
    case EffectKind::kPlanSkipsVictim:
    case EffectKind::kWrongTargetMigration:
    case EffectKind::kRebalanceHang:
      return true;
    case EffectKind::kCpuSkew:
    case EffectKind::kNetworkSkew:
    case EffectKind::kCrashNode:
    case EffectKind::kMetadataDesync:
      return false;
  }
  return false;
}

bool FaultInjector::SuppressMetadataSync(const DfsCluster& dfs, NodeId node) {
  (void)dfs;
  for (const FaultRuntime& fault : faults_) {
    if (fault.active && fault.spec.effect == EffectKind::kMetadataDesync &&
        fault.victim_node == node) {
      return true;
    }
  }
  return false;
}

void FaultInjector::OnOperationExecuted(DfsCluster& dfs, const Operation& op,
                                        const OpResult& result) {
  (void)result;
  recent_ops_.push_back(op.kind);
  rounds_at_op_.push_back(dfs.completed_rebalance_rounds());
  imbalance_at_op_.push_back(dfs.StorageImbalance());
  hot_touch_at_op_.push_back(TouchesHottestBrick(dfs, op));
  while (recent_ops_.size() > kHistoryLimit) {
    recent_ops_.pop_front();
    rounds_at_op_.pop_front();
    imbalance_at_op_.pop_front();
    hot_touch_at_op_.pop_front();
  }
  UpdateVarianceStreaks(dfs);
  EvaluateTriggers(dfs);
  ApplyContinuousEffects(dfs);
}

bool FaultInjector::TouchesHottestBrick(const DfsCluster& dfs, const Operation& op) const {
  // Counts only *growth* pressure on the hotspot: a size-changing request
  // whose write lands on the currently hottest brick (appends extend the
  // file's tail in place). Random operand choice hits this with probability
  // ~replication/#bricks per resize op; a workload steered by variance
  // feedback hits it on nearly every iteration.
  if (op.kind != OpKind::kAppend && op.kind != OpKind::kOverwrite &&
      op.kind != OpKind::kTruncateOverwrite) {
    return false;
  }
  Result<FileId> file = dfs.tree().FileIdOf(op.path);
  if (!file.ok()) {
    return false;
  }
  // Maintained per-group maxima — identical to a strict-max scan over
  // ServingBricks(), without the per-op fleet walk.
  BrickId hottest = dfs.HottestServingBrick();
  if (hottest == kInvalidBrick) {
    return false;
  }
  auto layout_it = dfs.file_layouts().find(*file);
  if (layout_it == dfs.file_layouts().end() || layout_it->second.chunks.empty()) {
    return false;
  }
  return layout_it->second.chunks.back().HasReplicaOn(hottest);
}

double FaultInjector::Steadiness() const {
  if (recent_ops_.size() < 2 * kSteadinessWindow) {
    return 0.0;
  }
  // Multiset overlap between the two most recent 8-op windows.
  int counts[kTotalOpKindCount] = {0};
  size_t start = recent_ops_.size() - 2 * kSteadinessWindow;
  for (size_t i = 0; i < kSteadinessWindow; ++i) {
    ++counts[static_cast<int>(recent_ops_[start + i])];
  }
  int overlap = 0;
  for (size_t i = 0; i < kSteadinessWindow; ++i) {
    int kind = static_cast<int>(recent_ops_[start + kSteadinessWindow + i]);
    if (counts[kind] > 0) {
      --counts[kind];
      ++overlap;
    }
  }
  return static_cast<double>(overlap) / static_cast<double>(kSteadinessWindow);
}

void FaultInjector::UpdateVarianceStreaks(const DfsCluster& dfs) {
  double imbalance = dfs.StorageImbalance();
  for (FaultRuntime& fault : faults_) {
    if (fault.spec.trigger.min_variance_streak <= 0) {
      continue;
    }
    if (imbalance >= fault.spec.trigger.min_variance) {
      if (fault.variance_streak == 0) {
        fault.rounds_at_streak_start = dfs.completed_rebalance_rounds();
      }
      ++fault.variance_streak;
    } else {
      fault.variance_streak = 0;
    }
  }
}

bool FaultInjector::TriggerSatisfied(const FaultRuntime& fault,
                                     const DfsCluster& dfs) const {
  const TriggerRequirement& trigger = fault.spec.trigger;
  size_t window = std::min(static_cast<size_t>(trigger.window), recent_ops_.size());
  if (static_cast<int>(window) < trigger.min_window_ops) {
    return false;
  }
  size_t start = recent_ops_.size() - window;
  // One bit per OpKind (kTotalOpKindCount = 24 < 32) — the window scan runs
  // for every inactive fault on every op, so it must not allocate.
  bool has_request = false;
  bool has_node = false;
  bool has_volume = false;
  bool has_env = false;
  uint32_t seen_mask = 0;
  for (size_t i = start; i < recent_ops_.size(); ++i) {
    OpKind kind = recent_ops_[i];
    switch (ClassOf(kind)) {
      case OpClass::kFile:
        has_request = true;
        break;
      case OpClass::kNode:
        has_node = true;
        break;
      case OpClass::kVolume:
        has_volume = true;
        break;
      case OpClass::kEnvFault:
        has_env = true;
        break;
    }
    seen_mask |= 1u << static_cast<unsigned>(kind);
  }
  if (trigger.needs_requests && !has_request) {
    return false;
  }
  if (trigger.needs_node_ops && !has_node) {
    return false;
  }
  if (trigger.needs_volume_ops && !has_volume) {
    return false;
  }
  // Env-gated bugs (DESIGN.md §14): a fault-free campaign can never satisfy
  // this — kEnvFault ops are only ever generated when the campaign enables
  // environment faults — so these specs provably cannot trigger without them.
  if (trigger.needs_env_faults && !has_env) {
    return false;
  }
  if (std::popcount(seen_mask) < trigger.min_distinct_kinds) {
    return false;
  }
  for (OpKind required : trigger.required_kinds) {
    if ((seen_mask & (1u << static_cast<unsigned>(required))) == 0) {
      return false;
    }
  }
  if (dfs.completed_rebalance_rounds() < trigger.min_rebalance_rounds) {
    return false;
  }
  if (trigger.min_rebalances_in_window > 0) {
    int rounds_in_window = dfs.completed_rebalance_rounds() - rounds_at_op_[start];
    if (rounds_in_window < trigger.min_rebalances_in_window) {
      return false;
    }
  }
  if (dfs.StorageImbalance() < trigger.min_variance) {
    return false;
  }
  if (trigger.min_steadiness > 0.0 && Steadiness() < trigger.min_steadiness) {
    return false;
  }
  if (trigger.needs_accumulation) {
    if (imbalance_at_op_.size() < 12) {
      return false;
    }
    double before = imbalance_at_op_[imbalance_at_op_.size() - 12];
    if (imbalance_at_op_.back() < before + 0.03) {
      return false;
    }
  }
  if (trigger.min_hotspot_touches > 0) {
    int touches = 0;
    size_t touch_window = std::min(static_cast<size_t>(trigger.window),
                                   hot_touch_at_op_.size());
    for (size_t i = hot_touch_at_op_.size() - touch_window; i < hot_touch_at_op_.size();
         ++i) {
      if (hot_touch_at_op_[i]) {
        ++touches;
      }
    }
    if (touches < trigger.min_hotspot_touches) {
      return false;
    }
  }
  if (trigger.min_variance_streak > 0 &&
      fault.variance_streak < trigger.min_variance_streak) {
    return false;
  }
  return true;
}

void FaultInjector::EvaluateTriggers(DfsCluster& dfs) {
  for (FaultRuntime& fault : faults_) {
    if (fault.active || fault.spec.environment_gated) {
      continue;
    }
    if (fault.spec.platform != dfs.flavor()) {
      continue;
    }
    if (!TriggerSatisfied(fault, dfs)) {
      continue;
    }
    ++fault.satisfied_evals;
    if (!rng_.Chance(fault.spec.trigger.probability)) {
      continue;
    }
    Activate(fault, dfs);
  }
}

void FaultInjector::PickVictim(FaultRuntime& fault, DfsCluster& dfs) {
  // Storage effects pin the brick with the highest utilization (the nascent
  // hotspot); CPU effects pin a storage node; network effects pin a
  // metadata/gateway node. Deterministic given the cluster state.
  if (EffectTargetsStorage(fault.spec.effect) ||
      fault.spec.effect == EffectKind::kCrashNode) {
    BrickId best = kInvalidBrick;
    double best_fraction = -1.0;
    for (BrickId id : dfs.ServingBricks()) {
      const Brick* brick = dfs.FindBrick(id);
      if (brick->UsedFraction() > best_fraction) {
        best_fraction = brick->UsedFraction();
        best = id;
      }
    }
    fault.victim_brick = best;
    const Brick* brick = dfs.FindBrick(best);
    fault.victim_node = brick != nullptr ? brick->node : kInvalidNode;
    return;
  }
  if (fault.spec.effect == EffectKind::kCpuSkew) {
    std::vector<NodeId> nodes = dfs.ServingStorageNodeIds();
    fault.victim_node =
        nodes.empty() ? kInvalidNode
                      : nodes[Mix64(HashCombine(0x1234, fault.trigger_count)) % nodes.size()];
    return;
  }
  // kNetworkSkew / kMetadataDesync: a metadata node.
  std::vector<NodeId> mns = dfs.ListMetaNodes();
  fault.victim_node =
      mns.empty() ? kInvalidNode
                  : mns[Mix64(HashCombine(0x4321, fault.trigger_count)) % mns.size()];
}

void FaultInjector::Activate(FaultRuntime& fault, DfsCluster& dfs) {
  fault.active = true;
  fault.triggered_at = dfs.Now();
  ++fault.trigger_count;
  PickVictim(fault, dfs);
  THEMIS_LOG(kInfo, "fault %s triggered at t=%.1fmin (victim node %u)",
             fault.spec.id.c_str(), ToMinutes(fault.triggered_at), fault.victim_node);
  if (fault.spec.effect == EffectKind::kCrashNode && fault.victim_node != kInvalidNode) {
    dfs.CrashNode(fault.victim_node);
  }
}

void FaultInjector::ApplyContinuousEffects(DfsCluster& dfs) {
  for (FaultRuntime& fault : faults_) {
    if (!fault.active) {
      continue;
    }
    switch (fault.spec.effect) {
      case EffectKind::kCpuSkew:
        if (fault.victim_node != kInvalidNode) {
          dfs.InjectCpuLoad(fault.victim_node, kCpuSkewPerOp * (1.0 + fault.spec.severity));
        }
        break;
      case EffectKind::kNetworkSkew:
        if (fault.victim_node != kInvalidNode) {
          dfs.InjectNetLoad(fault.victim_node, kNetSkewIosPerOp, kNetSkewIosPerOp,
                            kNetSkewRequestsPerOp +
                                static_cast<uint64_t>(fault.spec.severity * 4.0));
        }
        break;
      case EffectKind::kCrashNode:
      case EffectKind::kMetadataDesync:
        // One-shot / hook-driven; nothing continuous.
        break;
      default: {
        // Storage effects: the bug keeps steering data onto the victim until
        // the imbalance reaches the fault's characteristic magnitude
        // (Finding 6: imbalance accumulates through many small variances).
        if (dfs.StorageImbalance() >= fault.spec.severity) {
          break;
        }
        Brick* victim = dfs.FindBrick(fault.victim_brick);
        if (victim == nullptr || !victim->online) {
          PickVictim(fault, dfs);
          victim = dfs.FindBrick(fault.victim_brick);
          if (victim == nullptr) {
            break;
          }
        }
        // Move a slice toward the victim, draining the lightest bricks first.
        // A single donor can run out of movable chunks (its data may already
        // have replicas on the victim), so spread the step across several.
        std::vector<std::pair<double, BrickId>> donors;
        for (BrickId id : dfs.ServingBricks()) {
          const Brick* brick = dfs.FindBrick(id);
          if (brick->node == victim->node || brick->used_bytes == 0) {
            continue;
          }
          donors.emplace_back(brick->UsedFraction(), id);
        }
        std::sort(donors.begin(), donors.end());
        uint64_t remaining = std::max<uint64_t>(victim->capacity_bytes / 64, kGiB);
        for (const auto& [fraction, donor] : donors) {
          (void)fraction;
          if (remaining == 0) {
            break;
          }
          remaining -= std::min(remaining,
                                dfs.SkewBytes(donor, fault.victim_brick, remaining));
        }
        break;
      }
    }
  }
}

void FaultInjector::OnRebalancePlanned(DfsCluster& dfs, MigrationPlan& plan) {
  for (const FaultRuntime& fault : faults_) {
    if (!fault.active) {
      continue;
    }
    switch (fault.spec.effect) {
      case EffectKind::kHotspotAccumulation:
      case EffectKind::kPlanSkipsVictim:
      case EffectKind::kMigrationDataLoss:
      case EffectKind::kRebalanceHang: {
        // The (mis)calculated plan never drains the hotspot: moves sourced at
        // the victim vanish (HDFS-13279's stale clusterMap had exactly this
        // consequence — the hotspot's data "is not migrated out").
        NodeId victim_node = fault.victim_node;
        plan.erase(std::remove_if(plan.begin(), plan.end(),
                                  [&](const ChunkMove& move) {
                                    const Brick* from = dfs.FindBrick(move.from);
                                    return from != nullptr && from->node == victim_node;
                                  }),
                   plan.end());
        break;
      }
      case EffectKind::kWrongTargetMigration: {
        // The corrupted rebalance list points every move at the hotspot.
        Brick* victim = dfs.FindBrick(fault.victim_brick);
        if (victim == nullptr) {
          break;
        }
        for (ChunkMove& move : plan) {
          if (move.from != fault.victim_brick) {
            move.to = fault.victim_brick;
          }
        }
        break;
      }
      default:
        break;
    }
  }
}

FaultHooks::MigrateVerdict FaultInjector::OnMigrateChunk(DfsCluster& dfs,
                                                         const ChunkMove& move) {
  for (FaultRuntime& fault : faults_) {
    if (!fault.active) {
      continue;
    }
    if (fault.spec.effect == EffectKind::kLinkfileUnlink && move.is_linkfile) {
      // Fig. 11: the linkfile shares the datafile's hashed id, so the unlink
      // destroys the *data* that was just migrated.
      auto layout_it = dfs.file_layouts().find(move.file);
      if (layout_it != dfs.file_layouts().end() &&
          move.chunk_index < layout_it->second.chunks.size()) {
        const ChunkPlacement& chunk = layout_it->second.chunks[move.chunk_index];
        if (!chunk.replicas.empty()) {
          dfs.DestroyChunkReplica(move.file, move.chunk_index, chunk.replicas.front());
        }
      }
      return MigrateVerdict::kSkip;
    }
    if (fault.spec.effect == EffectKind::kMigrationDataLoss &&
        move.reason == MoveReason::kRebalance && !move.is_linkfile &&
        rng_.Chance(kDataLossRate)) {
      return MigrateVerdict::kLoseData;
    }
  }
  return MigrateVerdict::kProceed;
}

bool FaultInjector::SuppressRebalance(const DfsCluster& dfs) {
  (void)dfs;
  for (const FaultRuntime& fault : faults_) {
    if (fault.active && fault.spec.effect == EffectKind::kRebalanceHang) {
      return true;
    }
  }
  return false;
}

void FaultInjector::OnClusterReset(DfsCluster& dfs) {
  (void)dfs;
  for (FaultRuntime& fault : faults_) {
    fault.active = false;
    fault.victim_brick = kInvalidBrick;
    fault.victim_node = kInvalidNode;
    fault.variance_streak = 0;
    fault.rounds_at_streak_start = 0;
  }
  recent_ops_.clear();
  rounds_at_op_.clear();
  imbalance_at_op_.clear();
  hot_touch_at_op_.clear();
}

std::vector<std::string> FaultInjector::ActiveFaultIds() const {
  std::vector<std::string> out;
  for (const FaultRuntime& fault : faults_) {
    if (fault.active) {
      out.push_back(fault.spec.id);
    }
  }
  return out;
}

bool FaultInjector::AnyActive() const {
  for (const FaultRuntime& fault : faults_) {
    if (fault.active) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> FaultInjector::EverTriggeredIds() const {
  std::vector<std::string> out;
  for (const FaultRuntime& fault : faults_) {
    if (fault.trigger_count > 0) {
      out.push_back(fault.spec.id);
    }
  }
  return out;
}

void FaultInjector::SaveState(SnapshotWriter& writer) const {
  writer.U64(faults_.size());
  for (const FaultRuntime& fault : faults_) {
    writer.Str(fault.spec.id);
    writer.Bool(fault.active);
    writer.I64(fault.triggered_at);
    writer.I64(fault.trigger_count);
    writer.U32(fault.victim_brick);
    writer.U32(fault.victim_node);
    writer.I64(fault.variance_streak);
    writer.I64(fault.rounds_at_streak_start);
    writer.U64(fault.satisfied_evals);
  }
  writer.U64(recent_ops_.size());
  for (OpKind op : recent_ops_) writer.U8(static_cast<uint8_t>(op));
  writer.U64(rounds_at_op_.size());
  for (int rounds : rounds_at_op_) writer.I64(rounds);
  writer.U64(imbalance_at_op_.size());
  for (double imbalance : imbalance_at_op_) writer.F64(imbalance);
  writer.U64(hot_touch_at_op_.size());
  for (bool hot : hot_touch_at_op_) writer.Bool(hot);
  rng_.SaveState(writer);
}

Status FaultInjector::RestoreState(SnapshotReader& reader) {
  uint64_t count = reader.U64();
  if (reader.ok() && count != faults_.size()) {
    reader.Fail(Sprintf("snapshot has %llu faults but this campaign "
                        "configures %zu (fault set mismatch)",
                        static_cast<unsigned long long>(count),
                        faults_.size()));
  }
  for (FaultRuntime& fault : faults_) {
    if (!reader.ok()) break;
    std::string id = reader.Str();
    if (reader.ok() && id != fault.spec.id) {
      reader.Fail(Sprintf("snapshot fault id \"%s\" does not match "
                          "configured fault \"%s\"",
                          id.c_str(), fault.spec.id.c_str()));
      break;
    }
    fault.active = reader.Bool();
    fault.triggered_at = reader.I64();
    fault.trigger_count = static_cast<int>(reader.I64());
    fault.victim_brick = reader.U32();
    fault.victim_node = reader.U32();
    fault.variance_streak = static_cast<int>(reader.I64());
    fault.rounds_at_streak_start = static_cast<int>(reader.I64());
    fault.satisfied_evals = reader.U64();
  }
  uint64_t ops = reader.Count(1);
  recent_ops_.clear();
  for (uint64_t i = 0; i < ops && reader.ok(); ++i) {
    uint8_t op = reader.U8();
    if (reader.ok() && op >= kTotalOpKindCount) {
      reader.Fail(Sprintf("history op kind %u out of range", op));
      break;
    }
    recent_ops_.push_back(static_cast<OpKind>(op));
  }
  uint64_t rounds = reader.Count(8);
  rounds_at_op_.clear();
  for (uint64_t i = 0; i < rounds && reader.ok(); ++i) {
    rounds_at_op_.push_back(static_cast<int>(reader.I64()));
  }
  uint64_t imbalances = reader.Count(8);
  imbalance_at_op_.clear();
  for (uint64_t i = 0; i < imbalances && reader.ok(); ++i) {
    imbalance_at_op_.push_back(reader.F64());
  }
  uint64_t hots = reader.Count(1);
  hot_touch_at_op_.clear();
  for (uint64_t i = 0; i < hots && reader.ok(); ++i) {
    hot_touch_at_op_.push_back(reader.Bool());
  }
  Status status = rng_.RestoreState(reader);
  if (!status.ok()) return status;
  return reader.status();
}

}  // namespace themis
