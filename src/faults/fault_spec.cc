#include "src/faults/fault_spec.h"

namespace themis {

const char* FailureTypeName(FailureType type) {
  switch (type) {
    case FailureType::kImbalancedStorage:
      return "Imbalanced Storage";
    case FailureType::kImbalancedCpu:
      return "Imbalanced CPU";
    case FailureType::kImbalancedNetwork:
      return "Imbalanced Network";
    case FailureType::kCrash:
      return "Crash";
  }
  return "?";
}

}  // namespace themis
