// Fault specifications.
//
// An imbalance failure in a real DFS is, operationally, a *trigger predicate
// over execution history* plus an *effect on load distribution* that the
// load-balancing mechanism cannot undo (§2.2: the system cannot recover to
// LBS on its own). FaultSpec encodes exactly that structure. The registry in
// fault_registry.cc instantiates the paper's 10 new failures (Table 2); the
// historical corpus in historical_corpus.cc derives 53 more from the study
// records.

#ifndef SRC_FAULTS_FAULT_SPEC_H_
#define SRC_FAULTS_FAULT_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dfs/operation.h"
#include "src/dfs/types.h"
#include "src/study/study_corpus.h"

namespace themis {

// The observable failure dimension (Table 2 "Failure Type").
enum class FailureType : uint8_t {
  kImbalancedStorage = 0,
  kImbalancedCpu,
  kImbalancedNetwork,
  kCrash,
};

const char* FailureTypeName(FailureType type);

// How the active fault corrupts the system.
enum class EffectKind : uint8_t {
  // Storage effects.
  kHotspotAccumulation = 0,  // data keeps landing on / staying on one node
  kMigrationDataLoss,        // migration deletes instead of moving
  kLinkfileUnlink,           // gluster #1: destructive linkfile unlink
  kPlanSkipsVictim,          // balancer plan never drains the hotspot
  kWrongTargetMigration,     // balancer moves data *onto* the hotspot
  // Computation / network effects.
  kCpuSkew,                  // one node burns CPU permanently
  kNetworkSkew,              // one node absorbs the request stream
  // Control effects.
  kRebalanceHang,            // rebalance command silently does nothing
  kCrashNode,                // a storage node dies
  // Metadata effects (the §7 "more bug types" extension).
  kMetadataDesync,           // one management node stops replicating metadata
};

// When a fault becomes active (§3.2, Findings 4-6). All listed conditions
// must hold over the recent execution window; then the fault fires with
// `probability` per operation.
struct TriggerRequirement {
  int window = 8;                    // length of the inspected op window
  int min_window_ops = 1;            // ops required inside the window
  bool needs_requests = false;       // a file_op must appear in the window
  bool needs_node_ops = false;       // a node_op must appear in the window
  bool needs_volume_ops = false;     // a volume_op must appear in the window
  int min_distinct_kinds = 1;        // distinct operators in the window
  std::vector<OpKind> required_kinds;  // all must appear in the window
  int min_rebalance_rounds = 0;        // completed rounds since reset
  int min_rebalances_in_window = 0;    // rounds completed within the window
  double min_variance = 0.0;           // storage imbalance precondition
  // Deep-bug discriminator (Finding 6): the imbalance must not merely spike —
  // it must *persist*: `min_variance` held over `min_variance_streak`
  // consecutive operations spanning at least one completed rebalance round
  // (i.e. the balancer ran and the skew survived it). A random volume
  // reduction spikes the spread for a moment; only workloads that keep
  // re-skewing faster than migration drains sustain it.
  int min_variance_streak = 0;
  // Finding 5's second half: deep failures are triggered by "repeatedly
  // executing short sequences of up to 8 operations, with gradual variation
  // in the operation sequences as they are repeated". Steadiness is the
  // operator-multiset overlap between the last window and the one before it;
  // a seed-mutation loop re-running one sequence with small variations
  // produces overlap near 1, fresh random sequences near 0.3.
  double min_steadiness = 0.0;
  // Finding 6: "the load imbalanced status is not achieved all one stroke;
  // rather, it accumulates gradually". When set, the storage imbalance must
  // be measurably higher now than it was ~12 operations ago — the workload
  // is *driving* the divergence, not sitting on a random plateau.
  bool needs_accumulation = false;
  // Minimum number of recent file operations that touched data resident on
  // the currently hottest brick. Deep imbalance bugs fire when load keeps
  // concentrating on the nascent hotspot — the signature of a workload
  // steered by variance feedback (retained seeds keep naming the files that
  // grew the skew), not of uniformly random operand choice.
  int min_hotspot_touches = 0;
  // Environment-fault gate (DESIGN.md §14): an env_fault operator must
  // appear in the window. Combine with `required_kinds` naming specific
  // kEnv* operators to demand a particular fault schedule. Specs with this
  // set can never trigger in a fault-free campaign (the fault-free grammar
  // cannot produce env_fault ops), which is what makes the env-gated
  // registry bugs a clean reachability experiment.
  bool needs_env_faults = false;
  double probability = 1.0;            // per-op chance once satisfied
};

struct FaultSpec {
  std::string id;
  Flavor platform = Flavor::kHdfs;
  FailureType type = FailureType::kImbalancedStorage;
  StudyRootCause cause = StudyRootCause::kMigration;
  std::string description;
  TriggerRequirement trigger;
  EffectKind effect = EffectKind::kHotspotAccumulation;
  // Target sustained imbalance (max/mean - 1) the effect drives toward.
  double severity = 0.45;
  // Windows-only / hardware-gated failures never trigger in our environment
  // (§6.1.2's five undetectable failures).
  bool environment_gated = false;
  bool historical = false;
};

}  // namespace themis

#endif  // SRC_FAULTS_FAULT_SPEC_H_
