// The runtime fault injector.
//
// Implements the cluster's FaultHooks: it watches the execution history
// (recent operations, completed rebalance rounds, current storage variance),
// trips dormant FaultSpecs whose trigger predicate becomes satisfied, and
// then applies their effect — mutating migration plans, dropping or
// corrupting chunk moves, skewing CPU/network/storage load, hanging the
// rebalance command, or crashing a node. Effects persist until the cluster
// is reset (an imbalance failure, by definition §2.2, cannot self-recover).
//
// The injector is also the evaluation's ground truth: the campaign harness
// asks which faults were active when the detector confirmed a failure, to
// label reports as true/false positives. The *detector never reads this
// state* — it sees only load samples.

#ifndef SRC_FAULTS_INJECTOR_H_
#define SRC_FAULTS_INJECTOR_H_

#include <deque>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/dfs/cluster.h"
#include "src/faults/fault_spec.h"

namespace themis {

struct FaultRuntime {
  FaultSpec spec;
  bool active = false;
  SimTime triggered_at = -1;
  int trigger_count = 0;  // across cluster resets
  BrickId victim_brick = kInvalidBrick;
  NodeId victim_node = kInvalidNode;
  // Sustained-variance tracking (min_variance_streak): consecutive ops with
  // storage imbalance >= spec.trigger.min_variance, and the completed round
  // count when the streak began.
  int variance_streak = 0;
  int rounds_at_streak_start = 0;
  // Number of operations at which the full predicate (minus the probability
  // gate) held — calibration telemetry.
  uint64_t satisfied_evals = 0;
};

class FaultInjector : public FaultHooks {
 public:
  FaultInjector(std::vector<FaultSpec> specs, uint64_t seed);

  // ---- FaultHooks ----
  void OnOperationExecuted(DfsCluster& dfs, const Operation& op,
                           const OpResult& result) override;
  void OnRebalancePlanned(DfsCluster& dfs, MigrationPlan& plan) override;
  MigrateVerdict OnMigrateChunk(DfsCluster& dfs, const ChunkMove& move) override;
  bool SuppressRebalance(const DfsCluster& dfs) override;
  bool SuppressMetadataSync(const DfsCluster& dfs, NodeId node) override;
  void OnClusterReset(DfsCluster& dfs) override;

  // ---- ground truth for the campaign harness ----
  const std::vector<FaultRuntime>& faults() const { return faults_; }
  std::vector<std::string> ActiveFaultIds() const;
  bool AnyActive() const;
  // Ids of faults that have triggered at least once over the whole campaign.
  std::vector<std::string> EverTriggeredIds() const;

  // Checkpointing (DESIGN.md §11): per-fault runtime (matched by spec id —
  // restore fails descriptively if the configured fault set differs), the
  // rolling execution history windows, and the injector's own RNG stream.
  // The specs themselves are configuration, rebuilt from the campaign config.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  void EvaluateTriggers(DfsCluster& dfs);
  void UpdateVarianceStreaks(const DfsCluster& dfs);
  // Operator-multiset overlap between the two most recent 8-op windows.
  double Steadiness() const;
  // Whether a file operation touched data resident on the hottest brick.
  bool TouchesHottestBrick(const DfsCluster& dfs, const Operation& op) const;
  bool TriggerSatisfied(const FaultRuntime& fault, const DfsCluster& dfs) const;
  void Activate(FaultRuntime& fault, DfsCluster& dfs);
  void PickVictim(FaultRuntime& fault, DfsCluster& dfs);
  void ApplyContinuousEffects(DfsCluster& dfs);
  bool EffectTargetsStorage(EffectKind effect) const;

  std::vector<FaultRuntime> faults_;
  // Rolling execution history (most recent at the back).
  std::deque<OpKind> recent_ops_;
  std::deque<int> rounds_at_op_;      // completed rounds when each op ran
  std::deque<double> imbalance_at_op_;  // storage imbalance after each op
  std::deque<bool> hot_touch_at_op_;  // op touched data on the hottest brick
  Rng rng_;
};

}  // namespace themis

#endif  // SRC_FAULTS_INJECTOR_H_
