#include "src/faults/historical_corpus.h"

#include "src/common/rng.h"

namespace themis {

namespace {

uint64_t IdHash(const std::string& id) {
  uint64_t h = 0x811c9dc5ULL;
  for (char c : id) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

// The file operators a fixed benchmark-style workload exercises (what our
// FixReq baseline replays); biased sampling below makes ~60% of request-side
// requirements satisfiable by such generic workloads, which is what lets
// fixed-request exploration reproduce a minority of historical failures.
const OpKind kGenericFileKinds[] = {OpKind::kCreate, OpKind::kAppend, OpKind::kDelete,
                                    OpKind::kOpen};
const OpKind kSpecificFileKinds[] = {OpKind::kOverwrite, OpKind::kTruncateOverwrite,
                                     OpKind::kMkdir, OpKind::kRmdir, OpKind::kRename};
const OpKind kNodeKinds[] = {OpKind::kAddMetaNode, OpKind::kRemoveMetaNode,
                             OpKind::kAddStorageNode, OpKind::kRemoveStorageNode};
const OpKind kVolumeKinds[] = {OpKind::kAddVolume, OpKind::kRemoveVolume,
                               OpKind::kExpandVolume, OpKind::kReduceVolume};

OpKind PickFileKind(Rng& rng) {
  // ~1/3 of request-side requirements are satisfiable by generic benchmark
  // workloads (create/append/open/delete); the rest demand operators a fixed
  // workload never issues.
  if (rng.Chance(0.25)) {
    return kGenericFileKinds[rng.PickIndex(4)];
  }
  return kSpecificFileKinds[rng.PickIndex(5)];
}

void AddUnique(std::vector<OpKind>& kinds, OpKind kind) {
  for (OpKind existing : kinds) {
    if (existing == kind) {
      return;
    }
  }
  kinds.push_back(kind);
}

EffectKind EffectFor(const StudyRecord& record, Rng& rng) {
  (void)rng;
  if (record.symptom == Symptom::kClusterFailure) {
    return EffectKind::kCrashNode;
  }
  switch (record.internal) {
    case InternalSymptom::kCpu:
      return EffectKind::kCpuSkew;
    case InternalSymptom::kNetwork:
      return EffectKind::kNetworkSkew;
    case InternalSymptom::kDisk:
      break;
  }
  switch (record.cause) {
    case StudyRootCause::kMigration:
      return record.symptom == Symptom::kDataLoss ? EffectKind::kMigrationDataLoss
                                                  : EffectKind::kHotspotAccumulation;
    case StudyRootCause::kLoadCalculation:
      return EffectKind::kPlanSkipsVictim;
    case StudyRootCause::kStateCollection:
      return EffectKind::kWrongTargetMigration;
  }
  return EffectKind::kHotspotAccumulation;
}

FailureType TypeFor(const StudyRecord& record) {
  if (record.symptom == Symptom::kClusterFailure) {
    return FailureType::kCrash;
  }
  switch (record.internal) {
    case InternalSymptom::kDisk:
      return FailureType::kImbalancedStorage;
    case InternalSymptom::kCpu:
      return FailureType::kImbalancedCpu;
    case InternalSymptom::kNetwork:
      return FailureType::kImbalancedNetwork;
  }
  return FailureType::kImbalancedStorage;
}

}  // namespace

FaultSpec FaultFromStudyRecord(const StudyRecord& record) {
  Rng rng(IdHash(record.id));
  FaultSpec spec;
  spec.id = record.id;
  spec.platform = record.platform;
  spec.cause = record.cause;
  spec.type = TypeFor(record);
  spec.effect = EffectFor(record, rng);
  spec.description = std::string(SymptomName(record.symptom)) + " via " +
                     StudyRootCauseName(record.cause);
  spec.historical = true;
  spec.environment_gated = record.gate != EnvGate::kNone;
  // Finding 3: internal load disparity is at least 30%, sometimes over 100%.
  spec.severity = 0.30 + rng.NextDouble() * 0.80;

  TriggerRequirement& trigger = spec.trigger;
  trigger.window = record.steps >= 6 ? 10 : 8;
  trigger.min_window_ops = record.steps;
  switch (record.inputs) {
    case TriggerInputs::kRequestsOnly:
      trigger.needs_requests = true;
      break;
    case TriggerInputs::kConfigsOnly:
      if (rng.Chance(0.5)) {
        trigger.needs_node_ops = true;
      } else {
        trigger.needs_volume_ops = true;
      }
      break;
    case TriggerInputs::kBoth:
      trigger.needs_requests = true;
      if (rng.Chance(0.5)) {
        trigger.needs_node_ops = true;
      } else {
        trigger.needs_volume_ops = true;
      }
      break;
  }
  // Required operators: more steps -> more specific combination.
  int required = record.steps <= 3 ? 1 : (record.steps <= 5 ? 2 : 3);
  for (int i = 0; i < required; ++i) {
    if (record.inputs == TriggerInputs::kRequestsOnly) {
      AddUnique(trigger.required_kinds, PickFileKind(rng));
    } else if (record.inputs == TriggerInputs::kConfigsOnly) {
      AddUnique(trigger.required_kinds,
                trigger.needs_node_ops ? kNodeKinds[rng.PickIndex(4)]
                                       : kVolumeKinds[rng.PickIndex(4)]);
    } else {
      // Both: alternate between a request-side and a config-side operator.
      if (i % 2 == 0) {
        AddUnique(trigger.required_kinds, PickFileKind(rng));
      } else if (trigger.needs_node_ops) {
        AddUnique(trigger.required_kinds, kNodeKinds[rng.PickIndex(4)]);
      } else {
        AddUnique(trigger.required_kinds, kVolumeKinds[rng.PickIndex(4)]);
      }
    }
  }
  trigger.min_distinct_kinds = required;
  if (record.steps >= 6) {
    // Deep failures: hidden behind repeated rebalancing under accumulated
    // variance (Findings 5-6) — the skew must persist across a rebalance.
    // The bar sits just above the platform's native balance threshold so
    // balancer rounds actually run during the streak; the low per-op
    // probability makes detection a function of how long a strategy *dwells*
    // in the sustained-imbalance region.
    trigger.min_rebalance_rounds = 2;
    switch (record.platform) {
      case Flavor::kHdfs:
        trigger.min_variance = 0.12;
        break;
      case Flavor::kCeph:
        trigger.min_variance = 0.14;
        break;
      case Flavor::kGluster:
        trigger.min_variance = 0.21;
        break;
      default:
        trigger.min_variance = 0.17;
        break;
    }
    trigger.min_variance_streak = 4;
    trigger.min_steadiness = 0.65;
    trigger.needs_accumulation = true;
    trigger.probability = 0.4;
  } else if (record.steps >= 4) {
    trigger.min_rebalance_rounds = 1;
    trigger.min_variance = 0.05;
    trigger.min_distinct_kinds = 4;
    trigger.min_steadiness = 0.5;
    trigger.probability = 0.25;
  } else {
    trigger.probability = 0.12;
  }
  return spec;
}

std::vector<FaultSpec> HistoricalFaultCorpus() {
  std::vector<FaultSpec> out;
  out.reserve(StudyCorpus().size());
  for (const StudyRecord& record : StudyCorpus()) {
    out.push_back(FaultFromStudyRecord(record));
  }
  return out;
}

std::vector<FaultSpec> HistoricalFaultsFor(Flavor flavor) {
  std::vector<FaultSpec> out;
  for (const StudyRecord& record : StudyCorpus()) {
    if (record.platform == flavor) {
      out.push_back(FaultFromStudyRecord(record));
    }
  }
  return out;
}

}  // namespace themis
