#include "src/faults/env_fault.h"

#include <algorithm>

#include "src/common/strings.h"

namespace themis {

namespace {

uint64_t ClampRate(uint64_t value) {
  return std::clamp(value, kEnvMinRatePermille, kEnvMaxRatePermille);
}

}  // namespace

OpResult EnvFaultInjector::ExecuteEnvOp(DfsCluster& dfs, const Operation& op) {
  OpResult result;
  switch (op.kind) {
    case OpKind::kEnvMsgLoss:
      msg_loss_permille_ = ClampRate(op.size);
      break;
    case OpKind::kEnvMsgReorder:
      msg_reorder_permille_ = ClampRate(op.size);
      break;
    case OpKind::kEnvMsgDuplicate:
      msg_duplicate_permille_ = ClampRate(op.size);
      break;
    case OpKind::kEnvMsgCorrupt:
      msg_corrupt_permille_ = ClampRate(op.size);
      break;
    case OpKind::kEnvSlowDisk: {
      if (dfs.FindStorageNode(op.node) == nullptr) {
        result.status =
            Status::NotFound(Sprintf("storage node %u does not exist", op.node));
        return result;
      }
      SlowDisk& slot = slow_disks_[op.node];
      slot.percent = std::clamp(op.size, kEnvMinSlowFactorPercent,
                                kEnvMaxSlowFactorPercent);
      slot.until = dfs.Now() + kEnvSlowDiskWindow;
      ++stats_.slow_disk_windows;
      break;
    }
    case OpKind::kEnvCrashNode: {
      bool crashed = false;
      if (const StorageNode* sn = dfs.FindStorageNode(op.node)) {
        crashed = sn->crashed;
      } else if (auto it = dfs.meta_nodes().find(op.node);
                 it != dfs.meta_nodes().end()) {
        crashed = it->second.crashed;
      } else {
        result.status =
            Status::NotFound(Sprintf("node %u does not exist", op.node));
        return result;
      }
      if (crashed) {
        result.status = Status::FailedPrecondition(
            Sprintf("node %u is already down", op.node));
        return result;
      }
      uint64_t delay = std::clamp(op.size, kEnvMinCrashDelaySeconds,
                                  kEnvMaxCrashDelaySeconds);
      dfs.CrashNodeForEnvFault(op.node);
      ScheduledRestart restart{dfs.Now() + Seconds(static_cast<int64_t>(delay)),
                               op.node, next_restart_seq_++};
      auto pos = std::upper_bound(
          restarts_.begin(), restarts_.end(), restart,
          [](const ScheduledRestart& a, const ScheduledRestart& b) {
            return a.at != b.at ? a.at < b.at : a.seq < b.seq;
          });
      restarts_.insert(pos, restart);
      ++stats_.node_crashes;
      break;
    }
    case OpKind::kEnvClearFaults:
      // Disarms rates and degraded disks. Scheduled restarts stay: a node
      // that is down must still come back, or recovery would never complete.
      msg_loss_permille_ = 0;
      msg_reorder_permille_ = 0;
      msg_duplicate_permille_ = 0;
      msg_corrupt_permille_ = 0;
      slow_disks_.clear();
      break;
    default:
      result.status =
          Status::InvalidArgument("not an environment-fault operator");
      return result;
  }
  result.status = Status::Ok();
  return result;
}

EnvFaultRuntime::MessageVerdict EnvFaultInjector::OnMigrationMessage(
    DfsCluster& dfs, const ChunkMove& move) {
  (void)dfs;
  (void)move;
  // No draw when nothing is armed: attaching an idle injector must leave the
  // injector's RNG stream untouched so disarming via kEnvClearFaults really
  // freezes the schedule.
  if (!AnyMessageFaultArmed()) {
    return MessageVerdict::kDeliver;
  }
  // One independent draw per armed fault class, in fixed severity order
  // (loss trumps reorder trumps duplicate trumps corrupt).
  if (msg_loss_permille_ != 0 && rng_.NextBelow(1000) < msg_loss_permille_) {
    ++stats_.messages_dropped;
    return MessageVerdict::kDrop;
  }
  if (msg_reorder_permille_ != 0 &&
      rng_.NextBelow(1000) < msg_reorder_permille_) {
    ++stats_.messages_reordered;
    return MessageVerdict::kReorder;
  }
  if (msg_duplicate_permille_ != 0 &&
      rng_.NextBelow(1000) < msg_duplicate_permille_) {
    ++stats_.messages_duplicated;
    return MessageVerdict::kDuplicate;
  }
  if (msg_corrupt_permille_ != 0 &&
      rng_.NextBelow(1000) < msg_corrupt_permille_) {
    ++stats_.messages_corrupted;
    return MessageVerdict::kCorrupt;
  }
  return MessageVerdict::kDeliver;
}

bool EnvFaultInjector::DropHeartbeat(DfsCluster& dfs, NodeId node) {
  (void)dfs;
  (void)node;
  // Metadata replication heartbeats ride the same lossy transport as
  // migration messages; the other fault classes leave them intact (a
  // reordered or duplicated heartbeat is harmless, and heartbeats carry
  // their epoch so corruption is detected and resent within the op).
  if (msg_loss_permille_ == 0) {
    return false;
  }
  if (rng_.NextBelow(1000) < msg_loss_permille_) {
    ++stats_.heartbeats_dropped;
    return true;
  }
  return false;
}

double EnvFaultInjector::DiskSlowdown(const DfsCluster& dfs,
                                      NodeId node) const {
  auto it = slow_disks_.find(node);
  if (it == slow_disks_.end() || dfs.Now() >= it->second.until) {
    return 1.0;
  }
  return static_cast<double>(it->second.percent) / 100.0;
}

void EnvFaultInjector::OnClockAdvanced(DfsCluster& dfs, SimTime now) {
  while (!restarts_.empty() && restarts_.front().at <= now) {
    NodeId node = restarts_.front().node;
    restarts_.erase(restarts_.begin());
    dfs.RestartNode(node);
    ++stats_.node_restarts;
  }
  if (!slow_disks_.empty()) {
    std::erase_if(slow_disks_,
                  [now](const auto& entry) { return entry.second.until <= now; });
  }
}

bool EnvFaultInjector::RecoveryPending(const DfsCluster& dfs) const {
  (void)dfs;
  return !restarts_.empty();
}

void EnvFaultInjector::OnClusterReset(DfsCluster& dfs) {
  (void)dfs;
  // The reset rebuilt the topology from scratch — every node is alive again,
  // so pending restarts refer to nodes that are no longer down. Stats stay:
  // they count campaign-lifetime fault events.
  msg_loss_permille_ = 0;
  msg_reorder_permille_ = 0;
  msg_duplicate_permille_ = 0;
  msg_corrupt_permille_ = 0;
  slow_disks_.clear();
  restarts_.clear();
}

void EnvFaultInjector::SaveState(SnapshotWriter& writer) const {
  writer.U64(msg_loss_permille_);
  writer.U64(msg_reorder_permille_);
  writer.U64(msg_duplicate_permille_);
  writer.U64(msg_corrupt_permille_);
  writer.U64(slow_disks_.size());
  for (const auto& [node, slot] : slow_disks_) {
    writer.U32(node);
    writer.U64(slot.percent);
    writer.I64(slot.until);
  }
  writer.U64(restarts_.size());
  for (const ScheduledRestart& restart : restarts_) {
    writer.I64(restart.at);
    writer.U32(restart.node);
    writer.U64(restart.seq);
  }
  writer.U64(next_restart_seq_);
  writer.U64(stats_.messages_dropped);
  writer.U64(stats_.messages_reordered);
  writer.U64(stats_.messages_duplicated);
  writer.U64(stats_.messages_corrupted);
  writer.U64(stats_.heartbeats_dropped);
  writer.U64(stats_.slow_disk_windows);
  writer.U64(stats_.node_crashes);
  writer.U64(stats_.node_restarts);
  rng_.SaveState(writer);
}

Status EnvFaultInjector::RestoreState(SnapshotReader& reader) {
  auto rate = [&reader](const char* what) -> uint64_t {
    uint64_t value = reader.U64();
    if (reader.ok() && value != 0 &&
        (value < kEnvMinRatePermille || value > kEnvMaxRatePermille)) {
      reader.Fail(Sprintf("malformed env fault record: %s rate %llu out of "
                          "range [%llu, %llu]",
                          what, static_cast<unsigned long long>(value),
                          static_cast<unsigned long long>(kEnvMinRatePermille),
                          static_cast<unsigned long long>(kEnvMaxRatePermille)));
    }
    return value;
  };
  msg_loss_permille_ = rate("message-loss");
  msg_reorder_permille_ = rate("message-reorder");
  msg_duplicate_permille_ = rate("message-duplicate");
  msg_corrupt_permille_ = rate("message-corrupt");
  if (!reader.ok()) return reader.status();

  slow_disks_.clear();
  uint64_t slow_count = reader.Count(4 + 8 + 8);
  for (uint64_t i = 0; i < slow_count && reader.ok(); ++i) {
    NodeId node = reader.U32();
    SlowDisk slot;
    slot.percent = reader.U64();
    slot.until = reader.I64();
    if (!reader.ok()) break;
    if (slot.percent < kEnvMinSlowFactorPercent ||
        slot.percent > kEnvMaxSlowFactorPercent) {
      reader.Fail(Sprintf("malformed env fault record: slow-disk factor %llu "
                          "out of range",
                          static_cast<unsigned long long>(slot.percent)));
      break;
    }
    if (slot.until < 0) {
      reader.Fail("malformed env fault record: negative slow-disk expiry");
      break;
    }
    if (!slow_disks_.emplace(node, slot).second) {
      reader.Fail(Sprintf("malformed env fault record: duplicate slow-disk "
                          "entry for node %u",
                          node));
      break;
    }
  }
  if (!reader.ok()) return reader.status();

  restarts_.clear();
  uint64_t restart_count = reader.Count(8 + 4 + 8);
  for (uint64_t i = 0; i < restart_count && reader.ok(); ++i) {
    ScheduledRestart restart;
    restart.at = reader.I64();
    restart.node = reader.U32();
    restart.seq = reader.U64();
    if (!reader.ok()) break;
    if (restart.at < 0) {
      reader.Fail("malformed env fault record: negative restart time");
      break;
    }
    if (!restarts_.empty()) {
      const ScheduledRestart& prev = restarts_.back();
      if (restart.at < prev.at ||
          (restart.at == prev.at && restart.seq <= prev.seq)) {
        reader.Fail("malformed env fault record: restart schedule not sorted");
        break;
      }
    }
    restarts_.push_back(restart);
  }
  next_restart_seq_ = reader.U64();
  if (reader.ok()) {
    for (const ScheduledRestart& restart : restarts_) {
      if (restart.seq >= next_restart_seq_) {
        reader.Fail("malformed env fault record: restart sequence from the future");
        break;
      }
    }
  }
  stats_.messages_dropped = reader.U64();
  stats_.messages_reordered = reader.U64();
  stats_.messages_duplicated = reader.U64();
  stats_.messages_corrupted = reader.U64();
  stats_.heartbeats_dropped = reader.U64();
  stats_.slow_disk_windows = reader.U64();
  stats_.node_crashes = reader.U64();
  stats_.node_restarts = reader.U64();
  if (!reader.ok()) return reader.status();
  return rng_.RestoreState(reader);
}

}  // namespace themis
