// Small string helpers (GCC 12 has no std::format, so we wrap vsnprintf).

#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace themis {

// printf-style formatting into a std::string.
std::string Sprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Splits `text` on `sep`, keeping empty tokens.
std::vector<std::string_view> Split(std::string_view text, char sep);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// Normalizes a slash-separated path: collapses duplicate slashes, ensures a
// single leading slash, strips a trailing slash (except for the root "/").
std::string NormalizePath(std::string_view path);

// True iff `path` is byte-identical to NormalizePath(path) — the common case
// for generated operands, checked without allocating.
bool IsNormalizedPath(std::string_view path);

// Returns the parent directory of a normalized path ("/a/b" -> "/a",
// "/a" -> "/", "/" -> "/").
std::string ParentPath(std::string_view path);

// Returns the final component of a normalized path ("/a/b" -> "b", "/" -> "").
std::string_view Basename(std::string_view path);

}  // namespace themis

#endif  // SRC_COMMON_STRINGS_H_
