#include "src/common/snapshot_io.h"

#include <cstring>

#include "src/common/strings.h"

namespace themis {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void SnapshotWriter::U32(uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void SnapshotWriter::U64(uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void SnapshotWriter::Str(std::string_view value) {
  U64(value.size());
  buf_.append(value.data(), value.size());
}

const char* SnapshotReader::Take(size_t n) {
  if (!ok()) return nullptr;
  if (n > data_.size() - pos_) {
    Fail(Sprintf("need %zu bytes, have %zu (truncated snapshot)", n,
                 data_.size() - pos_));
    return nullptr;
  }
  const char* out = data_.data() + pos_;
  pos_ += n;
  return out;
}

uint8_t SnapshotReader::U8() {
  const char* p = Take(1);
  return p == nullptr ? 0 : static_cast<uint8_t>(*p);
}

uint32_t SnapshotReader::U32() {
  const char* p = Take(4);
  if (p == nullptr) return 0;
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return value;
}

uint64_t SnapshotReader::U64() {
  const char* p = Take(8);
  if (p == nullptr) return 0;
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return value;
}

std::string SnapshotReader::Str() {
  uint64_t len = U64();
  if (ok() && len > data_.size() - pos_) {
    Fail(Sprintf("string length %llu exceeds remaining %zu bytes",
                 static_cast<unsigned long long>(len), data_.size() - pos_));
  }
  const char* p = Take(static_cast<size_t>(len));
  return p == nullptr ? std::string() : std::string(p, len);
}

uint64_t SnapshotReader::Count(size_t min_elem_bytes) {
  uint64_t count = U64();
  if (!ok()) return 0;
  size_t min_bytes = min_elem_bytes == 0 ? 1 : min_elem_bytes;
  if (count > remaining() / min_bytes) {
    Fail(Sprintf("element count %llu cannot fit in remaining %zu bytes",
                 static_cast<unsigned long long>(count), remaining()));
    return 0;
  }
  return count;
}

void SnapshotReader::Fail(std::string message) {
  if (!error_.empty()) return;
  error_ = Sprintf("snapshot read failed at byte %zu: %s", pos_,
                   message.c_str());
}

Status SnapshotReader::status() const {
  if (ok()) return Status::Ok();
  return Status::DataLoss(error_);
}

}  // namespace themis
