// Byte-size constants and formatting.

#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <string>

namespace themis {

constexpr uint64_t kKiB = 1024ULL;
constexpr uint64_t kMiB = 1024ULL * kKiB;
constexpr uint64_t kGiB = 1024ULL * kMiB;
constexpr uint64_t kTiB = 1024ULL * kGiB;

// "1.50 GiB", "512 B", ...
std::string FormatBytes(uint64_t bytes);

// Fraction a/b with b==0 treated as 0.
double SafeRatio(double a, double b);

}  // namespace themis

#endif  // SRC_COMMON_BYTES_H_
