#include "src/common/clock.h"

// VirtualClock is header-only; this translation unit exists so the build
// fails loudly if the header stops being self-contained.
namespace themis {
static_assert(Seconds(1) == 1000000, "SimTime is in microseconds");
static_assert(Hours(24) == 86400LL * 1000000, "24h budget sanity");
}  // namespace themis
