#include "src/common/log.h"

#include <cstdio>

namespace themis {

namespace {
LogLevel g_level = LogLevel::kOff;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "OFF";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(g_level) >= static_cast<int>(level)) {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
}

}  // namespace themis
