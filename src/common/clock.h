// Virtual time.
//
// The paper runs 24-hour wall-clock campaigns against real clusters. We
// replace wall time with a deterministic virtual clock: every simulated
// operation, migration and rebalance advances it by a cost model. A "24h"
// campaign is 86 400 virtual seconds and completes in real seconds.

#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <cstdint>

namespace themis {

// Virtual time in microseconds since campaign start.
using SimTime = int64_t;
// A span of virtual time in microseconds.
using SimDuration = int64_t;

constexpr SimDuration Micros(int64_t n) { return n; }
constexpr SimDuration Millis(int64_t n) { return n * 1000; }
constexpr SimDuration Seconds(int64_t n) { return n * 1000 * 1000; }
constexpr SimDuration Minutes(int64_t n) { return Seconds(n * 60); }
constexpr SimDuration Hours(int64_t n) { return Minutes(n * 60); }

constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToMinutes(SimDuration d) { return ToSeconds(d) / 60.0; }

class VirtualClock {
 public:
  VirtualClock() = default;

  SimTime now() const { return now_; }

  void Advance(SimDuration delta) {
    if (delta > 0) {
      now_ += delta;
    }
  }

  void Reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace themis

#endif  // SRC_COMMON_CLOCK_H_
