// Deterministic pseudo-random number generation.
//
// Every campaign owns exactly one Rng seeded from the campaign configuration,
// so that all experiments reproduce bit-for-bit. The generator is
// xoshiro256**, seeded through splitmix64 (the construction recommended by
// the xoshiro authors).

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/snapshot_io.h"

namespace themis {

// splitmix64 step; also useful as a cheap mixing/hash function.
uint64_t SplitMix64(uint64_t& state);

// Mixes a single value through the splitmix64 finalizer (stateless hash).
uint64_t Mix64(uint64_t value);

// Combines a hash with a new value (boost::hash_combine style, 64-bit).
uint64_t HashCombine(uint64_t seed, uint64_t value);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool Chance(double p);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Picks an index according to `weights` (non-negative; at least one > 0).
  size_t PickWeighted(const std::vector<double>& weights);

  // Picks a uniformly random element index from a container size.
  size_t PickIndex(size_t size) { return static_cast<size_t>(NextBelow(size)); }

  // Forks a child generator whose stream is decorrelated from this one.
  Rng Fork();

  // Derives the seed of stream `stream` in the generator family rooted at
  // `root_seed`. Streams are decorrelated from each other and from the root:
  // two distinct (root_seed, stream) pairs never alias in practice. This is
  // the basis of the campaign matrix's determinism guarantee — every job
  // draws from its own stream, so results are independent of thread count
  // and of the order jobs are executed in.
  static uint64_t SplitSeed(uint64_t root_seed, uint64_t stream);

  // Convenience: a generator seeded with SplitSeed(root_seed, stream).
  static Rng Split(uint64_t root_seed, uint64_t stream) {
    return Rng(SplitSeed(root_seed, stream));
  }

  // Checkpointing (DESIGN.md §11): the full generator state — the xoshiro
  // word vector plus the Box-Muller spare — so a restored stream continues
  // exactly where the saved one stopped.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  uint64_t s_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace themis

#endif  // SRC_COMMON_RNG_H_
