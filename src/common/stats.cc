#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace themis {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
}

void RunningStat::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double RunningStat::variance() const {
  if (count_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

uint64_t QuantizeLoadDelta(double delta, double quantum) {
  if (delta <= 0.0) {
    return 0;
  }
  return static_cast<uint64_t>(std::llround(delta * quantum));
}

double LoadDimAggregate::Mean() const {
  if (count == 0) {
    return 0.0;
  }
  return static_cast<double>(sum) / static_cast<double>(count);
}

double LoadDimAggregate::VarianceNumerator() const {
  if (count == 0) {
    return 0.0;
  }
  double s = static_cast<double>(sum);
  return static_cast<double>(sum_sq) - s * s / static_cast<double>(count);
}

double LoadDimAggregate::Variance() const {
  if (count == 0) {
    return 0.0;
  }
  return VarianceNumerator() / static_cast<double>(count);
}

double LoadDimAggregate::MaxOverMeanWithFloor(double min_mean_ticks) const {
  if (count < 2) {
    return 1.0;
  }
  double mean = Mean();
  if (mean < min_mean_ticks) {
    return 1.0;
  }
  double ratio = static_cast<double>(max_delta) / mean;
  return ratio < 1.0 ? 1.0 : ratio;
}

void ConcurrentRunningStat::Add(double x) {
  std::lock_guard<std::mutex> lock(mu_);
  stat_.Add(x);
}

void ConcurrentRunningStat::Merge(const RunningStat& partial) {
  std::lock_guard<std::mutex> lock(mu_);
  stat_.Merge(partial);
}

RunningStat ConcurrentRunningStat::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stat_;
}

double MaxOverMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  double max = values.front();
  for (double v : values) {
    sum += v;
    max = std::max(max, v);
  }
  double mean = sum / static_cast<double>(values.size());
  if (mean <= 0.0) {
    return 0.0;
  }
  return max / mean;
}

double MaxSpread(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  return *max_it - *min_it;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 1.0);
  double rank = p * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace themis
