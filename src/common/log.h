// Minimal leveled logger. Quiet by default so tests and benches stay clean;
// examples raise the level to narrate what the framework is doing.

#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <string>

#include "src/common/strings.h"

namespace themis {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes "[LEVEL] message\n" to stderr if `level` is enabled.
void LogMessage(LogLevel level, const std::string& message);

#define THEMIS_LOG(level, ...)                                     \
  do {                                                             \
    if (static_cast<int>(::themis::GetLogLevel()) >=               \
        static_cast<int>(::themis::LogLevel::level)) {             \
      ::themis::LogMessage(::themis::LogLevel::level,              \
                           ::themis::Sprintf(__VA_ARGS__));        \
    }                                                              \
  } while (0)

}  // namespace themis

#endif  // SRC_COMMON_LOG_H_
