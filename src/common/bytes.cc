#include "src/common/bytes.h"

#include "src/common/strings.h"

namespace themis {

std::string FormatBytes(uint64_t bytes) {
  if (bytes >= kTiB) {
    return Sprintf("%.2f TiB", static_cast<double>(bytes) / static_cast<double>(kTiB));
  }
  if (bytes >= kGiB) {
    return Sprintf("%.2f GiB", static_cast<double>(bytes) / static_cast<double>(kGiB));
  }
  if (bytes >= kMiB) {
    return Sprintf("%.2f MiB", static_cast<double>(bytes) / static_cast<double>(kMiB));
  }
  if (bytes >= kKiB) {
    return Sprintf("%.2f KiB", static_cast<double>(bytes) / static_cast<double>(kKiB));
  }
  return Sprintf("%llu B", static_cast<unsigned long long>(bytes));
}

double SafeRatio(double a, double b) { return b == 0.0 ? 0.0 : a / b; }

}  // namespace themis
