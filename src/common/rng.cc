#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace themis {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t value) {
  uint64_t state = value;
  return SplitMix64(state);
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256** step.
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded generation, simplified: the modulo
  // bias is negligible for bounds far below 2^64, which all our uses are.
  return NextU64() % bound;
}

int64_t Rng::NextRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

size_t Rng::PickWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    total += (w > 0.0 ? w : 0.0);
  }
  if (total <= 0.0) {
    return PickIndex(weights.size());
  }
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (target < acc) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xa02bdbf7bb3c0a7ULL); }

void Rng::SaveState(SnapshotWriter& writer) const {
  for (uint64_t word : s_) writer.U64(word);
  writer.Bool(have_gaussian_);
  writer.F64(spare_gaussian_);
}

Status Rng::RestoreState(SnapshotReader& reader) {
  for (uint64_t& word : s_) word = reader.U64();
  have_gaussian_ = reader.Bool();
  spare_gaussian_ = reader.F64();
  return reader.status();
}

uint64_t Rng::SplitSeed(uint64_t root_seed, uint64_t stream) {
  // Double splitmix64 pass over the (root, stream) pair. A single xor of the
  // raw inputs would make streams of nearby roots collide; mixing the stream
  // index through the finalizer first keeps the family pairwise decorrelated.
  uint64_t state = root_seed;
  uint64_t mixed = SplitMix64(state);
  state = mixed ^ Mix64(stream + 0x632be59bd9b4e019ULL);
  return SplitMix64(state);
}

}  // namespace themis
