#include "src/common/status.h"

namespace themis {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfSpace:
      return "OUT_OF_SPACE";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace themis
