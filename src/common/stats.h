// Streaming and one-shot statistics helpers used by the load models and by
// the imbalance detector.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace themis {

// Welford streaming mean/variance with min/max tracking.
class RunningStat {
 public:
  void Add(double x);
  void Reset();

  // Folds another stat into this one (Chan et al. parallel combine), so
  // per-thread partials can be merged into a campaign-matrix roll-up.
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Mutex-guarded RunningStat for aggregation across campaign-runner worker
// threads. Writers call Add/Merge concurrently; readers take a Snapshot once
// the jobs they care about have completed.
class ConcurrentRunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& partial);
  RunningStat Snapshot() const;

 private:
  mutable std::mutex mu_;
  RunningStat stat_;
};

// max(values) / mean(values); 0 if the series is empty or the mean is 0.
// This is the "MAX / (1/n)*SUM" quantity of the paper's LBS definition.
double MaxOverMean(const std::vector<double>& values);

// Largest pairwise absolute difference, i.e. max - min.
double MaxSpread(const std::vector<double>& values);

// Arithmetic mean; 0 for an empty series.
double Mean(const std::vector<double>& values);

// p in [0, 1]; linear-interpolated percentile of a copy of `values`.
double Percentile(std::vector<double> values, double p);

}  // namespace themis

#endif  // SRC_COMMON_STATS_H_
