// Streaming and one-shot statistics helpers used by the load models and by
// the imbalance detector.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/clock.h"

namespace themis {

// ---------------------------------------------------------------------------
// Streaming load-stats aggregates (DESIGN.md §13).
//
// The push-based observation path maintains these incrementally at every
// load mutation; the pull-based full scan (the debug oracle) rebuilds them
// from samples. Both must produce bit-identical values, so every aggregate
// is an integer: network deltas are integer counters already, and CPU
// deltas / utilization fractions are quantized to fixed point first. Integer
// sums are order-independent, which is what makes incremental maintenance
// exactly equal to a sequential scan — a running sum of raw doubles never
// would be.

// CPU-seconds fixed-point scale: 2^-20 s resolution (~1 µs of virtual CPU).
inline constexpr double kCpuLoadQuantum = 1048576.0;  // 2^20 ticks / second
// Utilization-fraction fixed-point scale for the variance numerator.
inline constexpr double kUtilizationQuantum = 4294967296.0;  // 2^32 ticks

// Widened accumulator for sums of squared ticks.
using Uint128 = unsigned __int128;

// Rounds a non-negative rate delta to fixed-point ticks.
uint64_t QuantizeLoadDelta(double delta, double quantum);

// Per-dimension, per-node-group window aggregate in fixed-point ticks:
// running sum, sum of squares (the Welford-style variance numerator is
// sum_sq - sum^2/n) and the instant max. Because per-node deltas only grow
// within a window (the underlying counters are cumulative) the max needs no
// ordered index — a plain monotone high-water mark, re-scanned only on the
// rare group-membership removal, replaces the YDB-style multiset without
// any hot-path allocation.
struct LoadDimAggregate {
  uint64_t sum = 0;        // Σ delta, ticks
  Uint128 sum_sq = 0;      // Σ delta², ticks²
  uint64_t max_delta = 0;  // max over current group members, ticks
  uint32_t count = 0;      // group size (serving nodes, zero deltas included)

  double Mean() const;  // ticks; 0 for an empty group
  // Welford variance numerator Σ(x - mean)² = Σx² - (Σx)²/n, ticks².
  double VarianceNumerator() const;
  double Variance() const;  // population variance, ticks²
  // max/mean with the no-signal floor (both in ticks): groups smaller than
  // two or with a sub-floor mean read as perfectly even (ratio 1).
  double MaxOverMeanWithFloor(double min_mean_ticks) const;

  bool operator==(const LoadDimAggregate&) const = default;
};

// One O(1) reading of the streaming load aggregates — everything the load
// variance model needs to produce a LoadVarianceSnapshot without touching a
// single node. Produced either incrementally (DfsCluster) or by the
// full-scan oracle (LoadVarianceModel::OracleStats); the two must match
// exactly (tests/streaming_stats_test.cc).
struct LoadStatsSnapshot {
  SimTime taken_at = 0;

  // Windowed-rate dimensions, split by node group (management vs storage).
  LoadDimAggregate cpu_storage;
  LoadDimAggregate cpu_meta;
  LoadDimAggregate net_storage;
  LoadDimAggregate net_meta;

  // Storage dimension: utilization fractions over serving storage nodes
  // with online capacity. max/fleet are the ratio inputs; the quantized
  // sums expose the spread's variance numerator to feedback consumers.
  uint32_t fraction_nodes = 0;
  double max_fraction = 0.0;
  uint64_t storage_used = 0;  // Σ used_bytes over fraction_nodes
  uint64_t storage_cap = 0;   // Σ capacity_bytes over fraction_nodes
  uint64_t frac_sum = 0;      // Σ quantized fraction, ticks
  Uint128 frac_sum_sq = 0;    // Σ quantized fraction², ticks²

  uint32_t serving_storage_nodes = 0;
  bool any_crashed = false;

  bool operator==(const LoadStatsSnapshot&) const = default;
};

// Welford streaming mean/variance with min/max tracking.
class RunningStat {
 public:
  void Add(double x);
  void Reset();

  // Folds another stat into this one (Chan et al. parallel combine), so
  // per-thread partials can be merged into a campaign-matrix roll-up.
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Mutex-guarded RunningStat for aggregation across campaign-runner worker
// threads. Writers call Add/Merge concurrently; readers take a Snapshot once
// the jobs they care about have completed.
class ConcurrentRunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& partial);
  RunningStat Snapshot() const;

 private:
  mutable std::mutex mu_;
  RunningStat stat_;
};

// max(values) / mean(values); 0 if the series is empty or the mean is 0.
// This is the "MAX / (1/n)*SUM" quantity of the paper's LBS definition.
double MaxOverMean(const std::vector<double>& values);

// Largest pairwise absolute difference, i.e. max - min.
double MaxSpread(const std::vector<double>& values);

// Arithmetic mean; 0 for an empty series.
double Mean(const std::vector<double>& values);

// p in [0, 1]; linear-interpolated percentile of a copy of `values`.
double Percentile(std::vector<double> values, double p);

}  // namespace themis

#endif  // SRC_COMMON_STATS_H_
