// Lightweight status / result types used across the Themis code base.
//
// We deliberately avoid exceptions on the hot fuzzing path: every fallible
// operation returns a Status (or a Result<T>) that the caller must inspect.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace themis {

enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound,        // file / node / volume does not exist
  kAlreadyExists,   // namespace or membership collision
  kInvalidArgument, // malformed operation
  kOutOfSpace,      // cluster capacity exhausted
  kUnavailable,     // target node offline / crashed
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,        // a bug inside the system under test surfaced as an error
  kDataLoss,        // persisted state (e.g. a snapshot) is corrupt or truncated
};

std::string_view StatusCodeName(StatusCode code);

// A cheap, copyable status value. The OK status carries no message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfSpace(std::string msg) {
    return Status(StatusCode::kOutOfSpace, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T>: either a value or an error Status. Minimal expected<>-style type
// (GCC 12 lacks std::expected).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const { return *value_; }
  T& value() { return *value_; }
  T&& take() { return std::move(*value_); }

  const T& operator*() const { return *value_; }
  T& operator*() { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace themis

#endif  // SRC_COMMON_STATUS_H_
