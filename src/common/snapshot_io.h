// Binary snapshot serialization substrate (DESIGN.md §11).
//
// SnapshotWriter/SnapshotReader implement a little-endian, fixed-width,
// length-prefixed encoding used by the campaign checkpoint format. The
// reader is bounds-checked with a sticky error: any out-of-range read fails
// the whole reader (subsequent reads return zero values) and status()
// reports the first failure with its byte offset, so deserialization code
// can read a whole record linearly and check once at the end — a truncated
// or bit-flipped snapshot can never crash or silently half-load.
//
// The encoding is deliberately dumb: no varints, no tags, no reflection.
// Every field is written and read in one fixed order; the format version in
// the snapshot header (src/harness/snapshot.h) is the only schema evolution
// mechanism.

#ifndef SRC_COMMON_SNAPSHOT_IO_H_
#define SRC_COMMON_SNAPSHOT_IO_H_

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace themis {

// FNV-1a 64-bit checksum over a byte range (the snapshot payload digest).
uint64_t Fnv1a64(std::string_view data);

class SnapshotWriter {
 public:
  void U8(uint8_t value) { buf_.push_back(static_cast<char>(value)); }
  void U32(uint32_t value);
  void U64(uint64_t value);
  void I64(int64_t value) { U64(static_cast<uint64_t>(value)); }
  void Bool(bool value) { U8(value ? 1 : 0); }
  void F64(double value) { U64(std::bit_cast<uint64_t>(value)); }
  void Str(std::string_view value);

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  bool Bool() { return U8() != 0; }
  double F64() { return std::bit_cast<double>(U64()); }
  std::string Str();

  // Reads an element count for a container whose elements occupy at least
  // `min_elem_bytes` each, and fails unless that many elements can still be
  // present in the remaining bytes — so corrupt counts can never drive a
  // multi-gigabyte reserve() or an unbounded loop.
  uint64_t Count(size_t min_elem_bytes);

  // Marks the reader failed with a semantic (non-bounds) error, e.g. a field
  // value that cannot be valid. First failure wins.
  void Fail(std::string message);

  bool ok() const { return error_.empty(); }
  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  // Ok, or the first failure ("snapshot read failed at byte N: ...").
  Status status() const;

 private:
  // Takes `n` bytes or fails; returns nullptr on failure.
  const char* Take(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace themis

#endif  // SRC_COMMON_SNAPSHOT_IO_H_
