#include "src/common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace themis {

std::string Sprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string NormalizePath(std::string_view path) {
  std::string out = "/";
  for (std::string_view part : Split(path, '/')) {
    if (part.empty()) {
      continue;
    }
    if (out.back() != '/') {
      out += '/';
    }
    out += part;
  }
  return out;
}

bool IsNormalizedPath(std::string_view path) {
  if (path == "/") {
    return true;
  }
  if (path.size() < 2 || path.front() != '/' || path.back() == '/') {
    return false;
  }
  for (size_t i = 1; i < path.size(); ++i) {
    if (path[i] == '/' && path[i - 1] == '/') {
      return false;
    }
  }
  return true;
}

std::string ParentPath(std::string_view path) {
  if (path.empty() || path == "/") {
    return "/";
  }
  size_t pos = path.rfind('/');
  if (pos == 0) {
    return "/";
  }
  if (pos == std::string_view::npos) {
    return "/";
  }
  return std::string(path.substr(0, pos));
}

std::string_view Basename(std::string_view path) {
  if (path.empty() || path == "/") {
    return {};
  }
  size_t pos = path.rfind('/');
  if (pos == std::string_view::npos) {
    return path;
  }
  return path.substr(pos + 1);
}

}  // namespace themis
