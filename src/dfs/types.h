// Shared identifier and enum types for the DFS simulator.

#ifndef SRC_DFS_TYPES_H_
#define SRC_DFS_TYPES_H_

#include <cstdint>
#include <string_view>

namespace themis {

using NodeId = uint32_t;
using BrickId = uint32_t;
using VolumeId = uint32_t;
using FileId = uint64_t;
// Interned normalized path (see dfs/path_table.h). Ids are dense indexes
// into one PathTable instance; id 0 is always the root directory "/".
using PathId = uint32_t;

constexpr NodeId kInvalidNode = 0xffffffffu;
constexpr BrickId kInvalidBrick = 0xffffffffu;
constexpr VolumeId kInvalidVolume = 0xffffffffu;
constexpr PathId kRootPathId = 0;
constexpr PathId kInvalidPathId = 0xffffffffu;

// The four DFS architectures the paper evaluates, a slot for user-provided
// systems adapted through DfsInterface, and GeoFS — an EOS-style geo-aware
// flavor (geotag tree + scheduling groups) for production-scale clusters.
enum class Flavor : uint8_t {
  kHdfs = 0,
  kCeph = 1,
  kGluster = 2,
  kLeo = 3,
  kCustom = 4,
  kGeo = 5,
};

std::string_view FlavorName(Flavor flavor);

// Virtual branch space per flavor (see src/coverage/coverage.h). Sized so
// that saturated Themis campaigns land near the paper's Table 5 magnitudes.
size_t FlavorBranchSpace(Flavor flavor);

}  // namespace themis

#endif  // SRC_DFS_TYPES_H_
