#include "src/dfs/operation.h"

#include "src/common/bytes.h"
#include "src/common/strings.h"

namespace themis {

OpClass ClassOf(OpKind kind) {
  switch (kind) {
    case OpKind::kCreate:
    case OpKind::kDelete:
    case OpKind::kAppend:
    case OpKind::kOverwrite:
    case OpKind::kOpen:
    case OpKind::kTruncateOverwrite:
    case OpKind::kMkdir:
    case OpKind::kRmdir:
    case OpKind::kRename:
      return OpClass::kFile;
    case OpKind::kAddMetaNode:
    case OpKind::kRemoveMetaNode:
    case OpKind::kAddStorageNode:
    case OpKind::kRemoveStorageNode:
      return OpClass::kNode;
    case OpKind::kAddVolume:
    case OpKind::kRemoveVolume:
    case OpKind::kExpandVolume:
    case OpKind::kReduceVolume:
      return OpClass::kVolume;
    case OpKind::kEnvMsgLoss:
    case OpKind::kEnvMsgReorder:
    case OpKind::kEnvMsgDuplicate:
    case OpKind::kEnvMsgCorrupt:
    case OpKind::kEnvSlowDisk:
    case OpKind::kEnvCrashNode:
    case OpKind::kEnvClearFaults:
      return OpClass::kEnvFault;
  }
  return OpClass::kFile;
}

bool IsConfigOp(OpKind kind) {
  OpClass cls = ClassOf(kind);
  return cls == OpClass::kNode || cls == OpClass::kVolume;
}

bool IsEnvFaultOp(OpKind kind) { return ClassOf(kind) == OpClass::kEnvFault; }

std::string_view OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kCreate:
      return "create";
    case OpKind::kDelete:
      return "delete";
    case OpKind::kAppend:
      return "append";
    case OpKind::kOverwrite:
      return "overwrite";
    case OpKind::kOpen:
      return "open";
    case OpKind::kTruncateOverwrite:
      return "truncate-overwrite";
    case OpKind::kMkdir:
      return "mkdir";
    case OpKind::kRmdir:
      return "rmdir";
    case OpKind::kRename:
      return "rename";
    case OpKind::kAddMetaNode:
      return "add_MN";
    case OpKind::kRemoveMetaNode:
      return "remove_MN";
    case OpKind::kAddStorageNode:
      return "add_storage";
    case OpKind::kRemoveStorageNode:
      return "remove_storage";
    case OpKind::kAddVolume:
      return "add_volume";
    case OpKind::kRemoveVolume:
      return "remove_volume";
    case OpKind::kExpandVolume:
      return "expand_volume";
    case OpKind::kReduceVolume:
      return "reduce_volume";
    case OpKind::kEnvMsgLoss:
      return "env_msg_loss";
    case OpKind::kEnvMsgReorder:
      return "env_msg_reorder";
    case OpKind::kEnvMsgDuplicate:
      return "env_msg_duplicate";
    case OpKind::kEnvMsgCorrupt:
      return "env_msg_corrupt";
    case OpKind::kEnvSlowDisk:
      return "env_slow_disk";
    case OpKind::kEnvCrashNode:
      return "env_crash_node";
    case OpKind::kEnvClearFaults:
      return "env_clear_faults";
  }
  return "?";
}

OpKind OpKindFromIndex(int index) {
  return static_cast<OpKind>(index % kOpKindCount);
}

OpKind OpKindFromTotalIndex(int index) {
  return static_cast<OpKind>(index % kTotalOpKindCount);
}

std::string Operation::ToString() const {
  std::string out(OpKindName(kind));
  switch (ClassOf(kind)) {
    case OpClass::kFile:
      out += " ";
      out += path;
      if (kind == OpKind::kRename) {
        out += " -> " + path2;
      }
      if (kind == OpKind::kCreate || kind == OpKind::kAppend ||
          kind == OpKind::kOverwrite || kind == OpKind::kTruncateOverwrite) {
        out += " " + FormatBytes(size);
      }
      break;
    case OpClass::kNode:
      if (node != kInvalidNode) {
        out += Sprintf(" node%u", node);
      }
      break;
    case OpClass::kVolume:
      if (brick != kInvalidBrick) {
        out += Sprintf(" brick%u", brick);
      }
      if (kind == OpKind::kAddVolume || kind == OpKind::kExpandVolume ||
          kind == OpKind::kReduceVolume) {
        out += " " + FormatBytes(size);
      }
      break;
    case OpClass::kEnvFault:
      switch (kind) {
        case OpKind::kEnvMsgLoss:
        case OpKind::kEnvMsgReorder:
        case OpKind::kEnvMsgDuplicate:
        case OpKind::kEnvMsgCorrupt:
          out += Sprintf(" %llu/1000", static_cast<unsigned long long>(size));
          break;
        case OpKind::kEnvSlowDisk:
          out += Sprintf(" node%u x%llu%%", node,
                         static_cast<unsigned long long>(size));
          break;
        case OpKind::kEnvCrashNode:
          out += Sprintf(" node%u restart+%llus", node,
                         static_cast<unsigned long long>(size));
          break;
        case OpKind::kEnvClearFaults:
          break;
        default:
          break;
      }
      break;
  }
  return out;
}

}  // namespace themis
