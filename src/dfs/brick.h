// Brick model. A brick is one unit of storage capacity attached to a storage
// node (a GlusterFS brick, an HDFS DataNode volume/disk, a Ceph OSD device,
// a LeoFS AVS container). Volume operations (add/remove/expand/reduce) act
// on bricks; placement policies place chunk replicas onto bricks.

#ifndef SRC_DFS_BRICK_H_
#define SRC_DFS_BRICK_H_

#include <cstdint>

#include "src/dfs/types.h"

namespace themis {

struct Brick {
  BrickId id = kInvalidBrick;
  NodeId node = kInvalidNode;
  uint64_t capacity_bytes = 0;
  uint64_t used_bytes = 0;
  bool online = true;
  // Number of small DHT "linkfiles" parked on this brick (GlusterFS flavor).
  uint32_t linkfiles = 0;

  uint64_t FreeBytes() const {
    return used_bytes >= capacity_bytes ? 0 : capacity_bytes - used_bytes;
  }
  double UsedFraction() const {
    return capacity_bytes == 0
               ? 0.0
               : static_cast<double>(used_bytes) / static_cast<double>(capacity_bytes);
  }
};

}  // namespace themis

#endif  // SRC_DFS_BRICK_H_
