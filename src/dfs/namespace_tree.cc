#include "src/dfs/namespace_tree.h"

#include "src/common/strings.h"

namespace themis {

NamespaceTree::NamespaceTree() { Clear(); }

void NamespaceTree::Clear() {
  entries_.clear();
  id_to_path_.clear();
  next_file_id_ = 1;
  file_count_ = 0;
  dir_count_ = 0;
  total_bytes_ = 0;
  entries_["/"] = NamespaceEntry{.is_dir = true};
}

bool NamespaceTree::HasChildren(const std::string& dir_prefix) const {
  // dir_prefix must end with '/'. Any key strictly greater than the prefix
  // that still starts with it is a child.
  auto it = entries_.upper_bound(dir_prefix);
  return it != entries_.end() && StartsWith(it->first, dir_prefix);
}

Status NamespaceTree::MakeDir(std::string_view path) {
  std::string norm = NormalizePath(path);
  if (norm == "/") {
    return Status::AlreadyExists("root always exists");
  }
  if (entries_.count(norm) != 0) {
    return Status::AlreadyExists(norm);
  }
  std::string parent = ParentPath(norm);
  auto parent_it = entries_.find(parent);
  if (parent_it == entries_.end() || !parent_it->second.is_dir) {
    return Status::NotFound("parent " + parent);
  }
  entries_[norm] = NamespaceEntry{.is_dir = true};
  ++dir_count_;
  return Status::Ok();
}

Status NamespaceTree::RemoveDir(std::string_view path) {
  std::string norm = NormalizePath(path);
  if (norm == "/") {
    return Status::InvalidArgument("cannot remove root");
  }
  auto it = entries_.find(norm);
  if (it == entries_.end() || !it->second.is_dir) {
    return Status::NotFound(norm);
  }
  if (HasChildren(norm + "/")) {
    return Status::FailedPrecondition("directory not empty: " + norm);
  }
  entries_.erase(it);
  --dir_count_;
  return Status::Ok();
}

Result<FileId> NamespaceTree::CreateFile(std::string_view path, uint64_t size) {
  std::string norm = NormalizePath(path);
  if (norm == "/") {
    return Status::InvalidArgument("cannot create file at root path");
  }
  if (entries_.count(norm) != 0) {
    return Status::AlreadyExists(norm);
  }
  std::string parent = ParentPath(norm);
  auto parent_it = entries_.find(parent);
  if (parent_it == entries_.end() || !parent_it->second.is_dir) {
    return Status::NotFound("parent " + parent);
  }
  FileId id = next_file_id_++;
  entries_[norm] = NamespaceEntry{.is_dir = false, .file_id = id, .size = size};
  id_to_path_[id] = norm;
  ++file_count_;
  total_bytes_ += size;
  return id;
}

Status NamespaceTree::RemoveFile(std::string_view path) {
  std::string norm = NormalizePath(path);
  auto it = entries_.find(norm);
  if (it == entries_.end() || it->second.is_dir) {
    return Status::NotFound(norm);
  }
  total_bytes_ -= it->second.size;
  id_to_path_.erase(it->second.file_id);
  entries_.erase(it);
  --file_count_;
  return Status::Ok();
}

Status NamespaceTree::SetFileSize(std::string_view path, uint64_t size) {
  std::string norm = NormalizePath(path);
  auto it = entries_.find(norm);
  if (it == entries_.end() || it->second.is_dir) {
    return Status::NotFound(norm);
  }
  total_bytes_ -= it->second.size;
  it->second.size = size;
  total_bytes_ += size;
  return Status::Ok();
}

Status NamespaceTree::Rename(std::string_view from, std::string_view to) {
  std::string src = NormalizePath(from);
  std::string dst = NormalizePath(to);
  if (src == "/" || dst == "/") {
    return Status::InvalidArgument("cannot rename root");
  }
  if (src == dst) {
    return Status::InvalidArgument("rename onto itself");
  }
  auto src_it = entries_.find(src);
  if (src_it == entries_.end()) {
    return Status::NotFound(src);
  }
  if (entries_.count(dst) != 0) {
    return Status::AlreadyExists(dst);
  }
  std::string dst_parent = ParentPath(dst);
  auto parent_it = entries_.find(dst_parent);
  if (parent_it == entries_.end() || !parent_it->second.is_dir) {
    return Status::NotFound("destination parent " + dst_parent);
  }
  if (src_it->second.is_dir) {
    // Moving a directory under itself would orphan the subtree.
    if (StartsWith(dst, src + "/")) {
      return Status::InvalidArgument("cannot move a directory under itself");
    }
    // Rewrite the whole subtree.
    std::string prefix = src + "/";
    std::vector<std::pair<std::string, NamespaceEntry>> moved;
    moved.emplace_back(dst, src_it->second);
    for (auto it = entries_.upper_bound(prefix);
         it != entries_.end() && StartsWith(it->first, prefix); ++it) {
      moved.emplace_back(dst + "/" + it->first.substr(prefix.size()), it->second);
    }
    // Erase old keys (subtree + the directory itself).
    auto begin = entries_.lower_bound(src);
    auto end = entries_.upper_bound(prefix + "\xff");
    for (auto it = begin; it != end;) {
      if (it->first == src || StartsWith(it->first, prefix)) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& [key, entry] : moved) {
      if (!entry.is_dir) {
        id_to_path_[entry.file_id] = key;
      }
      entries_[key] = entry;
    }
    return Status::Ok();
  }
  NamespaceEntry entry = src_it->second;
  entries_.erase(src_it);
  entries_[dst] = entry;
  id_to_path_[entry.file_id] = dst;
  return Status::Ok();
}

const NamespaceEntry* NamespaceTree::Find(std::string_view path) const {
  auto it = entries_.find(NormalizePath(path));
  return it == entries_.end() ? nullptr : &it->second;
}

bool NamespaceTree::IsFile(std::string_view path) const {
  const NamespaceEntry* e = Find(path);
  return e != nullptr && !e->is_dir;
}

bool NamespaceTree::IsDir(std::string_view path) const {
  const NamespaceEntry* e = Find(path);
  return e != nullptr && e->is_dir;
}

Result<FileId> NamespaceTree::FileIdOf(std::string_view path) const {
  const NamespaceEntry* e = Find(path);
  if (e == nullptr || e->is_dir) {
    return Status::NotFound(std::string(path));
  }
  return e->file_id;
}

std::vector<std::string> NamespaceTree::ListFiles() const {
  std::vector<std::string> out;
  out.reserve(file_count_);
  for (const auto& [path, entry] : entries_) {
    if (!entry.is_dir) {
      out.push_back(path);
    }
  }
  return out;
}

std::string NamespaceTree::PathOf(FileId id) const {
  auto it = id_to_path_.find(id);
  return it == id_to_path_.end() ? std::string() : it->second;
}

void NamespaceTree::SaveState(SnapshotWriter& writer) const {
  writer.U64(entries_.size());
  for (const auto& [path, entry] : entries_) {
    writer.Str(path);
    writer.Bool(entry.is_dir);
    writer.U64(entry.file_id);
    writer.U64(entry.size);
  }
  writer.U64(next_file_id_);
}

Status NamespaceTree::RestoreState(SnapshotReader& reader) {
  uint64_t count = reader.Count(8 + 1 + 8 + 8);
  entries_.clear();
  id_to_path_.clear();
  file_count_ = 0;
  dir_count_ = 0;
  total_bytes_ = 0;
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    std::string path = reader.Str();
    NamespaceEntry entry;
    entry.is_dir = reader.Bool();
    entry.file_id = reader.U64();
    entry.size = reader.U64();
    if (!reader.ok()) break;
    if (entry.is_dir) {
      if (path != "/") ++dir_count_;
    } else {
      ++file_count_;
      total_bytes_ += entry.size;
      id_to_path_[entry.file_id] = path;
    }
    entries_[std::move(path)] = entry;
  }
  next_file_id_ = reader.U64();
  if (reader.ok() && entries_.count("/") == 0) {
    reader.Fail("namespace snapshot has no root directory entry");
  }
  return reader.status();
}

}  // namespace themis
