#include "src/dfs/namespace_tree.h"

#include <algorithm>
#include <utility>

#include "src/common/strings.h"

namespace themis {

NamespaceTree::NamespaceTree() { Clear(); }

void NamespaceTree::Clear() {
  // Resetting the table starts a new generation, which invalidates every
  // PathId cached in Operations — and lets the interner's memory be
  // reclaimed instead of accreting names across cluster resets.
  table_.Reset();
  states_.clear();
  id_to_path_.clear();
  next_file_id_ = 1;
  file_count_ = 0;
  dir_count_ = 0;
  total_bytes_ = 0;
  EnsureStates();
  states_[kRootPathId].present = true;
  states_[kRootPathId].entry = NamespaceEntry{.is_dir = true};
}

void NamespaceTree::LinkChild(PathId id) {
  PathId parent = table_.Parent(id);
  NodeState& s = states_[id];
  NodeState& p = states_[parent];
  s.prev_sibling = kInvalidPathId;
  s.next_sibling = p.first_child;
  if (p.first_child != kInvalidPathId) {
    states_[p.first_child].prev_sibling = id;
  }
  p.first_child = id;
  ++p.child_count;
}

void NamespaceTree::UnlinkChild(PathId id) {
  PathId parent = table_.Parent(id);
  NodeState& s = states_[id];
  if (s.prev_sibling != kInvalidPathId) {
    states_[s.prev_sibling].next_sibling = s.next_sibling;
  } else {
    states_[parent].first_child = s.next_sibling;
  }
  if (s.next_sibling != kInvalidPathId) {
    states_[s.next_sibling].prev_sibling = s.prev_sibling;
  }
  s.prev_sibling = kInvalidPathId;
  s.next_sibling = kInvalidPathId;
  --states_[parent].child_count;
}

PathId NamespaceTree::ResolveOpPath(const Operation& op) {
  Operation::PathCache& cache = op.path_cache;
  if (cache.generation != table_.generation()) {
    cache.generation = table_.generation();
    cache.id = kInvalidPathId;
    cache.id2 = kInvalidPathId;
  }
  if (cache.id == kInvalidPathId) {
    cache.id = table_.Intern(op.path);
    EnsureStates();
  }
  return cache.id;
}

PathId NamespaceTree::ResolveOpPath2(const Operation& op) {
  Operation::PathCache& cache = op.path_cache;
  if (cache.generation != table_.generation()) {
    cache.generation = table_.generation();
    cache.id = kInvalidPathId;
    cache.id2 = kInvalidPathId;
  }
  if (cache.id2 == kInvalidPathId) {
    cache.id2 = table_.Intern(op.path2);
    EnsureStates();
  }
  return cache.id2;
}

Status NamespaceTree::MakeDir(PathId id) {
  if (id == kRootPathId) {
    return Status::AlreadyExists("root always exists");
  }
  NodeState& s = states_[id];
  if (s.present) {
    return Status::AlreadyExists(table_.PathString(id));
  }
  PathId parent = table_.Parent(id);
  const NodeState& p = states_[parent];
  if (!p.present || !p.entry.is_dir) {
    return Status::NotFound("parent " + table_.PathString(parent));
  }
  s.present = true;
  s.entry = NamespaceEntry{.is_dir = true};
  LinkChild(id);
  ++dir_count_;
  return Status::Ok();
}

Status NamespaceTree::RemoveDir(PathId id) {
  if (id == kRootPathId) {
    return Status::InvalidArgument("cannot remove root");
  }
  NodeState& s = states_[id];
  if (!s.present || !s.entry.is_dir) {
    return Status::NotFound(table_.PathString(id));
  }
  if (s.child_count != 0) {
    return Status::FailedPrecondition("directory not empty: " +
                                      table_.PathString(id));
  }
  UnlinkChild(id);
  s.present = false;
  --dir_count_;
  return Status::Ok();
}

Result<FileId> NamespaceTree::CreateFile(PathId id, uint64_t size) {
  if (id == kRootPathId) {
    return Status::InvalidArgument("cannot create file at root path");
  }
  NodeState& s = states_[id];
  if (s.present) {
    return Status::AlreadyExists(table_.PathString(id));
  }
  PathId parent = table_.Parent(id);
  const NodeState& p = states_[parent];
  if (!p.present || !p.entry.is_dir) {
    return Status::NotFound("parent " + table_.PathString(parent));
  }
  FileId file_id = next_file_id_++;
  s.present = true;
  s.entry = NamespaceEntry{.is_dir = false, .file_id = file_id, .size = size};
  LinkChild(id);
  id_to_path_[file_id] = id;
  ++file_count_;
  total_bytes_ += size;
  return file_id;
}

Status NamespaceTree::RemoveFile(PathId id) {
  NodeState& s = states_[id];
  if (!s.present || s.entry.is_dir) {
    return Status::NotFound(table_.PathString(id));
  }
  total_bytes_ -= s.entry.size;
  id_to_path_.erase(s.entry.file_id);
  UnlinkChild(id);
  s.present = false;
  --file_count_;
  return Status::Ok();
}

Status NamespaceTree::SetFileSize(PathId id, uint64_t size) {
  NodeState& s = states_[id];
  if (!s.present || s.entry.is_dir) {
    return Status::NotFound(table_.PathString(id));
  }
  total_bytes_ -= s.entry.size;
  s.entry.size = size;
  total_bytes_ += size;
  return Status::Ok();
}

void NamespaceTree::MoveSubtree(PathId src, PathId dst) {
  struct Move {
    PathId from;
    PathId to;
  };
  std::vector<Move> stack;
  stack.push_back(Move{src, dst});
  while (!stack.empty()) {
    Move m = stack.back();
    stack.pop_back();
    // Queue live children first: InternChild may grow the table (and the
    // states_ array), so all state access below goes through fresh indexing.
    if (states_[m.from].entry.is_dir) {
      for (PathId c = states_[m.from].first_child; c != kInvalidPathId;
           c = states_[c].next_sibling) {
        PathId nc = table_.InternChild(m.to, table_.Component(c));
        EnsureStates();
        stack.push_back(Move{c, nc});
      }
    }
    NamespaceEntry entry = states_[m.from].entry;
    UnlinkChild(m.from);
    states_[m.from].present = false;
    states_[m.to].entry = entry;
    states_[m.to].present = true;
    LinkChild(m.to);
    if (!entry.is_dir) {
      id_to_path_[entry.file_id] = m.to;
    }
  }
}

Status NamespaceTree::Rename(PathId src, PathId dst) {
  if (src == kRootPathId || dst == kRootPathId) {
    return Status::InvalidArgument("cannot rename root");
  }
  if (src == dst) {
    return Status::InvalidArgument("rename onto itself");
  }
  if (!states_[src].present) {
    return Status::NotFound(table_.PathString(src));
  }
  if (states_[dst].present) {
    return Status::AlreadyExists(table_.PathString(dst));
  }
  PathId dst_parent = table_.Parent(dst);
  const NodeState& dp = states_[dst_parent];
  if (!dp.present || !dp.entry.is_dir) {
    return Status::NotFound("destination parent " +
                            table_.PathString(dst_parent));
  }
  if (states_[src].entry.is_dir && table_.IsAncestor(src, dst)) {
    // Moving a directory under itself would orphan the subtree.
    return Status::InvalidArgument("cannot move a directory under itself");
  }
  MoveSubtree(src, dst);
  return Status::Ok();
}

const NamespaceEntry* NamespaceTree::Find(PathId id) const {
  const NodeState* s = StateOf(id);
  return (s != nullptr && s->present) ? &s->entry : nullptr;
}

Result<FileId> NamespaceTree::FileIdOf(PathId id) const {
  const NamespaceEntry* e = Find(id);
  if (e == nullptr || e->is_dir) {
    return Status::NotFound(table_.PathString(id));
  }
  return e->file_id;
}

// ---- string-keyed API: resolve through the interner, then delegate ----

Status NamespaceTree::MakeDir(std::string_view path) {
  PathId id = table_.Intern(path);
  EnsureStates();
  return MakeDir(id);
}

Status NamespaceTree::RemoveDir(std::string_view path) {
  PathId id = table_.Intern(path);
  EnsureStates();
  return RemoveDir(id);
}

Result<FileId> NamespaceTree::CreateFile(std::string_view path, uint64_t size) {
  PathId id = table_.Intern(path);
  EnsureStates();
  return CreateFile(id, size);
}

Status NamespaceTree::RemoveFile(std::string_view path) {
  PathId id = table_.Intern(path);
  EnsureStates();
  return RemoveFile(id);
}

Status NamespaceTree::SetFileSize(std::string_view path, uint64_t size) {
  PathId id = table_.Intern(path);
  EnsureStates();
  return SetFileSize(id, size);
}

Status NamespaceTree::Rename(std::string_view from, std::string_view to) {
  PathId src = table_.Intern(from);
  PathId dst = table_.Intern(to);
  EnsureStates();
  return Rename(src, dst);
}

const NamespaceEntry* NamespaceTree::Find(std::string_view path) const {
  PathId id = table_.Lookup(path);
  return id == kInvalidPathId ? nullptr : Find(id);
}

bool NamespaceTree::IsFile(std::string_view path) const {
  const NamespaceEntry* e = Find(path);
  return e != nullptr && !e->is_dir;
}

bool NamespaceTree::IsDir(std::string_view path) const {
  const NamespaceEntry* e = Find(path);
  return e != nullptr && e->is_dir;
}

Result<FileId> NamespaceTree::FileIdOf(std::string_view path) const {
  const NamespaceEntry* e = Find(path);
  if (e == nullptr || e->is_dir) {
    return Status::NotFound(std::string(path));
  }
  return e->file_id;
}

std::vector<std::string> NamespaceTree::ListFiles() const {
  std::vector<std::string> out;
  out.reserve(file_count_);
  for (PathId id = 0; id < states_.size(); ++id) {
    if (states_[id].present && !states_[id].entry.is_dir) {
      out.push_back(table_.PathString(id));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string NamespaceTree::PathOf(FileId id) const {
  auto it = id_to_path_.find(id);
  return it == id_to_path_.end() ? std::string() : table_.PathString(it->second);
}

void NamespaceTree::SaveState(SnapshotWriter& writer) const {
  std::vector<std::pair<std::string, const NamespaceEntry*>> rows;
  rows.reserve(file_count_ + dir_count_ + 1);
  for (PathId id = 0; id < states_.size(); ++id) {
    if (states_[id].present) {
      rows.emplace_back(table_.PathString(id), &states_[id].entry);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  writer.U64(rows.size());
  for (const auto& [path, entry] : rows) {
    writer.Str(path);
    writer.Bool(entry->is_dir);
    writer.U64(entry->file_id);
    writer.U64(entry->size);
  }
  writer.U64(next_file_id_);
}

Status NamespaceTree::RestoreState(SnapshotReader& reader) {
  uint64_t count = reader.Count(8 + 1 + 8 + 8);
  table_.Reset();
  states_.clear();
  id_to_path_.clear();
  file_count_ = 0;
  dir_count_ = 0;
  total_bytes_ = 0;
  EnsureStates();
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    std::string path = reader.Str();
    NamespaceEntry entry;
    entry.is_dir = reader.Bool();
    entry.file_id = reader.U64();
    entry.size = reader.U64();
    if (!reader.ok()) break;
    PathId id = table_.Intern(path);
    EnsureStates();
    if (entry.is_dir) {
      if (id != kRootPathId) ++dir_count_;
    } else {
      ++file_count_;
      total_bytes_ += entry.size;
      id_to_path_[entry.file_id] = id;
    }
    NodeState& s = states_[id];
    bool was_present = s.present;
    s.entry = entry;
    s.present = true;
    if (!was_present && id != kRootPathId) {
      LinkChild(id);
    }
  }
  next_file_id_ = reader.U64();
  if (reader.ok() &&
      (states_.empty() || !states_[kRootPathId].present)) {
    reader.Fail("namespace snapshot has no root directory entry");
  }
  return reader.status();
}

}  // namespace themis
