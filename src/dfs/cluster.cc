#include "src/dfs/cluster.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "src/common/log.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/telemetry/metrics.h"

namespace themis {

namespace {

// CPU cost model (virtual seconds of CPU work).
constexpr double kMetaCpuPerOp = 0.004;
constexpr double kStorageCpuPerGiB = 0.35;
constexpr double kBalancerCpuPerPlan = 0.05;
// One network IO is accounted per 64 MiB transferred (plus one per request).
constexpr uint64_t kBytesPerIo = 64 * kMiB;
// Minimum capacity a brick may be reduced to. Kept within one order of
// magnitude of the default brick so fraction-point balance targets remain
// achievable at chunk granularity (a 10 GiB brick next to 480 GiB peers can
// sit at 50% utilization holding a single chunk — no balancer can fix that).
constexpr uint64_t kMinBrickCapacity = 128 * kGiB;
// With replication 2, a donor brick's chunk is blocked from the one receiver
// that already holds its pair — leveling needs enough bricks that a second
// receiver always exists.
constexpr size_t kMinServingBricks = 5;

uint64_t IoCount(uint64_t bytes) { return 1 + bytes / kBytesPerIo; }

}  // namespace

DfsCluster::DfsCluster(ClusterConfig config, Flavor flavor, std::string cluster_name)
    : config_(config), flavor_(flavor), name_(std::move(cluster_name)),
      rng_(config.rng_seed) {}

DfsCluster::~DfsCluster() = default;

void DfsCluster::BuildInitialTopology() {
  tree_.Clear();
  storage_nodes_.clear();
  storage_node_index_.clear();
  meta_nodes_.clear();
  bricks_.clear();
  brick_index_.clear();
  layouts_.clear();
  brick_chunks_.clear();
  move_queue_.clear();
  current_move_done_bytes_ = 0;
  rebalance_active_ = false;
  current_round_moves_ = 0;
  last_balancer_check_ = clock_.now();
  recent_classes_.clear();
  class_counts_[0] = class_counts_[1] = class_counts_[2] = class_counts_[3] = 0;
  balancer_crashed_ = false;
  balancer_resume_pending_ = false;
  recent_class_mask_ = 0;
  offline_bricks_ = 0;
  offline_brick_list_.clear();
  serving_meta_nodes_.clear();
  rate_windows_.clear();
  window_epoch_ = 1;
  cpu_storage_agg_ = RateDimAgg{};
  cpu_meta_agg_ = RateDimAgg{};
  net_storage_agg_ = RateDimAgg{};
  net_meta_agg_ = RateDimAgg{};
  crashed_nodes_ = 0;
  node_load_group_.clear();
  load_group_count_ = 0;
  group_serving_.clear();
  group_frac_.clear();
  group_frac_dirty_.clear();
  dirty_groups_.clear();
  group_hot_.clear();
  group_hot_dirty_.clear();
  hot_dirty_groups_.clear();
  group_rate_max_.clear();
  InvalidateLoadIndex();
  OnTopologyCleared();

  for (int i = 0; i < config_.initial_meta_nodes; ++i) {
    NodeId id = next_node_id_++;
    MetaNode node;
    node.id = id;
    meta_nodes_[id] = node;
    serving_meta_nodes_.push_back(id);
  }
  for (int i = 0; i < config_.initial_storage_nodes; ++i) {
    AddStorageNodeInternal(BrickCapacityFor(next_node_id_));
  }
  OnTopologyChangedInternal();
}

void DfsCluster::ResetToInitial() {
  BuildInitialTopology();
  if (model_cov_ != nullptr) {
    model_cov_->ForceIdle();  // a topology rebuild is not a balancer action
  }
  namespace_epoch_ = 0;
  completed_rebalance_rounds_ = 0;
  rebalance_triggers_ = 0;
  lost_bytes_ = 0;
  if (hooks_ != nullptr) {
    hooks_->OnClusterReset(*this);
  }
  if (env_ != nullptr) {
    env_->OnClusterReset(*this);
  }
}

// ---------------------------------------------------------------------------
// Lookup helpers

// FindBrick / FindStorageNode are inline in cluster.h, backed by the flat
// brick_index_ / storage_node_index_ pointer vectors maintained below.

// ---------------------------------------------------------------------------
// Incremental load index
//
// Aggregates over bricks/nodes are maintained, not recomputed: the per-op
// read points (StorageImbalance in the balancer check and the coverage hash,
// SampleLoad in the monitor) run off integer running sums, while mutation
// points pay an O(1) delta (byte writes) or an O(bricks-of-one-node) update
// (membership changes). The full rebuild only runs after a topology reset —
// removed nodes stay in the node maps as tombstones, so anything that walks
// a whole node map is O(all nodes ever created) and must stay off the per-op
// path. All sums are integers, so every cached double is bit-identical to a
// from-scratch walk (tests/cluster_cache_test.cc).

void DfsCluster::InvalidateLoadIndex() {
  load_index_dirty_ = true;
  ++load_epoch_;
  ++membership_epoch_;
}

void DfsCluster::RebuildLoadIndex() const {
  serving_bricks_.clear();
  serving_storage_nodes_.clear();
  node_agg_.assign(next_node_id_, NodeLoadAgg{});
  group_serving_.assign(load_group_count_, {});
  group_frac_.assign(load_group_count_, GroupFracAgg{});
  group_frac_dirty_.assign(load_group_count_, 1);
  group_hot_.assign(load_group_count_, GroupHotBrick{});
  group_hot_dirty_.assign(load_group_count_, 1);
  group_rate_max_.assign(load_group_count_, GroupRateMax{});
  dirty_groups_.clear();
  hot_dirty_groups_.clear();
  for (uint32_t g = 0; g < load_group_count_; ++g) {
    dirty_groups_.push_back(g);
    hot_dirty_groups_.push_back(g);
  }
  fleet_used_ = 0;
  fleet_cap_ = 0;
  fleet_overflow_ = 0;
  total_used_all_ = 0;
  for (const auto& [id, node] : storage_nodes_) {
    NodeLoadAgg agg;
    agg.serving = node.Serving();
    if (agg.serving) {
      serving_storage_nodes_.push_back(id);
      uint32_t group = LoadGroupOf(id);
      if (group != kInvalidLoadGroup) {
        group_serving_[group].push_back(id);
      }
    }
    for (BrickId b : node.bricks) {
      const Brick* brick = FindBrick(b);
      if (brick == nullptr) {
        continue;
      }
      agg.used_all += brick->used_bytes;
      if (brick->online) {
        agg.used_online += brick->used_bytes;
        agg.cap_online += brick->capacity_bytes;
      }
    }
    node_agg_[id] = agg;
  }
  for (const auto& [id, brick] : bricks_) {
    total_used_all_ += brick.used_bytes;
    if (!brick.online) {
      continue;
    }
    if (brick.node < node_agg_.size() && node_agg_[brick.node].serving) {
      serving_bricks_.push_back(id);
      fleet_used_ += brick.used_bytes;
      fleet_cap_ += brick.capacity_bytes;
      if (brick.used_bytes > brick.capacity_bytes) {
        fleet_overflow_ += brick.used_bytes - brick.capacity_bytes;
      }
    }
  }
  // The rate aggregates were frozen while the index was dirty (the per-node
  // windows kept tracking unconditionally); reconstitute them from the
  // windows of the now-current serving sets.
  RebuildRateAggs();
  load_index_dirty_ = false;
}

uint64_t DfsCluster::WindowDelta(NodeId id, bool cpu_dim) const {
  if (id >= rate_windows_.size() || rate_windows_[id].epoch != window_epoch_) {
    return 0;  // not charged this window: the base is the current counters
  }
  return cpu_dim ? rate_windows_[id].cpu_ticks : rate_windows_[id].net_delta;
}

void DfsCluster::RebuildRateAggs() const {
  cpu_storage_agg_ = RateDimAgg{};
  cpu_meta_agg_ = RateDimAgg{};
  net_storage_agg_ = RateDimAgg{};
  net_meta_agg_ = RateDimAgg{};
  auto accumulate = [this](const std::vector<NodeId>& members, RateDimAgg& cpu_agg,
                           RateDimAgg& net_agg) {
    for (NodeId id : members) {
      uint64_t cpu = WindowDelta(id, /*cpu_dim=*/true);
      uint64_t net = WindowDelta(id, /*cpu_dim=*/false);
      cpu_agg.sum += cpu;
      cpu_agg.sum_sq += static_cast<Uint128>(cpu) * cpu;
      cpu_agg.max_delta = std::max(cpu_agg.max_delta, cpu);
      net_agg.sum += net;
      net_agg.sum_sq += static_cast<Uint128>(net) * net;
      net_agg.max_delta = std::max(net_agg.max_delta, net);
    }
  };
  accumulate(serving_storage_nodes_, cpu_storage_agg_, net_storage_agg_);
  accumulate(serving_meta_nodes_, cpu_meta_agg_, net_meta_agg_);
  // Re-seed the per-group high-water marks from the same windows so the
  // departure rescan path stays group-local after a rebuild.
  for (NodeId id : serving_storage_nodes_) {
    uint32_t group = LoadGroupOf(id);
    if (group == kInvalidLoadGroup) {
      continue;
    }
    GroupRateMax& gm = group_rate_max_[group];
    gm.epoch = window_epoch_;
    gm.cpu = std::max(gm.cpu, WindowDelta(id, /*cpu_dim=*/true));
    gm.net = std::max(gm.net, WindowDelta(id, /*cpu_dim=*/false));
  }
}

// ---------------------------------------------------------------------------
// Hierarchical load groups (DESIGN.md §15)
//
// Storage nodes are partitioned into load groups (id-range spans by default;
// GeoFS aligns them with scheduling groups via PickLoadGroup). Fraction
// stats keep one sub-aggregate per group, refreshed only when a member
// mutated (dirty-group queue) and rolled up over O(#groups); rate windows
// keep one epoch-stamped high-water mark per group so a departing maximum
// rescans one group plus the group marks instead of the whole fleet. All
// sums are integers, so the rollup is bit-identical to the flat scan.

void DfsCluster::AssignLoadGroup(NodeId id) {
  uint32_t group = PickLoadGroup(id);
  if (group == kInvalidLoadGroup) {
    group = 0;
  }
  if (node_load_group_.size() <= id) {
    node_load_group_.resize(id + 1, kInvalidLoadGroup);
  }
  node_load_group_[id] = group;
  if (group >= load_group_count_) {
    load_group_count_ = group + 1;
  }
}

void DfsCluster::EnsureGroupSlots(uint32_t group) const {
  size_t need = std::max<size_t>(load_group_count_, group + 1);
  if (group_serving_.size() < need) {
    group_serving_.resize(need);
  }
  if (group_frac_.size() < need) {
    group_frac_.resize(need);
  }
  if (group_frac_dirty_.size() < need) {
    group_frac_dirty_.resize(need, 0);
  }
  if (group_hot_.size() < need) {
    group_hot_.resize(need);
  }
  if (group_hot_dirty_.size() < need) {
    group_hot_dirty_.resize(need, 0);
  }
  if (group_rate_max_.size() < need) {
    group_rate_max_.resize(need);
  }
}

void DfsCluster::MarkGroupDirty(NodeId node) const {
  uint32_t group = LoadGroupOf(node);
  if (group == kInvalidLoadGroup) {
    return;
  }
  EnsureGroupSlots(group);
  if (!group_frac_dirty_[group]) {
    group_frac_dirty_[group] = 1;
    dirty_groups_.push_back(group);
  }
  if (!group_hot_dirty_[group]) {
    group_hot_dirty_[group] = 1;
    hot_dirty_groups_.push_back(group);
  }
}

void DfsCluster::RefreshGroupFrac(uint32_t group) const {
  GroupFracAgg agg;
  for (NodeId id : group_serving_[group]) {
    const NodeLoadAgg& node = node_agg_[id];
    if (node.cap_online == 0) {
      continue;
    }
    ++agg.nodes;
    double fraction = static_cast<double>(node.used_online) /
                      static_cast<double>(node.cap_online);
    if (agg.nodes == 1 || fraction > agg.max_fraction) {
      agg.max_fraction = fraction;
    }
    agg.used += node.used_online;
    agg.cap += node.cap_online;
    uint64_t ticks = QuantizeLoadDelta(fraction, kUtilizationQuantum);
    agg.frac_sum += ticks;
    agg.frac_sum_sq += static_cast<Uint128>(ticks) * ticks;
  }
  group_frac_[group] = agg;
}

void DfsCluster::RefreshGroupHotBrick(uint32_t group) const {
  GroupHotBrick hot;
  for (NodeId id : group_serving_[group]) {
    const StorageNode* node = FindStorageNode(id);
    if (node == nullptr) {
      continue;
    }
    for (BrickId b : node->bricks) {
      const Brick* brick = FindBrick(b);
      if (brick == nullptr || !brick->online) {
        continue;
      }
      double fraction = brick_fraction_[b];
      if (fraction > hot.fraction ||
          (fraction == hot.fraction && b < hot.id)) {
        hot.fraction = fraction;
        hot.id = b;
      }
    }
  }
  group_hot_[group] = hot;
}

BrickId DfsCluster::HottestServingBrick() const {
  EnsureLoadIndex();
  for (uint32_t group : hot_dirty_groups_) {
    if (group_hot_dirty_[group]) {
      RefreshGroupHotBrick(group);
      group_hot_dirty_[group] = 0;
    }
  }
  hot_dirty_groups_.clear();
  // Every serving storage node carries a valid load group (AssignLoadGroup
  // maps kInvalidLoadGroup to 0 and restore re-validates coverage), so the
  // group maxima partition ServingBricks() exactly. Smallest brick id wins
  // fraction ties, matching a strict-max scan in brick-id order.
  BrickId best = kInvalidBrick;
  double best_fraction = -1.0;
  for (const GroupHotBrick& hot : group_hot_) {
    if (hot.id == kInvalidBrick) {
      continue;
    }
    if (hot.fraction > best_fraction ||
        (hot.fraction == best_fraction && hot.id < best)) {
      best_fraction = hot.fraction;
      best = hot.id;
    }
  }
  return best;
}

std::pair<uint64_t, uint64_t> DfsCluster::LoadGroupUsedCap(uint32_t group) const {
  EnsureLoadIndex();
  if (group >= load_group_count_) {
    return {0, 0};
  }
  EnsureGroupSlots(group);
  if (group_frac_dirty_[group]) {
    RefreshGroupFrac(group);
    // Leave the queue entry in place; the rollup re-refresh is idempotent.
    group_frac_dirty_[group] = 0;
  }
  return {group_frac_[group].used, group_frac_[group].cap};
}

const std::vector<NodeId>& DfsCluster::LoadGroupServingNodes(uint32_t group) const {
  EnsureLoadIndex();
  static const std::vector<NodeId> kEmpty;
  if (group >= group_serving_.size()) {
    return kEmpty;
  }
  return group_serving_[group];
}

DfsCluster::GroupRateMax& DfsCluster::GroupRateMaxSlot(NodeId id) const {
  uint32_t group = LoadGroupOf(id);
  if (group == kInvalidLoadGroup) {
    group = 0;
  }
  EnsureGroupSlots(group);
  GroupRateMax& gm = group_rate_max_[group];
  if (gm.epoch != window_epoch_) {
    gm = GroupRateMax{};
    gm.epoch = window_epoch_;
  }
  return gm;
}

uint64_t DfsCluster::GroupRateMaxValue(uint32_t group, bool cpu_dim) const {
  if (group >= group_rate_max_.size() ||
      group_rate_max_[group].epoch != window_epoch_) {
    return 0;
  }
  return cpu_dim ? group_rate_max_[group].cpu : group_rate_max_[group].net;
}

void DfsCluster::RecomputeGroupRateMax(uint32_t group) const {
  EnsureGroupSlots(group);
  GroupRateMax& gm = group_rate_max_[group];
  gm.epoch = window_epoch_;
  gm.cpu = 0;
  gm.net = 0;
  if (group >= group_serving_.size()) {
    return;
  }
  for (NodeId id : group_serving_[group]) {
    gm.cpu = std::max(gm.cpu, WindowDelta(id, /*cpu_dim=*/true));
    gm.net = std::max(gm.net, WindowDelta(id, /*cpu_dim=*/false));
  }
}

uint64_t DfsCluster::MaxOverGroupRateMax(bool cpu_dim) const {
  uint64_t max_delta = 0;
  for (const GroupRateMax& gm : group_rate_max_) {
    if (gm.epoch != window_epoch_) {
      continue;
    }
    max_delta = std::max(max_delta, cpu_dim ? gm.cpu : gm.net);
  }
  return max_delta;
}

void DfsCluster::BeginNodeChargeWindow(NodeId id, const NodeLoadCounters& load) {
  if (rate_windows_.size() <= id) {
    rate_windows_.resize(id + 1);
  }
  NodeRateWindow& window = rate_windows_[id];
  if (window.epoch != window_epoch_) {
    window.epoch = window_epoch_;
    window.base_cpu = load.cpu_seconds;
    window.last_cpu = load.cpu_seconds;
    window.base_net = load.requests + load.read_ios + load.write_ios;
    window.cpu_ticks = 0;
    window.net_delta = 0;
  }
}

void DfsCluster::CommitNodeCharge(NodeId id, const NodeLoadCounters& load,
                                  bool is_storage, bool serving) {
  NodeRateWindow& window = rate_windows_[id];
  // A clean group aggregate already reflects this window's current deltas
  // (folded by an earlier commit or by RebuildRateAggs), so an unchanged
  // dimension needs no work at all — not even the max fold. That lets the
  // common partial charges (net-only injections, sub-quantum CPU nudges)
  // skip the quantization and the 128-bit square updates entirely.
  const bool live = serving && !load_index_dirty_;
  uint64_t net_delta =
      load.requests + load.read_ios + load.write_ios - window.base_net;
  if (net_delta != window.net_delta) {
    if (live) {
      RateDimAgg& net_agg = is_storage ? net_storage_agg_ : net_meta_agg_;
      net_agg.sum += net_delta - window.net_delta;
      net_agg.sum_sq += static_cast<Uint128>(net_delta) * net_delta -
                        static_cast<Uint128>(window.net_delta) * window.net_delta;
      net_agg.max_delta = std::max(net_agg.max_delta, net_delta);
      if (is_storage) {
        GroupRateMax& gm = GroupRateMaxSlot(id);
        gm.net = std::max(gm.net, net_delta);
      }
    }
    window.net_delta = net_delta;
  }
  if (load.cpu_seconds != window.last_cpu) {
    window.last_cpu = load.cpu_seconds;
    uint64_t cpu_ticks =
        QuantizeLoadDelta(load.cpu_seconds - window.base_cpu, kCpuLoadQuantum);
    if (cpu_ticks != window.cpu_ticks) {
      if (live) {
        RateDimAgg& cpu_agg = is_storage ? cpu_storage_agg_ : cpu_meta_agg_;
        cpu_agg.sum += cpu_ticks - window.cpu_ticks;
        cpu_agg.sum_sq += static_cast<Uint128>(cpu_ticks) * cpu_ticks -
                          static_cast<Uint128>(window.cpu_ticks) * window.cpu_ticks;
        cpu_agg.max_delta = std::max(cpu_agg.max_delta, cpu_ticks);
        if (is_storage) {
          GroupRateMax& gm = GroupRateMaxSlot(id);
          gm.cpu = std::max(gm.cpu, cpu_ticks);
        }
      }
      window.cpu_ticks = cpu_ticks;
    }
  }
}

void DfsCluster::RecomputeRateMax(RateDimAgg& agg, bool is_storage,
                                  bool cpu_dim) const {
  const std::vector<NodeId>& members =
      is_storage ? serving_storage_nodes_ : serving_meta_nodes_;
  uint64_t max_delta = 0;
  for (NodeId id : members) {
    max_delta = std::max(max_delta, WindowDelta(id, cpu_dim));
  }
  agg.max_delta = max_delta;
}

void DfsCluster::RemoveNodeFromRateAggs(NodeId id, bool is_storage) {
  if (load_index_dirty_) {
    return;  // the pending rebuild reads the updated serving sets
  }
  uint64_t cpu = WindowDelta(id, /*cpu_dim=*/true);
  uint64_t net = WindowDelta(id, /*cpu_dim=*/false);
  RateDimAgg& cpu_agg = is_storage ? cpu_storage_agg_ : cpu_meta_agg_;
  RateDimAgg& net_agg = is_storage ? net_storage_agg_ : net_meta_agg_;
  cpu_agg.sum -= cpu;
  cpu_agg.sum_sq -= static_cast<Uint128>(cpu) * cpu;
  net_agg.sum -= net;
  net_agg.sum_sq -= static_cast<Uint128>(net) * net;
  // Only a departing maximum can lower the high-water mark; rescan the
  // remaining members (the caller has already removed `id` from the lists).
  // Storage departures rescan only the departed node's load group and then
  // take the max over the per-group marks — O(group + #groups), not O(fleet).
  if (is_storage) {
    uint32_t group = LoadGroupOf(id);
    if (group != kInvalidLoadGroup &&
        ((cpu != 0 && cpu == GroupRateMaxValue(group, /*cpu_dim=*/true)) ||
         (net != 0 && net == GroupRateMaxValue(group, /*cpu_dim=*/false)))) {
      RecomputeGroupRateMax(group);
    }
    if (cpu != 0 && cpu == cpu_agg.max_delta) {
      cpu_agg.max_delta = MaxOverGroupRateMax(/*cpu_dim=*/true);
    }
    if (net != 0 && net == net_agg.max_delta) {
      net_agg.max_delta = MaxOverGroupRateMax(/*cpu_dim=*/false);
    }
    return;
  }
  if (cpu != 0 && cpu == cpu_agg.max_delta) {
    RecomputeRateMax(cpu_agg, is_storage, /*cpu_dim=*/true);
  }
  if (net != 0 && net == net_agg.max_delta) {
    RecomputeRateMax(net_agg, is_storage, /*cpu_dim=*/false);
  }
}

void DfsCluster::OnMetaNodeUnserving(NodeId id) {
  RemoveNodeFromRateAggs(id, /*is_storage=*/false);
}

void DfsCluster::ApplyUsedBytesDelta(const Brick& brick, uint64_t old_used) {
  ++load_epoch_;
  if (load_index_dirty_) {
    return;  // the pending rebuild recomputes everything from ground truth
  }
  uint64_t delta = brick.used_bytes - old_used;  // two's complement: may wrap
  total_used_all_ += delta;
  if (brick.node >= node_agg_.size()) {
    return;
  }
  NodeLoadAgg& agg = node_agg_[brick.node];
  agg.used_all += delta;
  if (!brick.online) {
    return;
  }
  agg.used_online += delta;
  if (agg.serving) {
    MarkGroupDirty(brick.node);
    fleet_used_ += delta;
    uint64_t old_over =
        old_used > brick.capacity_bytes ? old_used - brick.capacity_bytes : 0;
    uint64_t new_over = brick.used_bytes > brick.capacity_bytes
                            ? brick.used_bytes - brick.capacity_bytes
                            : 0;
    fleet_overflow_ += new_over - old_over;
  }
}

void DfsCluster::UpdateBrickFraction(const Brick& brick) {
  if (brick_fraction_.size() <= brick.id) {
    brick_fraction_.resize(brick.id + 1, 0.0);
  }
  brick_fraction_[brick.id] = brick.UsedFraction();
}

void DfsCluster::AccreteBrickBytes(Brick* brick, uint64_t bytes) {
  if (brick == nullptr || bytes == 0) {
    return;
  }
  uint64_t old_used = brick->used_bytes;
  brick->used_bytes += bytes;
  UpdateBrickFraction(*brick);
  ApplyUsedBytesDelta(*brick, old_used);
}

void DfsCluster::ReleaseBrickBytes(Brick* brick, uint64_t bytes) {
  if (brick == nullptr || bytes == 0) {
    return;
  }
  uint64_t old_used = brick->used_bytes;
  brick->used_bytes -= std::min(old_used, bytes);
  if (brick->used_bytes != old_used) {
    UpdateBrickFraction(*brick);
    ApplyUsedBytesDelta(*brick, old_used);
  }
}

void DfsCluster::OnStorageNodeAdded(NodeId id) {
  ++load_epoch_;
  ++membership_epoch_;
  if (load_index_dirty_) {
    return;
  }
  if (node_agg_.size() <= id) {
    node_agg_.resize(id + 1);
  }
  NodeLoadAgg agg;
  agg.serving = true;
  node_agg_[id] = agg;
  // Node ids are monotonic, so appending preserves storage_nodes_ map order
  // (and the per-group serving lists inherit the same sortedness).
  serving_storage_nodes_.push_back(id);
  uint32_t group = LoadGroupOf(id);
  if (group != kInvalidLoadGroup) {
    EnsureGroupSlots(group);
    group_serving_[group].push_back(id);
  }
  MarkGroupDirty(id);
}

void DfsCluster::OnBrickAdded(const Brick& brick) {
  ++load_epoch_;
  ++membership_epoch_;
  if (load_index_dirty_) {
    return;
  }
  if (brick.node >= node_agg_.size()) {
    return;
  }
  NodeLoadAgg& agg = node_agg_[brick.node];
  agg.used_all += brick.used_bytes;
  if (!brick.online) {
    return;
  }
  agg.used_online += brick.used_bytes;
  agg.cap_online += brick.capacity_bytes;
  if (agg.serving) {
    MarkGroupDirty(brick.node);
    // Brick ids are monotonic, so appending preserves bricks_ map order.
    serving_bricks_.push_back(brick.id);
    fleet_used_ += brick.used_bytes;
    fleet_cap_ += brick.capacity_bytes;
    if (brick.used_bytes > brick.capacity_bytes) {
      fleet_overflow_ += brick.used_bytes - brick.capacity_bytes;
    }
  }
}

void DfsCluster::OnStorageNodeUnserving(NodeId id) {
  ++load_epoch_;
  ++membership_epoch_;
  if (load_index_dirty_) {
    return;
  }
  if (id >= node_agg_.size() || !node_agg_[id].serving) {
    return;
  }
  node_agg_[id].serving = false;
  auto pos = std::lower_bound(serving_storage_nodes_.begin(),
                              serving_storage_nodes_.end(), id);
  if (pos != serving_storage_nodes_.end() && *pos == id) {
    serving_storage_nodes_.erase(pos);
  }
  uint32_t group = LoadGroupOf(id);
  if (group != kInvalidLoadGroup && group < group_serving_.size()) {
    auto gpos = std::lower_bound(group_serving_[group].begin(),
                                 group_serving_[group].end(), id);
    if (gpos != group_serving_[group].end() && *gpos == id) {
      group_serving_[group].erase(gpos);
    }
  }
  MarkGroupDirty(id);
  // The departing node's rate-window deltas leave the storage-group
  // streaming aggregates too (the monitor only compares serving nodes).
  RemoveNodeFromRateAggs(id, /*is_storage=*/true);
  // The node's online bricks leave the fleet (they are no longer serving)
  // but stay in the per-node sums: SampleLoad still reports a crashed
  // node's mounted bricks.
  const StorageNode* node = FindStorageNode(id);
  if (node == nullptr) {
    return;
  }
  for (BrickId b : node->bricks) {
    const Brick* brick = FindBrick(b);
    if (brick == nullptr || !brick->online) {
      continue;
    }
    fleet_used_ -= brick->used_bytes;
    fleet_cap_ -= brick->capacity_bytes;
    if (brick->used_bytes > brick->capacity_bytes) {
      fleet_overflow_ -= brick->used_bytes - brick->capacity_bytes;
    }
    auto bpos = std::lower_bound(serving_bricks_.begin(), serving_bricks_.end(), b);
    if (bpos != serving_bricks_.end() && *bpos == b) {
      serving_bricks_.erase(bpos);
    }
  }
}

void DfsCluster::OnBrickOffline(const Brick& brick) {
  ++load_epoch_;
  ++membership_epoch_;
  if (load_index_dirty_) {
    return;
  }
  if (brick.node >= node_agg_.size()) {
    return;
  }
  NodeLoadAgg& agg = node_agg_[brick.node];
  agg.used_online -= brick.used_bytes;
  agg.cap_online -= brick.capacity_bytes;
  if (agg.serving) {
    MarkGroupDirty(brick.node);
    fleet_used_ -= brick.used_bytes;
    fleet_cap_ -= brick.capacity_bytes;
    if (brick.used_bytes > brick.capacity_bytes) {
      fleet_overflow_ -= brick.used_bytes - brick.capacity_bytes;
    }
    auto pos = std::lower_bound(serving_bricks_.begin(), serving_bricks_.end(),
                                brick.id);
    if (pos != serving_bricks_.end() && *pos == brick.id) {
      serving_bricks_.erase(pos);
    }
  }
}

void DfsCluster::OnBrickCapacityChanged(const Brick& brick, uint64_t old_capacity) {
  ++load_epoch_;
  if (load_index_dirty_ || !brick.online) {
    return;
  }
  uint64_t delta = brick.capacity_bytes - old_capacity;  // may wrap; sums re-wrap
  if (brick.node >= node_agg_.size()) {
    return;
  }
  NodeLoadAgg& agg = node_agg_[brick.node];
  agg.cap_online += delta;
  if (agg.serving) {
    MarkGroupDirty(brick.node);
    fleet_cap_ += delta;
    uint64_t old_over =
        brick.used_bytes > old_capacity ? brick.used_bytes - old_capacity : 0;
    uint64_t new_over = brick.used_bytes > brick.capacity_bytes
                            ? brick.used_bytes - brick.capacity_bytes
                            : 0;
    fleet_overflow_ += new_over - old_over;
  }
}

const std::vector<BrickId>& DfsCluster::ServingBricks() const {
  EnsureLoadIndex();
  return serving_bricks_;
}

const std::vector<NodeId>& DfsCluster::ServingStorageNodeIds() const {
  EnsureLoadIndex();
  return serving_storage_nodes_;
}

uint64_t DfsCluster::TotalCapacityBytes() const {
  EnsureLoadIndex();
  return fleet_cap_;
}

uint64_t DfsCluster::TotalUsedBytes() const {
  EnsureLoadIndex();
  return total_used_all_;
}

uint64_t DfsCluster::TotalServingUsedBytes() const {
  EnsureLoadIndex();
  return fleet_used_;
}

uint64_t DfsCluster::FreeSpaceBytes() const {
  // capacity - sum(min(used, capacity)) over serving bricks; min(used, cap)
  // = used - max(0, used - cap), so the clamped sum falls out of the
  // maintained overflow aggregate.
  EnsureLoadIndex();
  return fleet_cap_ - (fleet_used_ - fleet_overflow_);
}

std::vector<double> DfsCluster::PerNodeUsedBytes() const {
  EnsureLoadIndex();
  std::vector<double> out;
  out.reserve(serving_storage_nodes_.size());
  for (NodeId id : serving_storage_nodes_) {
    out.push_back(static_cast<double>(node_agg_[id].used_all));
  }
  return out;
}

std::vector<double> DfsCluster::PerNodeUsedFraction() const {
  EnsureLoadIndex();
  std::vector<double> out;
  out.reserve(serving_storage_nodes_.size());
  for (NodeId id : serving_storage_nodes_) {
    if (node_agg_[id].cap_online > 0) {
      out.push_back(static_cast<double>(node_agg_[id].used_online) /
                    static_cast<double>(node_agg_[id].cap_online));
    }
  }
  return out;
}

const DfsCluster::FractionStats& DfsCluster::EnsureFractionStats() const {
  // One memoized scan feeds both the balancer-threshold spread and the
  // storage dimension of the streaming LoadStatsSnapshot: per-op balance
  // checks keep the memo warm, so the monitor's storage numbers are O(1).
  EnsureLoadIndex();
  if (imbalance_epoch_ == load_epoch_) {
    return fraction_memo_;
  }
  // Refresh only the groups ops have dirtied since the last read, then roll
  // the per-group sub-aggregates up. Integer sums, the per-group first-wins
  // max, and the left-to-right group order (groups are visited in index
  // order, members in node-id order) make the rollup bit-identical to the
  // flat fleet scan it replaced — the streaming-variance contract of
  // DESIGN.md §13 holds unchanged at 10k nodes.
  for (uint32_t group : dirty_groups_) {
    RefreshGroupFrac(group);
    group_frac_dirty_[group] = 0;
  }
  dirty_groups_.clear();
  FractionStats stats;
  for (const GroupFracAgg& agg : group_frac_) {
    if (agg.nodes == 0) {
      continue;
    }
    if (stats.nodes == 0 || agg.max_fraction > stats.max_fraction) {
      stats.max_fraction = agg.max_fraction;
    }
    stats.nodes += agg.nodes;
    stats.used += agg.used;
    stats.cap += agg.cap;
    stats.frac_sum += agg.frac_sum;
    stats.frac_sum_sq += agg.frac_sum_sq;
  }
  if (stats.nodes >= 2 && fleet_cap_ > 0) {
    double fleet =
        static_cast<double>(fleet_used_) / static_cast<double>(fleet_cap_);
    stats.spread = std::max(0.0, stats.max_fraction - fleet);
  }
  imbalance_epoch_ = load_epoch_;
  fraction_memo_ = stats;
  return fraction_memo_;
}

double DfsCluster::StorageImbalance() const {
  // Utilization *spread* in fraction points: hottest node vs the
  // capacity-weighted fleet utilization — the exact quantity real balancers
  // threshold on (the HDFS Balancer's "utilization differs from the cluster
  // average utilization by more than N%"). An unweighted node mean would
  // diverge from what the balancer can actually guarantee on
  // heterogeneous-capacity clusters.
  return EnsureFractionStats().spread;
}

MigrationPlan DfsCluster::PlanLevelingByUsage(
    double tolerance, const std::map<BrickId, uint64_t>* extra_inflow) const {
  MigrationPlan plan;
  EnsureLoadIndex();
  const std::vector<BrickId>& serving = serving_bricks_;
  if (serving.size() < 2) {
    return plan;
  }
  uint64_t total_used = fleet_used_;
  uint64_t total_capacity = fleet_cap_;
  if (total_capacity == 0 || total_used == 0) {
    return plan;
  }
  double fleet = static_cast<double>(total_used) / static_cast<double>(total_capacity);
  // Donors: above fleet*(1+tolerance); receivers: below fleet.
  struct Receiver {
    BrickId brick;
    uint64_t headroom;  // bytes it may absorb before reaching fleet level
  };
  std::vector<Receiver> receivers;
  for (BrickId id : serving) {
    const Brick* brick = FindBrick(id);
    // Receivers sit below fleet + tolerance/2 and may absorb data up to
    // fleet + tolerance. The band (rather than "strictly below fleet")
    // matters: with replication, the only brick below the mean can be the
    // donor's replica partner, and draining then needs a slightly-above-mean
    // third brick.
    double limit = (fleet + tolerance) * static_cast<double>(brick->capacity_bytes);
    if (brick->UsedFraction() < fleet + tolerance * 0.5) {
      uint64_t committed = brick->used_bytes;
      if (extra_inflow != nullptr) {
        auto inflow_it = extra_inflow->find(id);
        if (inflow_it != extra_inflow->end()) {
          committed += inflow_it->second;
        }
      }
      if (static_cast<double>(committed) >= limit) {
        continue;
      }
      uint64_t headroom = static_cast<uint64_t>(limit) - committed;
      headroom = std::min(headroom, brick->FreeBytes());
      if (headroom > 0) {
        receivers.push_back(Receiver{id, headroom});
      }
    }
  }
  THEMIS_LOG(kDebug, "leveling: fleet=%.3f tolerance=%.3f receivers=%zu", fleet,
             tolerance, receivers.size());
  // Replica sets planned so far: both replicas of a chunk can be donated (by
  // different donors), and they must not land on the same receiver — the
  // second move would find its destination already holding the chunk and
  // silently skip, leaving its donor hot.
  std::map<std::pair<FileId, uint32_t>, std::vector<BrickId>> planned_targets;
  size_t receiver_cursor = 0;
  for (BrickId donor : serving) {
    const Brick* brick = FindBrick(donor);
    // Donor when its utilization exceeds the fleet level by `tolerance`
    // fraction points.
    double limit = (fleet + tolerance) * static_cast<double>(brick->capacity_bytes);
    if (static_cast<double>(brick->used_bytes) <= limit) {
      continue;
    }
    uint64_t excess =
        brick->used_bytes - static_cast<uint64_t>(fleet * static_cast<double>(
                                                              brick->capacity_bytes));
    THEMIS_LOG(kDebug, "leveling: donor brick%u (node %u) used=%.2f excess=%lluM chunks=%zu",
               donor, brick->node, brick->UsedFraction(),
               static_cast<unsigned long long>(excess >> 20), ChunksOnBrickRef(donor).size());
    for (const auto& [file, chunk_index] : ChunksOnBrickRef(donor)) {
      if (excess == 0 || receiver_cursor >= receivers.size()) {
        break;
      }
      auto layout_it = layouts_.find(file);
      if (layout_it == layouts_.end() || chunk_index >= layout_it->second.chunks.size()) {
        continue;
      }
      const ChunkPlacement& chunk = layout_it->second.chunks[chunk_index];
      if (ChunkPinnedToBrick(file, chunk_index, donor)) {
        THEMIS_LOG(kDebug, "leveling: file%llu#%u pinned to brick%u",
                   static_cast<unsigned long long>(file), chunk_index, donor);
        continue;  // hash-placed: the flavor plan owns this replica
      }
      // Find a receiver that can take this chunk (no duplicate replica).
      size_t probe = receiver_cursor;
      bool placed = false;
      std::vector<BrickId>& targets = planned_targets[{file, chunk_index}];
      while (probe < receivers.size()) {
        Receiver& recv = receivers[probe];
        bool collides = chunk.HasReplicaOn(recv.brick) ||
                        std::find(targets.begin(), targets.end(), recv.brick) !=
                            targets.end();
        if (recv.headroom >= chunk.bytes && !collides) {
          THEMIS_LOG(kDebug, "leveling: plan move file%llu#%u brick%u->brick%u %lluM",
                     static_cast<unsigned long long>(file), chunk_index, donor,
                     recv.brick, static_cast<unsigned long long>(chunk.bytes >> 20));
          targets.push_back(recv.brick);
          plan.push_back(ChunkMove{.file = file,
                                   .chunk_index = chunk_index,
                                   .from = donor,
                                   .to = recv.brick,
                                   .bytes = chunk.bytes,
                                   .reason = MoveReason::kRebalance});
          recv.headroom -= chunk.bytes;
          excess -= std::min(excess, chunk.bytes);
          placed = true;
          break;
        }
        ++probe;
      }
      while (receiver_cursor < receivers.size() &&
             receivers[receiver_cursor].headroom == 0) {
        ++receiver_cursor;
      }
      if (!placed && probe >= receivers.size() && receiver_cursor >= receivers.size()) {
        break;
      }
    }
  }
  return plan;
}

std::vector<NodeId> DfsCluster::ListMetaNodes() const { return serving_meta_nodes_; }

std::vector<NodeId> DfsCluster::ListStorageNodes() const { return ServingStorageNodeIds(); }

std::vector<BrickId> DfsCluster::ListBricks() const { return ServingBricks(); }

// ---------------------------------------------------------------------------
// Load accounting

// Every counter mutation is bracketed by BeginNodeChargeWindow (captures the
// rate-window base on the node's first charge of the window) and
// CommitNodeCharge (pushes the new window delta into the streaming group
// aggregates) — the push-based equivalent of the old scan-and-difference.

void DfsCluster::ChargeStorage(NodeId node, uint64_t reads, uint64_t writes,
                               double cpu_seconds) {
  StorageNode* sn = FindStorageNode(node);
  if (sn == nullptr) {
    return;
  }
  BeginNodeChargeWindow(node, sn->load);
  sn->load.read_ios += reads;
  sn->load.write_ios += writes;
  sn->load.cpu_seconds += cpu_seconds;
  CommitNodeCharge(node, sn->load, /*is_storage=*/true, sn->Serving());
}

void DfsCluster::ChargeMeta(NodeId node, uint64_t requests, double cpu_seconds) {
  auto it = meta_nodes_.find(node);
  if (it == meta_nodes_.end()) {
    return;
  }
  BeginNodeChargeWindow(node, it->second.load);
  it->second.load.requests += requests;
  it->second.load.cpu_seconds += cpu_seconds;
  CommitNodeCharge(node, it->second.load, /*is_storage=*/false,
                   it->second.Serving());
}

void DfsCluster::InjectCpuLoad(NodeId node, double cpu_seconds) {
  if (StorageNode* sn = FindStorageNode(node)) {
    BeginNodeChargeWindow(node, sn->load);
    sn->load.cpu_seconds += cpu_seconds;
    CommitNodeCharge(node, sn->load, /*is_storage=*/true, sn->Serving());
    return;
  }
  auto it = meta_nodes_.find(node);
  if (it != meta_nodes_.end()) {
    BeginNodeChargeWindow(node, it->second.load);
    it->second.load.cpu_seconds += cpu_seconds;
    CommitNodeCharge(node, it->second.load, /*is_storage=*/false,
                     it->second.Serving());
  }
}

void DfsCluster::InjectNetLoad(NodeId node, uint64_t reads, uint64_t writes,
                               uint64_t requests) {
  if (StorageNode* sn = FindStorageNode(node)) {
    BeginNodeChargeWindow(node, sn->load);
    sn->load.read_ios += reads;
    sn->load.write_ios += writes;
    sn->load.requests += requests;
    CommitNodeCharge(node, sn->load, /*is_storage=*/true, sn->Serving());
    return;
  }
  auto it = meta_nodes_.find(node);
  if (it != meta_nodes_.end()) {
    BeginNodeChargeWindow(node, it->second.load);
    it->second.load.read_ios += reads;
    it->second.load.write_ios += writes;
    it->second.load.requests += requests;
    CommitNodeCharge(node, it->second.load, /*is_storage=*/false,
                     it->second.Serving());
  }
}

void DfsCluster::CrashNode(NodeId node) {
  if (StorageNode* sn = FindStorageNode(node)) {
    bool was_serving = sn->Serving();
    if (!sn->crashed) {
      ++crashed_nodes_;
    }
    sn->crashed = true;
    if (was_serving) {
      OnStorageNodeUnserving(node);
    }
    return;
  }
  auto it = meta_nodes_.find(node);
  if (it != meta_nodes_.end()) {
    bool was_serving = it->second.Serving();
    if (!it->second.crashed) {
      ++crashed_nodes_;
    }
    it->second.crashed = true;
    if (was_serving) {
      auto pos = std::lower_bound(serving_meta_nodes_.begin(),
                                  serving_meta_nodes_.end(), node);
      if (pos != serving_meta_nodes_.end() && *pos == node) {
        serving_meta_nodes_.erase(pos);
      }
      ++membership_epoch_;
      OnMetaNodeUnserving(node);
    }
  }
}

void DfsCluster::CrashNodeForEnvFault(NodeId node) {
  bool is_meta = meta_nodes_.count(node) != 0;
  CrashNode(node);
  if (!is_meta || balancer_crashed_) {
    return;
  }
  // The balancer runs on the metadata tier, so an env crash of any meta
  // node takes the balancer process down with it. A round in flight loses
  // its queued rebalance moves (they lived in the dead process's memory);
  // replication-repair moves survive — storage daemons drive those.
  COV_BRANCH(cov_, CovModule::kRecovery, 30);
  balancer_crashed_ = true;
  if (rebalance_active_) {
    COV_BRANCH(cov_, CovModule::kRecovery, 31);
    balancer_resume_pending_ = true;
  }
  rebalance_active_ = false;
  bool front_dropped = !move_queue_.empty() &&
                       move_queue_.front().reason == MoveReason::kRebalance;
  move_queue_.erase(std::remove_if(move_queue_.begin(), move_queue_.end(),
                                   [](const ChunkMove& move) {
                                     return move.reason == MoveReason::kRebalance;
                                   }),
                    move_queue_.end());
  if (front_dropped) {
    current_move_done_bytes_ = 0;  // the partial transfer died with the round
  }
  current_round_moves_ = 0;
  EmitBalancerState(BalancerState::kCrashed);
  OnBalancerCrashed();
}

void DfsCluster::RestartNode(NodeId node) {
  if (StorageNode* sn = FindStorageNode(node)) {
    if (sn->crashed) {
      COV_BRANCH(cov_, CovModule::kRecovery, 32);
      sn->crashed = false;
      --crashed_nodes_;
      // Rejoining the serving set re-admits the node's bricks to the fleet
      // aggregates; the full rebuild is the only path that re-adds members.
      InvalidateLoadIndex();
    }
    return;
  }
  auto it = meta_nodes_.find(node);
  if (it == meta_nodes_.end() || !it->second.crashed) {
    return;
  }
  COV_BRANCH(cov_, CovModule::kRecovery, 33);
  it->second.crashed = false;
  --crashed_nodes_;
  if (it->second.Serving()) {
    auto pos = std::lower_bound(serving_meta_nodes_.begin(),
                                serving_meta_nodes_.end(), node);
    if (pos == serving_meta_nodes_.end() || *pos != node) {
      serving_meta_nodes_.insert(pos, node);
    }
    // The node's still-current rate-window deltas must rejoin the meta
    // streaming aggregates; the full rebuild is the only re-adding path.
    InvalidateLoadIndex();
  }
  if (balancer_crashed_) {
    // First recovered meta node brings the balancer process back up; it
    // reloads its persisted flavor state and re-runs the interrupted round
    // from scratch against the current layout.
    balancer_crashed_ = false;
    // The restarted daemon comes back idle; a pending round re-enters the
    // planning chain via the TriggerRebalance below.
    EmitBalancerState(BalancerState::kIdle);
    OnBalancerRestarted();
    if (balancer_resume_pending_) {
      COV_BRANCH(cov_, CovModule::kRecovery, 34);
      balancer_resume_pending_ = false;
      (void)TriggerRebalance();
    }
  }
}

bool DfsCluster::EnvRecoveryPending() const {
  if (balancer_crashed_ || balancer_resume_pending_) {
    return true;
  }
  return env_ != nullptr && env_->RecoveryPending(*this);
}

uint64_t DfsCluster::SkewBytes(BrickId from, BrickId to, uint64_t bytes) {
  Brick* src = FindBrick(from);
  Brick* dst = FindBrick(to);
  if (src == nullptr || dst == nullptr || from == to) {
    return 0;
  }
  uint64_t moved = 0;
  auto idx_it = brick_chunks_.find(from);
  if (idx_it == brick_chunks_.end()) {
    return 0;
  }
  // This runs on the continuous-fault path (every op while a storage fault
  // is active), so iterate the live vector instead of snapshotting it: only
  // the current element is ever erased (erase returns the next iterator), and
  // inserts go to `to`'s entry (from != to), so the visit order matches a
  // snapshot walk exactly. Entries are sorted by file, so the layout lookup
  // is cached across consecutive chunks of the same file.
  std::vector<std::pair<FileId, uint32_t>>& from_set = idx_it->second;
  auto layout_it = layouts_.end();
  FileId layout_file = 0;
  bool layout_cached = false;
  auto it = from_set.begin();
  while (it != from_set.end()) {
    if (moved >= bytes || dst->FreeBytes() == 0) {
      break;
    }
    const auto [file, chunk_index] = *it;
    if (!layout_cached || layout_file != file) {
      layout_it = layouts_.find(file);
      layout_file = file;
      layout_cached = true;
    }
    if (layout_it == layouts_.end() || chunk_index >= layout_it->second.chunks.size()) {
      ++it;
      continue;
    }
    ChunkPlacement& chunk = layout_it->second.chunks[chunk_index];
    if (chunk.HasReplicaOn(to) || chunk.bytes > dst->FreeBytes()) {
      ++it;
      continue;
    }
    bool swapped = false;
    for (BrickId& replica : chunk.replicas) {
      if (replica == from) {
        replica = to;
        ReleaseBrickBytes(src, chunk.bytes);
        AccreteBrickBytes(dst, chunk.bytes);
        AddReplicaIndex(to, file, chunk_index);
        moved += chunk.bytes;
        swapped = true;
        break;
      }
    }
    if (swapped) {
      it = from_set.erase(it);
    } else {
      ++it;
    }
  }
  if (from_set.empty()) {
    brick_chunks_.erase(idx_it);
  }
  return moved;
}

uint64_t DfsCluster::DestroyBytes(BrickId brick, uint64_t bytes) {
  Brick* target = FindBrick(brick);
  if (target == nullptr) {
    return 0;
  }
  uint64_t destroyed = 0;
  auto idx_it = brick_chunks_.find(brick);
  if (idx_it == brick_chunks_.end()) {
    return 0;
  }
  // Same live iteration as SkewBytes: only the current element is ever
  // erased, so this visits exactly what a snapshot copy would.
  std::vector<std::pair<FileId, uint32_t>>& brick_set = idx_it->second;
  auto layout_it = layouts_.end();
  FileId layout_file = 0;
  bool layout_cached = false;
  auto it = brick_set.begin();
  while (it != brick_set.end()) {
    if (destroyed >= bytes) {
      break;
    }
    const auto [file, chunk_index] = *it;
    if (!layout_cached || layout_file != file) {
      layout_it = layouts_.find(file);
      layout_file = file;
      layout_cached = true;
    }
    if (layout_it == layouts_.end() || chunk_index >= layout_it->second.chunks.size()) {
      ++it;
      continue;
    }
    ChunkPlacement& chunk = layout_it->second.chunks[chunk_index];
    auto replica_it = std::find(chunk.replicas.begin(), chunk.replicas.end(), brick);
    if (replica_it == chunk.replicas.end()) {
      ++it;
      continue;
    }
    chunk.replicas.erase(replica_it);
    ReleaseBrickBytes(target, chunk.bytes);
    it = brick_set.erase(it);
    destroyed += chunk.bytes;
    if (chunk.replicas.empty()) {
      lost_bytes_ += chunk.bytes;  // last replica gone: user data lost
    }
  }
  if (brick_set.empty()) {
    brick_chunks_.erase(idx_it);
  }
  return destroyed;
}

// ---------------------------------------------------------------------------
// Replica index

void DfsCluster::AddReplicaIndex(BrickId brick, FileId file, uint32_t chunk) {
  auto& vec = brick_chunks_[brick];
  const std::pair<FileId, uint32_t> key{file, chunk};
  if (vec.empty() || vec.back() < key) {
    vec.push_back(key);  // monotonic file ids make append the common case
    return;
  }
  auto pos = std::lower_bound(vec.begin(), vec.end(), key);
  if (pos == vec.end() || *pos != key) {
    vec.insert(pos, key);
  }
}

void DfsCluster::RemoveReplicaIndex(BrickId brick, FileId file, uint32_t chunk) {
  auto it = brick_chunks_.find(brick);
  if (it == brick_chunks_.end()) {
    return;
  }
  auto& vec = it->second;
  const std::pair<FileId, uint32_t> key{file, chunk};
  auto pos = std::lower_bound(vec.begin(), vec.end(), key);
  if (pos != vec.end() && *pos == key) {
    vec.erase(pos);
  }
  if (vec.empty()) {
    brick_chunks_.erase(it);
  }
}

std::vector<std::pair<FileId, uint32_t>> DfsCluster::ChunksOnBrick(BrickId brick) const {
  auto it = brick_chunks_.find(brick);
  if (it == brick_chunks_.end()) {
    return {};
  }
  return it->second;
}

const std::vector<std::pair<FileId, uint32_t>>& DfsCluster::ChunksOnBrickRef(
    BrickId brick) const {
  static const std::vector<std::pair<FileId, uint32_t>> kEmpty;
  auto it = brick_chunks_.find(brick);
  return it == brick_chunks_.end() ? kEmpty : it->second;
}

// ---------------------------------------------------------------------------
// Topology services

BrickId DfsCluster::NewBrickOnNode(NodeId node, uint64_t capacity) {
  StorageNode* sn = FindStorageNode(node);
  if (sn == nullptr) {
    return kInvalidBrick;
  }
  BrickId id = next_brick_id_++;
  Brick& brick = bricks_[id];
  brick = Brick{.id = id, .node = node, .capacity_bytes = capacity};
  UpdateBrickFraction(brick);
  IndexBrickPtr(id, &brick);
  sn->bricks.push_back(id);
  OnBrickAdded(brick);
  return id;
}

NodeId DfsCluster::AddStorageNodeInternal(uint64_t brick_capacity) {
  NodeId id = next_node_id_++;
  StorageNode node;
  node.id = id;
  StorageNode& stored = storage_nodes_[id];
  stored = node;
  IndexStorageNodePtr(id, &stored);
  // Group membership is fixed at admission (GeoFS's fewest-members policy is
  // add-order-dependent, so the assignment is real state — snapshot v5
  // persists it) and must exist before the serving-list hooks run.
  AssignLoadGroup(id);
  OnStorageNodeAdded(id);
  NewBrickOnNode(id, brick_capacity);
  return id;
}

// ---------------------------------------------------------------------------
// Operation execution

SimDuration DfsCluster::TransferCost(uint64_t bytes) const {
  if (config_.client_bandwidth_per_s == 0) {
    return 0;
  }
  return static_cast<SimDuration>(
      static_cast<double>(bytes) / static_cast<double>(config_.client_bandwidth_per_s) * 1e6);
}

SimDuration DfsCluster::ParallelTransferCost(const FileLayout& layout) const {
  // Chunks stream to their bricks in parallel; the client's wall time is the
  // largest stripe times the replication factor.
  uint64_t max_chunk = 0;
  for (const ChunkPlacement& chunk : layout.chunks) {
    max_chunk = std::max(max_chunk, chunk.bytes);
  }
  return TransferCost(max_chunk * static_cast<uint64_t>(config_.replication));
}

NodeId DfsCluster::RouteToMetaNode(const Operation& op) {
  (void)op;
  if (serving_meta_nodes_.empty()) {
    return kInvalidNode;
  }
  // Round-robin request routing (front-end load balancing): a healthy
  // cluster spreads requests evenly, so network imbalance is a *signal*,
  // not sampling noise.
  NodeId chosen = serving_meta_nodes_[total_ops_executed_ % serving_meta_nodes_.size()];
  ChargeMeta(chosen, 1, kMetaCpuPerOp);
  return chosen;
}

OpResult DfsCluster::Execute(const Operation& op) {
  OpResult result;
  if (IsEnvFaultOp(op.kind)) {
    // Environment ops bypass metadata routing: they model the test harness
    // (or the world) acting on the cluster from outside, so they succeed
    // even while every metadata node is down. Without an attached runtime
    // they are rejected — the fault-free grammar never generates them, so
    // this arm stays cold in every fault-free campaign.
    if (env_ == nullptr) {
      result.status =
          Status::Unavailable("no environment-fault runtime attached");
      result.cost = config_.base_op_latency;
    } else {
      result = env_->ExecuteEnvOp(*this, op);
      result.cost += config_.base_op_latency;
    }
    ++total_ops_executed_;
    SyncMetadataReplicas();
    uint8_t env_class = static_cast<uint8_t>(OpClass::kEnvFault);
    recent_classes_.push_back(env_class);
    ++class_counts_[env_class];
    recent_class_mask_ |= static_cast<uint8_t>(1u << env_class);
    if (recent_classes_.size() > 8) {
      uint8_t dropped = recent_classes_.front();
      recent_classes_.pop_front();
      if (--class_counts_[dropped] == 0) {
        recent_class_mask_ &= static_cast<uint8_t>(~(1u << dropped));
      }
    }
    clock_.Advance(result.cost);
    if (env_ != nullptr) {
      env_->OnClockAdvanced(*this, clock_.now());
    }
    AdvanceBackground(result.cost);
    MaybeTriggerBalancer();
    RecordOpCoverage(op, result);
    if (hooks_ != nullptr) {
      hooks_->OnOperationExecuted(*this, op, result);
    }
    return result;
  }
  NodeId mn = RouteToMetaNode(op);
  if (mn == kInvalidNode) {
    result.status = Status::Unavailable("no metadata node is serving");
    result.cost = config_.base_op_latency;
  } else {
    switch (op.kind) {
      case OpKind::kCreate:
        result = DoCreate(op);
        break;
      case OpKind::kDelete:
        result = DoDelete(op);
        break;
      case OpKind::kAppend:
        result = DoAppend(op);
        break;
      case OpKind::kOverwrite:
        result = DoOverwrite(op, /*truncate_first=*/false);
        break;
      case OpKind::kTruncateOverwrite:
        result = DoOverwrite(op, /*truncate_first=*/true);
        break;
      case OpKind::kOpen:
        result = DoOpen(op);
        break;
      case OpKind::kMkdir:
        result = DoMkdir(op);
        break;
      case OpKind::kRmdir:
        result = DoRmdir(op);
        break;
      case OpKind::kRename:
        result = DoRename(op);
        break;
      case OpKind::kAddMetaNode:
        result = DoAddMetaNode(op);
        break;
      case OpKind::kRemoveMetaNode:
        result = DoRemoveMetaNode(op);
        break;
      case OpKind::kAddStorageNode:
        result = DoAddStorageNode(op);
        break;
      case OpKind::kRemoveStorageNode:
        result = DoRemoveStorageNode(op);
        break;
      case OpKind::kAddVolume:
        result = DoAddVolume(op);
        break;
      case OpKind::kRemoveVolume:
        result = DoRemoveVolume(op);
        break;
      case OpKind::kExpandVolume:
        result = DoExpandVolume(op);
        break;
      case OpKind::kReduceVolume:
        result = DoReduceVolume(op);
        break;
      case OpKind::kEnvMsgLoss:
      case OpKind::kEnvMsgReorder:
      case OpKind::kEnvMsgDuplicate:
      case OpKind::kEnvMsgCorrupt:
      case OpKind::kEnvSlowDisk:
      case OpKind::kEnvCrashNode:
      case OpKind::kEnvClearFaults:
        // Unreachable: env ops are dispatched before metadata routing.
        result.status = Status::Internal("env op reached the request switch");
        break;
    }
    result.cost += config_.base_op_latency;
  }

  ++total_ops_executed_;
  if (ClassOf(op.kind) == OpClass::kFile && op.kind != OpKind::kOpen &&
      result.status.ok()) {
    ++namespace_epoch_;
  }
  SyncMetadataReplicas();
  uint8_t op_class = static_cast<uint8_t>(ClassOf(op.kind));
  recent_classes_.push_back(op_class);
  ++class_counts_[op_class];
  recent_class_mask_ |= static_cast<uint8_t>(1u << op_class);
  if (recent_classes_.size() > 8) {
    uint8_t dropped = recent_classes_.front();
    recent_classes_.pop_front();
    if (--class_counts_[dropped] == 0) {
      recent_class_mask_ &= static_cast<uint8_t>(~(1u << dropped));
    }
  }

  clock_.Advance(result.cost);
  if (env_ != nullptr) {
    env_->OnClockAdvanced(*this, clock_.now());
  }
  AdvanceBackground(result.cost);
  MaybeTriggerBalancer();
  RecordOpCoverage(op, result);
  if (hooks_ != nullptr) {
    hooks_->OnOperationExecuted(*this, op, result);
  }
  return result;
}

void DfsCluster::SyncMetadataReplicas() {
  for (NodeId id : serving_meta_nodes_) {
    auto it = meta_nodes_.find(id);
    if (it == meta_nodes_.end()) {
      continue;
    }
    if (hooks_ != nullptr && hooks_->SuppressMetadataSync(*this, id)) {
      continue;
    }
    if (env_ != nullptr && env_->DropHeartbeat(*this, id)) {
      // The replication heartbeat for this epoch was lost in transit; the
      // replica catches up at the next sync (same recovery path the fault
      // hook's kMetadataDesync exercises, but transient).
      COV_BRANCH(cov_, CovModule::kReplication, 30);
      continue;
    }
    it->second.synced_epoch = namespace_epoch_;
  }
}

void DfsCluster::AdvanceTime(SimDuration delta) {
  // Idle time still runs the periodic balancer and its migrations: advance
  // in period-sized steps so a trigger fired early in the window gets its
  // background work done within the same call.
  while (delta > 0) {
    SimDuration step = std::min(delta, config_.balancer_period);
    clock_.Advance(step);
    if (env_ != nullptr) {
      env_->OnClockAdvanced(*this, clock_.now());
    }
    AdvanceBackground(step);
    MaybeTriggerBalancer();
    delta -= step;
  }
}

// ---- file operations ----

Result<FileLayout> DfsCluster::PlaceFile(const std::string& path, uint64_t size) {
  FileLayout layout;
  layout.size = size;
  uint64_t remaining = size;
  // Every chunk stays within the stripe unit so the balancer can migrate at
  // chunk granularity.
  uint32_t chunk_count =
      size == 0 ? 1
                : static_cast<uint32_t>((size + config_.chunk_size - 1) / config_.chunk_size);
  uint64_t per_chunk = size / chunk_count;
  for (uint32_t i = 0; i < chunk_count; ++i) {
    uint64_t bytes = (i + 1 == chunk_count) ? remaining : per_chunk;
    remaining -= bytes;
    std::vector<BrickId> replicas = PlaceChunk(path, i, bytes);
    if (replicas.empty()) {
      // Roll back bricks already charged.
      for (ChunkPlacement& chunk : layout.chunks) {
        for (BrickId b : chunk.replicas) {
          ReleaseBrickBytes(FindBrick(b), chunk.bytes);
        }
      }
      return Status::OutOfSpace(Sprintf("no placement for chunk %u of %s", i, path.c_str()));
    }
    ChunkPlacement chunk;
    chunk.bytes = bytes;
    chunk.replicas = replicas;
    for (BrickId b : replicas) {
      AccreteBrickBytes(FindBrick(b), bytes);
    }
    layout.chunks.push_back(std::move(chunk));
  }
  return layout;
}

void DfsCluster::ReleaseLayout(FileId file, const FileLayout& layout) {
  for (uint32_t i = 0; i < layout.chunks.size(); ++i) {
    const ChunkPlacement& chunk = layout.chunks[i];
    for (BrickId b : chunk.replicas) {
      ReleaseBrickBytes(FindBrick(b), chunk.bytes);
      RemoveReplicaIndex(b, file, i);
    }
  }
}

void DfsCluster::IndexLayout(FileId file, const FileLayout& layout) {
  for (uint32_t i = 0; i < layout.chunks.size(); ++i) {
    for (BrickId b : layout.chunks[i].replicas) {
      // A freshly indexed file carries the largest (file, chunk) keys the
      // brick has seen, so AddReplicaIndex's append fast path makes this
      // amortized O(1).
      AddReplicaIndex(b, file, i);
    }
  }
}

void DfsCluster::ChargeLayoutIo(const FileLayout& layout, bool is_write) {
  for (const ChunkPlacement& chunk : layout.chunks) {
    // The charge is identical for every replica of the chunk.
    const double cpu = kStorageCpuPerGiB * static_cast<double>(chunk.bytes) /
                       static_cast<double>(kGiB);
    const uint64_t ios = IoCount(chunk.bytes);
    for (BrickId b : chunk.replicas) {
      const Brick* brick = FindBrick(b);
      if (brick == nullptr) {
        continue;
      }
      if (is_write) {
        ChargeStorage(brick->node, 0, ios, cpu);
      } else {
        ChargeStorage(brick->node, ios, 0, cpu * 0.5);
      }
    }
  }
}

// Placement policies hash the normalized path *string*; in the common case
// the generated operand is already normalized, so this is a no-alloc
// pass-through (the scratch buffer covers the rest).
const std::string& DfsCluster::NormalizedOpPath(const Operation& op) {
  if (IsNormalizedPath(op.path)) {
    return op.path;
  }
  norm_scratch_ = NormalizePath(op.path);
  return norm_scratch_;
}

OpResult DfsCluster::DoCreate(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kRequest, 0);
  PathId rid = tree_.ResolveOpPath(op);
  if (tree_.Find(rid) != nullptr) {
    result.status = Status::AlreadyExists(op.path);
    return result;
  }
  if (config_.max_file_size != 0 && op.size > config_.max_file_size) {
    // EFBIG: rejected at admission, before any placement work.
    COV_BRANCH(cov_, CovModule::kRequest, 35);
    result.status = Status::InvalidArgument(
        Sprintf("file size exceeds max_file_size (%llu > %llu)",
                static_cast<unsigned long long>(op.size),
                static_cast<unsigned long long>(config_.max_file_size)));
    return result;
  }
  Result<FileLayout> placed = PlaceFile(NormalizedOpPath(op), op.size);
  if (!placed.ok()) {
    COV_BRANCH(cov_, CovModule::kPlacement, 1);
    result.status = placed.status();
    return result;
  }
  Result<FileId> created = tree_.CreateFile(rid, op.size);
  if (!created.ok()) {
    ReleaseLayout(0, *placed);  // not yet indexed; brick bytes roll back only
    result.status = created.status();
    return result;
  }
  layouts_[*created] = placed.take();
  IndexLayout(*created, layouts_[*created]);
  ChargeLayoutIo(layouts_[*created], /*is_write=*/true);
  result.bytes_moved = op.size * static_cast<uint64_t>(config_.replication);
  result.cost = ParallelTransferCost(layouts_[*created]);
  result.status = Status::Ok();
  return result;
}

OpResult DfsCluster::DoDelete(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kRequest, 2);
  PathId rid = tree_.ResolveOpPath(op);
  Result<FileId> id = tree_.FileIdOf(rid);
  if (!id.ok()) {
    result.status = Status::NotFound(op.path);  // raw operand, as clients see
    return result;
  }
  auto layout_it = layouts_.find(*id);
  if (layout_it != layouts_.end()) {
    ReleaseLayout(*id, layout_it->second);
    layouts_.erase(layout_it);
  }
  result.status = tree_.RemoveFile(rid);
  return result;
}

OpResult DfsCluster::DoAppend(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kRequest, 3);
  PathId rid = tree_.ResolveOpPath(op);
  Result<FileId> id = tree_.FileIdOf(rid);
  if (!id.ok()) {
    result.status = Status::NotFound(op.path);  // raw operand, as clients see
    return result;
  }
  FileLayout& layout = layouts_[*id];
  uint64_t bytes = op.size;
  if (config_.max_file_size != 0 && layout.size + bytes > config_.max_file_size) {
    COV_BRANCH(cov_, CovModule::kRequest, 35);
    result.status = Status::InvalidArgument(
        Sprintf("append would exceed max_file_size (%llu + %llu > %llu)",
                static_cast<unsigned long long>(layout.size),
                static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(config_.max_file_size)));
    return result;
  }
  // Extend the last chunk while it stays within the stripe unit (chunks must
  // remain individually migratable); otherwise place a new chunk.
  if (!layout.chunks.empty() && layout.chunks.back().bytes + bytes <= config_.chunk_size) {
    ChunkPlacement& last = layout.chunks.back();
    bool fits = true;
    for (BrickId b : last.replicas) {
      const Brick* brick = FindBrick(b);
      if (brick == nullptr || brick->FreeBytes() < bytes) {
        fits = false;
        break;
      }
    }
    if (fits) {
      last.bytes += bytes;
      for (BrickId b : last.replicas) {
        Brick* brick = FindBrick(b);
        AccreteBrickBytes(brick, bytes);
        ChargeStorage(brick->node, 0, IoCount(bytes),
                      kStorageCpuPerGiB * static_cast<double>(bytes) / kGiB);
      }
      layout.size += bytes;
      result.status = tree_.SetFileSize(rid, layout.size);
      result.bytes_moved = bytes * config_.replication;
      result.cost = TransferCost(result.bytes_moved);
      return result;
    }
  }
  // Append as a run of stripe-sized chunks.
  uint64_t remaining = bytes;
  uint64_t appended = 0;
  while (remaining > 0) {
    uint64_t piece = std::min(remaining, config_.chunk_size);
    std::vector<BrickId> replicas = PlaceChunk(
        NormalizedOpPath(op), static_cast<uint32_t>(layout.chunks.size()), piece);
    if (replicas.empty()) {
      COV_BRANCH(cov_, CovModule::kPlacement, 4);
      break;  // partial append: the write hit ENOSPC mid-stream
    }
    ChunkPlacement chunk;
    chunk.bytes = piece;
    chunk.replicas = replicas;
    uint32_t index = static_cast<uint32_t>(layout.chunks.size());
    for (BrickId b : replicas) {
      Brick* brick = FindBrick(b);
      AccreteBrickBytes(brick, piece);
      AddReplicaIndex(b, *id, index);
      ChargeStorage(brick->node, 0, IoCount(piece),
                    kStorageCpuPerGiB * static_cast<double>(piece) / kGiB);
    }
    layout.chunks.push_back(std::move(chunk));
    layout.size += piece;
    appended += piece;
    remaining -= piece;
  }
  result.status = appended == bytes
                      ? tree_.SetFileSize(rid, layout.size)
                      : Status::OutOfSpace("append: no placement");
  if (appended > 0 && !result.status.ok()) {
    (void)tree_.SetFileSize(rid, layout.size);
  }
  result.bytes_moved = appended * config_.replication;
  result.cost = TransferCost(std::min<uint64_t>(appended, config_.chunk_size) *
                             config_.replication);
  return result;
}

OpResult DfsCluster::DoOverwrite(const Operation& op, bool truncate_first) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kRequest, truncate_first ? 6 : 5);
  PathId rid = tree_.ResolveOpPath(op);
  Result<FileId> id = tree_.FileIdOf(rid);
  if (!id.ok()) {
    result.status = Status::NotFound(op.path);  // raw operand, as clients see
    return result;
  }
  if (config_.max_file_size != 0 && op.size > config_.max_file_size) {
    // EFBIG before the truncate: the existing data stays untouched.
    COV_BRANCH(cov_, CovModule::kRequest, 35);
    result.status = Status::InvalidArgument(
        Sprintf("overwrite size exceeds max_file_size (%llu > %llu)",
                static_cast<unsigned long long>(op.size),
                static_cast<unsigned long long>(config_.max_file_size)));
    return result;
  }
  auto layout_it = layouts_.find(*id);
  if (layout_it != layouts_.end()) {
    ReleaseLayout(*id, layout_it->second);
    layouts_.erase(layout_it);
  }
  uint64_t new_size = op.size;
  Result<FileLayout> placed = PlaceFile(NormalizedOpPath(op), new_size);
  if (!placed.ok()) {
    // The file now exists with no data (the truncate landed, the write
    // failed) — exactly what happens on a full real system.
    (void)tree_.SetFileSize(rid, 0);
    layouts_[*id] = FileLayout{};
    result.status = placed.status();
    return result;
  }
  layouts_[*id] = placed.take();
  IndexLayout(*id, layouts_[*id]);
  ChargeLayoutIo(layouts_[*id], /*is_write=*/true);
  result.status = tree_.SetFileSize(rid, new_size);
  result.bytes_moved = new_size * config_.replication;
  result.cost = ParallelTransferCost(layouts_[*id]);
  return result;
}

OpResult DfsCluster::DoOpen(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kRequest, 7);
  Result<FileId> id = tree_.FileIdOf(tree_.ResolveOpPath(op));
  if (!id.ok()) {
    result.status = Status::NotFound(op.path);  // raw operand, as clients see
    return result;
  }
  auto layout_it = layouts_.find(*id);
  if (layout_it != layouts_.end()) {
    ChargeLayoutIo(layout_it->second, /*is_write=*/false);
    result.bytes_moved = layout_it->second.size;
    result.cost = TransferCost(layout_it->second.size) / 2;  // read path is lighter
  }
  result.status = Status::Ok();
  return result;
}

OpResult DfsCluster::DoMkdir(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kNamespace, 8);
  result.status = tree_.MakeDir(tree_.ResolveOpPath(op));
  return result;
}

OpResult DfsCluster::DoRmdir(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kNamespace, 9);
  result.status = tree_.RemoveDir(tree_.ResolveOpPath(op));
  return result;
}

OpResult DfsCluster::DoRename(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kNamespace, 10);
  PathId src = tree_.ResolveOpPath(op);
  PathId dst = tree_.ResolveOpPath2(op);
  Result<FileId> id = tree_.FileIdOf(src);
  result.status = tree_.Rename(src, dst);
  if (result.status.ok()) {
    OnNamespaceRenamed();
    if (id.ok()) {
      OnFileRenamed(*id, NormalizePath(op.path), NormalizePath(op.path2));
    }
  }
  return result;
}

// ---- node operations ----

OpResult DfsCluster::DoAddMetaNode(const Operation& op) {
  (void)op;
  OpResult result;
  COV_BRANCH(cov_, CovModule::kMembership, 11);
  int serving = static_cast<int>(serving_meta_nodes_.size());
  if (serving >= config_.max_meta_nodes) {
    result.status = Status::FailedPrecondition("metadata node limit reached");
    return result;
  }
  NodeId id = next_node_id_++;
  MetaNode node;
    node.id = id;
    meta_nodes_[id] = node;
  serving_meta_nodes_.push_back(id);  // node ids are monotonic: stays sorted
  ++membership_epoch_;
  result.cost = Seconds(5);
  NotifyTopologyChanged();
  result.status = Status::Ok();
  return result;
}

OpResult DfsCluster::DoRemoveMetaNode(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kMembership, 12);
  if (static_cast<int>(serving_meta_nodes_.size()) <= config_.min_meta_nodes) {
    result.status = Status::FailedPrecondition("metadata node minimum reached");
    return result;
  }
  NodeId target = op.node;
  auto it = meta_nodes_.find(target);
  if (it == meta_nodes_.end() || !it->second.Serving()) {
    result.status = Status::NotFound(Sprintf("meta node %u", target));
    return result;
  }
  it->second.online = false;
  auto pos = std::lower_bound(serving_meta_nodes_.begin(),
                              serving_meta_nodes_.end(), target);
  if (pos != serving_meta_nodes_.end() && *pos == target) {
    serving_meta_nodes_.erase(pos);
  }
  ++membership_epoch_;
  OnMetaNodeUnserving(target);
  result.cost = Seconds(3);
  NotifyTopologyChanged();
  result.status = Status::Ok();
  return result;
}

OpResult DfsCluster::DoAddStorageNode(const Operation& op) {
  (void)op;
  OpResult result;
  COV_BRANCH(cov_, CovModule::kMembership, 13);
  int serving = static_cast<int>(ServingStorageNodeIds().size());
  if (serving >= config_.max_storage_nodes) {
    result.status = Status::FailedPrecondition("storage node limit reached");
    return result;
  }
  AddStorageNodeInternal(BrickCapacityFor(next_node_id_));
  result.cost = Seconds(20);
  NotifyTopologyChanged();
  result.status = Status::Ok();
  return result;
}

OpResult DfsCluster::DoRemoveStorageNode(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kMembership, 14);
  if (static_cast<int>(ServingStorageNodeIds().size()) <= config_.min_storage_nodes) {
    result.status = Status::FailedPrecondition("storage node minimum reached");
    return result;
  }
  StorageNode* node = FindStorageNode(op.node);
  if (node == nullptr || !node->Serving()) {
    result.status = Status::NotFound(Sprintf("storage node %u", op.node));
    return result;
  }
  // The node is serving, so exactly its online bricks sit in the serving
  // list — count the rest by subtraction instead of a fleet walk.
  size_t own_serving = 0;
  for (BrickId b : node->bricks) {
    const Brick* brick = FindBrick(b);
    if (brick != nullptr && brick->online) {
      ++own_serving;
    }
  }
  size_t bricks_elsewhere = ServingBricks().size() - own_serving;
  if (bricks_elsewhere < kMinServingBricks) {
    result.status = Status::FailedPrecondition("too few bricks would remain");
    return result;
  }
  bool was_serving = node->Serving();
  node->online = false;
  if (was_serving) {
    OnStorageNodeUnserving(op.node);
  }
  for (BrickId b : node->bricks) {
    Brick* brick = FindBrick(b);
    if (brick != nullptr) {
      if (brick->online) {
        ++offline_bricks_;
        offline_brick_list_.push_back(b);
        brick->online = false;
        OnBrickOffline(*brick);
      }
    }
  }
  OnStorageNodeDecommissioned(op.node);
  ScheduleRecovery(op.node);
  result.cost = Seconds(10);
  NotifyTopologyChanged();
  result.status = Status::Ok();
  return result;
}

// ---- volume operations ----

OpResult DfsCluster::DoAddVolume(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kVolume, 15);
  NodeId target = op.node;
  if (FindStorageNode(target) == nullptr || !FindStorageNode(target)->Serving()) {
    // Attach to the node with the least total capacity.
    uint64_t best_capacity = UINT64_MAX;
    target = kInvalidNode;
    for (NodeId id : ServingStorageNodeIds()) {
      const StorageNode* node = FindStorageNode(id);
      if (node == nullptr) {
        continue;
      }
      uint64_t cap = 0;
      for (BrickId b : node->bricks) {
        const Brick* brick = FindBrick(b);
        if (brick != nullptr) {
          cap += brick->capacity_bytes;
        }
      }
      if (cap < best_capacity) {
        best_capacity = cap;
        target = id;
      }
    }
  }
  if (target == kInvalidNode) {
    result.status = Status::Unavailable("no serving storage node for new volume");
    return result;
  }
  uint64_t capacity = op.size == 0 ? config_.brick_capacity
                                   : std::clamp(op.size, kMinBrickCapacity,
                                                2 * config_.brick_capacity);
  NewBrickOnNode(target, capacity);
  result.cost = Seconds(15);
  NotifyTopologyChanged();
  result.status = Status::Ok();
  return result;
}

OpResult DfsCluster::DoRemoveVolume(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kVolume, 16);
  Brick* brick = FindBrick(op.brick);
  if (brick == nullptr || !brick->online) {
    result.status = Status::NotFound(Sprintf("brick %u", op.brick));
    return result;
  }
  // Refuse if the remaining bricks cannot absorb the data. The fleet free
  // aggregate is exactly the sum of per-brick clamped FreeBytes over serving
  // bricks, so subtracting this brick's share gives the same value as the
  // old fleet walk, in O(1).
  const StorageNode* owner = FindStorageNode(brick->node);
  uint64_t remaining_free = FreeSpaceBytes();
  if (owner != nullptr && owner->Serving()) {
    remaining_free -= brick->FreeBytes();
  }
  if (ServingBricks().size() <= kMinServingBricks || remaining_free < brick->used_bytes) {
    result.status = Status::FailedPrecondition("insufficient space to evacuate brick");
    return result;
  }
  brick->online = false;  // draining: no new placements
  ++offline_bricks_;
  offline_brick_list_.push_back(op.brick);
  OnBrickOffline(*brick);
  ScheduleEvacuation(op.brick);
  result.cost = Seconds(10);
  NotifyTopologyChanged();
  result.status = Status::Ok();
  return result;
}

OpResult DfsCluster::DoExpandVolume(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kVolume, 17);
  Brick* brick = FindBrick(op.brick);
  if (brick == nullptr || !brick->online) {
    result.status = Status::NotFound(Sprintf("brick %u", op.brick));
    return result;
  }
  uint64_t delta = op.size == 0 ? config_.brick_capacity / 4 : op.size;
  // A device grows to at most 2x the standard brick: balance targets must
  // stay reachable at chunk granularity across the capacity spread.
  uint64_t cap_limit = 2 * config_.brick_capacity;
  if (brick->capacity_bytes >= cap_limit) {
    result.status = Status::FailedPrecondition("volume already at maximum size");
    return result;
  }
  uint64_t old_capacity = brick->capacity_bytes;
  brick->capacity_bytes = std::min(brick->capacity_bytes + delta, cap_limit);
  UpdateBrickFraction(*brick);
  OnBrickCapacityChanged(*brick, old_capacity);
  result.cost = Seconds(8);
  NotifyTopologyChanged();
  result.status = Status::Ok();
  return result;
}

OpResult DfsCluster::DoReduceVolume(const Operation& op) {
  OpResult result;
  COV_BRANCH(cov_, CovModule::kVolume, 18);
  Brick* brick = FindBrick(op.brick);
  if (brick == nullptr || !brick->online) {
    result.status = Status::NotFound(Sprintf("brick %u", op.brick));
    return result;
  }
  uint64_t delta = op.size == 0 ? brick->capacity_bytes / 4 : op.size;
  // A single resize shrinks a device by at most 40%: one random operation
  // cannot crater a brick; sustained shrinking takes deliberate repetition.
  delta = std::min(delta, brick->capacity_bytes * 2 / 5);
  uint64_t new_capacity =
      std::max(brick->capacity_bytes - delta, kMinBrickCapacity);
  if (brick->used_bytes > new_capacity) {
    // Shrinking below the stored data strands it; refuse unless the rest of
    // the cluster can absorb the overflow (what lvreduce/remove-brick
    // preflights enforce).
    uint64_t overflow = brick->used_bytes - new_capacity;
    // Same O(1) subtraction as DoRemoveVolume: fleet free minus this
    // brick's clamped share equals the old per-brick walk exactly.
    const StorageNode* owner = FindStorageNode(brick->node);
    uint64_t remaining_free = FreeSpaceBytes();
    if (owner != nullptr && owner->Serving()) {
      remaining_free -= brick->FreeBytes();
    }
    if (remaining_free < overflow) {
      COV_BRANCH(cov_, CovModule::kVolume, 19);
      result.status = Status::FailedPrecondition("reduction would strand data");
      return result;
    }
    uint64_t old_capacity = brick->capacity_bytes;
    brick->capacity_bytes = new_capacity;
    UpdateBrickFraction(*brick);
    OnBrickCapacityChanged(*brick, old_capacity);
    ScheduleOverflowEvacuation(op.brick, overflow);
  } else {
    uint64_t old_capacity = brick->capacity_bytes;
    brick->capacity_bytes = new_capacity;
    UpdateBrickFraction(*brick);
    OnBrickCapacityChanged(*brick, old_capacity);
  }
  result.cost = Seconds(8);
  NotifyTopologyChanged();
  result.status = Status::Ok();
  return result;
}

void DfsCluster::NotifyTopologyChanged() {
  OnTopologyChangedInternal();
  if (cov_ != nullptr) {
    uint64_t features = HashCombine(ServingBricks().size(), ServingStorageNodeIds().size());
    features = HashCombine(features, meta_nodes_.size());
    cov_->HitState(CovModule::kMembership, features);
  }
  if (hooks_ != nullptr) {
    hooks_->OnTopologyChanged(*this);
  }
}

// ---------------------------------------------------------------------------
// Recovery / evacuation / migration

// Snapshots the serving bricks once per scheduling pass as a min-heap keyed
// by (utilization, serving order). Nothing in a scheduling pass mutates
// brick bytes or membership, so one snapshot serves every chunk of the pass.
// Each pick consumes only an ascending prefix (it stops once no later
// candidate can win), so candidates are popped lazily instead of paying a
// full O(B log B) sort for a handful of inspected entries.
bool DfsCluster::RecoveryCandidateAfter(const RecoveryCandidate& a,
                                        const RecoveryCandidate& b) {
  return a.used_fraction != b.used_fraction
             ? b.used_fraction < a.used_fraction
             : b.order < a.order;
}

void DfsCluster::BeginRecoveryPass() const {
  recovery_heap_.clear();
  recovery_sorted_.clear();
  recovery_pass_built_ = false;
}

void DfsCluster::BuildRecoveryPassNow() const {
  recovery_pass_built_ = true;
  uint32_t order = 0;
  for (BrickId id : ServingBricks()) {
    recovery_heap_.push_back(
        RecoveryCandidate{brick_fraction_[id], order++, id});
  }
  std::make_heap(recovery_heap_.begin(), recovery_heap_.end(),
                 RecoveryCandidateAfter);
}

// The (fraction, order) key is a unique total order, so the pop sequence is
// exactly the fully sorted order the historical sort produced.
const DfsCluster::RecoveryCandidate* DfsCluster::RecoveryCandidateAt(
    size_t rank) const {
  if (!recovery_pass_built_) {
    BuildRecoveryPassNow();
  }
  while (recovery_sorted_.size() <= rank) {
    if (recovery_heap_.empty()) {
      return nullptr;
    }
    std::pop_heap(recovery_heap_.begin(), recovery_heap_.end(),
                  RecoveryCandidateAfter);
    recovery_sorted_.push_back(recovery_heap_.back());
    recovery_heap_.pop_back();
  }
  return &recovery_sorted_[rank];
}

// Equivalent to the historical full scan (least-used serving brick, +0.5
// penalty for co-locating with an existing replica's node, first in serving
// order on ties) but over the pre-sorted candidate list, so it can stop as
// soon as no later candidate can beat the incumbent: a candidate's key is at
// least its used_fraction, and used_fractions only grow from here.
BrickId DfsCluster::PickRecoveryTarget(const ChunkPlacement& chunk,
                                       uint64_t bytes) const {
  BrickId best = kInvalidBrick;
  double best_used = 2.0;
  uint32_t best_order = 0xffffffffu;
  // The replica node set is per chunk, not per candidate — resolve it once.
  replica_nodes_scratch_.clear();
  for (BrickId other : chunk.replicas) {
    const Brick* other_brick = FindBrick(other);
    if (other_brick != nullptr) {
      replica_nodes_scratch_.push_back(other_brick->node);
    }
  }
  for (size_t rank = 0;; ++rank) {
    const RecoveryCandidate* cand = RecoveryCandidateAt(rank);
    if (cand == nullptr || cand->used_fraction > best_used) {
      break;
    }
    const Brick* cand_brick = FindBrick(cand->id);
    if (cand_brick->FreeBytes() < bytes || chunk.HasReplicaOn(cand->id)) {
      continue;
    }
    // Keep replicas on distinct nodes when possible.
    bool same_node = false;
    for (NodeId other_node : replica_nodes_scratch_) {
      if (other_node == cand_brick->node) {
        same_node = true;
        break;
      }
    }
    double used = cand->used_fraction + (same_node ? 0.5 : 0.0);
    if (used < best_used || (used == best_used && cand->order < best_order)) {
      best_used = used;
      best_order = cand->order;
      best = cand->id;
    }
  }
  return best;
}

void DfsCluster::ScheduleRecovery(NodeId node) {
  COV_BRANCH(cov_, CovModule::kRecovery, 20);
  const StorageNode* sn = FindStorageNode(node);
  if (sn == nullptr) {
    return;
  }
  BeginRecoveryPass();
  for (BrickId b : sn->bricks) {
    for (const auto& [file, chunk_index] : ChunksOnBrickRef(b)) {
      auto layout_it = layouts_.find(file);
      if (layout_it == layouts_.end() || chunk_index >= layout_it->second.chunks.size()) {
        continue;
      }
      const ChunkPlacement& chunk = layout_it->second.chunks[chunk_index];
      BrickId target = PickRecoveryTarget(chunk, chunk.bytes);
      if (target == kInvalidBrick) {
        COV_BRANCH(cov_, CovModule::kRecovery, 21);
        continue;  // under-replicated until space appears
      }
      move_queue_.push_back(ChunkMove{.file = file,
                                      .chunk_index = chunk_index,
                                      .from = b,
                                      .to = target,
                                      .bytes = chunk.bytes,
                                      .reason = MoveReason::kRecovery});
    }
  }
}

void DfsCluster::ScheduleEvacuation(BrickId brick) {
  COV_BRANCH(cov_, CovModule::kMigration, 22);
  BeginRecoveryPass();
  for (const auto& [file, chunk_index] : ChunksOnBrickRef(brick)) {
    auto layout_it = layouts_.find(file);
    if (layout_it == layouts_.end() || chunk_index >= layout_it->second.chunks.size()) {
      continue;
    }
    const ChunkPlacement& chunk = layout_it->second.chunks[chunk_index];
    BrickId target = PickRecoveryTarget(chunk, chunk.bytes);
    if (target == kInvalidBrick) {
      continue;
    }
    move_queue_.push_back(ChunkMove{.file = file,
                                    .chunk_index = chunk_index,
                                    .from = brick,
                                    .to = target,
                                    .bytes = chunk.bytes,
                                    .reason = MoveReason::kEvacuation});
  }
}

void DfsCluster::ScheduleOverflowEvacuation(BrickId brick, uint64_t bytes) {
  uint64_t scheduled = 0;
  BeginRecoveryPass();
  for (const auto& [file, chunk_index] : ChunksOnBrickRef(brick)) {
    if (scheduled >= bytes) {
      break;
    }
    auto layout_it = layouts_.find(file);
    if (layout_it == layouts_.end() || chunk_index >= layout_it->second.chunks.size()) {
      continue;
    }
    const ChunkPlacement& chunk = layout_it->second.chunks[chunk_index];
    BrickId target = PickRecoveryTarget(chunk, chunk.bytes);
    if (target == kInvalidBrick) {
      continue;
    }
    move_queue_.push_back(ChunkMove{.file = file,
                                    .chunk_index = chunk_index,
                                    .from = brick,
                                    .to = target,
                                    .bytes = chunk.bytes,
                                    .reason = MoveReason::kEvacuation});
    scheduled += chunk.bytes;
  }
}

Status DfsCluster::TriggerRebalance() {
  if (balancer_crashed_) {
    // The balancer process is down (env crash of its host): the command has
    // nobody to talk to. The round resumes when the node restarts.
    balancer_resume_pending_ = true;
    return Status::Unavailable("balancer process is down");
  }
  COV_BRANCH(cov_, CovModule::kAdmin, 23);
  ++rebalance_triggers_;
  if (hooks_ != nullptr && hooks_->SuppressRebalance(*this)) {
    COV_BRANCH(cov_, CovModule::kAdmin, 24);
    return Status::Ok();  // the hang fault swallows the command silently
  }
  if (rebalance_active_) {
    return Status::Ok();  // already running
  }
  MigrationPlan plan = BuildRebalancePlan();
  if (hooks_ != nullptr) {
    hooks_->OnRebalancePlanned(*this, plan);
  }
  // Charge the balancer's own computation to a metadata node. Reads the
  // serving list in place — same contents and order as ListMetaNodes(), and
  // PickIndex fires iff the list is non-empty, so the RNG stream is
  // unchanged.
  if (!serving_meta_nodes_.empty()) {
    ChargeMeta(serving_meta_nodes_[rng_.PickIndex(serving_meta_nodes_.size())],
               0, kBalancerCpuPerPlan);
  }
  if (cov_ != nullptr) {
    uint64_t features = HashCombine(plan.size() / 4, static_cast<uint64_t>(
                                                        StorageImbalance() * 20.0));
    features = HashCombine(features, ServingBricks().size());
    features = HashCombine(features, PlanBytes(plan) / (16 * kGiB));
    cov_->HitState(CovModule::kBalancer, features, 2 * ImbalanceMultiplicity());
  }
  if (plan.empty()) {
    ++completed_rebalance_rounds_;
    THEMIS_COUNTER_INC("cluster.rebalance_rounds", 1);
    if (telemetry_ != nullptr) {
      telemetry_->Record(CampaignEventKind::kRebalanceRound, "empty",
                         StorageImbalance());
    }
    // Empty plan: the round settles without a migration phase.
    EmitBalancerState(BalancerSettleState(flavor_));
    EmitBalancerState(BalancerState::kIdle);
    OnRebalanceRoundDone();
    if (hooks_ != nullptr) {
      hooks_->OnRebalanceDone(*this);
    }
    return Status::Ok();
  }
  current_round_moves_ = plan.size();
  if (telemetry_ != nullptr) {
    telemetry_->Record(CampaignEventKind::kRebalanceRound, "planned",
                       StorageImbalance(), 0.0, current_round_moves_);
  }
  for (ChunkMove& move : plan) {
    move_queue_.push_back(move);
  }
  EmitBalancerState(BalancerMoveState(flavor_));
  rebalance_active_ = true;
  return Status::Ok();
}

void DfsCluster::MaybeTriggerBalancer() {
  bool due = config_.continuous_balancing ||
             clock_.now() - last_balancer_check_ >= config_.balancer_period;
  if (!due) {
    return;
  }
  last_balancer_check_ = clock_.now();
  if (balancer_crashed_) {
    return;  // nobody is running the periodic check
  }
  if (hooks_ != nullptr && hooks_->SuppressRebalance(*this)) {
    return;
  }
  if (StorageImbalance() > config_.native_threshold && !rebalance_active_) {
    COV_BRANCH(cov_, CovModule::kBalancer, 25);
    (void)TriggerRebalance();
  }
}

void DfsCluster::ExecuteMove(const ChunkMove& move) {
  auto layout_it = layouts_.find(move.file);
  if (layout_it == layouts_.end() || move.chunk_index >= layout_it->second.chunks.size()) {
    return;  // the file vanished while queued
  }
  ChunkPlacement& chunk = layout_it->second.chunks[move.chunk_index];
  auto replica_it = std::find(chunk.replicas.begin(), chunk.replicas.end(), move.from);
  if (replica_it == chunk.replicas.end()) {
    return;  // already moved elsewhere
  }
  Brick* from = FindBrick(move.from);
  Brick* to = FindBrick(move.to);
  if (to == nullptr || !to->online || chunk.HasReplicaOn(move.to) ||
      to->FreeBytes() < chunk.bytes) {
    COV_BRANCH(cov_, CovModule::kMigration, 26);
    THEMIS_LOG(kDebug, "migration: skip %s", move.ToString().c_str());
    return;
  }
  *replica_it = move.to;
  if (from != nullptr) {
    ReleaseBrickBytes(from, chunk.bytes);
    ChargeStorage(from->node, IoCount(chunk.bytes), 0,
                  kStorageCpuPerGiB * static_cast<double>(chunk.bytes) / kGiB * 0.5);
  }
  AccreteBrickBytes(to, chunk.bytes);
  ChargeStorage(to->node, 0, IoCount(chunk.bytes),
                kStorageCpuPerGiB * static_cast<double>(chunk.bytes) / kGiB);
  RemoveReplicaIndex(move.from, move.file, move.chunk_index);
  AddReplicaIndex(move.to, move.file, move.chunk_index);
  if (cov_ != nullptr) {
    // Migration branches are the bulk of a load balancer's code: each
    // distinct (reason, donor-level, receiver-level, imbalance, round-phase)
    // combination corresponds to a different path through planning, pairing,
    // throttling and verification logic.
    uint64_t h = HashCombine(static_cast<uint64_t>(move.reason), move.is_linkfile);
    if (from != nullptr) {
      h = HashCombine(h, static_cast<uint64_t>(from->UsedFraction() * 16.0));
    }
    h = HashCombine(h, static_cast<uint64_t>(to->UsedFraction() * 16.0));
    h = HashCombine(h, static_cast<uint64_t>(std::min(StorageImbalance(), 1.0) * 16.0));
    h = HashCombine(h, static_cast<uint64_t>(completed_rebalance_rounds_ % 16));
    h = HashCombine(h, move_queue_.size() / 8);
    // Only balancer-initiated moves walk the imbalance-dependent planning
    // code; recovery and evacuation are replication-repair paths.
    int multiplicity = 1;
    if (move.reason == MoveReason::kRebalance && !move.hash_driven) {
      // Load-driven leveling walks the imbalance-dependent balancer logic;
      // hash-driven relocation and replica repair are mechanical.
      multiplicity = 2 * ImbalanceMultiplicity();
    }
    cov_->HitState(CovModule::kMigration, h, multiplicity);
  }
}

void DfsCluster::AdvanceBackground(SimDuration dt) {
  if (move_queue_.empty()) {
    FinishRebalanceIfDrained();
    return;
  }
  uint64_t budget = static_cast<uint64_t>(
      static_cast<double>(dt) / 1e6 * static_cast<double>(config_.migration_bandwidth_per_s));
  // Each reorder verdict rotates the head message to the back of the queue;
  // budgeting the rotations to the queue length bounds one pass, so a
  // reorder-everything schedule degrades to delivery in arrival order
  // instead of livelocking.
  size_t reorder_budget = move_queue_.size();
  while (!move_queue_.empty() && budget > 0) {
    ChunkMove move = move_queue_.front();
    FaultHooks::MigrateVerdict verdict =
        hooks_ != nullptr ? hooks_->OnMigrateChunk(*this, move)
                          : FaultHooks::MigrateVerdict::kProceed;
    if (verdict == FaultHooks::MigrateVerdict::kSkip) {
      COV_BRANCH(cov_, CovModule::kMigration, 27);
      move_queue_.pop_front();
      current_move_done_bytes_ = 0;
      continue;
    }
    if (verdict == FaultHooks::MigrateVerdict::kLoseData) {
      COV_BRANCH(cov_, CovModule::kMigration, 28);
      DestroyChunkReplica(move.file, move.chunk_index, move.from);
      move_queue_.pop_front();
      current_move_done_bytes_ = 0;
      continue;
    }
    // Environment message verdicts fire once per transfer, at the message
    // boundary — a partially transferred chunk already survived its draw.
    if (env_ != nullptr && current_move_done_bytes_ == 0) {
      EnvFaultRuntime::MessageVerdict mv = env_->OnMigrationMessage(*this, move);
      if (mv == EnvFaultRuntime::MessageVerdict::kDrop) {
        // Lost in transit: the source keeps its replica (copy-then-delete
        // migration is idempotent), the balancer just never completes this
        // move in the round.
        COV_BRANCH(cov_, CovModule::kMigration, 30);
        move_queue_.pop_front();
        continue;
      }
      if (mv == EnvFaultRuntime::MessageVerdict::kReorder &&
          move_queue_.size() > 1 && reorder_budget > 0) {
        COV_BRANCH(cov_, CovModule::kMigration, 31);
        move_queue_.pop_front();
        move_queue_.push_back(move);
        --reorder_budget;
        continue;
      }
      if (mv == EnvFaultRuntime::MessageVerdict::kDuplicate) {
        // The retransmitted copy lands at the back of the queue; by the
        // time it is serviced the chunk has already moved, so ExecuteMove
        // treats it as an already-moved no-op — it only wastes bandwidth.
        COV_BRANCH(cov_, CovModule::kMigration, 32);
        move_queue_.push_back(move);
      } else if (mv == EnvFaultRuntime::MessageVerdict::kCorrupt) {
        // Checksum failure on arrival: the transfer's bandwidth is burned,
        // the source re-reads the chunk (IO charge), and the move is
        // abandoned for this round.
        COV_BRANCH(cov_, CovModule::kMigration, 33);
        uint64_t burned = std::min(budget, move.bytes);
        budget -= burned;
        if (Brick* src = FindBrick(move.from)) {
          ChargeStorage(src->node, IoCount(move.bytes), 0, 0.0);
        }
        move_queue_.pop_front();
        continue;
      }
    }
    // A degraded disk on either endpoint stretches the transfer: the same
    // bytes consume `slow`x the bandwidth budget. Factor 1.0 (no fault
    // runtime, or no slow-disk window covering these nodes) takes the
    // integer-only path, bit-identical to the fault-free arithmetic.
    double slow = 1.0;
    if (env_ != nullptr) {
      if (const Brick* src = FindBrick(move.from)) {
        slow = std::max(slow, env_->DiskSlowdown(*this, src->node));
      }
      if (const Brick* dst = FindBrick(move.to)) {
        slow = std::max(slow, env_->DiskSlowdown(*this, dst->node));
      }
    }
    uint64_t remaining = move.bytes > current_move_done_bytes_
                             ? move.bytes - current_move_done_bytes_
                             : 0;
    uint64_t effective = slow > 1.0 ? static_cast<uint64_t>(
                                          static_cast<double>(remaining) * slow)
                                    : remaining;
    if (effective > budget) {
      uint64_t progress = slow > 1.0 ? static_cast<uint64_t>(
                                           static_cast<double>(budget) / slow)
                                     : budget;
      current_move_done_bytes_ += progress;
      budget = 0;
      break;
    }
    budget -= effective;
    ExecuteMove(move);
    move_queue_.pop_front();
    current_move_done_bytes_ = 0;
  }
  FinishRebalanceIfDrained();
}

void DfsCluster::DestroyChunkReplica(FileId file, uint32_t chunk_index, BrickId brick) {
  auto layout_it = layouts_.find(file);
  if (layout_it == layouts_.end() || chunk_index >= layout_it->second.chunks.size()) {
    return;
  }
  ChunkPlacement& chunk = layout_it->second.chunks[chunk_index];
  auto replica_it = std::find(chunk.replicas.begin(), chunk.replicas.end(), brick);
  if (replica_it == chunk.replicas.end()) {
    return;
  }
  chunk.replicas.erase(replica_it);
  ReleaseBrickBytes(FindBrick(brick), chunk.bytes);
  RemoveReplicaIndex(brick, file, chunk_index);
  if (chunk.replicas.empty()) {
    lost_bytes_ += chunk.bytes;
  }
}

void DfsCluster::FinishRebalanceIfDrained() {
  if (!move_queue_.empty()) {
    return;
  }
  if (rebalance_active_) {
    rebalance_active_ = false;
    ++completed_rebalance_rounds_;
    COV_BRANCH(cov_, CovModule::kBalancer, 29);
    EmitBalancerState(BalancerSettleState(flavor_));
    EmitBalancerState(BalancerState::kIdle);
    THEMIS_COUNTER_INC("cluster.rebalance_rounds", 1);
    if (telemetry_ != nullptr) {
      telemetry_->Record(CampaignEventKind::kRebalanceRound, "drained",
                         StorageImbalance(), 0.0, current_round_moves_);
    }
    current_round_moves_ = 0;
    OnRebalanceRoundDone();
    if (hooks_ != nullptr) {
      hooks_->OnRebalanceDone(*this);
    }
  }
  // Garbage-collect fully drained offline bricks and empty offline nodes.
  // Gated on the offline-brick count so healthy steady state (no draining
  // bricks anywhere) skips the O(bricks) sweep entirely.
  if (offline_bricks_ == 0) {
    return;
  }
  // Sweep only the tracked offline bricks: a long-lived drain (stuck
  // evacuation on an under-provisioned fleet) would otherwise walk the whole
  // ever-growing brick map on every op. Collection decisions are mutually
  // independent, so sweeping in tracking order removes exactly the bricks
  // the historical map walk removed.
  size_t kept = 0;
  for (size_t i = 0; i < offline_brick_list_.size(); ++i) {
    BrickId id = offline_brick_list_[i];
    const Brick* brick = FindBrick(id);
    if (brick == nullptr || brick->online) {
      continue;  // stale entry
    }
    if (brick->used_bytes == 0 && brick_chunks_.count(id) == 0) {
      StorageNode* node = FindStorageNode(brick->node);
      if (node != nullptr) {
        node->bricks.erase(
            std::remove(node->bricks.begin(), node->bricks.end(), id),
            node->bricks.end());
      }
      // No aggregate updates: a drained offline brick contributes zero to
      // every maintained sum (offline => not in the online/fleet sums,
      // used_bytes == 0 => nothing in the used-all sums).
      brick_index_[id] = nullptr;
      bricks_.erase(id);
      --offline_bricks_;
    } else {
      offline_brick_list_[kept++] = id;
    }
  }
  offline_brick_list_.resize(kept);
}

// ---------------------------------------------------------------------------
// Load sampling / coverage

void DfsCluster::SampleLoadInto(std::vector<LoadSample>& out) const {
  EnsureLoadIndex();
  out.clear();
  out.reserve(storage_nodes_.size() + meta_nodes_.size());
  for (const auto& [id, node] : storage_nodes_) {
    LoadSample sample;
    sample.node = id;
    sample.is_storage = true;
    sample.online = node.online;
    sample.crashed = node.crashed;
    // Draining (offline) bricks are unmounted from the balancer's point of
    // view; the load index's per-node aggregates already exclude them, so
    // the monitor's fleet utilization matches what the balancer can level.
    if (id < node_agg_.size()) {
      sample.used_bytes = node_agg_[id].used_online;
      sample.capacity_bytes = node_agg_[id].cap_online;
    }
    sample.requests = node.load.requests;
    sample.read_ios = node.load.read_ios;
    sample.write_ios = node.load.write_ios;
    sample.cpu_seconds = node.load.cpu_seconds;
    sample.taken_at = clock_.now();
    out.push_back(sample);
  }
  for (const auto& [id, node] : meta_nodes_) {
    LoadSample sample;
    sample.node = id;
    sample.is_storage = false;
    sample.online = node.online;
    sample.crashed = node.crashed;
    sample.requests = node.load.requests;
    sample.read_ios = node.load.read_ios;
    sample.write_ios = node.load.write_ios;
    sample.cpu_seconds = node.load.cpu_seconds;
    sample.taken_at = clock_.now();
    out.push_back(sample);
  }
}

bool DfsCluster::SnapshotLoadStats(LoadStatsSnapshot& out) const {
  EnsureLoadIndex();
  const FractionStats& frac = EnsureFractionStats();
  out = LoadStatsSnapshot{};
  out.taken_at = clock_.now();
  uint32_t storage_count = static_cast<uint32_t>(serving_storage_nodes_.size());
  uint32_t meta_count = static_cast<uint32_t>(serving_meta_nodes_.size());
  out.cpu_storage = {cpu_storage_agg_.sum, cpu_storage_agg_.sum_sq,
                     cpu_storage_agg_.max_delta, storage_count};
  out.cpu_meta = {cpu_meta_agg_.sum, cpu_meta_agg_.sum_sq,
                  cpu_meta_agg_.max_delta, meta_count};
  out.net_storage = {net_storage_agg_.sum, net_storage_agg_.sum_sq,
                     net_storage_agg_.max_delta, storage_count};
  out.net_meta = {net_meta_agg_.sum, net_meta_agg_.sum_sq,
                  net_meta_agg_.max_delta, meta_count};
  out.fraction_nodes = frac.nodes;
  out.max_fraction = frac.max_fraction;
  out.storage_used = frac.used;
  out.storage_cap = frac.cap;
  out.frac_sum = frac.frac_sum;
  out.frac_sum_sq = frac.frac_sum_sq;
  out.serving_storage_nodes = storage_count;
  out.any_crashed = crashed_nodes_ > 0;
  return true;
}

void DfsCluster::AdvanceLoadWindow() {
  // O(1) close of the rate window: bumping the epoch invalidates every
  // per-node base lazily (the next charge rebases), and the group aggregates
  // of the now-empty window are all zero.
  ++window_epoch_;
  cpu_storage_agg_ = RateDimAgg{};
  cpu_meta_agg_ = RateDimAgg{};
  net_storage_agg_ = RateDimAgg{};
  net_meta_agg_ = RateDimAgg{};
}

std::string DfsCluster::DescribeState() const {
  std::string out;
  for (const auto& [id, brick] : bricks_) {
    const StorageNode* node = FindStorageNode(brick.node);
    out += Sprintf("brick%u(n%u%s%s %lluG/%lluG) ", id, brick.node,
                   brick.online ? "" : ",off",
                   (node != nullptr && node->Serving()) ? "" : ",dead",
                   static_cast<unsigned long long>(brick.used_bytes >> 30),
                   static_cast<unsigned long long>(brick.capacity_bytes >> 30));
  }
  return out;
}

int DfsCluster::ImbalanceMultiplicity() const {
  // Branches unlocked scale super-linearly with how far the system is from
  // balance when the code runs: near-balanced operation stays on the fast
  // path, while deep imbalance walks multi-round planning, throttling and
  // emergency-handling code that is never touched otherwise.
  double spread = std::min(StorageImbalance(), 0.6);
  return 1 + static_cast<int>(40.0 * spread * spread);
}

void DfsCluster::RecordOpCoverage(const Operation& op, const OpResult& result) {
  if (cov_ == nullptr) {
    return;
  }
  cov_->HitStatic(CovModule::kRequest,
                  static_cast<uint32_t>(op.kind) * 10 +
                      static_cast<uint32_t>(result.status.code()));
  // State-feature tuple: what the system looked like when this operator ran.
  // Distinct tuples correspond to distinct exercised branches in a real code
  // base (see DESIGN.md). The class mask and file bucket are maintained
  // incrementally (Execute's window push/pop, bit_width) — same values as the
  // loops they replaced, without the per-op rescans.
  uint8_t class_mask = recent_class_mask_;
  int imbalance_decile = static_cast<int>(std::min(StorageImbalance(), 2.0) * 12.0);
  uint64_t file_bucket =
      std::bit_width(static_cast<uint64_t>(tree_.file_count()));
  uint64_t h = HashCombine(static_cast<uint64_t>(op.kind),
                           static_cast<uint64_t>(result.status.code()));
  h = HashCombine(h, class_mask);
  h = HashCombine(h, static_cast<uint64_t>(imbalance_decile));
  h = HashCombine(h, ServingStorageNodeIds().size());
  h = HashCombine(h, meta_nodes_.size());
  h = HashCombine(h, file_bucket);
  h = HashCombine(h, rebalance_active_ ? 1u : 0u);
  h = HashCombine(h, static_cast<uint64_t>(completed_rebalance_rounds_ % 8));
  cov_->HitState(CovModule::kRequest, h);
}

// ---------------------------------------------------------------------------
// Checkpointing (DESIGN.md §11)

namespace {

void SaveLoadCounters(SnapshotWriter& writer, const NodeLoadCounters& load) {
  writer.U64(load.requests);
  writer.U64(load.read_ios);
  writer.U64(load.write_ios);
  writer.F64(load.cpu_seconds);
}

void RestoreLoadCounters(SnapshotReader& reader, NodeLoadCounters* load) {
  load->requests = reader.U64();
  load->read_ios = reader.U64();
  load->write_ios = reader.U64();
  load->cpu_seconds = reader.F64();
}

void SaveChunkMove(SnapshotWriter& writer, const ChunkMove& move) {
  writer.U64(move.file);
  writer.U32(move.chunk_index);
  writer.U32(move.from);
  writer.U32(move.to);
  writer.U64(move.bytes);
  writer.U8(static_cast<uint8_t>(move.reason));
  writer.Bool(move.is_linkfile);
  writer.Bool(move.hash_driven);
}

void RestoreChunkMove(SnapshotReader& reader, ChunkMove* move) {
  move->file = reader.U64();
  move->chunk_index = reader.U32();
  move->from = reader.U32();
  move->to = reader.U32();
  move->bytes = reader.U64();
  uint8_t reason = reader.U8();
  if (reader.ok() && reason > static_cast<uint8_t>(MoveReason::kEvacuation)) {
    reader.Fail(Sprintf("chunk move reason %u out of range", reason));
    return;
  }
  move->reason = static_cast<MoveReason>(reason);
  move->is_linkfile = reader.Bool();
  move->hash_driven = reader.Bool();
}

}  // namespace

void DfsCluster::SaveState(SnapshotWriter& writer) const {
  writer.I64(clock_.now());
  rng_.SaveState(writer);
  tree_.SaveState(writer);

  writer.U64(meta_nodes_.size());
  for (const auto& [id, node] : meta_nodes_) {
    writer.U32(id);
    writer.Bool(node.online);
    writer.Bool(node.crashed);
    writer.U64(node.synced_epoch);
    SaveLoadCounters(writer, node.load);
  }
  writer.U64(storage_nodes_.size());
  for (const auto& [id, node] : storage_nodes_) {
    writer.U32(id);
    writer.Bool(node.online);
    writer.Bool(node.crashed);
    writer.U64(node.bricks.size());
    for (BrickId brick : node.bricks) writer.U32(brick);
    SaveLoadCounters(writer, node.load);
  }
  writer.U64(bricks_.size());
  for (const auto& [id, brick] : bricks_) {
    writer.U32(id);
    writer.U32(brick.node);
    writer.U64(brick.capacity_bytes);
    writer.U64(brick.used_bytes);
    writer.Bool(brick.online);
    writer.U32(brick.linkfiles);
  }
  writer.U64(layouts_.size());
  for (const auto& [file, layout] : layouts_) {
    writer.U64(file);
    writer.U64(layout.size);
    writer.U64(layout.chunks.size());
    for (const ChunkPlacement& chunk : layout.chunks) {
      writer.U64(chunk.bytes);
      writer.U64(chunk.replicas.size());
      for (BrickId replica : chunk.replicas) writer.U32(replica);
    }
  }
  writer.U64(recent_classes_.size());
  for (uint8_t cls : recent_classes_) writer.U8(cls);
  writer.U32(next_node_id_);
  writer.U32(next_brick_id_);

  writer.U64(move_queue_.size());
  for (const ChunkMove& move : move_queue_) SaveChunkMove(writer, move);
  writer.U64(current_move_done_bytes_);
  writer.Bool(rebalance_active_);
  // v4: balancer crash/resume state — a checkpoint taken between an env
  // crash and its scheduled restart must resume with the round suspended.
  writer.Bool(balancer_crashed_);
  writer.Bool(balancer_resume_pending_);
  writer.U64(current_round_moves_);
  writer.I64(completed_rebalance_rounds_);
  writer.U64(rebalance_triggers_);
  writer.I64(last_balancer_check_);

  writer.U64(total_ops_executed_);
  writer.U64(lost_bytes_);
  writer.U64(namespace_epoch_);
  writer.U64(serving_meta_nodes_.size());
  for (NodeId id : serving_meta_nodes_) writer.U32(id);

  // v3: streaming rate-window bases (DESIGN.md §13). Only nodes active in
  // the current window carry state — a node with a stale epoch behaves
  // exactly like a default-constructed window (rebased at its next charge),
  // so saving it would be redundant. The quantized deltas and the group
  // aggregates are derived (recomputed from base + counters on restore).
  uint64_t active_windows = 0;
  for (const NodeRateWindow& window : rate_windows_) {
    if (window.epoch == window_epoch_) {
      ++active_windows;
    }
  }
  writer.U64(active_windows);
  for (NodeId id = 0; id < rate_windows_.size(); ++id) {
    const NodeRateWindow& window = rate_windows_[id];
    if (window.epoch != window_epoch_) {
      continue;
    }
    writer.U32(id);
    writer.F64(window.base_cpu);
    writer.U64(window.base_net);
  }

  // v5: load-group assignment table (DESIGN.md §15). Real state, not derived:
  // GeoFS assigns nodes to the scheduling group with the fewest members at
  // admission time, so the mapping depends on add/remove history and cannot
  // be recomputed from the restored topology.
  uint64_t assigned = 0;
  for (NodeId id = 0; id < node_load_group_.size(); ++id) {
    if (node_load_group_[id] != kInvalidLoadGroup) {
      ++assigned;
    }
  }
  writer.U64(assigned);
  for (NodeId id = 0; id < node_load_group_.size(); ++id) {
    if (node_load_group_[id] == kInvalidLoadGroup) {
      continue;
    }
    writer.U32(id);
    writer.U32(node_load_group_[id]);
  }

  SaveFlavorState(writer);
}

Status DfsCluster::RestoreState(SnapshotReader& reader) {
  // The clock only moves forward; a fresh cluster starts at 0, so a plain
  // Reset + Advance lands exactly on the saved instant.
  SimTime now = reader.I64();
  if (reader.ok() && now < 0) {
    reader.Fail("negative clock value");
    return reader.status();
  }
  Status status = rng_.RestoreState(reader);
  if (!status.ok()) return status;
  status = tree_.RestoreState(reader);
  if (!status.ok()) return status;

  meta_nodes_.clear();
  uint64_t meta_count = reader.Count(4 + 2 + 8 + 28);
  for (uint64_t i = 0; i < meta_count && reader.ok(); ++i) {
    MetaNode node;
    node.id = reader.U32();
    node.online = reader.Bool();
    node.crashed = reader.Bool();
    node.synced_epoch = reader.U64();
    RestoreLoadCounters(reader, &node.load);
    meta_nodes_[node.id] = node;
  }
  storage_nodes_.clear();
  storage_node_index_.clear();
  uint64_t storage_count = reader.Count(4 + 2 + 8 + 28);
  for (uint64_t i = 0; i < storage_count && reader.ok(); ++i) {
    StorageNode node;
    node.id = reader.U32();
    node.online = reader.Bool();
    node.crashed = reader.Bool();
    uint64_t brick_count = reader.Count(4);
    node.bricks.reserve(static_cast<size_t>(brick_count));
    for (uint64_t b = 0; b < brick_count && reader.ok(); ++b) {
      node.bricks.push_back(reader.U32());
    }
    RestoreLoadCounters(reader, &node.load);
    StorageNode& stored = storage_nodes_[node.id];
    stored = node;
    IndexStorageNodePtr(node.id, &stored);
  }
  bricks_.clear();
  brick_index_.clear();
  offline_bricks_ = 0;
  offline_brick_list_.clear();
  uint64_t brick_count = reader.Count(4 + 4 + 8 + 8 + 1 + 4);
  for (uint64_t i = 0; i < brick_count && reader.ok(); ++i) {
    Brick brick;
    brick.id = reader.U32();
    brick.node = reader.U32();
    brick.capacity_bytes = reader.U64();
    brick.used_bytes = reader.U64();
    brick.online = reader.Bool();
    brick.linkfiles = reader.U32();
    if (!brick.online) {
      ++offline_bricks_;
      offline_brick_list_.push_back(brick.id);
    }
    Brick& stored = bricks_[brick.id];
    stored = brick;
    UpdateBrickFraction(stored);
    IndexBrickPtr(brick.id, &stored);
  }
  layouts_.clear();
  brick_chunks_.clear();
  uint64_t layout_count = reader.Count(8 + 8 + 8);
  for (uint64_t i = 0; i < layout_count && reader.ok(); ++i) {
    FileId file = reader.U64();
    FileLayout layout;
    layout.size = reader.U64();
    uint64_t chunk_count = reader.Count(8 + 8);
    layout.chunks.resize(static_cast<size_t>(chunk_count));
    for (ChunkPlacement& chunk : layout.chunks) {
      chunk.bytes = reader.U64();
      uint64_t replica_count = reader.Count(4);
      chunk.replicas.reserve(static_cast<size_t>(replica_count));
      for (uint64_t r = 0; r < replica_count && reader.ok(); ++r) {
        BrickId replica = reader.U32();
        if (reader.ok() && bricks_.count(replica) == 0) {
          reader.Fail(Sprintf("chunk replica references unknown brick %u", replica));
        }
        chunk.replicas.push_back(replica);
      }
      if (!reader.ok()) break;
    }
    if (!reader.ok()) break;
    // Rebuild the replica index as we go — it is derived, never serialized.
    for (uint32_t c = 0; c < layout.chunks.size(); ++c) {
      for (BrickId replica : layout.chunks[c].replicas) {
        AddReplicaIndex(replica, file, c);
      }
    }
    layouts_[file] = std::move(layout);
  }
  recent_classes_.clear();
  class_counts_[0] = class_counts_[1] = class_counts_[2] = class_counts_[3] = 0;
  recent_class_mask_ = 0;
  uint64_t class_count = reader.Count(1);
  for (uint64_t i = 0; i < class_count && reader.ok(); ++i) {
    uint8_t cls = reader.U8();
    if (reader.ok() && cls > 3) {
      reader.Fail(Sprintf("operation class %u out of range", cls));
      break;
    }
    recent_classes_.push_back(cls);
    ++class_counts_[cls];
    recent_class_mask_ |= static_cast<uint8_t>(1u << cls);
  }
  next_node_id_ = reader.U32();
  next_brick_id_ = reader.U32();

  move_queue_.clear();
  uint64_t move_count = reader.Count(8 + 4 + 4 + 4 + 8 + 1 + 2);
  for (uint64_t i = 0; i < move_count && reader.ok(); ++i) {
    ChunkMove move;
    RestoreChunkMove(reader, &move);
    move_queue_.push_back(move);
  }
  current_move_done_bytes_ = reader.U64();
  rebalance_active_ = reader.Bool();
  balancer_crashed_ = reader.Bool();
  balancer_resume_pending_ = reader.Bool();
  if (reader.ok() && balancer_crashed_ && rebalance_active_) {
    reader.Fail("balancer recorded as both crashed and actively rebalancing");
    return reader.status();
  }
  current_round_moves_ = reader.U64();
  completed_rebalance_rounds_ = static_cast<int>(reader.I64());
  rebalance_triggers_ = reader.U64();
  last_balancer_check_ = reader.I64();

  total_ops_executed_ = reader.U64();
  lost_bytes_ = reader.U64();
  namespace_epoch_ = reader.U64();
  serving_meta_nodes_.clear();
  uint64_t serving_meta_count = reader.Count(4);
  for (uint64_t i = 0; i < serving_meta_count && reader.ok(); ++i) {
    NodeId id = reader.U32();
    if (reader.ok() && meta_nodes_.count(id) == 0) {
      reader.Fail(Sprintf("serving meta node %u is not in the node map", id));
      break;
    }
    serving_meta_nodes_.push_back(id);
  }
  if (!reader.ok()) return reader.status();

  // v3: streaming rate-window bases. Deltas are recomputed from the restored
  // cumulative counters, and the group aggregates are rebuilt lazily with
  // the rest of the load index — so the streaming state resumes bit-exactly
  // (fixed-point sums are order-independent).
  rate_windows_.clear();
  window_epoch_ = 1;
  uint64_t window_count = reader.Count(4 + 8 + 8);
  for (uint64_t i = 0; i < window_count && reader.ok(); ++i) {
    NodeId id = reader.U32();
    double base_cpu = reader.F64();
    uint64_t base_net = reader.U64();
    if (!reader.ok()) break;
    const NodeLoadCounters* load = nullptr;
    if (const StorageNode* sn = FindStorageNode(id)) {
      load = &sn->load;
    } else if (auto node_it = meta_nodes_.find(id); node_it != meta_nodes_.end()) {
      load = &node_it->second.load;
    }
    if (load == nullptr) {
      reader.Fail(Sprintf("rate window references unknown node %u", id));
      break;
    }
    uint64_t net_total = load->requests + load->read_ios + load->write_ios;
    if (base_net > net_total) {
      reader.Fail(Sprintf("rate window base exceeds counters for node %u", id));
      break;
    }
    if (rate_windows_.size() <= id) {
      rate_windows_.resize(id + 1);
    }
    NodeRateWindow& window = rate_windows_[id];
    window.epoch = window_epoch_;
    window.base_cpu = base_cpu;
    window.last_cpu = load->cpu_seconds;
    window.base_net = base_net;
    window.cpu_ticks =
        QuantizeLoadDelta(load->cpu_seconds - base_cpu, kCpuLoadQuantum);
    window.net_delta = net_total - base_net;
  }
  if (!reader.ok()) return reader.status();

  // v5: load-group assignment table. Validated strictly — every storage node
  // must carry exactly one assignment, and group indices are bounded (a
  // corrupt group id would silently mis-route nodes and skew the rollup).
  node_load_group_.clear();
  load_group_count_ = 0;
  uint64_t group_entries = reader.Count(4 + 4);
  for (uint64_t i = 0; i < group_entries && reader.ok(); ++i) {
    NodeId id = reader.U32();
    uint32_t group = reader.U32();
    if (!reader.ok()) break;
    if (FindStorageNode(id) == nullptr) {
      reader.Fail(Sprintf("load group assigns unknown storage node %u", id));
      break;
    }
    if (group >= (1u << 20)) {
      reader.Fail(Sprintf("load group %u for node %u out of range", group, id));
      break;
    }
    if (node_load_group_.size() <= id) {
      node_load_group_.resize(id + 1, kInvalidLoadGroup);
    }
    if (node_load_group_[id] != kInvalidLoadGroup) {
      reader.Fail(Sprintf("duplicate load group assignment for node %u", id));
      break;
    }
    node_load_group_[id] = group;
    load_group_count_ = std::max(load_group_count_, group + 1);
  }
  if (reader.ok()) {
    for (const auto& [id, node] : storage_nodes_) {
      (void)node;
      if (LoadGroupOf(id) == kInvalidLoadGroup) {
        reader.Fail(Sprintf("storage node %u missing load group assignment", id));
        break;
      }
    }
  }
  if (!reader.ok()) return reader.status();
  crashed_nodes_ = 0;
  for (const auto& [id, node] : storage_nodes_) {
    (void)id;
    if (node.crashed) ++crashed_nodes_;
  }
  for (const auto& [id, node] : meta_nodes_) {
    (void)id;
    if (node.crashed) ++crashed_nodes_;
  }

  clock_.Reset();
  clock_.Advance(now);
  InvalidateLoadIndex();
  // Recompute derived flavor structures against the restored topology, then
  // let the flavor restore its persistent extras. This is deliberately
  // OnTopologyChangedInternal() and not NotifyTopologyChanged(): the public
  // notifier also fires coverage and fault hooks, which would corrupt the
  // separately restored coverage bitmap and fault runtime.
  OnTopologyChangedInternal();
  status = RestoreFlavorState(reader);
  if (!status.ok()) return status;
  return reader.status();
}

}  // namespace themis
