// File data layout and migration plan types shared by the cluster engine,
// the flavor balancers and the fault injector.

#ifndef SRC_DFS_MIGRATION_H_
#define SRC_DFS_MIGRATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dfs/types.h"

namespace themis {

// One stored chunk: `bytes` of data replicated across `replicas` bricks
// (front = primary).
struct ChunkPlacement {
  uint64_t bytes = 0;
  std::vector<BrickId> replicas;

  bool HasReplicaOn(BrickId brick) const;
};

struct FileLayout {
  uint64_t size = 0;
  std::vector<ChunkPlacement> chunks;
};

// Why a chunk move was scheduled — faults discriminate on this.
enum class MoveReason : uint8_t {
  kRebalance = 0,   // balancer plan
  kRecovery = 1,    // replica repair after node loss
  kEvacuation = 2,  // brick being removed / shrunk
};

struct ChunkMove {
  FileId file = 0;
  uint32_t chunk_index = 0;
  BrickId from = kInvalidBrick;
  BrickId to = kInvalidBrick;
  uint64_t bytes = 0;
  MoveReason reason = MoveReason::kRebalance;
  // GlusterFS: this move concerns a DHT linkfile, not the data itself.
  bool is_linkfile = false;
  // Hash-driven relocation (DHT fix-layout / ring takeover) rather than
  // load-driven leveling; mechanical placement code, not balancer logic.
  bool hash_driven = false;

  std::string ToString() const;
};

using MigrationPlan = std::vector<ChunkMove>;

// Total payload bytes in a plan.
uint64_t PlanBytes(const MigrationPlan& plan);

}  // namespace themis

#endif  // SRC_DFS_MIGRATION_H_
