// The DFS cluster simulator.
//
// `DfsInterface` is the black-box surface Themis (and every baseline) tests
// against: execute an operation, sample per-node load, trigger / query
// rebalance — exactly the two integration points (`operation.send()` and
// `LoadMonitor()`) plus the rebalance APIs that the paper's Interaction
// Adaptor uses (§5). `DfsCluster` is the shared simulator engine; the four
// flavors in src/dfs/flavors/ plug in their placement policy, balancer
// discipline and native balance threshold.

#ifndef SRC_DFS_CLUSTER_H_
#define SRC_DFS_CLUSTER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/coverage/coverage.h"
#include "src/coverage/model_coverage.h"
#include "src/dfs/brick.h"
#include "src/dfs/load_sample.h"
#include "src/dfs/migration.h"
#include "src/dfs/namespace_tree.h"
#include "src/dfs/node.h"
#include "src/dfs/operation.h"
#include "src/dfs/types.h"
#include "src/telemetry/event_log.h"

namespace themis {

class DfsCluster;

// Fault-injection hooks. The cluster calls these at well-defined points; the
// default implementation is a no-op (healthy system). src/faults implements
// them to plant the paper's 10 new bugs and the 53-bug historical corpus.
class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  // After an operation has been executed (successfully or not).
  virtual void OnOperationExecuted(DfsCluster& dfs, const Operation& op,
                                   const OpResult& result) {
    (void)dfs;
    (void)op;
    (void)result;
  }

  // A rebalance plan was built and is about to be enqueued. Hooks may mutate
  // it (drop moves, redirect targets) — load-calculation bugs live here.
  virtual void OnRebalancePlanned(DfsCluster& dfs, MigrationPlan& plan) {
    (void)dfs;
    (void)plan;
  }

  // One chunk move is about to execute. Migration bugs live here.
  enum class MigrateVerdict {
    kProceed,   // execute normally
    kSkip,      // silently skip the move (data stays put -> hotspot)
    kLoseData,  // remove from source without writing destination
  };
  virtual MigrateVerdict OnMigrateChunk(DfsCluster& dfs, const ChunkMove& move) {
    (void)dfs;
    (void)move;
    return MigrateVerdict::kProceed;
  }

  // A rebalance round finished draining.
  virtual void OnRebalanceDone(DfsCluster& dfs) { (void)dfs; }

  // Should the balancer trigger be suppressed right now? (hang faults)
  virtual bool SuppressRebalance(const DfsCluster& dfs) {
    (void)dfs;
    return false;
  }

  // Membership / volume topology changed.
  virtual void OnTopologyChanged(DfsCluster& dfs) { (void)dfs; }

  // Should this node's metadata anti-entropy be stalled? (metadata-desync
  // faults, the §7 extension)
  virtual bool SuppressMetadataSync(const DfsCluster& dfs, NodeId node) {
    (void)dfs;
    (void)node;
    return false;
  }

  // The cluster was reset to its initial state (after a confirmed failure).
  virtual void OnClusterReset(DfsCluster& dfs) { (void)dfs; }
};

// Environment-fault runtime (DESIGN.md §14). FaultHooks plant *bugs* —
// latent defects in balancer logic; this models the *environment* turning
// hostile: lossy/reordering networks, slow disks, node crashes followed by
// scheduled restarts. The cluster consults it at its message, disk and clock
// touch points. A null runtime (the default, and every fault-free campaign)
// leaves every path byte-identical, so wiring the hooks in cannot perturb
// fault-free digests.
class EnvFaultRuntime {
 public:
  virtual ~EnvFaultRuntime() = default;

  // Executes one env_fault grammar operation (Execute dispatches kEnv* ops
  // here instead of routing them to a metadata node — they are environment
  // controls, not client requests).
  virtual OpResult ExecuteEnvOp(DfsCluster& dfs, const Operation& op) = 0;

  // Verdict for one queued migration message (a chunk-move RPC) as it
  // reaches the head of the transfer queue.
  enum class MessageVerdict : uint8_t {
    kDeliver = 0,  // normal delivery
    kDrop,         // message lost: the move silently disappears
    kReorder,      // delivery deferred: the move rotates to the queue tail
    kDuplicate,    // delivered now, and a stale copy arrives again later
    kCorrupt,      // payload corrupt: bandwidth burned, nothing written
  };
  virtual MessageVerdict OnMigrationMessage(DfsCluster& dfs, const ChunkMove& move) {
    (void)dfs;
    (void)move;
    return MessageVerdict::kDeliver;
  }

  // Should this round's anti-entropy heartbeat toward `node` be lost?
  virtual bool DropHeartbeat(DfsCluster& dfs, NodeId node) {
    (void)dfs;
    (void)node;
    return false;
  }

  // Migration-throughput divisor for `node`'s disks (1.0 = healthy; a slow
  // disk makes every byte moved through the node cost `factor` budget bytes).
  virtual double DiskSlowdown(const DfsCluster& dfs, NodeId node) const {
    (void)dfs;
    (void)node;
    return 1.0;
  }

  // Virtual time advanced to `now`: fire scheduled events (crash restarts,
  // slow-disk window expiries).
  virtual void OnClockAdvanced(DfsCluster& dfs, SimTime now) {
    (void)dfs;
    (void)now;
  }

  // True while a scheduled crash-restart has not fired yet — the executor's
  // crash-recovery double-check waits this out before judging LBS.
  virtual bool RecoveryPending(const DfsCluster& dfs) const {
    (void)dfs;
    return false;
  }

  // The cluster was reset to its initial state: drop all injected fault
  // state (message rates, slow disks, pending restarts).
  virtual void OnClusterReset(DfsCluster& dfs) { (void)dfs; }
};

// What the testing tools see. Kept intentionally narrow: real deployments
// expose exactly this via FUSE + admin CLIs.
class DfsInterface {
 public:
  virtual ~DfsInterface() = default;

  virtual OpResult Execute(const Operation& op) = 0;

  // ---- load observation (DESIGN.md §13) ----
  // The primary observation surface is push/streaming: the cluster maintains
  // windowed per-dimension aggregates incrementally at every load mutation,
  // and SnapshotLoadStats reads them in O(1) — no per-node scan, no
  // allocation. AdvanceLoadWindow closes the current rate window (the states
  // monitor calls it after folding a snapshot into the variance model, the
  // push-era equivalent of remembering the previous cumulative sample).
  // Adapters that do not stream keep the defaults; consumers then fall back
  // to the SampleLoadInto scan path.
  virtual bool SnapshotLoadStats(LoadStatsSnapshot& out) const {
    (void)out;
    return false;
  }
  virtual void AdvanceLoadWindow() {}

  // Debug/oracle pull path: a full per-node scan of cumulative counters.
  // The streaming aggregates must match what the variance model derives
  // from this scan bit-for-bit (tests/streaming_stats_test.cc); failure
  // reports and ground-truth checks also read it for per-node detail.
  virtual void SampleLoadInto(std::vector<LoadSample>& out) const = 0;
  // Copying convenience wrapper over SampleLoadInto for cold callers
  // (reports, tests); deliberately non-virtual.
  std::vector<LoadSample> SampleLoad() const {
    std::vector<LoadSample> out;
    SampleLoadInto(out);
    return out;
  }

  // Admin APIs (paper §4.3: most DFSes provide rebalance / rebalance-state).
  virtual Status TriggerRebalance() = 0;
  virtual bool RebalanceDone() const = 0;

  // Admin views used to instantiate operands (gluster volume info, hdfs
  // dfsadmin -report, ...).
  virtual std::vector<NodeId> ListMetaNodes() const = 0;
  virtual std::vector<NodeId> ListStorageNodes() const = 0;
  virtual std::vector<BrickId> ListBricks() const = 0;
  virtual uint64_t FreeSpaceBytes() const = 0;
  // Sum of serving brick capacities. 0 means "unknown" (adapters that do not
  // track capacity); consumers treat unknown as "do not reason about space".
  virtual uint64_t TotalCapacityBytes() const { return 0; }

  // Monotonic counter that advances whenever the admin list views above may
  // have changed membership. Consumers (InputModel::SyncFromDfs) skip the
  // list copies while the epoch is unchanged. kMembershipEpochUnknown means
  // the implementation does not track membership; re-pull every time.
  static constexpr uint64_t kMembershipEpochUnknown = ~0ull;
  virtual uint64_t MembershipEpoch() const { return kMembershipEpochUnknown; }

  virtual SimTime Now() const = 0;
  // Lets a tester wait (background migration keeps progressing).
  virtual void AdvanceTime(SimDuration delta) = 0;

  // Environment-fault recovery: true while a scheduled crash-restart (or the
  // balancer resume it gates) has not completed. Fault-free adapters keep
  // the default — the crash-recovery double-check then never waits.
  virtual bool EnvRecoveryPending() const { return false; }

  virtual void ResetToInitial() = 0;
  virtual Flavor flavor() const = 0;
  virtual std::string_view name() const = 0;

  // Diagnostic snapshot of the storage topology (for failure reports).
  virtual std::string DescribeState() const { return {}; }
};

struct ClusterConfig {
  int initial_storage_nodes = 8;
  int initial_meta_nodes = 2;
  uint64_t brick_capacity = 480 * kGiB;
  int replication = 2;
  uint64_t chunk_size = 2 * kGiB;      // stripe unit (chunks stay migratable)
  // EFBIG-style admission cap on a single file (0 = unlimited). Production
  // flavors set this: without it, a boundary "write the whole free space"
  // scenario on a petabyte fleet turns one create into hundreds of thousands
  // of chunk placements — per-op cost would scale with fleet capacity.
  uint64_t max_file_size = 0;
  double native_threshold = 0.10;      // balance tolerance (max/mean - 1)
  bool continuous_balancing = false;   // CephFS balances in real time
  SimDuration balancer_period = Minutes(5);  // periodic flavors
  uint64_t migration_bandwidth_per_s = 1536 * kMiB;
  uint64_t client_bandwidth_per_s = 2 * kGiB;
  SimDuration base_op_latency = Millis(500);
  int min_storage_nodes = 4;
  int max_storage_nodes = 16;
  int min_meta_nodes = 1;
  int max_meta_nodes = 5;
  uint64_t rng_seed = 1;
  // ---- hierarchical load aggregates (DESIGN.md §15) ----
  // Storage nodes are partitioned into load groups; the cluster maintains
  // per-group sub-aggregates and rolls them up lazily, so per-op imbalance
  // reads touch only the groups an op charged instead of the whole fleet.
  // Flavors whose placement already has a grouping (GeoFS scheduling groups)
  // align the partition with it via PickLoadGroup; everyone else gets
  // contiguous id-range groups of this span. The partition never changes any
  // reported value (integer sums are order-independent), only its cost.
  int load_group_span = 64;
  // ---- GeoFS geotag topology (0 everywhere else) ----
  int geo_sites = 0;           // sites in the geotag tree
  int geo_racks_per_site = 0;  // racks under each site
  int geo_group_size = 0;      // scheduling-group capacity, in nodes
};

class DfsCluster : public DfsInterface {
 public:
  DfsCluster(ClusterConfig config, Flavor flavor, std::string cluster_name);
  ~DfsCluster() override;

  DfsCluster(const DfsCluster&) = delete;
  DfsCluster& operator=(const DfsCluster&) = delete;

  // ---- DfsInterface ----
  OpResult Execute(const Operation& op) override;
  bool SnapshotLoadStats(LoadStatsSnapshot& out) const override;
  void AdvanceLoadWindow() override;
  void SampleLoadInto(std::vector<LoadSample>& out) const override;
  Status TriggerRebalance() override;
  // A crashed balancer (env fault) is "not done": the round it was running
  // is suspended until its node restarts and the resume re-triggers it.
  bool RebalanceDone() const override {
    return !rebalance_active_ && move_queue_.empty() && !balancer_crashed_ &&
           !balancer_resume_pending_;
  }
  std::vector<NodeId> ListMetaNodes() const override;
  std::vector<NodeId> ListStorageNodes() const override;
  std::vector<BrickId> ListBricks() const override;
  uint64_t FreeSpaceBytes() const override;
  uint64_t MembershipEpoch() const override { return membership_epoch_; }
  SimTime Now() const override { return clock_.now(); }
  void AdvanceTime(SimDuration delta) override;
  void ResetToInitial() override;
  Flavor flavor() const override { return flavor_; }
  std::string_view name() const override { return name_; }
  std::string DescribeState() const override;

  bool EnvRecoveryPending() const override;

  // ---- wiring ----
  void set_fault_hooks(FaultHooks* hooks) { hooks_ = hooks; }
  void set_env_faults(EnvFaultRuntime* env) { env_ = env; }
  EnvFaultRuntime* env_faults() const { return env_; }
  void set_coverage(CoverageRecorder* cov) { cov_ = cov; }
  CoverageRecorder* coverage() const { return cov_; }
  // Balancer state-machine transition recorder (DESIGN.md §16); null
  // disables emission. Recording draws no RNG: attaching it never changes
  // cluster behavior.
  void set_model_coverage(ModelCoverage* model_cov) { model_cov_ = model_cov; }
  ModelCoverage* model_coverage() const { return model_cov_; }
  // Campaign event sink for rebalance-round telemetry; null disables it.
  void set_telemetry(EventLog* telemetry) { telemetry_ = telemetry; }

  // ---- introspection (flavors, faults, tests, ground truth) ----
  const ClusterConfig& config() const { return config_; }
  const NamespaceTree& tree() const { return tree_; }
  const std::map<BrickId, Brick>& bricks() const { return bricks_; }
  const std::map<NodeId, StorageNode>& storage_nodes() const { return storage_nodes_; }
  const std::map<NodeId, MetaNode>& meta_nodes() const { return meta_nodes_; }
  const std::map<FileId, FileLayout>& file_layouts() const { return layouts_; }

  // O(1): ids are small and monotonic, so a flat pointer vector shadows the
  // owning maps (map nodes have stable addresses; erased slots hold null).
  // These sit on the placement/migration hot path at millions of calls per
  // campaign — keep them inline.
  Brick* FindBrick(BrickId id) {
    return id < brick_index_.size() ? brick_index_[id] : nullptr;
  }
  const Brick* FindBrick(BrickId id) const {
    return id < brick_index_.size() ? brick_index_[id] : nullptr;
  }
  StorageNode* FindStorageNode(NodeId id) {
    return id < storage_node_index_.size() ? storage_node_index_[id] : nullptr;
  }
  const StorageNode* FindStorageNode(NodeId id) const {
    return id < storage_node_index_.size() ? storage_node_index_[id] : nullptr;
  }

  // Serving (online, not crashed, not draining) bricks. The returned
  // reference points at the maintained load index and stays valid until the
  // next topology mutation (brick/node add/remove/online/offline/capacity
  // change); copy it before mutating topology mid-iteration.
  const std::vector<BrickId>& ServingBricks() const;
  const std::vector<NodeId>& ServingStorageNodeIds() const;

  // The hottest serving brick (max UsedFraction, smallest brick id on ties)
  // — the fault injector's hotspot probe. Answered from per-group maxima
  // (O(dirty groups + group count)), exact against the flat ServingBricks()
  // scan. kInvalidBrick when nothing serves.
  BrickId HottestServingBrick() const;

  uint64_t TotalCapacityBytes() const override;
  uint64_t TotalUsedBytes() const;
  // Used bytes summed over serving bricks only (the balancers' view of fleet
  // utilization); TotalUsedBytes also counts draining/offline bricks.
  uint64_t TotalServingUsedBytes() const;
  // Used bytes aggregated per serving storage node.
  std::vector<double> PerNodeUsedBytes() const;
  // Disk utilization (used/capacity) per serving storage node — the metric
  // real balancers level and `df` reports.
  std::vector<double> PerNodeUsedFraction() const;
  // Utilization spread (max - mean, in fraction points) over serving
  // storage nodes — the quantity balancers threshold on.
  double StorageImbalance() const;

  // Generic capacity-proportional leveling plan: moves chunks from bricks
  // above the fleet utilization (by more than `tolerance`) to bricks below
  // it. Flavors build their plans on top of / instead of this.
  // `extra_inflow` carries bytes the flavor's own plan section already
  // directed at each brick, so the combined plan respects one budget.
  // Chunks for which ChunkPinnedToBrick() holds are never moved — they sit
  // where the flavor's placement function says they belong, and moving them
  // would only make the next rebalance move them back.
  MigrationPlan PlanLevelingByUsage(
      double tolerance, const std::map<BrickId, uint64_t>* extra_inflow = nullptr) const;

  int completed_rebalance_rounds() const { return completed_rebalance_rounds_; }
  uint64_t rebalance_triggers() const { return rebalance_triggers_; }
  // Authoritative namespace mutation count; metadata replicas (MetaNode::
  // synced_epoch) trail it by at most the anti-entropy lag when healthy.
  uint64_t namespace_epoch() const { return namespace_epoch_; }
  uint64_t total_ops_executed() const { return total_ops_executed_; }
  uint64_t lost_bytes() const { return lost_bytes_; }

  // Replica index: chunks with a replica on `brick`.
  std::vector<std::pair<FileId, uint32_t>> ChunksOnBrick(BrickId brick) const;
  // Allocation-free view of the same index; the reference stays valid until
  // a replica is added to or removed from `brick`.
  const std::vector<std::pair<FileId, uint32_t>>& ChunksOnBrickRef(BrickId brick) const;

  // ---- fault-effect mutators (used only by src/faults) ----
  void InjectCpuLoad(NodeId node, double cpu_seconds);
  void InjectNetLoad(NodeId node, uint64_t reads, uint64_t writes, uint64_t requests);
  void CrashNode(NodeId node);
  // Moves `bytes` of stored data from `from` to `to` without a migration
  // round — models mis-placed / mis-migrated data accumulating on a hotspot.
  uint64_t SkewBytes(BrickId from, BrickId to, uint64_t bytes);
  // Destroys `bytes` of stored data on `brick` (data-loss effects).
  uint64_t DestroyBytes(BrickId brick, uint64_t bytes);
  // Deletes one replica without copying it anywhere (destructive unlink).
  void DestroyChunkReplica(FileId file, uint32_t chunk_index, BrickId brick);

  // ---- environment-fault mutators (used only by EnvFaultRuntime) ----
  // CrashNode plus balancer-halt semantics: an env crash of a metadata node
  // kills the balancer process mid-round — the round's queued rebalance
  // moves die with it, and the round resumes (from the flavor's persisted
  // state) only after RestartNode revives the node.
  void CrashNodeForEnvFault(NodeId node);
  // Reverses a crash: the node rejoins the serving set; a crashed balancer
  // restarts, reloads its persisted flavor state and re-triggers the
  // interrupted round.
  void RestartNode(NodeId node);
  bool balancer_crashed() const { return balancer_crashed_; }
  bool balancer_resume_pending() const { return balancer_resume_pending_; }

  // Virtual-time clock (shared with the campaign).
  VirtualClock& clock() { return clock_; }
  Rng& rng() { return rng_; }

  // ---- checkpointing (DESIGN.md §11) ----
  // Serializes the full mutable simulator state: clock, RNG, namespace,
  // topology maps, layouts, migration queue, balancer/rebalance counters and
  // the flavor's own state (via SaveFlavorState). Derived indexes (replica
  // index, load aggregates, class-window counters) are rebuilt on restore,
  // never serialized. Restore must be called on a freshly constructed
  // cluster with the same ClusterConfig and flavor.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 protected:
  // Flavor extension of SaveState/RestoreState: persistent flavor state that
  // cannot be recomputed from topology (Ceph upmaps, Leo ring weights,
  // Gluster linkfile census). Purely derived flavor state (HDFS cluster map,
  // Gluster DHT layout, CRUSH weights) is recomputed in RestoreFlavorState
  // instead.
  virtual void SaveFlavorState(SnapshotWriter& writer) const { (void)writer; }
  virtual Status RestoreFlavorState(SnapshotReader& reader) {
    (void)reader;
    return Status::Ok();
  }
  // ---- flavor extension points ----

  // Records a balancer state-machine transition (no-op without a recorder).
  // Flavors emit their planning phases from BuildRebalancePlan; the generic
  // lifecycle (move drain, settle, idle, crash, restart) is emitted by the
  // shared rebalance/crash paths in cluster.cc.
  void EmitBalancerState(BalancerState to) {
    if (model_cov_ != nullptr) {
      model_cov_->Transition(to);
    }
  }

  // Chooses replica bricks for one chunk of `path`. Must return serving
  // bricks with space, or empty to signal out-of-space.
  virtual std::vector<BrickId> PlaceChunk(const std::string& path, uint32_t chunk_index,
                                          uint64_t bytes) = 0;

  // Builds a migration plan that would bring the cluster back inside the
  // native threshold. Called by TriggerRebalance / the periodic balancer.
  virtual MigrationPlan BuildRebalancePlan() = 0;

  // Topology (nodes or bricks) changed: recompute layouts / rings / weights.
  virtual void OnTopologyChangedInternal() {}

  // A storage node was administratively decommissioned (remove_node op, as
  // opposed to a crash — crashed nodes may restart and keep their identity).
  // Fires before the topology-changed notification, with the node already
  // offline. Flavors that key state by node id can release it here in O(1)
  // instead of re-scanning the fleet on every topology change.
  virtual void OnStorageNodeDecommissioned(NodeId id) { (void)id; }

  // The topology is about to be rebuilt from scratch (construction or
  // ResetToInitial): flavors drop state keyed by node ids here, before the
  // initial nodes are re-added (GeoFS clears its geotag tree).
  virtual void OnTopologyCleared() {}

  // Flavor hook after a file rename (GlusterFS spawns linkfiles here).
  virtual void OnFileRenamed(FileId file, const std::string& from, const std::string& to) {
    (void)file;
    (void)from;
    (void)to;
  }

  // Flavor hook after ANY successful rename, including directory moves —
  // those re-path every descendant file without an OnFileRenamed call, so
  // flavors caching anything keyed by path must invalidate here.
  virtual void OnNamespaceRenamed() {}

  // Flavor hook when a rebalance round drains.
  virtual void OnRebalanceRoundDone() {}

  // The balancer process crashed mid-round (env crash of a metadata node).
  // Flavors persist whatever the real balancer writes to disk before dying
  // (upmap tables, layout census, ring weights); the base cluster keeps the
  // flavor state maps intact, so the default has nothing extra to save.
  virtual void OnBalancerCrashed() {}
  // The balancer restarted after a crash; flavors reload / revalidate their
  // persisted state here, before the interrupted round is re-triggered.
  virtual void OnBalancerRestarted() {}

  // True when this replica is exactly where the flavor's deterministic
  // placement (DHT range, hash ring) says it belongs; the generic leveler
  // then leaves it alone.
  virtual bool ChunkPinnedToBrick(FileId file, uint32_t chunk_index, BrickId brick) const {
    (void)file;
    (void)chunk_index;
    (void)brick;
    return false;
  }

  // Load-group assignment for a storage node being added (DESIGN.md §15).
  // The default packs monotonically assigned node ids into contiguous spans;
  // GeoFS overrides it so the load groups coincide with its scheduling
  // groups. Called exactly once per node, from AddStorageNodeInternal; the
  // assignment is real state (persisted, snapshot v5), never recomputed.
  virtual uint32_t PickLoadGroup(NodeId id) {
    int span = config_.load_group_span > 0 ? config_.load_group_span : 64;
    return id / static_cast<uint32_t>(span);
  }

  // Brick capacity for a storage node being added. The default is the
  // homogeneous configured capacity; GeoFS overrides it to model a
  // heterogeneous-capacity fleet. Deterministic in the node id.
  virtual uint64_t BrickCapacityFor(NodeId id) const {
    (void)id;
    return config_.brick_capacity;
  }

  // ---- services available to flavors ----
  // Builds the initial topology; flavors call this at the end of their
  // constructor (virtual dispatch to OnTopologyChangedInternal is live by
  // then) and it backs ResetToInitial().
  void BuildInitialTopology();
  BrickId NewBrickOnNode(NodeId node, uint64_t capacity);
  NodeId AddStorageNodeInternal(uint64_t brick_capacity);
  void ChargeStorage(NodeId node, uint64_t reads, uint64_t writes, double cpu_seconds);
  void ChargeMeta(NodeId node, uint64_t requests, double cpu_seconds);
  // Balance check driven after each operation (periodic or continuous).
  void MaybeTriggerBalancer();
  // Runs OnTopologyChangedInternal + coverage + fault hooks.
  void NotifyTopologyChanged();

  // ---- incremental load accounting (DESIGN.md §10) ----
  // Every byte-level mutation of a brick goes through these two so the
  // running aggregates (per-node used/capacity, fleet totals, imbalance)
  // stay exact without per-op rescans. Release clamps at zero, matching the
  // `used -= min(used, bytes)` idiom the scattered call sites used.
  void AccreteBrickBytes(Brick* brick, uint64_t bytes);
  void ReleaseBrickBytes(Brick* brick, uint64_t bytes);
  // Drops the whole index; the next read rebuilds it from the ground-truth
  // maps. Only the topology reset uses this — steady-state structural
  // mutations go through the targeted On*() updates below, which are O(1)
  // (or O(bricks-of-one-node)), because dead node entries accumulate in the
  // node maps and a full rebuild is O(all nodes ever created).
  void InvalidateLoadIndex();

  // ---- per-group load views (DESIGN.md §15) ----
  // Load group of a storage node (kInvalidLoadGroup before assignment).
  static constexpr uint32_t kInvalidLoadGroup = 0xffffffffu;
  uint32_t LoadGroupOf(NodeId id) const {
    return id < node_load_group_.size() ? node_load_group_[id] : kInvalidLoadGroup;
  }
  uint32_t load_group_count() const { return load_group_count_; }
  // Fresh (used, capacity) bytes over one load group's serving nodes.
  // Refreshes only that group's sub-aggregate if it is dirty — O(group
  // size), independent of the fleet size. This is the per-group index
  // GeoFS's two-level placement picks scheduling groups with.
  std::pair<uint64_t, uint64_t> LoadGroupUsedCap(uint32_t group) const;
  // Serving storage nodes of one load group (sorted by id). The reference
  // stays valid until the next membership mutation.
  const std::vector<NodeId>& LoadGroupServingNodes(uint32_t group) const;

  ClusterConfig config_;

 private:
  // Operation handlers.
  OpResult DoCreate(const Operation& op);
  OpResult DoDelete(const Operation& op);
  OpResult DoAppend(const Operation& op);
  OpResult DoOverwrite(const Operation& op, bool truncate_first);
  OpResult DoOpen(const Operation& op);
  OpResult DoMkdir(const Operation& op);
  OpResult DoRmdir(const Operation& op);
  OpResult DoRename(const Operation& op);
  OpResult DoAddMetaNode(const Operation& op);
  OpResult DoRemoveMetaNode(const Operation& op);
  OpResult DoAddStorageNode(const Operation& op);
  OpResult DoRemoveStorageNode(const Operation& op);
  OpResult DoAddVolume(const Operation& op);
  OpResult DoRemoveVolume(const Operation& op);
  OpResult DoExpandVolume(const Operation& op);
  OpResult DoReduceVolume(const Operation& op);

  // Places all chunks for `size` bytes of `path`; rolls back on failure.
  Result<FileLayout> PlaceFile(const std::string& path, uint64_t size);
  // Frees brick bytes and replica-index entries held by `layout`.
  void ReleaseLayout(FileId file, const FileLayout& layout);
  void IndexLayout(FileId file, const FileLayout& layout);
  void ChargeLayoutIo(const FileLayout& layout, bool is_write);

  // Routes the request to a serving metadata node; returns kInvalidNode if
  // none are alive.
  NodeId RouteToMetaNode(const Operation& op);

  // Re-replicates chunks that lost replicas on `node` (offline/removed).
  void ScheduleRecovery(NodeId node);
  // Evacuates all data from a draining brick.
  void ScheduleEvacuation(BrickId brick);
  // Evacuates `bytes` worth of chunks off a shrunken brick.
  void ScheduleOverflowEvacuation(BrickId brick, uint64_t bytes);

  // Background migration: processes `dt` worth of queued chunk moves.
  void AdvanceBackground(SimDuration dt);
  void ExecuteMove(const ChunkMove& move);
  void FinishRebalanceIfDrained();

  void AddReplicaIndex(BrickId brick, FileId file, uint32_t chunk);
  void RemoveReplicaIndex(BrickId brick, FileId file, uint32_t chunk);

  // Candidate snapshot for recovery/evacuation target picking: the serving
  // bricks keyed by (utilization, serving order), built once per Schedule*
  // call. Each per-chunk pick consumes only an ascending prefix, so the
  // snapshot is a min-heap popped lazily — O(bricks) to build plus
  // O(log bricks) per candidate actually inspected, never a full sort.
  struct RecoveryCandidate {
    double used_fraction;
    uint32_t order;  // index in ServingBricks() — the first-wins tie-break
    BrickId id;      // brick resolved lazily, only for inspected candidates
  };
  // Heap comparator: true when `a` sorts after `b`. The (fraction, order)
  // key is a unique total order, so lazy heap pops replay exactly the fully
  // sorted sequence.
  static bool RecoveryCandidateAfter(const RecoveryCandidate& a,
                                     const RecoveryCandidate& b);
  void BeginRecoveryPass() const;
  // The rank-th least-used candidate of the current pass (pops lazily);
  // nullptr past the end.
  const RecoveryCandidate* RecoveryCandidateAt(size_t rank) const;
  // Picks a serving replacement brick for a chunk replica (placement-neutral
  // recovery used by evacuation / re-replication). Selects exactly the brick
  // the serving-order scan over UsedFraction() + same-node penalty would.
  BrickId PickRecoveryTarget(const ChunkPlacement& chunk, uint64_t bytes) const;

  // Returns op.path normalized, reusing op.path itself when it is already in
  // normalized form (the common case for generated operands) and a scratch
  // buffer otherwise — the flavor placement hashes consume these bytes, so
  // they must match NormalizePath(op.path) exactly.
  const std::string& NormalizedOpPath(const Operation& op);

  void RecordOpCoverage(const Operation& op, const OpResult& result);
  // 1..10: how many branches a state tuple unlocks at the current imbalance.
  int ImbalanceMultiplicity() const;

  // ---- load-index internals ----
  // Rebuilds every aggregate from the ground-truth brick/node maps. Called
  // lazily (EnsureLoadIndex) after a topology reset; all steady-state
  // mutations update the aggregates in place and never trigger a rebuild.
  void RebuildLoadIndex() const;
  void EnsureLoadIndex() const { if (load_index_dirty_) RebuildLoadIndex(); }
  // Applies the used-bytes delta of one brick (old value -> current value)
  // to the aggregates; no-op while the index is dirty (the rebuild wins).
  void ApplyUsedBytesDelta(const Brick& brick, uint64_t old_used);
  // Targeted structural updates. Each is a no-op (beyond the epoch bump)
  // while the index is dirty; the eventual rebuild reads ground truth.
  void OnStorageNodeAdded(NodeId id);
  void OnBrickAdded(const Brick& brick);
  // The node stopped serving (crashed or removed); its online bricks leave
  // the fleet aggregates but stay in the per-node ones (SampleLoad reports
  // crashed nodes' still-online bricks).
  void OnStorageNodeUnserving(NodeId id);
  // The metadata node stopped serving (crashed or removed); its current
  // window deltas leave the meta-group rate aggregates.
  void OnMetaNodeUnserving(NodeId id);
  // Called after a brick's online flag flipped to false.
  void OnBrickOffline(const Brick& brick);
  // Called after a brick's capacity changed while online.
  void OnBrickCapacityChanged(const Brick& brick, uint64_t old_capacity);
  // Anti-entropy: serving metadata replicas catch up to the namespace epoch
  // (unless a fault stalls them).
  void SyncMetadataReplicas();
  SimDuration TransferCost(uint64_t bytes) const;
  SimDuration ParallelTransferCost(const FileLayout& layout) const;

  Flavor flavor_;
  std::string name_;
  VirtualClock clock_;
  Rng rng_;

  // Flat id -> map-node side indexes behind the inline Find* accessors.
  void IndexBrickPtr(BrickId id, Brick* brick) {
    if (brick_index_.size() <= id) {
      brick_index_.resize(id + 1, nullptr);
    }
    brick_index_[id] = brick;
  }
  void IndexStorageNodePtr(NodeId id, StorageNode* node) {
    if (storage_node_index_.size() <= id) {
      storage_node_index_.resize(id + 1, nullptr);
    }
    storage_node_index_[id] = node;
  }

  NamespaceTree tree_;
  std::map<NodeId, StorageNode> storage_nodes_;
  std::map<NodeId, MetaNode> meta_nodes_;
  std::map<BrickId, Brick> bricks_;
  std::vector<Brick*> brick_index_;              // shadows bricks_
  std::vector<StorageNode*> storage_node_index_;  // shadows storage_nodes_
  std::map<FileId, FileLayout> layouts_;
  // Reverse index: brick -> chunks with a replica there.
  // Sorted by (file, chunk): flat vectors iterate in std::set order but keep
  // the hot SkewBytes/Schedule* scans contiguous in memory.
  std::map<BrickId, std::vector<std::pair<FileId, uint32_t>>> brick_chunks_;
  // Classes of the last 8 operations (coverage feature).
  std::deque<uint8_t> recent_classes_;

  NodeId next_node_id_ = 1;
  BrickId next_brick_id_ = 1;

  // Background migration queue (rebalance + recovery + evacuation).
  std::deque<ChunkMove> move_queue_;
  uint64_t current_move_done_bytes_ = 0;
  bool rebalance_active_ = false;
  uint64_t current_round_moves_ = 0;  // moves enqueued for the active round
  int completed_rebalance_rounds_ = 0;
  uint64_t rebalance_triggers_ = 0;
  SimTime last_balancer_check_ = 0;

  uint64_t total_ops_executed_ = 0;
  uint64_t lost_bytes_ = 0;
  uint64_t namespace_epoch_ = 0;

  FaultHooks* hooks_ = nullptr;
  EnvFaultRuntime* env_ = nullptr;
  CoverageRecorder* cov_ = nullptr;
  ModelCoverage* model_cov_ = nullptr;
  EventLog* telemetry_ = nullptr;

  // Balancer crash/resume state (env faults; DESIGN.md §14). Both are false
  // in every fault-free campaign — only CrashNodeForEnvFault sets them.
  bool balancer_crashed_ = false;
  bool balancer_resume_pending_ = false;

  // ---- incremental load accounting state ----
  // Integer running sums; every derived double (utilization fractions, the
  // imbalance spread) divides the same integers a from-scratch walk would
  // sum, so cached reads are bit-identical to recomputation.
  struct NodeLoadAgg {
    uint64_t used_online = 0;  // bytes on this node's online bricks
    uint64_t cap_online = 0;   // capacity of this node's online bricks
    uint64_t used_all = 0;     // bytes on all of this node's bricks
    bool serving = false;      // node online && !crashed
  };
  mutable bool load_index_dirty_ = true;
  // Bumped on every load-affecting mutation; memoized reads key off it.
  mutable uint64_t load_epoch_ = 0;
  mutable std::vector<BrickId> serving_bricks_;        // bricks_ map order
  mutable std::vector<NodeId> serving_storage_nodes_;  // storage_nodes_ order
  // Dense by NodeId (ids are monotonic and shared with meta nodes; slots
  // that never belonged to a storage node stay default and are never read —
  // every lookup comes from a brick's owner or a serving list).
  mutable std::vector<NodeLoadAgg> node_agg_;
  mutable uint64_t fleet_used_ = 0;      // over serving bricks
  mutable uint64_t fleet_cap_ = 0;       // over serving bricks
  mutable uint64_t fleet_overflow_ = 0;  // sum of max(0, used-cap), serving
  mutable uint64_t total_used_all_ = 0;  // over every brick
  // Storage-dimension statistics over serving nodes with online capacity,
  // memoized per load_epoch_: the imbalance spread (the balancer threshold
  // quantity) plus everything the streaming LoadStatsSnapshot reports for
  // the storage dimension. One scan feeds both, so the per-op balancer
  // check and the monitor read the same numbers for free.
  struct FractionStats {
    uint32_t nodes = 0;
    double max_fraction = 0.0;
    uint64_t used = 0;         // Σ used_online over `nodes`
    uint64_t cap = 0;          // Σ cap_online over `nodes`
    uint64_t frac_sum = 0;     // Σ quantized fraction, ticks
    Uint128 frac_sum_sq = 0;   // Σ quantized fraction², ticks²
    double spread = 0.0;       // max(0, max_fraction - fleet utilization)
  };
  const FractionStats& EnsureFractionStats() const;
  mutable uint64_t imbalance_epoch_ = UINT64_MAX;  // load_epoch_ of the memo
  mutable FractionStats fraction_memo_;

  // ---- hierarchical (per-load-group) sub-aggregates (DESIGN.md §15) ----
  // The storage-dimension statistics above are not rescanned fleet-wide any
  // more: each load group keeps its own sub-aggregate, a mutation marks only
  // the charged node's group dirty, and EnsureFractionStats re-scans the
  // dirty groups (O(group size) each) before rolling the clean group sums
  // into the cluster memo (O(group count)). Integer sums and a plain double
  // max make the rollup bit-identical to the flat fleet scan it replaced.
  struct GroupFracAgg {
    uint32_t nodes = 0;        // serving nodes with online capacity
    uint64_t used = 0;         // Σ used_online
    uint64_t cap = 0;          // Σ cap_online
    uint64_t frac_sum = 0;     // Σ quantized fraction, ticks
    Uint128 frac_sum_sq = 0;   // Σ quantized fraction², ticks²
    double max_fraction = 0.0;
  };
  // Group assignment: real state, written once per node by PickLoadGroup and
  // persisted (snapshot v5) — GeoFS's assignment is history-dependent.
  std::vector<uint32_t> node_load_group_;  // dense by NodeId
  uint32_t load_group_count_ = 0;          // max assigned group + 1
  void AssignLoadGroup(NodeId id);         // records PickLoadGroup(id)
  // Derived per-group state (rebuilt by RebuildLoadIndex, never persisted).
  mutable std::vector<std::vector<NodeId>> group_serving_;  // sorted by id
  mutable std::vector<GroupFracAgg> group_frac_;
  mutable std::vector<uint8_t> group_frac_dirty_;
  mutable std::vector<uint32_t> dirty_groups_;  // queue of dirty group ids
  void MarkGroupDirty(NodeId node) const;
  void EnsureGroupSlots(uint32_t group) const;
  // Rescans one group's serving members into its sub-aggregate.
  void RefreshGroupFrac(uint32_t group) const;
  // Per-group hottest serving brick, with its own dirty bits so refreshing
  // it never taxes the placement-path group refreshes. Backs
  // HottestServingBrick(); maintained by the same MarkGroupDirty funnel.
  struct GroupHotBrick {
    double fraction = -1.0;
    BrickId id = kInvalidBrick;
  };
  mutable std::vector<GroupHotBrick> group_hot_;
  mutable std::vector<uint8_t> group_hot_dirty_;
  mutable std::vector<uint32_t> hot_dirty_groups_;  // queue of dirty ids
  // Rescans one group's online bricks into its hot-brick slot.
  void RefreshGroupHotBrick(uint32_t group) const;
  // Serving metadata nodes, maintained at the (rare) membership changes so
  // per-op request routing / anti-entropy need not scan the ever-growing
  // meta_nodes_ map (removed nodes stay in it as tombstones).
  std::vector<NodeId> serving_meta_nodes_;
  // Online-flag bookkeeping so the per-op drained-brick GC can skip its
  // whole-map scan when nothing is offline (the common case).
  int offline_bricks_ = 0;
  // The offline bricks themselves, so a long-lived drain (stuck evacuation,
  // under-replicated fleet) sweeps only its own bricks each op instead of
  // the whole ever-growing brick map. Entries leave when the GC collects or
  // skips-as-stale them.
  std::vector<BrickId> offline_brick_list_;
  // Bumped whenever the admin list views (serving meta/storage/brick lists)
  // may change membership; see DfsInterface::MembershipEpoch().
  uint64_t membership_epoch_ = 1;
  // Scratch for NormalizedOpPath (valid until the next call).
  std::string norm_scratch_;
  // Recovery-pass candidate stream: `recovery_sorted_` is the ascending
  // prefix popped so far, `recovery_heap_` a min-heap of the rest. The
  // snapshot itself is deferred to the first candidate request, so a pass
  // that schedules nothing (no chunks on the drained bricks) costs nothing.
  mutable std::vector<RecoveryCandidate> recovery_sorted_;
  mutable std::vector<RecoveryCandidate> recovery_heap_;
  mutable bool recovery_pass_built_ = true;
  void BuildRecoveryPassNow() const;
  // UsedFraction() memo, dense by BrickId and written wherever a brick's
  // bytes or capacity change (the same pure division, so bit-identical to
  // recomputing). Lets the recovery snapshot and the per-group hot-brick
  // refresh read a flat array instead of chasing map nodes and dividing.
  std::vector<double> brick_fraction_;
  void UpdateBrickFraction(const Brick& brick);
  // Scratch for PickRecoveryTarget's per-chunk replica-node set.
  mutable std::vector<NodeId> replica_nodes_scratch_;
  // Running view of the last-8-op class window (coverage feature); one slot
  // per OpClass (file, node, volume, env_fault).
  uint32_t class_counts_[4] = {0, 0, 0, 0};
  uint8_t recent_class_mask_ = 0;

  // ---- streaming load-stats state (DESIGN.md §13) ----
  // Windowed rate tracking for the cumulative compute/network counters: per
  // node, the counter values at the start of the current rate window and the
  // quantized deltas accumulated since. Bases are captured lazily — bumping
  // window_epoch_ invalidates every base in O(1), and the first charge of a
  // node in the new window rebases it — so closing a window never scans the
  // fleet. Deltas are fixed-point integers (src/common/stats.h) so the
  // incrementally maintained group sums below are bit-identical to the
  // full-scan oracle's.
  struct NodeRateWindow {
    uint64_t epoch = 0;      // window_epoch_ the base belongs to
    double base_cpu = 0.0;   // cumulative cpu_seconds at window start
    double last_cpu = 0.0;   // cumulative cpu_seconds at last commit
    uint64_t base_net = 0;   // cumulative requests+read_ios+write_ios
    uint64_t cpu_ticks = 0;  // current window delta, quantized
    uint64_t net_delta = 0;  // current window delta
  };
  // Per (node group × dimension) window aggregate. Within a window a node's
  // delta only grows (the counters are cumulative), so the instant max is a
  // plain monotone high-water mark — no ordered index, no allocation; only
  // the rare removal of a group member (crash / decommission) can lower it
  // and triggers a rescan of the group's serving list.
  struct RateDimAgg {
    uint64_t sum = 0;        // Σ delta, ticks
    Uint128 sum_sq = 0;      // Σ delta², ticks²
    uint64_t max_delta = 0;  // max over current group members, ticks
  };
  // Captures the window base for `id` if this is its first charge in the
  // current window; call before mutating the node's counters.
  void BeginNodeChargeWindow(NodeId id, const NodeLoadCounters& load);
  // Recomputes the node's window deltas from the (just mutated) counters and
  // applies the change to its group aggregates. Base capture above is
  // unconditional; the aggregate update is skipped for non-serving nodes and
  // while the load index is dirty (the rebuild recomputes from the windows).
  void CommitNodeCharge(NodeId id, const NodeLoadCounters& load, bool is_storage,
                        bool serving);
  // Removes an unserving node's current window deltas from its group.
  void RemoveNodeFromRateAggs(NodeId id, bool is_storage);
  uint64_t WindowDelta(NodeId id, bool cpu_dim) const;
  void RecomputeRateMax(RateDimAgg& agg, bool is_storage, bool cpu_dim) const;
  // From-scratch reconstruction out of the per-node windows + serving lists
  // (tail of RebuildLoadIndex).
  void RebuildRateAggs() const;

  // Per-load-group high-water marks for the storage rate dimensions, stamped
  // with the window epoch so AdvanceLoadWindow stays O(1) (a stale stamp
  // reads as zero). They exist so the departure of the fleet maximum rescans
  // one group and then maxes over the group marks — O(group size + group
  // count) instead of a full fleet scan. Commits fold into them in O(1); the
  // cluster-level aggregates stay the single source for SnapshotLoadStats.
  struct GroupRateMax {
    uint64_t epoch = 0;
    uint64_t cpu = 0;
    uint64_t net = 0;
  };
  mutable std::vector<GroupRateMax> group_rate_max_;
  // Current-window mark slot for a storage node's group (epoch-reset lazily).
  GroupRateMax& GroupRateMaxSlot(NodeId id) const;
  uint64_t GroupRateMaxValue(uint32_t group, bool cpu_dim) const;
  // Rescans one group's serving members into its high-water mark.
  void RecomputeGroupRateMax(uint32_t group) const;
  uint64_t MaxOverGroupRateMax(bool cpu_dim) const;

  std::vector<NodeRateWindow> rate_windows_;  // dense by NodeId
  uint64_t window_epoch_ = 1;
  mutable RateDimAgg cpu_storage_agg_;
  mutable RateDimAgg cpu_meta_agg_;
  mutable RateDimAgg net_storage_agg_;
  mutable RateDimAgg net_meta_agg_;
  // Count of nodes with crashed=true: the O(1) source of the snapshot's
  // any_crashed flag. Decremented only by RestartNode (env faults) and the
  // topology reset; fault-effect crashes (CrashNode) are permanent.
  int crashed_nodes_ = 0;
};

}  // namespace themis

#endif  // SRC_DFS_CLUSTER_H_
