// Interned-path table: the namespace core's name store (DESIGN.md §12).
//
// Every normalized path the system ever touches is interned once into a
// trie of (parent PathId, component id) edges held in an open-addressing
// flat hash. Resolving "/d3/f17" costs two component-map probes and two
// edge probes — no allocation, no O(log n) string compares — and yields a
// small dense integer that all hot-path namespace bookkeeping keys on.
// Ids are append-only within a generation: a path maps to the same PathId
// for the lifetime of the table, so callers may cache resolutions (see
// Operation::PathCache) and validate them with generation() alone. Reset()
// drops every name and starts a new generation, invalidating all caches.

#ifndef SRC_DFS_PATH_TABLE_H_
#define SRC_DFS_PATH_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/dfs/types.h"

namespace themis {

class PathTable {
 public:
  PathTable();

  // Resolves `path` (normalizing exactly like NormalizePath: empty
  // components collapse, leading slash implied), creating any missing
  // nodes. Always succeeds; "" and "/" resolve to kRootPathId.
  PathId Intern(std::string_view path);
  // Resolution without creation: kInvalidPathId if any component of the
  // normalized path was never interned.
  PathId Lookup(std::string_view path) const;
  // Child edge under an already-interned parent (used by subtree moves).
  PathId InternChild(PathId parent, uint32_t component);

  PathId Parent(PathId id) const { return nodes_[id].parent; }
  // Component id of the node's own name (meaningless for the root).
  uint32_t Component(PathId id) const { return nodes_[id].component; }
  const std::string& ComponentName(uint32_t component) const {
    return component_names_[component];
  }
  // True when `ancestor` lies strictly on `id`'s parent chain.
  bool IsAncestor(PathId ancestor, PathId id) const;

  // Materializes the normalized path string ("/" for the root). Appends to
  // `out` without clearing it.
  void AppendPath(PathId id, std::string* out) const;
  std::string PathString(PathId id) const;

  // Number of interned nodes (including the root).
  size_t size() const { return nodes_.size(); }

  // Drops every interned name and starts a fresh generation. All PathIds
  // and cached resolutions minted against the old generation are invalid.
  void Reset();

  // Process-unique token naming the current id space; changes on Reset().
  uint64_t generation() const { return generation_; }

 private:
  struct Node {
    PathId parent;
    uint32_t component;
  };
  struct EdgeSlot {
    uint64_t key;   // (parent << 32) | component
    PathId child;   // kInvalidPathId marks an empty slot
  };

  static uint64_t EdgeKey(PathId parent, uint32_t component) {
    return (static_cast<uint64_t>(parent) << 32) | component;
  }
  static uint64_t Mix(uint64_t key);

  uint32_t InternComponent(std::string_view name);
  PathId FindChild(PathId parent, uint32_t component) const;
  void InsertEdge(uint64_t key, PathId child);
  void GrowEdges();

  // Heterogeneous-lookup hash so component probes take string_view without
  // materializing a std::string.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<Node> nodes_;                    // index == PathId
  std::vector<std::string> component_names_;   // index == component id
  std::unordered_map<std::string, uint32_t, StringHash, std::equal_to<>>
      component_ids_;
  std::vector<EdgeSlot> edges_;  // open addressing, power-of-two capacity
  size_t edge_count_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace themis

#endif  // SRC_DFS_PATH_TABLE_H_
