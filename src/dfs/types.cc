#include "src/dfs/types.h"

namespace themis {

std::string_view FlavorName(Flavor flavor) {
  switch (flavor) {
    case Flavor::kHdfs:
      return "HDFS";
    case Flavor::kCeph:
      return "CephFS";
    case Flavor::kGluster:
      return "GlusterFS";
    case Flavor::kLeo:
      return "LeoFS";
    case Flavor::kCustom:
      return "Custom";
    case Flavor::kGeo:
      return "GeoFS";
  }
  return "?";
}

size_t FlavorBranchSpace(Flavor flavor) {
  // Sized so that a saturated load-variance-guided campaign lands near the
  // paper's Table 5 coverage magnitudes (HDFS 39.9k, Gluster 49.3k,
  // Leo 11.5k, Ceph 64.1k). A bitmap fills along a coupon-collector curve;
  // spaces are therefore a bit above the target saturation points.
  switch (flavor) {
    case Flavor::kHdfs:
      return 52000;
    case Flavor::kCeph:
      return 84000;
    case Flavor::kGluster:
      return 64000;
    case Flavor::kLeo:
      return 15000;
    case Flavor::kCustom:
      return 32000;
    case Flavor::kGeo:
      // Largest space: the geotag tree + two-level placement branch far more
      // than the flat flavors, and campaigns run it at 1k+ nodes.
      return 96000;
  }
  return 32000;
}

}  // namespace themis
