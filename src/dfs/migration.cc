#include "src/dfs/migration.h"

#include "src/common/bytes.h"
#include "src/common/strings.h"

namespace themis {

bool ChunkPlacement::HasReplicaOn(BrickId brick) const {
  for (BrickId b : replicas) {
    if (b == brick) {
      return true;
    }
  }
  return false;
}

std::string ChunkMove::ToString() const {
  return Sprintf("move file%llu#%u brick%u->brick%u (%s%s)",
                 static_cast<unsigned long long>(file), chunk_index, from, to,
                 FormatBytes(bytes).c_str(), is_linkfile ? ", linkfile" : "");
}

uint64_t PlanBytes(const MigrationPlan& plan) {
  uint64_t total = 0;
  for (const ChunkMove& move : plan) {
    total += move.bytes;
  }
  return total;
}

}  // namespace themis
