// The cluster-side file namespace: a directory tree mapping normalized paths
// to files (with ids and sizes) and directories. This is the authoritative
// namespace; Themis keeps its own black-box model (core/input_model.h) that
// may drift, as it would against a real deployment.
//
// Paths are interned through a PathTable (DESIGN.md §12): entry state lives
// in a dense per-PathId array with intrusive live-children lists, so
// directory emptiness is an O(1) child-count check, subtree renames reparent
// edges instead of rewriting descendant keys, and the hot path (the id
// overloads below) never allocates or compares path strings. The string
// overloads resolve through the interner and remain the API for tests and
// cold paths.

#ifndef SRC_DFS_NAMESPACE_TREE_H_
#define SRC_DFS_NAMESPACE_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/snapshot_io.h"
#include "src/common/status.h"
#include "src/dfs/operation.h"
#include "src/dfs/path_table.h"
#include "src/dfs/types.h"

namespace themis {

struct NamespaceEntry {
  bool is_dir = false;
  FileId file_id = 0;   // valid when !is_dir
  uint64_t size = 0;    // file logical size
};

class NamespaceTree {
 public:
  NamespaceTree();

  // Directory operations. Parents must exist; directories must be empty to be
  // removed; the root cannot be removed.
  Status MakeDir(std::string_view path);
  Status RemoveDir(std::string_view path);

  // File operations.
  Result<FileId> CreateFile(std::string_view path, uint64_t size);
  Status RemoveFile(std::string_view path);
  Status SetFileSize(std::string_view path, uint64_t size);
  // Renames a file or an entire directory subtree. Destination parent must
  // exist and destination must not exist.
  Status Rename(std::string_view from, std::string_view to);

  // Lookup.
  const NamespaceEntry* Find(std::string_view path) const;
  bool IsFile(std::string_view path) const;
  bool IsDir(std::string_view path) const;
  Result<FileId> FileIdOf(std::string_view path) const;

  // ---- id-keyed API (the per-op hot path: resolve once, then integer ops)
  Status MakeDir(PathId id);
  Status RemoveDir(PathId id);
  Result<FileId> CreateFile(PathId id, uint64_t size);
  Status RemoveFile(PathId id);
  Status SetFileSize(PathId id, uint64_t size);
  Status Rename(PathId src, PathId dst);
  const NamespaceEntry* Find(PathId id) const;
  Result<FileId> FileIdOf(PathId id) const;

  // Interns `path` into this tree's table (creating name nodes only — no
  // namespace entries).
  PathId Intern(std::string_view path) {
    PathId id = table_.Intern(path);
    EnsureStates();
    return id;
  }
  const PathTable& table() const { return table_; }

  // Memoized resolution of an operation's path operands: the first call
  // interns and stamps the op's PathCache; later calls (re-executions,
  // double-checks, mutated copies) are a generation compare. The cache
  // auto-invalidates when Clear()/RestoreState() reset the table.
  PathId ResolveOpPath(const Operation& op);
  PathId ResolveOpPath2(const Operation& op);

  size_t file_count() const { return file_count_; }
  size_t dir_count() const { return dir_count_; }
  uint64_t total_bytes() const { return total_bytes_; }

  // Enumerates all file paths in lexicographic order (test / detector
  // helpers; O(n log n)).
  std::vector<std::string> ListFiles() const;

  // Returns the path for a live file id, or empty if unknown.
  std::string PathOf(FileId id) const;

  void Clear();

  // Checkpointing (DESIGN.md §11): live entries in lexicographic path order
  // (the same wire image the std::map representation produced) plus the id
  // allocator; the interner, children lists and counters are rebuilt on
  // restore.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  // Per-PathId entry state. Children lists are intrusive (head + sibling
  // links) and track *live* entries only; by the parent-must-exist
  // invariant, child_count == 0 is exactly "directory empty".
  struct NodeState {
    NamespaceEntry entry;
    bool present = false;
    PathId first_child = kInvalidPathId;
    PathId next_sibling = kInvalidPathId;
    PathId prev_sibling = kInvalidPathId;
    uint32_t child_count = 0;
  };

  void EnsureStates() {
    if (states_.size() < table_.size()) states_.resize(table_.size());
  }
  const NodeState* StateOf(PathId id) const {
    return id < states_.size() ? &states_[id] : nullptr;
  }
  void LinkChild(PathId id);
  void UnlinkChild(PathId id);
  // Relocates the live entry at `src` (and, for directories, its whole live
  // subtree) onto the name nodes under `dst`.
  void MoveSubtree(PathId src, PathId dst);

  PathTable table_;
  std::vector<NodeState> states_;  // index == PathId; grows with the table
  std::unordered_map<FileId, PathId> id_to_path_;
  FileId next_file_id_ = 1;
  size_t file_count_ = 0;
  size_t dir_count_ = 0;       // excludes root
  uint64_t total_bytes_ = 0;
};

}  // namespace themis

#endif  // SRC_DFS_NAMESPACE_TREE_H_
