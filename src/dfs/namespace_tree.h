// The cluster-side file namespace: a directory tree mapping normalized paths
// to files (with ids and sizes) and directories. This is the authoritative
// namespace; Themis keeps its own black-box model (core/input_model.h) that
// may drift, as it would against a real deployment.

#ifndef SRC_DFS_NAMESPACE_TREE_H_
#define SRC_DFS_NAMESPACE_TREE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/snapshot_io.h"
#include "src/common/status.h"
#include "src/dfs/types.h"

namespace themis {

struct NamespaceEntry {
  bool is_dir = false;
  FileId file_id = 0;   // valid when !is_dir
  uint64_t size = 0;    // file logical size
};

class NamespaceTree {
 public:
  NamespaceTree();

  // Directory operations. Parents must exist; directories must be empty to be
  // removed; the root cannot be removed.
  Status MakeDir(std::string_view path);
  Status RemoveDir(std::string_view path);

  // File operations.
  Result<FileId> CreateFile(std::string_view path, uint64_t size);
  Status RemoveFile(std::string_view path);
  Status SetFileSize(std::string_view path, uint64_t size);
  // Renames a file or an entire directory subtree. Destination parent must
  // exist and destination must not exist.
  Status Rename(std::string_view from, std::string_view to);

  // Lookup.
  const NamespaceEntry* Find(std::string_view path) const;
  bool IsFile(std::string_view path) const;
  bool IsDir(std::string_view path) const;
  Result<FileId> FileIdOf(std::string_view path) const;

  size_t file_count() const { return file_count_; }
  size_t dir_count() const { return dir_count_; }
  uint64_t total_bytes() const { return total_bytes_; }

  // Enumerates all file paths (test / detector helpers; O(n)).
  std::vector<std::string> ListFiles() const;

  // Returns the path for a live file id, or empty if unknown.
  std::string PathOf(FileId id) const;

  void Clear();

  // Checkpointing (DESIGN.md §11): the entry map and the id allocator;
  // id_to_path_ and the counters are rebuilt on restore.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  bool HasChildren(const std::string& dir_prefix) const;

  // Sorted map enables prefix scans for directory emptiness and renames.
  std::map<std::string, NamespaceEntry> entries_;
  std::map<FileId, std::string> id_to_path_;
  FileId next_file_id_ = 1;
  size_t file_count_ = 0;
  size_t dir_count_ = 0;       // excludes root
  uint64_t total_bytes_ = 0;
};

}  // namespace themis

#endif  // SRC_DFS_NAMESPACE_TREE_H_
