// Node model: storage nodes hold file data (on bricks); metadata/management
// nodes route client requests. Load counters are cumulative, like the
// /proc-style counters a real LoadMonitor() adaptor would scrape; windowed
// rates are derived by the states monitor.

#ifndef SRC_DFS_NODE_H_
#define SRC_DFS_NODE_H_

#include <cstdint>
#include <vector>

#include "src/dfs/types.h"

namespace themis {

// Cumulative resource counters for one node.
struct NodeLoadCounters {
  uint64_t requests = 0;   // client requests handled
  uint64_t read_ios = 0;   // network read (input) operations
  uint64_t write_ios = 0;  // network write (output) operations
  double cpu_seconds = 0;  // accumulated CPU work

  void Reset() { *this = NodeLoadCounters{}; }
};

struct StorageNode {
  NodeId id = kInvalidNode;
  bool online = true;
  bool crashed = false;  // a crash fault tripped; node is dead until reset
  std::vector<BrickId> bricks;
  NodeLoadCounters load;

  bool Serving() const { return online && !crashed; }
};

struct MetaNode {
  NodeId id = kInvalidNode;
  bool online = true;
  bool crashed = false;
  // Metadata replication state: how far this node's namespace view has
  // caught up with the authoritative epoch (see DfsCluster::namespace_epoch).
  uint64_t synced_epoch = 0;
  NodeLoadCounters load;

  bool Serving() const { return online && !crashed; }
};

}  // namespace themis

#endif  // SRC_DFS_NODE_H_
