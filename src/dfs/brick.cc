#include "src/dfs/brick.h"

namespace themis {
static_assert(sizeof(Brick) > 0);
}  // namespace themis
