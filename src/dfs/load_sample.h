// The per-node load data a DFS exposes to the outside world — what the
// paper's `LoadMonitor()` adaptor scrapes (df, /proc counters, gateway
// request stats). Counters are cumulative; the states monitor derives
// windowed rates.

#ifndef SRC_DFS_LOAD_SAMPLE_H_
#define SRC_DFS_LOAD_SAMPLE_H_

#include <cstdint>

#include "src/common/clock.h"
#include "src/dfs/types.h"

namespace themis {

struct LoadSample {
  NodeId node = kInvalidNode;
  bool is_storage = false;
  bool online = true;
  bool crashed = false;

  // Storage load (storage nodes; 0 for management nodes).
  uint64_t used_bytes = 0;
  uint64_t capacity_bytes = 0;

  // Cumulative network load.
  uint64_t requests = 0;
  uint64_t read_ios = 0;
  uint64_t write_ios = 0;

  // Cumulative computation load.
  double cpu_seconds = 0.0;

  SimTime taken_at = 0;
};

}  // namespace themis

#endif  // SRC_DFS_LOAD_SAMPLE_H_
