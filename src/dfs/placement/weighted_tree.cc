#include "src/dfs/placement/weighted_tree.h"

#include <algorithm>
#include <cmath>

namespace themis {

WeightedTree::WeightedTree(int buckets) : buckets_(buckets > 0 ? buckets : 1) {}

void WeightedTree::Clear() {
  tree_.clear();
  count_ = 0;
}

void WeightedTree::Insert(const WeightedTarget& target) {
  double f = std::clamp(target.used_fraction, 0.0, 1.0);
  int bucket = static_cast<int>(f * buckets_);
  if (bucket >= buckets_) {
    bucket = buckets_ - 1;
  }
  tree_[bucket].push_back(target.brick);
  ++count_;
}

std::vector<BrickId> WeightedTree::SortByLoad(Rng& rng) const {
  std::vector<BrickId> out;
  out.reserve(count_);
  for (const auto& [bucket, members] : tree_) {
    (void)bucket;
    size_t start = out.size();
    out.insert(out.end(), members.begin(), members.end());
    // Collections.shuffle(l) over nodes with the same weight.
    for (size_t i = out.size(); i > start + 1; --i) {
      size_t j = start + rng.PickIndex(i - start);
      std::swap(out[i - 1], out[j]);
    }
  }
  return out;
}

std::vector<BrickId> WeightedTree::ChooseLeastLoaded(int n, Rng& rng) const {
  std::vector<BrickId> sorted = SortByLoad(rng);
  if (n >= 0 && static_cast<size_t>(n) < sorted.size()) {
    sorted.resize(static_cast<size_t>(n));
  }
  return sorted;
}

}  // namespace themis
