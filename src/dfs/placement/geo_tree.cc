#include "src/dfs/placement/geo_tree.h"

#include <algorithm>

namespace themis {

GeoTreeEngine::GeoTreeEngine(int sites, int racks_per_site, int group_size)
    : sites_(std::max(sites, 1)),
      racks_per_site_(std::max(racks_per_site, 1)),
      group_size_(std::max(group_size, 1)),
      site_counts_(static_cast<size_t>(sites_), 0),
      rack_counts_(static_cast<size_t>(sites_),
                   std::vector<uint32_t>(static_cast<size_t>(racks_per_site_), 0)) {}

void GeoTreeEngine::EnsureNodeSlots(NodeId id) {
  if (assigned_.size() <= id) {
    assigned_.resize(id + 1, 0);
    node_tag_.resize(id + 1);
    node_group_.resize(id + 1, 0xffffffffu);
  }
}

uint32_t GeoTreeEngine::AssignNode(NodeId id) {
  EnsureNodeSlots(id);
  uint16_t site = 0;
  for (uint16_t s = 1; s < site_counts_.size(); ++s) {
    if (site_counts_[s] < site_counts_[site]) {
      site = s;
    }
  }
  uint16_t rack = 0;
  for (uint16_t r = 1; r < rack_counts_[site].size(); ++r) {
    if (rack_counts_[site][r] < rack_counts_[site][rack]) {
      rack = r;
    }
  }
  uint32_t group = 0xffffffffu;
  for (uint32_t g = 0; g < group_members_.size(); ++g) {
    if (static_cast<int>(group_members_[g].size()) >= group_size_) {
      continue;
    }
    if (group == 0xffffffffu ||
        group_members_[g].size() < group_members_[group].size()) {
      group = g;
    }
  }
  if (group == 0xffffffffu) {
    group = static_cast<uint32_t>(group_members_.size());
    group_members_.emplace_back();
  }
  assigned_[id] = 1;
  node_tag_[id] = GeoTag{site, rack};
  node_group_[id] = group;
  ++site_counts_[site];
  ++rack_counts_[site][rack];
  group_members_[group].push_back(id);
  ++node_count_;
  return group;
}

void GeoTreeEngine::RemoveNode(NodeId id) {
  if (!Contains(id)) {
    return;
  }
  GeoTag tag = node_tag_[id];
  uint32_t group = node_group_[id];
  assigned_[id] = 0;
  node_group_[id] = 0xffffffffu;
  --site_counts_[tag.site];
  --rack_counts_[tag.site][tag.rack];
  std::vector<NodeId>& members = group_members_[group];
  members.erase(std::remove(members.begin(), members.end(), id), members.end());
  --node_count_;
}

void GeoTreeEngine::RestoreNode(NodeId id, GeoTag tag, uint32_t group) {
  EnsureNodeSlots(id);
  if (assigned_[id]) {
    RemoveNode(id);
  }
  if (group_members_.size() <= group) {
    group_members_.resize(group + 1);
  }
  assigned_[id] = 1;
  node_tag_[id] = tag;
  node_group_[id] = group;
  ++site_counts_[tag.site];
  ++rack_counts_[tag.site][tag.rack];
  group_members_[group].push_back(id);
  ++node_count_;
}

void GeoTreeEngine::Clear() {
  node_count_ = 0;
  assigned_.clear();
  node_tag_.clear();
  node_group_.clear();
  std::fill(site_counts_.begin(), site_counts_.end(), 0);
  for (auto& racks : rack_counts_) {
    std::fill(racks.begin(), racks.end(), 0);
  }
  group_members_.clear();
}

const std::vector<NodeId>& GeoTreeEngine::GroupMembers(uint32_t group) const {
  static const std::vector<NodeId> kEmpty;
  return group < group_members_.size() ? group_members_[group] : kEmpty;
}

}  // namespace themis
