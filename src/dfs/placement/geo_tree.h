// Geotag tree + scheduling groups for the GeoFS flavor (EOS's
// GeoTreeEngine/FsView in miniature): every storage node carries a geotag
// (site, rack) and belongs to exactly one scheduling group; groups span
// sites so intra-group replication is cross-site by construction.
//
// Admission is deterministic and history-dependent: a new node lands on the
// site with the fewest nodes, the least-populated rack within that site, and
// the non-full scheduling group with the fewest members (a fresh group if
// all are full). Because the outcome depends on the add/remove history, the
// assignment is real state — the cluster persists it (snapshot v5) and the
// flavor persists the tags; nothing here is ever recomputed from topology.

#ifndef SRC_DFS_PLACEMENT_GEO_TREE_H_
#define SRC_DFS_PLACEMENT_GEO_TREE_H_

#include <cstdint>
#include <vector>

#include "src/dfs/types.h"

namespace themis {

struct GeoTag {
  uint16_t site = 0;
  uint16_t rack = 0;
};

class GeoTreeEngine {
 public:
  GeoTreeEngine(int sites, int racks_per_site, int group_size);

  // Admits `id`: fewest-nodes site, fewest-nodes rack within it, fewest-
  // members non-full scheduling group. Returns the group index. Ties break
  // toward the lowest index, so the layout is a pure function of history.
  uint32_t AssignNode(NodeId id);

  // Drops `id` (decommission); its site/rack/group slots free up for future
  // admissions. Unknown ids are ignored.
  void RemoveNode(NodeId id);

  // Re-admits a node at its persisted coordinates (snapshot restore).
  void RestoreNode(NodeId id, GeoTag tag, uint32_t group);

  void Clear();

  bool Contains(NodeId id) const {
    return id < assigned_.size() && assigned_[id];
  }
  GeoTag TagOf(NodeId id) const {
    return Contains(id) ? node_tag_[id] : GeoTag{};
  }
  uint32_t GroupOf(NodeId id) const {
    return Contains(id) ? node_group_[id] : 0xffffffffu;
  }

  int sites() const { return sites_; }
  int racks_per_site() const { return racks_per_site_; }
  int group_size() const { return group_size_; }
  uint32_t group_count() const { return static_cast<uint32_t>(group_members_.size()); }
  uint32_t node_count() const { return node_count_; }
  uint32_t SiteNodeCount(uint16_t site) const {
    return site < site_counts_.size() ? site_counts_[site] : 0;
  }
  // Members of one scheduling group, in admission order (may include nodes
  // the cluster currently reports as crashed; callers filter by serving).
  const std::vector<NodeId>& GroupMembers(uint32_t group) const;

 private:
  void EnsureNodeSlots(NodeId id);

  int sites_;
  int racks_per_site_;
  int group_size_;
  uint32_t node_count_ = 0;
  std::vector<uint8_t> assigned_;    // dense by NodeId
  std::vector<GeoTag> node_tag_;     // dense by NodeId
  std::vector<uint32_t> node_group_; // dense by NodeId
  std::vector<uint32_t> site_counts_;
  std::vector<std::vector<uint32_t>> rack_counts_;  // [site][rack]
  std::vector<std::vector<NodeId>> group_members_;
};

}  // namespace themis

#endif  // SRC_DFS_PLACEMENT_GEO_TREE_H_
