// HDFS-style load-weighted target selection.
//
// Mirrors the NameNode's sortByLoad (paper Fig. 4): targets are bucketed into
// a TreeMap keyed by a coarse load weight; buckets are traversed from light
// to heavy, and targets inside a bucket are shuffled so equally loaded nodes
// share new blocks. The paper's HDFS-13279 bug lives exactly here — a stale
// membership entry sorted into the array makes the migration calculation
// wrong — so the flavor feeds this structure from its (possibly stale)
// cluster map.

#ifndef SRC_DFS_PLACEMENT_WEIGHTED_TREE_H_
#define SRC_DFS_PLACEMENT_WEIGHTED_TREE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/dfs/types.h"

namespace themis {

struct WeightedTarget {
  BrickId brick = kInvalidBrick;
  double used_fraction = 0.0;  // load signal
};

class WeightedTree {
 public:
  // `buckets` controls how coarse the weight quantization is (HDFS uses
  // integer weights; we quantize used-fraction into this many levels).
  explicit WeightedTree(int buckets = 20);

  void Clear();
  void Insert(const WeightedTarget& target);

  // Sorted light-to-heavy target list with in-bucket shuffling.
  std::vector<BrickId> SortByLoad(Rng& rng) const;

  // First `n` distinct targets of SortByLoad.
  std::vector<BrickId> ChooseLeastLoaded(int n, Rng& rng) const;

  size_t size() const { return count_; }

 private:
  int buckets_;
  std::map<int, std::vector<BrickId>> tree_;  // weight bucket -> targets
  size_t count_ = 0;
};

}  // namespace themis

#endif  // SRC_DFS_PLACEMENT_WEIGHTED_TREE_H_
