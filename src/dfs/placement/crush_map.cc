#include "src/dfs/placement/crush_map.h"

#include <cmath>

#include "src/common/rng.h"

namespace themis {

CrushMap::CrushMap(uint32_t pg_count) : pg_count_(pg_count > 0 ? pg_count : 1) {}

void CrushMap::SetTargetWeight(BrickId target, double weight) {
  if (weight <= 0.0) {
    weights_.erase(target);
    return;
  }
  weights_[target] = weight;
}

void CrushMap::RemoveTarget(BrickId target) {
  weights_.erase(target);
  // Upmaps pointing at a vanished target are stale; drop them.
  for (auto it = upmaps_.begin(); it != upmaps_.end();) {
    if (it->second == target) {
      it = upmaps_.erase(it);
    } else {
      ++it;
    }
  }
}

bool CrushMap::HasTarget(BrickId target) const { return weights_.count(target) != 0; }

double CrushMap::TargetWeight(BrickId target) const {
  auto it = weights_.find(target);
  return it == weights_.end() ? 0.0 : it->second;
}

std::vector<BrickId> CrushMap::RawMap(uint32_t pg, int replicas) const {
  std::vector<BrickId> out;
  if (weights_.empty() || replicas <= 0) {
    return out;
  }
  size_t want = std::min(static_cast<size_t>(replicas), weights_.size());
  for (uint32_t round = 0; out.size() < want && round < 8 * want; ++round) {
    // straw2: draw = ln(u) / weight, u in (0,1]; argmax wins.
    BrickId best = kInvalidBrick;
    double best_draw = -1e300;
    for (const auto& [target, weight] : weights_) {
      bool taken = false;
      for (BrickId b : out) {
        if (b == target) {
          taken = true;
          break;
        }
      }
      if (taken) {
        continue;
      }
      // Final Mix64 pass: HashCombine alone is too linear in its seed, which
      // correlates the per-target draws and skews the weight proportionality.
      uint64_t h =
          Mix64(HashCombine(HashCombine(Mix64(pg + 0x5bd1ULL), round), target));
      // Map to (0, 1]: add 1 so u never hits exactly 0.
      double u = (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
      double draw = std::log(u) / weight;
      if (draw > best_draw) {
        best_draw = draw;
        best = target;
      }
    }
    if (best == kInvalidBrick) {
      break;
    }
    out.push_back(best);
  }
  return out;
}

std::vector<BrickId> CrushMap::Map(uint32_t pg, int replicas) const {
  std::vector<BrickId> mapped = RawMap(pg, replicas);
  auto it = upmaps_.find(pg);
  if (it == upmaps_.end() || mapped.empty()) {
    return mapped;
  }
  BrickId pinned = it->second;
  if (weights_.count(pinned) == 0) {
    return mapped;  // stale pin
  }
  // Move `pinned` to the primary slot; if it was not in the set, replace the
  // primary with it.
  for (size_t i = 0; i < mapped.size(); ++i) {
    if (mapped[i] == pinned) {
      std::swap(mapped[0], mapped[i]);
      return mapped;
    }
  }
  mapped[0] = pinned;
  return mapped;
}

void CrushMap::Upmap(uint32_t pg, BrickId target) { upmaps_[pg % pg_count_] = target; }

void CrushMap::ClearUpmap(uint32_t pg) { upmaps_.erase(pg % pg_count_); }

void CrushMap::ClearAllUpmaps() { upmaps_.clear(); }

std::vector<BrickId> CrushMap::Targets() const {
  std::vector<BrickId> out;
  out.reserve(weights_.size());
  for (const auto& [target, weight] : weights_) {
    (void)weight;
    out.push_back(target);
  }
  return out;
}

}  // namespace themis
