// Consistent-hash ring with virtual nodes (LeoFS-style placement).
//
// Each target (brick) is inserted at `vnodes` pseudo-random points on a
// 64-bit ring; an object key is placed on the first target clockwise from
// its hash, replicas on the next distinct targets. Adding or removing a
// target moves only the keys in the affected arcs — the property LeoFS's
// rebalance relies on.

#ifndef SRC_DFS_PLACEMENT_HASH_RING_H_
#define SRC_DFS_PLACEMENT_HASH_RING_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/dfs/types.h"

namespace themis {

class HashRing {
 public:
  explicit HashRing(int vnodes_per_target = 64);

  // `weight` scales the target's share of the ring (its virtual-node count);
  // 1.0 = the configured vnodes_per_target.
  void AddTarget(BrickId target, double weight = 1.0);
  void RemoveTarget(BrickId target);
  // Virtual nodes currently planted for a target (0 if absent).
  int VnodeCount(BrickId target) const;
  bool HasTarget(BrickId target) const;
  size_t target_count() const { return positions_.size(); }

  // First `replicas` distinct targets clockwise from hash(key). Returns fewer
  // if the ring has fewer targets. Empty if the ring is empty.
  std::vector<BrickId> Locate(uint64_t key_hash, int replicas) const;

  // The primary target for a key (first element of Locate), or kInvalidBrick.
  BrickId Primary(uint64_t key_hash) const;

  std::vector<BrickId> Targets() const;

 private:
  int vnodes_;
  std::map<uint64_t, BrickId> ring_;  // position -> target
  // Per-target vnode positions, so RemoveTarget erases its own entries in
  // O(v log n) and VnodeCount is a lookup instead of a full-ring scan.
  std::map<BrickId, std::vector<uint64_t>> positions_;
};

}  // namespace themis

#endif  // SRC_DFS_PLACEMENT_HASH_RING_H_
