#include "src/dfs/placement/dht_layout.h"

#include <string_view>

#include "src/common/rng.h"

namespace themis {

void DhtLayout::Recompute(const std::vector<std::pair<BrickId, double>>& bricks) {
  ranges_.clear();
  ++generation_;
  double total_weight = 0.0;
  for (const auto& [brick, weight] : bricks) {
    (void)brick;
    if (weight > 0.0) {
      total_weight += weight;
    }
  }
  if (total_weight <= 0.0) {
    return;
  }
  const uint64_t space = 1ULL << 32;
  uint64_t cursor = 0;
  size_t live = 0;
  for (const auto& [brick, weight] : bricks) {
    (void)brick;
    if (weight > 0.0) {
      ++live;
    }
  }
  size_t emitted = 0;
  for (const auto& [brick, weight] : bricks) {
    if (weight <= 0.0) {
      continue;
    }
    ++emitted;
    uint64_t span = (emitted == live)
                        ? space - cursor  // last brick absorbs rounding
                        : static_cast<uint64_t>(static_cast<double>(space) *
                                                (weight / total_weight));
    if (span == 0) {
      span = 1;
    }
    if (cursor + span > space) {
      span = space - cursor;
    }
    if (span == 0) {
      continue;
    }
    ranges_.push_back(DhtRange{.start = static_cast<uint32_t>(cursor),
                               .end = static_cast<uint32_t>(cursor + span - 1),
                               .brick = brick});
    cursor += span;
  }
}

BrickId DhtLayout::Locate(uint32_t name_hash) const {
  for (const DhtRange& range : ranges_) {
    if (name_hash >= range.start && name_hash <= range.end) {
      return range.brick;
    }
  }
  return ranges_.empty() ? kInvalidBrick : ranges_.back().brick;
}

uint32_t DhtLayout::HashName(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return static_cast<uint32_t>(h ^ (h >> 32));
}

}  // namespace themis
