// CRUSH-style placement (CephFS flavor).
//
// Objects map to placement groups (PGs) by hash; each PG is mapped to an
// ordered set of targets with straw2 selection: every target draws
// ln(u) / weight for a deterministic pseudo-random u = hash(pg, round,
// target), and the largest draw wins. Weight changes move only a
// proportional share of PGs — CRUSH's signature property. An "upmap" overlay
// lets the balancer pin individual PGs elsewhere, mirroring Ceph's upmap
// balancer.

#ifndef SRC_DFS_PLACEMENT_CRUSH_MAP_H_
#define SRC_DFS_PLACEMENT_CRUSH_MAP_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/dfs/types.h"

namespace themis {

class CrushMap {
 public:
  explicit CrushMap(uint32_t pg_count = 256);

  void SetTargetWeight(BrickId target, double weight);  // weight<=0 removes
  void RemoveTarget(BrickId target);
  bool HasTarget(BrickId target) const;
  double TargetWeight(BrickId target) const;
  size_t target_count() const { return weights_.size(); }
  uint32_t pg_count() const { return pg_count_; }

  uint32_t PgOf(uint64_t object_hash) const { return object_hash % pg_count_; }

  // CRUSH mapping of `pg` onto `replicas` distinct targets (before upmap).
  std::vector<BrickId> RawMap(uint32_t pg, int replicas) const;

  // Mapping after applying upmap overrides.
  std::vector<BrickId> Map(uint32_t pg, int replicas) const;

  // Balancer interface: pin a PG's primary to `target` / clear a pin.
  void Upmap(uint32_t pg, BrickId target);
  void ClearUpmap(uint32_t pg);
  void ClearAllUpmaps();
  size_t upmap_count() const { return upmaps_.size(); }
  const std::map<uint32_t, BrickId>& upmaps() const { return upmaps_; }

  std::vector<BrickId> Targets() const;

 private:
  uint32_t pg_count_;
  std::map<BrickId, double> weights_;
  std::map<uint32_t, BrickId> upmaps_;  // pg -> pinned primary
};

}  // namespace themis

#endif  // SRC_DFS_PLACEMENT_CRUSH_MAP_H_
