// GlusterFS-style distributed hash table layout.
//
// The 32-bit hash space is partitioned into contiguous ranges, one per brick,
// sized proportionally to brick weights. A file's name-hash selects its
// "hashed" brick. When the brick set changes, `Recompute` (fix-layout)
// rebuilds the ranges; files whose hash now maps to a different brick must be
// migrated, and until they are, a small *linkfile* sits on the new hashed
// brick pointing at the brick that still holds the data — the mechanism at
// the heart of the paper's GlusterFS case study (Fig. 11).

#ifndef SRC_DFS_PLACEMENT_DHT_LAYOUT_H_
#define SRC_DFS_PLACEMENT_DHT_LAYOUT_H_

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "src/dfs/types.h"

namespace themis {

struct DhtRange {
  uint32_t start = 0;  // inclusive
  uint32_t end = 0;    // inclusive
  BrickId brick = kInvalidBrick;
};

class DhtLayout {
 public:
  DhtLayout() = default;

  // Rebuilds the layout over `bricks` with the given positive weights
  // (typically capacities). Increments the layout generation.
  void Recompute(const std::vector<std::pair<BrickId, double>>& bricks);

  // The brick whose range covers hash(name). kInvalidBrick if no layout.
  BrickId Locate(uint32_t name_hash) const;

  uint64_t generation() const { return generation_; }
  bool empty() const { return ranges_.empty(); }
  const std::vector<DhtRange>& ranges() const { return ranges_; }

  // 32-bit name hash (gluster uses Davies-Meyer; we use a splitmix fold).
  static uint32_t HashName(std::string_view name);

 private:
  std::vector<DhtRange> ranges_;  // sorted by start, covering [0, 2^32)
  uint64_t generation_ = 0;
};

}  // namespace themis

#endif  // SRC_DFS_PLACEMENT_DHT_LAYOUT_H_
