#include "src/dfs/placement/hash_ring.h"

#include <algorithm>

#include "src/common/rng.h"

namespace themis {

HashRing::HashRing(int vnodes_per_target)
    : vnodes_(vnodes_per_target > 0 ? vnodes_per_target : 1) {}

void HashRing::AddTarget(BrickId target, double weight) {
  if (positions_.count(target) != 0) {
    return;
  }
  int vnodes = static_cast<int>(static_cast<double>(vnodes_) * weight);
  vnodes = std::clamp(vnodes, 4, 4 * vnodes_);
  std::vector<uint64_t>& planted = positions_[target];
  planted.reserve(static_cast<size_t>(vnodes));
  for (int v = 0; v < vnodes; ++v) {
    uint64_t pos = HashCombine(Mix64(target + 0x9e37ULL), static_cast<uint64_t>(v));
    // Resolve (vanishingly rare) collisions by probing.
    while (ring_.count(pos) != 0) {
      pos = Mix64(pos);
    }
    ring_[pos] = target;
    planted.push_back(pos);
  }
}

void HashRing::RemoveTarget(BrickId target) {
  auto it = positions_.find(target);
  if (it == positions_.end()) {
    return;
  }
  for (uint64_t pos : it->second) {
    ring_.erase(pos);
  }
  positions_.erase(it);
}

bool HashRing::HasTarget(BrickId target) const { return positions_.count(target) != 0; }

int HashRing::VnodeCount(BrickId target) const {
  auto it = positions_.find(target);
  return it == positions_.end() ? 0 : static_cast<int>(it->second.size());
}

std::vector<BrickId> HashRing::Locate(uint64_t key_hash, int replicas) const {
  std::vector<BrickId> out;
  if (ring_.empty() || replicas <= 0) {
    return out;
  }
  size_t want = std::min(static_cast<size_t>(replicas), positions_.size());
  auto it = ring_.lower_bound(key_hash);
  size_t steps = 0;
  while (out.size() < want && steps < 2 * ring_.size()) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    BrickId candidate = it->second;
    bool seen = false;
    for (BrickId b : out) {
      if (b == candidate) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      out.push_back(candidate);
    }
    ++it;
    ++steps;
  }
  return out;
}

BrickId HashRing::Primary(uint64_t key_hash) const {
  // Non-allocating fast path for the placement hot loop: the first clockwise
  // entry is Locate(key, 1) without materializing a vector.
  if (ring_.empty()) {
    return kInvalidBrick;
  }
  auto it = ring_.lower_bound(key_hash);
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->second;
}

std::vector<BrickId> HashRing::Targets() const {
  std::vector<BrickId> out;
  out.reserve(positions_.size());
  for (const auto& [target, planted] : positions_) {
    (void)planted;
    out.push_back(target);
  }
  return out;
}

}  // namespace themis
