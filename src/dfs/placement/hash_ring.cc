#include "src/dfs/placement/hash_ring.h"

#include <algorithm>

#include "src/common/rng.h"

namespace themis {

HashRing::HashRing(int vnodes_per_target)
    : vnodes_(vnodes_per_target > 0 ? vnodes_per_target : 1) {}

void HashRing::AddTarget(BrickId target, double weight) {
  if (!targets_.insert(target).second) {
    return;
  }
  int vnodes = static_cast<int>(static_cast<double>(vnodes_) * weight);
  vnodes = std::clamp(vnodes, 4, 4 * vnodes_);
  for (int v = 0; v < vnodes; ++v) {
    uint64_t pos = HashCombine(Mix64(target + 0x9e37ULL), static_cast<uint64_t>(v));
    // Resolve (vanishingly rare) collisions by probing.
    while (ring_.count(pos) != 0) {
      pos = Mix64(pos);
    }
    ring_[pos] = target;
  }
}

void HashRing::RemoveTarget(BrickId target) {
  if (targets_.erase(target) == 0) {
    return;
  }
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == target) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

bool HashRing::HasTarget(BrickId target) const { return targets_.count(target) != 0; }

int HashRing::VnodeCount(BrickId target) const {
  int count = 0;
  for (const auto& [pos, brick] : ring_) {
    (void)pos;
    if (brick == target) {
      ++count;
    }
  }
  return count;
}

std::vector<BrickId> HashRing::Locate(uint64_t key_hash, int replicas) const {
  std::vector<BrickId> out;
  if (ring_.empty() || replicas <= 0) {
    return out;
  }
  size_t want = std::min(static_cast<size_t>(replicas), targets_.size());
  auto it = ring_.lower_bound(key_hash);
  size_t steps = 0;
  while (out.size() < want && steps < 2 * ring_.size()) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    BrickId candidate = it->second;
    bool seen = false;
    for (BrickId b : out) {
      if (b == candidate) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      out.push_back(candidate);
    }
    ++it;
    ++steps;
  }
  return out;
}

BrickId HashRing::Primary(uint64_t key_hash) const {
  std::vector<BrickId> located = Locate(key_hash, 1);
  return located.empty() ? kInvalidBrick : located.front();
}

std::vector<BrickId> HashRing::Targets() const {
  return std::vector<BrickId>(targets_.begin(), targets_.end());
}

}  // namespace themis
