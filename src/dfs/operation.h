// The operation model of the paper's test-case specification (Fig. 7):
//
//   testcase:  operation+            // operation sequence opSeq
//   operation: opt opd+              // operator + operands
//   opt:       file_op | node_op | volume_op | env_fault
//   file_op:   create | delete | append | overwrite | open
//            | truncate-overwrite | mkdir | rmdir | rename
//   node_op:   add_MN | remove_MN | add_storage | remove_storage
//   volume_op: add_volume | remove_volume | expand_volume | reduce_volume
//   env_fault: msg_loss | msg_reorder | msg_duplicate | msg_corrupt
//            | slow_disk | crash_node | clear_faults
//   opd:       fileName | nodeId | size
//
// Both client requests (file_op) and system configuration changes (node_op,
// volume_op) are expressed in this single vocabulary — the key modeling move
// of Themis. env_fault extends the vocabulary with environment faults
// (DESIGN.md §14): the operators are opt-in (never drawn by the fault-free
// grammar, whose uniform 1/t draw is over the original 17) and are executed
// by routing them into the campaign's EnvFaultInjector schedule rather than
// the cluster namespace.

#ifndef SRC_DFS_OPERATION_H_
#define SRC_DFS_OPERATION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/dfs/types.h"

namespace themis {

enum class OpKind : uint8_t {
  // file_op (client requests)
  kCreate = 0,
  kDelete,
  kAppend,
  kOverwrite,
  kOpen,
  kTruncateOverwrite,
  kMkdir,
  kRmdir,
  kRename,
  // node_op (system configuration)
  kAddMetaNode,
  kRemoveMetaNode,
  kAddStorageNode,
  kRemoveStorageNode,
  // volume_op (system configuration)
  kAddVolume,
  kRemoveVolume,
  kExpandVolume,
  kReduceVolume,
  // env_fault (environment faults — the third input class, appended after
  // the paper's 17 operators so every serialized index of the original
  // grammar is unchanged). Message faults carry a per-mille rate in `size`;
  // slow-disk carries the target node and a slowdown percent; crash carries
  // the victim node and a restart delay in virtual seconds.
  kEnvMsgLoss,
  kEnvMsgReorder,
  kEnvMsgDuplicate,
  kEnvMsgCorrupt,
  kEnvSlowDisk,
  kEnvCrashNode,
  kEnvClearFaults,
};

// Number of distinct load-related operators (t = 17 in the paper). The
// uniform 1/t draw of the fault-free grammar is over exactly these.
constexpr int kOpKindCount = 17;
// Environment-fault operators appended behind the paper grammar.
constexpr int kEnvFaultKindCount = 7;
// Every operator, env faults included. Must stay < 32: the fault injector's
// trigger windows track seen operators in a uint32_t bit mask.
constexpr int kTotalOpKindCount = kOpKindCount + kEnvFaultKindCount;
static_assert(kTotalOpKindCount < 32, "injector seen_mask is a uint32_t");

// Environment-fault operand grammar bounds (DESIGN.md §14). The generator
// draws inside them, the mutator's repair pass clamps stale operands back to
// them, and the EnvFaultInjector clamps hand-written replay logs the same
// way — so an in-grammar opSeq stays in-grammar under any mutation chain.
inline constexpr uint64_t kEnvMinRatePermille = 1;
inline constexpr uint64_t kEnvMaxRatePermille = 500;
inline constexpr uint64_t kEnvMinSlowFactorPercent = 110;
inline constexpr uint64_t kEnvMaxSlowFactorPercent = 1000;
inline constexpr uint64_t kEnvMinCrashDelaySeconds = 1;
inline constexpr uint64_t kEnvMaxCrashDelaySeconds = 3600;

enum class OpClass : uint8_t {
  kFile = 0,      // client request input space
  kNode = 1,      // configuration input space (membership)
  kVolume = 2,    // configuration input space (volumes)
  kEnvFault = 3,  // environment-fault input space (faults, crashes)
};

OpClass ClassOf(OpKind kind);
bool IsConfigOp(OpKind kind);   // node_op or volume_op
bool IsEnvFaultOp(OpKind kind); // env_fault
std::string_view OpKindName(OpKind kind);
OpKind OpKindFromIndex(int index);     // index in [0, kOpKindCount)
OpKind OpKindFromTotalIndex(int index);  // index in [0, kTotalOpKindCount)

// A fully instantiated operation. Which fields are meaningful depends on the
// operator, mirroring "the number and contents of operands opd are determined
// by the operator opt".
struct Operation {
  OpKind kind = OpKind::kOpen;
  std::string path;    // fileName operand (file ops; also rename source)
  std::string path2;   // rename target
  NodeId node = kInvalidNode;    // nodeId operand (node ops)
  BrickId brick = kInvalidBrick; // volume ops target brick
  uint64_t size = 0;   // size operand (bytes)

  // Memoized interned-path resolution (dfs/path_table.h): `generation`
  // names the PathTable id space the ids were minted against; ids are
  // re-resolved on mismatch. Stamped lazily by NamespaceTree::ResolveOpPath*
  // on first execution, carried along by copies (mutation, seed pool,
  // double-check re-execution), and never serialized. Any code that rewrites
  // `path`/`path2` on an op that may already have executed must reset this
  // to {} — the ids would otherwise keep naming the old operands.
  struct PathCache {
    uint64_t generation = 0;
    PathId id = kInvalidPathId;
    PathId id2 = kInvalidPathId;
  };
  mutable PathCache path_cache;

  std::string ToString() const;
};

// Outcome of executing one operation against a cluster.
struct OpResult {
  Status status;
  SimDuration cost = 0;       // virtual time consumed
  uint64_t bytes_moved = 0;   // client data written/read
};

}  // namespace themis

#endif  // SRC_DFS_OPERATION_H_
