#include "src/dfs/node.h"

// Node types are plain data; this TU keeps the header honest.
namespace themis {
static_assert(sizeof(StorageNode) > 0);
}  // namespace themis
