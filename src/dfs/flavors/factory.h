// Creates a simulated cluster for a flavor.

#ifndef SRC_DFS_FLAVORS_FACTORY_H_
#define SRC_DFS_FLAVORS_FACTORY_H_

#include <memory>

#include "src/dfs/cluster.h"

namespace themis {

// Builds the flavor's default configuration, overriding the RNG seed and the
// initial node counts when the caller passes non-zero values.
std::unique_ptr<DfsCluster> MakeCluster(Flavor flavor, uint64_t seed,
                                        int storage_nodes = 0, int meta_nodes = 0);

// The flavor's default configuration (before overrides).
ClusterConfig DefaultConfigFor(Flavor flavor);

}  // namespace themis

#endif  // SRC_DFS_FLAVORS_FACTORY_H_
