// GeoFS: an EOS-style geo-aware cluster for production-scale campaigns
// (DESIGN.md §15). Storage nodes carry geotags (site, rack) in a geotag
// tree and are packed into scheduling groups that span sites; placement is
// two-level — pick a scheduling group by free-space (power-of-two-choices
// over the per-group load aggregates), then pick replica nodes within the
// group spreading across distinct sites. Rebalancing runs a site-failover
// stage (hottest site drains toward the coldest) before generic leveling.
// Built to run at 1k-10k heterogeneous-capacity nodes: every per-op path
// goes through the cluster's per-group indexes, never a fleet scan.

#ifndef SRC_DFS_FLAVORS_GEO_LIKE_H_
#define SRC_DFS_FLAVORS_GEO_LIKE_H_

#include <string>
#include <vector>

#include "src/dfs/cluster.h"
#include "src/dfs/placement/geo_tree.h"

namespace themis {

class GeoLikeCluster : public DfsCluster {
 public:
  explicit GeoLikeCluster(ClusterConfig config = DefaultConfig());

  static ClusterConfig DefaultConfig();

  const GeoTreeEngine& engine() const { return engine_; }
  uint32_t balancer_crashes() const { return balancer_crashes_; }
  // Utilization (used, capacity) per site over serving nodes — the view the
  // site-failover stage levels. Index = site id.
  std::vector<std::pair<uint64_t, uint64_t>> PerSiteUsedCap() const;

 protected:
  std::vector<BrickId> PlaceChunk(const std::string& path, uint32_t chunk_index,
                                  uint64_t bytes) override;
  MigrationPlan BuildRebalancePlan() override;
  // Decommission releases the node's geotag/group slot in O(1); the full
  // fleet reconcile runs only on balancer takeover, not per topology change.
  void OnStorageNodeDecommissioned(NodeId id) override;
  void OnTopologyCleared() override;
  void OnBalancerCrashed() override;
  void OnBalancerRestarted() override;
  // Load groups coincide with scheduling groups: the geotag tree admits the
  // node and the cluster's per-group aggregates follow its grouping.
  uint32_t PickLoadGroup(NodeId id) override;
  // Heterogeneous fleet: capacity class derived deterministically from the
  // node id (1x / 2x / 4x the configured brick capacity).
  uint64_t BrickCapacityFor(NodeId id) const override;
  // Checkpointing: geotags and group membership are admission-history state
  // (fewest-first placement), persisted alongside the cluster's v5 group
  // table and re-validated against it on restore.
  void SaveFlavorState(SnapshotWriter& writer) const override;
  Status RestoreFlavorState(SnapshotReader& reader) override;

 private:
  // Reconcile the geotag tree with the full topology: decommissioned
  // tombstones free their slots. O(fleet) — balancer takeover/restore only.
  void ReconcileEngine();
  // First online brick of `node` with room for `bytes`, else kInvalidBrick.
  BrickId BrickWithRoom(NodeId node, uint64_t bytes) const;
  // Replica pick within one scheduling group: distinct-site first pass from
  // a hash-derived start offset, then a fill pass without the constraint.
  void PickWithinGroup(uint32_t group, uint64_t hash, uint64_t bytes,
                       std::vector<BrickId>& chosen) const;

  GeoTreeEngine engine_;
  uint32_t balancer_crashes_ = 0;  // env-fault crash census (persisted)
};

}  // namespace themis

#endif  // SRC_DFS_FLAVORS_GEO_LIKE_H_
