// HDFS-like cluster: a central NameNode tracks DataNodes in a cluster map;
// block placement sorts targets by load through a weight tree (the
// sortByLoad structure of the paper's Fig. 4); the Balancer runs
// periodically with a 10% utilization threshold (the HDFS default).

#ifndef SRC_DFS_FLAVORS_HDFS_LIKE_H_
#define SRC_DFS_FLAVORS_HDFS_LIKE_H_

#include <string>
#include <vector>

#include "src/dfs/cluster.h"
#include "src/dfs/placement/weighted_tree.h"

namespace themis {

class HdfsLikeCluster : public DfsCluster {
 public:
  explicit HdfsLikeCluster(ClusterConfig config = DefaultConfig());

  static ClusterConfig DefaultConfig();

  // The NameNode's view of registered DataNode bricks ("clusterMap").
  const std::vector<BrickId>& cluster_map() const { return cluster_map_; }
  uint32_t balancer_crashes() const { return balancer_crashes_; }

 protected:
  std::vector<BrickId> PlaceChunk(const std::string& path, uint32_t chunk_index,
                                  uint64_t bytes) override;
  MigrationPlan BuildRebalancePlan() override;
  void OnTopologyChangedInternal() override;
  // Env-fault crash model (DESIGN.md §14): the Balancer tool is stateless —
  // a crash only interrupts the in-flight iteration; the restarted Balancer
  // begins by fetching a fresh DataNode report from the NameNode.
  void OnBalancerCrashed() override;
  void OnBalancerRestarted() override;
  // Checkpointing: only the env-fault crash census is history; the cluster
  // map is derived and rebuilt by the base restore's topology callback.
  void SaveFlavorState(SnapshotWriter& writer) const override;
  Status RestoreFlavorState(SnapshotReader& reader) override;

 private:
  std::vector<BrickId> cluster_map_;
  uint32_t balancer_crashes_ = 0;  // env-fault crash census (persisted)
};

}  // namespace themis

#endif  // SRC_DFS_FLAVORS_HDFS_LIKE_H_
