// HDFS-like cluster: a central NameNode tracks DataNodes in a cluster map;
// block placement sorts targets by load through a weight tree (the
// sortByLoad structure of the paper's Fig. 4); the Balancer runs
// periodically with a 10% utilization threshold (the HDFS default).

#ifndef SRC_DFS_FLAVORS_HDFS_LIKE_H_
#define SRC_DFS_FLAVORS_HDFS_LIKE_H_

#include <string>
#include <vector>

#include "src/dfs/cluster.h"
#include "src/dfs/placement/weighted_tree.h"

namespace themis {

class HdfsLikeCluster : public DfsCluster {
 public:
  explicit HdfsLikeCluster(ClusterConfig config = DefaultConfig());

  static ClusterConfig DefaultConfig();

  // The NameNode's view of registered DataNode bricks ("clusterMap").
  const std::vector<BrickId>& cluster_map() const { return cluster_map_; }

 protected:
  std::vector<BrickId> PlaceChunk(const std::string& path, uint32_t chunk_index,
                                  uint64_t bytes) override;
  MigrationPlan BuildRebalancePlan() override;
  void OnTopologyChangedInternal() override;

 private:
  std::vector<BrickId> cluster_map_;
};

}  // namespace themis

#endif  // SRC_DFS_FLAVORS_HDFS_LIKE_H_
