#include "src/dfs/flavors/geo_like.h"

#include <algorithm>
#include <map>

#include "src/common/rng.h"
#include "src/common/strings.h"

namespace themis {

namespace {

// Capacity classes for the heterogeneous fleet: 1x / 2x / 4x the configured
// brick capacity, spread deterministically over node ids. Roughly half the
// fleet stays at 1x so small bricks remain the common case.
constexpr uint64_t kCapacityMultipliers[4] = {1, 1, 2, 4};

// Site-failover moves per round. Rebalance is periodic, not per-op, but a
// 10k-node hot site could otherwise enqueue an unbounded rebalance-list.
constexpr size_t kMaxSiteMovesPerRound = 256;

uint64_t GeoObjectHash(const std::string& path, uint32_t chunk_index) {
  uint64_t h = Mix64(chunk_index * 0x9e3779b97f4a7c15ULL + 0x6e05ULL);
  for (char c : path) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

}  // namespace

ClusterConfig GeoLikeCluster::DefaultConfig() {
  ClusterConfig config;
  config.native_threshold = 0.10;
  config.continuous_balancing = false;
  config.balancer_period = Minutes(5);
  config.replication = 2;
  // Production-scale defaults: three sites, four racks each, scheduling
  // groups of 16 nodes. Campaigns raise initial_storage_nodes to 1k-10k;
  // the geotag tree and group count scale with it automatically.
  config.geo_sites = 3;
  config.geo_racks_per_site = 4;
  config.geo_group_size = 16;
  // EFBIG admission cap (32 chunks at the 2 GiB stripe unit). EOS-style
  // production deployments enforce one; without it a boundary
  // "write-the-free-space" op on a petabyte fleet costs O(fleet capacity)
  // in chunk placements, and per-op cost must stay O(1) at 10k nodes.
  config.max_file_size = 64 * kGiB;
  config.initial_storage_nodes = 48;
  config.min_storage_nodes = 8;
  config.max_storage_nodes = 96;
  return config;
}

GeoLikeCluster::GeoLikeCluster(ClusterConfig config)
    : DfsCluster(config, Flavor::kGeo, "geo-like"),
      engine_(config.geo_sites > 0 ? config.geo_sites : 3,
              config.geo_racks_per_site > 0 ? config.geo_racks_per_site : 4,
              config.geo_group_size > 0 ? config.geo_group_size : 16) {
  BuildInitialTopology();
}

uint32_t GeoLikeCluster::PickLoadGroup(NodeId id) { return engine_.AssignNode(id); }

uint64_t GeoLikeCluster::BrickCapacityFor(NodeId id) const {
  return config_.brick_capacity * kCapacityMultipliers[Mix64(id) & 3];
}

void GeoLikeCluster::OnTopologyCleared() { engine_.Clear(); }

void GeoLikeCluster::OnStorageNodeDecommissioned(NodeId id) {
  // The decommissioned node frees its site/rack/group slot so future
  // admissions refill it; crashed nodes never take this path — they keep
  // their coordinates because a restart must bring them back where they were.
  if (engine_.Contains(id)) {
    engine_.RemoveNode(id);
  }
}

void GeoLikeCluster::ReconcileEngine() {
  // Full sweep of the fleet for offline tombstones. Per-op decommissions are
  // handled incrementally by OnStorageNodeDecommissioned; this O(fleet) pass
  // only covers takeover after a balancer crash, where membership may have
  // moved while the balancer was down.
  for (const auto& [id, node] : storage_nodes()) {
    if (!node.online && engine_.Contains(id)) {
      engine_.RemoveNode(id);
    }
  }
}

BrickId GeoLikeCluster::BrickWithRoom(NodeId node, uint64_t bytes) const {
  const StorageNode* sn = FindStorageNode(node);
  if (sn == nullptr) {
    return kInvalidBrick;
  }
  for (BrickId b : sn->bricks) {
    const Brick* brick = FindBrick(b);
    if (brick != nullptr && brick->online && brick->FreeBytes() >= bytes) {
      return b;
    }
  }
  return kInvalidBrick;
}

void GeoLikeCluster::PickWithinGroup(uint32_t group, uint64_t hash, uint64_t bytes,
                                     std::vector<BrickId>& chosen) const {
  const std::vector<NodeId>& members = LoadGroupServingNodes(group);
  if (members.empty()) {
    return;
  }
  size_t start = static_cast<size_t>(hash % members.size());
  int want = config_.replication;
  // Pass 1: distinct sites only (the cross-site replica spread the
  // scheduling-group layout exists for). Pass 2 fills what is left.
  for (int pass = 0; pass < 2 && static_cast<int>(chosen.size()) < want; ++pass) {
    for (size_t i = 0; i < members.size(); ++i) {
      NodeId node = members[(start + i) % members.size()];
      BrickId brick = BrickWithRoom(node, bytes);
      if (brick == kInvalidBrick ||
          std::find(chosen.begin(), chosen.end(), brick) != chosen.end()) {
        continue;
      }
      if (pass == 0) {
        uint16_t site = engine_.TagOf(node).site;
        bool site_taken = false;
        for (BrickId existing : chosen) {
          const Brick* eb = FindBrick(existing);
          if (eb != nullptr && engine_.TagOf(eb->node).site == site) {
            site_taken = true;
            break;
          }
        }
        if (site_taken) {
          continue;
        }
      }
      chosen.push_back(brick);
      if (static_cast<int>(chosen.size()) >= want) {
        return;
      }
    }
  }
}

std::vector<BrickId> GeoLikeCluster::PlaceChunk(const std::string& path,
                                                uint32_t chunk_index, uint64_t bytes) {
  std::vector<BrickId> chosen;
  uint32_t groups = engine_.group_count();
  if (groups == 0) {
    return chosen;
  }
  uint64_t h = GeoObjectHash(path, chunk_index);
  // Two-level placement: power-of-two-choices between two hash-derived
  // scheduling groups on free-space fraction (the per-group aggregate is a
  // dirty-refresh read — O(group size) worst case, O(1) amortized), then
  // replica spread within the winner.
  uint32_t g1 = static_cast<uint32_t>(h % groups);
  uint32_t g2 = static_cast<uint32_t>((h >> 32) % groups);
  auto fill_fraction = [this](uint32_t g) {
    auto [used, cap] = LoadGroupUsedCap(g);
    return cap == 0 ? 1.0 : static_cast<double>(used) / static_cast<double>(cap);
  };
  uint32_t group = g1;
  if (g2 != g1 && fill_fraction(g2) < fill_fraction(g1)) {
    group = g2;
  }
  PickWithinGroup(group, h, bytes, chosen);
  if (static_cast<int>(chosen.size()) >= config_.replication) {
    return chosen;
  }
  // Preferred group full (or depleted by crashes): geo failover — try every
  // other group, nearest index first, before the flat fleet walk.
  for (uint32_t offset = 1; offset < groups; ++offset) {
    PickWithinGroup((group + offset) % groups, h, bytes, chosen);
    if (static_cast<int>(chosen.size()) >= config_.replication) {
      return chosen;
    }
  }
  for (BrickId id : ServingBricks()) {
    const Brick* brick = FindBrick(id);
    if (brick->FreeBytes() >= bytes &&
        std::find(chosen.begin(), chosen.end(), id) == chosen.end()) {
      chosen.push_back(id);
      if (static_cast<int>(chosen.size()) >= config_.replication) {
        break;
      }
    }
  }
  return chosen;
}

std::vector<std::pair<uint64_t, uint64_t>> GeoLikeCluster::PerSiteUsedCap() const {
  std::vector<std::pair<uint64_t, uint64_t>> sites(
      static_cast<size_t>(engine_.sites()), {0, 0});
  for (NodeId id : ServingStorageNodeIds()) {
    uint16_t site = engine_.TagOf(id).site;
    const StorageNode* node = FindStorageNode(id);
    if (site >= sites.size() || node == nullptr) {
      continue;
    }
    for (BrickId b : node->bricks) {
      const Brick* brick = FindBrick(b);
      if (brick != nullptr && brick->online) {
        sites[site].first += brick->used_bytes;
        sites[site].second += brick->capacity_bytes;
      }
    }
  }
  return sites;
}

MigrationPlan GeoLikeCluster::BuildRebalancePlan() {
  EmitBalancerState(BalancerState::kGeoSiteDrain);
  MigrationPlan plan;
  std::map<BrickId, uint64_t> planned_inflow;
  // Stage 1: site failover. If the hottest site's utilization runs away from
  // the coldest's, drain the hottest site's fullest bricks toward the
  // coldest site's emptiest — group-mean leveling alone cannot see this
  // skew, because every scheduling group spans sites.
  std::vector<std::pair<uint64_t, uint64_t>> sites = PerSiteUsedCap();
  int hot = -1, cold = -1;
  double hot_frac = 0.0, cold_frac = 0.0;
  for (size_t s = 0; s < sites.size(); ++s) {
    if (sites[s].second == 0) {
      continue;
    }
    double frac = static_cast<double>(sites[s].first) /
                  static_cast<double>(sites[s].second);
    if (hot < 0 || frac > hot_frac) {
      hot = static_cast<int>(s);
      hot_frac = frac;
    }
    if (cold < 0 || frac < cold_frac) {
      cold = static_cast<int>(s);
      cold_frac = frac;
    }
  }
  if (hot >= 0 && cold >= 0 && hot != cold &&
      hot_frac - cold_frac > config_.native_threshold * 0.5) {
    struct SiteBrick {
      double fraction;
      BrickId id;
    };
    std::vector<SiteBrick> donors, receivers;
    for (BrickId id : ServingBricks()) {
      const Brick* brick = FindBrick(id);
      if (brick->capacity_bytes == 0) {
        continue;
      }
      uint16_t site = engine_.TagOf(brick->node).site;
      double fraction = static_cast<double>(brick->used_bytes) /
                        static_cast<double>(brick->capacity_bytes);
      if (site == hot) {
        donors.push_back({fraction, id});
      } else if (site == cold) {
        receivers.push_back({fraction, id});
      }
    }
    std::stable_sort(donors.begin(), donors.end(),
                     [](const SiteBrick& a, const SiteBrick& b) {
                       return a.fraction > b.fraction;
                     });
    std::stable_sort(receivers.begin(), receivers.end(),
                     [](const SiteBrick& a, const SiteBrick& b) {
                       return a.fraction < b.fraction;
                     });
    // Budget: close half the gap (the other half belongs to the next round —
    // oscillating past the mean is how real geo-schedulers thrash).
    uint64_t budget = static_cast<uint64_t>(
        (hot_frac - cold_frac) * 0.5 * static_cast<double>(sites[hot].second));
    size_t recv_idx = 0;
    for (const SiteBrick& donor : donors) {
      if (budget == 0 || recv_idx >= receivers.size() ||
          plan.size() >= kMaxSiteMovesPerRound) {
        break;
      }
      for (const auto& [file, chunk_index] : ChunksOnBrickRef(donor.id)) {
        if (budget == 0 || recv_idx >= receivers.size() ||
            plan.size() >= kMaxSiteMovesPerRound) {
          break;
        }
        auto layout_it = file_layouts().find(file);
        if (layout_it == file_layouts().end() ||
            chunk_index >= layout_it->second.chunks.size()) {
          continue;
        }
        const ChunkPlacement& chunk = layout_it->second.chunks[chunk_index];
        // Advance past receivers without room for this chunk.
        BrickId to = kInvalidBrick;
        while (recv_idx < receivers.size()) {
          BrickId candidate = receivers[recv_idx].id;
          const Brick* rb = FindBrick(candidate);
          uint64_t inflow = planned_inflow[candidate];
          if (rb == nullptr || !rb->online ||
              rb->FreeBytes() < inflow + chunk.bytes) {
            ++recv_idx;
            continue;
          }
          to = candidate;
          break;
        }
        if (to == kInvalidBrick || chunk.HasReplicaOn(to)) {
          continue;
        }
        uint64_t moved = std::min(budget, chunk.bytes);
        budget -= moved;
        planned_inflow[to] += chunk.bytes;
        plan.push_back(ChunkMove{.file = file,
                                 .chunk_index = chunk_index,
                                 .from = donor.id,
                                 .to = to,
                                 .bytes = chunk.bytes,
                                 .reason = MoveReason::kRebalance,
                                 .hash_driven = false});
      }
    }
  }
  // Stage 2: generic capacity-proportional leveling with whatever budget the
  // site stage already committed per receiver.
  MigrationPlan leveling =
      PlanLevelingByUsage(config_.native_threshold * 0.5, &planned_inflow);
  plan.insert(plan.end(), leveling.begin(), leveling.end());
  return plan;
}

void GeoLikeCluster::OnBalancerCrashed() {
  // The geotag tree and group membership live in the shared namespace store
  // (EOS keeps them in QuarkDB); a balancer crash loses only the in-flight
  // rebalance-list, already dropped by the base class.
  ++balancer_crashes_;
}

void GeoLikeCluster::OnBalancerRestarted() {
  // Takeover reconciles the persisted tree against whatever membership
  // changed while the balancer was down.
  ReconcileEngine();
}

void GeoLikeCluster::SaveFlavorState(SnapshotWriter& writer) const {
  uint64_t count = 0;
  for (const auto& [id, node] : storage_nodes()) {
    (void)node;
    if (engine_.Contains(id)) {
      ++count;
    }
  }
  writer.U64(count);
  for (const auto& [id, node] : storage_nodes()) {
    (void)node;
    if (!engine_.Contains(id)) {
      continue;
    }
    GeoTag tag = engine_.TagOf(id);
    writer.U32(id);
    writer.U32(tag.site);
    writer.U32(tag.rack);
  }
  writer.U32(balancer_crashes_);
}

Status GeoLikeCluster::RestoreFlavorState(SnapshotReader& reader) {
  engine_.Clear();
  uint64_t count = reader.Count(4 + 4 + 4);
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    NodeId id = reader.U32();
    uint32_t site = reader.U32();
    uint32_t rack = reader.U32();
    if (!reader.ok()) {
      break;
    }
    if (FindStorageNode(id) == nullptr) {
      reader.Fail(Sprintf("geotag references unknown storage node %u", id));
      break;
    }
    if (site >= static_cast<uint32_t>(engine_.sites()) ||
        rack >= static_cast<uint32_t>(engine_.racks_per_site())) {
      reader.Fail(Sprintf("geotag (%u, %u) for node %u out of tree bounds",
                          site, rack, id));
      break;
    }
    uint32_t group = LoadGroupOf(id);
    if (group == kInvalidLoadGroup) {
      reader.Fail(Sprintf("geotagged node %u missing load group", id));
      break;
    }
    engine_.RestoreNode(id, GeoTag{static_cast<uint16_t>(site),
                                   static_cast<uint16_t>(rack)}, group);
  }
  balancer_crashes_ = reader.U32();
  return reader.status();
}

}  // namespace themis
