// LeoFS-like cluster: objects are placed on a consistent-hash ring with
// virtual nodes; gateway (metadata) nodes front the storage cluster; ring
// changes enqueue an asynchronous rebalance that moves the affected arcs'
// objects (takeover / rebalance-list semantics).

#ifndef SRC_DFS_FLAVORS_LEO_LIKE_H_
#define SRC_DFS_FLAVORS_LEO_LIKE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/dfs/cluster.h"
#include "src/dfs/placement/hash_ring.h"

namespace themis {

class LeoLikeCluster : public DfsCluster {
 public:
  explicit LeoLikeCluster(ClusterConfig config = DefaultConfig());

  static ClusterConfig DefaultConfig();

  const HashRing& ring() const { return ring_; }
  uint32_t balancer_crashes() const { return balancer_crashes_; }

 protected:
  std::vector<BrickId> PlaceChunk(const std::string& path, uint32_t chunk_index,
                                  uint64_t bytes) override;
  MigrationPlan BuildRebalancePlan() override;
  void OnTopologyChangedInternal() override;
  void OnNamespaceRenamed() override;
  // Env-fault crash model (DESIGN.md §14): the ring is persisted per node in
  // LeoFS; a restarted manager reloads it from the stored plantings instead
  // of recomputing from capacity (which would lose the hysteresis history).
  void OnBalancerCrashed() override;
  void OnBalancerRestarted() override;
  bool ChunkPinnedToBrick(FileId file, uint32_t chunk_index, BrickId brick) const override;
  // Checkpointing: planted ring weights are history-dependent (the ±25%/−20%
  // hysteresis in OnTopologyChangedInternal), so the ring is rebuilt from the
  // saved weights, not recomputed from capacity.
  void SaveFlavorState(SnapshotWriter& writer) const override;
  Status RestoreFlavorState(SnapshotReader& reader) override;

 private:
  static uint64_t ObjectHash(const std::string& path, uint32_t chunk_index);
  // Memoized ring primary for a stored chunk. PathOf (a tree walk plus a
  // string build) and the per-character object hash dominate rebalance
  // planning and the leveler's pin checks on large namespaces; the primary
  // only changes when the ring is re-planted or a rename re-paths the file,
  // so the cache lives until one of those events clears it. FileIds are
  // allocated monotonically and never reused, so entries for deleted files
  // are merely dead weight, not wrong answers. `known_path` skips the PathOf
  // on a miss when the caller already resolved it.
  BrickId PrimaryFor(FileId file, uint32_t chunk_index,
                     const std::string* known_path = nullptr) const;

  HashRing ring_;
  std::map<BrickId, double> ring_weights_;  // weight each target was planted with
  uint32_t balancer_crashes_ = 0;           // env-fault crash census (persisted)
  mutable std::map<std::pair<FileId, uint32_t>, BrickId> primary_cache_;
};

}  // namespace themis

#endif  // SRC_DFS_FLAVORS_LEO_LIKE_H_
