#include "src/dfs/flavors/ceph_like.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/common/strings.h"

namespace themis {

ClusterConfig CephLikeCluster::DefaultConfig() {
  ClusterConfig config;
  config.native_threshold = 0.12;  // mgr balancer aims tighter than HDFS
  // "Real time" balancing (paper §4.3) = the mgr balancer's short sleep
  // interval (60 s), not a check on every single client operation.
  config.continuous_balancing = false;
  config.balancer_period = Seconds(60);
  config.replication = 2;
  return config;
}

CephLikeCluster::CephLikeCluster(ClusterConfig config)
    : DfsCluster(config, Flavor::kCeph, "ceph-like"), crush_(256) {
  BuildInitialTopology();
}

void CephLikeCluster::OnTopologyChangedInternal() {
  // CRUSH weights follow device capacity.
  for (BrickId id : crush_.Targets()) {
    if (FindBrick(id) == nullptr) {
      crush_.RemoveTarget(id);
    }
  }
  std::vector<BrickId> serving = ServingBricks();
  for (BrickId id : crush_.Targets()) {
    if (std::find(serving.begin(), serving.end(), id) == serving.end()) {
      crush_.RemoveTarget(id);
    }
  }
  for (BrickId id : serving) {
    const Brick* brick = FindBrick(id);
    crush_.SetTargetWeight(id, static_cast<double>(brick->capacity_bytes) /
                                   static_cast<double>(kGiB));
  }
}

uint32_t CephLikeCluster::PgForObject(const std::string& path,
                                      uint32_t chunk_index) const {
  uint64_t h = Mix64(chunk_index + 0x12345ULL);
  for (char c : path) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return crush_.PgOf(h);
}

std::vector<BrickId> CephLikeCluster::PlaceChunk(const std::string& path,
                                                 uint32_t chunk_index, uint64_t bytes) {
  uint32_t pg = PgForObject(path, chunk_index);
  std::vector<BrickId> mapped = crush_.Map(pg, config_.replication);
  std::vector<BrickId> chosen;
  for (BrickId id : mapped) {
    const Brick* brick = FindBrick(id);
    if (brick != nullptr && brick->online && brick->FreeBytes() >= bytes) {
      chosen.push_back(id);
    }
  }
  if (!chosen.empty()) {
    return chosen;
  }
  // CRUSH targets are full: fall back to any device with room (Ceph would
  // return ENOSPC per device and retry remapped).
  for (BrickId id : ServingBricks()) {
    const Brick* brick = FindBrick(id);
    if (brick->FreeBytes() >= bytes) {
      chosen.push_back(id);
      if (static_cast<int>(chosen.size()) >= config_.replication) {
        break;
      }
    }
  }
  return chosen;
}

MigrationPlan CephLikeCluster::BuildRebalancePlan() {
  // The upmap balancer pins PGs mapped to overfull devices onto underfull
  // ones, then backfills the data. We pin first, then emit the chunk moves
  // that the backfill would perform.
  EmitBalancerState(BalancerState::kCephUpmapCompute);
  std::vector<BrickId> serving = ServingBricks();
  if (serving.size() < 2) {
    return {};
  }
  uint64_t total_used = TotalServingUsedBytes();
  uint64_t total_capacity = TotalCapacityBytes();
  if (total_capacity == 0) {
    return {};
  }
  double fleet = static_cast<double>(total_used) / static_cast<double>(total_capacity);
  BrickId most_loaded = kInvalidBrick;
  BrickId least_loaded = kInvalidBrick;
  double max_frac = -1.0;
  double min_frac = 2.0;
  for (BrickId id : serving) {
    double frac = FindBrick(id)->UsedFraction();
    if (frac > max_frac) {
      max_frac = frac;
      most_loaded = id;
    }
    if (frac < min_frac) {
      min_frac = frac;
      least_loaded = id;
    }
  }
  if (most_loaded != kInvalidBrick && least_loaded != kInvalidBrick &&
      max_frac > fleet + config_.native_threshold * 0.5) {
    // Pin a handful of PGs whose CRUSH primary is the overfull device.
    int pinned = 0;
    for (uint32_t pg = 0; pg < crush_.pg_count() && pinned < 8; ++pg) {
      std::vector<BrickId> mapped = crush_.Map(pg, 1);
      if (!mapped.empty() && mapped.front() == most_loaded) {
        crush_.Upmap(pg, least_loaded);
        ++pinned;
      }
    }
  }
  return PlanLevelingByUsage(config_.native_threshold * 0.5);
}

void CephLikeCluster::OnBalancerCrashed() {
  // Upmap pins are OSDMap state, not mgr state: they survive the crash
  // untouched. Only the census advances.
  ++balancer_crashes_;
}

void CephLikeCluster::OnBalancerRestarted() {
  // mgr startup sanity pass: drop pins whose target device is gone or down,
  // so the resumed balancer never backfills toward a dead OSD.
  std::vector<uint32_t> stale;
  for (const auto& [pg, target] : crush_.upmaps()) {
    const Brick* brick = FindBrick(target);
    if (brick == nullptr || !brick->online) {
      stale.push_back(pg);
    }
  }
  for (uint32_t pg : stale) {
    crush_.ClearUpmap(pg);
  }
}

void CephLikeCluster::SaveFlavorState(SnapshotWriter& writer) const {
  writer.U64(crush_.upmaps().size());
  for (const auto& [pg, target] : crush_.upmaps()) {
    writer.U32(pg);
    writer.U32(target);
  }
  writer.U32(balancer_crashes_);
}

Status CephLikeCluster::RestoreFlavorState(SnapshotReader& reader) {
  // Weights were already recomputed from the restored topology by the base
  // restore's OnTopologyChangedInternal call; only the pins are history.
  crush_.ClearAllUpmaps();
  uint64_t count = reader.Count(4 + 4);
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    uint32_t pg = reader.U32();
    BrickId target = reader.U32();
    if (reader.ok() && !crush_.HasTarget(target)) {
      reader.Fail(Sprintf("upmap pins pg %u to unknown crush target %u", pg,
                          target));
      break;
    }
    crush_.Upmap(pg, target);
  }
  balancer_crashes_ = reader.U32();
  return reader.status();
}

}  // namespace themis
