#include "src/dfs/flavors/factory.h"

#include <algorithm>

#include "src/dfs/flavors/ceph_like.h"
#include "src/dfs/flavors/geo_like.h"
#include "src/dfs/flavors/gluster_like.h"
#include "src/dfs/flavors/hdfs_like.h"
#include "src/dfs/flavors/leo_like.h"

namespace themis {

ClusterConfig DefaultConfigFor(Flavor flavor) {
  switch (flavor) {
    case Flavor::kHdfs:
      return HdfsLikeCluster::DefaultConfig();
    case Flavor::kCeph:
      return CephLikeCluster::DefaultConfig();
    case Flavor::kGluster:
      return GlusterLikeCluster::DefaultConfig();
    case Flavor::kLeo:
      return LeoLikeCluster::DefaultConfig();
    case Flavor::kCustom:
      return ClusterConfig{};
    case Flavor::kGeo:
      return GeoLikeCluster::DefaultConfig();
  }
  return ClusterConfig{};
}

std::unique_ptr<DfsCluster> MakeCluster(Flavor flavor, uint64_t seed, int storage_nodes,
                                        int meta_nodes) {
  ClusterConfig config = DefaultConfigFor(flavor);
  config.rng_seed = seed;
  if (storage_nodes > 0) {
    config.initial_storage_nodes = storage_nodes;
  }
  if (meta_nodes > 0) {
    config.initial_meta_nodes = meta_nodes;
  }
  // Production-scale campaigns pass storage_nodes in the hundreds or
  // thousands; keep the membership-churn headroom proportional instead of
  // letting a small default max_storage_nodes forbid every add op. The
  // paper-scale defaults (8-10 nodes) are unaffected: max(16, 10+1) == 16.
  config.max_storage_nodes =
      std::max(config.max_storage_nodes,
               config.initial_storage_nodes + config.initial_storage_nodes / 8);
  switch (flavor) {
    case Flavor::kHdfs:
      return std::make_unique<HdfsLikeCluster>(config);
    case Flavor::kCeph:
      return std::make_unique<CephLikeCluster>(config);
    case Flavor::kGluster:
      return std::make_unique<GlusterLikeCluster>(config);
    case Flavor::kLeo:
      return std::make_unique<LeoLikeCluster>(config);
    case Flavor::kCustom:
      return nullptr;
    case Flavor::kGeo:
      return std::make_unique<GeoLikeCluster>(config);
  }
  return nullptr;
}

}  // namespace themis
