#include "src/dfs/flavors/factory.h"

#include "src/dfs/flavors/ceph_like.h"
#include "src/dfs/flavors/gluster_like.h"
#include "src/dfs/flavors/hdfs_like.h"
#include "src/dfs/flavors/leo_like.h"

namespace themis {

ClusterConfig DefaultConfigFor(Flavor flavor) {
  switch (flavor) {
    case Flavor::kHdfs:
      return HdfsLikeCluster::DefaultConfig();
    case Flavor::kCeph:
      return CephLikeCluster::DefaultConfig();
    case Flavor::kGluster:
      return GlusterLikeCluster::DefaultConfig();
    case Flavor::kLeo:
      return LeoLikeCluster::DefaultConfig();
    case Flavor::kCustom:
      return ClusterConfig{};
  }
  return ClusterConfig{};
}

std::unique_ptr<DfsCluster> MakeCluster(Flavor flavor, uint64_t seed, int storage_nodes,
                                        int meta_nodes) {
  ClusterConfig config = DefaultConfigFor(flavor);
  config.rng_seed = seed;
  if (storage_nodes > 0) {
    config.initial_storage_nodes = storage_nodes;
  }
  if (meta_nodes > 0) {
    config.initial_meta_nodes = meta_nodes;
  }
  switch (flavor) {
    case Flavor::kHdfs:
      return std::make_unique<HdfsLikeCluster>(config);
    case Flavor::kCeph:
      return std::make_unique<CephLikeCluster>(config);
    case Flavor::kGluster:
      return std::make_unique<GlusterLikeCluster>(config);
    case Flavor::kLeo:
      return std::make_unique<LeoLikeCluster>(config);
    case Flavor::kCustom:
      return nullptr;
  }
  return nullptr;
}

}  // namespace themis
