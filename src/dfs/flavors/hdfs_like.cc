#include "src/dfs/flavors/hdfs_like.h"

#include <algorithm>

namespace themis {

ClusterConfig HdfsLikeCluster::DefaultConfig() {
  ClusterConfig config;
  config.native_threshold = 0.10;  // HDFS Balancer default
  config.continuous_balancing = false;
  config.balancer_period = Minutes(2);
  config.replication = 2;
  return config;
}

HdfsLikeCluster::HdfsLikeCluster(ClusterConfig config)
    : DfsCluster(config, Flavor::kHdfs, "hdfs-like") {
  BuildInitialTopology();
}

void HdfsLikeCluster::OnTopologyChangedInternal() {
  // The NameNode re-registers DataNode bricks. (The real HDFS-13279 bug is a
  // *stale* map — our fault injector reproduces its effect by mutating the
  // balancer plan; the healthy flavor keeps the map in sync.)
  cluster_map_ = ServingBricks();
}

std::vector<BrickId> HdfsLikeCluster::PlaceChunk(const std::string& path,
                                                 uint32_t chunk_index, uint64_t bytes) {
  (void)path;
  (void)chunk_index;
  // Build the weight tree from the cluster map and walk light-to-heavy,
  // skipping targets without room and keeping replicas on distinct nodes.
  WeightedTree tree;
  for (BrickId id : cluster_map_) {
    const Brick* brick = FindBrick(id);
    if (brick == nullptr || !brick->online) {
      continue;
    }
    tree.Insert(WeightedTarget{.brick = id, .used_fraction = brick->UsedFraction()});
  }
  std::vector<BrickId> sorted = tree.SortByLoad(rng());
  std::vector<BrickId> chosen;
  std::vector<NodeId> used_nodes;
  for (int pass = 0; pass < 2 && static_cast<int>(chosen.size()) < config_.replication;
       ++pass) {
    for (BrickId id : sorted) {
      if (static_cast<int>(chosen.size()) >= config_.replication) {
        break;
      }
      const Brick* brick = FindBrick(id);
      if (brick == nullptr || brick->FreeBytes() < bytes) {
        continue;
      }
      if (std::find(chosen.begin(), chosen.end(), id) != chosen.end()) {
        continue;
      }
      bool node_taken = std::find(used_nodes.begin(), used_nodes.end(), brick->node) !=
                        used_nodes.end();
      // First pass insists on distinct nodes; second pass relaxes.
      if (pass == 0 && node_taken) {
        continue;
      }
      chosen.push_back(id);
      used_nodes.push_back(brick->node);
    }
  }
  if (chosen.empty()) {
    return {};
  }
  return chosen;
}

MigrationPlan HdfsLikeCluster::BuildRebalancePlan() {
  // The HDFS Balancer levels DataNode utilization to within the threshold of
  // the cluster average: one iteration snapshots utilization, pairs
  // over-utilized sources with under-utilized targets, then schedules the
  // block moves.
  EmitBalancerState(BalancerState::kHdfsIteration);
  EmitBalancerState(BalancerState::kHdfsPairing);
  return PlanLevelingByUsage(config_.native_threshold * 0.5);
}

void HdfsLikeCluster::OnBalancerCrashed() {
  // The Balancer is a stateless client tool; its death loses only the
  // in-flight iteration (the base class already dropped the queued moves).
  ++balancer_crashes_;
}

void HdfsLikeCluster::OnBalancerRestarted() {
  // A restarted Balancer starts from a fresh NameNode DataNode report, so
  // any registrations it missed while down are picked up here.
  cluster_map_ = ServingBricks();
}

void HdfsLikeCluster::SaveFlavorState(SnapshotWriter& writer) const {
  writer.U32(balancer_crashes_);
}

Status HdfsLikeCluster::RestoreFlavorState(SnapshotReader& reader) {
  balancer_crashes_ = reader.U32();
  return reader.status();
}

}  // namespace themis
