#include "src/dfs/flavors/gluster_like.h"

#include <algorithm>
#include <map>

#include "src/common/bytes.h"

namespace themis {

namespace {
constexpr uint64_t kLinkfileBytes = 4 * kKiB;
}  // namespace

ClusterConfig GlusterLikeCluster::DefaultConfig() {
  ClusterConfig config;
  config.native_threshold = 0.20;  // GlusterFS balancer default
  config.continuous_balancing = false;
  config.balancer_period = Minutes(2);  // periodic timing task (paper §4.3)
  config.replication = 2;
  return config;
}

GlusterLikeCluster::GlusterLikeCluster(ClusterConfig config)
    : DfsCluster(config, Flavor::kGluster, "gluster-like") {
  BuildInitialTopology();
}

void GlusterLikeCluster::OnTopologyChangedInternal() {
  // fix-layout: reassign hash ranges proportional to brick capacity.
  std::vector<std::pair<BrickId, double>> weights;
  for (BrickId id : ServingBricks()) {
    const Brick* brick = FindBrick(id);
    weights.emplace_back(id, static_cast<double>(brick->capacity_bytes));
  }
  layout_.Recompute(weights);
}

BrickId GlusterLikeCluster::ReplicaPartner(BrickId primary) const {
  const std::vector<DhtRange>& ranges = layout_.ranges();
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].brick == primary) {
      return ranges[(i + 1) % ranges.size()].brick;
    }
  }
  return kInvalidBrick;
}

std::vector<BrickId> GlusterLikeCluster::PlaceChunk(const std::string& path,
                                                    uint32_t chunk_index, uint64_t bytes) {
  if (layout_.empty()) {
    return {};
  }
  // DHT places the whole file on its hashed brick; multi-chunk files stripe
  // across consecutive ranges.
  uint32_t hash = DhtLayout::HashName(path) + chunk_index * 0x9e3779b9u;
  BrickId primary = layout_.Locate(hash);
  std::vector<BrickId> chosen;
  const Brick* brick = FindBrick(primary);
  if (brick != nullptr && brick->online && brick->FreeBytes() >= bytes) {
    chosen.push_back(primary);
  }
  if (config_.replication > 1) {
    BrickId partner = ReplicaPartner(primary);
    const Brick* partner_brick = FindBrick(partner);
    if (partner_brick != nullptr && partner != primary && partner_brick->online &&
        partner_brick->FreeBytes() >= bytes) {
      chosen.push_back(partner);
    }
  }
  if (!chosen.empty()) {
    return chosen;
  }
  // Hashed brick is full: gluster writes to another brick and leaves a
  // linkfile on the hashed one.
  for (BrickId id : ServingBricks()) {
    const Brick* candidate = FindBrick(id);
    if (id != primary && candidate->FreeBytes() >= bytes) {
      chosen.push_back(id);
      if (brick != nullptr && brick->online) {
        ++live_linkfiles_;
        Brick* hashed = FindBrick(primary);
        hashed->linkfiles += 1;
        AccreteBrickBytes(hashed, kLinkfileBytes);
      }
      if (static_cast<int>(chosen.size()) >= config_.replication) {
        break;
      }
    }
  }
  return chosen;
}

void GlusterLikeCluster::OnFileRenamed(FileId file, const std::string& from,
                                       const std::string& to) {
  (void)file;
  // If the new name hashes to a different brick, DHT leaves a linkfile on the
  // new hashed brick pointing at the data until a rebalance migrates it.
  if (layout_.empty()) {
    return;
  }
  BrickId old_brick = layout_.Locate(DhtLayout::HashName(from));
  BrickId new_brick = layout_.Locate(DhtLayout::HashName(to));
  if (old_brick != new_brick) {
    Brick* brick = FindBrick(new_brick);
    if (brick != nullptr) {
      ++live_linkfiles_;
      brick->linkfiles += 1;
      AccreteBrickBytes(brick, kLinkfileBytes);
    }
  }
}

MigrationPlan GlusterLikeCluster::BuildRebalancePlan() {
  // migrate-data: move each file's primary replica to its hashed brick when
  // the layout says it now belongs elsewhere, then level the remainder.
  // cluster.min-free-disk semantics: never migrate data *into* a brick that
  // is already beyond the fleet utilization plus the balance tolerance —
  // without this check the DHT keeps re-hashing data onto hot bricks and a
  // healthy cluster never reaches a balanced fixpoint.
  EmitBalancerState(BalancerState::kGlusterFixLayout);
  MigrationPlan plan;
  if (layout_.empty()) {
    return plan;
  }
  uint64_t total_used = TotalServingUsedBytes();
  uint64_t total_capacity = TotalCapacityBytes();
  double fleet = total_capacity == 0 ? 0.0
                                     : static_cast<double>(total_used) /
                                           static_cast<double>(total_capacity);
  double receive_limit = fleet + config_.native_threshold * 0.5;
  std::map<BrickId, uint64_t> planned_inflow;  // cumulative per-target bytes
  for (const auto& [file, layout] : file_layouts()) {
    std::string path = tree().PathOf(file);
    if (path.empty()) {
      continue;
    }
    for (uint32_t i = 0; i < layout.chunks.size(); ++i) {
      const ChunkPlacement& chunk = layout.chunks[i];
      if (chunk.replicas.empty()) {
        continue;
      }
      uint32_t hash = DhtLayout::HashName(path) + i * 0x9e3779b9u;
      BrickId expected = layout_.Locate(hash);
      BrickId actual = chunk.replicas.front();
      if (expected == actual || expected == kInvalidBrick) {
        continue;
      }
      const Brick* target = FindBrick(expected);
      if (target == nullptr || !target->online || target->FreeBytes() < chunk.bytes ||
          chunk.HasReplicaOn(expected)) {
        continue;
      }
      double target_after =
          static_cast<double>(target->used_bytes + planned_inflow[expected] +
                              chunk.bytes) /
          static_cast<double>(target->capacity_bytes);
      if (target_after > receive_limit) {
        continue;  // min-free-disk: leave the file where it is
      }
      planned_inflow[expected] += chunk.bytes;
      plan.push_back(ChunkMove{.file = file,
                               .chunk_index = i,
                               .from = actual,
                               .to = expected,
                               .bytes = chunk.bytes,
                               .reason = MoveReason::kRebalance,
                               .hash_driven = true});
      // The data move is paired with the unlink of the stale linkfile — the
      // exact code path of failure #1 (Fig. 11). When healthy this is a
      // metadata-only cleanup; the injected bug turns it into a destructive
      // unlink of the freshly migrated data.
      plan.push_back(ChunkMove{.file = file,
                               .chunk_index = i,
                               .from = actual,
                               .to = expected,
                               .bytes = kLinkfileBytes,
                               .reason = MoveReason::kRebalance,
                               .is_linkfile = true,
                               .hash_driven = true});
    }
  }
  MigrationPlan leveling =
      PlanLevelingByUsage(config_.native_threshold * 0.5, &planned_inflow);
  plan.insert(plan.end(), leveling.begin(), leveling.end());
  return plan;
}

bool GlusterLikeCluster::ChunkPinnedToBrick(FileId file, uint32_t chunk_index,
                                            BrickId brick) const {
  // A replica sitting on its DHT-hashed brick is where migrate-data wants
  // it; the leveler must not move it or the next rebalance moves it back.
  if (layout_.empty()) {
    return false;
  }
  std::string path = tree().PathOf(file);
  if (path.empty()) {
    return false;
  }
  uint32_t hash = DhtLayout::HashName(path) + chunk_index * 0x9e3779b9u;
  return layout_.Locate(hash) == brick;
}

void GlusterLikeCluster::OnRebalanceRoundDone() {
  // A completed rebalance reconciles linkfiles: stale ones are unlinked.
  for (const auto& [id, brick] : bricks()) {
    if (brick.linkfiles > 0) {
      Brick* mutable_brick = FindBrick(id);
      uint64_t reclaimed = static_cast<uint64_t>(mutable_brick->linkfiles) * kLinkfileBytes;
      ReleaseBrickBytes(mutable_brick, reclaimed);
      live_linkfiles_ -= std::min(live_linkfiles_, mutable_brick->linkfiles);
      mutable_brick->linkfiles = 0;
    }
  }
}

void GlusterLikeCluster::OnBalancerCrashed() {
  // The rebalance daemon died: stale linkfiles stay on their bricks until a
  // future completed round reconciles them. Only the census advances.
  ++balancer_crashes_;
}

void GlusterLikeCluster::OnBalancerRestarted() {
  // Rebalance restart performs fix-layout first: hash ranges are recomputed
  // from the current topology before migrate-data resumes.
  OnTopologyChangedInternal();
}

void GlusterLikeCluster::SaveFlavorState(SnapshotWriter& writer) const {
  writer.U32(live_linkfiles_);
  writer.U32(balancer_crashes_);
}

Status GlusterLikeCluster::RestoreFlavorState(SnapshotReader& reader) {
  live_linkfiles_ = reader.U32();
  balancer_crashes_ = reader.U32();
  return reader.status();
}

}  // namespace themis
