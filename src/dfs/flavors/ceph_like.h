// CephFS-like cluster: objects hash to placement groups; PGs map to OSD
// bricks through CRUSH straw2 selection weighted by capacity; the balancer
// runs continuously (Ceph's mgr balancer) and corrects skew with upmap-style
// PG pinning.

#ifndef SRC_DFS_FLAVORS_CEPH_LIKE_H_
#define SRC_DFS_FLAVORS_CEPH_LIKE_H_

#include <string>
#include <vector>

#include "src/dfs/cluster.h"
#include "src/dfs/placement/crush_map.h"

namespace themis {

class CephLikeCluster : public DfsCluster {
 public:
  explicit CephLikeCluster(ClusterConfig config = DefaultConfig());

  static ClusterConfig DefaultConfig();

  const CrushMap& crush() const { return crush_; }
  uint32_t balancer_crashes() const { return balancer_crashes_; }

 protected:
  std::vector<BrickId> PlaceChunk(const std::string& path, uint32_t chunk_index,
                                  uint64_t bytes) override;
  MigrationPlan BuildRebalancePlan() override;
  void OnTopologyChangedInternal() override;
  // Env-fault crash model (DESIGN.md §14): upmap pins live in the OSDMap and
  // survive a mgr death; the restarted mgr's first act is a sanity pass that
  // drops pins whose target device is gone or down.
  void OnBalancerCrashed() override;
  void OnBalancerRestarted() override;
  // Checkpointing: upmap pins are balancer history; CRUSH weights are derived
  // from capacity and recomputed by the base restore.
  void SaveFlavorState(SnapshotWriter& writer) const override;
  Status RestoreFlavorState(SnapshotReader& reader) override;

 private:
  uint32_t PgForObject(const std::string& path, uint32_t chunk_index) const;

  CrushMap crush_;
  uint32_t balancer_crashes_ = 0;  // env-fault crash census (persisted)
};

}  // namespace themis

#endif  // SRC_DFS_FLAVORS_CEPH_LIKE_H_
