#include "src/dfs/flavors/leo_like.h"

#include <algorithm>
#include <map>

#include "src/common/rng.h"
#include "src/common/strings.h"

namespace themis {

ClusterConfig LeoLikeCluster::DefaultConfig() {
  ClusterConfig config;
  config.native_threshold = 0.15;
  config.continuous_balancing = false;
  config.balancer_period = Minutes(2);
  config.replication = 2;
  return config;
}

LeoLikeCluster::LeoLikeCluster(ClusterConfig config)
    : DfsCluster(config, Flavor::kLeo, "leo-like"), ring_(64) {
  BuildInitialTopology();
}

void LeoLikeCluster::OnTopologyChangedInternal() {
  // Ring arcs scale with device capacity; a capacity change re-plants the
  // target's virtual nodes (a LeoFS ring/weight update).
  bool ring_changed = false;
  std::vector<BrickId> serving = ServingBricks();
  for (BrickId id : ring_.Targets()) {
    if (std::find(serving.begin(), serving.end(), id) == serving.end()) {
      ring_.RemoveTarget(id);
      ring_weights_.erase(id);
      ring_changed = true;
    }
  }
  for (BrickId id : serving) {
    double weight = static_cast<double>(FindBrick(id)->capacity_bytes) /
                    static_cast<double>(config_.brick_capacity);
    auto it = ring_weights_.find(id);
    bool stale = it != ring_weights_.end() &&
                 (weight > it->second * 1.25 || weight < it->second * 0.8);
    if (stale) {
      ring_.RemoveTarget(id);
      ring_weights_.erase(id);
    }
    if (!ring_.HasTarget(id)) {
      ring_.AddTarget(id, weight);
      ring_weights_[id] = weight;
      ring_changed = true;
    }
  }
  if (ring_changed) {
    primary_cache_.clear();
  }
}

void LeoLikeCluster::OnNamespaceRenamed() {
  // A directory move re-paths every descendant file, so every cached hash is
  // suspect; renames are rare next to pin checks, a full drop is fine.
  primary_cache_.clear();
}

BrickId LeoLikeCluster::PrimaryFor(FileId file, uint32_t chunk_index,
                                   const std::string* known_path) const {
  auto key = std::make_pair(file, chunk_index);
  auto it = primary_cache_.find(key);
  if (it != primary_cache_.end()) {
    return it->second;
  }
  std::string resolved;
  const std::string* path = known_path;
  if (path == nullptr) {
    resolved = tree().PathOf(file);
    path = &resolved;
  }
  BrickId primary = path->empty()
                        ? kInvalidBrick
                        : ring_.Primary(ObjectHash(*path, chunk_index));
  primary_cache_.emplace(key, primary);
  return primary;
}

uint64_t LeoLikeCluster::ObjectHash(const std::string& path, uint32_t chunk_index) {
  uint64_t h = Mix64(chunk_index * 2654435761ULL + 0xabcdULL);
  for (char c : path) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

std::vector<BrickId> LeoLikeCluster::PlaceChunk(const std::string& path,
                                                uint32_t chunk_index, uint64_t bytes) {
  std::vector<BrickId> located = ring_.Locate(ObjectHash(path, chunk_index),
                                              config_.replication);
  std::vector<BrickId> chosen;
  for (BrickId id : located) {
    const Brick* brick = FindBrick(id);
    if (brick != nullptr && brick->online && brick->FreeBytes() >= bytes) {
      chosen.push_back(id);
    }
  }
  if (!chosen.empty()) {
    return chosen;
  }
  // Ring targets full: walk the rest of the cluster for room.
  for (BrickId id : ServingBricks()) {
    const Brick* brick = FindBrick(id);
    if (brick->FreeBytes() >= bytes) {
      chosen.push_back(id);
      if (static_cast<int>(chosen.size()) >= config_.replication) {
        break;
      }
    }
  }
  return chosen;
}

MigrationPlan LeoLikeCluster::BuildRebalancePlan() {
  // rebalance-list: move every object whose ring position no longer matches
  // where it is stored (the arcs affected by ring changes).
  EmitBalancerState(BalancerState::kLeoRingPlan);
  MigrationPlan plan;
  if (ring_.target_count() == 0) {
    return plan;
  }
  uint64_t total_used = TotalServingUsedBytes();
  uint64_t total_capacity = TotalCapacityBytes();
  double fleet = total_capacity == 0 ? 0.0
                                     : static_cast<double>(total_used) /
                                           static_cast<double>(total_capacity);
  // Like gluster's min-free-disk: never rebalance data onto an already-hot
  // target, or the ring fixpoint can stay imbalanced forever.
  double receive_limit = fleet + config_.native_threshold * 0.5;
  std::map<BrickId, uint64_t> planned_inflow;  // cumulative per-target bytes
  for (const auto& [file, layout] : file_layouts()) {
    std::string path = tree().PathOf(file);
    if (path.empty()) {
      continue;
    }
    for (uint32_t i = 0; i < layout.chunks.size(); ++i) {
      const ChunkPlacement& chunk = layout.chunks[i];
      if (chunk.replicas.empty()) {
        continue;
      }
      BrickId expected = PrimaryFor(file, i, &path);
      BrickId actual = chunk.replicas.front();
      if (expected == kInvalidBrick || expected == actual ||
          chunk.HasReplicaOn(expected)) {
        continue;
      }
      const Brick* target = FindBrick(expected);
      if (target == nullptr || !target->online || target->FreeBytes() < chunk.bytes) {
        continue;
      }
      double target_after =
          static_cast<double>(target->used_bytes + planned_inflow[expected] +
                              chunk.bytes) /
          static_cast<double>(target->capacity_bytes);
      if (target_after > receive_limit) {
        continue;
      }
      planned_inflow[expected] += chunk.bytes;
      plan.push_back(ChunkMove{.file = file,
                               .chunk_index = i,
                               .from = actual,
                               .to = expected,
                               .bytes = chunk.bytes,
                               .reason = MoveReason::kRebalance,
                               .hash_driven = true});
    }
  }
  MigrationPlan leveling =
      PlanLevelingByUsage(config_.native_threshold * 0.5, &planned_inflow);
  plan.insert(plan.end(), leveling.begin(), leveling.end());
  return plan;
}

bool LeoLikeCluster::ChunkPinnedToBrick(FileId file, uint32_t chunk_index,
                                        BrickId brick) const {
  if (ring_.target_count() == 0) {
    return false;
  }
  return PrimaryFor(file, chunk_index) == brick;
}

void LeoLikeCluster::OnBalancerCrashed() {
  // The ring and its plantings are persisted state; the crash loses only the
  // in-flight rebalance-list (already dropped by the base class).
  ++balancer_crashes_;
}

void LeoLikeCluster::OnBalancerRestarted() {
  // Takeover: reload the ring from the persisted plantings, dropping targets
  // that disappeared while the manager was down.
  ring_ = HashRing(64);
  primary_cache_.clear();
  for (auto it = ring_weights_.begin(); it != ring_weights_.end();) {
    if (FindBrick(it->first) == nullptr) {
      it = ring_weights_.erase(it);
      continue;
    }
    ring_.AddTarget(it->first, it->second);
    ++it;
  }
}

void LeoLikeCluster::SaveFlavorState(SnapshotWriter& writer) const {
  writer.U64(ring_weights_.size());
  for (const auto& [id, weight] : ring_weights_) {
    writer.U32(id);
    writer.F64(weight);
  }
  writer.U32(balancer_crashes_);
}

Status LeoLikeCluster::RestoreFlavorState(SnapshotReader& reader) {
  // The planted weights carry hysteresis history, so the ring recomputed by
  // the base restore is discarded and rebuilt from the saved plantings.
  ring_ = HashRing(64);
  ring_weights_.clear();
  primary_cache_.clear();
  uint64_t count = reader.Count(4 + 8);
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    BrickId id = reader.U32();
    double weight = reader.F64();
    if (reader.ok() && FindBrick(id) == nullptr) {
      reader.Fail(Sprintf("ring weight references unknown brick %u", id));
      break;
    }
    ring_.AddTarget(id, weight);
    ring_weights_[id] = weight;
  }
  balancer_crashes_ = reader.U32();
  return reader.status();
}

}  // namespace themis
