// GlusterFS-like cluster: file names hash into DHT ranges assigned to
// bricks; topology changes re-run fix-layout; files whose hash now maps to a
// different brick leave a *linkfile* on the new hashed brick until the
// rebalance migrates the data — the mechanism behind the paper's case study
// (failure #1 / Fig. 11). Rebalance is a periodic command with a 20%
// threshold (the GlusterFS default).

#ifndef SRC_DFS_FLAVORS_GLUSTER_LIKE_H_
#define SRC_DFS_FLAVORS_GLUSTER_LIKE_H_

#include <string>
#include <vector>

#include "src/dfs/cluster.h"
#include "src/dfs/placement/dht_layout.h"

namespace themis {

class GlusterLikeCluster : public DfsCluster {
 public:
  explicit GlusterLikeCluster(ClusterConfig config = DefaultConfig());

  static ClusterConfig DefaultConfig();

  const DhtLayout& layout() const { return layout_; }
  uint32_t live_linkfiles() const { return live_linkfiles_; }
  uint32_t balancer_crashes() const { return balancer_crashes_; }

 protected:
  std::vector<BrickId> PlaceChunk(const std::string& path, uint32_t chunk_index,
                                  uint64_t bytes) override;
  MigrationPlan BuildRebalancePlan() override;
  void OnTopologyChangedInternal() override;
  void OnFileRenamed(FileId file, const std::string& from, const std::string& to) override;
  void OnRebalanceRoundDone() override;
  // Env-fault crash model (DESIGN.md §14): a crash mid-rebalance leaves the
  // stale linkfiles on disk (the reconcile of OnRebalanceRoundDone never
  // ran); the restarted rebalance begins with a fresh fix-layout, exactly
  // like `gluster volume rebalance start` after a daemon death.
  void OnBalancerCrashed() override;
  void OnBalancerRestarted() override;
  bool ChunkPinnedToBrick(FileId file, uint32_t chunk_index, BrickId brick) const override;
  // Checkpointing: the linkfile census is history (survives fix-layout); the
  // DHT layout itself is derived and recomputed by the base restore.
  void SaveFlavorState(SnapshotWriter& writer) const override;
  Status RestoreFlavorState(SnapshotReader& reader) override;

 private:
  // The brick after `primary` in layout order hosts the replica pair.
  BrickId ReplicaPartner(BrickId primary) const;

  DhtLayout layout_;
  uint32_t live_linkfiles_ = 0;
  uint32_t balancer_crashes_ = 0;  // env-fault crash census (persisted)
};

}  // namespace themis

#endif  // SRC_DFS_FLAVORS_GLUSTER_LIKE_H_
