#include "src/dfs/path_table.h"

#include <atomic>

namespace themis {

namespace {

// Generations are only compared for equality, so a process-global counter
// is enough to make every table (and every Reset) distinct — including a
// new table constructed at a freed table's address.
std::atomic<uint64_t> g_next_generation{1};

constexpr size_t kInitialEdgeCapacity = 64;

}  // namespace

PathTable::PathTable() { Reset(); }

void PathTable::Reset() {
  nodes_.clear();
  component_names_.clear();
  component_ids_.clear();
  edges_.assign(kInitialEdgeCapacity, EdgeSlot{0, kInvalidPathId});
  edge_count_ = 0;
  nodes_.push_back(Node{kRootPathId, 0xffffffffu});  // the root "/"
  generation_ = g_next_generation.fetch_add(1, std::memory_order_relaxed);
}

uint64_t PathTable::Mix(uint64_t key) {
  // splitmix64 finalizer: full avalanche over the packed (parent, component)
  // pair so sequential ids spread across the table.
  key += 0x9e3779b97f4a7c15ull;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
  return key ^ (key >> 31);
}

uint32_t PathTable::InternComponent(std::string_view name) {
  auto it = component_ids_.find(name);
  if (it != component_ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(component_names_.size());
  component_names_.emplace_back(name);
  component_ids_.emplace(component_names_.back(), id);
  return id;
}

PathId PathTable::FindChild(PathId parent, uint32_t component) const {
  uint64_t key = EdgeKey(parent, component);
  size_t mask = edges_.size() - 1;
  for (size_t i = Mix(key) & mask;; i = (i + 1) & mask) {
    const EdgeSlot& slot = edges_[i];
    if (slot.child == kInvalidPathId) {
      return kInvalidPathId;
    }
    if (slot.key == key) {
      return slot.child;
    }
  }
}

void PathTable::InsertEdge(uint64_t key, PathId child) {
  size_t mask = edges_.size() - 1;
  size_t i = Mix(key) & mask;
  while (edges_[i].child != kInvalidPathId) {
    i = (i + 1) & mask;
  }
  edges_[i] = EdgeSlot{key, child};
  ++edge_count_;
}

void PathTable::GrowEdges() {
  std::vector<EdgeSlot> old = std::move(edges_);
  edges_.assign(old.size() * 2, EdgeSlot{0, kInvalidPathId});
  size_t mask = edges_.size() - 1;
  for (const EdgeSlot& slot : old) {
    if (slot.child == kInvalidPathId) {
      continue;
    }
    size_t i = Mix(slot.key) & mask;
    while (edges_[i].child != kInvalidPathId) {
      i = (i + 1) & mask;
    }
    edges_[i] = slot;
  }
}

PathId PathTable::InternChild(PathId parent, uint32_t component) {
  PathId existing = FindChild(parent, component);
  if (existing != kInvalidPathId) {
    return existing;
  }
  if ((edge_count_ + 1) * 10 >= edges_.size() * 7) {  // load factor 0.7
    GrowEdges();
  }
  PathId id = static_cast<PathId>(nodes_.size());
  nodes_.push_back(Node{parent, component});
  InsertEdge(EdgeKey(parent, component), id);
  return id;
}

PathId PathTable::Intern(std::string_view path) {
  PathId cur = kRootPathId;
  size_t i = 0;
  const size_t n = path.size();
  while (i < n) {
    while (i < n && path[i] == '/') ++i;
    size_t start = i;
    while (i < n && path[i] != '/') ++i;
    if (i > start) {
      cur = InternChild(cur, InternComponent(path.substr(start, i - start)));
    }
  }
  return cur;
}

PathId PathTable::Lookup(std::string_view path) const {
  PathId cur = kRootPathId;
  size_t i = 0;
  const size_t n = path.size();
  while (i < n) {
    while (i < n && path[i] == '/') ++i;
    size_t start = i;
    while (i < n && path[i] != '/') ++i;
    if (i > start) {
      auto it = component_ids_.find(path.substr(start, i - start));
      if (it == component_ids_.end()) {
        return kInvalidPathId;
      }
      cur = FindChild(cur, it->second);
      if (cur == kInvalidPathId) {
        return kInvalidPathId;
      }
    }
  }
  return cur;
}

bool PathTable::IsAncestor(PathId ancestor, PathId id) const {
  while (id != kRootPathId) {
    id = nodes_[id].parent;
    if (id == ancestor) {
      return true;
    }
  }
  return false;
}

void PathTable::AppendPath(PathId id, std::string* out) const {
  if (id == kRootPathId) {
    out->push_back('/');
    return;
  }
  // Collect the component chain root-ward, then emit it in path order.
  uint32_t chain[64];
  std::vector<uint32_t> deep;
  size_t depth = 0;
  for (PathId cur = id; cur != kRootPathId; cur = nodes_[cur].parent) {
    if (depth < 64) {
      chain[depth++] = nodes_[cur].component;
    } else {
      deep.push_back(nodes_[cur].component);
    }
  }
  for (size_t i = deep.size(); i > 0; --i) {
    out->push_back('/');
    out->append(component_names_[deep[i - 1]]);
  }
  for (size_t i = depth; i > 0; --i) {
    out->push_back('/');
    out->append(component_names_[chain[i - 1]]);
  }
}

std::string PathTable::PathString(PathId id) const {
  std::string out;
  AppendPath(id, &out);
  return out;
}

}  // namespace themis
