#include "src/coverage/model_coverage.h"

#include <algorithm>

namespace themis {

namespace {

// One declared machine per flavor: the ordered planning phases, the state
// while planned moves drain, and the settle state. Generic edges (idle,
// crashed) are shared and added in IsLegalBalancerTransition.
struct BalancerMachine {
  BalancerState phases[2];  // planning phases, in order
  int phase_count;
  BalancerState move;
  BalancerState settle;
};

BalancerMachine MachineFor(Flavor flavor) {
  switch (flavor) {
    case Flavor::kGluster:
      return {{BalancerState::kGlusterFixLayout, BalancerState::kIdle},
              1,
              BalancerState::kGlusterMigrateData,
              BalancerState::kGlusterSettle};
    case Flavor::kCeph:
      return {{BalancerState::kCephUpmapCompute, BalancerState::kIdle},
              1,
              BalancerState::kCephApply,
              BalancerState::kCephSettle};
    case Flavor::kLeo:
      return {{BalancerState::kLeoRingPlan, BalancerState::kIdle},
              1,
              BalancerState::kLeoTakeover,
              BalancerState::kLeoSettle};
    case Flavor::kGeo:
      return {{BalancerState::kGeoSiteDrain, BalancerState::kIdle},
              1,
              BalancerState::kGeoGroupRebalance,
              BalancerState::kGeoSettle};
    case Flavor::kHdfs:
    case Flavor::kCustom:  // custom clusters are generic levelers
    default:
      return {{BalancerState::kHdfsIteration, BalancerState::kHdfsPairing},
              2,
              BalancerState::kHdfsBlockMove,
              BalancerState::kHdfsSettle};
  }
}

}  // namespace

std::string_view BalancerStateName(BalancerState state) {
  switch (state) {
    case BalancerState::kIdle: return "idle";
    case BalancerState::kCrashed: return "crashed";
    case BalancerState::kGlusterFixLayout: return "gluster.fix_layout";
    case BalancerState::kGlusterMigrateData: return "gluster.migrate_data";
    case BalancerState::kGlusterSettle: return "gluster.settle";
    case BalancerState::kHdfsIteration: return "hdfs.iteration";
    case BalancerState::kHdfsPairing: return "hdfs.pairing";
    case BalancerState::kHdfsBlockMove: return "hdfs.block_move";
    case BalancerState::kHdfsSettle: return "hdfs.settle";
    case BalancerState::kCephUpmapCompute: return "ceph.upmap_compute";
    case BalancerState::kCephApply: return "ceph.apply";
    case BalancerState::kCephSettle: return "ceph.settle";
    case BalancerState::kLeoRingPlan: return "leo.ring_plan";
    case BalancerState::kLeoTakeover: return "leo.takeover";
    case BalancerState::kLeoSettle: return "leo.settle";
    case BalancerState::kGeoSiteDrain: return "geo.site_drain";
    case BalancerState::kGeoGroupRebalance: return "geo.group_rebalance";
    case BalancerState::kGeoSettle: return "geo.settle";
    case BalancerState::kCount: break;
  }
  return "invalid";
}

bool BalancerStateBelongsTo(Flavor flavor, BalancerState state) {
  if (state == BalancerState::kIdle || state == BalancerState::kCrashed) {
    return true;
  }
  BalancerMachine m = MachineFor(flavor);
  for (int i = 0; i < m.phase_count; ++i) {
    if (state == m.phases[i]) {
      return true;
    }
  }
  return state == m.move || state == m.settle;
}

bool IsLegalBalancerTransition(Flavor flavor, BalancerState from,
                               BalancerState to) {
  BalancerMachine m = MachineFor(flavor);
  BalancerState last_phase = m.phases[m.phase_count - 1];
  // Planning chain: idle -> p1 -> ... -> p_last.
  if (from == BalancerState::kIdle && to == m.phases[0]) {
    return true;
  }
  for (int i = 0; i + 1 < m.phase_count; ++i) {
    if (from == m.phases[i] && to == m.phases[i + 1]) {
      return true;
    }
  }
  // Non-empty plan drains; an empty plan settles straight away.
  if (from == last_phase && (to == m.move || to == m.settle)) {
    return true;
  }
  if (from == m.move && to == m.settle) {
    return true;
  }
  if (from == m.settle && to == BalancerState::kIdle) {
    return true;
  }
  // Env-fault crash can only land on a steady state (idle or draining) —
  // planning and settling are synchronous; restart brings the daemon back
  // to idle (a pending round re-enters the planning chain from there).
  if (to == BalancerState::kCrashed &&
      (from == BalancerState::kIdle || from == m.move)) {
    return true;
  }
  if (from == BalancerState::kCrashed && to == BalancerState::kIdle) {
    return true;
  }
  return false;
}

BalancerState BalancerMoveState(Flavor flavor) { return MachineFor(flavor).move; }

BalancerState BalancerSettleState(Flavor flavor) {
  return MachineFor(flavor).settle;
}

ModelCoverage::ModelCoverage(Flavor flavor)
    : flavor_(flavor),
      pair_counts_(kBalancerStateCount * kBalancerStateCount, 0) {}

bool ModelCoverage::Transition(BalancerState to) {
  BalancerState from = current_;
  current_ = to;
  if (!IsLegalBalancerTransition(flavor_, from, to)) {
    ++illegal_;
  }
  uint64_t& count = pair_counts_[PairIndex(from, to)];
  ++count;
  ++total_;
  if (count == 1) {
    ++covered_;
    return true;
  }
  return false;
}

uint64_t ModelCoverage::PairCount(BalancerState from, BalancerState to) const {
  return pair_counts_[PairIndex(from, to)];
}

std::vector<std::pair<BalancerState, BalancerState>>
ModelCoverage::CoveredPairs() const {
  std::vector<std::pair<BalancerState, BalancerState>> pairs;
  pairs.reserve(covered_);
  for (size_t i = 0; i < pair_counts_.size(); ++i) {
    if (pair_counts_[i] == 0) {
      continue;
    }
    pairs.emplace_back(static_cast<BalancerState>(i / kBalancerStateCount),
                       static_cast<BalancerState>(i % kBalancerStateCount));
  }
  return pairs;
}

Status ModelCoverage::MergeFrom(const ModelCoverage& other) {
  if (other.flavor_ != flavor_) {
    return Status::InvalidArgument("model coverage merge: flavor mismatch");
  }
  for (size_t i = 0; i < pair_counts_.size(); ++i) {
    if (other.pair_counts_[i] == 0) {
      continue;
    }
    if (pair_counts_[i] == 0) {
      ++covered_;
    }
    pair_counts_[i] += other.pair_counts_[i];
  }
  total_ += other.total_;
  illegal_ += other.illegal_;
  return Status::Ok();
}

void ModelCoverage::Reset() {
  current_ = BalancerState::kIdle;
  std::fill(pair_counts_.begin(), pair_counts_.end(), 0);
  covered_ = 0;
  total_ = 0;
  illegal_ = 0;
}

void ModelCoverage::SaveState(SnapshotWriter& writer) const {
  writer.U8(static_cast<uint8_t>(flavor_));
  writer.U8(static_cast<uint8_t>(current_));
  writer.U64(total_);
  writer.U64(illegal_);
  writer.U64(covered_);
  for (size_t i = 0; i < pair_counts_.size(); ++i) {
    if (pair_counts_[i] == 0) {
      continue;
    }
    writer.U8(static_cast<uint8_t>(i / kBalancerStateCount));
    writer.U8(static_cast<uint8_t>(i % kBalancerStateCount));
    writer.U64(pair_counts_[i]);
  }
}

Status ModelCoverage::RestoreState(SnapshotReader& reader) {
  uint8_t flavor = reader.U8();
  uint8_t current = reader.U8();
  uint64_t total = reader.U64();
  uint64_t illegal = reader.U64();
  uint64_t covered = reader.U64();
  if (!reader.ok()) {
    return reader.status();
  }
  if (flavor != static_cast<uint8_t>(flavor_)) {
    reader.Fail("model coverage flavor mismatch");
    return reader.status();
  }
  if (current >= kBalancerStateCount ||
      !BalancerStateBelongsTo(flavor_, static_cast<BalancerState>(current))) {
    reader.Fail("model coverage: unknown balancer state id");
    return reader.status();
  }
  std::vector<uint64_t> counts(kBalancerStateCount * kBalancerStateCount, 0);
  if (covered > counts.size()) {
    reader.Fail("model coverage: transition count overflow");
    return reader.status();
  }
  uint64_t sum = 0;
  uint64_t distinct = 0;
  for (uint64_t i = 0; i < covered; ++i) {
    uint8_t from = reader.U8();
    uint8_t to = reader.U8();
    uint64_t count = reader.U64();
    if (!reader.ok()) {
      return reader.status();
    }
    if (from >= kBalancerStateCount || to >= kBalancerStateCount ||
        !BalancerStateBelongsTo(flavor_, static_cast<BalancerState>(from)) ||
        !BalancerStateBelongsTo(flavor_, static_cast<BalancerState>(to))) {
      reader.Fail("model coverage: unknown balancer state id");
      return reader.status();
    }
    if (count == 0) {
      reader.Fail("model coverage: empty transition pair");
      return reader.status();
    }
    size_t index = static_cast<size_t>(from) * kBalancerStateCount + to;
    if (counts[index] != 0) {
      reader.Fail("model coverage: duplicate transition pair");
      return reader.status();
    }
    counts[index] = count;
    ++distinct;
    if (sum + count < sum) {
      reader.Fail("model coverage: transition count overflow");
      return reader.status();
    }
    sum += count;
  }
  if (sum != total || distinct != covered) {
    reader.Fail("model coverage: transition count overflow");
    return reader.status();
  }
  current_ = static_cast<BalancerState>(current);
  total_ = total;
  illegal_ = illegal;
  covered_ = static_cast<size_t>(covered);
  pair_counts_ = std::move(counts);
  return Status::Ok();
}

}  // namespace themis
