// Balancer state-machine transition coverage (second feedback signal).
//
// The load-variance model scores *how far* a seed pushes the cluster from
// balance, but cannot tell two seeds apart that stress different *phases*
// of a balancer (plan building vs. migration vs. crash recovery). Following
// model-guided fuzzing of distributed systems (PAPERS.md), each flavor
// declares an explicit abstract state machine for its balancer:
//
//   Gluster:  idle -> fix-layout -> migrate-data -> settle -> idle
//   HDFS:     idle -> iteration -> source/target pairing -> block move
//             -> settle -> idle
//   Ceph:     idle -> upmap compute -> apply -> settle -> idle
//   Leo:      idle -> ring plan -> takeover -> settle -> idle
//   Geo:      idle -> site-drain -> group rebalance -> settle -> idle
//
// plus two generic states shared by every flavor: `idle` and `crashed`
// (balancer daemon killed by an env fault; restart returns it to idle).
// An empty plan short-circuits from the last planning phase straight to
// settle. The existing rebalance paths emit transition events; this class
// records distinct (from, to) pairs as coverage, checks each event against
// the declared machine (the differential oracle in model_coverage_test
// asserts zero illegal transitions), and serializes into the v6 snapshot
// record so checkpoint/resume stays bit-exact.

#ifndef SRC_COVERAGE_MODEL_COVERAGE_H_
#define SRC_COVERAGE_MODEL_COVERAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/snapshot_io.h"
#include "src/dfs/types.h"

namespace themis {

// Abstract balancer states. Values are stable: they are serialized in
// snapshots and feed the transition-pair index.
enum class BalancerState : uint8_t {
  kIdle = 0,     // no rebalance round active (all flavors)
  kCrashed = 1,  // balancer daemon down after an env-fault crash

  kGlusterFixLayout = 2,    // DHT layout consult before migration
  kGlusterMigrateData = 3,  // hash-mismatch + leveling moves draining
  kGlusterSettle = 4,       // queue drained, linkfile reconcile

  kHdfsIteration = 5,  // balancer iteration start (utilization snapshot)
  kHdfsPairing = 6,    // over/under-utilized source/target pairing
  kHdfsBlockMove = 7,  // scheduled block moves draining
  kHdfsSettle = 8,     // iteration complete

  kCephUpmapCompute = 9,  // upmap exception table computed
  kCephApply = 10,        // upmap/backfill moves draining
  kCephSettle = 11,       // peering settled

  kLeoRingPlan = 12,  // ring position plan (RING_CUR vs RING_PREV)
  kLeoTakeover = 13,  // object takeover moves draining
  kLeoSettle = 14,    // ring committed

  kGeoSiteDrain = 15,       // hot-site failover donors selected
  kGeoGroupRebalance = 16,  // scheduling-group leveling moves draining
  kGeoSettle = 17,          // sites converged

  kCount = 18,
};

inline constexpr size_t kBalancerStateCount =
    static_cast<size_t>(BalancerState::kCount);

std::string_view BalancerStateName(BalancerState state);

// True when `state` may appear in a `flavor` campaign (the two generic
// states plus the flavor's own phases). kCustom clusters reuse the HDFS
// machine: they are generic utilization levelers.
bool BalancerStateBelongsTo(Flavor flavor, BalancerState state);

// True when the declared machine for `flavor` has the edge from -> to.
bool IsLegalBalancerTransition(Flavor flavor, BalancerState from,
                               BalancerState to);

// Per-flavor anchors used by the generic lifecycle code in DfsCluster:
// the state entered when planned moves start draining, and the state
// emitted when the queue drains (or the plan comes back empty).
BalancerState BalancerMoveState(Flavor flavor);
BalancerState BalancerSettleState(Flavor flavor);

// Records transition-pair coverage for one cluster. Not thread-safe (one
// instance per campaign job, like CoverageRecorder). Recording draws no
// RNG and never feeds CampaignResult::Digest(), so attaching a recorder
// leaves campaign behavior bit-identical; only the (opt-in) fitness blend
// in ThemisFuzzer reads the counters.
class ModelCoverage {
 public:
  explicit ModelCoverage(Flavor flavor);

  Flavor flavor() const { return flavor_; }
  BalancerState current() const { return current_; }

  // Records the event current() -> to and advances the current state.
  // Returns true if the (from, to) pair was new. Illegal edges are still
  // recorded (so they show up in dumps) but bump illegal_transitions().
  bool Transition(BalancerState to);

  // Forces the current state back to idle without recording an edge —
  // used when the whole cluster is rebuilt from the initial topology
  // (confirmed-failure reset), which is not a balancer action.
  void ForceIdle() { current_ = BalancerState::kIdle; }

  // Distinct (from, to) pairs seen. Monotone within a campaign.
  size_t TransitionsCovered() const { return covered_; }
  // Total transition events (>= TransitionsCovered()).
  uint64_t TotalTransitions() const { return total_; }
  uint64_t illegal_transitions() const { return illegal_; }

  uint64_t PairCount(BalancerState from, BalancerState to) const;

  // The covered (from, to) pairs in ascending (from, to) order — the
  // mergeable representation fleet workers ship in their job results.
  std::vector<std::pair<BalancerState, BalancerState>> CoveredPairs() const;

  // Folds another recorder of the same flavor into this one: pair counts
  // and event totals add, covered pairs union, the cursor state is left
  // alone. This is how the fleet supervisor computes fleet-wide transition
  // coverage from per-worker results (DESIGN.md §17). Fails on a flavor
  // mismatch.
  Status MergeFrom(const ModelCoverage& other);

  void Reset();

  // Checkpointing (DESIGN.md §16): flavor, current state, event totals and
  // the sparse (from, to, count) table. Restore fails on a flavor
  // mismatch, a state id outside the flavor's machine, or pair counts
  // that overflow / disagree with the stored total.
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  static size_t PairIndex(BalancerState from, BalancerState to) {
    return static_cast<size_t>(from) * kBalancerStateCount +
           static_cast<size_t>(to);
  }

  Flavor flavor_;
  BalancerState current_ = BalancerState::kIdle;
  std::vector<uint64_t> pair_counts_;  // kCount x kCount, row = from
  size_t covered_ = 0;
  uint64_t total_ = 0;
  uint64_t illegal_ = 0;
};

}  // namespace themis

#endif  // SRC_COVERAGE_MODEL_COVERAGE_H_
