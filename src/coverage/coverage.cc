#include "src/coverage/coverage.h"

#include <algorithm>

#include "src/common/rng.h"

namespace themis {

namespace {
// Upper bound on distinct static instrumentation sites per module.
constexpr size_t kStaticSitesPerModule = 256;
constexpr size_t kModuleCount = 10;
}  // namespace

CoverageRecorder::CoverageRecorder(size_t virtual_space, uint64_t seed)
    : bits_(virtual_space > 0 ? virtual_space : 1, false),
      static_bits_(kStaticSitesPerModule * kModuleCount, false),
      seed_(seed) {}

bool CoverageRecorder::HitStatic(CovModule module, uint32_t site) {
  size_t index = static_cast<size_t>(module) * kStaticSitesPerModule +
                 (site % kStaticSitesPerModule);
  if (static_bits_[index]) {
    return false;
  }
  static_bits_[index] = true;
  ++static_hits_;
  return true;
}

size_t CoverageRecorder::HitState(CovModule module, uint64_t feature_hash,
                                  int multiplicity) {
  uint64_t h = HashCombine(seed_, static_cast<uint64_t>(module));
  h = HashCombine(h, feature_hash);
  multiplicity = std::clamp(multiplicity, 1, 16);
  size_t fresh = 0;
  for (int i = 0; i < multiplicity; ++i) {
    size_t index = static_cast<size_t>(h % bits_.size());
    if (!bits_[index]) {
      bits_[index] = true;
      ++virtual_hits_;
      ++fresh;
    }
    h = Mix64(h + 0x9e3779b97f4a7c15ULL);
  }
  return fresh;
}

void CoverageRecorder::Reset() {
  bits_.assign(bits_.size(), false);
  static_bits_.assign(static_bits_.size(), false);
  static_hits_ = 0;
  virtual_hits_ = 0;
}

}  // namespace themis
