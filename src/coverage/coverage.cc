#include "src/coverage/coverage.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/common/strings.h"

namespace themis {

namespace {
// Upper bound on distinct static instrumentation sites per module.
constexpr size_t kStaticSitesPerModule = 256;
constexpr size_t kModuleCount = 10;
}  // namespace

CoverageRecorder::CoverageRecorder(size_t virtual_space, uint64_t seed)
    : bits_(virtual_space > 0 ? virtual_space : 1, false),
      static_bits_(kStaticSitesPerModule * kModuleCount, false),
      seed_(seed) {}

bool CoverageRecorder::HitStatic(CovModule module, uint32_t site) {
  size_t index = static_cast<size_t>(module) * kStaticSitesPerModule +
                 (site % kStaticSitesPerModule);
  if (static_bits_[index]) {
    return false;
  }
  static_bits_[index] = true;
  ++static_hits_;
  return true;
}

size_t CoverageRecorder::HitState(CovModule module, uint64_t feature_hash,
                                  int multiplicity) {
  uint64_t h = HashCombine(seed_, static_cast<uint64_t>(module));
  h = HashCombine(h, feature_hash);
  multiplicity = std::clamp(multiplicity, 1, 16);
  size_t fresh = 0;
  for (int i = 0; i < multiplicity; ++i) {
    size_t index = static_cast<size_t>(h % bits_.size());
    if (!bits_[index]) {
      bits_[index] = true;
      ++virtual_hits_;
      ++fresh;
    }
    h = Mix64(h + 0x9e3779b97f4a7c15ULL);
  }
  return fresh;
}

namespace {

void SaveBitmap(SnapshotWriter& writer, const std::vector<bool>& bits) {
  writer.U64(bits.size());
  uint8_t byte = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) byte |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      writer.U8(byte);
      byte = 0;
    }
  }
  if (bits.size() % 8 != 0) writer.U8(byte);
}

void RestoreBitmap(SnapshotReader& reader, std::vector<bool>* bits,
                   const char* what) {
  uint64_t size = reader.U64();
  if (reader.ok() && size != bits->size()) {
    reader.Fail(Sprintf("%s bitmap size %llu does not match recorder size %zu",
                        what, static_cast<unsigned long long>(size),
                        bits->size()));
    return;
  }
  uint8_t byte = 0;
  for (size_t i = 0; i < bits->size() && reader.ok(); ++i) {
    if (i % 8 == 0) byte = reader.U8();
    (*bits)[i] = (byte >> (i % 8)) & 1;
  }
}

}  // namespace

void CoverageRecorder::SaveState(SnapshotWriter& writer) const {
  SaveBitmap(writer, bits_);
  SaveBitmap(writer, static_bits_);
  writer.U64(static_hits_);
  writer.U64(virtual_hits_);
  writer.U64(seed_);
}

Status CoverageRecorder::RestoreState(SnapshotReader& reader) {
  RestoreBitmap(reader, &bits_, "virtual");
  RestoreBitmap(reader, &static_bits_, "static");
  static_hits_ = static_cast<size_t>(reader.U64());
  virtual_hits_ = static_cast<size_t>(reader.U64());
  seed_ = reader.U64();
  return reader.status();
}

void CoverageRecorder::Reset() {
  bits_.assign(bits_.size(), false);
  static_bits_.assign(static_bits_.size(), false);
  static_hits_ = 0;
  virtual_hits_ = 0;
}

}  // namespace themis
