// Branch-coverage substrate.
//
// The paper measures real branch coverage of HDFS / CephFS / GlusterFS /
// LeoFS with gcov / JaCoCo / ExIntegration. Our system under test is a
// simulator, so we reproduce the *metric structure* instead (see DESIGN.md):
//
//  * Static sites: instrumentation points (`COV_BRANCH`) placed throughout
//    the simulator's placement / balancer / migration code, one bit each.
//  * Virtual branches: each distinct (module, operation kind, state-feature
//    bucket) tuple observed during execution hashes to a branch id inside a
//    per-flavor virtual branch space sized to the paper's magnitudes.
//    Exploring more distinct combined request+configuration states therefore
//    hits more branches, which is exactly the monotone relationship the
//    paper's coverage tables rely on.

#ifndef SRC_COVERAGE_COVERAGE_H_
#define SRC_COVERAGE_COVERAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/snapshot_io.h"

namespace themis {

// Coarse module tag for instrumentation sites. Values are stable; they feed
// the branch hash.
enum class CovModule : uint8_t {
  kRequest = 0,     // client request handling
  kNamespace = 1,   // directory tree updates
  kPlacement = 2,   // chunk placement decisions
  kMembership = 3,  // node add / remove handling
  kVolume = 4,      // brick / volume management
  kBalancer = 5,    // load calculation + plan building
  kMigration = 6,   // data migration execution
  kReplication = 7, // replica repair
  kRecovery = 8,    // offline-node recovery
  kAdmin = 9,       // rebalance API handling
};

class CoverageRecorder {
 public:
  // `virtual_space` is the flavor's virtual branch count (see
  // FlavorBranchSpace); `seed` decorrelates campaigns.
  explicit CoverageRecorder(size_t virtual_space, uint64_t seed = 0);

  // Records an instrumented branch site. Returns true if it was new.
  bool HitStatic(CovModule module, uint32_t site);

  // Records a state-feature tuple. `multiplicity` is how many branches this
  // state unlocks (1..16): code running far from the balanced state exercises
  // branch-rich emergency paths (multi-round planning, throttling, retries)
  // that a near-balanced run never reaches, so callers scale it with the
  // current imbalance. Returns the number of branches newly set.
  size_t HitState(CovModule module, uint64_t feature_hash, int multiplicity = 1);

  // Number of distinct branches (static + virtual) hit so far.
  size_t TotalHits() const { return static_hits_ + virtual_hits_; }
  size_t StaticHits() const { return static_hits_; }
  size_t VirtualHits() const { return virtual_hits_; }

  size_t virtual_space() const { return bits_.size(); }

  void Reset();

  // Checkpointing (DESIGN.md §11): both bitmaps (packed 8 bits/byte), the
  // hit counters, and the hash seed. Restore fails unless the saved bitmap
  // sizes match this recorder's (i.e. same flavor branch space).
  void SaveState(SnapshotWriter& writer) const;
  Status RestoreState(SnapshotReader& reader);

 private:
  std::vector<bool> bits_;          // virtual branch bitmap
  std::vector<bool> static_bits_;   // static site bitmap
  size_t static_hits_ = 0;
  size_t virtual_hits_ = 0;
  uint64_t seed_ = 0;
};

// Convenience macro for static sites. `cov` may be null.
#define COV_BRANCH(cov, module, site)                             \
  do {                                                            \
    if ((cov) != nullptr) {                                       \
      (cov)->HitStatic((module), (site));                         \
    }                                                             \
  } while (0)

}  // namespace themis

#endif  // SRC_COVERAGE_COVERAGE_H_
