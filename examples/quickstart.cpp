// Quickstart: fuzz a simulated GlusterFS-like cluster with Themis for one
// virtual hour and print what was found.
//
//   ./build/examples/quickstart [virtual_minutes] [seed]

#include <cstdio>
#include <cstdlib>

#include "src/common/log.h"
#include "src/harness/campaign.h"
#include "src/harness/report.h"

int main(int argc, char** argv) {
  int minutes = argc > 1 ? std::atoi(argv[1]) : 60;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  themis::SetLogLevel(themis::LogLevel::kInfo);

  std::printf("Fuzzing a gluster-like cluster for %d virtual minutes (seed %llu)...\n",
              minutes, static_cast<unsigned long long>(seed));

  themis::CampaignConfig config;
  config.flavor = themis::Flavor::kGluster;
  config.seed = seed;
  config.budget = themis::Minutes(minutes);
  config.fault_set = themis::FaultSet::kNewBugs;
  themis::Campaign campaign(config);
  themis::Result<themis::CampaignResult> run = campaign.Run("Themis");
  if (!run.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  themis::CampaignResult result = run.take();

  std::printf("\n=== Campaign summary ===\n");
  std::printf("test cases executed : %d\n", result.testcases);
  std::printf("operations executed : %llu\n",
              static_cast<unsigned long long>(result.total_ops));
  std::printf("imbalance candidates: %d\n", result.candidates);
  std::printf("branches covered    : %zu\n", result.final_coverage);
  std::printf("false positives     : %d\n", result.false_positives);
  std::printf("distinct failures   : %d\n", result.DistinctTruePositives());

  if (!result.distinct_failures.empty()) {
    themis::TextTable table({"Failure", "First confirmed (virtual min)"});
    for (const auto& [id, at] : result.distinct_failures) {
      table.AddRow({id, themis::Sprintf("%.1f", themis::ToMinutes(at))});
    }
    std::printf("\n");
    table.Print();
  }
  return 0;
}
