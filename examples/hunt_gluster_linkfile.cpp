// Targeted hunt for the GlusterFS linkfile-deletion failure (Table 2 #1,
// the paper's Fig. 11 case study): fuzz a gluster-like cluster with Themis
// until the dht.rebalancer's destructive linkfile unlink is confirmed, then
// print the reproduction log and the Fig. 2-style per-node storage trace.
//
//   ./build/examples/hunt_gluster_linkfile [max_virtual_hours] [seed]

#include <cstdio>
#include <cstdlib>

#include "src/common/log.h"
#include "src/core/executor.h"
#include "src/core/fuzzer.h"
#include "src/dfs/flavors/factory.h"
#include "src/faults/fault_registry.h"
#include "src/faults/injector.h"
#include "src/harness/report.h"
#include "src/monitor/states_monitor.h"

int main(int argc, char** argv) {
  using namespace themis;
  int hours = argc > 1 ? std::atoi(argv[1]) : 48;
  uint64_t base_seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 31;

  std::printf("Hunting Bug#S24387 (destructive linkfile unlink in dht.rebalancer)\n");
  std::printf("budget: up to %d virtual hours per attempt, several attempts\n\n", hours);

  for (int attempt = 0; attempt < 10; ++attempt) {
    uint64_t seed = base_seed + static_cast<uint64_t>(attempt) * 101;
    std::unique_ptr<DfsCluster> dfs = MakeCluster(Flavor::kGluster, seed);
    CoverageRecorder coverage(FlavorBranchSpace(Flavor::kGluster), seed);
    dfs->set_coverage(&coverage);
    FaultInjector injector(NewBugsFor(Flavor::kGluster), seed);
    dfs->set_fault_hooks(&injector);

    Rng rng(seed ^ 0x7e5715ULL);
    InputModel model;
    StatesMonitor monitor(LoadVarianceWeights{});
    ImbalanceDetector detector(DetectorConfig{});
    TestCaseExecutor executor(*dfs, model, monitor, detector, &injector, &coverage, rng);
    ThemisFuzzer fuzzer(model, rng);
    OpSeqGenerator init(model);
    executor.SeedInitialData(init, 60);

    // Per-minute storage trace for the eventual figure.
    std::vector<std::pair<double, double>> spread_series;
    SimTime next_sample = 0;

    while (dfs->Now() < Hours(hours)) {
      OpSeq testcase = fuzzer.Next();
      ExecOutcome outcome = executor.Run(testcase);
      fuzzer.OnOutcome(testcase, outcome);
      while (dfs->Now() >= next_sample) {
        spread_series.emplace_back(ToMinutes(next_sample), dfs->StorageImbalance());
        next_sample += Minutes(1);
      }
      for (const FailureReport& report : outcome.failures) {
        bool is_linkfile_bug = false;
        for (const std::string& id : report.active_faults) {
          is_linkfile_bug |= id == "Bug#S24387";
        }
        if (!is_linkfile_bug) {
          spread_series.clear();  // other failure reset the cluster
          continue;
        }
        std::printf("CONFIRMED Bug#S24387 at t=%.1f virtual minutes (attempt %d)\n",
                    ToMinutes(report.confirmed_at), attempt);
        std::printf("bytes destroyed by the buggy unlink so far: (see data loss "
                    "accounting)\n\n");
        std::printf("=== Reproduction log (the operation sequence that exposed it) ===\n");
        std::printf("%s\n", report.testcase.ToString().c_str());
        std::printf("=== Load variance accumulation (per virtual minute) ===\n");
        size_t step = spread_series.size() > 30 ? spread_series.size() / 30 : 1;
        for (size_t i = 0; i < spread_series.size(); i += step) {
          int bars = static_cast<int>(spread_series[i].second * 100);
          std::printf("%7.0f min %6.1f%% |", spread_series[i].first,
                      100.0 * spread_series[i].second);
          for (int b = 0; b < bars && b < 60; ++b) {
            std::printf("#");
          }
          std::printf("\n");
        }
        return 0;
      }
    }
    std::printf("attempt %d: not triggered within budget, reseeding...\n", attempt);
  }
  std::printf("bug not confirmed; raise the hour budget\n");
  return 1;
}
